(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation (see DESIGN.md §4 for the index).

     dune exec bench/main.exe            # all experiments
     dune exec bench/main.exe -- e1 e5   # a subset
     dune exec bench/main.exe -- quick   # reduced workload sizes *)

let all : (string * (unit -> unit)) list =
  [
    ("e1", Experiments.e1);
    ("e1b", Experiments.e1b);
    ("e2", Experiments.e2);
    ("e3", Experiments.e3);
    ("e3b", Experiments.e3b);
    ("e4", Experiments.e4);
    ("e5", Experiments.e5);
    ("e6", Experiments.e6);
    ("e7", Experiments.e7);
    ("e8", Experiments.e8);
    ("e9", Experiments.e9);
    ("a1", Experiments.a1);
    ("a4", Experiments.a4);
    ("a5", Experiments.a5);
    ("a6", Experiments.a6);
    ("a2", Experiments.a2);
    ("a3", Experiments.a3);
    ("r1", Experiments.r1);
    ("r2", Experiments.r2);
    ("r3", Experiments.r3);
    ("r4", Experiments.r4);
    ("r5", Experiments.r5);
    ("gate", Experiments.gate);
    ("micro", Micro.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "quick" then begin
          Experiments.quick := true;
          false
        end
        else true)
      args
  in
  let selected =
    match args with
    | [] -> all
    | names ->
        List.map
          (fun n ->
            match List.assoc_opt n all with
            | Some f -> (n, f)
            | None ->
                Printf.eprintf "unknown experiment %s (have: %s)\n" n
                  (String.concat " " (List.map fst all));
                exit 2)
          names
  in
  Printf.printf
    "SDRaD reproduction benchmark harness — %d experiment(s)%s\n"
    (List.length selected)
    (if !Experiments.quick then " (quick mode)" else "");
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (name, f) ->
      let t = Unix.gettimeofday () in
      f ();
      Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t))
    selected;
  Printf.printf "\nAll done in %.1fs\n" (Unix.gettimeofday () -. t0)
