(* Shared plumbing for the experiment harness: simulation setup helpers
   and result formatting. *)

module Space = Vmem.Space
module Sched = Simkern.Sched
module Cost = Simkern.Cost
module Api = Sdrad.Api

let cost = Cost.default

let section title =
  Printf.printf "\n=== %s ===\n\n%!" title

let subsection title = Printf.printf "-- %s --\n%!" title

let table ~header rows = print_endline (Stats.Table.render ~header rows)

let pct base v = Stats.Table.fmt_pct ((v -. base) /. base)

let us_of c = Cost.us_of_cycles cost c

(* Run one simulation: [setup] runs inside the first thread; the returned
   thunk is called after the scheduler drains. *)
let simulate ?(size_mib = 192) f =
  let space = Space.create ~size_mib () in
  let sched = Sched.create () in
  let out = ref None in
  let _ =
    Sched.spawn sched ~name:"harness" (fun () -> out := Some (f space sched))
  in
  Sched.run sched;
  Option.get !out

(* Memcached (E1/E2/E6): one full YCSB experiment on a fresh simulation. *)
type mc_run = {
  mc_load_tput : float;  (* ops/s *)
  mc_run_tput : float;
  mc_max_rss : int;
  mc_latencies : float list;  (* run-phase client RTTs, cycles *)
  mc_utilization : float;  (* mean worker busy fraction *)
  mc_busy_cycles : float;
  mc_server : Kvcache.Server.t;
  mc_space : Space.t;
}

let run_memcached ?base_config ?(grant_cache = true) ?(gate_batch_limit = 0)
    ?(elide = true) ~variant ~workers ~records ~operations ~clients () =
  let space = Space.create ~size_mib:192 () in
  Space.set_grant_cache space grant_cache;
  if not elide then Space.set_pkru_elision space false;
  let sd =
    match variant with
    | Kvcache.Server.Sdrad -> Some (Api.create space)
    | _ -> None
  in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let cfg =
    { Kvcache.Server.default_config with variant; workers; gate_batch_limit }
  in
  let base =
    Option.value base_config ~default:Workload.Ycsb.default_config
  in
  let ycfg = { base with Workload.Ycsb.records; operations; clients } in
  let srv = ref None in
  let results = ref (fun () -> failwith "unset") in
  let _ =
    Sched.spawn sched ~name:"harness" (fun () ->
        let s = Kvcache.Server.start sched space ?sdrad:sd net cfg in
        srv := Some s;
        results :=
          Workload.Ycsb.launch sched net ycfg
            ~on_done:(fun () -> Kvcache.Server.stop s)
            ())
  in
  Sched.run sched;
  let r = !results () in
  assert (r.Workload.Ycsb.failures = 0);
  {
    mc_load_tput =
      Stats.ops_per_sec cost ~ops:r.Workload.Ycsb.load_ops
        ~cycles:r.Workload.Ycsb.load_cycles;
    mc_run_tput =
      Stats.ops_per_sec cost ~ops:r.Workload.Ycsb.run_ops
        ~cycles:r.Workload.Ycsb.run_cycles;
    mc_max_rss = Space.max_rss_bytes space;
    mc_latencies = r.Workload.Ycsb.run_latencies;
    mc_utilization =
      (match Kvcache.Server.worker_utilization (Option.get !srv) with
      | [] -> 0.0
      | us -> List.fold_left ( +. ) 0.0 us /. float_of_int (List.length us));
    mc_busy_cycles = Kvcache.Server.worker_busy_cycles (Option.get !srv);
    mc_server = Option.get !srv;
    mc_space = space;
  }

(* NGINX (E3/E4/E6): one ApacheBench-style run on a fresh simulation. *)
type ng_run = {
  ng_tput : float;  (* requests/s *)
  ng_max_rss : int;
  ng_server : Httpd.Server.t;
}

let make_fs space sizes =
  let fs = Httpd.Fs.create space in
  List.iter (fun s -> Httpd.Fs.add fs ~path:(Printf.sprintf "/f%d.bin" s) ~size:s) sizes;
  fs

let run_nginx ~variant ~workers ~file_size ~connections ~requests_per_conn =
  let space = Space.create ~size_mib:192 () in
  let sd =
    match variant with Httpd.Server.Sdrad -> Some (Api.create space) | _ -> None
  in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let cfg = { Httpd.Server.default_config with variant; workers } in
  let lcfg =
    {
      Workload.Http_load.default_config with
      connections;
      requests_per_conn;
      path = Printf.sprintf "/f%d.bin" file_size;
    }
  in
  let srv = ref None in
  let results = ref (fun () -> failwith "unset") in
  let _ =
    Sched.spawn sched ~name:"harness" (fun () ->
        let s =
          Httpd.Server.start sched space ?sdrad:sd net
            ~fs:(make_fs space [ file_size ]) cfg
        in
        srv := Some s;
        results :=
          Workload.Http_load.launch sched net lcfg
            ~on_done:(fun () -> Httpd.Server.stop s)
            ())
  in
  Sched.run sched;
  let r = !results () in
  assert (r.Workload.Http_load.failures = 0);
  {
    ng_tput =
      Stats.ops_per_sec cost ~ops:r.Workload.Http_load.ok
        ~cycles:r.Workload.Http_load.cycles;
    ng_max_rss = Space.max_rss_bytes space;
    ng_server = Option.get !srv;
  }
