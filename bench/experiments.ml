(* The paper's evaluation, experiment by experiment. Each function prints
   a table mirroring the corresponding figure/table of the paper; the
   "paper" column quotes the published result so the shapes can be
   compared directly. See EXPERIMENTS.md for the recorded comparison. *)

open Harness
module Space = Vmem.Space
module Sched = Simkern.Sched
module Api = Sdrad.Api
module Types = Sdrad.Types

let quick = ref false

(* Scaled-down workload sizes (paper: 1e7 records / 1e8 operations). *)
let mc_records () = if !quick then 400 else 1_500
let mc_operations () = if !quick then 1_200 else 6_000
let ng_requests_per_conn () = if !quick then 4 else 20

(* {1 E1 — Figure 4: Memcached YCSB throughput} *)

let e1 () =
  section
    "E1 (Fig. 4) Memcached YCSB throughput — 1 KiB values, 95/5 read/update, \
     Zipfian";
  let threads = [ 1; 2; 4; 8 ] in
  let variants =
    [
      ("baseline", Kvcache.Server.Baseline);
      ("tlsf", Kvcache.Server.Tlsf_alloc);
      ("sdrad", Kvcache.Server.Sdrad);
    ]
  in
  let results =
    List.map
      (fun w ->
        ( w,
          List.map
            (fun (name, variant) ->
              let r =
                run_memcached ~variant ~workers:w ~records:(mc_records ())
                  ~operations:(mc_operations ()) ~clients:16 ()
              in
              (name, r))
            variants ))
      threads
  in
  let phase_rows select phase_name =
    List.map
      (fun (w, rs) ->
        let v name = select (List.assoc name rs) in
        let base = v "baseline" in
        [
          Printf.sprintf "%s/%d thr" phase_name w;
          Stats.Table.fmt_si base;
          Printf.sprintf "%s (%s)" (Stats.Table.fmt_si (v "tlsf")) (pct base (v "tlsf"));
          Printf.sprintf "%s (%s)" (Stats.Table.fmt_si (v "sdrad")) (pct base (v "sdrad"));
        ])
      results
  in
  table
    ~header:[ "phase/threads"; "baseline op/s"; "tlsf op/s"; "sdrad op/s" ]
    (phase_rows (fun r -> r.mc_load_tput) "load"
    @ phase_rows (fun r -> r.mc_run_tput) "run");
  List.iter
    (fun (w, rs) ->
      Printf.printf "worker utilization @%d thr: baseline %.0f%%, sdrad %.0f%%\n" w
        (100.0 *. (List.assoc "baseline" rs).mc_utilization)
        (100.0 *. (List.assoc "sdrad" rs).mc_utilization))
    results;
  print_endline
    "paper: tlsf < 1% everywhere; sdrad worst case -7.0/-7.1% (1 thr), \
     -4.5/-5.5% (2 thr), -2.9/-4.1% (4 thr), < -4.1% (8 thr, unsaturated)"

(* {1 E2 — §V-A: Memcached rewind latency vs restart} *)

let attack_memcached_once net =
  let evil = Netsim.connect net ~port:11211 in
  Netsim.send evil
    (Kvcache.Proto.fmt_set_lying ~key:"boom" ~flags:0 ~declared:(-1)
       ~value:(String.make 900 'x'));
  ignore (Netsim.recv evil)

let measure_memcached_rewinds ~attacks =
  let space = Space.create ~size_mib:192 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let cfg =
    { Kvcache.Server.default_config with variant = Kvcache.Server.Sdrad;
      vulnerable = true; workers = 2 }
  in
  let srv = ref None in
  let _ =
    Sched.spawn sched ~name:"harness" (fun () ->
        let s = Kvcache.Server.start sched space ~sdrad:sd net cfg in
        srv := Some s;
        let c = Netsim.connect net ~port:11211 in
        Netsim.send c (Kvcache.Proto.fmt_set ~key:"canary" ~flags:0 ~value:"alive");
        ignore (Netsim.recv c);
        for _ = 1 to attacks do
          attack_memcached_once net;
          (* Service must still answer between attacks. *)
          Netsim.send c (Kvcache.Proto.fmt_get "canary");
          assert (Netsim.recv c <> None)
        done;
        Netsim.close c;
        Kvcache.Server.stop s)
  in
  Sched.run sched;
  let s = Option.get !srv in
  assert (not (Kvcache.Server.crashed s));
  assert (Kvcache.Server.rewinds s = attacks);
  (Kvcache.Server.rewind_latencies s, Kvcache.Server.store s)

let e2 () =
  section "E2 (§V-A) Memcached recovery latency: rewind vs restart";
  let latencies, _ = measure_memcached_rewinds ~attacks:20 in
  let s = Stats.summarize (List.map us_of latencies) in
  let restart_us = us_of (Checkpoint.restart_cycles (Space.create ~size_mib:1 ()) ~reload_bytes:0) in
  let gib = 1024 * 1024 * 1024 in
  let reload_10g_us =
    us_of (Checkpoint.restart_cycles (Space.create ~size_mib:1 ()) ~reload_bytes:(10 * gib))
  in
  table
    ~header:[ "recovery mechanism"; "latency"; "paper" ]
    [
      [
        "SDRaD abnormal exit (measured)";
        Printf.sprintf "%.1f us (sd %.1f, n=%d)" s.Stats.mean s.Stats.stddev s.Stats.n;
        "3.5 us (sd 0.9)";
      ];
      [
        "process restart (model)";
        Printf.sprintf "%.0f us" restart_us;
        "~0.4 s for the container";
      ];
      [
        "restart + reload 10 GiB (model)";
        Printf.sprintf "%.0f s" (reload_10g_us /. 1e6);
        "~2 min";
      ];
    ]

(* {1 E3 — Figure 5: NGINX throughput vs response size} *)

let e3 () =
  section "E3 (Fig. 5) NGINX throughput, 1 worker, 75 keep-alive connections";
  let sizes = [ 0; 1024; 4096; 16384; 65536; 131072 ] in
  let variants =
    [
      ("baseline", Httpd.Server.Baseline);
      ("tlsf", Httpd.Server.Tlsf_alloc);
      ("sdrad", Httpd.Server.Sdrad);
    ]
  in
  let rows =
    List.map
      (fun size ->
        let v =
          List.map
            (fun (name, variant) ->
              let r =
                run_nginx ~variant ~workers:1 ~file_size:size ~connections:75
                  ~requests_per_conn:(ng_requests_per_conn ())
              in
              (name, r.ng_tput))
            variants
        in
        let base = List.assoc "baseline" v in
        [
          (if size = 0 then "0" else Printf.sprintf "%dKiB" (size / 1024));
          Stats.Table.fmt_si base;
          Printf.sprintf "%s (%s)" (Stats.Table.fmt_si (List.assoc "tlsf" v))
            (pct base (List.assoc "tlsf" v));
          Printf.sprintf "%s (%s)" (Stats.Table.fmt_si (List.assoc "sdrad" v))
            (pct base (List.assoc "sdrad" v));
        ])
      sizes
  in
  table ~header:[ "file size"; "baseline req/s"; "tlsf req/s"; "sdrad req/s" ] rows;
  print_endline
    "paper: sdrad overhead between -6.5% (1 KiB) and -1.6% (128 KiB); \
     independent of worker count"

(* {1 E4 — §V-B: NGINX rewind latency vs worker restart} *)

let nginx_attack_run ~variant ~attacks =
  let space = Space.create ~size_mib:192 () in
  let sd =
    match variant with Httpd.Server.Sdrad -> Some (Api.create space) | _ -> None
  in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let cfg =
    { Httpd.Server.default_config with variant; vulnerable = true; workers = 1 }
  in
  let fs = make_fs space [ 1024 ] in
  let srv = ref None in
  let _ =
    Sched.spawn sched ~name:"harness" (fun () ->
        let s = Httpd.Server.start sched space ?sdrad:sd net ~fs cfg in
        srv := Some s;
        for _ = 1 to attacks do
          let evil = Netsim.connect net ~port:8080 in
          Netsim.send evil (Workload.Http_load.request ~path:"/a/../../etc");
          ignore (Netsim.recv evil);
          (* Wait for recovery, then verify the service answers. *)
          let rec probe tries =
            if tries = 0 then failwith "service did not recover";
            Sched.sleep 3.0e6;
            let c = Netsim.connect net ~port:8080 in
            Netsim.send c (Workload.Http_load.request ~path:"/f1024.bin");
            let r = Netsim.recv c in
            Netsim.close c;
            match r with
            | Some reply when Workload.Http_load.is_200 reply -> ()
            | _ -> probe (tries - 1)
          in
          probe 10
        done;
        Httpd.Server.stop s)
  in
  Sched.run sched;
  Option.get !srv

let e4 () =
  section "E4 (§V-B) NGINX recovery latency: rewind vs worker restart";
  let sdrad_srv = nginx_attack_run ~variant:Httpd.Server.Sdrad ~attacks:20 in
  let base_srv = nginx_attack_run ~variant:Httpd.Server.Baseline ~attacks:20 in
  let rl = Stats.summarize (List.map us_of (Httpd.Server.rewind_latencies sdrad_srv)) in
  let wr = Stats.summarize (List.map us_of (Httpd.Server.restart_latencies base_srv)) in
  table
    ~header:[ "recovery mechanism"; "latency (measured)"; "paper" ]
    [
      [
        "SDRaD abnormal exit";
        Printf.sprintf "%.1f us (sd %.1f, n=%d)" rl.Stats.mean rl.Stats.stddev rl.Stats.n;
        "3.4 us (sd 0.67)";
      ];
      [
        "worker restart by master";
        Printf.sprintf "%.0f us (sd %.0f, n=%d)" wr.Stats.mean wr.Stats.stddev wr.Stats.n;
        "996 us (sd 44)";
      ];
    ];
  Printf.printf
    "connections lost per fault: sdrad %d/20 attacks (attacker only), baseline: \
     all of the worker's connections\n"
    (Httpd.Server.dropped_connections sdrad_srv)

(* {1 E5 — §V-C: OpenSSL speed, aes-256-gcm} *)

let speed_sizes = [ 16; 64; 256; 1024; 4096; 16384; 32768; 65536 ]

let speed_iterations size =
  let budget = if !quick then 131_072 else 786_432 in
  max 8 (min 400 (budget / max 16 size))

let run_speed () =
  simulate (fun space _sched ->
      let sd = Api.create space in
      let modes =
        [
          Workload.Speed.Native;
          Workload.Speed.Isolated Crypto.Evp_sdrad.Copy_in_out;
          Workload.Speed.Isolated Crypto.Evp_sdrad.Read_parent;
          Workload.Speed.Isolated Crypto.Evp_sdrad.Shared_buffers;
        ]
      in
      List.map
        (fun size ->
          ( size,
            List.map
              (fun mode ->
                Workload.Speed.measure space ~sdrad:sd mode ~size
                  ~iterations:(speed_iterations size))
              modes ))
        speed_sizes)

let e5_data = ref None

let speed_data () =
  match !e5_data with
  | Some d -> d
  | None ->
      let d = run_speed () in
      e5_data := Some d;
      d

let e5 () =
  section "E5 (§V-C) OpenSSL speed: aes-256-gcm via EVP_EncryptUpdate";
  let data = speed_data () in
  let rows =
    List.map
      (fun (size, rows) ->
        let find m =
          List.find (fun r -> r.Workload.Speed.mode = m) rows
        in
        let native = (find Workload.Speed.Native).Workload.Speed.mb_per_sec in
        let cell m =
          let r = find m in
          Printf.sprintf "%.0f (%s)" r.Workload.Speed.mb_per_sec
            (pct native r.Workload.Speed.mb_per_sec)
        in
        [
          (if size < 1024 then Printf.sprintf "%dB" size
           else Printf.sprintf "%dKiB" (size / 1024));
          Printf.sprintf "%.0f" native;
          cell (Workload.Speed.Isolated Crypto.Evp_sdrad.Copy_in_out);
          cell (Workload.Speed.Isolated Crypto.Evp_sdrad.Read_parent);
          cell (Workload.Speed.Isolated Crypto.Evp_sdrad.Shared_buffers);
        ])
      data
  in
  table
    ~header:
      [ "input"; "native MB/s"; "copy-in-out MB/s"; "read-parent MB/s"; "shared MB/s" ]
    rows;
  print_endline
    "paper: 4%-80% overhead for small inputs, < 2% at >= 32 KiB; the \
     parent-managed shared domain (choice 3) performs best"

(* {1 E6 — memory overhead (max RSS)} *)

let e6 () =
  section "E6 (§V-A/§V-B) memory overhead: max RSS, SDRaD vs baseline";
  let mc_base =
    run_memcached ~variant:Kvcache.Server.Baseline ~workers:4
      ~records:(mc_records ()) ~operations:(mc_operations () / 2) ~clients:8 ()
  in
  let mc_sdrad =
    run_memcached ~variant:Kvcache.Server.Sdrad ~workers:4
      ~records:(mc_records ()) ~operations:(mc_operations () / 2) ~clients:8 ()
  in
  let ng_base =
    run_nginx ~variant:Httpd.Server.Baseline ~workers:4 ~file_size:131072
      ~connections:32 ~requests_per_conn:(ng_requests_per_conn ())
  in
  let ng_sdrad =
    run_nginx ~variant:Httpd.Server.Sdrad ~workers:4 ~file_size:131072
      ~connections:32 ~requests_per_conn:(ng_requests_per_conn ())
  in
  let row name base sdrad paper =
    [
      name;
      Printf.sprintf "%.1f MiB" (float_of_int base /. 1048576.0);
      Printf.sprintf "%.1f MiB" (float_of_int sdrad /. 1048576.0);
      pct (float_of_int base) (float_of_int sdrad);
      paper;
    ]
  in
  table
    ~header:[ "application"; "baseline RSS"; "sdrad RSS"; "increase"; "paper" ]
    [
      row "memcached (after YCSB load)" mc_base.mc_max_rss mc_sdrad.mc_max_rss "+0.4%";
      row "nginx (128 KiB bench)" ng_base.ng_max_rss ng_sdrad.ng_max_rss "+3.06%";
    ]

(* {1 E7 — §V-B profiling: domain-switch cost anatomy} *)

let e7 () =
  section "E7 (§V-B) domain switch anatomy: share of the PKRU write";
  let p =
    simulate (fun space _ ->
        let sd = Api.create space in
        Api.profile_switch sd)
  in
  let frac part = 100.0 *. part /. p.Api.total_cycles in
  table
    ~header:[ "component"; "cycles"; "share" ]
    [
      [ Printf.sprintf "WRPKRU writes (%dx)" p.Api.wrpkru_writes;
        Printf.sprintf "%.0f" p.Api.wrpkru_cycles;
        Printf.sprintf "%.0f%%" (frac p.Api.wrpkru_cycles) ];
      [ "stack switching"; Printf.sprintf "%.0f" p.Api.stack_cycles;
        Printf.sprintf "%.0f%%" (frac p.Api.stack_cycles) ];
      [ "monitor bookkeeping"; Printf.sprintf "%.0f" p.Api.bookkeeping_cycles;
        Printf.sprintf "%.0f%%" (frac p.Api.bookkeeping_cycles) ];
      [ "total enter+exit pair"; Printf.sprintf "%.0f" p.Api.total_cycles; "100%" ];
    ];
  print_endline "paper: 30-50% of domain switching cost is the PKRU write"

(* {1 E8 — the three CVE case studies} *)

let e8 () =
  section "E8 (§V) CVE case studies: unprotected vs SDRaD";
  (* memcached / CVE-2011-4971 *)
  let mc_unprotected =
    let space = Space.create ~size_mib:192 () in
    let sched = Sched.create () in
    let net = Netsim.create (Space.cost space) in
    let cfg =
      { Kvcache.Server.default_config with variant = Kvcache.Server.Baseline;
        vulnerable = true; workers = 2 }
    in
    let srv = ref None in
    let _ =
      Sched.spawn sched ~name:"harness" (fun () ->
          let s = Kvcache.Server.start sched space net cfg in
          srv := Some s;
          attack_memcached_once net)
    in
    Sched.run sched;
    Kvcache.Server.crashed (Option.get !srv)
  in
  let mc_lat, _ = measure_memcached_rewinds ~attacks:3 in
  (* nginx / CVE-2009-2629 *)
  let ng_base = nginx_attack_run ~variant:Httpd.Server.Baseline ~attacks:3 in
  let ng_sdrad = nginx_attack_run ~variant:Httpd.Server.Sdrad ~attacks:3 in
  (* openssl / CVE-2022-3786 *)
  let ssl_rewinds =
    let space = Space.create ~size_mib:192 () in
    let sd = Api.create space in
    let sched = Sched.create () in
    let net = Netsim.create (Space.cost space) in
    let cfg =
      { Httpd.Server.default_config with variant = Httpd.Server.Sdrad;
        verify_certs = true; workers = 1 }
    in
    let srv = ref None in
    let _ =
      Sched.spawn sched ~name:"harness" (fun () ->
          let s = Httpd.Server.start sched space ~sdrad:sd net ~fs:(make_fs space [ 1024 ]) cfg in
          srv := Some s;
          let evil = Netsim.connect net ~port:8080 in
          let cert =
            Crypto.X509.make_cert ~cn:"evil" ~altname:Crypto.X509.malicious_altname
          in
          Netsim.send evil
            (Workload.Http_load.request_with_headers ~path:"/f1024.bin"
               [ ("X-Client-Cert", cert) ]);
          ignore (Netsim.recv evil);
          let c = Netsim.connect net ~port:8080 in
          Netsim.send c (Workload.Http_load.request ~path:"/f1024.bin");
          assert (Netsim.recv c <> None);
          Netsim.close c;
          Httpd.Server.stop s)
    in
    Sched.run sched;
    Httpd.Server.rewinds (Option.get !srv)
  in
  let mean l = (Stats.summarize (List.map us_of l)).Stats.mean in
  table
    ~header:[ "CVE"; "detection"; "unprotected outcome"; "SDRaD outcome" ]
    [
      [
        "2011-4971 (memcached heap overflow)";
        "PKU domain violation";
        (if mc_unprotected then "whole cache process down" else "BUG");
        Printf.sprintf "rewind, 1 conn closed (%.1f us)" (mean mc_lat);
      ];
      [
        "2009-2629 (nginx URI underflow)";
        "PKU domain violation";
        Printf.sprintf "worker crash, all conns lost (restart %.0f us)"
          (mean (Httpd.Server.restart_latencies ng_base));
        Printf.sprintf "rewind, 1 conn closed (%.1f us)"
          (mean (Httpd.Server.rewind_latencies ng_sdrad));
      ];
      [
        "2022-3786 (openssl punycode overflow)";
        "stack canary";
        "worker crash (DoS)";
        Printf.sprintf "rewind + domain re-init (%d rewind)" ssl_rewinds;
      ];
    ]

(* {1 E9 — Table I API micro-costs (virtual cycles)} *)

let e9 () =
  section "E9 (Table I) SDRaD API call costs, virtual time";
  let rows =
    simulate (fun space _ ->
        let sd = Api.create space in
        let t0 () = Sched.now () in
        let timed f =
          let a = t0 () in
          f ();
          Sched.now () -. a
        in
        (* Warm up one full cycle so stack/heap mappings exist. *)
        Api.run sd ~udi:5 ~on_rewind:(fun _ -> ()) (fun () ->
            ignore (Api.malloc sd ~udi:5 64));
        let init_cost = ref 0.0
        and enter_cost = ref 0.0
        and exit_cost = ref 0.0
        and malloc_cost = ref 0.0
        and free_cost = ref 0.0
        and deinit_cost = ref 0.0
        and destroy_cost = ref 0.0 in
        let reps = 50 in
        for _ = 1 to reps do
          let t_run = t0 () in
          Api.run sd ~udi:5
            ~on_rewind:(fun _ -> ())
            (fun () ->
              init_cost := !init_cost +. (Sched.now () -. t_run);
              enter_cost := !enter_cost +. timed (fun () -> Api.enter sd 5);
              let p = ref 0 in
              malloc_cost := !malloc_cost +. timed (fun () -> p := Api.malloc sd ~udi:5 256);
              free_cost := !free_cost +. timed (fun () -> Api.free sd ~udi:5 !p);
              exit_cost := !exit_cost +. timed (fun () -> Api.exit_domain sd);
              deinit_cost := !deinit_cost +. timed (fun () -> Api.deinit sd 5))
        done;
        Api.run sd ~udi:5 ~on_rewind:(fun _ -> ()) (fun () ->
            destroy_cost := timed (fun () -> Api.destroy sd 5 ~heap:`Discard));
        let dd = timed (fun () -> Api.init_data sd ~udi:9 ()) in
        let dp = timed (fun () -> Api.dprotect sd ~udi:5 ~tddi:9 Vmem.Prot.read) in
        let per r = !r /. float_of_int reps in
        [
          ("sdrad_init (re-arm, warm)", per init_cost);
          ("sdrad_enter", per enter_cost);
          ("sdrad_exit", per exit_cost);
          ("sdrad_malloc (256 B)", per malloc_cost);
          ("sdrad_free", per free_cost);
          ("sdrad_deinit", per deinit_cost);
          ("sdrad_destroy", !destroy_cost);
          ("sdrad_init (data domain)", dd);
          ("sdrad_dprotect", dp);
        ])
  in
  table
    ~header:[ "API call"; "cycles"; "time" ]
    (List.map
       (fun (name, c) ->
         [ name; Printf.sprintf "%.0f" c; Printf.sprintf "%.2f us" (us_of c) ])
       rows)


(* {1 E1b — YCSB workload mixes with tail latency} *)

let e1b () =
  section
    "E1b (extension) YCSB workload mixes A-D: throughput and tail latency";
  let mixes =
    [
      ("A (50/50)", Workload.Ycsb.workload_a);
      ("B (95/5)", Workload.Ycsb.workload_b);
      ("C (100% read)", Workload.Ycsb.workload_c);
      ("D (95/5 read-latest)", Workload.Ycsb.workload_d);
    ]
  in
  let rows =
    List.map
      (fun (name, base) ->
        let run variant =
          run_memcached ~base_config:base ~variant ~workers:4
            ~records:(mc_records ()) ~operations:(mc_operations ()) ~clients:16 ()
        in
        let b = run Kvcache.Server.Baseline in
        let s = run Kvcache.Server.Sdrad in
        let p99 r = (Stats.summarize (List.map us_of r.mc_latencies)).Stats.p99 in
        [
          name;
          Stats.Table.fmt_si b.mc_run_tput;
          Printf.sprintf "%s (%s)" (Stats.Table.fmt_si s.mc_run_tput)
            (pct b.mc_run_tput s.mc_run_tput);
          Printf.sprintf "%.1f us" (p99 b);
          Printf.sprintf "%.1f us" (p99 s);
        ])
      mixes
  in
  table
    ~header:[ "workload"; "baseline op/s"; "sdrad op/s"; "baseline p99"; "sdrad p99" ]
    rows;
  print_endline
    "write-heavier mixes pay more (deep copies + deferred commit); pure \
     reads pay only the switch + staging copy"

(* {1 E3b — NGINX worker scaling (§V-B claim)} *)

let e3b () =
  section "E3b (§V-B) NGINX: SDRaD overhead is independent of worker count";
  let rows =
    List.map
      (fun workers ->
        let run variant =
          (run_nginx ~variant ~workers ~file_size:1024 ~connections:75
             ~requests_per_conn:(ng_requests_per_conn ()))
            .ng_tput
        in
        let b = run Httpd.Server.Baseline in
        let s = run Httpd.Server.Sdrad in
        [
          string_of_int workers;
          Stats.Table.fmt_si b;
          Printf.sprintf "%s (%s)" (Stats.Table.fmt_si s) (pct b s);
        ])
      [ 1; 2; 4 ]
  in
  table ~header:[ "workers"; "baseline req/s"; "sdrad req/s" ] rows;
  print_endline
    "paper: \"We scaled the number of workers ... the overhead is \
     independent of that number\""

(* {1 A4 — ablation: restart-after-N-rewinds policy} *)

let a4 () =
  section "A4 (ablation, §VI) rewind-limit policy under a repeated attack";
  let run limit =
    let space = Space.create ~size_mib:192 () in
    let sd = Api.create space in
    let sched = Sched.create () in
    let net = Netsim.create (Space.cost space) in
    let cfg =
      { Httpd.Server.default_config with variant = Httpd.Server.Sdrad;
        vulnerable = true; workers = 1; rewind_limit = limit }
    in
    let srv = ref None in
    let _ =
      Sched.spawn sched ~name:"harness" (fun () ->
          let s = Httpd.Server.start sched space ~sdrad:sd net ~fs:(make_fs space [ 1024 ]) cfg in
          srv := Some s;
          for _ = 1 to 12 do
            let evil = Netsim.connect net ~port:8080 in
            Netsim.send evil (Workload.Http_load.request ~path:"/a/../../etc");
            ignore (Netsim.recv evil);
            Sched.sleep 4.0e6
          done;
          Httpd.Server.stop s)
    in
    Sched.run sched;
    Option.get !srv
  in
  let rows =
    List.map
      (fun (label, limit) ->
        let s = run limit in
        [
          label;
          string_of_int (Httpd.Server.rewinds s);
          string_of_int (Httpd.Server.proactive_restarts s);
        ])
      [ ("no limit", None); ("limit 4", Some 4); ("limit 2", Some 2) ]
  in
  table ~header:[ "policy"; "rewinds absorbed"; "proactive restarts" ] rows;
  print_endline
    "a rewind limit bounds how long an attacker can probe one address-space \
     layout (§VI's defense against rewind-assisted side channels)"


(* {1 A5 — baseline: N-variant execution (§VII)} *)

let a5 () =
  section "A5 (§VII) SDRaD vs N-variant execution: cost of redundancy";
  let ycsb_against ~port ~on_done sched net =
    Workload.Ycsb.launch sched net
      { Workload.Ycsb.default_config with records = mc_records ();
        operations = mc_operations (); clients = 16; port }
      ~on_done ()
  in
  let run_nvx replicas =
    let space = Space.create ~size_mib:256 () in
    let sched = Sched.create () in
    let net = Netsim.create (Space.cost space) in
    let results = ref (fun () -> failwith "unset") in
    let nx_ref = ref None in
    let _ =
      Sched.spawn sched ~name:"harness" (fun () ->
          let nx =
            Nvx.start sched space net
              { Nvx.default_config with replicas; workers_per_replica = 4 }
          in
          nx_ref := Some nx;
          results :=
            ycsb_against ~port:11300 ~on_done:(fun () -> Nvx.stop nx) sched net)
    in
    Sched.run sched;
    let r = !results () in
    assert (r.Workload.Ycsb.failures = 0);
    let total_ops = r.Workload.Ycsb.load_ops + r.Workload.Ycsb.run_ops in
    ( Stats.ops_per_sec cost ~ops:r.Workload.Ycsb.run_ops
        ~cycles:r.Workload.Ycsb.run_cycles,
      Nvx.busy_cycles (Option.get !nx_ref) /. float_of_int total_ops )
  in
  let run_single variant =
    let r =
      run_memcached ~variant ~workers:4 ~records:(mc_records ())
        ~operations:(mc_operations ()) ~clients:16 ()
    in
    ( r.mc_run_tput,
      r.mc_busy_cycles /. float_of_int (mc_records () + mc_operations ()) )
  in
  let single, single_cpu = run_single Kvcache.Server.Baseline in
  let sdrad, sdrad_cpu = run_single Kvcache.Server.Sdrad in
  let nvx2, nvx2_cpu = run_nvx 2 in
  let nvx3, nvx3_cpu = run_nvx 3 in
  let cpu c = Printf.sprintf "%.2f us (%.1fx)" (us_of c) (c /. single_cpu) in
  table
    ~header:[ "configuration"; "run-phase op/s"; "vs baseline"; "server CPU/op" ]
    [
      [ "baseline (1 copy)"; Stats.Table.fmt_si single; "-"; cpu single_cpu ];
      [ "SDRaD"; Stats.Table.fmt_si sdrad; pct single sdrad; cpu sdrad_cpu ];
      [ "NVX, 2 variants"; Stats.Table.fmt_si nvx2; pct single nvx2; cpu nvx2_cpu ];
      [ "NVX, 3 variants"; Stats.Table.fmt_si nvx3; pct single nvx3; cpu nvx3_cpu ];
    ];
  print_endline
    "the paper's §VII point: replicating computation and I/O per request \
     costs far more than compartmentalized rewinding — and a divergence \
     still fail-stops the whole replica set (see the chaos tests)"


(* {1 A6 — ablation: protection-key virtualization (libmpk fallback)} *)

let a6 () =
  section
    "A6 (ablation, §IV-B) key virtualization: cost of exceeding 15 hardware \
     keys";
  let run ndomains =
    let out = ref (0.0, 0) in
    let space = Space.create ~size_mib:128 () in
    let sched = Sched.create () in
    let _ =
      Sched.spawn sched ~name:"harness" (fun () ->
          let sd = Api.create ~virtual_keys:true space in
          let event udi =
            Api.run sd ~udi
              ~on_rewind:(fun _ -> ())
              (fun () ->
                Api.enter sd udi;
                ignore (Api.malloc sd ~udi 256);
                Api.exit_domain sd;
                Api.deinit sd udi)
          in
          (* Warm-up: create every persistent domain once. *)
          for udi = 1 to ndomains do
            event udi
          done;
          let rounds = 40 in
          let t0 = Sched.now () in
          for _ = 1 to rounds do
            for udi = 1 to ndomains do
              event udi
            done
          done;
          let per_event = (Sched.now () -. t0) /. float_of_int (rounds * ndomains) in
          let evictions =
            match
              Telemetry.Metrics.sample (Api.metrics sd)
                "sdrad_key_evictions_total"
            with
            | Some v -> int_of_float v
            | None -> 0
          in
          out := (per_event, evictions))
    in
    Sched.run sched;
    !out
  in
  let rows =
    List.map
      (fun n ->
        let per_event, evictions = run n in
        [
          string_of_int n;
          Printf.sprintf "%.0f" per_event;
          Printf.sprintf "%.2f us" (us_of per_event);
          string_of_int evictions;
        ])
      [ 8; 13; 16; 24; 32 ]
  in
  table
    ~header:[ "persistent domains"; "cycles/event"; "time/event"; "key evictions" ]
    rows;
  print_endline
    "within the 13 usable keys, events cost a few hundred cycles; beyond \
     that every re-init parks an LRU domain with an mprotect walk — the \
     slow fallback the paper attributes to libmpk-style virtualization"

(* {1 A1 — ablation: data-passing design choices} *)

let a1 () =
  section "A1 (ablation, §IV-A) data-passing design choices at 1 KiB / 32 KiB";
  let data = speed_data () in
  let pick size m =
    let rows = List.assoc size data in
    (List.find (fun r -> r.Workload.Speed.mode = m) rows).Workload.Speed.mb_per_sec
  in
  let row size =
    let native = pick size Workload.Speed.Native in
    [
      Printf.sprintf "%d B" size;
      Printf.sprintf "%.0f MB/s" native;
      pct native (pick size (Workload.Speed.Isolated Crypto.Evp_sdrad.Copy_in_out));
      pct native (pick size (Workload.Speed.Isolated Crypto.Evp_sdrad.Read_parent));
      pct native (pick size (Workload.Speed.Isolated Crypto.Evp_sdrad.Shared_buffers));
    ]
  in
  table
    ~header:[ "input"; "native"; "copy-in-out"; "read-parent"; "shared" ]
    [ row 1024; row 32768 ];
  print_endline "expected ordering: shared >= read-parent >= copy-in-out"

(* {1 A2 — ablation: stack-area reuse (§IV-C)} *)

let a2 () =
  section "A2 (ablation, §IV-C) stack-area reuse across domain lifecycles";
  let run reuse =
    let space = Space.create ~size_mib:64 () in
    let sched = Sched.create () in
    let out = ref (0.0, 0) in
    let _ =
      Sched.spawn sched ~name:"harness" (fun () ->
          let sd = Api.create ~stack_reuse:reuse space in
          (* Warm-up. *)
          Api.run sd ~udi:3 ~on_rewind:(fun _ -> ()) (fun () ->
              Api.destroy sd 3 ~heap:`Discard);
          let t0 = Sched.now () in
          for _ = 1 to 100 do
            Api.run sd ~udi:3
              ~on_rewind:(fun _ -> ())
              (fun () -> Api.destroy sd 3 ~heap:`Discard)
          done;
          out := ((Sched.now () -. t0) /. 100.0, Space.mapped_bytes space))
    in
    Sched.run sched;
    !out
  in
  let with_reuse, mapped_reuse = run true in
  let without, mapped_no = run false in
  table
    ~header:[ "configuration"; "cycles/lifecycle"; "mapped bytes after" ]
    [
      [ "stack reuse ON (default)"; Printf.sprintf "%.0f" with_reuse;
        Stats.Table.fmt_si (float_of_int mapped_reuse) ];
      [ "stack reuse OFF"; Printf.sprintf "%.0f" without;
        Stats.Table.fmt_si (float_of_int mapped_no) ];
      [ "speedup"; Printf.sprintf "%.2fx" (without /. with_reuse); "-" ];
    ]

(* {1 A3 — ablation: rewind vs checkpoint & restore} *)

let a3 () =
  section "A3 (ablation, §VII) recovery cost vs resident state size";
  (* A representative rewind latency from the Memcached scenario. *)
  let rewind_us =
    let latencies, _ = measure_memcached_rewinds ~attacks:5 in
    (Stats.summarize (List.map us_of latencies)).Stats.mean
  in
  let rows =
    List.map
      (fun mib ->
        simulate ~size_mib:(mib + 32) (fun space _ ->
            let region =
              Space.mmap space ~len:(mib * 1024 * 1024) ~prot:Vmem.Prot.rw ~pkey:0
            in
            (* Touch everything so the state is resident. *)
            let page = 4096 in
            for p = 0 to (mib * 1024 * 1024 / page) - 1 do
              Space.store8 space (region + (p * page)) 1
            done;
            let snap = Checkpoint.take space in
            [
              Printf.sprintf "%d MiB" mib;
              Printf.sprintf "%.1f us" rewind_us;
              Printf.sprintf "%.0f us" (us_of (Checkpoint.take_cycles space snap));
              Printf.sprintf "%.0f us" (us_of (Checkpoint.restore_cycles space snap));
              Printf.sprintf "%.0f us"
                (us_of (Checkpoint.restart_cycles space ~reload_bytes:(mib * 1024 * 1024)));
            ]))
      [ 1; 4; 16; 64 ]
  in
  table
    ~header:
      [ "resident state"; "sdrad rewind"; "checkpoint dump"; "checkpoint restore";
        "restart+reload" ]
    rows;
  print_endline
    "rewind cost is independent of state size; checkpoint/restore and reload \
     scale linearly — the paper's motivation for compartmentalization-based \
     recovery"

(* {1 R1 — supervision: the DoS-amplification cap (§VI)} *)

(* "Unlimited Lives" warns that unlimited rollback is a DoS amplifier: a
   looping attacker makes the victim pay a full rewind per probe, forever.
   The supervisor's rewind budget converts that O(attacks) rewind bill
   into O(budget): after the budget the attacker's domain is quarantined
   and further probes are answered with a cheap busy reply. *)
let run_dos_amplifier ~supervised ~attacks =
  let space = Space.create ~size_mib:192 () in
  let sd = Api.create ~virtual_keys:true space in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let cfg =
    {
      Kvcache.Server.default_config with
      variant = Kvcache.Server.Sdrad;
      vulnerable = true;
      workers = 2;
      per_client_domains = true;
    }
  in
  let policy =
    {
      Resilience.Supervisor.default_policy with
      budget_max = 3;
      budget_window = 1.0e9;
      cooldown = 2.0e6;
    }
  in
  let sup =
    if supervised then Some (Resilience.Supervisor.attach ~policy sd) else None
  in
  let benign_ok = ref 0 in
  let srv = ref None in
  let _ =
    Sched.spawn sched ~name:"harness" (fun () ->
        let s =
          Kvcache.Server.start sched space ~sdrad:sd ?supervisor:sup net cfg
        in
        srv := Some s;
        let good =
          Sched.spawn sched ~name:"good" (fun () ->
              let c = Netsim.connect net ~src:1 ~port:11211 in
              for i = 1 to 40 do
                Sched.sleep 6_000.0;
                Netsim.send c
                  (Kvcache.Proto.fmt_set ~key:(Printf.sprintf "k%d" i)
                     ~flags:0 ~value:"v");
                match Netsim.recv c with
                | Some r when r = Kvcache.Proto.stored -> incr benign_ok
                | _ -> ()
              done;
              Netsim.close c)
        in
        let evil =
          Sched.spawn sched ~name:"evil" (fun () ->
              for _ = 1 to attacks do
                Sched.sleep 10_000.0;
                let c = Netsim.connect net ~src:777 ~port:11211 in
                Netsim.send c
                  (Kvcache.Proto.fmt_set_lying ~key:"pwn" ~flags:0
                     ~declared:(-1) ~value:(String.make 300 'X'));
                ignore (Netsim.recv c);
                Netsim.close c
              done)
        in
        Sched.join good;
        Sched.join evil;
        Kvcache.Server.stop s)
  in
  Sched.run sched;
  let s = Option.get !srv in
  let rewind_cycles =
    List.fold_left ( +. ) 0.0 (Kvcache.Server.rewind_latencies s)
  in
  (Kvcache.Server.rewinds s, rewind_cycles,
   Kvcache.Server.busy_rejections s, !benign_ok)

let r1 () =
  section "R1 (supervision, §VI) rewind budget caps the DoS amplifier";
  let attacks = if !quick then 8 else 25 in
  let row name supervised =
    let rewinds, cycles, busy, benign = run_dos_amplifier ~supervised ~attacks in
    [
      name;
      string_of_int attacks;
      string_of_int rewinds;
      Printf.sprintf "%.1f us" (us_of cycles);
      string_of_int busy;
      string_of_int benign;
    ]
  in
  table
    ~header:
      [ "server"; "attacks"; "rewinds"; "rewind time"; "busy replies";
        "benign ok" ]
    [ row "unsupervised" false; row "supervised" true ];
  print_endline
    "unsupervised pays one rewind per attack; supervised pays at most the \
     budget (3) and answers the rest with SERVER_ERROR busy, with no benign \
     losses"

(* {1 R2 — telemetry: switch-cost anatomy from span traces} *)

let r2 () =
  section
    "R2 (telemetry) switch-cost anatomy — PKRU-write share of an enter+exit \
     pair, measured from span traces";
  let pairs = if !quick then 64 else 512 in
  let tracer = Telemetry.Trace.create ~capacity:32768 () in
  let space = Space.create ~size_mib:64 () in
  let sched = Sched.create () in
  let _ =
    Sched.spawn sched ~name:"bench" (fun () ->
        let sd = Api.create ~tracer space in
        let udi = 0x7FFF_FE00 in
        Api.run sd ~udi
          ~on_rewind:(fun _ -> assert false)
          (fun () ->
            (* Warm-up pair first — and only then enable the tracer — so
               first-touch page faults and init spans stay out of the
               aggregate. *)
            Api.enter sd udi;
            Api.exit_domain sd;
            Telemetry.Trace.set_enabled tracer true;
            for _ = 1 to pairs do
              Api.enter sd udi;
              Api.exit_domain sd
            done;
            Telemetry.Trace.set_enabled tracer false;
            Api.destroy sd udi ~heap:`Discard))
  in
  Sched.run sched;
  let agg = Telemetry.Trace.aggregate tracer in
  let total_of name =
    match List.assoc_opt name agg with Some (_, c) -> c | None -> 0.0
  in
  let count_of name =
    match List.assoc_opt name agg with Some (n, _) -> n | None -> 0
  in
  let pair_total = total_of "switch.enter" +. total_of "switch.exit" in
  let pkru = total_of "switch.pkru_write" in
  let share = pkru /. pair_total in
  table
    ~header:[ "span"; "count"; "total cycles"; "per pair"; "share of pair" ]
    (List.map
       (fun name ->
         let n = count_of name and c = total_of name in
         [
           name;
           string_of_int n;
           Printf.sprintf "%.0f" c;
           Printf.sprintf "%.1f" (c /. float_of_int pairs);
           Printf.sprintf "%.1f%%" (100.0 *. c /. pair_total);
         ])
       [
         "switch.pkru_write"; "switch.stack_swap"; "switch.bookkeeping";
         "switch.enter"; "switch.exit";
       ]);
  Printf.printf
    "%d enter+exit pairs: %.0f cycles each (%.2f us); PKRU writes account for \
     %.1f%% of the pair — paper reports 30-50%%\n"
    pairs
    (pair_total /. float_of_int pairs)
    (us_of (pair_total /. float_of_int pairs))
    (100.0 *. share);
  if share < 0.30 || share > 0.50 then begin
    Printf.eprintf
      "R2 FAIL: PKRU-write share %.1f%% is outside the paper's 30-50%% band\n"
      (100.0 *. share);
    exit 1
  end

(* {1 R3 — access-grant cache: host time per simulated access, hit rate} *)

(* The software TLB must be invisible in virtual time (the differential
   property test proves that), so this experiment measures what it is
   allowed to change: host wall-clock per simulated checked access. The
   same kvcache YCSB workload runs with the cache off and on (best of
   [reps] to damp scheduler noise); the access count comes from the
   cached run's hit+miss counters and is identical across runs because
   the simulation is deterministic. Emits BENCH_r3.json and fails when
   the hit rate drops below 90%. *)
let r3 () =
  section
    "R3 (grant cache) — host time per simulated access and hit rate, \
     kvcache YCSB workload";
  let records = mc_records () and operations = mc_operations () in
  let workers = 4 and clients = 8 in
  let reps = if !quick then 2 else 3 in
  let run ~grant_cache =
    let best = ref infinity and last = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r =
        run_memcached ~grant_cache ~variant:Kvcache.Server.Sdrad ~workers
          ~records ~operations ~clients ()
      in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      last := Some r
    done;
    (!best, Option.get !last)
  in
  let host_off, _ = run ~grant_cache:false in
  let host_on, r_on = run ~grant_cache:true in
  let space = r_on.mc_space in
  let hits = Space.tlb_hits space and misses = Space.tlb_misses space in
  let shootdowns = Space.tlb_shootdowns space in
  let accesses = hits + misses in
  let hit_rate = float_of_int hits /. float_of_int accesses in
  let ns_per ~host = host *. 1e9 /. float_of_int accesses in
  table
    ~header:[ "config"; "host s"; "host ns/access"; "hits"; "misses"; "hit rate" ]
    [
      [
        "cache off"; Printf.sprintf "%.3f" host_off;
        Printf.sprintf "%.1f" (ns_per ~host:host_off); "-"; "-"; "-";
      ];
      [
        "cache on"; Printf.sprintf "%.3f" host_on;
        Printf.sprintf "%.1f" (ns_per ~host:host_on);
        string_of_int hits; string_of_int misses;
        Printf.sprintf "%.1f%%" (100.0 *. hit_rate);
      ];
    ];
  Printf.printf
    "grant cache: %.1f%% hit rate over %d checked accesses, %d shootdowns; \
     host time %.3fs -> %.3fs (%.2fx)\n"
    (100.0 *. hit_rate) accesses shootdowns host_off host_on
    (host_off /. host_on);
  let oc = open_out "BENCH_r3.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"r3\",\n\
    \  \"workload\": { \"server\": \"kvcache\", \"variant\": \"sdrad\", \
     \"workers\": %d, \"clients\": %d, \"records\": %d, \"operations\": %d \
     },\n\
    \  \"accesses\": %d,\n\
    \  \"tlb_hits\": %d,\n\
    \  \"tlb_misses\": %d,\n\
    \  \"tlb_shootdowns\": %d,\n\
    \  \"hit_rate\": %.4f,\n\
    \  \"host_seconds_cache_off\": %.4f,\n\
    \  \"host_seconds_cache_on\": %.4f,\n\
    \  \"host_ns_per_access_cache_off\": %.2f,\n\
    \  \"host_ns_per_access_cache_on\": %.2f,\n\
    \  \"host_speedup\": %.3f\n\
     }\n"
    workers clients records operations accesses hits misses shootdowns
    hit_rate host_off host_on (ns_per ~host:host_off) (ns_per ~host:host_on)
    (host_off /. host_on);
  close_out oc;
  print_endline "wrote BENCH_r3.json";
  if hit_rate < 0.90 then begin
    Printf.eprintf "R3 FAIL: grant-cache hit rate %.1f%% is below 90%%\n"
      (100.0 *. hit_rate);
    exit 1
  end

(* {1 R4 — end-to-end recovery: goodput and tail latency under faults} *)

(* Retrying YCSB clients carrying idempotency keys run against the sdrad
   kvcache server twice: fault-free, and under a ~1% mixed fault diet
   (network drops plus injected domain corruption that forces rewinds).
   Goodput is acknowledged operations per virtual second; the p99
   client-observed RTT stands in for recovery latency — a faulted
   operation's RTT includes every timeout, backoff, busy reply and
   rewind it rode through. Emits BENCH_r4.json. Fails when any client
   exhausts its options (failures > 0 breaks the acked-exactly-once
   argument) or faulted goodput falls below 0.6x of fault-free. *)
let r4 () =
  section
    "R4 (recovery) — goodput and p99 latency under ~1% faults, retrying \
     clients with idempotency keys";
  let records = mc_records () and operations = mc_operations () in
  let workers = 4 and clients = 8 in
  let retry_policy =
    {
      Resilience.Retry.default_policy with
      attempt_timeout = 150_000.0;
      overall_timeout = 8.0e6;
      backoff_base = 5_000.0;
      backoff_cap = 160_000.0;
    }
  in
  let net_fault_prob = 0.01 and domain_fault_prob = 0.005 in
  let run ~faulty =
    let space = Space.create ~size_mib:192 () in
    let sd = Api.create space in
    let sched = Sched.create () in
    let net = Netsim.create (Space.cost space) in
    (* Lenient supervision, as in the chaos soak: the injected corruption
       is random noise, so backoff verdicts (busy replies the clients
       retry through) are wanted but outright quarantine is not. *)
    let sup =
      Resilience.Supervisor.attach
        ~policy:
          {
            Resilience.Supervisor.default_policy with
            budget_max = 100;
            backoff_base = 2_000.0;
            backoff_max = 20_000.0;
          }
        sd
    in
    let faults =
      if faulty then
        Some
          (Resilience.Fault_inject.create ~seed:97
             [
               Resilience.Fault_inject.rule ~prob:domain_fault_prob
                 ~site:"kv.domain" Resilience.Fault_inject.Wild_write;
             ])
      else None
    in
    if faulty then begin
      let rng = Simkern.Rng.create 131 in
      Netsim.set_fault_hook net
        (Some
           (fun ~len:_ ->
             if Simkern.Rng.float rng < net_fault_prob then Netsim.Drop
             else Netsim.Deliver))
    end;
    let cfg =
      { Kvcache.Server.default_config with variant = Kvcache.Server.Sdrad; workers }
    in
    let ycfg =
      {
        Workload.Ycsb.default_config with
        records;
        operations;
        clients;
        retry = Some retry_policy;
      }
    in
    let srv = ref None in
    let results = ref (fun () -> failwith "unset") in
    let _ =
      Sched.spawn sched ~name:"harness" (fun () ->
          let s =
            Kvcache.Server.start sched space ~sdrad:sd ~supervisor:sup ?faults
              net cfg
          in
          srv := Some s;
          results :=
            Workload.Ycsb.launch sched net ycfg
              ~on_done:(fun () -> Kvcache.Server.stop s)
              ())
    in
    Sched.run sched;
    (!results (), Option.get !srv)
  in
  let r_ok, s_ok = run ~faulty:false in
  let r_ft, s_ft = run ~faulty:true in
  let goodput r =
    Stats.ops_per_sec cost
      ~ops:(r.Workload.Ycsb.run_ops - r.Workload.Ycsb.failures)
      ~cycles:r.Workload.Ycsb.run_cycles
  in
  let lat r = Stats.summarize (List.map us_of r.Workload.Ycsb.run_latencies) in
  let g_ok = goodput r_ok and g_ft = goodput r_ft in
  let l_ok = lat r_ok and l_ft = lat r_ft in
  let ratio = g_ft /. g_ok in
  let row name r s g (l : Stats.summary) =
    [
      name;
      Stats.Table.fmt_si g;
      Printf.sprintf "%.1f" l.p50;
      Printf.sprintf "%.1f" l.p99;
      string_of_int r.Workload.Ycsb.retries;
      string_of_int (Kvcache.Server.rewinds s);
      string_of_int (Kvcache.Server.replay_hits s);
      string_of_int (Kvcache.Server.shed_count s);
      string_of_int r.Workload.Ycsb.failures;
    ]
  in
  table
    ~header:
      [
        "config"; "goodput ops/s"; "p50 us"; "p99 us"; "retries"; "rewinds";
        "replays"; "shed"; "failures";
      ]
    [
      row "fault-free" r_ok s_ok g_ok l_ok;
      row "~1% faults" r_ft s_ft g_ft l_ft;
    ];
  Printf.printf
    "faulted goodput %.2fx of fault-free; p99 %.1f us -> %.1f us; %d retries \
     rode through %d rewinds with %d journal replays and 0 lost or duplicated \
     acks\n"
    ratio l_ok.p99 l_ft.p99 r_ft.Workload.Ycsb.retries
    (Kvcache.Server.rewinds s_ft)
    (Kvcache.Server.replay_hits s_ft);
  let oc = open_out "BENCH_r4.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"r4\",\n\
    \  \"workload\": { \"server\": \"kvcache\", \"variant\": \"sdrad\", \
     \"workers\": %d, \"clients\": %d, \"records\": %d, \"operations\": %d \
     },\n\
    \  \"net_fault_prob\": %.3f,\n\
    \  \"domain_fault_prob\": %.3f,\n\
    \  \"goodput_fault_free\": %.1f,\n\
    \  \"goodput_faulted\": %.1f,\n\
    \  \"goodput_ratio\": %.4f,\n\
    \  \"p50_us_fault_free\": %.2f,\n\
    \  \"p99_us_fault_free\": %.2f,\n\
    \  \"p50_us_faulted\": %.2f,\n\
    \  \"p99_us_faulted\": %.2f,\n\
    \  \"retries_faulted\": %d,\n\
    \  \"rewinds_faulted\": %d,\n\
    \  \"replay_hits_faulted\": %d,\n\
    \  \"shed_faulted\": %d,\n\
    \  \"failures_fault_free\": %d,\n\
    \  \"failures_faulted\": %d\n\
     }\n"
    workers clients records operations net_fault_prob domain_fault_prob g_ok
    g_ft ratio l_ok.p50 l_ok.p99 l_ft.p50 l_ft.p99 r_ft.Workload.Ycsb.retries
    (Kvcache.Server.rewinds s_ft)
    (Kvcache.Server.replay_hits s_ft)
    (Kvcache.Server.shed_count s_ft)
    r_ok.Workload.Ycsb.failures r_ft.Workload.Ycsb.failures;
  close_out oc;
  print_endline "wrote BENCH_r4.json";
  if r_ok.Workload.Ycsb.failures > 0 || r_ft.Workload.Ycsb.failures > 0 then begin
    Printf.eprintf
      "R4 FAIL: %d fault-free / %d faulted operations ran out of retries — \
       the acked-exactly-once invariant needs every op acknowledged\n"
      r_ok.Workload.Ycsb.failures r_ft.Workload.Ycsb.failures;
    exit 1
  end;
  if ratio < 0.6 then begin
    Printf.eprintf
      "R4 FAIL: faulted goodput is %.2fx of fault-free (floor 0.6x)\n" ratio;
    exit 1
  end

(* {1 R5 — fleet scaling: aggregate goodput and p99 vs shard count} *)

(* An open-loop YCSB fleet (10⁴ logical clients on a pre-scheduled
   arrival grid — no coordinated omission) drives the sharded cluster
   router at a fixed offered load chosen to saturate even the largest
   fleet, so measured goodput is capacity, not demand. The router tier
   scales with the fleet (router workers ∝ shards) so shard capacity is
   what is measured. Retrying clients with idempotency keys ride through
   the busy replies shedding produces, exactly as in R4 but at fleet
   scale. Emits BENCH_r5.json; fails when 4-shard aggregate goodput is
   below 2.8x the 1-shard figure (≥ 0.7x linear scaling). *)
let r5 () =
  section
    "R5 (cluster) — aggregate goodput and p99 vs shard count, open-loop \
     fleet over the consistent-hash router";
  let clients = if !quick then 2_000 else 10_000 in
  let operations = if !quick then 6_000 else 20_000 in
  let records = if !quick then 800 else 2_000 in
  (* Offered load at ~90% of 4-shard capacity (measured ≈ 0.9 acked ops
     per kcycle): the largest fleet carries the load with headroom while
     the smaller ones saturate at their own capacity, so the ratio reads
     as "how much offered load the fleet absorbs before goodput caps".
     Oversaturating every config instead would let retry amplification
     (extra attempts from the very clients being shed) depress the
     largest config the most and understate scaling. *)
  let arrival_interval = 1_250.0 in
  let shard_counts = [ 1; 2; 4 ] in
  let retry_policy =
    {
      Resilience.Retry.default_policy with
      attempt_timeout = 400_000.0;
      overall_timeout = 10.0e6;
      backoff_base = 10_000.0;
      backoff_cap = 320_000.0;
    }
  in
  let run ~shards =
    let sched = Sched.create () in
    let net = Netsim.create cost in
    (* Router workers scale with the fleet (12 per shard) so the shard
       tier — 4 kv workers at 12k proc cycles each — is what saturates:
       12 synchronous forwards in flight per shard keep its queue wait
       (~36k cycles) well under the 200k forward deadline. *)
    let cfg =
      {
        Cluster.Fleet.default_config with
        shards;
        router_workers = 12 * shards;
      }
    in
    let ycfg =
      {
        Workload.Ycsb.default_config with
        records;
        operations;
        clients;
        value_size = 64;
        port = cfg.Cluster.Fleet.router_port;
        retry = Some retry_policy;
        arrival_interval;
        (* Uniform keys: this experiment measures how fleet *capacity*
           scales with shard count. Zipfian skew concentrates the hot
           keys on whichever shard owns them, so the hot shard saturates
           first and aggregate goodput plateaus — a real phenomenon, but
           it measures key-popularity imbalance, not the router/failover
           machinery this bench exists to size. *)
        distribution = Workload.Ycsb.Uniform;
      }
    in
    let fleet = ref None in
    let results = ref (fun () -> failwith "unset") in
    let _ =
      Sched.spawn sched ~name:"harness" (fun () ->
          let t = Cluster.Fleet.start sched net cfg in
          fleet := Some t;
          results :=
            Workload.Ycsb.launch sched net ycfg
              ~on_done:(fun () -> Cluster.Fleet.stop t)
              ())
    in
    Sched.run sched;
    (!results (), Option.get !fleet)
  in
  let outcomes = List.map (fun shards -> (shards, run ~shards)) shard_counts in
  let goodput (r : Workload.Ycsb.results) =
    Stats.ops_per_sec cost
      ~ops:(r.Workload.Ycsb.run_ops - r.Workload.Ycsb.failures)
      ~cycles:r.Workload.Ycsb.run_cycles
  in
  let lat (r : Workload.Ycsb.results) =
    Stats.summarize (List.map us_of r.Workload.Ycsb.run_latencies)
  in
  table
    ~header:
      [
        "shards"; "goodput ops/s"; "p50 us"; "p99 us"; "retries"; "routed";
        "shed"; "timeouts"; "failures";
      ]
    (List.map
       (fun (shards, ((r : Workload.Ycsb.results), t)) ->
         let l = lat r in
         [
           string_of_int shards;
           Stats.Table.fmt_si (goodput r);
           Printf.sprintf "%.1f" l.Stats.p50;
           Printf.sprintf "%.1f" l.Stats.p99;
           string_of_int r.Workload.Ycsb.retries;
           string_of_int (Cluster.Fleet.routed t);
           string_of_int (Cluster.Fleet.router_shed t);
           string_of_int (Cluster.Fleet.forward_timeouts t);
           string_of_int r.Workload.Ycsb.failures;
         ])
       outcomes);
  let find n = List.assoc n outcomes in
  let r1_, _ = find 1 and r4_, _ = find 4 in
  let g1 = goodput r1_ and g4 = goodput r4_ in
  let scaling = g4 /. g1 in
  Printf.printf
    "aggregate goodput scales %.2fx from 1 to 4 shards (gate: >= 2.8x); p99 \
     %.1f us -> %.1f us under the same offered load\n"
    scaling (lat r1_).Stats.p99 (lat r4_).Stats.p99;
  let oc = open_out "BENCH_r5.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"r5\",\n\
    \  \"workload\": { \"server\": \"kvcache-cluster\", \"variant\": \
     \"sdrad\", \"clients\": %d, \"records\": %d, \"operations\": %d, \
     \"arrival_interval_cycles\": %.0f },\n\
    \  \"shards\": [%s],\n\
    \  \"goodput_ops_per_sec\": [%s],\n\
    \  \"p50_us\": [%s],\n\
    \  \"p99_us\": [%s],\n\
    \  \"retries\": [%s],\n\
    \  \"failures\": [%s],\n\
    \  \"scaling_1_to_4\": %.3f,\n\
    \  \"scaling_gate\": 2.8\n\
     }\n"
    clients records operations arrival_interval
    (String.concat ", "
       (List.map (fun (s, _) -> string_of_int s) outcomes))
    (String.concat ", "
       (List.map (fun (_, (r, _)) -> Printf.sprintf "%.1f" (goodput r)) outcomes))
    (String.concat ", "
       (List.map
          (fun (_, (r, _)) -> Printf.sprintf "%.2f" (lat r).Stats.p50)
          outcomes))
    (String.concat ", "
       (List.map
          (fun (_, (r, _)) -> Printf.sprintf "%.2f" (lat r).Stats.p99)
          outcomes))
    (String.concat ", "
       (List.map
          (fun (_, (r, _)) -> string_of_int r.Workload.Ycsb.retries)
          outcomes))
    (String.concat ", "
       (List.map
          (fun (_, (r, _)) -> string_of_int r.Workload.Ycsb.failures)
          outcomes))
    scaling;
  close_out oc;
  print_endline "wrote BENCH_r5.json";
  if scaling < 2.8 then begin
    Printf.eprintf
      "R5 FAIL: 4-shard aggregate goodput is %.2fx of 1-shard (gate 2.8x)\n"
      scaling;
    exit 1
  end

(* {1 GATE — switch cost below the PKRU floor: elision + batched gates}

   Two halves. (1) Anatomy: a server-shaped request loop — flight-recorder
   admit, enter, exit — measured with the always-write slow path, with
   value elision alone, and inside a batched gate; PKRU cycles are derived
   from the actual write count, never a hardcoded multiplier. Elision
   alone must change nothing (a plain request repeats no value, which is
   why the R2 band still holds), while the batched gate drops the share
   below the 30% floor the paper's anatomy bottoms out at. (2) The
   kvcache YCSB overhead vs. baseline with batched gates on, which must
   improve on the recorded -3.7%/-6.6% run/load sdrad overhead. Emits
   BENCH_gate.json and fails when either gate is missed. *)
let gate () =
  section "GATE — elision + batched gates: PKRU share and kvcache overhead";
  let pairs = if !quick then 128 else 512 in
  let anatomy ~elide ~batched =
    simulate (fun space _ ->
        let sd = Api.create space in
        if not elide then Space.set_pkru_elision space false;
        let udi = 0x7FFF_FD00 in
        let total = ref 0.0 and writes = ref 0 and elided = ref 0 in
        Api.run sd ~udi
          ~on_rewind:(fun _ -> assert false)
          (fun () ->
            (* Warm-up request first, so first-touch page faults and init
               spans stay out of the aggregate. *)
            Api.enter sd udi;
            Api.exit_domain sd;
            let request () =
              Api.flight_event sd ~udi Checkpoint.Flight.Admit;
              Api.enter sd udi;
              Api.exit_domain sd
            in
            let w0 = Space.wrpkru_writes space
            and e0 = Space.pkru_elided space
            and t0 = Sched.now () in
            (if batched then
               Api.with_gate sd (fun () ->
                   for _ = 1 to pairs do
                     request ()
                   done)
             else
               for _ = 1 to pairs do
                 request ()
               done);
            total := Sched.now () -. t0;
            writes := Space.wrpkru_writes space - w0;
            elided := Space.pkru_elided space - e0;
            Api.destroy sd udi ~heap:`Discard);
        let n = float_of_int pairs in
        let pkru = float_of_int !writes *. cost.Simkern.Cost.wrpkru in
        ( !total /. n,
          pkru /. !total,
          float_of_int !writes /. n,
          float_of_int !elided /. n ))
  in
  let p_cycles, p_share, p_writes, _ = anatomy ~elide:false ~batched:false in
  let e_cycles, e_share, e_writes, e_elided = anatomy ~elide:true ~batched:false in
  let b_cycles, b_share, b_writes, b_elided = anatomy ~elide:true ~batched:true in
  let row name c share w el =
    [
      name;
      Printf.sprintf "%.1f" c;
      Printf.sprintf "%.2f" w;
      Printf.sprintf "%.2f" el;
      Printf.sprintf "%.1f%%" (100.0 *. share);
    ]
  in
  table
    ~header:
      [ "config"; "cycles/request"; "writes/req"; "elided/req"; "PKRU share" ]
    [
      row "always-write" p_cycles p_share p_writes 0.0;
      row "elision only" e_cycles e_share e_writes e_elided;
      row "batched gate" b_cycles b_share b_writes b_elided;
    ];
  Printf.printf
    "per request: %.1f -> %.1f cycles; PKRU share %.1f%% -> %.1f%% (floor \
     30%%)\n"
    p_cycles b_cycles (100.0 *. p_share) (100.0 *. b_share);
  let records = mc_records () and operations = mc_operations () in
  let workers = 4 and clients = 16 in
  let base =
    run_memcached ~variant:Kvcache.Server.Baseline ~workers ~records
      ~operations ~clients ()
  in
  let plain =
    run_memcached ~variant:Kvcache.Server.Sdrad ~workers ~records ~operations
      ~clients ()
  in
  let gated =
    run_memcached ~variant:Kvcache.Server.Sdrad ~gate_batch_limit:8 ~workers
      ~records ~operations ~clients ()
  in
  let ov b v = 100.0 *. (v -. b) /. b in
  let run_plain = ov base.mc_run_tput plain.mc_run_tput in
  let load_plain = ov base.mc_load_tput plain.mc_load_tput in
  let run_gated = ov base.mc_run_tput gated.mc_run_tput in
  let load_gated = ov base.mc_load_tput gated.mc_load_tput in
  let mc_row name r =
    [
      name;
      Stats.Table.fmt_si r.mc_load_tput;
      Printf.sprintf "%s" (pct base.mc_load_tput r.mc_load_tput);
      Stats.Table.fmt_si r.mc_run_tput;
      Printf.sprintf "%s" (pct base.mc_run_tput r.mc_run_tput);
    ]
  in
  table
    ~header:[ "variant"; "load op/s"; "vs base"; "run op/s"; "vs base" ]
    [
      mc_row "baseline" base;
      mc_row "sdrad" plain;
      mc_row "sdrad+gate" gated;
    ];
  Printf.printf
    "kvcache sdrad overhead: run %.1f%% -> %.1f%%, load %.1f%% -> %.1f%% \
     (recorded baseline -3.7%%/-6.6%%)\n"
    run_plain run_gated load_plain load_gated;
  let oc = open_out "BENCH_gate.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"gate\",\n\
    \  \"anatomy_pairs\": %d,\n\
    \  \"cycles_per_request_plain\": %.2f,\n\
    \  \"cycles_per_request_elided\": %.2f,\n\
    \  \"cycles_per_request_batched\": %.2f,\n\
    \  \"pkru_share_plain\": %.4f,\n\
    \  \"pkru_share_elided\": %.4f,\n\
    \  \"pkru_share_batched\": %.4f,\n\
    \  \"writes_per_request_plain\": %.2f,\n\
    \  \"writes_per_request_batched\": %.2f,\n\
    \  \"workload\": { \"workers\": %d, \"clients\": %d, \"records\": %d, \
     \"operations\": %d },\n\
    \  \"kv_run_overhead_pct_plain\": %.2f,\n\
    \  \"kv_load_overhead_pct_plain\": %.2f,\n\
    \  \"kv_run_overhead_pct_gated\": %.2f,\n\
    \  \"kv_load_overhead_pct_gated\": %.2f,\n\
    \  \"baseline_run_overhead_pct\": -3.7,\n\
    \  \"baseline_load_overhead_pct\": -6.6\n\
     }\n"
    pairs p_cycles e_cycles b_cycles p_share e_share b_share p_writes b_writes
    workers clients records operations run_plain load_plain run_gated
    load_gated;
  close_out oc;
  print_endline "wrote BENCH_gate.json";
  if b_share >= 0.30 then begin
    Printf.eprintf
      "GATE FAIL: batched PKRU share %.1f%% is not below the 30%% floor\n"
      (100.0 *. b_share);
    exit 1
  end;
  if run_gated < -3.7 || load_gated < -6.6 then begin
    Printf.eprintf
      "GATE FAIL: gated kvcache overhead run %.1f%% / load %.1f%% does not \
       improve on the -3.7%%/-6.6%% baseline\n"
      run_gated load_gated;
    exit 1
  end
