module Sched = Simkern.Sched

let now () = if Sched.in_thread () then Sched.now () else 0.0
let cur_tid () = if Sched.in_thread () then Sched.self () else -1

(* {1 Metrics} *)

module Metrics = struct
  type counter = { mutable c : int }
  type gauge = { mutable g : float }

  type histogram = {
    bounds : float array;  (* ascending upper bounds, +Inf implicit *)
    buckets : int array;  (* cumulative at exposition, raw here *)
    mutable sum : float;
    mutable hcount : int;
    ex_id : string array;  (* per-bucket exemplar id (incl. +Inf); "" = none *)
    ex_v : float array;  (* value the exemplar was observed with *)
  }

  type instrument =
    | C of counter
    | Cfn of (unit -> int)
    | G of gauge
    | Gfn of (unit -> float)
    | H of histogram

  type family = {
    f_name : string;
    f_help : string;
    f_kind : [ `Counter | `Gauge | `Histogram ];
    mutable f_series : ((string * string) list * instrument) list;
        (* insertion order; sorted at exposition *)
  }

  type t = { families : (string, family) Hashtbl.t }

  let create () = { families = Hashtbl.create 32 }

  let kind_name = function
    | `Counter -> "counter"
    | `Gauge -> "gauge"
    | `Histogram -> "histogram"

  let family t ~kind ~help name =
    match Hashtbl.find_opt t.families name with
    | Some f ->
        if f.f_kind <> kind then
          invalid_arg
            (Printf.sprintf "Telemetry.Metrics: %s registered as %s, asked as %s"
               name (kind_name f.f_kind) (kind_name kind));
        f
    | None ->
        let f = { f_name = name; f_help = help; f_kind = kind; f_series = [] } in
        Hashtbl.replace t.families name f;
        f

  (* Get-or-create the series for a label set within a family. *)
  let series f labels make =
    match List.assoc_opt labels f.f_series with
    | Some i -> i
    | None ->
        let i = make () in
        f.f_series <- f.f_series @ [ (labels, i) ];
        i

  let counter t ?(help = "") ?(labels = []) name =
    let f = family t ~kind:`Counter ~help name in
    match series f labels (fun () -> C { c = 0 }) with
    | C c -> c
    | _ -> invalid_arg ("Telemetry.Metrics: " ^ name ^ " is callback-backed")

  let inc c = c.c <- c.c + 1

  let add c n =
    if n < 0 then invalid_arg "Telemetry.Metrics.add: counters only go up";
    c.c <- c.c + n

  let counter_value c = c.c

  let counter_fn t ?(help = "") ?(labels = []) name fn =
    let f = family t ~kind:`Counter ~help name in
    ignore (series f labels (fun () -> Cfn fn))

  let gauge t ?(help = "") ?(labels = []) name =
    let f = family t ~kind:`Gauge ~help name in
    match series f labels (fun () -> G { g = 0.0 }) with
    | G g -> g
    | _ -> invalid_arg ("Telemetry.Metrics: " ^ name ^ " is callback-backed")

  let set g v = g.g <- v
  let gauge_value g = g.g

  let gauge_fn t ?(help = "") ?(labels = []) name fn =
    let f = family t ~kind:`Gauge ~help name in
    ignore (series f labels (fun () -> Gfn fn))

  let default_buckets = Array.init 14 (fun i -> 4.0 ** float_of_int i)

  let histogram t ?(help = "") ?(labels = []) ?(buckets = default_buckets) name =
    let f = family t ~kind:`Histogram ~help name in
    match
      series f labels (fun () ->
          H
            {
              bounds = Array.copy buckets;
              buckets = Array.make (Array.length buckets) 0;
              sum = 0.0;
              hcount = 0;
              ex_id = Array.make (Array.length buckets + 1) "";
              ex_v = Array.make (Array.length buckets + 1) 0.0;
            })
    with
    | H h -> h
    | _ -> assert false

  (* Index of the bucket [v] lands in; [length bounds] is the implicit
     +Inf bucket. *)
  let bucket_index h v =
    let n = Array.length h.bounds in
    let rec place i = if i < n && v > h.bounds.(i) then place (i + 1) else i in
    place 0

  let observe_exemplar h v ~exemplar =
    let i = bucket_index h v in
    if i < Array.length h.bounds then h.buckets.(i) <- h.buckets.(i) + 1;
    (* above the last bound: lands only in the implicit +Inf bucket *)
    if exemplar <> "" then begin
      h.ex_id.(i) <- exemplar;
      h.ex_v.(i) <- v
    end;
    h.sum <- h.sum +. v;
    h.hcount <- h.hcount + 1

  let observe h v = observe_exemplar h v ~exemplar:""
  let hist_count h = h.hcount
  let hist_sum h = h.sum

  (* Raw (non-cumulative) per-bucket counts with their finite upper
     bounds; the implicit +Inf bucket is [hist_count] minus their sum. *)
  let hist_buckets h =
    Array.to_list (Array.mapi (fun i b -> (b, h.buckets.(i))) h.bounds)

  let hist_exemplars h =
    let n = Array.length h.bounds in
    List.filter_map
      (fun i ->
        if h.ex_id.(i) = "" then None
        else
          let bound = if i < n then h.bounds.(i) else infinity in
          Some (bound, h.ex_v.(i), h.ex_id.(i)))
      (List.init (n + 1) Fun.id)

  let series_count t =
    Hashtbl.fold (fun _ f acc -> acc + List.length f.f_series) t.families 0

  (* Point read of one series by name + label set; [None] for unknown
     names, missing label sets and histograms (which have no single
     value). This is what operator surfaces use instead of the old
     assoc-list stats snapshot. *)
  let sample t ?(labels = []) name =
    match Hashtbl.find_opt t.families name with
    | None -> None
    | Some f -> (
        match List.assoc_opt labels f.f_series with
        | Some (C c) -> Some (float_of_int c.c)
        | Some (Cfn fn) -> Some (float_of_int (fn ()))
        | Some (G g) -> Some g.g
        | Some (Gfn fn) -> Some (fn ())
        | Some (H _) | None -> None)

  (* Fold every series of [src] into [dst], summing with whatever the
     same (name, labels) series already holds there: counters add their
     current value (callback-backed ones are sampled and materialize as
     plain counters), gauges sum, histograms merge bucket-by-bucket
     (first exemplar wins). This is the cluster-aggregation primitive:
     merging each shard's registry into a fresh one yields a single
     fleet-wide scrape surface whose exposition is deterministic, since
     [expose] sorts families and series. Histograms with differing
     bucket layouts for one series name cannot be summed meaningfully
     and are skipped. *)
  let merge_into ~dst src =
    Hashtbl.iter
      (fun name sf ->
        let df = family dst ~kind:sf.f_kind ~help:sf.f_help name in
        List.iter
          (fun (labels, inst) ->
            match inst with
            | C _ | Cfn _ -> (
                let v = match inst with
                  | C c -> c.c
                  | Cfn fn -> fn ()
                  | _ -> 0
                in
                match series df labels (fun () -> C { c = 0 }) with
                | C dc -> dc.c <- dc.c + v
                | _ -> ())
            | G _ | Gfn _ -> (
                let v = match inst with
                  | G g -> g.g
                  | Gfn fn -> fn ()
                  | _ -> 0.0
                in
                match series df labels (fun () -> G { g = 0.0 }) with
                | G dg -> dg.g <- dg.g +. v
                | _ -> ())
            | H h -> (
                match
                  series df labels (fun () ->
                      H
                        {
                          bounds = Array.copy h.bounds;
                          buckets = Array.make (Array.length h.bounds) 0;
                          sum = 0.0;
                          hcount = 0;
                          ex_id = Array.make (Array.length h.bounds + 1) "";
                          ex_v = Array.make (Array.length h.bounds + 1) 0.0;
                        })
                with
                | H dh when dh.bounds = h.bounds ->
                    Array.iteri
                      (fun i v -> dh.buckets.(i) <- dh.buckets.(i) + v)
                      h.buckets;
                    dh.sum <- dh.sum +. h.sum;
                    dh.hcount <- dh.hcount + h.hcount;
                    Array.iteri
                      (fun i id ->
                        if id <> "" && dh.ex_id.(i) = "" then begin
                          dh.ex_id.(i) <- id;
                          dh.ex_v.(i) <- h.ex_v.(i)
                        end)
                      h.ex_id
                | _ -> ()))
          sf.f_series)
      src.families

  (* {2 Exposition} *)

  let escape_label v =
    let b = Buffer.create (String.length v) in
    String.iter
      (fun ch ->
        match ch with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      v;
    Buffer.contents b

  let fmt_labels = function
    | [] -> ""
    | labels ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
               labels)
        ^ "}"

  (* Integral values print without a decimal point so counters read as the
     integers they are; everything else gets shortest-roundish %.6g. *)
  let fmt_value v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.6g" v

  let fmt_bound v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%g" v

  let expose t =
    let b = Buffer.create 1024 in
    let families =
      Hashtbl.fold (fun _ f acc -> f :: acc) t.families []
      |> List.sort (fun a b -> compare a.f_name b.f_name)
    in
    List.iter
      (fun f ->
        if f.f_help <> "" then
          Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" f.f_name f.f_help);
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" f.f_name (kind_name f.f_kind));
        let sorted =
          List.sort (fun (la, _) (lb, _) -> compare la lb) f.f_series
        in
        List.iter
          (fun (labels, i) ->
            match i with
            | C c ->
                Buffer.add_string b
                  (Printf.sprintf "%s%s %d\n" f.f_name (fmt_labels labels) c.c)
            | Cfn fn ->
                Buffer.add_string b
                  (Printf.sprintf "%s%s %d\n" f.f_name (fmt_labels labels) (fn ()))
            | G g ->
                Buffer.add_string b
                  (Printf.sprintf "%s%s %s\n" f.f_name (fmt_labels labels)
                     (fmt_value g.g))
            | Gfn fn ->
                Buffer.add_string b
                  (Printf.sprintf "%s%s %s\n" f.f_name (fmt_labels labels)
                     (fmt_value (fn ())))
            | H h ->
                (* OpenMetrics-style exemplar suffix on bucket lines:
                   [# {trace="<id>"} <value>]. Only buckets that saw an
                   exemplar-carrying observation get one. *)
                let exemplar bi =
                  if h.ex_id.(bi) = "" then ""
                  else
                    Printf.sprintf " # {trace=\"%s\"} %s"
                      (escape_label h.ex_id.(bi))
                      (fmt_value h.ex_v.(bi))
                in
                let cum = ref 0 in
                Array.iteri
                  (fun bi bound ->
                    cum := !cum + h.buckets.(bi);
                    Buffer.add_string b
                      (Printf.sprintf "%s_bucket%s %d%s\n" f.f_name
                         (fmt_labels (labels @ [ ("le", fmt_bound bound) ]))
                         !cum (exemplar bi)))
                  h.bounds;
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket%s %d%s\n" f.f_name
                     (fmt_labels (labels @ [ ("le", "+Inf") ]))
                     h.hcount
                     (exemplar (Array.length h.bounds)));
                Buffer.add_string b
                  (Printf.sprintf "%s_sum%s %s\n" f.f_name (fmt_labels labels)
                     (fmt_value h.sum));
                Buffer.add_string b
                  (Printf.sprintf "%s_count%s %d\n" f.f_name (fmt_labels labels)
                     h.hcount))
          sorted)
      families;
    Buffer.contents b
end

(* {1 Context} *)

module Context = struct
  type t = { trace : int64; span : int }

  (* Ids are masked to 62 bits so they fit an OCaml int and round-trip
     losslessly through the simulation's store64 words (flight-recorder
     and audit-log slots). *)
  let mask62 h = Int64.logand h 0x3FFF_FFFF_FFFF_FFFFL

  (* FNV-1a, 64-bit. Deterministic and stable across runs — trace ids
     derived from (client name, op sequence) strings are a golden-test
     surface. *)
  let hash64 s =
    let prime = 0x100000001b3L in
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c ->
        h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
      s;
    let h = mask62 !h in
    (* 0 is the wire encoding for "no context" (binproto zero field). *)
    if h = 0L then 1L else h

  let root op = { trace = hash64 op; span = 0 }
  let child t n = { t with span = n }
  let trace t = t.trace
  let span t = t.span
  let of_trace ?(span = 0) trace =
    let trace = mask62 trace in
    if trace = 0L then None else Some { trace; span }
  let trace_hex t = Printf.sprintf "%016Lx" t.trace

  let is_hex s =
    s <> ""
    && String.for_all
         (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
         s

  let of_trace_hex s =
    if String.length s = 16 && is_hex s then
      match Int64.of_string_opt ("0x" ^ s) with
      | None -> None
      | Some id -> of_trace id
    else None

  (* W3C-traceparent-shaped: version 00, 16-hex trace id (the spec's low
     half), 8-hex span id, flags 01. *)
  let to_traceparent t =
    Printf.sprintf "00-%s-%08x-01" (trace_hex t) (t.span land 0xffffffff)

  let of_traceparent s =
    match String.split_on_char '-' s with
    | [ "00"; tr; sp; _flags ]
      when String.length tr = 16 && is_hex tr && String.length sp = 8
           && is_hex sp -> (
        match
          (Int64.of_string_opt ("0x" ^ tr), int_of_string_opt ("0x" ^ sp))
        with
        | Some id, Some span -> of_trace ~span id
        | _ -> None)
    | _ -> None
end

(* {1 Trace} *)

module Trace = struct
  type span = {
    s_name : string;
    s_tid : int;
    s_start : float;
    s_dur : float;
    s_depth : int;
    s_args : (string * string) list;
  }

  type t = {
    capacity : int;
    mutable ring : span array;  (* allocated lazily on first record *)
    mutable head : int;  (* next write slot *)
    mutable total : int;  (* spans ever recorded *)
    mutable aborted : int;  (* spans ended by an exception unwinding *)
    mutable on : bool;
    depths : (int, int) Hashtbl.t;  (* tid -> current nesting depth *)
  }

  let create ?(capacity = 4096) () =
    if capacity <= 0 then invalid_arg "Telemetry.Trace.create";
    {
      capacity;
      ring = [||];
      head = 0;
      total = 0;
      aborted = 0;
      on = false;
      depths = Hashtbl.create 8;
    }

  let set_enabled t v = t.on <- v
  let enabled t = t.on

  let dummy =
    { s_name = ""; s_tid = 0; s_start = 0.0; s_dur = 0.0; s_depth = 0; s_args = [] }

  let record t s =
    if Array.length t.ring = 0 then t.ring <- Array.make t.capacity dummy;
    t.ring.(t.head) <- s;
    t.head <- (t.head + 1) mod t.capacity;
    t.total <- t.total + 1

  let with_span t ?(args = []) name f =
    if not t.on then f ()
    else begin
      let tid = cur_tid () in
      let depth =
        match Hashtbl.find_opt t.depths tid with Some d -> d | None -> 0
      in
      Hashtbl.replace t.depths tid (depth + 1);
      let t0 = now () in
      let finish ~aborted =
        Hashtbl.replace t.depths tid depth;
        (* A span closed by an exception — a fault unwinding into a
           rewind — is marked so trace exports can tell it from a clean
           return. *)
        let args = if aborted then args @ [ ("aborted", "true") ] else args in
        if aborted then t.aborted <- t.aborted + 1;
        record t
          {
            s_name = name;
            s_tid = tid;
            s_start = t0;
            s_dur = now () -. t0;
            s_depth = depth;
            s_args = args;
          }
      in
      match f () with
      | v ->
          finish ~aborted:false;
          v
      | exception e ->
          finish ~aborted:true;
          raise e
    end

  let instant t ?(args = []) name =
    if t.on then
      let tid = cur_tid () in
      let depth =
        match Hashtbl.find_opt t.depths tid with Some d -> d | None -> 0
      in
      record t
        {
          s_name = name;
          s_tid = tid;
          s_start = now ();
          s_dur = -1.0;  (* marker: rendered as an instant event *)
          s_depth = depth;
          s_args = args;
        }

  let recorded t = t.total
  let aborted_spans t = t.aborted
  let dropped t = max 0 (t.total - t.capacity)

  let spans t =
    let n = min t.total t.capacity in
    let first = (t.head - n + t.capacity) mod t.capacity in
    List.init n (fun i -> t.ring.((first + i) mod t.capacity))

  let clear t =
    t.head <- 0;
    t.total <- 0;
    t.aborted <- 0;
    Hashtbl.reset t.depths

  let aggregate t =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun s ->
        if s.s_dur >= 0.0 then
          let n, d =
            match Hashtbl.find_opt tbl s.s_name with
            | Some (n, d) -> (n, d)
            | None -> (0, 0.0)
          in
          Hashtbl.replace tbl s.s_name (n + 1, d +. s.s_dur))
      (spans t);
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let json_escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun ch ->
        match ch with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let to_chrome_json ?(cycles_per_us = 1.0) t =
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"traceEvents\":[";
    let first = ref true in
    List.iter
      (fun s ->
        if !first then first := false else Buffer.add_char b ',';
        let args =
          match s.s_args with
          | [] -> ""
          | kvs ->
              ",\"args\":{"
              ^ String.concat ","
                  (List.map
                     (fun (k, v) ->
                       (* The aborted flag renders as a JSON boolean so
                          trace viewers can filter on it. *)
                       if k = "aborted" && (v = "true" || v = "false") then
                         Printf.sprintf "\"%s\":%s" (json_escape k) v
                       else
                         Printf.sprintf "\"%s\":\"%s\"" (json_escape k)
                           (json_escape v))
                     kvs)
              ^ "}"
        in
        if s.s_dur < 0.0 then
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"sdrad\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%d%s}"
               (json_escape s.s_name)
               (s.s_start /. cycles_per_us)
               s.s_tid args)
        else
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"sdrad\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d%s}"
               (json_escape s.s_name)
               (s.s_start /. cycles_per_us)
               (s.s_dur /. cycles_per_us)
               s.s_tid args))
      (spans t);
    Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
    Buffer.contents b
end
