(** Observability over virtual time: a typed metrics registry with
    Prometheus-style text exposition, and a span tracer whose timestamps
    come from the {!Simkern.Sched} virtual clock.

    Both halves are deliberately allocation-light and deterministic: two
    runs of the same simulation produce byte-identical expositions and
    trace dumps, so telemetry output is a valid golden-test surface.

    {2 Metric naming scheme}

    Series follow the Prometheus convention
    [<subsystem>_<what>[_<unit>][_total]]: [sdrad_rewinds_total],
    [vmem_pkru_writes_total], [kvcache_rewind_cycles_bucket{le="256"}].
    Subsystem prefixes in this repo: [sdrad_] (reference monitor),
    [vmem_] (simulated MPK hardware), [tlsf_] (allocators),
    [supervisor_], [kvcache_], [httpd_], [client_] (retry/workload
    clients), [sanitizer_] (heap-poison sanitizer), [trace_] (the span
    tracer itself), [cluster_] (the sharded multi-monitor tier),
    [race_] (the dynamic race/atomicity analyzer).
    Counters end in [_total]; histogram base names carry
    at most a unit suffix — exposition appends [_bucket]/[_sum]/[_count].
    The [metric-naming] repo-lint rule enforces this scheme at
    registration call sites. *)

(** Typed counters, gauges and log-bucketed histograms.

    Instruments are registered in a {!Metrics.t} registry under a name
    plus an optional label set; registration is get-or-create, so two
    subsystems asking for the same series share one instrument.
    Registering the same name with a different instrument kind raises
    [Invalid_argument]. *)
module Metrics : sig
  type t
  (** A registry: one scrape surface. *)

  type counter
  type gauge
  type histogram

  val create : unit -> t

  (** {1 Counters — monotonically increasing integers} *)

  val counter :
    t -> ?help:string -> ?labels:(string * string) list -> string -> counter

  val inc : counter -> unit
  val add : counter -> int -> unit
  (** [add c n] with negative [n] raises [Invalid_argument]: counters only
      go up. *)

  val counter_value : counter -> int

  val counter_fn :
    t ->
    ?help:string ->
    ?labels:(string * string) list ->
    string ->
    (unit -> int) ->
    unit
  (** Counter whose value is read from a callback at exposition time —
      for sources that already keep their own monotonic count (e.g.
      {!Vmem.Space.fault_count}). *)

  (** {1 Gauges — floats that can go either way} *)

  val gauge :
    t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

  val set : gauge -> float -> unit
  val gauge_value : gauge -> float

  val gauge_fn :
    t ->
    ?help:string ->
    ?labels:(string * string) list ->
    string ->
    (unit -> float) ->
    unit
  (** Gauge sampled from a callback at exposition time. *)

  (** {1 Histograms — log-bucketed samples} *)

  val default_buckets : float array
  (** Powers of four from 1 to 4{^13} (≈6.7e7) — covers one memory access
      up to tens of simulated milliseconds in cycles. *)

  val histogram :
    t ->
    ?help:string ->
    ?labels:(string * string) list ->
    ?buckets:float array ->
    string ->
    histogram
  (** [buckets] are ascending upper bounds; an implicit [+Inf] bucket is
      always appended. *)

  val observe : histogram -> float -> unit

  val observe_exemplar : histogram -> float -> exemplar:string -> unit
  (** Like {!observe}, but also attach [exemplar] (e.g. a trace id) to
      the bucket the value lands in, replacing that bucket's previous
      exemplar. Exposition renders it OpenMetrics-style
      ([# {trace="<id>"} <value>]) after the bucket line. An empty
      [exemplar] attaches nothing. *)

  val hist_count : histogram -> int
  val hist_sum : histogram -> float

  val hist_buckets : histogram -> (float * int) list
  (** Raw (non-cumulative) per-bucket counts paired with their finite
      upper bounds, in ascending order. Samples above the last bound are
      not listed: the implicit [+Inf] population is [hist_count] minus
      the sum of these counts. The input to {!Stats.quantile_of_buckets}. *)

  val hist_exemplars : histogram -> (float * float * string) list
  (** [(upper bound, observed value, exemplar id)] for every bucket that
      holds an exemplar, ascending; the implicit [+Inf] bucket reports
      [infinity] as its bound. *)

  (** {1 Exposition} *)

  val series_count : t -> int
  (** Number of distinct (name, labels) series registered. A histogram
      counts as one series. *)

  val sample : t -> ?labels:(string * string) list -> string -> float option
  (** Current value of one counter or gauge series (callback-backed ones
      are invoked); [None] for unknown names, unregistered label sets, and
      histograms. The point-read primitive for operator surfaces. *)

  val merge_into : dst:t -> t -> unit
  (** Fold every series of the source registry into [dst], summing with
      whatever the same (name, labels) series already holds there:
      counters add their current value (callback-backed series are
      sampled and materialize as plain instruments in [dst]), gauges
      sum, histograms merge bucket-by-bucket ([dst]'s exemplar wins).
      Merging each shard's registry of a cluster into one fresh registry
      yields a single fleet-wide scrape surface; {!expose} of the result
      is deterministic. Histograms whose bucket bounds disagree with the
      series already in [dst] are skipped.
      @raise Invalid_argument when a family name is registered with a
      different instrument kind in [dst]. *)

  val expose : t -> string
  (** Prometheus text exposition format, version 0.0.4: [# HELP] /
      [# TYPE] headers followed by one line per sample. Families are
      sorted by name and series by label set, so the output is
      deterministic. *)
end

(** Deterministic causal trace context.

    A context is a 64-bit trace id (derived by hashing a stable
    operation name, e.g. ["cli-3"], with FNV-1a — never from randomness
    or wall clock, so identical runs mint identical ids) plus a small
    span ordinal (the retry attempt number). It is carried on every
    request: httpd as a [traceparent]-style header, kvcache text as a
    trailing [trace=<16 hex>] token, binproto in the reserved header
    bytes 16–23 — and links a client op to every server-side
    consequence: retries, journal replays, domain switches, flight-
    recorder events and rewind audit records. *)
module Context : sig
  type t

  val root : string -> t
  (** Mint a context for one logical operation. The trace id is the
      FNV-1a hash of the argument, masked to 62 bits so it round-trips
      losslessly through the simulation's OCaml-int-valued store64
      words (hash 0 remapped to 1 — the zero id is the binary
      protocol's "no context" encoding). *)

  val child : t -> int -> t
  (** Same trace id, span ordinal [n] — one per retry attempt. *)

  val trace : t -> int64
  val span : t -> int

  val of_trace : ?span:int -> int64 -> t option
  (** Rebuild a context from a wire-decoded 64-bit id; [None] for the
      zero "no context" id. *)

  val trace_hex : t -> string
  (** 16 lowercase hex chars — the canonical rendering everywhere
      (wire tokens, span args, flight-recorder dumps, exemplars). *)

  val of_trace_hex : string -> t option

  val to_traceparent : t -> string
  (** [00-<trace 16 hex>-<span 8 hex>-01], the httpd header value. *)

  val of_traceparent : string -> t option
end

(** Nested spans over virtual time, recorded into a bounded ring.

    When disabled (the default) {!Trace.with_span} costs one branch and
    runs the body directly — instrumentation can stay in hot paths.
    When enabled, each span captures the virtual-clock interval of its
    body, its thread, and its nesting depth. The ring keeps the most
    recent [capacity] spans; older ones are dropped (counted). *)
module Trace : sig
  type t

  type span = {
    s_name : string;
    s_tid : int;  (** simulated thread, -1 outside a thread *)
    s_start : float;  (** virtual cycles *)
    s_dur : float;  (** virtual cycles *)
    s_depth : int;  (** nesting depth within the thread, 0 = top level *)
    s_args : (string * string) list;
  }

  val create : ?capacity:int -> unit -> t
  (** Ring capacity defaults to 4096 spans. *)

  val set_enabled : t -> bool -> unit
  val enabled : t -> bool

  val with_span :
    t -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** Run the body inside a span. The span is recorded when the body
      returns {e or raises} — a rewind unwinding through a span still
      leaves its trace, with [("aborted", "true")] appended to its args
      (rendered as the JSON boolean [{"aborted":true}] in Chrome
      exports) so it is distinguishable from a clean return. No-op
      (identity) while disabled. *)

  val instant : t -> ?args:(string * string) list -> string -> unit
  (** Record a zero-duration marker event (e.g. a breaker transition). *)

  val spans : t -> span list
  (** Retained spans, in completion order (oldest first). *)

  val recorded : t -> int
  (** Total spans ever recorded, including dropped ones. *)

  val aborted_spans : t -> int
  (** Spans that ended by an exception unwinding (the
      [trace_aborted_spans_total] source). *)

  val dropped : t -> int
  val clear : t -> unit

  val aggregate : t -> (string * (int * float)) list
  (** Per-label [(count, total cycles)] over the retained spans, sorted
      by label — the input to the switch-cost anatomy report. *)

  val to_chrome_json : ?cycles_per_us:float -> t -> string
  (** Chrome trace-event JSON (one ["X"] complete event per span, one
      ["i"] instant event per marker), loadable in [chrome://tracing] or
      Perfetto. [cycles_per_us] converts the virtual clock to the
      microsecond timestamps the format expects (default 1.0: timestamps
      stay in cycles). *)
end
