(* Deterministic fault-injection engine.

   A plan is an ordered list of rules, each bound to a stable site label
   ("kv.alloc", "httpd.parse", "net.c2s", ...). Substrates consult the
   engine at their injection points ([decide], or one of the [arm_*]
   adapters that plug directly into the Tlsf / Netsim hooks); every
   eligible rule visit costs exactly one draw from a private splitmix64
   stream, so with a deterministic scheduler the whole fault sequence is
   a pure function of [(seed, plan)] — a failing chaos run is replayable
   bit-for-bit, and two runs of the same experiment must produce
   byte-identical event logs ([log_to_string]). *)

module Rng = Simkern.Rng
module Sched = Simkern.Sched
module Api = Sdrad.Api
module Space = Vmem.Space

type kind =
  | Alloc_fail  (* Tlsf malloc returns OOM *)
  | Bit_flip  (* single-event upset in a mapped byte *)
  | Wild_write  (* stray store into an unmapped page *)
  | Stack_smash  (* clobber the canary of a stack frame *)
  | Net_drop  (* message silently lost *)
  | Net_truncate  (* message cut short at a random offset *)
  | Net_delay of float  (* latency spike, extra cycles *)
  | Kill_thread  (* scheduler-level loss of a thread *)
  | Heap_overflow  (* write one byte past an allocation's usable size *)
  | Use_after_free  (* read a block after freeing it *)
  | Rewind_interrupt  (* second fault arriving mid-rewind (two-phase path) *)
  | Shard_crash  (* whole monitor instance lost (cluster tier) *)
  | Net_partition of float  (* shard unreachable for this many cycles *)

let kind_to_string = function
  | Alloc_fail -> "alloc-fail"
  | Bit_flip -> "bit-flip"
  | Wild_write -> "wild-write"
  | Stack_smash -> "stack-smash"
  | Net_drop -> "net-drop"
  | Net_truncate -> "net-truncate"
  | Net_delay d -> Printf.sprintf "net-delay(%.0f)" d
  | Kill_thread -> "kill-thread"
  | Heap_overflow -> "heap-overflow"
  | Use_after_free -> "use-after-free"
  | Rewind_interrupt -> "rewind-interrupt"
  | Shard_crash -> "shard-crash"
  | Net_partition d -> Printf.sprintf "net-partition(%.0f)" d

type rule = {
  site : string;
  kind : kind;
  prob : float;  (* per-visit firing probability *)
  max_fires : int;  (* total firing budget for this rule *)
}

let rule ?(prob = 1.0) ?(max_fires = max_int) ~site kind =
  { site; kind; prob; max_fires }

type event = { e_seq : int; e_site : string; e_kind : kind; e_at : float }

type armed = { r : rule; mutable fired : int }

type t = {
  seed : int;
  rng : Rng.t;
  plan : armed list;
  mutable events : event list;  (* newest first *)
  mutable next_seq : int;
}

let create ~seed plan =
  {
    seed;
    rng = Rng.create seed;
    plan = List.map (fun r -> { r; fired = 0 }) plan;
    events = [];
    next_seq = 0;
  }

let seed t = t.seed

let record t ~site kind =
  let at = if Sched.in_thread () then Sched.now () else 0.0 in
  t.events <-
    { e_seq = t.next_seq; e_site = site; e_kind = kind; e_at = at } :: t.events;
  t.next_seq <- t.next_seq + 1

(* One draw per eligible (site-matching, budget-remaining) rule, in plan
   order; the first rule whose draw lands under its probability fires. *)
let decide t ~site =
  let rec visit = function
    | [] -> None
    | a :: rest ->
        if a.r.site = site && a.fired < a.r.max_fires then
          if Rng.float t.rng < a.r.prob then begin
            a.fired <- a.fired + 1;
            record t ~site a.r.kind;
            Some a.r.kind
          end
          else visit rest
        else visit rest
  in
  visit t.plan

(* {1 Firing helpers} *)

let wild_write space =
  (* Page 0 is never mapped: any store there is the canonical stray
     pointer dereference and raises [Space.Fault (MAPERR)]. *)
  Space.store64 space 64 0x41414141

let flip_random_bit t space ~addr ~len =
  if len > 0 then
    Space.flip_bit space
      ~addr:(addr + Rng.int t.rng len)
      ~bit:(Rng.int t.rng 8)
  else false

let smash_canary sd =
  Api.with_stack_frame sd 16 (fun buf ->
      Space.store64 (Api.space sd) (buf + 16) 0x41414141)

(* The classic off-by-one: one byte past the usable size. On a sanitized
   heap that byte is the redzone (POISON fault, rewound); unsanitized it
   silently nicks the next block's header — exactly the gap the sanitizer
   exists to close. [buf] must be a live allocation of the current
   domain's heap. *)
let heap_overflow sd ~buf ~len =
  let udi = Api.current sd in
  let n = try Api.usable_size sd ~udi buf with _ -> len in
  Space.store8 (Api.space sd) (buf + n) 0xFD

(* Allocate, free, read: the freed payload is poisoned on a sanitized
   heap (POISON fault); unsanitized the dangling read silently returns
   free-list metadata. *)
let use_after_free sd =
  let udi = Api.current sd in
  let p = Api.malloc sd ~udi 24 in
  Api.free sd ~udi p;
  ignore (Space.load8 (Api.space sd) p)

(* Inject inside a domain body: corrupts state appropriate to the decided
   kind and lets the substrate raise whatever it raises. Network and
   scheduler kinds are ignored here — they belong to the [arm_*]
   adapters. Returns the kind fired, for callers that log. *)
let fire_in_domain t ~site ~sd ~buf ~len =
  match decide t ~site with
  | None -> None
  | Some k ->
      (match k with
      | Bit_flip -> ignore (flip_random_bit t (Api.space sd) ~addr:buf ~len)
      | Wild_write -> wild_write (Api.space sd)
      | Stack_smash -> smash_canary sd
      | Heap_overflow -> heap_overflow sd ~buf ~len
      | Use_after_free -> use_after_free sd
      | Alloc_fail | Net_drop | Net_truncate | Net_delay _ | Kill_thread
      | Rewind_interrupt | Shard_crash | Net_partition _ ->
          ());
      Some k

(* {1 Substrate adapters} *)

let arm_tlsf t heap ~site =
  Tlsf.set_inject_failure heap
    (Some
       (fun _request ->
         match decide t ~site with Some Alloc_fail -> true | _ -> false))

let arm_netsim t net ~site =
  Netsim.set_fault_hook net
    (Some
       (fun ~len ->
         match decide t ~site with
         | Some Net_drop -> Netsim.Drop
         | Some Net_truncate -> Netsim.Truncate (Rng.int t.rng (max 1 len))
         | Some (Net_delay d) -> Netsim.Delay d
         | Some _ | None -> Netsim.Deliver))

(* Inject faults into the rewind path itself: the monitor consults the
   hook before every discard step of an in-flight rewind, exercising the
   two-phase intent/commit protocol (resume from the durable intent
   record). Budget the rule with [max_fires] — an unbounded always-fire
   rule would stall every rewind against its internal interrupt cap. *)
let arm_rewind t sd ~site =
  Api.set_rewind_fault_hook sd
    (Some
       (fun () ->
         match decide t ~site with Some Rewind_interrupt -> true | _ -> false))

let maybe_kill t ~site ~sched ~tid =
  match decide t ~site with
  | Some Kill_thread ->
      Sched.kill sched tid;
      true
  | _ -> false

(* {1 Introspection} *)

let events t = List.rev t.events
let fires t = t.next_seq

let log_to_string t =
  let buf = Buffer.create 256 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%04d %-16s %-14s @%.0f\n" e.e_seq e.e_site
           (kind_to_string e.e_kind) e.e_at))
    (events t);
  Buffer.contents buf
