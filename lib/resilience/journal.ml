(* Replay journal for at-most-once request execution.

   The journal maps an idempotency key (the client's request id) to the
   response the server sent when the mutation was first applied. It is
   owned by the server's root ("monitor") context: entries are recorded
   by the parent *after* the deferred mutation commits, never from inside
   a nested domain, so a domain discard can neither reclaim nor corrupt
   it — which is exactly why a retry that arrives after a rewind can
   still be answered from it.

   The two cases the journal distinguishes:

   - The fault/loss happened *before* the commit (domain rewound, request
     dropped on the wire): no entry exists, the retry re-executes, and
     the op is applied exactly once.
   - The loss happened *after* the commit (response dropped or delayed
     past the client's timeout): the entry exists, the retry is answered
     with the journaled response, and the op is NOT applied a second
     time.

   Bounded: a FIFO ring of [capacity] keys; recording over a full journal
   evicts the oldest entry. The capacity therefore bounds the window in
   which duplicates are suppressed — size it above the number of
   mutations a client can have outstanding across its retry horizon. *)

module M = Telemetry.Metrics

type t = {
  capacity : int;
  entries : (string, string) Hashtbl.t;
  order : string Queue.t;  (* insertion order, for FIFO eviction *)
  c_hits : M.counter option;
  c_evictions : M.counter option;
  mutable n_hits : int;
  mutable n_evictions : int;
}

let create ?metrics ?(name = "journal") ~capacity () =
  if capacity <= 0 then invalid_arg "Journal.create: capacity must be positive";
  let counter metric help =
    Option.map (fun m -> M.counter m (name ^ metric) ~help) metrics
  in
  let t =
    {
      capacity;
      entries = Hashtbl.create (min capacity 256);
      order = Queue.create ();
      c_hits =
        counter "_replay_hits_total"
          "Retried mutations answered from the replay journal";
      c_evictions =
        counter "_replay_journal_evictions_total"
          "Journal entries evicted by the FIFO capacity bound";
      n_hits = 0;
      n_evictions = 0;
    }
  in
  Option.iter
    (fun m ->
      M.gauge_fn m
        (name ^ "_replay_journal_entries")
        ~help:"Idempotency keys currently journaled" (fun () ->
          float_of_int (Hashtbl.length t.entries)))
    metrics;
  t

let find t rid =
  match Hashtbl.find_opt t.entries rid with
  | Some reply ->
      t.n_hits <- t.n_hits + 1;
      Option.iter M.inc t.c_hits;
      Some reply
  | None -> None

(* Peek without counting a replay hit (introspection / tests). *)
let mem t rid = Hashtbl.mem t.entries rid

let record t rid reply =
  if not (Hashtbl.mem t.entries rid) then begin
    if Hashtbl.length t.entries >= t.capacity then begin
      let oldest = Queue.pop t.order in
      Hashtbl.remove t.entries oldest;
      t.n_evictions <- t.n_evictions + 1;
      Option.iter M.inc t.c_evictions
    end;
    Hashtbl.replace t.entries rid reply;
    Queue.add rid t.order
  end

let size t = Hashtbl.length t.entries
let capacity t = t.capacity
let hits t = t.n_hits
let evictions t = t.n_evictions
