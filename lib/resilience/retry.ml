(* Deadline-driven client retry policies over virtual time.

   Everything here runs on the simulated clock: per-attempt deadlines are
   virtual timestamps handed to [Netsim.recv_deadline]-style calls,
   backoff sleeps go through [Sched.wait_until], and the jitter draws
   from a caller-provided [Simkern.Rng] stream — no wall clock anywhere,
   so a retried run replays bit-for-bit.

   Backoff uses decorrelated jitter: each delay is uniform in
   [base, min(cap, 3 * previous delay)], which decorrelates client herds
   after a shared outage faster than plain exponential-with-jitter.

   The retry *budget* is a token bucket shared by all calls of one
   client: every first attempt deposits [deposit] tokens, every retry
   withdraws [withdraw]. With the defaults (1 in, 10 out, cap 100) a
   client can retry at most ~10% of its traffic in steady state, so a
   server outage degrades into fast failures instead of a retry storm
   that amplifies the overload. *)

module Sched = Simkern.Sched
module Rng = Simkern.Rng
module M = Telemetry.Metrics

type policy = {
  max_attempts : int;
  attempt_timeout : float;
  overall_timeout : float;
  backoff_base : float;
  backoff_cap : float;
}

let default_policy =
  {
    max_attempts = 4;
    attempt_timeout = 400_000.0;
    overall_timeout = 8.0e6;
    backoff_base = 10_000.0;
    backoff_cap = 640_000.0;
  }

type budget = {
  mutable tokens : float;
  b_cap : float;
  deposit : float;
  withdraw : float;
}

let budget ?(cap = 100.0) ?(deposit = 1.0) ?(withdraw = 10.0) () =
  if cap <= 0.0 || withdraw <= 0.0 || deposit < 0.0 then
    invalid_arg "Retry.budget: cap/withdraw must be positive";
  { tokens = cap; b_cap = cap; deposit; withdraw }

let budget_tokens b = b.tokens

type error =
  | Attempts_exhausted of string  (** last retryable failure's reason *)
  | Deadline_exceeded  (** the overall call deadline passed *)
  | Budget_exhausted  (** the client's retry budget ran dry *)

let error_to_string = function
  | Attempts_exhausted reason -> "attempts exhausted: " ^ reason
  | Deadline_exceeded -> "deadline exceeded"
  | Budget_exhausted -> "retry budget exhausted"

type t = {
  policy : policy;
  bgt : budget option;
  rng : Rng.t;
  rid_prefix : string;
  mutable next_rid : int;
  mutable n_calls : int;
  mutable n_retries : int;
  mutable n_budget_exhausted : int;
  c_retries : M.counter option;
  c_budget_exhausted : M.counter option;
  h_latency : M.histogram option;
}

let create ?metrics ?budget:bgt ?(name = "client") policy ~rng =
  if policy.max_attempts < 1 then
    invalid_arg "Retry.create: max_attempts must be >= 1";
  let counter metric help =
    Option.map (fun m -> M.counter m metric ~help) metrics
  in
  {
    policy;
    bgt;
    rng;
    rid_prefix = name;
    next_rid = 0;
    n_calls = 0;
    n_retries = 0;
    n_budget_exhausted = 0;
    c_retries =
      counter "client_retries_total" "Request attempts beyond the first";
    c_budget_exhausted =
      counter "client_retry_budget_exhausted_total"
        "Calls failed because the retry budget ran dry";
    h_latency =
      Option.map
        (fun m ->
          M.histogram m "client_op_latency_cycles"
            ~help:"Whole-call latency of logical client operations")
        metrics;
  }

let fresh_rid t =
  let n = t.next_rid in
  t.next_rid <- n + 1;
  Printf.sprintf "%s-%d" t.rid_prefix n

(* One deposit per logical call, capped. *)
let deposit t =
  match t.bgt with
  | Some b -> b.tokens <- Float.min b.b_cap (b.tokens +. b.deposit)
  | None -> ()

let try_withdraw t =
  match t.bgt with
  | None -> true
  | Some b ->
      if b.tokens >= b.withdraw then begin
        b.tokens <- b.tokens -. b.withdraw;
        true
      end
      else false

let execute_ctx t f =
  let start = Sched.now () in
  let hard = start +. t.policy.overall_timeout in
  let rid = fresh_rid t in
  (* The whole logical call shares one trace id, minted deterministically
     from the idempotency key; each attempt is a distinct span ordinal.
     Every retry, journal replay and server-side consequence of this op
     is linked by the id. *)
  let ctx = Telemetry.Context.root rid in
  t.n_calls <- t.n_calls + 1;
  deposit t;
  let finish r =
    (match t.h_latency with
    | Some h ->
        M.observe_exemplar h
          (Sched.now () -. start)
          ~exemplar:(Telemetry.Context.trace_hex ctx)
    | None -> ());
    r
  in
  let rec attempt n prev_delay =
    let deadline = Float.min hard (Sched.now () +. t.policy.attempt_timeout) in
    match f ~ctx:(Telemetry.Context.child ctx n) ~rid ~attempt:n ~deadline with
    | Ok v -> Ok v
    | Error (`Retry reason) ->
        if n + 1 >= t.policy.max_attempts then
          Error (Attempts_exhausted reason)
        else if Sched.now () >= hard then Error Deadline_exceeded
        else if not (try_withdraw t) then begin
          t.n_budget_exhausted <- t.n_budget_exhausted + 1;
          Option.iter M.inc t.c_budget_exhausted;
          Error Budget_exhausted
        end
        else begin
          t.n_retries <- t.n_retries + 1;
          Option.iter M.inc t.c_retries;
          (* Decorrelated jitter, clipped so the backoff sleep cannot
             itself blow the overall deadline. *)
          let hi =
            Float.min t.policy.backoff_cap
              (Float.max t.policy.backoff_base (prev_delay *. 3.0))
          in
          let d =
            t.policy.backoff_base
            +. (Rng.float t.rng *. Float.max 0.0 (hi -. t.policy.backoff_base))
          in
          let d = Float.min d (hard -. Sched.now ()) in
          if d > 0.0 then Sched.wait_until (Sched.now () +. d);
          attempt (n + 1) d
        end
  in
  finish (attempt 0 t.policy.backoff_base)

let execute t f =
  execute_ctx t (fun ~ctx:_ ~rid ~attempt ~deadline ->
      f ~rid ~attempt ~deadline)

let calls t = t.n_calls
let retries t = t.n_retries
let budget_exhaustions t = t.n_budget_exhausted
