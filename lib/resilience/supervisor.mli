(** Domain supervisor: per-udi rewind budgets, exponential backoff and
    quarantine on top of {!Sdrad.Api}.

    Rewind-and-discard recovers from a fault in microseconds, which is
    precisely what makes it a denial-of-service amplifier: an attacker who
    can fault a domain at will can make the server spend its time
    re-initializing instead of serving. The supervisor consumes the
    monitor's incident stream and drives a per-domain circuit breaker —
    [Closed → Backoff → Quarantined → Half_open] — so that repeated
    rewinds of one domain are first slowed down (exponential backoff,
    charged through virtual time) and then fenced off entirely
    (quarantine with a distinguishable rejection), while a half-open
    probe after the cooldown lets a recovered domain return to service. *)

type breaker = Closed | Backoff | Quarantined | Half_open

val breaker_to_string : breaker -> string

type policy = {
  budget_max : int;
      (** rewinds within [budget_window] that trip the breaker *)
  budget_window : float;  (** sliding window, virtual cycles *)
  backoff_base : float;  (** first re-init delay, cycles *)
  backoff_factor : float;  (** delay multiplier per consecutive fault *)
  backoff_max : float;  (** delay ceiling *)
  cooldown : float;  (** quarantine duration before a half-open probe *)
}

val default_policy : policy

type t

val attach : ?policy:policy -> Sdrad.Api.t -> t
(** Install the supervisor on a monitor instance. Composes with any
    incident handler already present ({!Sdrad.Api.add_incident_handler}),
    so application-level handlers keep firing. *)

type verdict =
  | Admitted
  | Probe  (** admitted as the single half-open probe after cooldown *)
  | Busy of { until : float }
      (** quarantined; [until] is the earliest probe time *)

val admit : t -> udi:Sdrad.Types.udi -> verdict
(** Gate an attempt to (re-)initialize the domain. In [Backoff] this
    blocks the calling thread until the retry point (the re-init delay of
    the policy); in [Quarantined] it returns [Busy] without touching any
    domain state, so the caller can degrade (serve busy / 503). *)

val admit_nb : t -> udi:Sdrad.Types.udi -> verdict
(** Non-blocking {!admit}: in [Backoff] before the retry point it returns
    [Busy { until = retry_at }] (counted as a rejection) instead of
    sleeping, so an overload-shedding server can convert the wait into a
    busy reply. All other states behave exactly as {!admit}. *)

val succeed : t -> udi:Sdrad.Types.udi -> unit
(** Report a normal completion: resets the strike counter, and closes the
    breaker after a successful half-open probe. *)

val run :
  t ->
  udi:Sdrad.Types.udi ->
  ?opts:Sdrad.Types.options ->
  on_rewind:(Sdrad.Types.fault -> 'a) ->
  on_busy:(until:float -> 'a) ->
  (unit -> 'a) ->
  'a
(** Supervised {!Sdrad.Api.run}: [admit] first (rejecting with [on_busy]
    when quarantined), count a normal completion as a success. *)

val run_nb :
  t ->
  udi:Sdrad.Types.udi ->
  ?opts:Sdrad.Types.options ->
  on_rewind:(Sdrad.Types.fault -> 'a) ->
  on_busy:(until:float -> 'a) ->
  (unit -> 'a) ->
  'a
(** {!run} built on {!admit_nb}: a [Backoff] delay surfaces as [on_busy]
    instead of blocking the worker. *)

type 'a outcome =
  | Ok of 'a
  | Faulted of Sdrad.Types.fault
  | Rejected of { udi : Sdrad.Types.udi; until : float }

val protect_call :
  t ->
  udi:Sdrad.Types.udi ->
  ?opts:Sdrad.Types.options ->
  arg:string ->
  (int -> int -> 'a) ->
  'a outcome
(** Supervised {!Sdrad.Api.protect_call} with quarantine rejection as a
    distinguishable [Rejected] outcome. *)

(** {1 Introspection} *)

val breaker_state : t -> udi:Sdrad.Types.udi -> breaker
(** [Closed] for udis the supervisor has never seen. *)

val states : t -> (Sdrad.Types.udi * breaker) list
(** All tracked domains, sorted by udi. *)

val forget : t -> udi:Sdrad.Types.udi -> unit
(** Drop all supervision state for a udi (e.g. after the domain is
    destroyed for good). *)

val stats : t -> (string * int) list
(** Global counters as an assoc list: supervised domains, rewinds seen,
    quarantines, rejections, backoff waits, probes, probe successes.
    The same values are exported as [supervisor_*] metric series. *)

val domain_counters : t -> udi:Sdrad.Types.udi -> (string * int) list
(** Per-domain counters: rewinds, quarantines, probes, rejections. *)

val transition_count : t -> from:breaker -> target:breaker -> int
(** Edges taken over the breaker graph, read from the
    [supervisor_transitions_total{from,to}] counter family in the
    monitor's metrics registry. 0 for edges never taken. *)

val sdrad : t -> Sdrad.Api.t
val policy : t -> policy
