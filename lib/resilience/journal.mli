(** Bounded replay journal for at-most-once request execution.

    Maps idempotency keys (client request ids) to the response sent when
    the mutation first committed. The structure is root-domain ("monitor
    root") state: it is only ever touched by the parent after a nested
    domain has exited normally, so discarding a nested domain's heap can
    neither reclaim nor corrupt it — a retry arriving {e after} a rewind
    is still answered from the journal instead of being applied twice.

    Lookup/record are plain root-context operations (no virtual-time
    charge beyond the caller's); the capacity bound evicts the oldest
    entry FIFO, which bounds the duplicate-suppression window. *)

type t

val create :
  ?metrics:Telemetry.Metrics.t -> ?name:string -> capacity:int -> unit -> t
(** [create ~capacity ()] builds an empty journal. With [metrics], three
    series are registered under [name] (default ["journal"]):
    [<name>_replay_hits_total], [<name>_replay_journal_evictions_total]
    and the [<name>_replay_journal_entries] gauge.
    @raise Invalid_argument when [capacity <= 0]. *)

val find : t -> string -> string option
(** The journaled response for this request id, counting a replay hit
    when present. *)

val mem : t -> string -> bool
(** Presence check that does not count as a replay hit. *)

val record : t -> string -> string -> unit
(** Journal the response for a freshly committed mutation, evicting the
    oldest entry if the journal is full. Recording an id already present
    is a no-op (first write wins — the op committed only once). *)

val size : t -> int
val capacity : t -> int
val hits : t -> int
val evictions : t -> int
