(** Seeded, deterministic fault-injection engine.

    Chaos experiments need faults that are adversarial but replayable: a
    failing run must be reproducible from a seed. A {!t} owns a private
    splitmix64 stream and an ordered plan of {!rule}s, each keyed by a
    stable site label. Substrates consult {!decide} at their injection
    points (or are wired up with the [arm_*] adapters below); each
    eligible rule visit costs exactly one draw, so under the
    deterministic scheduler the entire fault sequence — and the event log
    — is a pure function of [(seed, plan)]. *)

type kind =
  | Alloc_fail  (** Tlsf malloc fails as if the sub-heap were exhausted *)
  | Bit_flip  (** single-event upset in a mapped byte *)
  | Wild_write  (** stray store into an unmapped page (SEGV) *)
  | Stack_smash  (** clobber the canary of a stack frame *)
  | Net_drop  (** message silently lost *)
  | Net_truncate  (** message cut short at a random offset *)
  | Net_delay of float  (** latency spike, extra cycles *)
  | Kill_thread  (** scheduler-level loss of a thread *)
  | Heap_overflow
      (** write one byte past the allocation's usable size — on a
          sanitized heap this lands in the redzone (POISON fault) *)
  | Use_after_free
      (** malloc, free, then read the freed payload — on a sanitized heap
          the freed bytes are poisoned (POISON fault) *)
  | Rewind_interrupt
      (** second fault arriving while a multi-domain rewind is in
          flight; exercises the two-phase intent/commit protocol (the
          monitor resumes the discard from the durable intent record) *)
  | Shard_crash
      (** cluster tier: a whole monitor instance (shard) is lost —
          its listener and worker waitsets close mid-flight, so routed
          requests time out and the router must fail over *)
  | Net_partition of float
      (** cluster tier: the shard is unreachable (heartbeats and
          replies suppressed) for the given number of cycles, then the
          link heals; the router must declare it down on missed
          heartbeats and fail over in the meantime *)

val kind_to_string : kind -> string

type rule = { site : string; kind : kind; prob : float; max_fires : int }

val rule : ?prob:float -> ?max_fires:int -> site:string -> kind -> rule
(** [prob] defaults to 1.0 (fire on every visit), [max_fires] to
    unlimited. *)

type event = { e_seq : int; e_site : string; e_kind : kind; e_at : float }

type t

val create : seed:int -> rule list -> t
val seed : t -> int

val decide : t -> site:string -> kind option
(** Visit an injection point: in plan order, each rule bound to [site]
    with budget remaining draws once; the first draw under its
    probability fires (recording an {!event}) and its kind is returned. *)

(** {1 Firing helpers} *)

val wild_write : Vmem.Space.t -> unit
(** Store through a stray pointer into the never-mapped page 0; raises
    the simulated SEGV ({!Vmem.Space.Fault}). *)

val smash_canary : Sdrad.Api.t -> unit
(** Open a protected stack frame and overwrite its canary; raises
    {!Sdrad.Api.Stack_check_failure} on frame exit. *)

val flip_random_bit : t -> Vmem.Space.t -> addr:int -> len:int -> bool
(** Flip one random bit inside [\[addr, addr+len)]. *)

val fire_in_domain :
  t -> site:string -> sd:Sdrad.Api.t -> buf:int -> len:int -> kind option
(** Consult [site] from inside a domain body and, if a memory-corruption
    kind fires, perform it against the domain's state ([buf]/[len] locate
    a representative buffer for bit flips). Network and scheduler kinds
    decided here are recorded but perform nothing — they belong to the
    adapters below. *)

(** {1 Substrate adapters} *)

val arm_tlsf : t -> Tlsf.t -> site:string -> unit
(** Route the allocator's injection hook to this engine: a firing
    [Alloc_fail] rule makes that malloc fail. *)

val arm_netsim : t -> Netsim.t -> site:string -> unit
(** Route the network's per-send hook to this engine: [Net_drop],
    [Net_truncate] and [Net_delay] rules perturb messages in flight. *)

val arm_rewind : t -> Sdrad.Api.t -> site:string -> unit
(** Route the monitor's rewind-path probe to this engine: a firing
    [Rewind_interrupt] rule simulates a fault landing between two
    discard steps of an in-flight rewind. Budget the rule with
    [max_fires]; the monitor stops consulting the hook after a bounded
    number of interrupts per rewind, so an unbounded always-fire rule
    only wastes draws. *)

val maybe_kill : t -> site:string -> sched:Simkern.Sched.t -> tid:int -> bool
(** Consult [site] and, if a [Kill_thread] rule fires, kill the thread. *)

(** {1 Introspection} *)

val events : t -> event list
(** All fired events, in firing order. *)

val fires : t -> int

val log_to_string : t -> string
(** Render the event log one line per event — byte-identical across runs
    with equal [(seed, plan)] and scheduling. *)
