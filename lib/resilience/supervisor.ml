(* Domain supervisor (the layer §VI of the paper leaves open): consumes
   the incident stream of an [Sdrad.Api.t] and enforces per-udi policy so
   that unlimited rollback cannot be turned into a denial-of-service
   amplifier by an attacker who faults the same domain in a loop.

   Each supervised udi moves through a circuit breaker:

     Closed --fault--> Backoff --budget exhausted--> Quarantined
       ^                  |                               |
       |   success        | fault (budget left)           | cooldown
       +------------------+                               v
       ^                                             Half_open (probe)
       |        probe succeeds                            |
       +--------------------------------------------------+
                                     probe faults -> Quarantined again

   In [Backoff] the next admission is delayed exponentially (the wait is
   charged through the virtual clock, like a real supervisor sleeping
   before a restart). In [Quarantined] admissions are rejected outright
   with a distinguishable verdict so callers can degrade (serve busy /
   503) instead of burning re-initialization time. After [cooldown] a
   single half-open probe is admitted; its fate decides between closing
   the breaker and a fresh quarantine. *)

module Api = Sdrad.Api
module Types = Sdrad.Types
module Sched = Simkern.Sched

let log_src = Logs.Src.create "sdrad.supervisor" ~doc:"domain supervisor"

module Log = (val Logs.src_log log_src : Logs.LOG)

type breaker = Closed | Backoff | Quarantined | Half_open

let breaker_to_string = function
  | Closed -> "closed"
  | Backoff -> "backoff"
  | Quarantined -> "quarantined"
  | Half_open -> "half-open"

type policy = {
  budget_max : int;  (* rewinds within [budget_window] that trip the breaker *)
  budget_window : float;  (* sliding window, virtual cycles *)
  backoff_base : float;  (* first re-init delay *)
  backoff_factor : float;  (* delay multiplier per consecutive fault *)
  backoff_max : float;  (* delay ceiling *)
  cooldown : float;  (* quarantine duration before a half-open probe *)
}

let default_policy =
  {
    budget_max = 3;
    budget_window = 5.0e6;
    backoff_base = 20_000.0;
    backoff_factor = 2.0;
    backoff_max = 1.0e6;
    cooldown = 2.0e6;
  }

type dstate = {
  d_udi : Types.udi;
  mutable breaker : breaker;
  mutable recent : float list;  (* rewind timestamps, newest first *)
  mutable strikes : int;  (* consecutive faults since last success *)
  mutable retry_at : float;  (* Backoff: earliest next admission *)
  mutable quarantined_at : float;
  mutable d_rewinds : int;
  mutable d_quarantines : int;
  mutable d_probes : int;
  mutable d_rejections : int;
}

module M = Telemetry.Metrics
module Trace = Telemetry.Trace

type t = {
  sd : Api.t;
  policy : policy;
  domains : (Types.udi, dstate) Hashtbl.t;
  metrics : M.t;
  tracer : Trace.t;
  c_rewinds_seen : M.counter;
  c_quarantines : M.counter;
  c_rejections : M.counter;
  c_backoff_waits : M.counter;
  c_probes : M.counter;
  c_probe_successes : M.counter;
}

type verdict = Admitted | Probe | Busy of { until : float }

let now () = if Sched.in_thread () then Sched.now () else 0.0

let dstate t udi =
  match Hashtbl.find_opt t.domains udi with
  | Some d -> d
  | None ->
      let d =
        {
          d_udi = udi;
          breaker = Closed;
          recent = [];
          strikes = 0;
          retry_at = 0.0;
          quarantined_at = 0.0;
          d_rewinds = 0;
          d_quarantines = 0;
          d_probes = 0;
          d_rejections = 0;
        }
      in
      Hashtbl.replace t.domains udi d;
      d

(* Move the breaker one edge, counting the edge under
   [supervisor_transitions_total{from,to}] and dropping a trace marker —
   the observable contract the breaker tests assert on. *)
let transition t d target =
  let from = d.breaker in
  if from <> target then begin
    M.inc
      (M.counter t.metrics "supervisor_transitions_total"
         ~help:"Breaker edges taken, by (from, to) state"
         ~labels:
           [
             ("from", breaker_to_string from);
             ("to", breaker_to_string target);
           ]);
    Trace.instant t.tracer "supervisor.transition"
      ~args:
        [
          ("udi", string_of_int d.d_udi);
          ("from", breaker_to_string from);
          ("to", breaker_to_string target);
        ];
    d.breaker <- target
  end

let quarantine t d ~at =
  transition t d Quarantined;
  d.quarantined_at <- at;
  d.d_quarantines <- d.d_quarantines + 1;
  M.inc t.c_quarantines;
  Log.warn (fun m ->
      m "domain %d quarantined until %.0f (%d rewinds in window)" d.d_udi
        (at +. t.policy.cooldown) (List.length d.recent))

let on_incident t (f : Types.fault) =
  let d = dstate t f.failed_udi in
  let at = f.at in
  M.inc t.c_rewinds_seen;
  d.d_rewinds <- d.d_rewinds + 1;
  d.recent <-
    at :: List.filter (fun ts -> at -. ts <= t.policy.budget_window) d.recent;
  d.strikes <- d.strikes + 1;
  match d.breaker with
  | Half_open ->
      (* The probe itself faulted: straight back to quarantine. *)
      quarantine t d ~at
  | Closed | Backoff ->
      if List.length d.recent >= t.policy.budget_max then quarantine t d ~at
      else begin
        transition t d Backoff;
        let delay =
          Float.min t.policy.backoff_max
            (t.policy.backoff_base
            *. (t.policy.backoff_factor ** float_of_int (d.strikes - 1)))
        in
        d.retry_at <- at +. delay;
        Log.info (fun m ->
            m "domain %d backing off %.0f cycles (strike %d)" d.d_udi delay
              d.strikes)
      end
  | Quarantined ->
      (* A rewind while quarantined means the caller bypassed [admit];
         restart the cooldown so repeat offenders stay fenced. *)
      d.quarantined_at <- at

let attach ?(policy = default_policy) sd =
  let metrics = Api.metrics sd in
  let t =
    {
      sd;
      policy;
      domains = Hashtbl.create 16;
      metrics;
      tracer = Api.tracer sd;
      c_rewinds_seen =
        M.counter metrics "supervisor_rewinds_seen_total"
          ~help:"Incidents consumed from the monitor's stream";
      c_quarantines =
        M.counter metrics "supervisor_quarantines_total"
          ~help:"Breaker trips into quarantine";
      c_rejections =
        M.counter metrics "supervisor_rejections_total"
          ~help:"Admissions rejected while quarantined or probing";
      c_backoff_waits =
        M.counter metrics "supervisor_backoff_waits_total"
          ~help:"Admissions delayed by exponential backoff";
      c_probes =
        M.counter metrics "supervisor_probes_total"
          ~help:"Half-open probes admitted after cooldown";
      c_probe_successes =
        M.counter metrics "supervisor_probe_successes_total"
          ~help:"Probes that closed the breaker";
    }
  in
  M.gauge_fn metrics "supervisor_supervised_domains"
    ~help:"Domains with supervision state" (fun () ->
      float_of_int (Hashtbl.length t.domains));
  Api.add_incident_handler sd (on_incident t);
  t

let admit t ~udi =
  let d = dstate t udi in
  match d.breaker with
  | Closed -> Admitted
  | Backoff ->
      (* The exponential re-init delay is real virtual time: the caller
         sleeps until the retry point, exactly like a supervisor pausing
         before restarting a crashing child. *)
      if Sched.in_thread () && Sched.now () < d.retry_at then begin
        M.inc t.c_backoff_waits;
        Trace.with_span t.tracer "supervisor.backoff_wait"
          ~args:[ ("udi", string_of_int d.d_udi) ]
          (fun () -> Sched.wait_until d.retry_at)
      end;
      Admitted
  | Half_open ->
      (* One probe in flight at a time. *)
      d.d_rejections <- d.d_rejections + 1;
      M.inc t.c_rejections;
      Busy { until = d.quarantined_at +. t.policy.cooldown }
  | Quarantined ->
      let release = d.quarantined_at +. t.policy.cooldown in
      if now () >= release then begin
        transition t d Half_open;
        d.d_probes <- d.d_probes + 1;
        M.inc t.c_probes;
        Trace.instant t.tracer "supervisor.probe"
          ~args:[ ("udi", string_of_int d.d_udi) ];
        Log.info (fun m -> m "domain %d: half-open probe admitted" d.d_udi);
        Probe
      end
      else begin
        d.d_rejections <- d.d_rejections + 1;
        M.inc t.c_rejections;
        Busy { until = release }
      end

(* Non-blocking admission for servers that would rather shed than sleep:
   where [admit] parks the caller until the backoff retry point,
   [admit_nb] reports [Busy { until = retry_at }] and lets the caller
   turn the wait into a busy reply. Every other state behaves exactly as
   [admit]. *)
let admit_nb t ~udi =
  let d = dstate t udi in
  match d.breaker with
  | Backoff when Sched.in_thread () && Sched.now () < d.retry_at ->
      d.d_rejections <- d.d_rejections + 1;
      M.inc t.c_rejections;
      Busy { until = d.retry_at }
  | Backoff -> Admitted
  | Closed | Half_open | Quarantined -> admit t ~udi

let succeed t ~udi =
  let d = dstate t udi in
  d.strikes <- 0;
  match d.breaker with
  | Half_open ->
      transition t d Closed;
      d.recent <- [];
      M.inc t.c_probe_successes;
      Log.info (fun m -> m "domain %d: probe succeeded, breaker closed" d.d_udi)
  | Backoff -> transition t d Closed
  | Closed | Quarantined -> ()

(* {1 Wrappers} *)

(* Supervised [Api.run]: quarantined udis are rejected with [on_busy]
   before any domain state is touched, so the caller can degrade instead
   of crash; a normally completing body counts as a success. The rewind
   path needs no bookkeeping here — the incident handler already saw it. *)
let run t ~udi ?opts ~on_rewind ~on_busy body =
  match admit t ~udi with
  | Busy { until } -> on_busy ~until
  | Admitted | Probe ->
      Api.run t.sd ~udi ?opts ~on_rewind (fun () ->
          let v = body () in
          succeed t ~udi;
          v)

(* [run] with non-blocking admission: a Backoff delay becomes an
   [on_busy] rejection instead of a sleep, so an overloaded server sheds
   the request before burning a domain switch. *)
let run_nb t ~udi ?opts ~on_rewind ~on_busy body =
  match admit_nb t ~udi with
  | Busy { until } -> on_busy ~until
  | Admitted | Probe ->
      Api.run t.sd ~udi ?opts ~on_rewind (fun () ->
          let v = body () in
          succeed t ~udi;
          v)

type 'a outcome =
  | Ok of 'a
  | Faulted of Types.fault
  | Rejected of { udi : Types.udi; until : float }

(* Supervised [Api.protect_call] with a distinguishable rejection. *)
let protect_call t ~udi ?opts ~arg f =
  match admit t ~udi with
  | Busy { until } ->
      Rejected { udi; until }
  | Admitted | Probe -> (
      match Api.protect_call t.sd ~udi ?opts ~arg f with
      | Result.Ok v ->
          succeed t ~udi;
          Ok v
      | Result.Error fault -> Faulted fault)

(* {1 Introspection} *)

let breaker_state t ~udi =
  match Hashtbl.find_opt t.domains udi with
  | Some d -> d.breaker
  | None -> Closed

let forget t ~udi = Hashtbl.remove t.domains udi

let states t =
  Hashtbl.fold (fun udi d acc -> (udi, d.breaker) :: acc) t.domains []
  |> List.sort compare

let domain_counters t ~udi =
  let d = dstate t udi in
  [
    ("rewinds", d.d_rewinds);
    ("quarantines", d.d_quarantines);
    ("probes", d.d_probes);
    ("rejections", d.d_rejections);
  ]

let stats t =
  [
    ("supervised_domains", Hashtbl.length t.domains);
    ("rewinds_seen", M.counter_value t.c_rewinds_seen);
    ("quarantines", M.counter_value t.c_quarantines);
    ("rejections", M.counter_value t.c_rejections);
    ("backoff_waits", M.counter_value t.c_backoff_waits);
    ("probes", M.counter_value t.c_probes);
    ("probe_successes", M.counter_value t.c_probe_successes);
  ]

let transition_count t ~from ~target =
  M.counter_value
    (M.counter t.metrics "supervisor_transitions_total"
       ~labels:
         [ ("from", breaker_to_string from); ("to", breaker_to_string target) ])

let sdrad t = t.sd
let policy t = t.policy
