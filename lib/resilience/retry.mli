(** Deadline-driven client retry policies over virtual time.

    An engine owns a retry {!policy}, an optional token-bucket {!budget}
    shared across its calls, and a deterministic jitter stream
    ([Simkern.Rng] — no wall clock). {!execute} runs one logical request:
    it generates a fresh idempotency key, computes a per-attempt deadline
    (min of [now + attempt_timeout] and the overall call deadline), and
    hands both to the caller's attempt function. Retryable failures back
    off with decorrelated jitter (uniform in
    [[base, min (cap, 3 * previous)]]) before the next attempt. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first *)
  attempt_timeout : float;  (** per-attempt deadline, cycles *)
  overall_timeout : float;  (** whole-call deadline, cycles *)
  backoff_base : float;  (** minimum backoff sleep, cycles *)
  backoff_cap : float;  (** maximum backoff sleep, cycles *)
}

val default_policy : policy

type budget
(** Token bucket limiting the steady-state retry rate: each logical call
    deposits, each retry withdraws. Share one budget across an
    application's engines to bound aggregate retry amplification. *)

val budget : ?cap:float -> ?deposit:float -> ?withdraw:float -> unit -> budget
(** Defaults [cap = 100., deposit = 1., withdraw = 10.]: at most ~10% of
    traffic may be retries in steady state, with a burst allowance of
    [cap / withdraw] retries. Starts full. *)

val budget_tokens : budget -> float

type error =
  | Attempts_exhausted of string
      (** [max_attempts] attempts all failed; payload is the last
          failure's reason *)
  | Deadline_exceeded  (** the overall call deadline passed *)
  | Budget_exhausted
      (** the retry budget ran dry — distinct so callers can tell
          load-induced fast-failure from a genuinely dead server *)

val error_to_string : error -> string

type t

val create :
  ?metrics:Telemetry.Metrics.t ->
  ?budget:budget ->
  ?name:string ->
  policy ->
  rng:Simkern.Rng.t ->
  t
(** [name] (default ["client"]) prefixes generated request ids. With
    [metrics], [client_retries_total] and
    [client_retry_budget_exhausted_total] are registered (get-or-create,
    so engines sharing a registry share the counters). *)

val execute :
  t ->
  (rid:string ->
  attempt:int ->
  deadline:float ->
  ('a, [ `Retry of string ]) result) ->
  ('a, error) result
(** Run one logical request. The attempt function receives the call's
    idempotency key [rid] (stable across retries — thread it into the
    wire request so the server's replay journal can deduplicate), the
    0-based [attempt] number, and the virtual-time [deadline] this
    attempt must finish by (pass it to {!Netsim.recv_deadline}).
    Returning [Error (`Retry reason)] triggers backoff and a retry,
    subject to attempts, deadline and budget. *)

val execute_ctx :
  t ->
  (ctx:Telemetry.Context.t ->
  rid:string ->
  attempt:int ->
  deadline:float ->
  ('a, [ `Retry of string ]) result) ->
  ('a, error) result
(** Like {!execute}, and additionally hands each attempt its causal
    trace context: the trace id is minted deterministically from the
    call's [rid] (stable across retries), the span ordinal is the
    attempt number. Thread it into the wire request (kvcache [trace=]
    token, binary CAS field, httpd [traceparent] header) so server-side
    flight-recorder events and audit records link back to this call.
    When the engine has a [metrics] registry, the whole-call latency is
    observed in [client_op_latency_cycles] with the trace id attached
    as the bucket's exemplar. *)

val calls : t -> int
val retries : t -> int
val budget_exhaustions : t -> int
