exception Out_of_memory
exception Heap_corrupted of string

(* Block layout (all fields in simulated memory):
     +0   prev_phys     address of the previous physical block (valid only
                        when the PREV_FREE flag is set)
     +8   size|flags    payload size (multiple of 8) or'ed with flag bits
     +16  payload       for free blocks: +16 next_free, +24 prev_free
   The minimum payload is 16 bytes so a free block can hold its links. *)

let align = 8
let header = 16
let min_payload = 16
let min_block = header + min_payload
let block_overhead = header
let min_region_len = min_block + header

let fl_free = 1
let fl_prev_free = 2
let fl_last = 4
let flag_mask = 7

(* Two-level index parameters (mattconte/tlsf with SL_INDEX_COUNT = 16):
   sizes below [small] map linearly into first level 0. *)
let sl_log2 = 4
let sl_count = 16
let fl_shift = 7 (* log2 (sl_count * align) *)
let small = 1 lsl fl_shift
let fl_count = 40

type t = {
  space : Vmem.Space.t;
  name : string;
  mutable fl_bitmap : int;
  sl_bitmap : int array;
  heads : int array array; (* [fl][sl] -> head block address, 0 = empty *)
  mutable regions : (int * int) list;
  mutable used_bytes : int;
  mutable used_blocks : int;
  mutable total_bytes : int;
  mutable inject_failure : (int -> bool) option;
      (* fault injection: when set and it answers [true] for a request
         size, the allocation fails as if the heap were exhausted *)
  mutable malloc_calls : int;
  mutable free_calls : int;
  mutable region_adds : int;
  mutable sanitize : bool;
      (* heap-poison mode: trailing redzone per allocation, poison-on-free
         fill, everything but live payloads poisoned in the shadow map *)
}

let create space ~name =
  {
    space;
    name;
    fl_bitmap = 0;
    sl_bitmap = Array.make fl_count 0;
    heads = Array.make_matrix fl_count sl_count 0;
    regions = [];
    used_bytes = 0;
    used_blocks = 0;
    total_bytes = 0;
    inject_failure = None;
    malloc_calls = 0;
    free_calls = 0;
    region_adds = 0;
    sanitize = false;
  }

let set_inject_failure t h = t.inject_failure <- h

(* Sanitize mode must be chosen before the first region arrives: regions
   are poisoned wholesale on entry and allocations carve live windows out
   of that, an invariant that cannot be established retroactively. *)
let redzone = 16

let set_sanitize t on =
  if on <> t.sanitize then begin
    if t.regions <> [] then
      invalid_arg "Tlsf.set_sanitize: heap already has regions";
    if on && not (Vmem.Space.sanitizer_enabled t.space) then
      Vmem.Space.set_sanitizer t.space true;
    t.sanitize <- on
  end

let sanitized t = t.sanitize

(* The allocator's own metadata — headers, free-list links — lives inside
   poisoned ranges by design; every public entry point runs with the
   bypass flag raised. For a sanitized heap that suspends the poison
   scan; for every heap it also marks the accesses as allocator-internal
   so shadow-cell observers ({!Vmem.Space.set_access_hook}) skip them —
   header words are shared by design and cooperatively serialized. *)
let with_bypass t f = Vmem.Space.sanitizer_bypass t.space f

let space t = t.space
let name t = t.name
let regions t = List.rev t.regions
let used_bytes t = t.used_bytes
let used_blocks t = t.used_blocks
let total_bytes t = t.total_bytes
let malloc_calls t = t.malloc_calls
let free_calls t = t.free_calls
let region_adds t = t.region_adds

let fls n =
  let rec go n i = if n = 0 then i - 1 else go (n lsr 1) (i + 1) in
  go n 0

let ffs n = fls (n land -n)
let round_up n = (n + align - 1) land lnot (align - 1)

let mapping_insert size =
  if size < small then (0, size lsr 3)
  else
    let f = fls size in
    let sl = (size lsr (f - sl_log2)) land (sl_count - 1) in
    (f - fl_shift + 1, sl)

let mapping_search size =
  if size < small then (size, mapping_insert size)
  else
    let rounded = size + (1 lsl (fls size - sl_log2)) - 1 in
    (size, mapping_insert rounded)

(* Header accessors — every one is a checked simulated-memory access. *)
let hdr t b = Vmem.Space.load64 t.space (b + 8)
let set_hdr t b v = Vmem.Space.store64 t.space (b + 8) v
let size_of word = word land lnot flag_mask
let is_free word = word land fl_free <> 0
let is_last word = word land fl_last <> 0
let prev_is_free word = word land fl_prev_free <> 0
let prev_phys t b = Vmem.Space.load64 t.space b
let set_prev_phys t b v = Vmem.Space.store64 t.space b v
let next_free t b = Vmem.Space.load64 t.space (b + header)
let set_next_free t b v = Vmem.Space.store64 t.space (b + header) v
let prev_free_link t b = Vmem.Space.load64 t.space (b + header + 8)
let set_prev_free_link t b v = Vmem.Space.store64 t.space (b + header + 8) v
let next_phys b size = b + header + size

let insert_free t b size =
  let fl, sl = mapping_insert size in
  let head = t.heads.(fl).(sl) in
  set_next_free t b head;
  set_prev_free_link t b 0;
  if head <> 0 then set_prev_free_link t head b;
  t.heads.(fl).(sl) <- b;
  t.sl_bitmap.(fl) <- t.sl_bitmap.(fl) lor (1 lsl sl);
  t.fl_bitmap <- t.fl_bitmap lor (1 lsl fl)

let remove_free t b size =
  let fl, sl = mapping_insert size in
  let next = next_free t b and prev = prev_free_link t b in
  if next <> 0 then set_prev_free_link t next prev;
  if prev <> 0 then set_next_free t prev next
  else begin
    if t.heads.(fl).(sl) <> b then
      raise
        (Heap_corrupted
           (Printf.sprintf "%s: free list head mismatch at 0x%x" t.name b));
    t.heads.(fl).(sl) <- next;
    if next = 0 then begin
      t.sl_bitmap.(fl) <- t.sl_bitmap.(fl) land lnot (1 lsl sl);
      if t.sl_bitmap.(fl) = 0 then
        t.fl_bitmap <- t.fl_bitmap land lnot (1 lsl fl)
    end
  end

let add_region t ~addr ~len =
  let full_len = len in
  let len = len land lnot (align - 1) in
  if len < min_region_len then invalid_arg "Tlsf.add_region: region too small";
  with_bypass t (fun () ->
      let size = len - header in
      set_prev_phys t addr 0;
      set_hdr t addr (size lor fl_free lor fl_last);
      insert_free t addr size;
      t.regions <- (addr, len) :: t.regions;
      t.total_bytes <- t.total_bytes + len;
      t.region_adds <- t.region_adds + 1);
  (* Sanitized heaps start fully poisoned; [malloc] carves live payload
     windows out, [free] re-poisons them. The unaligned tail (never handed
     out) is poisoned too. *)
  if t.sanitize then Vmem.Space.poison t.space ~addr ~len:full_len

let find_suitable t fl sl =
  let sl_map = t.sl_bitmap.(fl) land (-1 lsl sl) in
  if sl_map <> 0 then Some (fl, ffs sl_map)
  else
    let fl_map = t.fl_bitmap land (-1 lsl (fl + 1)) in
    if fl_map = 0 then None
    else
      let fl' = ffs fl_map in
      Some (fl', ffs t.sl_bitmap.(fl'))

let malloc_opt_raw t request =
  let injected =
    match t.inject_failure with Some f -> f request | None -> false
  in
  let adjust = max min_payload (round_up (max request 1)) in
  let _, (fl, sl) = mapping_search adjust in
  if injected || fl >= fl_count then None
  else
    match find_suitable t fl sl with
    | None -> None
    | Some (fl, sl) ->
        let b = t.heads.(fl).(sl) in
        let word = hdr t b in
        let block_size = size_of word in
        remove_free t b block_size;
        let last = is_last word in
        let prev_free_flag = word land fl_prev_free in
        if block_size >= adjust + min_block then begin
          (* Split: the remainder becomes a new free block. *)
          let rem = next_phys b adjust in
          let rem_size = block_size - adjust - header in
          set_prev_phys t rem b;
          set_hdr t rem (rem_size lor fl_free lor (if last then fl_last else 0));
          if not last then begin
            let np = next_phys rem rem_size in
            set_prev_phys t np rem
            (* np's PREV_FREE flag is already set: its neighbour was free. *)
          end;
          set_hdr t b (adjust lor prev_free_flag);
          insert_free t rem rem_size;
          t.used_bytes <- t.used_bytes + adjust
        end
        else begin
          set_hdr t b
            (block_size lor prev_free_flag lor (if last then fl_last else 0));
          if not last then begin
            let np = next_phys b block_size in
            set_hdr t np (hdr t np land lnot fl_prev_free)
          end;
          t.used_bytes <- t.used_bytes + block_size
        end;
        t.used_blocks <- t.used_blocks + 1;
        t.malloc_calls <- t.malloc_calls + 1;
        Some (b + header)

(* Sanitized allocation: the physical block is the request plus a
   trailing redzone; only [payload, payload + size - redzone) is
   unpoisoned, so an overflow past the usable size lands on poisoned
   bytes before it can reach the next block's header. *)
let malloc_opt t request =
  if not t.sanitize then with_bypass t (fun () -> malloc_opt_raw t request)
  else
    Vmem.Space.sanitizer_bypass t.space (fun () ->
        match malloc_opt_raw t (max request 1 + redzone) with
        | None -> None
        | Some p ->
            let s = size_of (hdr t (p - header)) in
            Vmem.Space.unpoison t.space ~addr:p ~len:(s - redzone);
            Vmem.Space.poison t.space ~addr:(p + s - redzone) ~len:redzone;
            Some p)

let malloc t request =
  match malloc_opt t request with Some p -> p | None -> raise Out_of_memory

let free_raw t ptr =
  let b = ptr - header in
  let word = hdr t b in
  if is_free word then
    raise (Heap_corrupted (Printf.sprintf "%s: double free at 0x%x" t.name ptr));
  let size = size_of word in
  if size < min_payload || size land (align - 1) <> 0 then
    raise
      (Heap_corrupted (Printf.sprintf "%s: bad block header at 0x%x" t.name ptr));
  t.used_bytes <- t.used_bytes - size;
  t.used_blocks <- t.used_blocks - 1;
  t.free_calls <- t.free_calls + 1;
  let b = ref b and size = ref size and last = ref (is_last word) in
  let prev_free_flag = ref (word land fl_prev_free) in
  (* Coalesce with the next physical block. *)
  if not !last then begin
    let np = next_phys !b !size in
    let nw = hdr t np in
    if is_free nw then begin
      remove_free t np (size_of nw);
      size := !size + header + size_of nw;
      last := is_last nw
    end
  end;
  (* Coalesce with the previous physical block. *)
  if !prev_free_flag <> 0 then begin
    let pb = prev_phys t !b in
    let pw = hdr t pb in
    if not (is_free pw) then
      raise
        (Heap_corrupted
           (Printf.sprintf "%s: prev-free flag without free neighbour at 0x%x"
              t.name !b));
    remove_free t pb (size_of pw);
    size := !size + header + size_of pw;
    b := pb;
    prev_free_flag := pw land fl_prev_free
  end;
  set_hdr t !b (!size lor fl_free lor !prev_free_flag lor (if !last then fl_last else 0));
  if not !last then begin
    let np = next_phys !b !size in
    set_prev_phys t np !b;
    set_hdr t np (hdr t np lor fl_prev_free)
  end;
  insert_free t !b !size

(* Sanitized free: fill the dying payload with the poison pattern, then
   release it, then mark it poisoned in the shadow map. The fill happens
   BEFORE [free_raw] so coalescing's free-list links (written into the
   first 16 payload bytes) survive; double frees are detected first so
   the fill cannot clobber a live free block's links. *)
let free t ptr =
  if not t.sanitize then with_bypass t (fun () -> free_raw t ptr)
  else
    Vmem.Space.sanitizer_bypass t.space (fun () ->
        let word = hdr t (ptr - header) in
        if is_free word then free_raw t ptr (* raises the double-free error *)
        else begin
          let size = size_of word in
          Vmem.Space.fill t.space ~addr:ptr ~len:size '\xfd';
          free_raw t ptr;
          Vmem.Space.poison t.space ~addr:ptr ~len:size
        end)

let usable_size t ptr =
  let s = with_bypass t (fun () -> size_of (hdr t (ptr - header))) in
  if t.sanitize then s - redzone else s

let realloc_raw t ptr request =
  if ptr = 0 then malloc t request
  else begin
    let old_size = usable_size t ptr in
    let adjust = max min_payload (round_up (max request 1)) in
    if adjust <= old_size then begin
      (* Shrink in place when the tail is worth returning. *)
      if old_size - adjust >= min_block then begin
        let b = ptr - header in
        let word = hdr t b in
        let last = is_last word in
        let rem = next_phys b adjust in
        let rem_size = old_size - adjust - header in
        set_hdr t b (adjust lor (word land fl_prev_free));
        set_prev_phys t rem b;
        set_hdr t rem (rem_size lor (if last then fl_last else 0));
        t.used_bytes <- t.used_bytes - old_size + adjust;
        (* Free the remainder through the normal path so it coalesces
           with a free successor. *)
        t.used_bytes <- t.used_bytes + rem_size;
        t.used_blocks <- t.used_blocks + 1;
        free t (rem + header)
      end;
      ptr
    end
    else begin
      (* Try to grow in place by absorbing a free successor block. *)
      let b = ptr - header in
      let word = hdr t b in
      let grown =
        if is_last word then false
        else begin
          let np = next_phys b old_size in
          let nw = hdr t np in
          let combined = old_size + header + size_of nw in
          if is_free nw && combined >= adjust then begin
            remove_free t np (size_of nw);
            let last = is_last nw in
            if combined >= adjust + min_block then begin
              (* Split the absorbed space; the remainder stays free. *)
              let rem = next_phys b adjust in
              let rem_size = combined - adjust - header in
              set_prev_phys t rem b;
              set_hdr t rem (rem_size lor fl_free lor (if last then fl_last else 0));
              set_hdr t b (adjust lor (word land fl_prev_free));
              if not last then begin
                let nnp = next_phys rem rem_size in
                set_prev_phys t nnp rem;
                set_hdr t nnp (hdr t nnp lor fl_prev_free)
              end;
              insert_free t rem rem_size;
              t.used_bytes <- t.used_bytes + adjust - old_size
            end
            else begin
              set_hdr t b
                (combined lor (word land fl_prev_free)
                lor (if last then fl_last else 0));
              if not last then begin
                let nnp = next_phys b combined in
                set_hdr t nnp (hdr t nnp land lnot fl_prev_free);
                set_prev_phys t nnp b
              end;
              t.used_bytes <- t.used_bytes + combined - old_size
            end;
            true
          end
          else false
        end
      in
      if grown then ptr
      else begin
        let fresh = malloc t request in
        Vmem.Space.blit t.space ~src:ptr ~dst:fresh ~len:old_size;
        free t ptr;
        fresh
      end
    end
  end

(* Sanitized realloc never moves blocks in place: in-place splitting and
   absorption would have to re-derive redzone windows for partial blocks.
   A fresh allocation + copy of the live payload keeps the invariant
   (everything but live payloads poisoned) trivially true. *)
let realloc t ptr request =
  if not t.sanitize then with_bypass t (fun () -> realloc_raw t ptr request)
  else if ptr = 0 then malloc t request
  else begin
    let old_logical = usable_size t ptr in
    let fresh = malloc t request in
    let n = min old_logical (usable_size t fresh) in
    if n > 0 then Vmem.Space.blit t.space ~src:ptr ~dst:fresh ~len:n;
    free t ptr;
    fresh
  end

let iter_blocks t f =
  with_bypass t (fun () ->
      List.iter
        (fun (addr, _len) ->
          let rec walk b =
            let word = hdr t b in
            let size = size_of word in
            f ~addr:b ~size ~free:(is_free word);
            if not (is_last word) then walk (next_phys b size)
          in
          walk addr)
        (regions t))

let merge t ~from =
  if t.space != from.space then invalid_arg "Tlsf.merge: different spaces";
  if t.sanitize <> from.sanitize then
    invalid_arg "Tlsf.merge: sanitizer mismatch";
  with_bypass t (fun () ->
  List.iter
    (fun (addr, len) ->
      t.regions <- (addr, len) :: t.regions;
      t.total_bytes <- t.total_bytes + len;
      let rec walk b =
        let word = hdr t b in
        let size = size_of word in
        if is_free word then insert_free t b size
        else begin
          t.used_bytes <- t.used_bytes + size;
          t.used_blocks <- t.used_blocks + 1
        end;
        if not (is_last word) then walk (next_phys b size)
      in
      walk addr)
    (regions from));
  from.regions <- [];
  from.fl_bitmap <- 0;
  Array.fill from.sl_bitmap 0 fl_count 0;
  Array.iter (fun row -> Array.fill row 0 sl_count 0) from.heads;
  from.used_bytes <- 0;
  from.used_blocks <- 0;
  from.total_bytes <- 0

let check t =
  with_bypass t @@ fun () ->
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let free_set = Hashtbl.create 64 in
  (* Physical walk of every region. *)
  List.iter
    (fun (addr, len) ->
      let limit = addr + len in
      let rec walk b prev prev_free =
        if b + header > limit then err "block 0x%x overruns region 0x%x" b addr
        else begin
          let word = hdr t b in
          let size = size_of word in
          if size < min_payload then err "block 0x%x has size %d < min" b size
          else if next_phys b size > limit then
            err "block 0x%x (size %d) overruns region" b size
          else begin
            if prev_is_free word <> prev_free then
              err "block 0x%x PREV_FREE flag inconsistent" b;
            if prev_free && prev_phys t b <> prev then
              err "block 0x%x prev_phys link broken" b;
            if is_free word && prev_free then
              err "adjacent free blocks at 0x%x (missed coalesce)" b;
            if is_free word then Hashtbl.replace free_set b size;
            if is_last word then begin
              if next_phys b size <> limit then
                err "last block 0x%x does not end region" b
            end
            else walk (next_phys b size) b (is_free word)
          end
        end
      in
      walk addr 0 false)
    (regions t);
  (* Every free block must be indexed exactly once, in the right list. *)
  let listed = Hashtbl.create 64 in
  Array.iteri
    (fun fl row ->
      Array.iteri
        (fun sl head ->
          let rec follow b prev =
            if b <> 0 then
              if Hashtbl.mem listed b then
                err "block 0x%x listed twice (cycle?)" b
              else begin
                Hashtbl.replace listed b ();
                match Hashtbl.find_opt free_set b with
                | None ->
                    (* A corrupted link escaping the known free blocks must
                       not be dereferenced: it can point anywhere. *)
                    err "free list (%d,%d) links to foreign 0x%x" fl sl b
                | Some size ->
                    let fl', sl' = mapping_insert size in
                    if (fl', sl') <> (fl, sl) then
                      err "block 0x%x (size %d) in wrong class (%d,%d)" b size
                        fl sl;
                    if prev_free_link t b <> prev then
                      err "block 0x%x prev_free link broken" b;
                    follow (next_free t b) b
              end
          in
          follow head 0;
          let bit_set = t.sl_bitmap.(fl) land (1 lsl sl) <> 0 in
          if bit_set && head = 0 then err "bitmap set for empty list (%d,%d)" fl sl;
          if (not bit_set) && head <> 0 then
            err "bitmap clear for non-empty list (%d,%d)" fl sl)
        row)
    t.heads;
  Hashtbl.iter
    (fun b _ -> if not (Hashtbl.mem listed b) then err "free block 0x%x not indexed" b)
    free_set;
  List.rev !errors
