(** Two-Level Segregated Fit allocator over simulated memory.

    This is the allocator SDRaD uses for per-domain sub-heaps (§IV-C of the
    paper): a good-fit, constant-time allocator whose pools are fully
    disjoint memory regions, so allocations in one domain can never be
    satisfied from another domain's memory. Following Masmano et al. and
    the mattconte/tlsf layout, free blocks are indexed by a two-level
    (first-level power of two, second-level linear subdivision) bitmap.

    All block metadata — size/flag words, physical-neighbour links and
    free-list links — lives {e inside} the simulated address space, subject
    to protection-key checks, which is what makes heap overflows in the
    simulation corrupt real allocator state exactly as they would in C.

    One {!t} is one TLSF control structure (one domain sub-heap). Regions
    are added with {!add_region}; an entire control can be absorbed into
    another with {!merge} (the SDRaD sub-heap merge extension). *)

type t

exception Out_of_memory
exception Heap_corrupted of string
(** Raised when an operation encounters metadata that fails a sanity check
    (e.g. freeing a pointer whose header is not a live block). *)

val create : Vmem.Space.t -> name:string -> t
val space : t -> Vmem.Space.t
val name : t -> string

val add_region : t -> addr:int -> len:int -> unit
(** Hand a mapped region (from {!Vmem.Space.mmap}) to the allocator. [len] must
    be at least {!min_region_len}. *)

val min_region_len : int
val block_overhead : int
(** Bytes of metadata per live allocation (16). *)

val malloc : t -> int -> int
(** Allocate at least the given number of bytes (8-byte aligned); returns
    the payload address. O(1). @raise Out_of_memory when no region can
    satisfy the request. *)

val malloc_opt : t -> int -> int option

val set_inject_failure : t -> (int -> bool) option -> unit
(** Fault injection: when the hook answers [true] for a request size, that
    allocation fails ([malloc_opt] returns [None], {!malloc} raises
    [Out_of_memory]) as if the heap were exhausted. [None] disarms. *)

(** {1 Heap-poison sanitizer}

    A sanitized heap keeps the invariant that {e every byte of every
    region is poisoned in the space's shadow map except live allocation
    payloads}. Each allocation carries a trailing {!redzone} (excluded
    from {!usable_size}); {!free} fills the dying payload with [0xFD]
    and re-poisons it. A checked access that touches a redzone or a
    freed block raises {!Vmem.Space.Fault} with code
    [Vmem.Space.POISON] — a detected, rewindable incident instead of
    silent corruption. The allocator's own metadata accesses run with
    the scan suspended ({!Vmem.Space.sanitizer_bypass}). *)

val set_sanitize : t -> bool -> unit
(** Enable heap-poison mode. Must be called before the first
    {!add_region} (@raise Invalid_argument otherwise); enables the
    space's sanitizer as a side effect. *)

val sanitized : t -> bool

val redzone : int
(** Trailing poisoned bytes appended to every sanitized allocation (16). *)

val free : t -> int -> unit
(** Release a payload address, coalescing with free physical neighbours.
    @raise Heap_corrupted on double free or foreign pointer. *)

val realloc : t -> int -> int -> int
val usable_size : t -> int -> int
(** Physical payload size of a live allocation; on a sanitized heap the
    redzone is excluded, i.e. the bytes the caller may touch. *)

val merge : t -> from:t -> unit
(** Absorb every region of [from] into [t]: free blocks of [from] become
    allocatable from [t]; live allocations of [from] become live
    allocations of [t] (and must subsequently be freed via [t]). [from] is
    emptied. The caller is responsible for re-keying the pages
    ({!Vmem.Space.pkey_mprotect}) before calling. Both heaps must agree
    on sanitize mode (@raise Invalid_argument otherwise); poison state
    travels with the regions, so blocks freed in [from] stay poisoned
    under [t]. *)

val regions : t -> (int * int) list
(** [(addr, len)] of every region owned by this control. *)

val used_bytes : t -> int
(** Payload bytes currently allocated. *)

val used_blocks : t -> int
val total_bytes : t -> int

val malloc_calls : t -> int
(** Successful allocations since creation (monotonic). *)

val free_calls : t -> int
(** Successful frees since creation (monotonic). *)

val region_adds : t -> int
(** Regions handed to this control via {!add_region} (monotonic). *)

val check : t -> string list
(** Integrity walk over all regions and free lists; returns human-readable
    descriptions of every inconsistency found (empty = healthy). Used by
    tests and by fault-injection experiments to show that an overflow
    really corrupted the heap. *)

val iter_blocks : t -> (addr:int -> size:int -> free:bool -> unit) -> unit
(** Walk every physical block in every region. *)
