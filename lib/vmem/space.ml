module Sched = Simkern.Sched
module Cost = Simkern.Cost

type access = Read | Write | Exec
type si_code = MAPERR | ACCERR | PKUERR | POISON

exception
  Fault of {
    addr : int;
    access : access;
    code : si_code;
    pkey : int;
    tid : int;
  }

let pp_access ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Write -> Format.pp_print_string ppf "write"
  | Exec -> Format.pp_print_string ppf "exec"

let pp_si_code ppf = function
  | MAPERR -> Format.pp_print_string ppf "SEGV_MAPERR"
  | ACCERR -> Format.pp_print_string ppf "SEGV_ACCERR"
  | PKUERR -> Format.pp_print_string ppf "SEGV_PKUERR"
  | POISON -> Format.pp_print_string ppf "SEGV_POISON"

let fault_to_string = function
  | Fault { addr; access; code; pkey; tid } ->
      Some
        (Format.asprintf "SEGV at 0x%x (%a, %a, pkey %d, tid %d)" addr
           pp_access access pp_si_code code pkey tid)
  | _ -> None

let page_shift = 12
let ps = 1 lsl page_shift

(* flags byte per page *)
let fl_mapped = 8

(* Per-thread access-grant cache — the simulator's software TLB. Each
   entry caches the access rights the slow path would derive for one page
   under one PKRU value: a granted-{!Prot}-bits mask tagged with the
   epoch current when the entry was filled (0 = invalid). A WRPKRU
   switches [epoch] to the epoch associated with the new PKRU value —
   previously seen values reuse their old epoch, so entries survive the
   monitor's enter/exit PKRU brackets, exactly like a PCID-tagged
   hardware TLB survives address-space switches. The cache is 2-way
   set-associative per page (slots [2p] and [2p+1], MRU first): a page
   touched alternately under two PKRU values — the monitor's and a
   domain's, the common steady state — keeps both grants resident
   instead of ping-ponging. *)
let tlb_ways = 2

type tlb = {
  tags : int array;  (* slot -> epoch at fill time; 0 = invalid *)
  masks : Bytes.t;  (* slot -> granted access bits ({!Prot} bits) *)
  mutable epoch : int;  (* epoch of the thread's current PKRU value *)
  mutable epoch_pkru : int;  (* the PKRU value [epoch] belongs to *)
  mutable next_epoch : int;
  epoch_of_pkru : (int, int) Hashtbl.t;
}

type t = {
  mem : Bytes.t;
  size : int;
  pages : int;
  flags : Bytes.t;
  pkey_of : Bytes.t;
  touched : Bytes.t;
  mutable rss_pages : int;
  mutable max_rss_pages : int;
  mutable pkeys_allocated : int;  (* bitmask over keys 1..15 *)
  pkru_tbl : (int, int) Hashtbl.t;
  mutable cached_tid : int;
  mutable cached_pkru : int;
  cost : Cost.t;
  mutable free_list : (int * int) list;  (* (first_page, npages), sorted *)
  allocs : (int, int * int) Hashtbl.t;  (* base addr -> (total_pages, usable_pages) *)
  mutable fault_count : int;
  mutable wrpkru_count : int;
  mutable pkru_elide : bool;  (* skip WRPKRU when the value is current *)
  mutable pkru_elided_count : int;
  mutable syscall_hook : (string -> unit) option;
  (* access-grant cache state *)
  mutable tlb_enabled : bool;
  tlbs : (int, tlb) Hashtbl.t;  (* tid -> its grant cache *)
  mutable cached_tlb_tid : int;
  mutable cached_tlb : tlb;
  mutable tlb_hit_count : int;
  mutable tlb_miss_count : int;
  mutable tlb_shootdown_count : int;
  mutable diff_period : int;  (* cross-check 1-in-N fast-path hits; 0 = off *)
  mutable diff_tick : int;
  mutable diff_check_count : int;
  (* heap-poison sanitizer state (ASan-style shadow memory) *)
  mutable san_enabled : bool;
  mutable san_map : Bytes.t;  (* 1 bit per byte of [mem]; empty until enabled *)
  mutable san_bypass : bool;  (* allocator metadata accesses skip the scan *)
  mutable san_fault_count : int;
  mutable san_poisoned_count : int;
  mutable san_unpoisoned_count : int;
  (* observer of successful checked accesses (race detector shadow cells);
     consulted after every protection and poison check has passed *)
  mutable access_hook : (int -> int -> access -> unit) option;
}

let fresh_tlb pages =
  {
    tags = Array.make (tlb_ways * pages) 0;
    masks = Bytes.make (tlb_ways * pages) '\000';
    epoch = 0;
    epoch_pkru = Pkru.all_access;
    next_epoch = 1;
    epoch_of_pkru = Hashtbl.create 8;
  }

let create ?(size_mib = 64) ?(cost = Cost.default) () =
  let size = size_mib * 1024 * 1024 in
  let pages = size / ps in
  {
    mem = Bytes.make size '\000';
    size;
    pages;
    flags = Bytes.make pages '\000';
    pkey_of = Bytes.make pages '\000';
    touched = Bytes.make pages '\000';
    rss_pages = 0;
    max_rss_pages = 0;
    pkeys_allocated = 0;
    pkru_tbl = Hashtbl.create 16;
    cached_tid = min_int;
    cached_pkru = Pkru.all_access;
    cost;
    (* page 0 reserved: null pointers always fault *)
    free_list = [ (1, pages - 1) ];
    allocs = Hashtbl.create 64;
    fault_count = 0;
    wrpkru_count = 0;
    pkru_elide = true;
    pkru_elided_count = 0;
    syscall_hook = None;
    tlb_enabled = true;
    tlbs = Hashtbl.create 16;
    cached_tlb_tid = min_int;
    cached_tlb = fresh_tlb 0;
    tlb_hit_count = 0;
    tlb_miss_count = 0;
    tlb_shootdown_count = 0;
    diff_period = 0;
    diff_tick = 0;
    diff_check_count = 0;
    san_enabled = false;
    san_map = Bytes.empty;
    san_bypass = false;
    san_fault_count = 0;
    san_poisoned_count = 0;
    san_unpoisoned_count = 0;
    access_hook = None;
  }

let cost t = t.cost
let set_syscall_hook t h = t.syscall_hook <- h
let set_access_hook t h = t.access_hook <- h

let syscall_gate t name =
  match t.syscall_hook with Some h -> h name | None -> ()
let page_size _ = ps
let size t = t.size
let charge t c = if Sched.in_thread () then Sched.charge c else ignore t
let cur_tid () = if Sched.in_thread () then Sched.self () else -1

let cur_pkru t =
  let tid = cur_tid () in
  if tid = t.cached_tid then t.cached_pkru
  else begin
    let v =
      match Hashtbl.find_opt t.pkru_tbl tid with
      | Some v -> v
      | None -> Pkru.all_access
    in
    t.cached_tid <- tid;
    t.cached_pkru <- v;
    v
  end

(* Point the grant cache at the epoch for this PKRU value, minting a new
   epoch on first sight. Entries tagged with other epochs stay in the
   arrays but stop matching — and become live again when their PKRU value
   returns, which is what keeps the hit rate high across the two WRPKRUs
   bracketing every monitor call. The value table is bounded: past the
   cap we forget the associations (monotonic [next_epoch] guarantees a
   recycled table can never resurrect a stale tag). *)
let tlb_set_epoch tlb pkru =
  match Hashtbl.find_opt tlb.epoch_of_pkru pkru with
  | Some e ->
      tlb.epoch <- e;
      tlb.epoch_pkru <- pkru
  | None ->
      if Hashtbl.length tlb.epoch_of_pkru > 128 then begin
        Hashtbl.reset tlb.epoch_of_pkru;
        (* Re-seed the value we are switching *away from*: its entries
           are the ones still hot in the arrays, and the usual reason to
           overflow is a monitor bracket minting value #129 — without
           this the bracketed thread comes back to a spurious full cold
           miss. *)
        Hashtbl.replace tlb.epoch_of_pkru tlb.epoch_pkru tlb.epoch
      end;
      let e = tlb.next_epoch in
      tlb.next_epoch <- e + 1;
      Hashtbl.replace tlb.epoch_of_pkru pkru e;
      tlb.epoch <- e;
      tlb.epoch_pkru <- pkru

let cur_tlb t =
  let tid = cur_tid () in
  if tid = t.cached_tlb_tid then t.cached_tlb
  else begin
    let tlb =
      match Hashtbl.find_opt t.tlbs tid with
      | Some x -> x
      | None ->
          let x = fresh_tlb t.pages in
          tlb_set_epoch x (cur_pkru t);
          Hashtbl.replace t.tlbs tid x;
          x
    in
    t.cached_tlb_tid <- tid;
    t.cached_tlb <- tlb;
    tlb
  end

(* Invalidate a page range in every thread's grant cache — the moral
   equivalent of a TLB-shootdown IPI broadcast. Counted per event, not
   per page or per thread. *)
let tlb_shootdown t p1 p2 =
  if t.tlb_enabled then begin
    t.tlb_shootdown_count <- t.tlb_shootdown_count + 1;
    Hashtbl.iter
      (fun _ tlb ->
        Array.fill tlb.tags (tlb_ways * p1) (tlb_ways * (p2 - p1 + 1)) 0)
      t.tlbs
  end

let access_bits = function
  | Read -> Prot.read
  | Write -> Prot.write
  | Exec -> Prot.exec

(* Rights the current flags/pkey/PKRU grant on one page, as Prot bits. *)
let grant_mask t p pkru =
  let f = Char.code (Bytes.unsafe_get t.flags p) in
  if f land fl_mapped = 0 then 0
  else begin
    let key = Char.code (Bytes.unsafe_get t.pkey_of p) in
    (if Pkru.can_read pkru ~key then f land (Prot.read lor Prot.exec) else 0)
    lor (if Pkru.can_write pkru ~key then f land Prot.write else 0)
  end

(* Pure slow-path classification of one page access: the fault it would
   raise, or [None] when allowed. No charging, no RSS side effects. *)
let page_verdict t p access pkru =
  let f = Char.code (Bytes.unsafe_get t.flags p) in
  if f land fl_mapped = 0 then Some (MAPERR, -1)
  else begin
    let key = Char.code (Bytes.unsafe_get t.pkey_of p) in
    if f land access_bits access = 0 then Some (ACCERR, key)
    else
      let ok =
        match access with
        | Read | Exec -> Pkru.can_read pkru ~key
        | Write -> Pkru.can_write pkru ~key
      in
      if ok then None else Some (PKUERR, key)
  end

let rdpkru t =
  charge t t.cost.rdpkru;
  cur_pkru t

(* Checked install: writing the value already in the register is a
   no-op on real hardware too, so the elided path skips the pipeline
   flush charge *and* the grant-cache epoch switch (the epoch already
   belongs to this value). Elisions are counted separately so the
   telemetry story stays honest. *)
let wrpkru t v =
  if t.pkru_elide && v = cur_pkru t then
    t.pkru_elided_count <- t.pkru_elided_count + 1
  else begin
    charge t t.cost.wrpkru;
    t.wrpkru_count <- t.wrpkru_count + 1;
    let tid = cur_tid () in
    Hashtbl.replace t.pkru_tbl tid v;
    t.cached_tid <- tid;
    t.cached_pkru <- v;
    if t.tlb_enabled then tlb_set_epoch (cur_tlb t) v
  end

let pkey_alloc t =
  syscall_gate t "pkey_alloc";
  let rec find key =
    if key > 15 then None
    else if t.pkeys_allocated land (1 lsl key) = 0 then begin
      t.pkeys_allocated <- t.pkeys_allocated lor (1 lsl key);
      charge t t.cost.syscall;
      Some key
    end
    else find (key + 1)
  in
  find 1

let pkey_free t key =
  syscall_gate t "pkey_free";
  if key < 1 || key > 15 then invalid_arg "pkey_free: bad key";
  t.pkeys_allocated <- t.pkeys_allocated land lnot (1 lsl key);
  charge t t.cost.syscall

let pkeys_in_use t =
  let rec count key acc =
    if key > 15 then acc
    else count (key + 1) (acc + ((t.pkeys_allocated lsr key) land 1))
  in
  count 1 0

let fault t addr access code pkey =
  t.fault_count <- t.fault_count + 1;
  charge t t.cost.signal_delivery;
  raise (Fault { addr; access; code; pkey; tid = cur_tid () })

let touch t p =
  if Bytes.unsafe_get t.touched p = '\000' then begin
    Bytes.unsafe_set t.touched p '\001';
    t.rss_pages <- t.rss_pages + 1;
    if t.rss_pages > t.max_rss_pages then t.max_rss_pages <- t.rss_pages;
    charge t t.cost.page_touch
  end

let check_page t addr p access =
  let f = Char.code (Bytes.unsafe_get t.flags p) in
  if f land fl_mapped = 0 then fault t addr access MAPERR (-1);
  let needed =
    match access with Read -> Prot.read | Write -> Prot.write | Exec -> Prot.exec
  in
  if f land needed = 0 then
    fault t addr access ACCERR (Char.code (Bytes.unsafe_get t.pkey_of p));
  let key = Char.code (Bytes.unsafe_get t.pkey_of p) in
  let pkru = cur_pkru t in
  (match access with
  | Read | Exec ->
      if not (Pkru.can_read pkru ~key) then fault t addr access PKUERR key
  | Write ->
      if not (Pkru.can_write pkru ~key) then fault t addr access PKUERR key);
  touch t p

(* First-touch accounting that defers the cycle charge into [pending] so
   a page run costs one {!Sched.charge} call instead of one per page.
   The deferred sum is flushed before any fault is raised, keeping the
   virtual-time total identical to the per-page slow path. *)
let touch_pending t p pending =
  if Bytes.unsafe_get t.touched p = '\000' then begin
    Bytes.unsafe_set t.touched p '\001';
    t.rss_pages <- t.rss_pages + 1;
    if t.rss_pages > t.max_rss_pages then t.max_rss_pages <- t.rss_pages;
    pending := !pending +. t.cost.page_touch
  end

let diff_divergence p access pkru =
  Format.asprintf
    "Space: grant-cache divergence at page %d (%a granted by cache, slow \
     path denies under pkru %#x)"
    p pp_access access pkru

(* A cache hit needs no [touch]: fills always touch, and every event
   that can reset the touched bit (munmap, restore_image) also shoots
   the page's tags down, so a live tag implies a resident page. *)
let check_tlb t addr access p1 p2 =
  let tlb = cur_tlb t in
  let pkru = cur_pkru t in
  let needed = access_bits access in
  let epoch = tlb.epoch in
  let pending = ref 0.0 in
  for p = p1 to p2 do
    let i = tlb_ways * p in
    let hit =
      if
        Array.unsafe_get tlb.tags i = epoch
        && Char.code (Bytes.unsafe_get tlb.masks i) land needed <> 0
      then true
      else if
        Array.unsafe_get tlb.tags (i + 1) = epoch
        && Char.code (Bytes.unsafe_get tlb.masks (i + 1)) land needed <> 0
      then begin
        (* promote the hit to the MRU slot *)
        let tg = Array.unsafe_get tlb.tags i
        and mk = Bytes.unsafe_get tlb.masks i in
        Array.unsafe_set tlb.tags i (Array.unsafe_get tlb.tags (i + 1));
        Bytes.unsafe_set tlb.masks i (Bytes.unsafe_get tlb.masks (i + 1));
        Array.unsafe_set tlb.tags (i + 1) tg;
        Bytes.unsafe_set tlb.masks (i + 1) mk;
        true
      end
      else false
    in
    if hit then begin
      t.tlb_hit_count <- t.tlb_hit_count + 1;
      if t.diff_period > 0 then begin
        t.diff_tick <- t.diff_tick + 1;
        if t.diff_tick >= t.diff_period then begin
          t.diff_tick <- 0;
          t.diff_check_count <- t.diff_check_count + 1;
          match page_verdict t p access pkru with
          | None -> ()
          | Some _ -> failwith (diff_divergence p access pkru)
        end
      end
    end
    else begin
      t.tlb_miss_count <- t.tlb_miss_count + 1;
      match page_verdict t p access pkru with
      | Some (code, key) ->
          if !pending > 0.0 then charge t !pending;
          fault t (if p = p1 then addr else p lsl page_shift) access code key
      | None ->
          (* fill the MRU slot, demoting its previous occupant — unless
             the MRU slot already belongs to this epoch (a grant widened
             by a refill), in which case overwrite it in place *)
          if Array.unsafe_get tlb.tags i <> epoch then begin
            Array.unsafe_set tlb.tags (i + 1) (Array.unsafe_get tlb.tags i);
            Bytes.unsafe_set tlb.masks (i + 1) (Bytes.unsafe_get tlb.masks i)
          end;
          Array.unsafe_set tlb.tags i epoch;
          Bytes.unsafe_set tlb.masks i (Char.unsafe_chr (grant_mask t p pkru));
          touch_pending t p pending
    end
  done;
  if !pending > 0.0 then charge t !pending

(* {1 Heap-poison sanitizer}

   Shadow state for the ASan-style sanitizer: one bit per byte of [mem],
   set while the byte is poisoned (redzone, freed block, discarded
   domain). The scan runs after the protection checks succeed, charges no
   virtual time (shadow memory is a host-side artifact, like the grant
   cache), and raises the simulator's SEGV with the [POISON] code so the
   ordinary rewind machinery treats a poisoned read exactly like a
   protection-key violation. Allocators flip [san_bypass] around their own
   metadata walks: headers and free-list links live inside poisoned
   ranges by design. *)

let san_set_range map addr len v =
  let stop = addr + len in
  let i = ref addr in
  while !i < stop && !i land 7 <> 0 do
    let b = !i lsr 3 and m = 1 lsl (!i land 7) in
    let cur = Char.code (Bytes.unsafe_get map b) in
    Bytes.unsafe_set map b
      (Char.unsafe_chr (if v then cur lor m else cur land lnot m));
    incr i
  done;
  let nbytes = (stop - !i) asr 3 in
  if nbytes > 0 then begin
    Bytes.fill map (!i lsr 3) nbytes (if v then '\xff' else '\000');
    i := !i + (nbytes lsl 3)
  end;
  while !i < stop do
    let b = !i lsr 3 and m = 1 lsl (!i land 7) in
    let cur = Char.code (Bytes.unsafe_get map b) in
    Bytes.unsafe_set map b
      (Char.unsafe_chr (if v then cur lor m else cur land lnot m));
    incr i
  done

(* First poisoned address in [addr, addr+len), skipping zero shadow bytes
   eight data bytes at a time. *)
let san_find map addr len =
  let stop = addr + len in
  let rec scan i =
    if i >= stop then None
    else
      let b = i lsr 3 in
      if i land 7 = 0 && stop - i >= 8 && Bytes.unsafe_get map b = '\000' then
        scan (i + 8)
      else if Char.code (Bytes.unsafe_get map b) land (1 lsl (i land 7)) <> 0
      then Some i
      else scan (i + 1)
  in
  scan addr

let set_sanitizer t on =
  if on && Bytes.length t.san_map = 0 then
    t.san_map <- Bytes.make ((t.size + 7) lsr 3) '\000';
  t.san_enabled <- on

let sanitizer_enabled t = t.san_enabled

let sanitizer_bypass t f =
  let was = t.san_bypass in
  t.san_bypass <- true;
  Fun.protect ~finally:(fun () -> t.san_bypass <- was) f

let san_range_arg op t addr len =
  if addr < 0 || len < 0 || addr + len > t.size then
    invalid_arg ("Space." ^ op ^ ": range out of bounds")

let poison t ~addr ~len =
  if t.san_enabled && len > 0 then begin
    san_range_arg "poison" t addr len;
    san_set_range t.san_map addr len true;
    t.san_poisoned_count <- t.san_poisoned_count + 1
  end

let unpoison t ~addr ~len =
  if t.san_enabled && len > 0 then begin
    san_range_arg "unpoison" t addr len;
    san_set_range t.san_map addr len false;
    t.san_unpoisoned_count <- t.san_unpoisoned_count + 1
  end

let first_poisoned t ~addr ~len =
  if (not t.san_enabled) || len <= 0 then None else san_find t.san_map addr len

let poison_faults t = t.san_fault_count
let poisoned_ranges t = t.san_poisoned_count
let unpoisoned_ranges t = t.san_unpoisoned_count

let check t addr len access =
  if len > 0 then begin
    if addr < 0 || addr + len > t.size then fault t addr access MAPERR (-1);
    let p1 = addr lsr page_shift and p2 = (addr + len - 1) lsr page_shift in
    if t.tlb_enabled then check_tlb t addr access p1 p2
    else
      for p = p1 to p2 do
        check_page t (if p = p1 then addr else p lsl page_shift) p access
      done;
    (if t.san_enabled && not t.san_bypass then
       match san_find t.san_map addr len with
       | Some a ->
           t.san_fault_count <- t.san_fault_count + 1;
           fault t a access POISON
             (Char.code (Bytes.unsafe_get t.pkey_of (a lsr page_shift)))
       | None -> ());
    (* The access passed every check: report it. Allocator-metadata
       accesses (under [san_bypass], like the poison scan above) are not
       interesting to shadow-cell observers — TLSF headers are shared by
       design and cooperatively serialized. *)
    match t.access_hook with
    | Some h when not t.san_bypass -> h addr len access
    | Some _ | None -> ()
  end

(* {1 Mappings} *)

let rec insert_region list (p, n) =
  match list with
  | [] -> [ (p, n) ]
  | (q, m) :: rest ->
      if p + n < q then (p, n) :: list
      else if p + n = q then (p, n + m) :: rest
      else if q + m = p then insert_region rest (q, m + n)
      else (q, m) :: insert_region rest (p, n)

let mmap t ~len ~prot ~pkey =
  syscall_gate t "mmap";
  if pkey < 0 || pkey > 15 then invalid_arg "mmap: bad pkey";
  if len <= 0 then invalid_arg "mmap: bad length";
  let npages = (len + ps - 1) / ps in
  let total = npages + 1 (* guard page *) in
  let rec take acc = function
    | [] -> failwith "Space.mmap: address space exhausted"
    | (p, n) :: rest when n >= total ->
        let remaining = if n > total then [ (p + total, n - total) ] else [] in
        (p, List.rev_append acc (remaining @ rest))
    | r :: rest -> take (r :: acc) rest
  in
  let guard, free = take [] t.free_list in
  t.free_list <- free;
  let base_page = guard + 1 in
  let fbyte = Char.chr (fl_mapped lor prot) in
  let kbyte = Char.chr pkey in
  for p = base_page to base_page + npages - 1 do
    Bytes.unsafe_set t.flags p fbyte;
    Bytes.unsafe_set t.pkey_of p kbyte;
    Bytes.unsafe_set t.touched p '\000'
  done;
  Bytes.fill t.mem (base_page lsl page_shift) (npages lsl page_shift) '\000';
  let addr = base_page lsl page_shift in
  Hashtbl.replace t.allocs addr (total, npages);
  (* A fresh mapping carries no poison, whatever lived there before. *)
  if Bytes.length t.san_map > 0 then
    san_set_range t.san_map addr (npages lsl page_shift) false;
  tlb_shootdown t base_page (base_page + npages - 1);
  charge t (t.cost.syscall +. (t.cost.mmap_per_page *. float_of_int total));
  addr

let munmap t addr =
  syscall_gate t "munmap";
  match Hashtbl.find_opt t.allocs addr with
  | None -> invalid_arg "munmap: not an allocation base"
  | Some (total, npages) ->
      let base_page = addr lsr page_shift in
      for p = base_page to base_page + npages - 1 do
        Bytes.unsafe_set t.flags p '\000';
        Bytes.unsafe_set t.pkey_of p '\000';
        if Bytes.unsafe_get t.touched p = '\001' then begin
          Bytes.unsafe_set t.touched p '\000';
          t.rss_pages <- t.rss_pages - 1
        end
      done;
      Hashtbl.remove t.allocs addr;
      t.free_list <- insert_region t.free_list (base_page - 1, total);
      tlb_shootdown t base_page (base_page + npages - 1);
      charge t t.cost.syscall

let page_range addr len =
  (addr lsr page_shift, (addr + len - 1) lsr page_shift)

(* Validate an mprotect-style range fully before mutating anything:
   alignment, a positive length, page indices inside the [flags]/
   [pkey_of] arrays (out-of-range indices would drive [unsafe_set] into
   the OCaml heap), and every page mapped — so a rejected call leaves no
   half-applied protections behind. *)
let validate_prot_range t ~op ~addr ~len =
  if addr land (ps - 1) <> 0 then invalid_arg (op ^ ": unaligned");
  if len <= 0 then invalid_arg (op ^ ": bad length");
  let p1, p2 = page_range addr len in
  if addr < 0 || p2 >= t.pages then invalid_arg (op ^ ": out of range");
  for p = p1 to p2 do
    if Char.code (Bytes.unsafe_get t.flags p) land fl_mapped = 0 then
      invalid_arg (op ^ ": unmapped page")
  done;
  (p1, p2)

let mprotect t ~addr ~len ~prot =
  syscall_gate t "mprotect";
  let p1, p2 = validate_prot_range t ~op:"mprotect" ~addr ~len in
  let fbyte = Char.chr (fl_mapped lor prot) in
  for p = p1 to p2 do
    Bytes.unsafe_set t.flags p fbyte
  done;
  tlb_shootdown t p1 p2;
  charge t t.cost.syscall

let pkey_mprotect t ~addr ~len ~prot ~pkey =
  syscall_gate t "pkey_mprotect";
  if pkey < 0 || pkey > 15 then invalid_arg "pkey_mprotect: bad pkey";
  let p1, p2 = validate_prot_range t ~op:"pkey_mprotect" ~addr ~len in
  let fbyte = Char.chr (fl_mapped lor prot) and kbyte = Char.chr pkey in
  for p = p1 to p2 do
    Bytes.unsafe_set t.flags p fbyte;
    Bytes.unsafe_set t.pkey_of p kbyte
  done;
  tlb_shootdown t p1 p2;
  charge t t.cost.syscall

let pkey_of_addr t addr = Char.code (Bytes.get t.pkey_of (addr lsr page_shift))

let prot_of_addr t addr =
  Char.code (Bytes.get t.flags (addr lsr page_shift)) land lnot fl_mapped

let is_mapped t addr =
  addr >= 0 && addr < t.size
  && Char.code (Bytes.get t.flags (addr lsr page_shift)) land fl_mapped <> 0

let alloc_len t addr =
  match Hashtbl.find_opt t.allocs addr with
  | Some (_, npages) -> Some (npages lsl page_shift)
  | None -> None

(* {1 Checked access} *)

let load8 t addr =
  charge t t.cost.mem_access;
  check t addr 1 Read;
  Char.code (Bytes.unsafe_get t.mem addr)

let load16 t addr =
  charge t t.cost.mem_access;
  check t addr 2 Read;
  Bytes.get_uint16_le t.mem addr

let load32 t addr =
  charge t t.cost.mem_access;
  check t addr 4 Read;
  Int32.to_int (Bytes.get_int32_le t.mem addr) land 0xFFFFFFFF

let load64 t addr =
  charge t t.cost.mem_access;
  check t addr 8 Read;
  Int64.to_int (Bytes.get_int64_le t.mem addr)

let store8 t addr v =
  charge t t.cost.mem_access;
  check t addr 1 Write;
  Bytes.unsafe_set t.mem addr (Char.unsafe_chr (v land 0xFF))

let store16 t addr v =
  charge t t.cost.mem_access;
  check t addr 2 Write;
  Bytes.set_uint16_le t.mem addr (v land 0xFFFF)

let store32 t addr v =
  charge t t.cost.mem_access;
  check t addr 4 Write;
  Bytes.set_int32_le t.mem addr (Int32.of_int v)

let store64 t addr v =
  charge t t.cost.mem_access;
  check t addr 8 Write;
  Bytes.set_int64_le t.mem addr (Int64.of_int v)

(* Single-event upset: flip one bit of a mapped byte, bypassing the
   protection checks — a soft error is not a CPU access, so neither PKRU
   nor page protections apply and no time is charged. A flip aimed at an
   unmapped address lands in a hole and is lost. Returns whether the flip
   landed. Used by the fault-injection engine. *)
let flip_bit t ~addr ~bit =
  if addr >= 0 && addr < t.size
     && Char.code (Bytes.unsafe_get t.flags (addr lsr page_shift)) land fl_mapped
        <> 0
  then begin
    let b = Char.code (Bytes.get t.mem addr) in
    Bytes.set t.mem addr (Char.unsafe_chr (b lxor (1 lsl (bit land 7))));
    true
  end
  else false

let bulk_charge t len =
  charge t (t.cost.mem_access +. (t.cost.mem_byte *. float_of_int len))

(* Every bulk entry point validates its length before [bulk_charge]: a
   negative length must raise, not charge negative virtual time to the
   scheduler first, and a zero length is a free no-op. *)
let check_len op len = if len < 0 then invalid_arg (op ^ ": bad length")

let load_bytes t addr len =
  check_len "load_bytes" len;
  if len = 0 then Bytes.empty
  else begin
    bulk_charge t len;
    check t addr len Read;
    Bytes.sub t.mem addr len
  end

let store_bytes t addr b =
  let len = Bytes.length b in
  if len > 0 then begin
    bulk_charge t len;
    check t addr len Write;
    Bytes.blit b 0 t.mem addr len
  end

let store_string t addr s =
  let len = String.length s in
  if len > 0 then begin
    bulk_charge t len;
    check t addr len Write;
    Bytes.blit_string s 0 t.mem addr len
  end

let read_string t addr len =
  check_len "read_string" len;
  if len = 0 then ""
  else begin
    bulk_charge t len;
    check t addr len Read;
    Bytes.sub_string t.mem addr len
  end

let blit t ~src ~dst ~len =
  check_len "blit" len;
  if len > 0 then begin
    bulk_charge t (2 * len);
    check t src len Read;
    check t dst len Write;
    Bytes.blit t.mem src t.mem dst len
  end

let fill t ~addr ~len c =
  check_len "fill" len;
  if len > 0 then begin
    bulk_charge t len;
    check t addr len Write;
    Bytes.fill t.mem addr len c
  end

let memchr t ~addr ~len c =
  check_len "memchr" len;
  if len = 0 then None
  else begin
    check t addr len Read;
    (* Bound the scan to the checked window — [Bytes.index_from_opt]
       would walk the whole backing store, reading other domains' bytes
       and turning a short line scan into O(space) — and charge only for
       the bytes actually examined, with the same access base as
       [bulk_charge]. *)
    let limit = addr + len in
    let rec scan i =
      if i >= limit then None
      else if Bytes.unsafe_get t.mem i = c then Some i
      else scan (i + 1)
    in
    let r = scan addr in
    let examined = match r with Some i -> i - addr + 1 | None -> len in
    charge t (t.cost.mem_access +. (t.cost.mem_byte *. float_of_int examined));
    r
  end

let memcmp t a b len =
  check_len "memcmp" len;
  if len = 0 then 0
  else begin
    bulk_charge t (2 * len);
    check t a len Read;
    check t b len Read;
    compare (Bytes.sub t.mem a len) (Bytes.sub t.mem b len)
  end

(* {1 Kernel-mode access} *)

let unsafe_load_bytes t addr len = Bytes.sub t.mem addr len
let unsafe_store_bytes t addr b = Bytes.blit b 0 t.mem addr (Bytes.length b)

let iter_mapped_pages t f =
  for p = 0 to t.pages - 1 do
    if Char.code (Bytes.unsafe_get t.flags p) land fl_mapped <> 0 then
      f (p lsl page_shift)
  done

type image = {
  im_pages : (int * bytes) list;  (* (page index, contents) *)
  im_flags : Bytes.t;
  im_pkeys : Bytes.t;
  im_touched : Bytes.t;
  im_rss_pages : int;
  im_pkeys_allocated : int;
  im_free_list : (int * int) list;
  im_allocs : (int * (int * int)) list;
}

let checkpoint t =
  let pages = ref [] in
  for p = t.pages - 1 downto 0 do
    if Char.code (Bytes.unsafe_get t.flags p) land fl_mapped <> 0 then
      pages := (p, Bytes.sub t.mem (p lsl page_shift) ps) :: !pages
  done;
  {
    im_pages = !pages;
    im_flags = Bytes.copy t.flags;
    im_pkeys = Bytes.copy t.pkey_of;
    im_touched = Bytes.copy t.touched;
    im_rss_pages = t.rss_pages;
    im_pkeys_allocated = t.pkeys_allocated;
    im_free_list = t.free_list;
    im_allocs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.allocs [];
  }

let restore_image t im =
  Bytes.blit im.im_flags 0 t.flags 0 t.pages;
  Bytes.blit im.im_pkeys 0 t.pkey_of 0 t.pages;
  Bytes.blit im.im_touched 0 t.touched 0 t.pages;
  t.rss_pages <- im.im_rss_pages;
  if t.rss_pages > t.max_rss_pages then t.max_rss_pages <- t.rss_pages;
  t.pkeys_allocated <- im.im_pkeys_allocated;
  t.free_list <- im.im_free_list;
  Hashtbl.reset t.allocs;
  List.iter (fun (k, v) -> Hashtbl.replace t.allocs k v) im.im_allocs;
  List.iter
    (fun (p, contents) -> Bytes.blit contents 0 t.mem (p lsl page_shift) ps)
    im.im_pages;
  (* images predate the poison state: a restored process starts clean *)
  if Bytes.length t.san_map > 0 then
    Bytes.fill t.san_map 0 (Bytes.length t.san_map) '\000';
  (* the image carries arbitrary flags/keys/touched state: full flush *)
  if t.pages > 0 then tlb_shootdown t 0 (t.pages - 1)

let image_bytes im = List.length im.im_pages * ps

let image_diff_pages base im =
  let known = Hashtbl.create 64 in
  List.iter (fun (p, contents) -> Hashtbl.replace known p contents) base.im_pages;
  List.fold_left
    (fun acc (p, contents) ->
      match Hashtbl.find_opt known p with
      | Some old when Bytes.equal old contents -> acc
      | Some _ | None -> acc + 1)
    0 im.im_pages

(* {1 Accounting} *)

let mapped_bytes t =
  Hashtbl.fold (fun _ (_, npages) acc -> acc + (npages lsl page_shift)) t.allocs 0

let rss_bytes t = t.rss_pages lsl page_shift
let max_rss_bytes t = t.max_rss_pages lsl page_shift
let fault_count t = t.fault_count
let wrpkru_writes t = t.wrpkru_count

(* {1 PKRU write elision} *)

let set_pkru_elision t on = t.pkru_elide <- on
let pkru_elision_enabled t = t.pkru_elide
let pkru_elided t = t.pkru_elided_count

(* {1 Grant-cache control and counters} *)

let set_grant_cache t on =
  if on <> t.tlb_enabled then begin
    t.tlb_enabled <- on;
    Hashtbl.reset t.tlbs;
    t.cached_tlb_tid <- min_int
  end

let grant_cache_enabled t = t.tlb_enabled

let set_differential t period =
  t.diff_period <- (if period < 0 then 0 else period);
  t.diff_tick <- 0

let differential_checks t = t.diff_check_count
let tlb_hits t = t.tlb_hit_count
let tlb_misses t = t.tlb_miss_count
let tlb_shootdowns t = t.tlb_shootdown_count
