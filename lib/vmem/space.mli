(** Simulated virtual address space with MPK-style protection keys.

    This is the hardware substitute that makes domain isolation observable
    from OCaml: all domain-resident application state lives in one flat
    byte store, divided into 4 KiB pages, each carrying protection bits and
    a 4-bit protection key. Every load, store and bulk copy is checked
    against the current thread's {!Pkru} value, and violations raise
    {!Fault} — the simulator's SEGV, complete with an [si_code]
    ([MAPERR]/[ACCERR]/[PKUERR]) as delivered by Linux to a signal handler.

    Page 0 is never mapped (null-pointer detection) and every mapping is
    preceded by an unmapped guard page, so buffer underflows fall off the
    mapping instead of silently entering a neighbour. Accesses charge
    virtual time to the executing thread via {!Simkern.Sched.charge}. *)

type t

type access = Read | Write | Exec

type si_code =
  | MAPERR  (** address not mapped *)
  | ACCERR  (** page protection forbids the access *)
  | PKUERR  (** protection-key rights forbid the access *)
  | POISON
      (** heap-poison sanitizer: the access touched a poisoned byte (a
          redzone, a freed block, or a discarded domain's memory) *)

exception
  Fault of {
    addr : int;
    access : access;
    code : si_code;
    pkey : int;  (** key of the offending page, -1 if unmapped *)
    tid : int;  (** simulated thread that faulted *)
  }

val pp_access : Format.formatter -> access -> unit
val pp_si_code : Format.formatter -> si_code -> unit
val fault_to_string : exn -> string option

val create : ?size_mib:int -> ?cost:Simkern.Cost.t -> unit -> t
(** [create ()] makes a 64 MiB address space by default. *)

val cost : t -> Simkern.Cost.t
val page_size : t -> int
val size : t -> int

(** {1 Protection keys} *)

val pkey_alloc : t -> int option
(** Allocate one of the 15 non-default keys, or [None] when exhausted. *)

val pkey_free : t -> int -> unit
val pkeys_in_use : t -> int

val rdpkru : t -> int
(** Current thread's PKRU value. Threads start with {!Pkru.all_access}. *)

val wrpkru : t -> int -> unit
(** Set the current thread's PKRU. A {e checked} install: when write
    elision is on (the default) and the value is already current, the
    write is skipped entirely — no pipeline-flush charge, no write
    count, no grant-cache epoch switch — and {!pkru_elided} is bumped
    instead. Otherwise charges the pipeline-flush cost. *)

val set_syscall_hook : t -> (string -> unit) option -> unit
(** Install a callback invoked at the entry of every "system call"
    ([mmap]/[munmap]/[mprotect]/[pkey_mprotect]/[pkey_alloc]/
    [pkey_free] — [pkey_mprotect] reports under its own name so the
    oracle can deny key re-assignment independently of plain
    protection changes). SDRaD uses it as the syscall attack
    oracle of §VI: untrusted domains must not reach the kernel interface
    directly (Connor et al.'s PKU pitfalls; Jenny's syscall filtering).
    The hook may raise to deny the call. *)

val set_access_hook : t -> (int -> int -> access -> unit) option -> unit
(** Install a callback [h addr len access] invoked after a checked
    access has passed every protection and poison check — the shadow-cell
    feed of the race detector ({!Analysis.Race}). Purely observational
    and host-side: it charges no virtual time, cannot fault, and is not
    called at all for allocator-metadata accesses (those run under the
    {!sanitizer_bypass} bracket). [None] (the default) restores the
    unobserved fast path; the slot costs one pointer compare per access
    when empty. *)

(** {1 Mappings} *)

val mmap : t -> len:int -> prot:Prot.t -> pkey:int -> int
(** Map [len] bytes (rounded up to pages) with a leading guard page and
    return the base address. @raise Out_of_memory-like [Failure] when the
    space is exhausted. *)

val munmap : t -> int -> unit
(** Unmap a whole previous [mmap] allocation by its base address. *)

val mprotect : t -> addr:int -> len:int -> prot:Prot.t -> unit
val pkey_mprotect : t -> addr:int -> len:int -> prot:Prot.t -> pkey:int -> unit
val pkey_of_addr : t -> int -> int
val prot_of_addr : t -> int -> Prot.t
val is_mapped : t -> int -> bool
val alloc_len : t -> int -> int option
(** Usable length of the allocation based at the given address. *)

(** {1 Checked access} *)

val load8 : t -> int -> int
val load16 : t -> int -> int
val load32 : t -> int -> int
val load64 : t -> int -> int
val store8 : t -> int -> int -> unit
val store16 : t -> int -> int -> unit
val store32 : t -> int -> int -> unit
val store64 : t -> int -> int -> unit
val load_bytes : t -> int -> int -> bytes
val store_bytes : t -> int -> bytes -> unit
val store_string : t -> int -> string -> unit
val read_string : t -> int -> int -> string
val blit : t -> src:int -> dst:int -> len:int -> unit
val fill : t -> addr:int -> len:int -> char -> unit

val flip_bit : t -> addr:int -> bit:int -> bool
(** Single-event upset: XOR one bit ([bit land 7]) of a mapped byte,
    bypassing page and PKRU protections — a soft error is not a CPU
    access, so no permission check applies, no fault is raised, and no
    time is charged. Returns [false] when the address is unmapped (the
    flip lands in a hole). For deterministic fault injection. *)

val memchr : t -> addr:int -> len:int -> char -> int option
(** First address of the given byte in [\[addr, addr+len)]. The scan
    never reads past [addr + len], and the cost charged covers only the
    bytes actually examined (plus the access base). *)

val memcmp : t -> int -> int -> int -> int

(** {1 Access-grant cache (software TLB)}

    Every checked access consults a per-thread page → granted-rights
    cache filled lazily from flags/pkey/PKRU, so a hit costs one array
    read and one bitmask test instead of re-deriving rights. Invalidation
    mirrors hardware: {!wrpkru} switches the cache to an epoch tagged by
    the PKRU value (domain switches flush naturally, returning values
    re-enable their old entries, as with PCID tags), and
    [mmap]/[munmap]/[mprotect]/[pkey_mprotect] shoot down the affected
    page range in every thread's cache. Enabled by default; the cache is
    invisible in virtual time and fault behaviour — only host time
    changes. *)

val set_grant_cache : t -> bool -> unit
(** Enable/disable the grant cache. Toggling drops all cached state. *)

val grant_cache_enabled : t -> bool

val set_differential : t -> int -> unit
(** [set_differential t n] (with [n > 0]) cross-checks one in every [n]
    fast-path hits against the slow-path rights derivation and raises
    [Failure] on divergence; [0] disables (the default). Debug aid. *)

val differential_checks : t -> int
(** Cross-checks performed since creation. *)

val tlb_hits : t -> int
val tlb_misses : t -> int

val tlb_shootdowns : t -> int
(** Range invalidations broadcast to all thread caches (one per
    [mmap]/[munmap]/[mprotect]/[pkey_mprotect]/[restore_image] event,
    not per page). *)

(** {1 Heap-poison sanitizer}

    ASan-style shadow state: one poison bit per byte of the space. While
    the sanitizer is enabled, every checked access that passes the
    protection checks is also scanned against the shadow map; touching a
    poisoned byte raises {!Fault} with code {!POISON} — a detected fault
    the rewind machinery recovers from, instead of a silent
    use-after-free or redzone overflow. The scan is a host-side artifact:
    it charges no virtual time and is invisible to the cost model, so an
    unsanitized run and a sanitized run that never faults follow the same
    virtual-time trajectory. Allocators bracket their own metadata
    accesses with {!sanitizer_bypass} (headers and free-list links live
    inside poisoned ranges by design). A fresh {!mmap} clears poison over
    its range; {!restore_image} clears the whole map. *)

val set_sanitizer : t -> bool -> unit
(** Enable/disable the sanitizer. The shadow map (size/8 bytes) is
    allocated on first enable and retained. *)

val sanitizer_enabled : t -> bool

val poison : t -> addr:int -> len:int -> unit
(** Mark [\[addr, addr+len)] poisoned. No-op while disabled. *)

val unpoison : t -> addr:int -> len:int -> unit

val first_poisoned : t -> addr:int -> len:int -> int option
(** First poisoned address in the range, without faulting or charging. *)

val sanitizer_bypass : t -> (unit -> 'a) -> 'a
(** Run the body with poison scanning suspended on this space (protection
    checks still apply). Nests; restored on exception. *)

val poison_faults : t -> int
(** Accesses refused with {!POISON} since creation. *)

val poisoned_ranges : t -> int
(** [poison] calls that marked a non-empty range (monotonic). *)

val unpoisoned_ranges : t -> int

(** {1 Kernel-mode access}

    Used by the checkpoint/restore baseline and by tests to inspect or
    rebuild memory without tripping protection checks — the moral
    equivalent of the kernel touching pages on a process's behalf. *)

val unsafe_load_bytes : t -> int -> int -> bytes
val unsafe_store_bytes : t -> int -> bytes -> unit
val iter_mapped_pages : t -> (int -> unit) -> unit
(** Iterate base addresses of mapped pages in increasing order. *)

type image
(** A process-memory image: contents of every mapped page plus the full
    mapping state (protections, keys, allocation registry). This is what a
    CRIU-style checkpointer dumps; the {!Checkpoint} library layers cost
    accounting on top. *)

val checkpoint : t -> image
val restore_image : t -> image -> unit
val image_bytes : image -> int
(** Payload size of the image (bytes of mapped pages). *)

val image_diff_pages : image -> image -> int
(** Pages of the second image that are absent from, or differ from, the
    first — the payload an incremental checkpoint has to persist. *)

(** {1 Accounting} *)

val mapped_bytes : t -> int
val rss_bytes : t -> int
(** Bytes of pages touched at least once since mapping. *)

val max_rss_bytes : t -> int
val fault_count : t -> int

val wrpkru_writes : t -> int
(** Total WRPKRU instructions actually executed across all threads —
    the raw material for the switch-cost anatomy. Elided installs (see
    {!wrpkru}) are {e not} counted here; a plain enter/exit pair
    performs two, batched gates amortize further. *)

(** {1 PKRU write elision}

    ERIM-style gate thinning: installing the PKRU value that is already
    current is skipped at the {!wrpkru} layer. On by default; the bench
    harness turns it off to measure the always-write baseline, and the
    gate differential test proves the two modes behaviourally
    identical. *)

val set_pkru_elision : t -> bool -> unit
(** Enable/disable elision of redundant WRPKRU installs. *)

val pkru_elision_enabled : t -> bool

val pkru_elided : t -> int
(** WRPKRU installs skipped because the value was already current. *)
