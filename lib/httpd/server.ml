module Sched = Simkern.Sched
module Cost = Simkern.Cost
module Space = Vmem.Space
module Prot = Vmem.Prot
module Api = Sdrad.Api
module Types = Sdrad.Types
module Supervisor = Resilience.Supervisor
module Fault_inject = Resilience.Fault_inject
module Journal = Resilience.Journal

let log_src = Logs.Src.create "sdrad.httpd" ~doc:"web server"

module Log = (val Logs.src_log log_src : Logs.LOG)

type variant = Baseline | Tlsf_alloc | Sdrad

type config = {
  variant : variant;
  workers : int;
  port : int;
  vulnerable : bool;
  verify_certs : bool;
  parser_udi : int;
  cert_udi : int;
  pool_udi : int;
  proc_cycles : float;
  conn_buf_size : int;
  max_restarts : int;
  image_bytes : int;
  rewind_limit : int option;
  per_worker_domains : bool;
  journal_cap : int;
  shed_queue_limit : int;
  shed_wait_limit : float;
  nonblocking_admit : bool;
  verify_policy : bool;
  race_detector : bool;  (* attach the dynamic race detector at start *)
  gate_batch_limit : int;  (* requests coalesced per batched gate; 0 = off *)
}

let default_config =
  {
    variant = Baseline;
    workers = 1;
    port = 8080;
    vulnerable = false;
    verify_certs = false;
    parser_udi = 1;
    cert_udi = 2;
    pool_udi = 13;
    proc_cycles = 11_000.0;
    conn_buf_size = 16 * 1024;
    max_restarts = 1_000;
    image_bytes = 2 * 1024 * 1024;
    rewind_limit = None;
    per_worker_domains = false;
    journal_cap = 256;
    shed_queue_limit = 0;
    shed_wait_limit = 0.0;
    nonblocking_admit = false;
    verify_policy = false;
    race_detector = false;
    gate_batch_limit = 0;
  }

let uri_dst_cap = 2048
let worker_restart_cost = 2.1e6 (* ~1 ms: fork + exec + init *)

type worker_slot = {
  idx : int;
  mutable ws : Netsim.Waitset.ws;
  mutable live_conns : Netsim.conn list;
  mutable tid : Sched.tid;
  mutable pool : int;  (* per-worker request pool base (bump-reset) *)
  mutable slot_rewinds : int;  (* since this worker (re)started *)
  mutable alive : bool;
}

type t = {
  sched : Sched.t;
  space : Space.t;
  cfg : config;
  sd : Api.t option;
  sup : Supervisor.t option;
  faults : Fault_inject.t option;
  fs : Fs.t;
  listener : Netsim.listener;
  slots : worker_slot array;
  mutable master_tid : Sched.tid;
  mutable all_tids : Sched.tid list;
  conns : (int, int) Hashtbl.t;  (* conn id -> conn buffer *)
  deaths : (int * float) Queue.t;
  death_lock : Sched.Mutex.mutex;
  death_cond : Sched.Cond.cond;
  mutable stopping : bool;
  buf_alloc : int -> int;
  buf_free : int -> unit;
  pool_alloc : int -> int;
  metrics : Telemetry.Metrics.t;
  journal : Journal.t;  (* master-process state: survives domain discards *)
  mutable post_count : int;  (* the mutable state behind POST /count *)
  c_served : Telemetry.Metrics.counter;
  c_rewinds : Telemetry.Metrics.counter;
  c_restarts : Telemetry.Metrics.counter;
  c_dropped : Telemetry.Metrics.counter;
  c_proactive : Telemetry.Metrics.counter;
  c_busy_503 : Telemetry.Metrics.counter;
  c_shed : Telemetry.Metrics.counter;
  h_rewind_cycles : Telemetry.Metrics.histogram;
  mutable rewind_lat : float list;
  mutable restart_lat : float list;
  mutable race : Analysis.Race.t option;
}

let glibc_allocator space =
  (* Bump arena with per-size free lists: freed chunks are recycled, as
     glibc's bins would, so the model neither leaks RSS nor charges real
     allocator work (that is what the constants are for). *)
  let arena = ref 0 and off = ref 0 and arena_len = 256 * 1024 in
  let bins : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let bin n =
    match Hashtbl.find_opt bins n with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace bins n l;
        l
  in
  let sizes : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let alloc n =
    Sched.charge 80.0;
    let n = (n + 15) land lnot 15 in
    let p =
      match !(bin n) with
      | p :: rest ->
          (bin n) := rest;
          p
      | [] ->
          if !arena = 0 || !off + n > arena_len then begin
            arena := Space.mmap space ~len:(max arena_len n) ~prot:Prot.rw ~pkey:0;
            off := 0
          end;
          let p = !arena + !off in
          off := !off + n;
          p
    in
    Hashtbl.replace sizes p n;
    p
  in
  let free p =
    Sched.charge 50.0;
    match Hashtbl.find_opt sizes p with
    | Some n ->
        Hashtbl.remove sizes p;
        (bin n) := p :: !(bin n)
    | None -> ()
  in
  (alloc, free)

let tlsf_allocator space =
  let heap = Tlsf.create space ~name:"httpd-bufs" in
  let grow len =
    let len = max len (1024 * 1024) in
    let region = Space.mmap space ~len ~prot:Prot.rw ~pkey:0 in
    Tlsf.add_region heap ~addr:region ~len
  in
  let alloc n =
    match Tlsf.malloc_opt heap n with
    | Some p -> p
    | None ->
        grow (n + 64);
        Tlsf.malloc heap n
  in
  (alloc, (fun p -> Tlsf.free heap p), heap)

let conn_token keep_alive = if keep_alive then "keep-alive" else "close"

let http_200 ~keep_alive body =
  Printf.sprintf
    "HTTP/1.1 200 OK\r\nServer: simginx\r\nContent-Length: %d\r\nConnection: %s\r\n\r\n%s"
    (String.length body) (conn_token keep_alive) body

let http_200_head ~keep_alive size =
  Printf.sprintf
    "HTTP/1.1 200 OK\r\nServer: simginx\r\nContent-Length: %d\r\nConnection: %s\r\n\r\n"
    size (conn_token keep_alive)

let http_404 = "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"

let http_503 =
  "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 0\r\n\r\n"

let http_400 = "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n"
let http_403 = "HTTP/1.1 403 Forbidden\r\nContent-Length: 0\r\n\r\n"
let http_405 = "HTTP/1.1 405 Method Not Allowed\r\nContent-Length: 0\r\n\r\n"

(* Pre-parse scan of the raw request bytes for the [traceparent] header:
   admission decisions (shed, admit) are taken before the sandboxed
   header parse, but their flight-recorder events should still carry the
   client's causal trace id. The authoritative parse is the header
   phase's. *)
let trace_of_msg msg =
  let rec scan off =
    match String.index_from_opt msg off '\n' with
    | None -> 0L
    | Some nl ->
        let line = String.trim (String.sub msg off (nl - off)) in
        if line = "" then 0L (* end of headers: no traceparent *)
        else if
          String.length line > 12
          && String.lowercase_ascii (String.sub line 0 12) = "traceparent:"
        then
          match
            Telemetry.Context.of_traceparent
              (String.trim (String.sub line 12 (String.length line - 12)))
          with
          | Some ctx -> Telemetry.Context.trace ctx
          | None -> 0L
        else scan (nl + 1)
  in
  scan 0

(* Serve the (already parsed) request: certificate check, file lookup,
   response. Runs in the worker's root context for every variant. *)
(* RFC 7230 §6.3: HTTP/1.1 persists unless "Connection: close"; HTTP/1.0
   closes unless "Connection: keep-alive". *)
let wants_keep_alive ~version ~headers =
  match Http_parse.find_header headers "connection" with
  | Some v -> String.lowercase_ascii v <> "close"
  | None -> version <> "HTTP/1.0"

let respond t slot c ~meth ~version ~path ~headers ~body =
  let keep_alive = wants_keep_alive ~version ~headers in
  let cert_ok =
    if not t.cfg.verify_certs then `Ok
    else
      match Http_parse.find_header headers "x-client-cert" with
      | None -> `Ok
      | Some cert -> (
          match (t.cfg.variant, t.sd) with
          | Sdrad, Some sd ->
              (* §V-C: the X.509 verification API isolated in its own
                 nested domain; the punycode overflow is caught by the
                 stack canary and triggers a rewind. *)
              Api.run sd ~udi:t.cfg.cert_udi
                ~on_rewind:(fun f ->
                  Telemetry.Metrics.inc t.c_rewinds;
                  slot.slot_rewinds <- slot.slot_rewinds + 1;
                  let lat = Sched.now () -. f.Types.at in
                  t.rewind_lat <- lat :: t.rewind_lat;
                  Telemetry.Metrics.observe t.h_rewind_cycles lat;
                  `Faulted)
                (fun () ->
                  Api.enter sd t.cfg.cert_udi;
                  let ok = Crypto.X509.verify sd cert in
                  Api.exit_domain sd;
                  Api.destroy sd t.cfg.cert_udi ~heap:`Discard;
                  if ok then `Ok else `Bad)
          | _, Some sd ->
              (* Unprotected build: verification in the root domain; a
                 smashed canary kills the worker. *)
              if Crypto.X509.verify sd cert then `Ok else `Bad
          | _, None -> `Ok)
  in
  match cert_ok with
  | `Faulted -> `Close
  | `Bad ->
      Netsim.send c http_403;
      `Keep
  | `Ok ->
      (match meth with
      | "GET" when path = "/metrics" ->
          (* Prometheus scrape endpoint: the registry's text exposition. *)
          Netsim.send c
            (http_200 ~keep_alive (Telemetry.Metrics.expose t.metrics))
      | "GET" -> (
          match Fs.lookup t.fs path with
          | Some _ -> Netsim.send c (http_200 ~keep_alive (Fs.read_body t.fs path))
          | None ->
              (* Autoindex for directories, as nginx with autoindex on. *)
              if Vfs.is_dir (Fs.vfs t.fs) path then begin
                let entries = Vfs.list_dir (Fs.vfs t.fs) path in
                let body =
                  Printf.sprintf "<html><body><h1>Index of %s</h1><ul>%s</ul></body></html>"
                    path
                    (String.concat ""
                       (List.map (fun e -> Printf.sprintf "<li>%s</li>" e) entries))
                in
                Netsim.send c (http_200 ~keep_alive body)
              end
              else Netsim.send c http_404)
      | "HEAD" -> (
          match Fs.lookup t.fs path with
          | Some size -> Netsim.send c (http_200_head ~keep_alive size)
          | None -> Netsim.send c http_404)
      | "POST" ->
          (* POSTs are the server's mutations: an [X-Request-Id] header
             keys the replay journal, which lives in the master process's
             memory — the part of the address space a parser-domain
             discard can never reclaim — so a client retrying after a
             rewind gets the journaled response instead of re-applying. *)
          let compute () =
            if path = "/echo" then begin
              (* The request body still sits in the connection buffer;
                 only its *parsing* was sandboxed. *)
              let addr, len = body in
              let payload = Space.read_string t.space addr len in
              http_200 ~keep_alive payload
            end
            else if path = "/count" then begin
              (* The non-idempotent endpoint: applying a retry twice
                 would be observable here. *)
              t.post_count <- t.post_count + 1;
              http_200 ~keep_alive (string_of_int t.post_count)
            end
            else http_405
          in
          let reply =
            match Http_parse.find_header headers "x-request-id" with
            | None -> compute ()
            | Some rid -> (
                match Journal.find t.journal rid with
                | Some r ->
                    (* Journal hit: a consequence of the original op's
                       earlier attempt — record it under the retry's
                       (already installed) trace id. *)
                    (match t.sd with
                    | Some sd ->
                        Api.flight_event sd Checkpoint.Flight.Replay
                    | None -> ());
                    r
                | None ->
                    let r = compute () in
                    Journal.record t.journal rid r;
                    r)
          in
          Netsim.send c reply
      | _ -> Netsim.send c http_405);
      if keep_alive then `Keep else `Close_graceful

(* Baseline parsing: directly in the connection buffer; the normalized
   URI goes to the head of the worker's request pool (so the CVE's
   backward scan falls off the pool's guard page). *)
let handle_plain t slot c ~cbuf ~len =
  match
    let rl, hdr_off = Http_parse.parse_request_line t.space ~addr:cbuf ~len in
    let dst = slot.pool in
    let norm =
      Http_parse.parse_complex_uri t.space ~src:rl.Http_parse.raw_uri_off
        ~len:rl.Http_parse.raw_uri_len ~dst ~dst_cap:uri_dst_cap
        ~vulnerable:t.cfg.vulnerable
    in
    let headers, hdr_len =
      Http_parse.parse_headers t.space ~addr:hdr_off ~len:(len - (hdr_off - cbuf))
    in
    let body_off = hdr_off + hdr_len in
    let body =
      Http_parse.validate_body headers ~avail:(cbuf + len - body_off)
    in
    ( rl.Http_parse.meth,
      rl.Http_parse.version,
      Space.read_string t.space dst norm,
      headers,
      (body_off, body) )
  with
  | meth, version, path, headers, (body_off, body_len) ->
      respond t slot c ~meth ~version ~path ~headers ~body:(body_off, body_len)
  | exception Http_parse.Bad_request _ ->
      Netsim.send c http_400;
      `Keep

(* With per-worker domains each slot parses in its own udi, so the
   supervisor can quarantine one worker's parser without fencing the
   others. [parser_udi] must leave [workers] consecutive udis free. *)
let slot_udi t slot =
  if t.cfg.per_worker_domains then t.cfg.parser_udi + slot.idx
  else t.cfg.parser_udi

(* SDRaD parsing (§V-B): request bytes are copied into the persistent
   parser domain, each parse phase is its own domain transition, and the
   normalized URI is copied back out on success. *)
let handle_sdrad t slot sd c ~cbuf ~len =
  let udi = slot_udi t slot in
  let opts = { Types.default_options with heap_size = 64 * 1024 } in
  let on_rewind f =
    Telemetry.Metrics.inc t.c_rewinds;
    slot.slot_rewinds <- slot.slot_rewinds + 1;
    let lat = Sched.now () -. f.Types.at in
    t.rewind_lat <- lat :: t.rewind_lat;
    Telemetry.Metrics.observe t.h_rewind_cycles lat;
    `Close_faulted
  in
  let body () =
      (* [dst] first (slot 0) so it sits at the bottom of the domain
         sub-heap: the underflow exits the domain instead of finding
         stale '/' bytes. Both are cached marshalling buffers — the
         persistent parser domain keeps them across requests, so steady
         state pays no malloc/free pair per request. *)
      let dst = Api.gate_buffer sd ~slot:0 ~udi uri_dst_cap in
      let copy = Api.gate_buffer sd ~slot:1 ~udi (t.cfg.conn_buf_size + 8) in
      Space.blit t.space ~src:cbuf ~dst:copy ~len;
      (* One domain transition per parser phase. A memory fault inside a
         phase must propagate to the rewind machinery with the domain
         still entered (a signal, not a return), so the domain is exited
         only on a phase's normal completion; parse errors are ordinary
         return values. *)
      let phase f =
        Api.enter sd udi;
        (match t.faults with
        | Some fi ->
            ignore
              (Fault_inject.fire_in_domain fi ~site:"httpd.parse" ~sd ~buf:copy
                 ~len)
        | None -> ());
        let r =
          match f () with
          | v -> Ok v
          | exception Http_parse.Bad_request m -> Error m
        in
        Api.exit_domain sd;
        r
      in
      let parsed =
        match
          phase (fun () -> Http_parse.parse_request_line t.space ~addr:copy ~len)
        with
        | Error _ -> `Bad_request
        | Ok (rl, hdr_off) -> (
            match
              phase (fun () ->
                  Http_parse.parse_complex_uri t.space
                    ~src:rl.Http_parse.raw_uri_off
                    ~len:rl.Http_parse.raw_uri_len ~dst ~dst_cap:uri_dst_cap
                    ~vulnerable:t.cfg.vulnerable)
            with
            | Error _ -> `Bad_request
            | Ok norm -> (
                match
                  phase (fun () ->
                      let headers, hdr_len =
                        Http_parse.parse_headers t.space ~addr:hdr_off
                          ~len:(len - (hdr_off - copy))
                      in
                      let body_off = hdr_off + hdr_len in
                      let body_len =
                        Http_parse.validate_body headers
                          ~avail:(copy + len - body_off)
                      in
                      (headers, body_off - copy, body_len))
                with
                | Error _ -> `Bad_request
                | Ok (headers, body_rel, body_len) ->
                    `Parsed
                      ( rl.Http_parse.meth,
                        rl.Http_parse.version,
                        Space.read_string t.space dst norm,
                        headers,
                        (body_rel, body_len) )))
      in
      Api.deinit sd udi;
      parsed
  in
  let result =
    match t.sup with
    | Some sup ->
        let run =
          if t.cfg.nonblocking_admit then Supervisor.run_nb else Supervisor.run
        in
        run sup ~udi ~opts ~on_rewind ~on_busy:(fun ~until:_ -> `Busy) body
    | None -> Api.run sd ~udi ~opts ~on_rewind body
  in
  match result with
  | `Busy ->
      (* Quarantined parser domain: degrade instead of serving — the
         client gets a retryable 503 and keeps its connection. *)
      Telemetry.Metrics.inc t.c_busy_503;
      Netsim.send c http_503;
      `Keep
  | `Close_faulted -> `Close
  | `Bad_request ->
      Netsim.send c http_400;
      `Keep
  | `Parsed (meth, version, path, headers, (body_rel, body_len)) ->
      (* Body bytes are served from the original connection buffer. *)
      respond t slot c ~meth ~version ~path ~headers
        ~body:(cbuf + body_rel, body_len)

let rec start sched space ?sdrad ?supervisor ?faults net ~fs cfg =
  let sd = sdrad in
  (match (cfg.variant, sd) with
  | Sdrad, None -> invalid_arg "Httpd.Server.start: Sdrad variant needs ~sdrad"
  | _ -> ());
  if cfg.image_bytes > 0 then begin
    let img = Space.mmap space ~len:cfg.image_bytes ~prot:Prot.rw ~pkey:0 in
    Space.fill space ~addr:img ~len:cfg.image_bytes '\x90'
  end;
  let buf_alloc, buf_free =
    match cfg.variant with
    | Baseline -> glibc_allocator space
    | Tlsf_alloc | Sdrad ->
        let alloc, free, heap = tlsf_allocator space in
        (match faults with
        | Some fi -> Fault_inject.arm_tlsf fi heap ~site:"httpd.alloc"
        | None -> ());
        (alloc, free)
  in
  let pool_alloc =
    match (cfg.variant, sd) with
    | Sdrad, Some sd ->
        (* Request pools live in a dedicated data domain (§V-B). Every
           parser udi a slot may use needs write access to it. *)
        Api.init_data sd ~udi:cfg.pool_udi ~heap_size:(256 * 1024) ();
        let parser_udis =
          if cfg.per_worker_domains then
            List.init cfg.workers (fun i -> cfg.parser_udi + i)
          else [ cfg.parser_udi ]
        in
        List.iter
          (fun udi -> Api.dprotect sd ~udi ~tddi:cfg.pool_udi Prot.rw)
          parser_udis;
        fun len -> Api.malloc sd ~udi:cfg.pool_udi len
    | _ ->
        (* One pool region per worker; a fresh mapping, so the guard page
           sits right below the URI buffer. *)
        fun len -> Space.mmap space ~len ~prot:Prot.rw ~pkey:0
  in
  let listener = Netsim.listen net ~port:cfg.port in
  (* Share the monitor's registry when there is one, so `GET /metrics`
     scrapes core + supervisor + server series together. *)
  let metrics =
    match sd with
    | Some sd -> Api.metrics sd
    | None -> Telemetry.Metrics.create ()
  in
  let module M = Telemetry.Metrics in
  let t =
    {
      sched;
      space;
      cfg;
      sd;
      sup = supervisor;
      faults;
      fs;
      listener;
      slots =
        Array.init cfg.workers (fun idx ->
            {
              idx;
              ws = Netsim.Waitset.create ();
              live_conns = [];
              tid = -1;
              pool = 0;
              slot_rewinds = 0;
              alive = false;
            });
      master_tid = -1;
      all_tids = [];
      conns = Hashtbl.create 64;
      deaths = Queue.create ();
      death_lock = Sched.Mutex.create ();
      death_cond = Sched.Cond.create ();
      stopping = false;
      buf_alloc;
      buf_free;
      pool_alloc;
      metrics;
      journal = Journal.create ~metrics ~name:"httpd" ~capacity:cfg.journal_cap ();
      post_count = 0;
      c_served =
        M.counter metrics "httpd_requests_total" ~help:"Requests handled";
      c_rewinds =
        M.counter metrics "httpd_rewinds_total"
          ~help:"Requests discarded by a domain rewind";
      c_restarts =
        M.counter metrics "httpd_worker_restarts_total"
          ~help:"Worker processes respawned by the master";
      c_dropped =
        M.counter metrics "httpd_dropped_connections_total"
          ~help:"Connections lost to faults or worker deaths";
      c_proactive =
        M.counter metrics "httpd_proactive_restarts_total"
          ~help:"Voluntary re-execs after the rewind limit";
      c_busy_503 =
        M.counter metrics "httpd_busy_503_total"
          ~help:"Requests answered 503 while quarantined";
      c_shed =
        M.counter metrics "httpd_shed_total"
          ~help:"Requests shed by overload admission control";
      h_rewind_cycles =
        M.histogram metrics "httpd_rewind_cycles"
          ~help:"Cycles from fault to request discarded";
      rewind_lat = [];
      restart_lat = [];
      race = None;
    }
  in
  (* Static policy check over the compartments set up above; raises
     [Analysis.Policy.Rejected] on any error-severity finding. *)
  (match (cfg.verify_policy, sd) with
  | true, Some sd ->
      Analysis.Policy.assert_ok (Analysis.Policy.of_api sd)
  | _ -> ());
  (* Dynamic race detection over shared (data-domain) memory. Host-side
     only: attaching never perturbs the simulated run. *)
  (match (cfg.race_detector, sd) with
  | true, Some sd -> t.race <- Some (Analysis.Race.attach sd)
  | _ -> ());
  (* Rewind audit records sample the journal's cumulative replay hits at
     incident-commit time. *)
  (match sd with
  | Some sd -> Api.add_journal_probe sd (fun () -> Journal.hits t.journal)
  | None -> ());
  Array.iter (fun slot -> spawn_worker t slot) t.slots;
  t.master_tid <- Sched.spawn sched ~name:"nginx-master" (fun () -> master t);
  let acceptor = Sched.spawn sched ~name:"nginx-accept" (fun () -> acceptor t) in
  t.all_tids <- t.master_tid :: acceptor :: t.all_tids;
  t

and spawn_worker t slot =
  slot.slot_rewinds <- 0;
  slot.alive <- true;
  slot.pool <- t.pool_alloc uri_dst_cap;
  slot.tid <-
    Sched.spawn t.sched
      ~name:(Printf.sprintf "nginx-worker%d" slot.idx)
      (fun () -> worker t slot);
  t.all_tids <- slot.tid :: t.all_tids

and acceptor t =
  let next = ref 0 in
  (* Round-robin over workers that are actually alive: a connection handed
     to a dead worker's (closed) waitset would never be served. *)
  let pick_slot () =
    let rec try_from i remaining =
      if remaining = 0 then None
      else
        let slot = t.slots.(i mod t.cfg.workers) in
        if slot.alive then Some slot else try_from (i + 1) (remaining - 1)
    in
    let r = try_from !next t.cfg.workers in
    incr next;
    r
  in
  let rec loop () =
    match Netsim.accept t.listener with
    | None -> ()
    | Some c ->
        (match pick_slot () with
        | None ->
            (* No worker alive right now: connection refused. *)
            Netsim.close c
        | Some slot ->
            let cbuf = t.buf_alloc t.cfg.conn_buf_size in
            Hashtbl.replace t.conns (Netsim.id c) cbuf;
            slot.live_conns <- c :: slot.live_conns;
            Netsim.Waitset.add slot.ws c);
        loop ()
  in
  loop ()

and should_shed t slot ~arrival =
  (t.cfg.shed_queue_limit > 0
  && Netsim.Waitset.backlog slot.ws > t.cfg.shed_queue_limit)
  || (t.cfg.shed_wait_limit > 0.0
     && Sched.now () -. arrival > t.cfg.shed_wait_limit)

and worker t slot =
  let batching = t.cfg.gate_batch_limit > 0 && t.cfg.variant = Sdrad in
  let drop c =
    Netsim.Waitset.remove slot.ws c;
    Netsim.close c;
    slot.live_conns <- List.filter (fun x -> not (x == c)) slot.live_conns
  in
  let serve c msg arrival =
    if should_shed t slot ~arrival then begin
      (* Overload: answer the retryable 503 before any parsing or
         domain switch is spent on this request. *)
      Sched.charge (Space.cost t.space).Cost.syscall;
      Telemetry.Metrics.inc t.c_shed;
      (match t.sd with
      | Some sd ->
          Api.with_trace sd (trace_of_msg msg) (fun () ->
              Api.flight_event sd ~udi:(slot_udi t slot)
                Checkpoint.Flight.Shed)
      | None -> ());
      Netsim.send c http_503
    end
    else begin
      Sched.charge (Space.cost t.space).Cost.syscall;
      Sched.charge t.cfg.proc_cycles;
      Telemetry.Metrics.inc t.c_served;
      let cbuf = Hashtbl.find t.conns (Netsim.id c) in
      let len = min (String.length msg) (t.cfg.conn_buf_size - 2) in
      Space.store_string t.space cbuf (String.sub msg 0 len);
      (* Install the request's trace context for its whole
         handling: parse-phase switches, faults, replays and audit
         records all inherit it. *)
      (match (t.cfg.variant, t.sd) with
      | Sdrad, Some sd ->
          Api.set_trace sd (trace_of_msg msg);
          Api.flight_event sd ~udi:(slot_udi t slot)
            Checkpoint.Flight.Admit
      | _ -> ());
      let verdict =
        match (t.cfg.variant, t.sd) with
        | Sdrad, Some sd -> handle_sdrad t slot sd c ~cbuf ~len
        | _ -> handle_plain t slot c ~cbuf ~len
      in
      (match t.sd with
      | Some sd -> Api.set_trace sd 0L
      | None -> ());
      (match verdict with
      | `Keep -> ()
      | (`Close | `Close_graceful) as v ->
          drop c;
          if v = `Close then Telemetry.Metrics.inc t.c_dropped);
      (* Scheduler-level chaos: lose this worker "process" between
         requests; the master observes the death and respawns. *)
      match t.faults with
      | Some fi ->
          ignore
            (Fault_inject.maybe_kill fi ~site:"httpd.worker"
               ~sched:t.sched ~tid:slot.tid)
      | None -> ()
    end
  in
  (* Coalesce whatever is already deliverable into the same open gate
     (a zero-deadline wait is a poll), up to the batch limit. *)
  let rec drain n =
    if n < t.cfg.gate_batch_limit then
      match Netsim.Waitset.wait_deadline slot.ws ~deadline:(Sched.now ()) with
      | None -> ()
      | Some c -> (
          match Netsim.recv_with_arrival c with
          | None ->
              drop c;
              drain n
          | Some (msg, arrival) ->
              serve c msg arrival;
              drain (n + 1))
  in
  let rec loop () =
    match Netsim.Waitset.wait slot.ws with
    | None -> ()
    | Some c ->
        (match Netsim.recv_with_arrival c with
        | None -> drop c
        | Some (msg, arrival) ->
            if batching then
              Api.with_gate (Option.get t.sd) (fun () ->
                  serve c msg arrival;
                  drain 1)
            else serve c msg arrival);
        (* §VI mitigation: after too many rewinds, re-exec voluntarily to
           re-randomize the address space. *)
        match t.cfg.rewind_limit with
        | Some limit when slot.slot_rewinds >= limit ->
            Log.info (fun m ->
                m "worker %d reached its rewind limit (%d); re-exec" slot.idx limit);
            Telemetry.Metrics.inc t.c_proactive;
            raise Exit
        | Some _ | None -> loop ()
  in
  try loop ()
  with _e ->
    (* The worker process dies: its connections are torn down by the
       kernel and the master is notified via SIGCHLD. *)
    slot.alive <- false;
    let at = Sched.now () in
    Telemetry.Metrics.add t.c_dropped (List.length slot.live_conns);
    List.iter Netsim.close slot.live_conns;
    slot.live_conns <- [];
    Netsim.Waitset.close slot.ws;
    Sched.Mutex.with_lock t.death_lock (fun () ->
        Queue.add (slot.idx, at) t.deaths;
        Sched.Cond.signal t.death_cond)

and master t =
  let rec loop () =
    let event =
      Sched.Mutex.with_lock t.death_lock (fun () ->
          while Queue.is_empty t.deaths && not t.stopping do
            Sched.Cond.wait t.death_cond t.death_lock
          done;
          Queue.take_opt t.deaths)
    in
    match event with
    | Some (idx, died_at) ->
        if
          (not t.stopping)
          && Telemetry.Metrics.counter_value t.c_restarts < t.cfg.max_restarts
        then begin
          Log.warn (fun m -> m "worker %d died; respawning" idx);
          Telemetry.Metrics.inc t.c_restarts;
          Sched.charge worker_restart_cost;
          let slot = t.slots.(idx) in
          slot.ws <- Netsim.Waitset.create ();
          spawn_worker t slot;
          t.restart_lat <- (Sched.now () -. died_at) :: t.restart_lat
        end;
        loop ()
    | None -> if not t.stopping then loop ()
  in
  loop ()

let stop t =
  t.stopping <- true;
  Netsim.close_listener t.listener;
  Array.iter (fun slot -> Netsim.Waitset.close slot.ws) t.slots;
  (* Wake the master so it observes [stopping]. *)
  Sched.Mutex.with_lock t.death_lock (fun () -> Sched.Cond.signal t.death_cond)

let join t = List.iter Sched.join t.all_tids
let requests_served t = Telemetry.Metrics.counter_value t.c_served
let rewinds t = Telemetry.Metrics.counter_value t.c_rewinds
let rewind_latencies t = t.rewind_lat
let worker_restarts t = Telemetry.Metrics.counter_value t.c_restarts
let proactive_restarts t = Telemetry.Metrics.counter_value t.c_proactive
let restart_latencies t = t.restart_lat
let dropped_connections t = Telemetry.Metrics.counter_value t.c_dropped
let busy_rejections t = Telemetry.Metrics.counter_value t.c_busy_503
let shed_count t = Telemetry.Metrics.counter_value t.c_shed
let replay_hits t = Journal.hits t.journal
let journal t = t.journal
let post_count t = t.post_count
let supervisor t = t.sup
let metrics t = t.metrics
let race_detector t = t.race

let alive t =
  Array.exists
    (fun slot ->
      match Sched.outcome t.sched slot.tid with None -> true | Some _ -> false)
    t.slots
