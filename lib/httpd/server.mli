(** The NGINX-like web server of §V-B: a master thread accepts
    connections, hands them to worker "processes", and restarts any worker
    that dies. Workers serve keep-alive HTTP over a readiness waitset.

    Variants mirror Figure 5:
    - {!Baseline}: plain server; a parser fault kills the worker. The
      master respawns it (costing roughly the paper's ~1 ms), and {e all}
      of that worker's connections are lost.
    - {!Tlsf_alloc}: request pools draw from TLSF instead of the glibc
      model.
    - {!Sdrad}: the HTTP parser runs in an accessible persistent nested
      domain; request data is copied in, results copied back, and each
      parser phase is its own domain transition. A parser fault rewinds
      and closes only the offending connection.

    The CVE-2009-2629 analogue (URI "../" underflow) is armed with
    [vulnerable = true]. With [verify_certs = true], requests carrying an
    [X-Client-Cert] header run the toy X.509 verifier of
    {!Crypto.X509} — whose punycode overflow (CVE-2022-3786) is caught by
    the stack canary — inside its own domain under SDRaD (§V-C). *)

type variant = Baseline | Tlsf_alloc | Sdrad

type config = {
  variant : variant;
  workers : int;
  port : int;
  vulnerable : bool;
  verify_certs : bool;
  parser_udi : int;
  cert_udi : int;
  pool_udi : int;  (** data domain for request pools under SDRaD *)
  proc_cycles : float;  (** per-request base processing cost *)
  conn_buf_size : int;
  max_restarts : int;
  image_bytes : int;
      (** resident process image (text, libraries, page cache) touched at
          startup, so RSS comparisons have a realistic denominator *)
  rewind_limit : int option;
      (** §VI side-channel mitigation: "force an application restart after
          a configurable number of rewindings" — a worker that has rewound
          this many times voluntarily re-execs (restoring address-space
          randomization), at the cost of one worker restart *)
  per_worker_domains : bool;
      (** {!Sdrad} variant only: worker [i] parses in udi
          [parser_udi + i] instead of all workers sharing [parser_udi],
          so the supervisor can quarantine one worker's parser without
          fencing the others. [parser_udi] must leave [workers]
          consecutive udis free of other uses. Off by default. *)
  journal_cap : int;
      (** capacity of the replay journal keyed by [X-Request-Id]; the
          journal is master-process state, so it survives parser-domain
          discards and worker deaths alike *)
  shed_queue_limit : int;
      (** shed (answer 503) when a worker's waitset backlog exceeds this
          many queued messages; 0 disables queue-depth shedding *)
  shed_wait_limit : float;
      (** shed when a request waited longer than this many cycles in the
          worker's queue; 0 disables deadline-based shedding *)
  nonblocking_admit : bool;
      (** use {!Resilience.Supervisor.admit_nb}: a supervisor backoff
          delay becomes a 503 instead of parking the worker *)
  verify_policy : bool;
      (** {!Sdrad} variant only: after the pool data domain is set up,
          run the {!Analysis.Policy} verifier over a snapshot of the
          monitor and raise {!Analysis.Policy.Rejected} on any
          error-severity finding. Off by default. *)
  race_detector : bool;
      (** {!Sdrad} variant only: attach an {!Analysis.Race} detector at
          start. Detection is host-side — it never perturbs the
          simulated run. Off by default. *)
  gate_batch_limit : int;
      (** {!Sdrad} variant only: coalesce up to this many consecutive
          ready requests into one {!Core.Api.open_gate} batched-gate
          section per worker wakeup, eliding per-request monitor
          call-gate WRPKRU writes (supervision, flight events and fault
          isolation are unchanged). 0 disables batching (the default). *)
}

val default_config : config

type t

val start :
  Simkern.Sched.t ->
  Vmem.Space.t ->
  ?sdrad:Sdrad.Api.t ->
  ?supervisor:Resilience.Supervisor.t ->
  ?faults:Resilience.Fault_inject.t ->
  Netsim.t ->
  fs:Fs.t ->
  config ->
  t
(** [supervisor] (attached to the same [sdrad]) gates the parser domains:
    requests hitting a quarantined parser udi are answered with [503
    Service Unavailable] instead of being parsed. [faults] arms the
    deterministic injection sites — ["httpd.alloc"] (buffer-allocator
    failure), ["httpd.parse"] (corruption inside the parser domain, one
    visit per parse phase) and ["httpd.worker"] (kill the worker thread
    between requests). *)

val stop : t -> unit
val join : t -> unit

(** {1 Introspection} *)

val requests_served : t -> int
val rewinds : t -> int
val rewind_latencies : t -> float list
val worker_restarts : t -> int

val proactive_restarts : t -> int
(** Restarts initiated by the rewind-limit policy rather than a crash. *)

val restart_latencies : t -> float list
(** Cycles from a worker's death to its replacement accepting work. *)

val dropped_connections : t -> int

val busy_rejections : t -> int
(** Requests answered with 503 because the supervisor had the parser
    domain quarantined. *)

val shed_count : t -> int
(** Requests answered 503 by overload admission control — before any
    parsing or domain switch was spent on them. *)

val replay_hits : t -> int
(** Retried POSTs answered from the replay journal instead of being
    applied a second time. *)

val journal : t -> Resilience.Journal.t

val post_count : t -> int
(** Value of the [POST /count] counter — the observable non-idempotent
    state the replay journal protects. *)

val supervisor : t -> Resilience.Supervisor.t option
val alive : t -> bool

val metrics : t -> Telemetry.Metrics.t
(** The registry behind [GET /metrics]: the monitor's registry for the
    {!Sdrad} variant (core + supervisor + server series in one scrape),
    a private one otherwise. *)

val race_detector : t -> Analysis.Race.t option
(** The race detector attached at start when [config.race_detector] was
    set ([None] otherwise). *)
