(** Summary statistics and table rendering for the benchmark harness. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : float list -> summary
(** Sorts with [Float.compare] (total order), so [-0.] and infinities
    land where IEEE ordering puts them.

    @raise Invalid_argument on an empty list, or if the input contains a
    NaN — a NaN measurement is a harness bug and silently dropping or
    misplacing it would corrupt every quantile. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0,1\]]; linear interpolation. The
    array must be sorted ascending under [Float.compare] and NaN-free
    (anything else gives unspecified results — {!summarize} enforces
    both). *)

val mean : float list -> float
val stddev : float list -> float

(** Streaming mean/variance (Welford's algorithm). *)
val quantile_of_buckets : (float * int) list -> float -> float
(** [quantile_of_buckets buckets q] estimates the [q]-quantile
    ([0 <= q <= 1]) from [(ascending upper bound, raw per-bucket count)]
    pairs — the shape {!Telemetry.Metrics.hist_buckets} returns — by
    linear interpolation inside the winning bucket (lower edge = the
    previous bound, 0 for the first), the standard
    [histogram_quantile] estimate. Ranks beyond the listed counts floor
    at the last bound.
    @raise Invalid_argument on an all-zero histogram or [q] outside
    [0, 1]. *)

module Welford : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
end

val ops_per_sec : Simkern.Cost.t -> ops:int -> cycles:float -> float
(** Throughput implied by a virtual-cycle duration. *)

(** Fixed-width text tables for experiment output. *)
module Table : sig
  val render : header:string list -> string list list -> string

  val fmt_si : float -> string
  (** 12345.6 -> "12.3k" style rendering for counts. *)

  val fmt_pct : float -> string
  (** 0.0714 -> "+7.1%" (signed). *)
end
