type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (ss /. float_of_int (List.length xs - 1))

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize xs =
  (* NaN policy: a NaN input is a measurement bug, not a data point —
     dropping it silently would skew every quantile, and polymorphic
     [compare] would leave the array only partially ordered. *)
  if List.exists Float.is_nan xs then
    invalid_arg "Stats.summarize: NaN in input";
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      {
        n = Array.length a;
        mean = mean xs;
        stddev = stddev xs;
        min = a.(0);
        max = a.(Array.length a - 1);
        p50 = percentile a 0.5;
        p95 = percentile a 0.95;
        p99 = percentile a 0.99;
      }

(* Quantile over histogram buckets: [(upper bound, raw count)] pairs in
   ascending bound order, e.g. from [Telemetry.Metrics.hist_buckets].
   Linear interpolation within the winning bucket, taking the previous
   bound (or 0 for the first bucket) as its lower edge — the standard
   Prometheus histogram_quantile estimate. The rank is computed over the
   listed counts only, so callers that saw samples above the last bound
   should either append an explicit overflow bucket or accept the last
   bound as a floor for high quantiles. *)
let quantile_of_buckets buckets q =
  if q < 0.0 || q > 1.0 || Float.is_nan q then
    invalid_arg "Stats.quantile_of_buckets: q outside [0,1]";
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 buckets in
  if total = 0 then invalid_arg "Stats.quantile_of_buckets: empty histogram";
  let rank = q *. float_of_int total in
  let rec walk lo cum = function
    | [] -> lo  (* rank beyond the listed counts: floor at the last bound *)
    | (bound, c) :: rest ->
        let cum' = cum +. float_of_int c in
        if c > 0 && rank <= cum' then
          (* interpolate within [lo, bound] by the rank's position in
             this bucket's population *)
          lo +. ((bound -. lo) *. ((rank -. cum) /. float_of_int c))
        else walk bound cum' rest
  in
  walk 0.0 0.0 buckets

module Welford = struct
  type t = { mutable n : int; mutable m : float; mutable m2 : float }

  let create () = { n = 0; m = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let d = x -. t.m in
    t.m <- t.m +. (d /. float_of_int t.n);
    t.m2 <- t.m2 +. (d *. (x -. t.m))

  let count t = t.n
  let mean t = t.m
  let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
end

let ops_per_sec cost ~ops ~cycles =
  if cycles <= 0.0 then 0.0
  else float_of_int ops /. Simkern.Cost.sec_of_cycles cost cycles

module Table = struct
  let render ~header rows =
    let all = header :: rows in
    let cols = List.length header in
    let width c =
      List.fold_left
        (fun acc row ->
          match List.nth_opt row c with
          | Some cell -> max acc (String.length cell)
          | None -> acc)
        0 all
    in
    let widths = List.init cols width in
    let line row =
      String.concat "  "
        (List.mapi
           (fun c cell ->
             let w = List.nth widths c in
             if c = 0 then Printf.sprintf "%-*s" w cell
             else Printf.sprintf "%*s" w cell)
           row)
    in
    let sep =
      String.concat "  " (List.map (fun w -> String.make w '-') widths)
    in
    String.concat "\n" (line header :: sep :: List.map line rows)

  let fmt_si v =
    let av = Float.abs v in
    if av >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
    else if av >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
    else if av >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
    else Printf.sprintf "%.1f" v

  let fmt_pct v = Printf.sprintf "%+.1f%%" (v *. 100.0)
end
