open Effect
open Effect.Deep

type tid = int
type outcome = Completed | Failed of exn
type wake = at:float -> unit

exception Deadlock of string

(* Delivered into a thread killed with [kill]: it is raised at the
   victim's next resumption point, so Fun.protect finalizers and
   exception handlers run — the simulation analogue of a fatal signal
   that the runtime turns into an unwind. *)
exception Killed

type status = Ready | Running | Blocked | Done of outcome

type thread = {
  tid : int;
  name : string;
  mutable clock : float;
  mutable waited : float;  (* virtual time spent blocked or waiting *)
  mutable status : status;
  mutable entry : (unit -> unit) option;
  mutable cont : (unit, unit) continuation option;
  mutable susp_serial : int;
  mutable joiners : wake list;
  mutable killed : bool;
}

(* Binary min-heap of (clock, tid) with lazy deletion: a popped entry is
   valid only if the thread is still Ready at exactly that clock. *)
module Heap = struct
  type entry = { key : float; id : int }
  type t = { mutable a : entry array; mutable n : int }

  let dummy = { key = 0.0; id = -1 }
  let create () = { a = Array.make 64 dummy; n = 0 }

  let less x y = x.key < y.key || (x.key = y.key && x.id < y.id)

  let push h e =
    if h.n = Array.length h.a then begin
      let a' = Array.make (2 * h.n) dummy in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    h.a.(h.n) <- e;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while !i > 0 && less h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      h.a.(h.n) <- dummy;
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.n && less h.a.(l) h.a.(!m) then m := l;
        if r < h.n && less h.a.(r) h.a.(!m) then m := r;
        if !m = !i then continue_ := false
        else begin
          let tmp = h.a.(!m) in
          h.a.(!m) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !m
        end
      done;
      Some top
    end
end

type t = {
  mutable next_tid : int;
  threads : (int, thread) Hashtbl.t;
  ready : Heap.t;
  mutable current : thread option;
  mutable running : bool;
  mutable horizon : float;
}

type _ Effect.t +=
  | Yield_eff : unit Effect.t
  | Suspend_eff : (wake -> unit) -> unit Effect.t

let active : t option ref = ref None

(* Synchronization trace hook (single slot, like [active]): when set, the
   scheduler reports the happens-before-relevant events — spawn/join
   edges and lock transfers — to an external observer (the race detector
   in lib/analysis installs one). Emission is host-side only: it charges
   no virtual time and takes no scheduling decision, so an installed hook
   cannot perturb a deterministic run. *)
type trace_event =
  | Spawned of { parent : tid; child : tid }
  | Joined of { waiter : tid; joined : tid }
  | Locked of { lock : int; tid : tid }
  | Unlocked of { lock : int; tid : tid }
  | Rd_locked of { lock : int; tid : tid }
  | Rd_unlocked of { lock : int; tid : tid }

let trace_hook : (trace_event -> unit) option ref = ref None
let set_trace_hook h = trace_hook := h
let trace ev = match !trace_hook with Some f -> f ev | None -> ()

(* Mutexes and rwlocks share one id namespace so lock-set observers can
   treat them uniformly. *)
let next_lock_id = ref 0

let fresh_lock_id () =
  let id = !next_lock_id in
  next_lock_id := id + 1;
  id

let create () =
  {
    next_tid = 0;
    threads = Hashtbl.create 64;
    ready = Heap.create ();
    current = None;
    running = false;
    horizon = 0.0;
  }

let current_thread () =
  match !active with
  | Some t -> (
      match t.current with
      | Some th -> th
      | None -> failwith "Sched: no current thread")
  | None -> failwith "Sched: not inside a simulation"

let in_thread () =
  match !active with Some t -> t.current <> None | None -> false

let current () =
  match !active with
  | Some t -> t
  | None -> failwith "Sched: not inside a simulation"

let self () = (current_thread ()).tid
let self_name () = (current_thread ()).name
let now () = (current_thread ()).clock

let charge c =
  let th = current_thread () in
  th.clock <- th.clock +. c

let make_ready t th =
  th.status <- Ready;
  Heap.push t.ready { Heap.key = th.clock; id = th.tid }

let spawn t ?name f =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let name = match name with Some n -> n | None -> Printf.sprintf "t%d" tid in
  let clock =
    match t.current with Some parent -> parent.clock | None -> 0.0
  in
  let th =
    {
      tid;
      name;
      clock;
      waited = 0.0;
      status = Ready;
      entry = Some f;
      cont = None;
      susp_serial = 0;
      joiners = [];
      killed = false;
    }
  in
  Hashtbl.replace t.threads tid th;
  Heap.push t.ready { Heap.key = clock; id = tid };
  trace
    (Spawned
       {
         parent = (match t.current with Some p -> p.tid | None -> -1);
         child = tid;
       });
  tid

let wake_fn t th serial : wake =
 fun ~at ->
  if th.susp_serial = serial && th.status = Blocked then begin
    if at > th.clock then th.waited <- th.waited +. (at -. th.clock);
    th.clock <- Float.max th.clock at;
    make_ready t th
  end

let finish t th oc =
  th.status <- Done oc;
  th.cont <- None;
  if th.clock > t.horizon then t.horizon <- th.clock;
  let joiners = th.joiners in
  th.joiners <- [];
  List.iter (fun w -> w ~at:th.clock) joiners

let handler t th =
  {
    retc = (fun () -> finish t th Completed);
    exnc = (fun e -> finish t th (Failed e));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield_eff ->
            Some
              (fun (k : (a, unit) continuation) ->
                th.cont <- Some k;
                make_ready t th)
        | Suspend_eff register ->
            Some
              (fun (k : (a, unit) continuation) ->
                th.cont <- Some k;
                th.status <- Blocked;
                th.susp_serial <- th.susp_serial + 1;
                register (wake_fn t th th.susp_serial))
        | _ -> None);
  }

let resume t th =
  th.status <- Running;
  t.current <- Some th;
  (if th.killed then begin
     th.entry <- None;
     match th.cont with
     | Some k ->
         th.cont <- None;
         discontinue k Killed
     | None -> finish t th (Failed Killed)
   end
   else
     match th.entry with
     | Some f ->
         th.entry <- None;
         match_with f () (handler t th)
     | None -> (
         match th.cont with
         | Some k ->
             th.cont <- None;
             continue k ()
         | None -> failwith "Sched: resuming thread without continuation"));
  t.current <- None

let blocked_threads t =
  Hashtbl.fold
    (fun _ th acc -> if th.status = Blocked then th :: acc else acc)
    t.threads []

let run t =
  if t.running then failwith "Sched.run: already running";
  let saved = !active in
  active := Some t;
  t.running <- true;
  let restore () =
    t.running <- false;
    active := saved
  in
  (try
     let rec loop () =
       match Heap.pop t.ready with
       | None -> ()
       | Some { Heap.key; id } -> (
           match Hashtbl.find_opt t.threads id with
           | Some th when th.status = Ready && th.clock = key ->
               resume t th;
               loop ()
           | _ -> loop () (* stale heap entry *))
     in
     loop ()
   with e ->
     restore ();
     raise e);
  restore ();
  match blocked_threads t with
  | [] -> ()
  | blocked ->
      let names = String.concat ", " (List.map (fun th -> th.name) blocked) in
      raise (Deadlock names)

let outcome t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some { status = Done oc; _ } -> Some oc
  | _ -> None

let outcomes t =
  let finished =
    Hashtbl.fold
      (fun tid th acc ->
        match th.status with
        | Done oc -> (tid, th.name, oc) :: acc
        | Ready | Running | Blocked -> acc)
      t.threads []
  in
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) finished

let horizon t =
  Hashtbl.fold (fun _ th acc -> Float.max acc th.clock) t.threads t.horizon

(* Advancing virtual time is a scheduling point: the thread re-queues at
   the target clock so every runnable thread at an earlier virtual time
   runs first. Without the yield, a thread that waits to a far deadline
   teleports past its contemporaries and acts (e.g. fires a timeout
   wake-up) before events that happen earlier in virtual time — a timed
   receive would then charge its full deadline even when the reply was
   already in flight. Once no runnable thread sits below [at], nothing
   can create an earlier event, so resuming is safe. *)
let wait_until at =
  let th = current_thread () in
  if at > th.clock then begin
    th.waited <- th.waited +. (at -. th.clock);
    th.clock <- at;
    perform Yield_eff
  end

let thread_clock t tid =
  Option.map (fun th -> th.clock) (Hashtbl.find_opt t.threads tid)

let thread_waited t tid =
  Option.map (fun th -> th.waited) (Hashtbl.find_opt t.threads tid)

let busy_fraction t tid =
  match Hashtbl.find_opt t.threads tid with
  | None -> None
  | Some th ->
      let span = horizon t in
      if span <= 0.0 then None
      else Some ((th.clock -. th.waited) /. span)

let yield () = perform Yield_eff
let suspend register = perform (Suspend_eff register)

let sleep c =
  charge c;
  yield ()

(* Kill a thread: it unwinds with [Killed] at its next resumption. A
   blocked victim is made runnable immediately (its pending wake-ups are
   invalidated); a ready one dies when the scheduler picks it. Killing a
   finished thread is a no-op. The victim's clock is advanced to the
   killer's so the death is causally ordered. *)
let kill t tid =
  match Hashtbl.find_opt t.threads tid with
  | None -> ()
  | Some ({ status = Done _; _ }) -> ()
  | Some th ->
      th.killed <- true;
      let at = match t.current with Some cur -> cur.clock | None -> th.clock in
      if at > th.clock then begin
        th.waited <- th.waited +. (at -. th.clock);
        th.clock <- at
      end;
      if th.status = Blocked then begin
        th.susp_serial <- th.susp_serial + 1;
        make_ready t th
      end
      else if th.status = Ready then
        (* Re-queue at the (possibly advanced) clock; the stale heap entry
           is skipped by the clock check in [run]. *)
        Heap.push t.ready { Heap.key = th.clock; id = th.tid }

let join tid =
  let t = current () in
  match Hashtbl.find_opt t.threads tid with
  | None -> invalid_arg "Sched.join: unknown thread"
  | Some th ->
      (match th.status with
      | Done _ -> ()
      | Ready | Running | Blocked ->
          suspend (fun wake -> th.joiners <- wake :: th.joiners));
      (* The edge exists even when the target already finished: the
         joiner now happens-after everything the joined thread did. *)
      trace (Joined { waiter = self (); joined = tid })

module Mutex = struct
  type mutex = {
    id : int;
    mutable locked : bool;
    mutable owner : tid;
    waiters : wake Queue.t;
    mutable contentions : int;
    mutable wait_cycles : float;
  }

  let create () =
    { id = fresh_lock_id (); locked = false; owner = -1; waiters = Queue.create (); contentions = 0; wait_cycles = 0.0 }

  let id m = m.id

  let lock m =
    if not m.locked then begin
      m.locked <- true;
      m.owner <- self ()
    end
    else begin
      m.contentions <- m.contentions + 1;
      let t0 = now () in
      suspend (fun wake -> Queue.add wake m.waiters);
      (* The lock was handed to us by [unlock]; it is still marked locked. *)
      m.owner <- self ();
      m.wait_cycles <- m.wait_cycles +. (now () -. t0)
    end;
    trace (Locked { lock = m.id; tid = m.owner })

  let unlock m =
    if not m.locked then invalid_arg "Mutex.unlock: not locked";
    (match !trace_hook with
    | Some f -> f (Unlocked { lock = m.id; tid = self () })
    | None -> ());
    match Queue.take_opt m.waiters with
    | None ->
        m.locked <- false;
        m.owner <- -1
    | Some wake ->
        (* Direct handoff: ownership transfers when the waiter resumes. *)
        wake ~at:(now ())

  let with_lock m f =
    lock m;
    match f () with
    | v ->
        unlock m;
        v
    | exception e ->
        unlock m;
        raise e

  let contentions m = m.contentions
  let wait_cycles m = m.wait_cycles
end

module Rwlock = struct
  type rw = {
    id : int;
    mutable active_readers : int;
    mutable writer : bool;
    mutable waiting_writers : int;
    reader_q : wake Queue.t;
    writer_q : wake Queue.t;
  }

  let create () =
    {
      id = fresh_lock_id ();
      active_readers = 0;
      writer = false;
      waiting_writers = 0;
      reader_q = Queue.create ();
      writer_q = Queue.create ();
    }

  let id rw = rw.id

  (* Mesa-style: a woken waiter re-checks its condition and may sleep
     again; wake-ups are therefore conservative (broadcasts). *)
  let rec rd_lock rw =
    if rw.writer || rw.waiting_writers > 0 then begin
      suspend (fun wake -> Queue.add wake rw.reader_q);
      rd_lock rw
    end
    else begin
      rw.active_readers <- rw.active_readers + 1;
      trace (Rd_locked { lock = rw.id; tid = self () })
    end

  let drain q =
    let t = now () in
    let rec go () =
      match Queue.take_opt q with
      | Some wake ->
          wake ~at:t;
          go ()
      | None -> ()
    in
    go ()

  let rd_unlock rw =
    if rw.active_readers <= 0 then invalid_arg "Rwlock.rd_unlock: not read-locked";
    (match !trace_hook with
    | Some f -> f (Rd_unlocked { lock = rw.id; tid = self () })
    | None -> ());
    rw.active_readers <- rw.active_readers - 1;
    if rw.active_readers = 0 then drain rw.writer_q

  let rec wr_lock rw =
    if rw.writer || rw.active_readers > 0 then begin
      rw.waiting_writers <- rw.waiting_writers + 1;
      suspend (fun wake -> Queue.add wake rw.writer_q);
      rw.waiting_writers <- rw.waiting_writers - 1;
      wr_lock rw
    end
    else begin
      rw.writer <- true;
      (* The write side is an exclusive lock: same event as a mutex. *)
      trace (Locked { lock = rw.id; tid = self () })
    end

  let wr_unlock rw =
    if not rw.writer then invalid_arg "Rwlock.wr_unlock: not write-locked";
    (match !trace_hook with
    | Some f -> f (Unlocked { lock = rw.id; tid = self () })
    | None -> ());
    rw.writer <- false;
    if Queue.is_empty rw.writer_q then drain rw.reader_q else drain rw.writer_q

  let with_rd rw f =
    rd_lock rw;
    match f () with
    | v ->
        rd_unlock rw;
        v
    | exception e ->
        rd_unlock rw;
        raise e

  let with_wr rw f =
    wr_lock rw;
    match f () with
    | v ->
        wr_unlock rw;
        v
    | exception e ->
        wr_unlock rw;
        raise e

  let readers rw = rw.active_readers
end

module Cond = struct
  type cond = { waiters : wake Queue.t }

  let create () = { waiters = Queue.create () }

  let wait c m =
    (* Enqueue before releasing the mutex so a signal between unlock and
       suspend cannot be lost; suspension registration happens atomically
       with respect to other threads because fibers are cooperative. *)
    Mutex.unlock m;
    suspend (fun wake -> Queue.add wake c.waiters);
    Mutex.lock m

  let signal c =
    match Queue.take_opt c.waiters with
    | Some wake -> wake ~at:(now ())
    | None -> ()

  let broadcast c =
    let t = now () in
    let rec drain () =
      match Queue.take_opt c.waiters with
      | Some wake ->
          wake ~at:t;
          drain ()
      | None -> ()
    in
    drain ()
end
