(** Deterministic cooperative thread scheduler over virtual time.

    The simulator models POSIX threads as cooperative fibers (OCaml 5
    effects) with per-thread virtual clocks measured in CPU cycles. The
    scheduler is a conservative discrete-event loop: it always resumes the
    runnable thread with the smallest clock, so cross-thread interactions
    (mutexes, message queues) observe a causally consistent order and every
    run is reproducible.

    A thread advances its own clock with {!charge}; it never pre-empts.
    Blocking primitives ({!suspend}, {!Mutex}, {!Cond}, {!join}) hand
    control back to the scheduler; when woken at virtual time [at], the
    thread's clock becomes [max clock at], which is how waiting time
    manifests. *)

type t
type tid = int

type outcome =
  | Completed
  | Failed of exn
      (** The thread died with an uncaught exception — for a simulated
          process this is the analogue of crashing on an unhandled
          signal. *)

exception Deadlock of string
(** Raised by {!run} when every remaining thread is blocked. *)

exception Killed
(** Delivered into a thread terminated with {!kill}. *)

val create : unit -> t

val spawn : t -> ?name:string -> (unit -> unit) -> tid
(** Create a thread. When called from inside a running thread the child's
    clock starts at the parent's current time; otherwise at 0. *)

val run : t -> unit
(** Execute until no thread is runnable. @raise Deadlock if threads remain
    blocked with nothing to wake them. *)

val outcome : t -> tid -> outcome option
(** [None] while the thread has not finished. *)

val outcomes : t -> (tid * string * outcome) list
(** All finished threads, in tid order. *)

val horizon : t -> float
(** Largest clock reached by any thread — the makespan of the simulation,
    used for throughput computations. *)

(** The functions below may only be called from inside a running thread. *)

val self : unit -> tid
val self_name : unit -> string

val now : unit -> float
(** Current thread's clock, in cycles. *)

val charge : float -> unit
(** Advance the current thread's clock by the given number of cycles. *)

val yield : unit -> unit
(** Reschedule; another thread with a smaller clock may run first. *)

val sleep : float -> unit
(** [charge] then [yield]. *)

val wait_until : float -> unit
(** Advance the current thread's clock to [at] (no-op if already past),
    accounting the jump as waiting rather than work — e.g. a blocking read
    whose data arrives at a known time. *)

val thread_clock : t -> tid -> float option
val thread_waited : t -> tid -> float option

val busy_fraction : t -> tid -> float option
(** Fraction of the simulation span the thread spent computing rather
    than waiting — CPU utilization for saturation analysis. *)

type wake = at:float -> unit
(** Wake callback handed to a suspension. Calling it more than once, or
    after the thread was woken through another path, is a no-op. *)

val suspend : (wake -> unit) -> unit
(** Block the current thread. The registration function receives the wake
    callback and must arrange for it to be invoked later (e.g. stash it in
    a wait queue). *)

val join : tid -> unit
(** Block until the given thread finishes. Does not re-raise its
    failure — inspect {!outcome}. *)

val kill : t -> tid -> unit
(** Terminate a thread: {!Killed} is raised inside it at its next
    resumption point, so handlers and finalizers unwind as for any fatal
    exception (the victim's outcome is [Failed Killed] unless it catches).
    A blocked victim is made runnable immediately; killing a finished or
    unknown thread is a no-op. Fault-injection uses this to model the
    scheduler-level loss of a thread. *)

val current : unit -> t
(** The scheduler driving the calling thread. *)

val in_thread : unit -> bool
(** Whether the caller is executing inside a simulated thread. *)

(** {1 Synchronization trace hook}

    The happens-before skeleton of a run, reported to an external
    observer: spawn and join edges, and exclusive/shared lock transfers
    ({!Mutex} and the two sides of {!Rwlock}; {!Cond} needs no events of
    its own because its synchronization is carried by the mutex it is
    used with). The race detector ({!Analysis.Race}) installs the hook.

    Emission is purely host-side — no virtual time is charged and no
    scheduling decision changes — so installing a hook cannot perturb a
    deterministic run. Lock events carry a process-wide lock id shared
    between mutexes and rwlocks ({!Mutex.id} / {!Rwlock.id}). *)

type trace_event =
  | Spawned of { parent : tid; child : tid }
      (** [parent = -1] when spawned from outside the simulation. *)
  | Joined of { waiter : tid; joined : tid }
  | Locked of { lock : int; tid : tid }
      (** Exclusive acquisition (mutex lock or rwlock write lock). *)
  | Unlocked of { lock : int; tid : tid }
  | Rd_locked of { lock : int; tid : tid }
  | Rd_unlocked of { lock : int; tid : tid }

val set_trace_hook : (trace_event -> unit) option -> unit
(** Install (or clear, with [None]) the single trace-hook slot. *)

(** Mutual exclusion with virtual-time contention accounting. Unlock hands
    the lock directly to the longest-waiting thread. *)
module Mutex : sig
  type mutex

  val create : unit -> mutex
  val lock : mutex -> unit
  val unlock : mutex -> unit
  val with_lock : mutex -> (unit -> 'a) -> 'a

  val id : mutex -> int
  (** Stable id in the shared mutex/rwlock namespace (trace events). *)

  val contentions : mutex -> int
  (** Number of lock acquisitions that had to wait. *)

  val wait_cycles : mutex -> float
  (** Total virtual time spent waiting on this mutex. *)
end

(** Reader-writer lock (writer-preferring, as glibc's
    pthread_rwlock with the writer-nonrecursive policy). *)
module Rwlock : sig
  type rw

  val create : unit -> rw
  val rd_lock : rw -> unit
  val rd_unlock : rw -> unit
  val wr_lock : rw -> unit
  val wr_unlock : rw -> unit
  val with_rd : rw -> (unit -> 'a) -> 'a
  val with_wr : rw -> (unit -> 'a) -> 'a

  val id : rw -> int
  (** Stable id in the shared mutex/rwlock namespace (trace events). *)

  val readers : rw -> int
  (** Current read-side holders (test hook). *)
end

(** Condition variables (Mesa semantics). *)
module Cond : sig
  type cond

  val create : unit -> cond
  val wait : cond -> Mutex.mutex -> unit
  val signal : cond -> unit
  val broadcast : cond -> unit
end
