(** Simulated loopback networking for client/server experiments.

    Connections are bidirectional message streams between two simulated
    threads. Messages carry a delivery timestamp (fixed per-message cost
    plus a per-byte cost), so round-trip latency exists in virtual time
    and closed-loop load generators saturate realistically — which is what
    produces the paper's thread-scaling behaviour in the Memcached
    benchmark. Framing is message-oriented (one [send] = one [recv]); the
    application protocols layer their own text formats on top. *)

type t
(** A network (a bag of listeners). *)

type conn
(** One endpoint of an established connection. *)

type listener

val create : Simkern.Cost.t -> t
val listen : t -> port:int -> listener

val connect : ?src:int -> t -> port:int -> conn
(** Returns immediately with the client endpoint; the server side obtains
    the peer endpoint from {!accept}. [src] is the client's source address
    (think IP): connections sharing it are recognizably the same remote
    peer via {!remote_addr}; it defaults to a per-connection unique id.
    @raise Failure on unknown port. *)

val accept : listener -> conn option
(** Block until a client connects; [None] once the listener is closed. *)

val close_listener : listener -> unit
(** Stop accepting: pending and future {!accept} calls return [None];
    already-established connections are unaffected. *)

val send : conn -> string -> unit
(** Never blocks (infinite socket buffer). Sending on a closed connection
    is a silent no-op, like writing to a socket with SO_NOSIGPIPE. *)

val recv : conn -> string option
(** Block until a message is deliverable or the peer has closed ([None]).
    If the next message's delivery time is in the future, the caller's
    clock advances to it. *)

val try_recv : conn -> string option
(** Non-blocking: [None] when nothing is deliverable right now. *)

val recv_deadline : conn -> deadline:float -> string option
(** Like {!recv}, but give up at virtual time [deadline]: the caller's
    clock advances to the deadline and [None] is returned when no message
    became deliverable by then (or the peer closed). This is what lets a
    client time out instead of blocking forever on a message the fault
    hook dropped. Timeout and peer-close both map to [None]; check
    {!peer_closed} to tell them apart. *)

val recv_with_arrival : conn -> (string * float) option
(** {!recv}, also reporting the message's delivery timestamp — the gap
    [Sched.now () -. arrival] is how long the message sat queued behind a
    busy receiver, the signal deadline-based load shedding keys on. *)

val queued : conn -> int
(** Messages sitting in this endpoint's inbox (deliverable or not). *)

val close : conn -> unit
(** Close both directions; pending messages to the peer remain readable
    (TCP-like half-close is not modelled). Idempotent. *)

val is_open : conn -> bool
val peer_closed : conn -> bool
val id : conn -> int

val remote_addr : conn -> int
(** The source address the connecting side supplied to {!connect} (same
    value on both endpoints of a connection). *)

(** {1 Link-level fault injection} *)

type send_action =
  | Deliver  (** normal delivery *)
  | Drop  (** the message is lost; the sender still pays the send cost *)
  | Truncate of int  (** deliver only the first [n] bytes *)
  | Delay of float  (** extra latency, in cycles, on top of the model's *)

val set_fault_hook : t -> (len:int -> send_action) option -> unit
(** Arm (or disarm, with [None]) a network-wide hook consulted once per
    {!send} with the payload length. Used by the chaos engine to drop,
    truncate, or delay messages deterministically. *)

(** Readiness multiplexing for event-driven servers: a waitset watches a
    set of connections and yields whichever has deliverable input,
    round-robin for fairness. *)
module Waitset : sig
  type ws

  val create : unit -> ws
  val add : ws -> conn -> unit
  val remove : ws -> conn -> unit
  val size : ws -> int

  val wait : ws -> conn option
  (** Block until some watched connection has input or a closed peer to
      report. An empty set blocks until a connection is added ({!add} from
      another thread) or the set is closed. [None] after {!close}. *)

  val wait_deadline : ws -> deadline:float -> conn option
  (** {!wait} with a timeout: [None] once [deadline] passes with nothing
      reportable (and after {!close}). *)

  val backlog : ws -> int
  (** Total messages queued across all watched connections — the queue
      depth an overloaded server sheds on. *)

  val close : ws -> unit
  (** Make every pending and future {!wait} return [None]. *)
end
