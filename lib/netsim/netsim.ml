module Sched = Simkern.Sched
module Cost = Simkern.Cost

(* Link-level fault injection: what happens to one message on the wire.
   The hook lives in a record shared by every endpoint of a network so a
   chaos engine can be armed after connections exist. *)
type send_action = Deliver | Drop | Truncate of int | Delay of float

type hooks = { mutable on_send : (len:int -> send_action) option }

type endpoint = {
  eid : int;
  src : int;  (* source address of the connecting side, for peer identity *)
  cost : Cost.t;
  hooks : hooks;
  inbox : (float * string) Queue.t;  (* (delivery time, payload) *)
  mutable peer : endpoint;  (* physical equality with self until paired *)
  mutable closed : bool;
  mutable waiter : Sched.wake option;
  mutable ws : waitset option;
}

and waitset = {
  mutable watched : endpoint list;  (* kept in insertion order *)
  mutable cursor : int;
  mutable ws_waiter : Sched.wake option;
  mutable ws_closed : bool;
}

type conn = endpoint

(* Multiple acceptors may block in [accept] on one listener (the
   SO_REUSEPORT / acceptor-thread-pool pattern); each connect wakes one,
   and a woken acceptor that finds the backlog already drained simply
   parks again. *)
type listener = {
  l_cost : Cost.t;
  backlog : endpoint Queue.t;
  l_waiters : Sched.wake Queue.t;
  mutable l_closed : bool;
}

type t = {
  n_cost : Cost.t;
  ports : (int, listener) Hashtbl.t;
  mutable next_eid : int;
  n_hooks : hooks;
}

let create cost =
  {
    n_cost = cost;
    ports = Hashtbl.create 8;
    next_eid = 0;
    n_hooks = { on_send = None };
  }

let set_fault_hook t h = t.n_hooks.on_send <- h

let listen t ~port =
  let l =
    {
      l_cost = t.n_cost;
      backlog = Queue.create ();
      l_waiters = Queue.create ();
      l_closed = false;
    }
  in
  Hashtbl.replace t.ports port l;
  l

let fresh_endpoint t ~src =
  let eid = t.next_eid in
  t.next_eid <- eid + 1;
  let rec e =
    {
      eid;
      src;
      cost = t.n_cost;
      hooks = t.n_hooks;
      inbox = Queue.create ();
      peer = e;
      closed = false;
      waiter = None;
      ws = None;
    }
  in
  e

let wake_endpoint e ~at =
  (match e.waiter with
  | Some w ->
      e.waiter <- None;
      w ~at
  | None -> ());
  match e.ws with
  | Some ws -> (
      match ws.ws_waiter with
      | Some w ->
          ws.ws_waiter <- None;
          w ~at
      | None -> ())
  | None -> ()

(* [src] is the client's source address (think IP): connections made with
   the same [src] are recognizably the same remote peer on the server
   side via [remote_addr]. Defaults to a per-connection unique id. *)
let connect ?src t ~port =
  match Hashtbl.find_opt t.ports port with
  | None -> failwith (Printf.sprintf "Netsim.connect: no listener on port %d" port)
  | Some l ->
      let src = match src with Some s -> s | None -> t.next_eid in
      let client = fresh_endpoint t ~src in
      let server = fresh_endpoint t ~src in
      client.peer <- server;
      server.peer <- client;
      Sched.charge t.n_cost.Cost.net_msg;
      Queue.add server l.backlog;
      (match Queue.take_opt l.l_waiters with
      | Some w -> w ~at:(Sched.now ())
      | None -> ());
      client

let rec accept l =
  match Queue.take_opt l.backlog with
  | Some server ->
      Sched.charge l.l_cost.Cost.syscall;
      Some server
  | None ->
      if l.l_closed then None
      else begin
        Sched.suspend (fun wake -> Queue.add wake l.l_waiters);
        accept l
      end

let close_listener l =
  l.l_closed <- true;
  Queue.iter (fun w -> w ~at:(Sched.now ())) l.l_waiters;
  Queue.clear l.l_waiters

let latency cost len =
  cost.Cost.net_msg +. (cost.Cost.net_byte *. float_of_int len)

let send c msg =
  if not (c.closed || c.peer.closed) then begin
    let action =
      match c.hooks.on_send with
      | Some h -> h ~len:(String.length msg)
      | None -> Deliver
    in
    (* The sender always pays the transmission cost for what it put on the
       wire; the fault decides what the receiver sees. *)
    let lat = latency c.cost (String.length msg) in
    Sched.charge lat;
    match action with
    | Drop -> ()
    | Deliver | Truncate _ | Delay _ ->
        let msg =
          match action with
          | Truncate n -> String.sub msg 0 (max 0 (min n (String.length msg)))
          | _ -> msg
        in
        let extra = match action with Delay d -> Float.max 0.0 d | _ -> 0.0 in
        let arrival = Sched.now () +. lat +. extra in
        Queue.add (arrival, msg) c.peer.inbox;
        wake_endpoint c.peer ~at:arrival
  end

let deliverable c =
  match Queue.peek_opt c.inbox with
  | Some (arrival, _) -> Some arrival
  | None -> None

let try_recv c =
  match Queue.peek_opt c.inbox with
  | Some (arrival, _) when arrival <= Sched.now () ->
      let _, msg = Queue.pop c.inbox in
      Some msg
  | Some _ | None -> None

let rec recv c =
  match Queue.peek_opt c.inbox with
  | Some (arrival, _) ->
      Sched.wait_until arrival;
      let _, msg = Queue.pop c.inbox in
      Some msg
  | None ->
      if c.peer.closed || c.closed then None
      else begin
        Sched.suspend (fun wake -> c.waiter <- Some wake);
        recv c
      end

let rec recv_with_arrival c =
  match Queue.peek_opt c.inbox with
  | Some (arrival, _) ->
      Sched.wait_until arrival;
      let _, msg = Queue.pop c.inbox in
      Some (msg, arrival)
  | None ->
      if c.peer.closed || c.closed then None
      else begin
        Sched.suspend (fun wake -> c.waiter <- Some wake);
        recv_with_arrival c
      end

(* Timed [recv]: when nothing is queued, a helper timer thread wakes the
   blocked receiver at [deadline]. Wake callbacks are idempotent, so
   whichever of the two wake paths (message arrival, timer) loses the
   race is a no-op; a stale waiter left behind by a timeout is likewise
   harmless — the next wake clears it without effect. *)
let recv_deadline c ~deadline =
  let rec loop () =
    match Queue.peek_opt c.inbox with
    | Some (arrival, _) when arrival <= deadline ->
        Sched.wait_until arrival;
        let _, msg = Queue.pop c.inbox in
        Some msg
    | Some _ ->
        (* Head-of-line message arrives after the deadline: in-order
           delivery means nothing else can overtake it. *)
        Sched.wait_until deadline;
        None
    | None ->
        if c.peer.closed || c.closed then None
        else if Sched.now () >= deadline then None
        else begin
          let wake_ref = ref None in
          let sched = Sched.current () in
          let _timer =
            Sched.spawn sched ~name:"net-timeout" (fun () ->
                Sched.wait_until deadline;
                match !wake_ref with Some w -> w ~at:deadline | None -> ())
          in
          Sched.suspend (fun wake ->
              wake_ref := Some wake;
              c.waiter <- Some wake);
          loop ()
        end
  in
  loop ()

let queued c = Queue.length c.inbox

let close c =
  if not c.closed then begin
    c.closed <- true;
    wake_endpoint c.peer ~at:(Sched.now ());
    wake_endpoint c ~at:(Sched.now ())
  end

let is_open c = not c.closed
let peer_closed c = c.peer.closed
let id c = c.eid
let remote_addr c = c.src

module Waitset = struct
  type ws = waitset

  (* A connection is reportable when a message is queued (even with a
     future delivery time: recv will advance the clock) or the peer closed
     (recv will report None so the server can clean up). *)
  let ready c = (not (Queue.is_empty c.inbox)) || c.peer.closed || c.closed

  let create () =
    { watched = []; cursor = 0; ws_waiter = None; ws_closed = false }

  let wake_ws ws =
    match ws.ws_waiter with
    | Some w ->
        ws.ws_waiter <- None;
        w ~at:(Sched.now ())
    | None -> ()

  let add ws c =
    c.ws <- Some ws;
    ws.watched <- ws.watched @ [ c ];
    if ready c then wake_ws ws

  let close ws =
    ws.ws_closed <- true;
    wake_ws ws

  let remove ws c =
    c.ws <- None;
    ws.watched <- List.filter (fun e -> not (e == c)) ws.watched

  let size ws = List.length ws.watched

  (* Among ready connections, serve the one whose head-of-line message
     has the earliest delivery time (a closed peer reports immediately).
     First-ready-from-a-cursor round-robin is NOT equivalent: picking a
     later conn whose message arrives in the future advances the
     caller's clock past it, so the skipped earlier messages accrue
     phantom queueing delay they never actually suffered — an idle
     server would appear to answer old requests late. Arrival order is
     FIFO across the whole set; the cursor breaks ties so same-time
     events still rotate fairly. *)
  let pick_earliest ws =
    match ws.watched with
    | [] -> None
    | watched ->
        let n = List.length watched in
        let arr = Array.of_list watched in
        let best = ref None in
        for i = 0 to n - 1 do
          let idx = (ws.cursor + i) mod n in
          let c = arr.(idx) in
          if ready c then begin
            let key =
              match Queue.peek_opt c.inbox with
              | Some (arrival, _) -> arrival
              | None -> neg_infinity (* closed peer: reportable now *)
            in
            match !best with
            | Some (bkey, _, _) when bkey <= key -> ()
            | _ -> best := Some (key, idx, c)
          end
        done;
        (match !best with
        | Some (_, idx, _) -> ws.cursor <- (idx + 1) mod n
        | None -> ());
        !best

  let rec wait ws =
    if ws.ws_closed then None
    else
      match pick_earliest ws with
      | Some (_, _, c) ->
          (* If the message arrives in the future, wait for it so the
             caller's recv does not under-account time. *)
          (match deliverable c with
          | Some arrival -> Sched.wait_until arrival
          | None -> ());
          Some c
      | None ->
          Sched.suspend (fun wake -> ws.ws_waiter <- Some wake);
          wait ws

  let backlog ws =
    List.fold_left (fun acc c -> acc + Queue.length c.inbox) 0 ws.watched

  (* Timed [wait], built like [recv_deadline]: a timer thread provides
     the deadline wake; readiness picks the same earliest-arrival winner
     as [wait], but a winner whose head-of-line message arrives after
     the deadline counts as a timeout. *)
  let rec wait_deadline ws ~deadline =
    if ws.ws_closed then None
    else
      match pick_earliest ws with
      | Some (_, _, c) -> (
          match deliverable c with
          | Some arrival when arrival <= deadline ->
              Sched.wait_until arrival;
              Some c
          | Some _ ->
              Sched.wait_until deadline;
              None
          | None -> Some c (* closed peer: reportable immediately *))
      | None ->
          if Sched.now () >= deadline then None
          else begin
            let wake_ref = ref None in
            let sched = Sched.current () in
            let _timer =
              Sched.spawn sched ~name:"ws-timeout" (fun () ->
                  Sched.wait_until deadline;
                  match !wake_ref with Some w -> w ~at:deadline | None -> ())
            in
            Sched.suspend (fun wake ->
                wake_ref := Some wake;
                ws.ws_waiter <- Some wake);
            wait_deadline ws ~deadline
          end
end
