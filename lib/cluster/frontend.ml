(* Front-tier load balancer over N httpd monitor instances.

   Simpler than the kvcache router on purpose: HTTP backends here are
   stateless (every backend serves the same document tree), so failover
   needs no drain and no re-seed — just rotation changes and a one-shot
   retry of the failed forward. What it shares with the kvcache tier is
   the observability contract: Route/Failover flight events under the
   client's trace id, and cluster_* series on one registry. *)

module Sched = Simkern.Sched
module Space = Vmem.Space
module Api = Sdrad.Api
module Supervisor = Resilience.Supervisor
module Fi = Resilience.Fault_inject
module Metrics = Telemetry.Metrics
module Flight = Checkpoint.Flight

type config = {
  backends : int;
  base_port : int;
  lb_port : int;
  lb_workers : int;
  forward_timeout : float;
  check_interval : float;
  space_mib : int;
  docs : (string * int) list;
  http : Httpd.Server.config;
  supervisor_policy : Supervisor.policy;
}

let default_config =
  {
    backends = 3;
    base_port = 8100;
    lb_port = 8080;
    lb_workers = 2;
    forward_timeout = 200_000.0;
    check_interval = 50_000.0;
    space_mib = 64;
    docs = [ ("/index.html", 1024) ];
    http = { Httpd.Server.default_config with variant = Httpd.Server.Sdrad };
    supervisor_policy = Supervisor.default_policy;
  }

let lb_flight_udi = 9

type backend = {
  b_idx : int;
  b_port : int;
  b_sd : Api.t;
  b_sup : Supervisor.t;
  b_server : Httpd.Server.t;
  mutable b_health : string;
  mutable b_up : bool;  (* in rotation *)
  mutable b_crashed : bool;
}

type t = {
  cfg : config;
  net : Netsim.t;
  faults : Fi.t option;
  m : Metrics.t;
  backends : backend array;
  listener : Netsim.listener;
  worker_sets : Netsim.Waitset.ws array;
  mutable rr : int;  (* round-robin cursor *)
  mutable running : bool;
  c_requests : Metrics.counter;
  c_routed : Metrics.counter;
  c_reroutes : Metrics.counter;
  c_unavailable : Metrics.counter;
}

let reply_503 = "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n"

(* The trace id of a request's Traceparent header (0L when absent), so
   the balancer's flight events join the client's causal chain. *)
let trace_of_request req =
  let lower = String.lowercase_ascii req in
  let tag = "traceparent:" in
  match
    (* Headers start after the first CRLF; a simple substring scan is
       enough for the generator's canonical formatting. *)
    String.index_opt lower '\r'
  with
  | None -> 0L
  | Some _ -> (
      let rec find from =
        if from + String.length tag > String.length lower then None
        else if String.sub lower from (String.length tag) = tag then
          Some (from + String.length tag)
        else
          match String.index_from_opt lower from '\n' with
          | None -> None
          | Some nl -> find (nl + 1)
      in
      match find 0 with
      | None -> 0L
      | Some pos -> (
          let stop =
            match String.index_from_opt req pos '\r' with
            | Some i -> i
            | None -> String.length req
          in
          let v = String.trim (String.sub req pos (stop - pos)) in
          match Telemetry.Context.of_traceparent v with
          | Some ctx -> Telemetry.Context.trace ctx
          | None -> 0L))

let worst_breaker sup =
  let rank = function
    | Supervisor.Closed -> 0
    | Supervisor.Half_open -> 1
    | Supervisor.Backoff -> 2
    | Supervisor.Quarantined -> 3
  in
  List.fold_left
    (fun acc (_, b) -> if rank b > rank acc then b else acc)
    Supervisor.Closed (Supervisor.states sup)

(* {2 Health sampling} *)

let crash_backend b =
  if not b.b_crashed then begin
    b.b_crashed <- true;
    Httpd.Server.stop b.b_server
  end

let sample_health t =
  Array.iter
    (fun b ->
      (match t.faults with
      | Some fi -> (
          match Fi.decide fi ~site:"cluster.backend" with
          | Some Fi.Shard_crash -> crash_backend b
          | _ -> ())
      | None -> ());
      let breaker = worst_breaker b.b_sup in
      b.b_health <-
        (if b.b_crashed then "down" else Supervisor.breaker_to_string breaker);
      (* Rewind-aware rotation: quarantine ejects, recovery through
         half-open/closed re-admits. *)
      b.b_up <- (not b.b_crashed) && breaker <> Supervisor.Quarantined)
    t.backends

let health_ticker t () =
  let rec loop () =
    if t.running then begin
      Sched.sleep t.cfg.check_interval;
      sample_health t;
      loop ()
    end
  in
  loop ()

(* {2 Data path} *)

let pick_backend t ~avoid =
  let n = Array.length t.backends in
  let rec go tries =
    if tries >= n then None
    else begin
      let b = t.backends.(t.rr mod n) in
      t.rr <- t.rr + 1;
      if b.b_up && b.b_idx <> avoid then Some b else go (tries + 1)
    end
  in
  go 0

let forward t backends_tbl b msg =
  let bc =
    match Hashtbl.find_opt backends_tbl b.b_idx with
    | Some c when Netsim.is_open c && not (Netsim.peer_closed c) -> c
    | other ->
        (match other with
        | Some stale ->
            Netsim.close stale;
            Hashtbl.remove backends_tbl b.b_idx
        | None -> ());
        let c = Netsim.connect t.net ~port:b.b_port in
        Hashtbl.replace backends_tbl b.b_idx c;
        c
  in
  Netsim.send bc msg;
  match
    Netsim.recv_deadline bc ~deadline:(Sched.now () +. t.cfg.forward_timeout)
  with
  | Some r -> Some r
  | None ->
      Netsim.close bc;
      Hashtbl.remove backends_tbl b.b_idx;
      None

let handle_request t backends_tbl c msg =
  Metrics.inc t.c_requests;
  let trace = trace_of_request msg in
  let route_event b kind ~arg =
    Api.with_trace b.b_sd trace (fun () ->
        Api.flight_event b.b_sd ~udi:lb_flight_udi ~arg kind)
  in
  match pick_backend t ~avoid:(-1) with
  | None ->
      Metrics.inc t.c_unavailable;
      Netsim.send c reply_503
  | Some b -> (
      route_event b Flight.Route ~arg:b.b_idx;
      Metrics.inc t.c_routed;
      match forward t backends_tbl b msg with
      | Some r -> Netsim.send c r
      | None -> (
          (* Mid-flight failure: one retry on the next healthy backend.
             GETs are idempotent and retried requests keep their
             X-Request-Id, so a backend journal replay (not the
             balancer) guards against double application. *)
          sample_health t;
          match pick_backend t ~avoid:b.b_idx with
          | None ->
              Metrics.inc t.c_unavailable;
              Netsim.send c reply_503
          | Some b2 -> (
              Metrics.inc t.c_reroutes;
              route_event b2 Flight.Failover ~arg:b.b_idx;
              Metrics.inc t.c_routed;
              match forward t backends_tbl b2 msg with
              | Some r -> Netsim.send c r
              | None ->
                  Metrics.inc t.c_unavailable;
                  Netsim.send c reply_503)))

let worker t widx () =
  let ws = t.worker_sets.(widx) in
  let backends_tbl : (int, Netsim.conn) Hashtbl.t = Hashtbl.create 8 in
  let rec loop () =
    match Netsim.Waitset.wait ws with
    | None -> ()
    | Some c ->
        (match Netsim.try_recv c with
        | Some msg -> handle_request t backends_tbl c msg
        | None ->
            if Netsim.peer_closed c then begin
              Netsim.Waitset.remove ws c;
              Netsim.close c
            end);
        loop ()
  in
  loop ();
  Hashtbl.iter (fun _ c -> Netsim.close c) backends_tbl

let dispatcher t () =
  let next = ref 0 in
  let rec loop () =
    match Netsim.accept t.listener with
    | None -> ()
    | Some c ->
        Netsim.Waitset.add t.worker_sets.(!next mod t.cfg.lb_workers) c;
        incr next;
        loop ()
  in
  loop ()

(* {2 Bring-up} *)

let health_states = [ "closed"; "backoff"; "half-open"; "quarantined"; "down" ]

let make_backend (cfg : config) sched ?faults net i =
  let space = Space.create ~size_mib:cfg.space_mib () in
  let sd = Api.create ~virtual_keys:true space in
  let sup = Supervisor.attach ~policy:cfg.supervisor_policy sd in
  let fs = Httpd.Fs.create space in
  List.iter (fun (path, size) -> Httpd.Fs.add fs ~path ~size) cfg.docs;
  let http_cfg = { cfg.http with Httpd.Server.port = cfg.base_port + i } in
  let sdrad =
    if http_cfg.Httpd.Server.variant = Httpd.Server.Sdrad then Some sd
    else None
  in
  let server =
    Httpd.Server.start sched space ?sdrad ~supervisor:sup ?faults net ~fs
      http_cfg
  in
  {
    b_idx = i;
    b_port = cfg.base_port + i;
    b_sd = sd;
    b_sup = sup;
    b_server = server;
    b_health = "closed";
    b_up = true;
    b_crashed = false;
  }

let start sched ?faults ?metrics net (cfg : config) =
  if cfg.backends <= 0 then
    invalid_arg "Frontend.start: backends must be positive";
  if cfg.lb_workers <= 0 then
    invalid_arg "Frontend.start: lb_workers must be positive";
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  let backends =
    Array.init cfg.backends (fun i -> make_backend cfg sched ?faults net i)
  in
  let t =
    {
      cfg;
      net;
      faults;
      m;
      backends;
      listener = Netsim.listen net ~port:cfg.lb_port;
      worker_sets =
        Array.init cfg.lb_workers (fun _ -> Netsim.Waitset.create ());
      rr = 0;
      running = true;
      c_requests =
        Metrics.counter m ~help:"Requests accepted by the load balancer"
          "cluster_lb_requests_total";
      c_routed =
        Metrics.counter m ~help:"Forwards to httpd backends"
          "cluster_lb_forwards_total";
      c_reroutes =
        Metrics.counter m
          ~help:"Forwards retried on another backend after a failure"
          "cluster_lb_reroutes_total";
      c_unavailable =
        Metrics.counter m
          ~help:"Requests answered 503 with no backend available"
          "cluster_lb_unavailable_total";
    }
  in
  Array.iter
    (fun b ->
      List.iter
        (fun st ->
          Metrics.gauge_fn m
            ~help:"1 when the balancer samples this health state"
            ~labels:[ ("backend", string_of_int b.b_idx); ("state", st) ]
            "cluster_lb_backend_health"
            (fun () -> if b.b_health = st then 1.0 else 0.0))
        health_states)
    t.backends;
  ignore (Sched.spawn sched ~name:"lb.dispatcher" (dispatcher t));
  Array.iteri
    (fun i _ ->
      ignore
        (Sched.spawn sched ~name:(Printf.sprintf "lb.worker-%d" i) (worker t i)))
    t.worker_sets;
  ignore (Sched.spawn sched ~name:"lb.health" (health_ticker t));
  t

let stop t =
  if t.running then begin
    t.running <- false;
    Netsim.close_listener t.listener;
    Array.iter Netsim.Waitset.close t.worker_sets;
    Array.iter
      (fun b -> if not b.b_crashed then Httpd.Server.stop b.b_server)
      t.backends
  end

(* {2 Introspection} *)

let backend_count t = Array.length t.backends
let backend_server t i = t.backends.(i).b_server
let backend_sd t i = t.backends.(i).b_sd
let backend_supervisor t i = t.backends.(i).b_sup
let backend_health t i = t.backends.(i).b_health

let in_rotation t =
  Array.fold_left (fun acc b -> if b.b_up then acc + 1 else acc) 0 t.backends

let routed t = Metrics.counter_value t.c_routed
let reroutes t = Metrics.counter_value t.c_reroutes
let metrics t = t.m
