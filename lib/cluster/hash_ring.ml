(* Consistent-hash ring with virtual nodes.

   The point table is a sorted array rebuilt on membership change —
   membership changes are rare (a failover), lookups are per-request, so
   the array + binary search is the right trade. Hashing is FNV-1a
   folded to 62 bits: deterministic across runs and platforms (OCaml
   ints are 63-bit here), which keeps every routing decision replayable
   from the seed like the rest of the simulation. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

(* Splitmix64 finalizer: FNV-1a alone avalanches poorly on the very
   short ["<m>#<v>"] vnode strings (their points cluster and whole
   members end up owning almost nothing), so the raw hash gets a full
   bit-mixing pass before use. *)
let mix h =
  let h = Int64.logxor h (Int64.shift_right_logical h 30) in
  let h = Int64.mul h 0xbf58476d1ce4e5b9L in
  let h = Int64.logxor h (Int64.shift_right_logical h 27) in
  let h = Int64.mul h 0x94d049bb133111ebL in
  Int64.logxor h (Int64.shift_right_logical h 31)

let hash s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  (* Fold to 62 bits so the point fits a non-negative OCaml int. *)
  Int64.to_int (Int64.logand (mix !h) 0x3FFF_FFFF_FFFF_FFFFL)

type t = {
  vnodes : int;
  mutable members : int list;  (* ascending *)
  mutable points : (int * int) array;  (* (point, member), sorted by point *)
}

let create ?(vnodes = 64) () =
  if vnodes <= 0 then invalid_arg "Hash_ring.create: vnodes must be positive";
  { vnodes; members = []; points = [||] }

let rebuild t =
  let pts =
    List.concat_map
      (fun m ->
        List.init t.vnodes (fun v -> (hash (Printf.sprintf "%d#%d" m v), m)))
      t.members
  in
  (* Ties between distinct members are broken by member id so the table
     is a pure function of the membership set. *)
  t.points <- Array.of_list (List.sort compare pts)

let add t m =
  if not (List.mem m t.members) then begin
    t.members <- List.sort compare (m :: t.members);
    rebuild t
  end

let remove t m =
  if List.mem m t.members then begin
    t.members <- List.filter (fun x -> x <> m) t.members;
    rebuild t
  end

let members t = t.members
let size t = List.length t.members

(* Index of the first point at or after [h], wrapping at the top. *)
let successor t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let route t key =
  if t.points = [||] then failwith "Hash_ring.route: empty ring";
  snd t.points.(successor t (hash key))

let route_n t key n =
  let len = Array.length t.points in
  if len = 0 || n <= 0 then []
  else begin
    let start = successor t (hash key) in
    let seen = ref [] in
    let i = ref 0 in
    while List.length !seen < n && !i < len do
      let m = snd t.points.((start + !i) mod len) in
      if not (List.mem m !seen) then seen := m :: !seen;
      incr i
    done;
    List.rev !seen
  end
