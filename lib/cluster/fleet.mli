(** Sharded multi-monitor kvcache cluster with rewind-aware failover
    (ROADMAP item 1: fleet-scale resilience).

    [start] brings up [shards] complete monitor instances — each with
    its {e own} {!Vmem.Space}, {!Sdrad.Api} monitor, supervisor and
    telemetry registry, i.e. N isolated processes on one simulated host
    fleet — plus a consistent-hash router in front of them, all over one
    {!Netsim}. Clients speak the ordinary kvcache text protocol to the
    router port; the router extracts the key, routes it on a
    {!Hash_ring}, and forwards the raw bytes to the owning shard —
    trailing [trace=] tokens included, so one causal trace id links
    client → router → shard and the router's {!Checkpoint.Flight.Route}
    events land in the shard's flight recorder under that id.

    {2 Health and failover}

    Shards export health derived from their supervisor's breaker states
    ([Closed]/[Backoff]/[Quarantined]) via heartbeats to the router.
    When a shard quarantines — or stops heartbeating because it crashed
    or the link partitioned — the router runs the failover state machine
    ([Serving → Draining → Failed_over]):

    + {b drain}: new traffic pauses, in-flight requests run to their
      reply (or forward deadline);
    + {b fail over}: the shard leaves the ring, so its key ranges fall
      to their clockwise successors;
    + {b re-seed}: every acknowledged keyed write the router logged for
      the shard is replayed — original idempotency key ([id=]) and
      trace token intact — to the key's new owner. The replica's replay
      journal (PR 4) records those rids, so a client retry of an
      already-acked write is answered from the journal instead of
      applying twice: no acked write is lost, none is doubly applied.

    Chaos kinds {!Resilience.Fault_inject.Shard_crash} and
    {!Net_partition} are consulted at the labelled sites
    ["cluster.shard"] and ["cluster.heartbeat"] in each shard's
    heartbeat loop, driving exactly this path under [@chaos].

    Writes without an [id=] idempotency key are journaled by neither
    the shards nor the router's re-seed log: they keep kvcache's plain
    best-effort semantics across a failover. *)

type config = {
  shards : int;
  vnodes : int;  (** ring points per shard *)
  base_port : int;  (** shard [i] listens on [base_port + i] *)
  router_port : int;  (** client-facing port (kvcache text protocol) *)
  hb_port : int;  (** router's heartbeat listener *)
  router_workers : int;
  hb_interval : float;  (** heartbeat period, cycles *)
  hb_timeout : float;
      (** declare a shard down after this long without a beat *)
  forward_timeout : float;
      (** per-forward reply deadline; on expiry the router answers
          [SERVER_ERROR busy] and abandons the backend connection *)
  shed_wait : float;
      (** deadline-aware admission control: a request that already waited
          this long in the router queue (or whose client hung up) is
          answered [SERVER_ERROR busy] at wire speed instead of being
          forwarded — under overload that dead work would starve fresh
          arrivals and collapse goodput. Set it just under the clients'
          per-attempt deadline; counted in [cluster_router_shed_total] *)
  drain_poll : float;  (** poll period of the drain/park loops *)
  oplog_cap : int;
      (** acked keyed writes the router retains per shard for re-seeding;
          evictions are counted in [cluster_oplog_evicted_total], never
          silent *)
  space_mib : int;  (** simulated memory per shard *)
  kv : Kvcache.Server.config;
      (** per-shard server template; [port] is overridden per shard *)
  supervisor_policy : Resilience.Supervisor.policy;
}

val default_config : config
(** 4 shards on ports 12000+, router on 11211 (where single-server
    clients already point), Sdrad-variant shards. *)

type t

val router_flight_udi : int
(** The udi under which the router records {!Checkpoint.Flight.Route} /
    [Failover] events in a shard's flight recorder (distinct from the
    kvcache server's own domains). *)

val start :
  Simkern.Sched.t ->
  ?faults:Resilience.Fault_inject.t ->
  ?metrics:Telemetry.Metrics.t ->
  Netsim.t ->
  config ->
  t
(** Bring up shards, router workers, heartbeat listener and the health
    monitor. Call from inside the simulation (like
    {!Kvcache.Server.start}). [faults] arms the ["cluster.shard"] and
    ["cluster.heartbeat"] chaos sites; [metrics] is the router's
    (cluster-level) registry — fresh and private when omitted.
    @raise Invalid_argument when [shards] is non-positive. *)

val stop : t -> unit
(** Stop the router tier and every still-running shard; threads drain
    and exit. *)

val drain_shard : t -> int -> unit
(** Force the failover state machine on one shard from inside the
    simulation — the same drain → ring-removal → journal re-seed path a
    quarantine heartbeat triggers, without waiting for the health
    monitor to notice. No-op unless the shard is [Serving]. *)

(** {1 Introspection} *)

val shard_count : t -> int
val shard_server : t -> int -> Kvcache.Server.t
val shard_sd : t -> int -> Sdrad.Api.t
val shard_supervisor : t -> int -> Resilience.Supervisor.t

val shard_metrics : t -> int -> Telemetry.Metrics.t
(** The shard's own registry (monitor + supervisor + server series). *)

val shard_state : t -> int -> string
(** Failover state machine position: ["serving"], ["draining"] or
    ["failed-over"]. *)

val shard_health : t -> int -> string
(** Last health the router derived for the shard: a breaker state
    (["closed"], ["backoff"], ["half-open"], ["quarantined"]) or
    ["down"] (missed heartbeats / crash). Also exported as the
    [cluster_shard_health{udi,state}] gauge family. *)

val ring : t -> Hash_ring.t
(** The live routing ring (failed-over shards have been removed). *)

val metrics : t -> Telemetry.Metrics.t
(** The router's cluster-level registry: [cluster_requests_total],
    [cluster_forwards_total], [cluster_routed_total{shard}],
    [cluster_failovers_total],
    [cluster_reseeded_writes_total], [cluster_forward_timeouts_total],
    [cluster_heartbeats_total], [cluster_oplog_evicted_total] and the
    [cluster_shard_health{udi,state}] family. *)

val aggregate_metrics : t -> Telemetry.Metrics.t
(** One fleet-wide view: a fresh registry holding the sum
    ({!Telemetry.Metrics.merge_into}) of the router registry and every
    shard registry — the [sdrad_cli metrics --aggregate] surface. *)

val failovers : t -> int
val reseeded : t -> int
(** Acked writes replayed into replicas across all failovers so far. *)

val routed : t -> int
(** Requests forwarded to shards (including re-routed ones). *)

val forward_timeouts : t -> int

val router_shed : t -> int
(** Requests answered busy without forwarding because they aged past the
    forward deadline in the router queue (or their client hung up):
    deadline-aware admission control, so an overloaded router spends its
    time on attempts whose clients are still listening instead of dead
    work. See [cluster_router_shed_total]. *)
