(* Sharded multi-monitor cluster: N independent kvcache monitor
   instances behind a consistent-hash router, with rewind-aware
   failover.

   Concurrency notes (cooperative scheduler): the failover state machine
   relies on two atomicity facts. First, a router worker's
   freeze-check → ring-lookup → inflight++ sequence contains no
   scheduling point, so the drain loop's [s_inflight = 0] observation
   cannot race with a request that has passed admission but not yet
   registered. Second, [do_failover] freezes the whole router while it
   drains and re-seeds, so no new write can land on a key range while
   its stale oplog entries are still being replayed — the classic
   re-seed/overwrite hazard is excluded by construction rather than by
   per-key versioning. *)

module Sched = Simkern.Sched
module Space = Vmem.Space
module Api = Sdrad.Api
module Supervisor = Resilience.Supervisor
module Fi = Resilience.Fault_inject
module Proto = Kvcache.Proto
module Metrics = Telemetry.Metrics
module Flight = Checkpoint.Flight

type config = {
  shards : int;
  vnodes : int;
  base_port : int;
  router_port : int;
  hb_port : int;
  router_workers : int;
  hb_interval : float;
  hb_timeout : float;
  forward_timeout : float;
  shed_wait : float;
  drain_poll : float;
  oplog_cap : int;
  space_mib : int;
  kv : Kvcache.Server.config;
  supervisor_policy : Supervisor.policy;
}

(* forward_timeout must sit well under the client retry policy's
   attempt_timeout (400k cycles) so a router busy reply, not a client
   timeout, is what triggers the retry. *)
let default_config =
  {
    shards = 4;
    vnodes = 64;
    base_port = 12000;
    router_port = 11211;
    hb_port = 12999;
    router_workers = 4;
    hb_interval = 50_000.0;
    hb_timeout = 250_000.0;
    forward_timeout = 200_000.0;
    shed_wait = 350_000.0;
    drain_poll = 5_000.0;
    oplog_cap = 65536;
    space_mib = 64;
    kv = { Kvcache.Server.default_config with variant = Kvcache.Server.Sdrad };
    supervisor_policy = Supervisor.default_policy;
  }

let router_flight_udi = 9

type route_state = Serving | Draining | Failed_over

(* One acked keyed write, retained verbatim for re-seeding: replaying
   [o_req] (original [id=] and [trace=] tokens included) against the new
   owner lets its replay journal dedup client retries of the same rid. *)
type op_entry = { o_key : string; o_trace : int64; o_req : string }

type shard = {
  s_idx : int;
  s_port : int;
  s_sd : Api.t;
  s_sup : Supervisor.t;
  s_server : Kvcache.Server.t;
  mutable s_state : route_state;
  mutable s_health : string;  (* router-derived view, see shard_health *)
  mutable s_hb_last : float;
  mutable s_hb_breaker : Supervisor.breaker;
  mutable s_partitioned_until : float;  (* shard-side link state *)
  mutable s_crashed : bool;
  mutable s_inflight : int;
  s_oplog : op_entry Queue.t;
  s_routed : Metrics.counter;
}

type t = {
  cfg : config;
  net : Netsim.t;
  faults : Fi.t option;
  m : Metrics.t;
  shards : shard array;
  ring : Hash_ring.t;
  listener : Netsim.listener;
  hb_listener : Netsim.listener;
  worker_sets : Netsim.Waitset.ws array;
  hb_set : Netsim.Waitset.ws;
  mutable freeze : bool;  (* router-global: failover in progress *)
  mutable running : bool;
  c_requests : Metrics.counter;
  c_routed : Metrics.counter;
  c_failovers : Metrics.counter;
  c_reseeded : Metrics.counter;
  c_timeouts : Metrics.counter;
  c_shed : Metrics.counter;
  c_heartbeats : Metrics.counter;
  c_evicted : Metrics.counter;
}

(* {2 Request grammar (router's view)}

   The router parses just enough of the kvcache text protocol to route:
   the verb and first key of the request line. Trailing [id=]/[trace=]
   tokens are the same grammar {!Kvcache.Proto} uses. *)

let first_line s =
  match String.index_opt s '\r' with
  | Some i -> String.sub s 0 i
  | None -> (
      match String.index_opt s '\n' with
      | Some i -> String.sub s 0 i
      | None -> s)

let words line =
  String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

let keyed_verbs = [ "get"; "set"; "add"; "replace"; "delete"; "incr"; "decr" ]
let mutation_verbs = [ "set"; "add"; "replace"; "delete"; "incr"; "decr" ]

let route_key req =
  match words (first_line req) with
  | verb :: key :: _ when List.mem verb keyed_verbs -> Some key
  | _ -> None  (* stats/version/unknown: any serving shard will do *)

let is_mutation req =
  match words (first_line req) with
  | verb :: _ -> List.mem verb mutation_verbs
  | [] -> false

let is_quit req =
  match words (first_line req) with "quit" :: _ -> true | _ -> false

let rid_of_request req =
  if not (is_mutation req) then None
  else
    List.fold_left
      (fun acc w ->
        if String.length w > 3 && String.sub w 0 3 = "id=" then
          Some (String.sub w 3 (String.length w - 3))
        else acc)
      None
      (words (first_line req))

(* A reply the client will treat as a definitive outcome (so the write
   must survive failover). Busy/error replies are retried or surfaced;
   they carry no durability promise. *)
let acked reply =
  match Proto.parse_reply reply with Proto.Failed _ -> false | _ -> true

(* {2 Shard-side helpers} *)

let worst_breaker sup =
  let rank = function
    | Supervisor.Closed -> 0
    | Supervisor.Half_open -> 1
    | Supervisor.Backoff -> 2
    | Supervisor.Quarantined -> 3
  in
  List.fold_left
    (fun acc (_, b) -> if rank b > rank acc then b else acc)
    Supervisor.Closed (Supervisor.states sup)

let link_up s = (not s.s_crashed) && Sched.now () >= s.s_partitioned_until

let crash_shard s =
  if not s.s_crashed then begin
    s.s_crashed <- true;
    Kvcache.Server.stop s.s_server
  end

(* {2 Oplog} *)

let oplog_push t s e =
  if Queue.length s.s_oplog >= t.cfg.oplog_cap then begin
    ignore (Queue.pop s.s_oplog);
    Metrics.inc t.c_evicted
  end;
  Queue.push e s.s_oplog

(* {2 Failover} *)

(* Replay the drained shard's acked writes to their new owners (the
   ring has already forgotten the shard, so [route] yields the clockwise
   successor). Runs under [t.freeze], so the replies we replay cannot be
   overwritten by concurrent client traffic.

   The replay must not drop an acked write just because the chosen
   replica is itself in trouble at that instant: a partitioned replica's
   outage is finite (the model knows when the link heals), so the loop
   waits it out; a {e crashed} replica will never answer, so its own
   failover cascades right here — one ring hop deeper, its oplog (which
   already holds everything replayed into it so far) moving on to the
   next successor — and the entry retries against the shrunken ring. *)
let rec reseed t sick =
  let conns = Hashtbl.create 4 in
  let conn_to tgt =
    match Hashtbl.find_opt conns tgt.s_idx with
    | Some c when Netsim.is_open c && not (Netsim.peer_closed c) -> c
    | _ ->
        let c = Netsim.connect t.net ~port:tgt.s_port in
        Hashtbl.replace conns tgt.s_idx c;
        c
  in
  let rec replay e tries =
    if tries > 0 && Hash_ring.size t.ring > 0 then begin
      let tgt = t.shards.(Hash_ring.route t.ring e.o_key) in
      if (not tgt.s_crashed) && not (link_up tgt) then begin
        (* Known-finite link outage: wait for the heal, then retry. *)
        Sched.sleep
          (Float.max t.cfg.drain_poll
             (tgt.s_partitioned_until -. Sched.now ()));
        replay e tries
      end
      else if tgt.s_crashed then begin
        (* Dead replica discovered mid-re-seed: cascade its failover
           before this entry is lost with it. *)
        if tgt.s_state = Serving then failover_locked t tgt;
        replay e (tries - 1)
      end
      else begin
        let c = conn_to tgt in
        Netsim.send c e.o_req;
        match
          Netsim.recv_deadline c
            ~deadline:(Sched.now () +. t.cfg.forward_timeout)
        with
        | Some r when acked r ->
            Metrics.inc t.c_reseeded;
            oplog_push t tgt e;
            Api.with_trace tgt.s_sd e.o_trace (fun () ->
                Api.flight_event tgt.s_sd ~udi:router_flight_udi
                  ~arg:sick.s_idx Flight.Failover)
        | Some _ -> ()
        | None ->
            Metrics.inc t.c_timeouts;
            Netsim.close c;
            Hashtbl.remove conns tgt.s_idx;
            replay e (tries - 1)
      end
    end
  in
  Queue.iter (fun e -> replay e 3) sick.s_oplog;
  Hashtbl.iter (fun _ c -> Netsim.close c) conns;
  Queue.clear sick.s_oplog

(* The failover state machine proper; the caller holds [t.freeze]. *)
and failover_locked t s =
  s.s_state <- Draining;
  Metrics.inc t.c_failovers;
  (* Drain: admitted requests finish (reply or forward deadline). *)
  while s.s_inflight > 0 do
    Sched.sleep t.cfg.drain_poll
  done;
  Hash_ring.remove t.ring s.s_idx;
  reseed t s;
  s.s_state <- Failed_over

let do_failover t s =
  if t.running && s.s_state = Serving then begin
    t.freeze <- true;
    failover_locked t s;
    t.freeze <- false
  end

(* {2 Router data path} *)

let handle_request t backends c msg =
  Metrics.inc t.c_requests;
  (* Admission: park while a failover is in progress or the owning shard
     is mid-drain; give up only when the ring is empty. *)
  let rec pick () =
    if not t.running then None
    else if t.freeze then begin
      Sched.sleep t.cfg.drain_poll;
      pick ()
    end
    else if Hash_ring.size t.ring = 0 then None
    else
      let idx =
        match route_key msg with
        | Some k -> Hash_ring.route t.ring k
        | None -> List.hd (Hash_ring.members t.ring)
      in
      let s = t.shards.(idx) in
      if s.s_state <> Serving then begin
        Sched.sleep t.cfg.drain_poll;
        pick ()
      end
      else Some s
  in
  match pick () with
  | None -> Netsim.send c Proto.server_error_busy
  | Some s ->
      let trace = Proto.trace_of_string msg in
      (* The hop lands in the shard's flight recorder under the
         client's trace id: sdrad_cli incident sees router → shard. *)
      Api.with_trace s.s_sd trace (fun () ->
          Api.flight_event s.s_sd ~udi:router_flight_udi ~arg:s.s_idx
            Flight.Route);
      Metrics.inc t.c_routed;
      Metrics.inc s.s_routed;
      s.s_inflight <- s.s_inflight + 1;
      let reply =
        if not (link_up s) then begin
          (* Partitioned/crashed link: the forward vanishes; model the
             client-visible outcome — a full deadline wait. *)
          Sched.sleep t.cfg.forward_timeout;
          None
        end
        else begin
          let bc =
            match Hashtbl.find_opt backends s.s_idx with
            | Some bc when Netsim.is_open bc && not (Netsim.peer_closed bc)
              ->
                bc
            | other ->
                (match other with
                | Some stale ->
                    Netsim.close stale;
                    Hashtbl.remove backends s.s_idx
                | None -> ());
                let bc = Netsim.connect t.net ~port:s.s_port in
                Hashtbl.replace backends s.s_idx bc;
                bc
          in
          Netsim.send bc msg;
          match
            Netsim.recv_deadline bc
              ~deadline:(Sched.now () +. t.cfg.forward_timeout)
          with
          | Some r -> Some r
          | None ->
              (* Reply may still arrive later; abandon the connection so
                 it cannot be mis-paired with the next forward. *)
              Netsim.close bc;
              Hashtbl.remove backends s.s_idx;
              None
        end
      in
      s.s_inflight <- s.s_inflight - 1;
      (match reply with
      | Some r ->
          (match (rid_of_request msg, route_key msg) with
          | Some _, Some key when acked r ->
              oplog_push t s { o_key = key; o_trace = trace; o_req = msg }
          | _ -> ());
          Netsim.send c r
      | None ->
          Metrics.inc t.c_timeouts;
          Netsim.send c Proto.server_error_busy)

let worker t widx () =
  let ws = t.worker_sets.(widx) in
  let backends : (int, Netsim.conn) Hashtbl.t = Hashtbl.create 8 in
  let rec loop () =
    match Netsim.Waitset.wait ws with
    | None -> ()
    | Some c ->
        (match Netsim.recv_with_arrival c with
        | Some (msg, arrival) ->
            if is_quit msg then begin
              Netsim.Waitset.remove ws c;
              Netsim.close c
            end
            else if
              Sched.now () -. arrival > t.cfg.shed_wait
              || Netsim.peer_closed c
            then begin
              (* Staleness shed: a request that aged past [shed_wait] in
                 the router queue (or whose client already hung up)
                 belongs to an attempt whose deadline a forward can no
                 longer meet — forwarding it is dead work that starves
                 fresh arrivals and collapses goodput under overload.
                 Answer busy at wire speed instead; the retry rides in
                 on a fresh attempt the shard can still meet. *)
              Metrics.inc t.c_shed;
              Netsim.send c Proto.server_error_busy
            end
            else handle_request t backends c msg
        | None ->
            if Netsim.peer_closed c then begin
              Netsim.Waitset.remove ws c;
              Netsim.close c
            end);
        loop ()
  in
  loop ();
  Hashtbl.iter (fun _ c -> Netsim.close c) backends

(* One of a pool of acceptor fibers (one per router worker): a single
   acceptor charging one syscall per accept caps connection setup at
   ~0.3 conns/kcycle, and a fleet-scale client herd connecting at run
   start would queue behind it long enough for its first requests to age
   past the shed deadline before any worker ever saw the connection.
   [next] is shared so assignment stays round-robin across the pool. *)
let dispatcher t next () =
  let rec loop () =
    match Netsim.accept t.listener with
    | None -> ()
    | Some c ->
        Netsim.Waitset.add t.worker_sets.(!next mod t.cfg.router_workers) c;
        incr next;
        loop ()
  in
  loop ()

(* {2 Heartbeats} *)

(* Shard-side reporter: every hb_interval, consult the chaos sites, then
   (if the link is up) beat with the worst supervisor breaker state.
   Both fault kinds act here because the heartbeat loop is the shard's
   liveness surface — a crash also stops the kvcache server, a
   partition also blacks out the data path via [link_up]. *)
let reporter t s conn () =
  let rec loop () =
    if t.running && not s.s_crashed then begin
      Sched.sleep t.cfg.hb_interval;
      (match t.faults with
      | Some fi -> (
          (match Fi.decide fi ~site:"cluster.shard" with
          | Some Fi.Shard_crash -> crash_shard s
          | _ -> ());
          if not s.s_crashed then
            match Fi.decide fi ~site:"cluster.heartbeat" with
            | Some (Fi.Net_partition d) ->
                s.s_partitioned_until <- Sched.now () +. d
            | _ -> ())
      | None -> ());
      if t.running && link_up s then
        Netsim.send conn
          (Printf.sprintf "hb %d %s" s.s_idx
             (Supervisor.breaker_to_string (worst_breaker s.s_sup)));
      loop ()
    end
  in
  loop ();
  Netsim.close conn

let hb_accept t () =
  let rec loop () =
    match Netsim.accept t.hb_listener with
    | None -> ()
    | Some c ->
        Netsim.Waitset.add t.hb_set c;
        loop ()
  in
  loop ()

let breaker_of_string = function
  | "backoff" -> Supervisor.Backoff
  | "quarantined" -> Supervisor.Quarantined
  | "half-open" -> Supervisor.Half_open
  | _ -> Supervisor.Closed

let hb_reader t () =
  let rec loop () =
    match Netsim.Waitset.wait t.hb_set with
    | None -> ()
    | Some c ->
        (match Netsim.try_recv c with
        | Some msg -> (
            match words msg with
            | [ "hb"; idx; st ] -> (
                match int_of_string_opt idx with
                | Some i when i >= 0 && i < Array.length t.shards ->
                    let s = t.shards.(i) in
                    s.s_hb_last <- Sched.now ();
                    s.s_hb_breaker <- breaker_of_string st;
                    Metrics.inc t.c_heartbeats
                | _ -> ())
            | _ -> ())
        | None ->
            if Netsim.peer_closed c then begin
              Netsim.Waitset.remove t.hb_set c;
              Netsim.close c
            end);
        loop ()
  in
  loop ()

(* Router-side health monitor: refresh every shard's derived health from
   the heartbeat record and run failover on quarantine or silence. *)
let monitor t () =
  let rec loop () =
    if t.running then begin
      Sched.sleep t.cfg.hb_interval;
      let now = Sched.now () in
      Array.iter
        (fun s ->
          s.s_health <-
            (if now -. s.s_hb_last > t.cfg.hb_timeout then "down"
             else Supervisor.breaker_to_string s.s_hb_breaker))
        t.shards;
      Array.iter
        (fun s ->
          if
            s.s_state = Serving
            && (s.s_health = "down" || s.s_hb_breaker = Supervisor.Quarantined)
          then do_failover t s)
        t.shards;
      loop ()
    end
  in
  loop ()

(* {2 Bring-up} *)

let health_states = [ "closed"; "backoff"; "half-open"; "quarantined"; "down" ]

let make_shard t_cfg sched ?faults net m i =
  let space = Space.create ~size_mib:t_cfg.space_mib () in
  let registry = Metrics.create () in
  let sd = Api.create ~metrics:registry ~virtual_keys:true space in
  let sup = Supervisor.attach ~policy:t_cfg.supervisor_policy sd in
  let kv_cfg = { t_cfg.kv with Kvcache.Server.port = t_cfg.base_port + i } in
  let sdrad =
    if kv_cfg.Kvcache.Server.variant = Kvcache.Server.Sdrad then Some sd
    else None
  in
  let server =
    Kvcache.Server.start sched space ?sdrad ~supervisor:sup ?faults net kv_cfg
  in
  {
    s_idx = i;
    s_port = t_cfg.base_port + i;
    s_sd = sd;
    s_sup = sup;
    s_server = server;
    s_state = Serving;
    s_health = "closed";
    s_hb_last = Sched.now ();
    s_hb_breaker = Supervisor.Closed;
    s_partitioned_until = 0.0;
    s_crashed = false;
    s_inflight = 0;
    s_oplog = Queue.create ();
    s_routed =
      Metrics.counter m
        ~help:"Requests forwarded to each shard"
        ~labels:[ ("shard", string_of_int i) ]
        "cluster_routed_total";
  }

let start sched ?faults ?metrics net (cfg : config) =
  if cfg.shards <= 0 then
    invalid_arg "Fleet.start: shards must be positive";
  if cfg.router_workers <= 0 then
    invalid_arg "Fleet.start: router_workers must be positive";
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  let shards =
    Array.init cfg.shards (fun i -> make_shard cfg sched ?faults net m i)
  in
  let ring = Hash_ring.create ~vnodes:cfg.vnodes () in
  Array.iter (fun s -> Hash_ring.add ring s.s_idx) shards;
  let t =
    {
      cfg;
      net;
      faults;
      m;
      shards;
      ring;
      listener = Netsim.listen net ~port:cfg.router_port;
      hb_listener = Netsim.listen net ~port:cfg.hb_port;
      worker_sets =
        Array.init cfg.router_workers (fun _ -> Netsim.Waitset.create ());
      hb_set = Netsim.Waitset.create ();
      freeze = false;
      running = true;
      c_requests =
        Metrics.counter m ~help:"Requests accepted by the router tier"
          "cluster_requests_total";
      c_routed =
        Metrics.counter m ~help:"Requests forwarded to shards"
          "cluster_forwards_total";
      c_failovers =
        Metrics.counter m ~help:"Failover state machines run to completion"
          "cluster_failovers_total";
      c_reseeded =
        Metrics.counter m
          ~help:"Acked writes replayed into replicas during failover"
          "cluster_reseeded_writes_total";
      c_timeouts =
        Metrics.counter m
          ~help:"Forwards abandoned at the per-forward reply deadline"
          "cluster_forward_timeouts_total";
      c_shed =
        Metrics.counter m
          ~help:
            "Requests answered busy without forwarding because they aged \
             past the forward deadline in the router queue"
          "cluster_router_shed_total";
      c_heartbeats =
        Metrics.counter m ~help:"Shard heartbeats received by the router"
          "cluster_heartbeats_total";
      c_evicted =
        Metrics.counter m
          ~help:"Re-seed oplog entries evicted at capacity (durability gap)"
          "cluster_oplog_evicted_total";
    }
  in
  Array.iter
    (fun s ->
      List.iter
        (fun st ->
          Metrics.gauge_fn m
            ~help:"1 when the router derives this health state for the shard"
            ~labels:[ ("udi", string_of_int s.s_idx); ("state", st) ]
            "cluster_shard_health"
            (fun () -> if s.s_health = st then 1.0 else 0.0))
        health_states)
    t.shards;
  (* Fibers spawned below inherit this fiber's clock, which has just paid
     for the whole bring-up. Re-base every shard's heartbeat record on it:
     the records were stamped mid-bring-up, and the monitor's first tick
     must not read bring-up time as heartbeat silence. *)
  let t0 = Sched.now () in
  Array.iter (fun s -> s.s_hb_last <- t0) t.shards;
  let next = ref 0 in
  for d = 0 to cfg.router_workers - 1 do
    ignore
      (Sched.spawn sched
         ~name:(Printf.sprintf "cluster.dispatcher%d" d)
         (dispatcher t next))
  done;
  Array.iteri
    (fun i _ ->
      ignore
        (Sched.spawn sched
           ~name:(Printf.sprintf "cluster.worker-%d" i)
           (worker t i)))
    t.worker_sets;
  ignore (Sched.spawn sched ~name:"cluster.hb-accept" (hb_accept t));
  ignore (Sched.spawn sched ~name:"cluster.hb-reader" (hb_reader t));
  ignore (Sched.spawn sched ~name:"cluster.monitor" (monitor t));
  Array.iter
    (fun s ->
      let conn = Netsim.connect t.net ~port:cfg.hb_port in
      ignore
        (Sched.spawn sched
           ~name:(Printf.sprintf "cluster.hb-%d" s.s_idx)
           (reporter t s conn)))
    t.shards;
  t

let stop t =
  if t.running then begin
    t.running <- false;
    Netsim.close_listener t.listener;
    Netsim.close_listener t.hb_listener;
    Array.iter Netsim.Waitset.close t.worker_sets;
    Netsim.Waitset.close t.hb_set;
    Array.iter
      (fun s -> if not s.s_crashed then Kvcache.Server.stop s.s_server)
      t.shards
  end

let drain_shard t i = do_failover t t.shards.(i)

(* {2 Introspection} *)

let shard_count t = Array.length t.shards
let shard_server t i = t.shards.(i).s_server
let shard_sd t i = t.shards.(i).s_sd
let shard_supervisor t i = t.shards.(i).s_sup
let shard_metrics t i = Api.metrics t.shards.(i).s_sd

let shard_state t i =
  match t.shards.(i).s_state with
  | Serving -> "serving"
  | Draining -> "draining"
  | Failed_over -> "failed-over"

let shard_health t i = t.shards.(i).s_health
let ring t = t.ring
let metrics t = t.m

let aggregate_metrics t =
  let dst = Metrics.create () in
  Metrics.merge_into ~dst t.m;
  Array.iter (fun s -> Metrics.merge_into ~dst (Api.metrics s.s_sd)) t.shards;
  dst

let failovers t = Metrics.counter_value t.c_failovers
let reseeded t = Metrics.counter_value t.c_reseeded
let routed t = Metrics.counter_value t.c_routed
let forward_timeouts t = Metrics.counter_value t.c_timeouts
let router_shed t = Metrics.counter_value t.c_shed
