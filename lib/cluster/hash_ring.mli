(** Consistent-hash ring with virtual nodes — the kvcache router's key →
    shard map.

    Each member is placed at [vnodes] deterministic points on a 62-bit
    ring (FNV-1a over ["<member>#<v>"] — the hash family
    {!Telemetry.Context} uses — plus a splitmix64 finalizing mix, so
    placement is a pure function of the membership: no randomness, no
    wall clock). A key routes to the member owning the first point at or
    clockwise after the key's hash.

    The property that makes this the right router map for failover: when
    one of [N] members leaves (or joins), only the keys owned by the
    affected ranges move — about [K/N] of [K] keys, not all of them —
    and on removal every surviving key keeps its owner. The cluster
    relies on that stability twice: a failover only re-seeds the drained
    shard's own writes, and a membership change never invalidates the
    placement of healthy shards' data. *)

type t

val create : ?vnodes:int -> unit -> t
(** An empty ring. [vnodes] (default 64) is the number of points each
    member gets; more points smooth the per-member load spread at the
    cost of a larger sorted point table.
    @raise Invalid_argument when [vnodes] is non-positive. *)

val add : t -> int -> unit
(** Add a member (idempotent). *)

val remove : t -> int -> unit
(** Remove a member (idempotent); the departed member's ranges fall to
    their clockwise successors. *)

val members : t -> int list
(** Current members, ascending. *)

val size : t -> int

val route : t -> string -> int
(** Owner of a key. @raise Failure on an empty ring. *)

val route_n : t -> string -> int -> int list
(** The first [n] {e distinct} members clockwise from the key's point —
    the owner first, then the replica preference order. Shorter than [n]
    when the ring has fewer members. *)

val hash : string -> int
(** The ring's point hash (FNV-1a folded to 62 bits), exposed for
    tests. *)
