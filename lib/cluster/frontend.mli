(** Front-tier load balancer for the httpd fleet — the web half of the
    cluster (ROADMAP item 1).

    [start] brings up [backends] complete httpd monitor instances (each
    with its own {!Vmem.Space}, {!Sdrad.Api}, supervisor and document
    tree) and a round-robin load balancer in front of them. Clients
    speak ordinary HTTP to the balancer port; requests are forwarded
    verbatim — [Traceparent] headers included, so the trace id minted by
    the client links balancer → backend, and the balancer's
    {!Checkpoint.Flight.Route} / [Failover] events land in the backend's
    flight recorder under it.

    {2 Health and rotation}

    Unlike the kvcache tier (whose shards heartbeat over the network),
    the balancer colocates with its backends and samples each
    supervisor's worst breaker state directly every [check_interval].
    A backend leaves the rotation while quarantined (or crashed — the
    ["cluster.backend"] chaos site arms
    {!Resilience.Fault_inject.Shard_crash} here) and {e re-enters} it
    when the breaker recovers through half-open: rewind-aware rotation,
    not permanent ejection, because an httpd backend holds no keyed
    state that would need re-seeding.

    A forward that dies mid-flight (timeout, backend crash) is retried
    once on the next healthy backend — recorded as a
    {!Checkpoint.Flight.Failover} event — before the balancer gives up
    and answers [503]. *)

type config = {
  backends : int;
  base_port : int;  (** backend [i] listens on [base_port + i] *)
  lb_port : int;
  lb_workers : int;
  forward_timeout : float;
  check_interval : float;  (** health-sampling period, cycles *)
  space_mib : int;
  docs : (string * int) list;  (** (path, bytes) served by every backend *)
  http : Httpd.Server.config;
      (** per-backend server template; [port] is overridden per backend *)
  supervisor_policy : Resilience.Supervisor.policy;
}

val default_config : config
(** 3 Sdrad-variant backends on ports 8100+, balancer on 8080 (where
    single-server {!Workload.Http_load} clients already point). *)

type t

val lb_flight_udi : int
(** The udi under which the balancer records its [Route]/[Failover]
    events in a backend's flight recorder. *)

val start :
  Simkern.Sched.t ->
  ?faults:Resilience.Fault_inject.t ->
  ?metrics:Telemetry.Metrics.t ->
  Netsim.t ->
  config ->
  t
(** Call from inside the simulation. [faults] arms ["cluster.backend"];
    [metrics] receives the [cluster_lb_*] series.
    @raise Invalid_argument when [backends] is non-positive. *)

val stop : t -> unit

val backend_count : t -> int
val backend_server : t -> int -> Httpd.Server.t
val backend_sd : t -> int -> Sdrad.Api.t
val backend_supervisor : t -> int -> Resilience.Supervisor.t

val backend_health : t -> int -> string
(** Last sampled health: a breaker state or ["down"]. Exported as
    [cluster_lb_backend_health{backend,state}]. *)

val in_rotation : t -> int
(** Backends currently eligible for new requests. *)

val routed : t -> int
val reroutes : t -> int
(** Forwards retried on another backend after a mid-flight failure. *)

val metrics : t -> Telemetry.Metrics.t
