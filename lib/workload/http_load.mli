(** ApacheBench-style HTTP load generator (§V-B): a fixed number of
    concurrent keep-alive connections all requesting the same document;
    throughput is requests per (virtual) second. If a connection is
    dropped (worker crash), the client reconnects and the failed request
    is counted. *)

type config = {
  connections : int;  (** paper: 75 concurrent connections *)
  requests_per_conn : int;
  path : string;
  port : int;
  client_cycles : float;  (** per-request client-side work *)
  retry : Resilience.Retry.policy option;
      (** when set, each request goes through a {!Resilience.Retry}
          engine: per-attempt deadlines, decorrelated-jitter backoff, a
          retry budget, and an [X-Request-Id] header naming the logical
          request so server-side replay journaling applies. 503 replies
          (quarantine backoff or load shedding) are retried. *)
  seed : int;  (** jitter seed for the retry engines *)
  arrival_interval : float;
      (** [> 0.0]: open-loop arrivals — requests fire on a fleet-wide
          pre-scheduled grid with this inter-arrival gap in cycles rather
          than back-to-back per connection, so offered load is independent
          of server responsiveness (see {!Ycsb.config.arrival_interval}).
          [0.0] (default): ApacheBench's closed-loop behaviour. *)
}

val default_config : config

type results = {
  ok : int;
  failures : int;
  retries : int;  (** retry attempts across all connections *)
  cycles : float;
}

val launch :
  Simkern.Sched.t ->
  Netsim.t ->
  config ->
  on_done:(unit -> unit) ->
  unit ->
  unit -> results
(** Same calling convention as {!Ycsb.launch}: returns a thunk to read
    after the simulation completes. *)

val request : path:string -> string
val request_with_headers : path:string -> (string * string) list -> string
val is_200 : string -> bool
