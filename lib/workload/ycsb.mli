(** YCSB-style closed-loop load generator for the key-value cache (§V-A).

    Two phases, as in the paper's Figure 4 experiment: a {e load} phase
    that populates the store with [records] key-value pairs, then a
    {e run} phase issuing [operations] requests with a Zipfian key
    distribution and a configurable read/update mix (the paper uses 1 KiB
    values, 95/5 read/update, and measures both phases).

    Clients are closed-loop by default: each waits for the reply before
    issuing the next request, so with enough server threads the client
    fleet becomes the bottleneck — reproducing the paper's observation
    that SDRaD's overhead shrinks as worker threads are added. Setting
    [arrival_interval] switches the run phase to open-loop arrivals (see
    the field) for cluster-scale experiments with 10⁴+ clients. *)

type distribution =
  | Zipfian
  | Uniform
  | Latest  (** skewed towards the most recently inserted records *)

type config = {
  records : int;
  value_size : int;
  read_fraction : float;
  operations : int;
  clients : int;
  distribution : distribution;
  insert_new : bool;
      (** writes insert fresh records (workload D) instead of updating
          existing ones *)
  zipf_theta : float;
  port : int;
  seed : int;
  client_cycles : float;
      (** per-operation client-side work (YCSB bookkeeping, formatting) *)
  retry : Resilience.Retry.policy option;
      (** when set, run-phase clients issue requests through a
          {!Resilience.Retry} engine: per-attempt deadlines over virtual
          time, decorrelated-jitter backoff, and a retry budget. Writes
          carry an idempotency key ([id=...]) so a retried update that
          already committed is answered from the server's replay journal
          instead of applying twice. *)
  arrival_interval : float;
      (** [> 0.0] switches the run phase from closed-loop to {e open-loop}
          (partly-open) arrivals: operations fire on a fleet-wide
          pre-scheduled grid with this inter-arrival gap in cycles —
          offered load is [1/arrival_interval] ops per cycle regardless of
          how fast the server answers — and each operation's latency is
          measured from its {e scheduled} arrival, so queueing delay
          during a stall (e.g. a failover drain) lands in the tail instead
          of being absorbed by the client's think time (no coordinated
          omission). With tens of thousands of [clients], each client is
          one logical session of the open-loop fleet. [0.0] (default):
          the paper's closed-loop behaviour. *)
}

val default_config : config
(** 2000 records of 1 KiB, 10000 operations, 95/5 mix, 16 clients,
    Zipfian theta 0.99 — the paper's Figure 4 setup (workload B). *)

val workload_a : config
(** YCSB core workload A: 50/50 read/update, Zipfian. *)

val workload_b : config
(** YCSB core workload B: 95/5 read/update, Zipfian (the paper's). *)

val workload_c : config
(** YCSB core workload C: 100% read, Zipfian. *)

val workload_d : config
(** YCSB core workload D: 95/5 read/insert, reads skewed to the latest
    records. *)

type results = {
  load_ops : int;
  load_cycles : float;
  run_ops : int;
  run_cycles : float;
  failures : int;  (** requests with no or error replies (dropped conns) *)
  retries : int;
      (** run-phase retry attempts across all clients (0 without a retry
          policy) *)
  run_latencies : float list;
      (** client-observed round-trip time of every run-phase operation, in
          cycles — for the p50/p95/p99 tail reporting YCSB does *)
}

val launch :
  Simkern.Sched.t ->
  Netsim.t ->
  config ->
  on_done:(unit -> unit) ->
  unit ->
  unit -> results
(** [launch sched net cfg ~on_done ()] spawns the orchestrator (which
    spawns the client fleet) and returns a thunk to call {e after}
    [Sched.run] completes. [on_done] runs inside the simulation once all
    clients finish — use it to stop the server so the simulation can
    drain. *)
