module Sched = Simkern.Sched
module Rng = Simkern.Rng
module Retry = Resilience.Retry

type distribution = Zipfian | Uniform | Latest

type config = {
  records : int;
  value_size : int;
  read_fraction : float;
  operations : int;
  clients : int;
  distribution : distribution;
  insert_new : bool;
  zipf_theta : float;
  port : int;
  seed : int;
  client_cycles : float;
  retry : Retry.policy option;
  arrival_interval : float;
}

let default_config =
  {
    records = 2_000;
    value_size = 1024;
    read_fraction = 0.95;
    operations = 10_000;
    clients = 16;
    distribution = Zipfian;
    insert_new = false;
    zipf_theta = 0.99;
    port = 11211;
    seed = 42;
    client_cycles = 2_000.0;
    retry = None;
    arrival_interval = 0.0;
  }

let workload_a = { default_config with read_fraction = 0.5 }
let workload_b = default_config
let workload_c = { default_config with read_fraction = 1.0 }

let workload_d =
  { default_config with distribution = Latest; insert_new = true }

type results = {
  load_ops : int;
  load_cycles : float;
  run_ops : int;
  run_cycles : float;
  failures : int;
  retries : int;
  run_latencies : float list;
}

let key_of i = Printf.sprintf "user%08d" i

(* One deterministic value body per config; per-key uniqueness comes from
   a stamped prefix, so we avoid generating megabytes of random data. *)
let value_for ~base ~value_size i =
  let stamp = Printf.sprintf "<%08d>" i in
  if value_size <= String.length stamp then String.sub stamp 0 value_size
  else stamp ^ String.sub base 0 (value_size - String.length stamp)

let request c req =
  Netsim.send c req;
  Netsim.recv c

let launch sched net cfg ~on_done () =
  let results = ref None in
  let failures = ref 0 in
  let fail_lock = Sched.Mutex.create () in
  let bump_failures () =
    Sched.Mutex.with_lock fail_lock (fun () -> incr failures)
  in
  let base_rng = Rng.create cfg.seed in
  let base_value = Bytes.to_string (Rng.bytes base_rng (max 16 cfg.value_size)) in
  let retry_total = ref 0 in
  (* Per-client I/O helpers: a reconnecting connection and, when a retry
     policy is configured, a request path with per-attempt deadlines —
     without one, a reply the fault hook dropped would block the client
     forever. [mk_req] builds the wire request from the attempt's
     idempotency key so every retry of one logical op reuses the same
     rid. *)
  let client_io ~name ~salt i =
    (* The connection is made lazily, on first use: a fleet of 10⁴
       clients connecting the instant the run phase opens would herd
       every setup into one burst, and the requests already sent behind
       that burst age out before any server worker sees the connection.
       Deferring to first issue spreads setup across the arrival grid. *)
    let conn = ref None in
    let eng =
      Option.map
        (fun policy ->
          Retry.create policy
            ~rng:(Rng.create (cfg.seed + (salt * i) + 13))
            ~name:(Printf.sprintf "%s%d" name i))
        cfg.retry
    in
    let live () =
      match !conn with
      | Some c when Netsim.is_open c && not (Netsim.peer_closed c) -> c
      | prev ->
          Option.iter Netsim.close prev;
          let c = Netsim.connect net ~port:cfg.port in
          conn := Some c;
          c
    in
    let issue mk_req =
      match eng with
      | None -> request (live ()) (mk_req ~rid:None ~trace:0L)
      | Some eng -> (
          match
            Retry.execute_ctx eng (fun ~ctx ~rid ~attempt:_ ~deadline ->
                let c = live () in
                Netsim.send c
                  (mk_req ~rid:(Some rid)
                     ~trace:(Telemetry.Context.trace ctx));
                match Netsim.recv_deadline c ~deadline with
                | Some r when r = Kvcache.Proto.server_error_busy ->
                    Error (`Retry "busy")
                | Some r -> Ok r
                | None ->
                    (* Timed out: the reply may still be in flight, and a
                       request/response stream cannot resynchronize once a
                       response is unaccounted for — abandon the
                       connection so a stale reply can never be taken for
                       a later operation's answer. *)
                    Netsim.close c;
                    Error (`Retry "timeout"))
          with
          | Ok r -> Some r
          | Error _ -> None)
    in
    let finish () =
      (match eng with
      | Some e ->
          Sched.Mutex.with_lock fail_lock (fun () ->
              retry_total := !retry_total + Retry.retries e)
      | None -> ());
      Option.iter Netsim.close !conn
    in
    (issue, finish, eng <> None)
  in
  let load_client i () =
    let per = cfg.records / cfg.clients in
    let lo = i * per in
    let hi = if i = cfg.clients - 1 then cfg.records else lo + per in
    let issue, finish, retrying = client_io ~name:"yl" ~salt:9000 i in
    let rec go k =
      if k < hi then begin
        Sched.charge cfg.client_cycles;
        let value = value_for ~base:base_value ~value_size:cfg.value_size k in
        (* Loads are idempotent (same key, same value), so no rid; the
           trace token still links retried loads to their op. *)
        let req ~rid:_ ~trace =
          Kvcache.Proto.fmt_storage "set" ~trace ~key:(key_of k) ~flags:0
            ~value ()
        in
        match issue req with
        | Some r when Kvcache.Proto.parse_reply r = Kvcache.Proto.Stored ->
            go (k + 1)
        | Some _ | None ->
            bump_failures ();
            if retrying then go (k + 1)
      end
    in
    go lo;
    finish ()
  in
  let latencies : float list ref array = Array.init cfg.clients (fun _ -> ref []) in
  (* Highest key inserted so far, shared between clients (workload D). *)
  let key_count = ref cfg.records in
  let key_lock = Sched.Mutex.create () in
  (* Open-loop mode: the run phase's arrivals are pre-scheduled on a
     fleet-wide grid (client [i]'s op [k] fires at
     [run_start + interval * (k * clients + i)]), and latency is measured
     from the {e scheduled} arrival — a late reply delays nothing and
     hides nothing (no coordinated omission), which is what makes p99
     honest when a shard is draining. *)
  let run_start = ref 0.0 in
  let run_client i () =
    let rng = Rng.create (cfg.seed + (1000 * i) + 7) in
    let zipf = Zipf.create rng ~n:cfg.records ~theta:cfg.zipf_theta in
    let pick () =
      match cfg.distribution with
      | Zipfian -> Zipf.next zipf
      | Uniform -> Rng.int rng cfg.records
      | Latest ->
          (* The most popular record is the most recent one. *)
          let n = !key_count in
          max 0 (n - 1 - Zipf.next zipf)
    in
    let fresh_key () =
      Sched.Mutex.with_lock key_lock (fun () ->
          let k = !key_count in
          key_count := k + 1;
          k)
    in
    let per = cfg.operations / cfg.clients in
    let issue, finish, retrying = client_io ~name:"y" ~salt:5000 i in
    let samples = latencies.(i) in
    let rec go k =
      if k < per then begin
        let t0 =
          if cfg.arrival_interval > 0.0 then begin
            let slot =
              !run_start
              +. (cfg.arrival_interval
                 *. float_of_int ((k * cfg.clients) + i))
            in
            let now = Sched.now () in
            if slot > now then Sched.sleep (slot -. now);
            slot
          end
          else Sched.now ()
        in
        Sched.charge cfg.client_cycles;
        let reply =
          if Rng.float rng < cfg.read_fraction then
            let key = key_of (pick ()) in
            issue (fun ~rid:_ ~trace -> Kvcache.Proto.fmt_get ~trace key)
          else
            let target = if cfg.insert_new then fresh_key () else pick () in
            let key = key_of target in
            let value =
              value_for ~base:base_value ~value_size:cfg.value_size target
            in
            issue (fun ~rid ~trace ->
                Kvcache.Proto.fmt_storage "set" ?rid ~trace ~key ~flags:0
                  ~value ())
        in
        samples := (Sched.now () -. t0) :: !samples;
        match reply with
        | Some r -> (
            match Kvcache.Proto.parse_reply r with
            | Kvcache.Proto.Failed _ ->
                bump_failures ();
                go (k + 1)
            | _ -> go (k + 1))
        | None ->
            bump_failures ();
            if retrying then go (k + 1)
      end
    in
    go 0;
    finish ()
  in
  let orchestrator () =
    let t_start = Sched.now () in
    let spawn_phase mk =
      let tids =
        List.init cfg.clients (fun i ->
            Sched.spawn sched ~name:(Printf.sprintf "ycsb%d" i) (mk i))
      in
      List.iter Sched.join tids
    in
    spawn_phase load_client;
    let t_load = Sched.now () in
    run_start := t_load;
    spawn_phase run_client;
    let t_all = Sched.now () in
    on_done ();
    results :=
      Some
        {
          load_ops = cfg.records;
          load_cycles = t_load -. t_start;
          run_ops = cfg.operations;
          run_cycles = t_all -. t_load;
          failures = !failures;
          retries = !retry_total;
          run_latencies =
            Array.fold_left (fun acc r -> List.rev_append !r acc) [] latencies;
        }
  in
  let _ = Sched.spawn sched ~name:"ycsb-orchestrator" orchestrator in
  fun () ->
    match !results with
    | Some r -> r
    | None -> failwith "Ycsb: simulation did not complete"
