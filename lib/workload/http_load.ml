module Sched = Simkern.Sched
module Rng = Simkern.Rng
module Retry = Resilience.Retry

type config = {
  connections : int;
  requests_per_conn : int;
  path : string;
  port : int;
  client_cycles : float;
  retry : Retry.policy option;
  seed : int;
  arrival_interval : float;
}

let default_config =
  {
    connections = 75;
    requests_per_conn = 40;
    path = "/index.html";
    port = 8080;
    client_cycles = 1_500.0;
    retry = None;
    seed = 7;
    arrival_interval = 0.0;
  }

type results = { ok : int; failures : int; retries : int; cycles : float }

let request ~path =
  Printf.sprintf "GET %s HTTP/1.1\r\nHost: bench.local\r\nUser-Agent: simbench/1.0\r\n\r\n" path

let request_with_headers ~path headers =
  let hdrs =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  Printf.sprintf "GET %s HTTP/1.1\r\nHost: bench.local\r\n%s\r\n" path hdrs

let is_200 reply =
  String.length reply >= 12 && String.sub reply 9 3 = "200"

let launch sched net cfg ~on_done () =
  let results = ref None in
  let ok = ref 0 and failures = ref 0 and retry_total = ref 0 in
  let lock = Sched.Mutex.create () in
  let client i () =
    let conn = ref (Netsim.connect net ~port:cfg.port) in
    let retry_eng =
      Option.map
        (fun policy ->
          Retry.create policy
            ~rng:(Rng.create (cfg.seed + (900 * i) + 3))
            ~name:(Printf.sprintf "ab%d" i))
        cfg.retry
    in
    let live () =
      let c = !conn in
      if Netsim.is_open c && not (Netsim.peer_closed c) then c
      else begin
        Netsim.close c;
        conn := Netsim.connect net ~port:cfg.port;
        !conn
      end
    in
    let plain_req = request ~path:cfg.path in
    let issue () =
      match retry_eng with
      | None -> (
          Netsim.send !conn plain_req;
          match Netsim.recv !conn with
          | Some _ as r -> r
          | None ->
              (* Dropped (e.g. worker crash): reconnect for next request. *)
              conn := Netsim.connect net ~port:cfg.port;
              None)
      | Some eng -> (
          match
            Retry.execute_ctx eng (fun ~ctx ~rid ~attempt:_ ~deadline ->
                let c = live () in
                Netsim.send c
                  (request_with_headers ~path:cfg.path
                     [
                       ("X-Request-Id", rid);
                       ("Traceparent", Telemetry.Context.to_traceparent ctx);
                     ]);
                match Netsim.recv_deadline c ~deadline with
                | Some reply
                  when String.length reply >= 12
                       && String.sub reply 9 3 = "503" ->
                    Error (`Retry "503")
                | Some reply -> Ok reply
                | None ->
                    (* Timed out: close so a late reply cannot be
                       mistaken for a later request's answer. *)
                    Netsim.close c;
                    Error (`Retry "timeout"))
          with
          | Ok r -> Some r
          | Error _ -> None)
    in
    for k = 1 to cfg.requests_per_conn do
      (* Open-loop: requests fire on a fleet-wide pre-scheduled grid
         instead of back-to-back (see {!Ycsb} for the rationale). *)
      if cfg.arrival_interval > 0.0 then begin
        let slot =
          cfg.arrival_interval
          *. float_of_int (((k - 1) * cfg.connections) + i)
        in
        let now = Sched.now () in
        if slot > now then Sched.sleep (slot -. now)
      end;
      Sched.charge cfg.client_cycles;
      match issue () with
      | Some reply when is_200 reply ->
          Sched.Mutex.with_lock lock (fun () -> incr ok)
      | Some _ | None -> Sched.Mutex.with_lock lock (fun () -> incr failures)
    done;
    (match retry_eng with
    | Some eng ->
        Sched.Mutex.with_lock lock (fun () ->
            retry_total := !retry_total + Retry.retries eng)
    | None -> ());
    Netsim.close !conn
  in
  let orchestrator () =
    let tids =
      List.init cfg.connections (fun i ->
          Sched.spawn sched ~name:(Printf.sprintf "ab%d" i) (client i))
    in
    List.iter Sched.join tids;
    let cycles = Sched.now () in
    on_done ();
    results :=
      Some { ok = !ok; failures = !failures; retries = !retry_total; cycles }
  in
  let _ = Sched.spawn sched ~name:"ab-orchestrator" orchestrator in
  fun () ->
    match !results with
    | Some r -> r
    | None -> failwith "Http_load: simulation did not complete"
