(* Repo lint: banned patterns that break the simulation's determinism and
   isolation story.

   The scanner works on a comment- and string-stripped view of each
   source, so a banned name mentioned in a docstring or an error message
   does not trip the rule. The banned patterns below are assembled by
   concatenation so this file does not flag itself. *)

type violation = {
  v_file : string;
  v_line : int;
  v_rule : string;
  v_text : string;  (* the offending source line, trimmed *)
}

type rule = {
  r_name : string;
  r_patterns : string list;
  r_exempt_dirs : string list;  (* directory components where allowed *)
  r_help : string;
}

let rules =
  [
    {
      r_name = "obj-magic";
      r_patterns = [ "Obj" ^ ".magic" ];
      r_exempt_dirs = [];
      r_help = "unsafe casts undermine every invariant the simulation checks";
    };
    {
      r_name = "wall-clock";
      r_patterns = [ "Unix" ^ "."; "Sys" ^ ".time" ];
      r_exempt_dirs = [];
      r_help =
        "wall-clock time breaks determinism; use Simkern.Sched virtual time";
    };
    {
      r_name = "raw-bytes";
      r_patterns = [ "unsafe_load" ^ "_bytes"; "unsafe_store" ^ "_bytes" ];
      r_exempt_dirs = [ "vmem"; "checkpoint" ];
      r_help =
        "simulated memory must go through checked Vmem.Space accesses \
         (kernel-mode access is for vmem/checkpoint only)";
    };
  ]

let rule_names =
  List.map (fun r -> r.r_name) rules
  @ [ "missing-mli"; "metric-naming"; "finding-rule-doc" ]

(* Replace comment bodies — and, when [strings], string and char
   literals — with spaces (newlines preserved, so line numbers
   survive). Literals are always parsed either way, so a comment opener
   inside a string is never treated as one. *)
let strip_gen ~strings src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let blank_lit i = if strings then blank i in
  let i = ref 0 in
  let depth = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if !depth > 0 then
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        blank !i;
        blank (!i + 1);
        incr depth;
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        blank !i;
        blank (!i + 1);
        decr depth;
        i := !i + 2
      end
      else begin
        blank !i;
        incr i
      end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      blank !i;
      blank (!i + 1);
      depth := 1;
      i := !i + 2
    end
    else if c = '"' then begin
      blank_lit !i;
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        match src.[!i] with
        | '\\' when !i + 1 < n ->
            blank_lit !i;
            blank_lit (!i + 1);
            i := !i + 2
        | '"' ->
            blank_lit !i;
            incr i;
            fin := true
        | _ ->
            blank_lit !i;
            incr i
      done
    end
    else if
      (* char literals ('x', '\n'); type variables ('a) are left alone *)
      c = '\''
      && !i + 2 < n
      && (src.[!i + 1] = '\\' || src.[!i + 2] = '\'')
    then
      if src.[!i + 1] = '\\' then begin
        blank_lit !i;
        incr i;
        while !i < n && src.[!i] <> '\'' do
          blank_lit !i;
          incr i
        done;
        if !i < n then begin
          blank_lit !i;
          incr i
        end
      end
      else begin
        blank_lit !i;
        blank_lit (!i + 1);
        blank_lit (!i + 2);
        i := !i + 3
      end
    else incr i
  done;
  Bytes.to_string out

let strip = strip_gen ~strings:true

let contains ~sub s =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb > 0 && go 0

(* Does [file]'s path contain [dir] as a component? *)
let in_dir file dir =
  let parts = String.split_on_char '/' file in
  List.mem dir parts

let split_lines s = String.split_on_char '\n' s

let scan_source ~file src =
  let stripped = strip src in
  let raw_lines = Array.of_list (split_lines src) in
  let out = ref [] in
  List.iter
    (fun r ->
      if not (List.exists (in_dir file) r.r_exempt_dirs) then
        List.iteri
          (fun idx line ->
            if List.exists (fun p -> contains ~sub:p line) r.r_patterns then
              out :=
                {
                  v_file = file;
                  v_line = idx + 1;
                  v_rule = r.r_name;
                  v_text =
                    (if idx < Array.length raw_lines then
                       String.trim raw_lines.(idx)
                     else "");
                }
                :: !out)
          (split_lines stripped))
    rules;
  List.rev !out

(* {1 Metric naming}

   Registered series names are an operator-facing API: dashboards and
   alerts key on them long after the code moves. Every literal name at a
   [Metrics.counter/gauge/histogram] (and [_fn]) call site must carry a
   known subsystem prefix; counters must end in [_total] (and only
   counters may); the suffixes the exposition itself appends to
   histogram series ([_bucket], [_sum], [_count]) are reserved.
   Computed names (non-literal first argument) are skipped — they are
   the caller's contract to uphold. *)

let metric_prefixes =
  [
    "sdrad_"; "vmem_"; "tlsf_"; "sanitizer_"; "supervisor_"; "kvcache_";
    "httpd_"; "client_"; "trace_"; "gate_"; "cluster_"; "race_";
  ]

let metric_ctors =
  (* longest first, so [counter_fn] is not matched as [counter] *)
  [
    ("counter_fn", `Counter); ("counter", `Counter); ("gauge_fn", `Gauge);
    ("gauge", `Gauge); ("histogram", `Histogram);
  ]

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\'' || c = '.'

let ends_with ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

let starts_with ~prefix s =
  let ls = String.length s and lx = String.length prefix in
  ls > lx && String.sub s 0 lx = prefix

let check_metric_name ~kind name =
  if not (List.exists (fun p -> starts_with ~prefix:p name) metric_prefixes)
  then
    Some
      (Printf.sprintf "\"%s\": no known subsystem prefix (one of %s)" name
         (String.concat " " metric_prefixes))
  else if
    List.exists
      (fun s -> ends_with ~suffix:s name)
      [ "_bucket"; "_sum"; "_count" ]
  then
    Some
      (Printf.sprintf
         "\"%s\": suffix reserved for the histogram exposition" name)
  else
    match kind with
    | `Counter when not (ends_with ~suffix:"_total" name) ->
        Some (Printf.sprintf "\"%s\": counter names must end in _total" name)
    | (`Gauge | `Histogram) when ends_with ~suffix:"_total" name ->
        Some
          (Printf.sprintf "\"%s\": _total is for counters only" name)
    | _ -> None

(* Scan raw source for [<expr>.<ctor> <registry> "<name>"] call shapes.
   The first argument (the registry) is skipped whether it is an
   identifier path or parenthesized; anything but a string literal in
   name position means the name is computed, which this rule does not
   judge. *)
let scan_metric_names ~file src =
  let n = String.length src in
  let line_of pos =
    let l = ref 1 in
    for k = 0 to min (pos - 1) (n - 1) do
      if src.[k] = '\n' then incr l
    done;
    !l
  in
  let raw_lines = Array.of_list (split_lines src) in
  let out = ref [] in
  let skip_ws k =
    let k = ref k in
    while
      !k < n && (src.[!k] = ' ' || src.[!k] = '\n' || src.[!k] = '\t')
    do
      incr k
    done;
    !k
  in
  (* Past a string literal starting at the opening quote. *)
  let skip_string k =
    let k = ref (k + 1) in
    while !k < n && src.[!k] <> '"' do
      if src.[!k] = '\\' then k := !k + 2 else incr k
    done;
    min n (!k + 1)
  in
  let skip_parens k =
    let k = ref (k + 1) and depth = ref 1 in
    while !k < n && !depth > 0 do
      (match src.[!k] with
      | '(' -> incr depth
      | ')' -> decr depth
      | '"' -> k := skip_string !k - 1
      | _ -> ());
      incr k
    done;
    !k
  in
  let i = ref 0 in
  while !i < n do
    (if src.[!i] = '.' then
       match
         List.find_opt
           (fun (ctor, _) ->
             let lc = String.length ctor in
             !i + lc < n
             && String.sub src (!i + 1) lc = ctor
             && not (is_ident_char src.[!i + 1 + lc]))
           metric_ctors
       with
       | None -> ()
       | Some (ctor, kind) ->
           let after = !i + 1 + String.length ctor in
           (* Skip the registry argument. *)
           let k = skip_ws after in
           let k =
             if k < n && src.[k] = '(' then Some (skip_parens k)
             else if k < n && is_ident_char src.[k] then begin
               let j = ref k in
               while !j < n && is_ident_char src.[!j] do
                 incr j
               done;
               Some !j
             end
             else None
           in
           (match k with
           | None -> ()
           | Some k -> (
               let k = skip_ws k in
               if k < n && src.[k] = '"' then
                 let close = skip_string k - 1 in
                 let name = String.sub src (k + 1) (close - k - 1) in
                 match check_metric_name ~kind name with
                 | None -> ()
                 | Some msg ->
                     let line = line_of !i in
                     out :=
                       {
                         v_file = file;
                         v_line = line;
                         v_rule = "metric-naming";
                         v_text =
                           (msg
                           ^
                           if line - 1 < Array.length raw_lines then
                             "  | " ^ String.trim raw_lines.(line - 1)
                           else "");
                       }
                       :: !out));
           i := after - 1);
    incr i
  done;
  List.rev !out

(* {1 Finding rule names}

   Every finding an analysis pass can emit must be documented: the
   rule-name literal of a finding constructor (a [rule] record field
   bound to a string literal) inside lib/analysis must name a rule
   registered in {!Rules.all}, which is what [sdrad_cli analyze --help]
   renders. An unregistered literal is a finding users can hit but never
   look up. Scanning runs on a comment-stripped (string-preserving) view;
   the pattern is assembled by concatenation and requires a
   non-identifier character before it, so field names like [v_rule] (and
   this file itself) do not trip the rule. *)

let finding_rule_patterns = [ "rule" ^ " = \"" ]

let scan_finding_rules ~file raw =
  if not (in_dir file "analysis") then []
  else begin
    let src = strip_gen ~strings:false raw in
    let n = String.length src in
    let line_of pos =
      let l = ref 1 in
      for k = 0 to min (pos - 1) (n - 1) do
        if src.[k] = '\n' then incr l
      done;
      !l
    in
    let out = ref [] in
    List.iter
      (fun pat ->
        let lp = String.length pat in
        for i = 0 to n - lp - 1 do
          if
            String.sub src i lp = pat
            && (i = 0 || not (is_ident_char src.[i - 1]))
          then begin
            (* The pattern ends at the opening quote; the name runs to
               the next one. *)
            let j = ref (i + lp) in
            while !j < n && src.[!j] <> '"' do
              incr j
            done;
            let name = String.sub src (i + lp) (!j - i - lp) in
            if not (Rules.known name) then
              out :=
                {
                  v_file = file;
                  v_line = line_of i;
                  v_rule = "finding-rule-doc";
                  v_text =
                    Printf.sprintf
                      "\"%s\": finding rule not registered in Rules.all \
                       (must appear in `analyze --help`)"
                      name;
                }
                :: !out
          end
        done)
      finding_rule_patterns;
    List.sort compare !out
  end

(* {1 Tree walking} *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec collect_sources dir =
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  Array.fold_left
    (fun acc e ->
      let path = Filename.concat dir e in
      if Sys.is_directory path then acc @ collect_sources path
      else if Filename.check_suffix e ".ml" || Filename.check_suffix e ".mli"
      then acc @ [ path ]
      else acc)
    [] entries

let scan_tree ?(allow = fun ~rule:_ ~file:_ -> false) root =
  let sources = collect_sources root in
  let pattern_violations =
    List.concat_map
      (fun file ->
        let src = read_file file in
        let vs =
          scan_source ~file src
          @ scan_finding_rules ~file src
          @
          (* The registry implementation itself manipulates [counter]/
             [gauge]/[histogram] values without naming any series. *)
          if in_dir file "telemetry" then [] else scan_metric_names ~file src
        in
        List.filter (fun v -> not (allow ~rule:v.v_rule ~file:v.v_file)) vs)
      sources
  in
  (* Interface discipline: every .ml under the tree needs a sibling .mli,
     so the linkable surface of each module is deliberate. *)
  let missing_mli =
    List.filter_map
      (fun file ->
        if
          Filename.check_suffix file ".ml"
          && (not (List.mem (file ^ "i") sources))
          && not (allow ~rule:"missing-mli" ~file)
        then
          Some
            { v_file = file; v_line = 1; v_rule = "missing-mli"; v_text = "" }
        else None)
      sources
  in
  List.sort compare (pattern_violations @ missing_mli)

(* {1 Allowlist}

   Format: one entry per line, [<rule> <path>]; blank lines and [#]
   comments ignored. A [*] rule allows every rule for that path. *)

let parse_allowlist src =
  let entries =
    List.filter_map
      (fun line ->
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun s -> s <> "")
        with
        | [] -> None
        | [ rule; path ] -> Some (rule, path)
        | _ -> failwith ("lint allowlist: malformed line: " ^ line))
      (split_lines src)
  in
  List.iter
    (fun (rule, _) ->
      if rule <> "*" && not (List.mem rule rule_names) then
        failwith ("lint allowlist: unknown rule: " ^ rule))
    entries;
  fun ~rule ~file ->
    List.exists (fun (r, p) -> (r = "*" || r = rule) && p = file) entries

let load_allowlist path = parse_allowlist (read_file path)

let to_text vs =
  if vs = [] then "lint OK: no violations\n"
  else begin
    let b = Buffer.create 256 in
    List.iter
      (fun v ->
        Buffer.add_string b
          (Printf.sprintf "%s:%d: [%s] %s\n" v.v_file v.v_line v.v_rule
             v.v_text))
      vs;
    Buffer.add_string b (Printf.sprintf "%d violation(s)\n" (List.length vs));
    Buffer.contents b
  end
