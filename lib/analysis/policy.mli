(** Static compartment-policy verifier.

    SDRaD's security argument rests on the monitor's {e policy} being
    right: keys disjoint, stacks and sub-heaps sealed from other domains,
    gate buffers reachable by their callees, rewinds observed. This
    module checks those properties {e before} execution, over a pure
    {!model} of the monitor's declared state — hand-built for fixtures,
    or snapshotted from a live monitor with {!of_api}.

    Rules (each finding carries the rule name):
    - [key-overlap] (error): two live domains share a protection key, or
      a domain holds the monitor's/root's reserved key.
    - [cross-visibility] (error): a domain's stack or TLSF sub-heap is
      readable/writable under another domain's PKRU view beyond what the
      declared relationship (child accessibility, [parent_readable],
      dprotect grants) allows.
    - [gate-buffer] (error): a gate's argument/return buffer lives in
      memory its callee cannot read, or outside every declared domain.
    - [no-abort-hook] (warning): an execution domain whose rewinds nobody
      observes — no cleanup hook, no monitor-wide incident handler.
    - [unreachable] (warning): an execution domain whose parent chain
      never reaches the root domain. *)

type region = {
  base : int;
  len : int;
  rkey : int;  (** protection key the region's pages actually carry *)
}

type kind = Exec | Data
type state = Dormant | Ready | Entered

type domain = {
  udi : int;
  kind : kind;
  tid : int;  (** owning thread; [-1] for data domains *)
  parent : int;  (** 0 = root *)
  pkey : int;  (** declared key; [-1] when parked *)
  state : state;
  stack : region option;
  heap : region list;
  accessible : bool;
  parent_readable : bool;
  has_cleanup : bool;
  perms : (int * int) list;
      (** data domains: viewer udi -> {!Vmem.Prot} rights *)
}

type gate = {
  g_name : string;
  g_caller : int;
  g_callee : int;
  g_buffers : (string * int) list;  (** (label, address) *)
}

type model = {
  monitor_pkey : int;
  root_pkey : int;
  domains : domain list;
  gates : gate list;
  global_handler : bool;  (** an incident handler / supervisor is attached *)
}

val exec_domain :
  ?tid:int ->
  ?parent:int ->
  ?state:state ->
  ?stack:region ->
  ?heap:region list ->
  ?accessible:bool ->
  ?parent_readable:bool ->
  ?has_cleanup:bool ->
  udi:int ->
  pkey:int ->
  unit ->
  domain
(** Fixture helper: an execution domain with library defaults
    (tid 0, parent root, [Ready], accessible, no hooks). *)

val data_domain :
  ?heap:region list -> ?perms:(int * int) list -> udi:int -> pkey:int -> unit -> domain

(** {1 Findings} *)

type severity = Error | Warning

type finding = {
  rule : string;
  severity : severity;
  udi : int option;
  message : string;
}

val severity_to_string : severity -> string

val check : model -> finding list
(** Run every rule; findings come out grouped by rule, in model order —
    deterministic for a given model. *)

val errors : finding list -> int
val warnings : finding list -> int

val to_text : finding list -> string
(** One aligned line per finding plus a summary line; ["policy OK"] when
    empty. *)

val to_json : finding list -> string
(** Machine-readable report:
    [{"findings":[{rule,severity,udi,message}...],"errors":N,"warnings":N}]. *)

exception Rejected of finding list

val assert_ok : model -> unit
(** @raise Rejected when {!check} reports at least one [Error]-severity
    finding (warnings alone pass). This is what servers run behind their
    [verify_policy] flag at setup. *)

val of_api : ?gates:gate list -> Sdrad.Api.t -> model
(** Snapshot a live monitor: domains from {!Sdrad.Api.domains_info},
    region keys re-read from the page tables (so out-of-band re-keying is
    caught), [global_handler] from {!Sdrad.Api.has_incident_handler}.
    [gates] default to none — servers pass their own gate table. *)
