type rule = { name : string; doc : string }

(* One registry for every finding rule the analysis layer can emit. The
   CLI renders `sdrad_cli analyze --help` from this list and the repo
   lint (finding-rule-doc) checks every finding constructor in
   lib/analysis against it, so a rule cannot ship undocumented. *)
let all =
  [
    {
      name = "key-overlap";
      doc =
        "two live domains share a protection key, or a domain holds the \
         monitor's/root's reserved key (error)";
    };
    {
      name = "cross-visibility";
      doc =
        "a domain's stack or sub-heap is visible under another domain's \
         PKRU view beyond the declared relationship (error)";
    };
    {
      name = "gate-buffer";
      doc =
        "a gate argument/return buffer is unreadable by its callee or \
         outside every declared domain (error)";
    };
    {
      name = "no-abort-hook";
      doc =
        "an execution domain whose rewinds nobody observes - no cleanup \
         hook, no incident handler (warning)";
    };
    {
      name = "unreachable";
      doc =
        "an execution domain whose parent chain never reaches the root \
         domain (warning)";
    };
    {
      name = "shared-race";
      doc =
        "two threads access the same shared granule with no \
         happens-before edge between them, at least one a write (error)";
    };
    {
      name = "rewind-atomicity";
      doc =
        "a nested domain wrote shared memory without holding a Dlock - a \
         rewind of the domain publishes the torn write (error)";
    };
    {
      name = "lock-discipline";
      doc =
        "a Dlock acquired in one domain was released in another, or its \
         poison flag was cleared without a guarding write (warning)";
    };
  ]

let names = List.map (fun r -> r.name) all
let find name = List.find_opt (fun r -> r.name = name) all
let known name = List.exists (fun r -> r.name = name) all

let help_text () =
  String.concat "\n"
    (List.map (fun r -> Printf.sprintf "  %-16s %s" r.name r.doc) all)
