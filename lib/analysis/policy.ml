(* Static compartment-policy verifier.

   The model is pure data: what the reference monitor *declares* about its
   domains (keys, stacks, sub-heap regions, gates, hooks). The verifier
   re-derives every execution domain's PKRU view exactly the way
   [Sdrad.Api] computes it at switch time, then checks that what each
   viewer can actually reach (determined by the keys the pages really
   carry) never exceeds what the declared domain relationships allow.
   Fixtures build models by hand; [of_api] snapshots a live monitor. *)

type region = { base : int; len : int; rkey : int }

type kind = Exec | Data
type state = Dormant | Ready | Entered

type domain = {
  udi : int;
  kind : kind;
  tid : int;
  parent : int;
  pkey : int;
  state : state;
  stack : region option;
  heap : region list;
  accessible : bool;
  parent_readable : bool;
  has_cleanup : bool;
  perms : (int * int) list;
}

type gate = {
  g_name : string;
  g_caller : int;
  g_callee : int;
  g_buffers : (string * int) list;
}

type model = {
  monitor_pkey : int;
  root_pkey : int;
  domains : domain list;
  gates : gate list;
  global_handler : bool;
}

let exec_domain ?(tid = 0) ?(parent = 0) ?(state = Ready) ?stack ?(heap = [])
    ?(accessible = true) ?(parent_readable = false) ?(has_cleanup = false) ~udi
    ~pkey () =
  {
    udi;
    kind = Exec;
    tid;
    parent;
    pkey;
    state;
    stack;
    heap;
    accessible;
    parent_readable;
    has_cleanup;
    perms = [];
  }

let data_domain ?(heap = []) ?(perms = []) ~udi ~pkey () =
  {
    udi;
    kind = Data;
    tid = -1;
    parent = 0;
    pkey;
    state = Ready;
    stack = None;
    heap;
    accessible = false;
    parent_readable = false;
    has_cleanup = false;
    perms;
  }

(* {1 Findings} *)

type severity = Error | Warning

type finding = {
  rule : string;
  severity : severity;
  udi : int option;
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

(* {1 Rights derivation}

   Mirrors [Api.compute_pkru] with the viewer as the current domain: the
   monitor key is denied, the root key is read-only, the viewer's own key
   is read-write, an accessible non-entered child on the viewer's thread
   is read-write, the direct parent is read-only iff the viewer opted in,
   and data-domain keys follow the dprotect table. Hardware grants by
   {e key}, so when several domains hold the same key the view is the
   union — which is exactly why key overlap is a policy error. *)

let rank = function `No -> 0 | `Ro -> 1 | `Rw -> 2
let max_rights a b = if rank a >= rank b then a else b

let rights_to_string = function
  | `No -> "inaccessible"
  | `Ro -> "readable"
  | `Rw -> "writable"

(* What the declared relationship between viewer [v] and owner [o]
   entitles [v] to. *)
let rel_rights (v : domain) (o : domain) =
  if v.udi = o.udi && v.tid = o.tid && o.kind = Exec then `Rw
  else
    match o.kind with
    | Data -> (
        match List.assoc_opt v.udi o.perms with
        | Some p when Vmem.Prot.has p Vmem.Prot.write -> `Rw
        | Some p when Vmem.Prot.has p Vmem.Prot.read -> `Ro
        | Some _ | None -> `No)
    | Exec ->
        if o.tid = v.tid && o.parent = v.udi && o.accessible && o.state <> Entered
        then `Rw
        else if v.parent_readable && v.parent = o.udi && o.tid = v.tid then `Ro
        else `No

(* Rights viewer [v] holds over protection key [key] — the PKRU view. *)
let view m v key =
  if key < 0 then `No
  else if key = m.monitor_pkey then `No
  else if key = m.root_pkey then `Ro
  else
    List.fold_left
      (fun acc o -> if o.pkey = key then max_rights acc (rel_rights v o) else acc)
      `No m.domains

(* {1 Rules} *)

let live d = d.pkey >= 0

(* R1: protection-key disjointness. Every live domain must hold a key of
   its own; reserved (monitor/root) keys must never back a domain. A
   shared key makes the MPK hardware grant one domain's rights to the
   other — compartmentalization in name only. *)
let rule_key_overlap m =
  let findings = ref [] in
  let emit udi message =
    findings := { rule = "key-overlap"; severity = Error; udi = Some udi; message } :: !findings
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun d ->
      if live d then begin
        if d.pkey = m.monitor_pkey then
          emit d.udi
            (Printf.sprintf "domain %d holds the monitor's key %d" d.udi d.pkey)
        else if d.pkey = m.root_pkey then
          emit d.udi
            (Printf.sprintf "domain %d holds the root domain's key %d" d.udi
               d.pkey);
        (match Hashtbl.find_opt seen d.pkey with
        | Some other ->
            emit d.udi
              (Printf.sprintf "domains %d and %d share protection key %d" other
                 d.udi d.pkey)
        | None -> Hashtbl.replace seen d.pkey d.udi)
      end)
    m.domains;
  List.rev !findings

(* R2: cross-domain visibility. For every viewer, the rights the page
   keys actually grant over another domain's stack and sub-heap must not
   exceed what the declared relationship allows — a region carrying the
   wrong key (e.g. a stack left on the root key, or a sub-heap page
   re-keyed to a sibling) is readable or writable memory the policy says
   is sealed. *)
let rule_cross_visibility m =
  let findings = ref [] in
  let viewers = List.filter (fun d -> d.kind = Exec && live d) m.domains in
  List.iter
    (fun (v : domain) ->
      List.iter
        (fun (o : domain) ->
          if not (o.udi = v.udi && o.tid = v.tid && o.kind = v.kind) then begin
            let allowed = rel_rights v o in
            let check what r =
              let actual = view m v r.rkey in
              if rank actual > rank allowed then
                findings :=
                  {
                    rule = "cross-visibility";
                    severity = Error;
                    udi = Some o.udi;
                    message =
                      Printf.sprintf
                        "%s of domain %d (key %d) is %s under domain %d's \
                         view, policy allows %s"
                        what o.udi r.rkey (rights_to_string actual) v.udi
                        (rights_to_string allowed);
                  }
                  :: !findings
            in
            (match o.stack with Some r -> check "stack" r | None -> ());
            List.iter (check "sub-heap") o.heap
          end)
        m.domains)
    viewers;
  List.rev !findings

(* R3: gate buffers. Every argument/return buffer a gate passes must live
   in memory its callee can at least read — otherwise the call faults on
   entry (or worse, the gate widens access to compensate). *)
let rule_gate_buffers m =
  let owner_of addr =
    List.find_opt
      (fun d ->
        let inside r = addr >= r.base && addr < r.base + r.len in
        (match d.stack with Some r -> inside r | None -> false)
        || List.exists inside d.heap)
      m.domains
  in
  let callee_of g =
    List.find_opt (fun d -> d.kind = Exec && d.udi = g.g_callee) m.domains
  in
  List.concat_map
    (fun g ->
      match callee_of g with
      | None ->
          [
            {
              rule = "gate-buffer";
              severity = Error;
              udi = Some g.g_callee;
              message =
                Printf.sprintf "gate %s targets unknown callee domain %d"
                  g.g_name g.g_callee;
            };
          ]
      | Some callee ->
          List.filter_map
            (fun (bname, addr) ->
              match owner_of addr with
              | None ->
                  Some
                    {
                      rule = "gate-buffer";
                      severity = Error;
                      udi = Some g.g_callee;
                      message =
                        Printf.sprintf
                          "gate %s: buffer %s (0x%x) lies outside every \
                           declared domain"
                          g.g_name bname addr;
                    }
              | Some owner ->
                  let r =
                    let inside r = addr >= r.base && addr < r.base + r.len in
                    match owner.stack with
                    | Some r when inside r -> r
                    | _ -> List.find (fun r -> inside r) owner.heap
                  in
                  if view m callee r.rkey = `No then
                    Some
                      {
                        rule = "gate-buffer";
                        severity = Error;
                        udi = Some g.g_callee;
                        message =
                          Printf.sprintf
                            "gate %s: buffer %s (0x%x) lives in domain %d, \
                             inaccessible to callee %d"
                            g.g_name bname addr owner.udi g.g_callee;
                      }
                  else None)
            g.g_buffers)
    m.gates

(* R4: every execution domain's rewinds must be observed somewhere — a
   per-domain cleanup hook or a monitor-wide incident handler (the
   supervisor counts). A silent rewind loses the security signal the
   whole mechanism exists to produce. *)
let rule_abort_hooks m =
  if m.global_handler then []
  else
    List.filter_map
      (fun d ->
        if d.kind = Exec && not d.has_cleanup then
          Some
            {
              rule = "no-abort-hook";
              severity = Warning;
              udi = Some d.udi;
              message =
                Printf.sprintf
                  "domain %d has no cleanup hook and no incident handler is \
                   installed"
                  d.udi;
            }
        else None)
      m.domains

(* R5: reachability. Every execution domain's parent chain must reach the
   root; an orphan (missing parent, or a parent cycle) can never be
   entered again and its key and memory are leaked. *)
let rule_reachability m =
  let execs = List.filter (fun d -> d.kind = Exec) m.domains in
  let find_parent (d : domain) =
    List.find_opt (fun (p : domain) -> p.udi = d.parent && p.tid = d.tid) execs
  in
  List.filter_map
    (fun d ->
      let rec walk cur hops =
        if cur.parent = 0 then true
        else if hops > List.length execs then false (* cycle *)
        else
          match find_parent cur with
          | Some p -> walk p (hops + 1)
          | None -> false
      in
      if walk d 0 then None
      else
        Some
          {
            rule = "unreachable";
            severity = Warning;
            udi = Some d.udi;
            message =
              Printf.sprintf
                "domain %d is unreachable: its parent chain (parent %d) never \
                 reaches the root"
                d.udi d.parent;
          })
    execs

let check m =
  rule_key_overlap m @ rule_cross_visibility m @ rule_gate_buffers m
  @ rule_abort_hooks m @ rule_reachability m

let errors fs = List.length (List.filter (fun f -> f.severity = Error) fs)
let warnings fs = List.length (List.filter (fun f -> f.severity = Warning) fs)

(* {1 Reports} *)

let to_text fs =
  if fs = [] then "policy OK: no findings\n"
  else begin
    let b = Buffer.create 256 in
    List.iter
      (fun f ->
        Buffer.add_string b
          (Printf.sprintf "%-7s %-16s %s %s\n"
             (String.uppercase_ascii (severity_to_string f.severity))
             f.rule
             (match f.udi with
             | Some u -> Printf.sprintf "udi=%d" u
             | None -> "udi=-")
             f.message))
      fs;
    Buffer.add_string b
      (Printf.sprintf "%d error(s), %d warning(s)\n" (errors fs) (warnings fs));
    Buffer.contents b
  end

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json fs =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"rule\":\"%s\",\"severity\":\"%s\",\"udi\":%s,\"message\":\"%s\"}"
           (json_escape f.rule)
           (severity_to_string f.severity)
           (match f.udi with Some u -> string_of_int u | None -> "null")
           (json_escape f.message)))
    fs;
  Buffer.add_string b
    (Printf.sprintf "],\"errors\":%d,\"warnings\":%d}" (errors fs)
       (warnings fs));
  Buffer.contents b

exception Rejected of finding list

let assert_ok m =
  let fs = check m in
  if errors fs > 0 then raise (Rejected fs)

(* {1 Live-monitor snapshot}

   Region keys are read back from the page tables ([pkey_of_addr]), not
   from the domain records, so a region whose pages were re-keyed behind
   the monitor's back is caught too. *)

let of_api ?(gates = []) sd =
  let space = Sdrad.Api.space sd in
  let key_of base = Vmem.Space.pkey_of_addr space base in
  let conv (i : Sdrad.Api.domain_info) =
    {
      udi = i.di_udi;
      kind = (match i.di_kind with `Exec -> Exec | `Data -> Data);
      tid = i.di_tid;
      parent = i.di_parent;
      pkey = i.di_pkey;
      state =
        (match i.di_state with
        | `Dormant -> Dormant
        | `Ready -> Ready
        | `Entered -> Entered);
      stack =
        Option.map
          (fun (base, len) -> { base; len; rkey = key_of base })
          i.di_stack;
      heap =
        List.map (fun (base, len) -> { base; len; rkey = key_of base })
          i.di_regions;
      accessible = i.di_accessible;
      parent_readable = i.di_parent_readable;
      has_cleanup = i.di_has_cleanup;
      perms = i.di_perms;
    }
  in
  {
    monitor_pkey = Sdrad.Api.monitor_pkey sd;
    root_pkey = Sdrad.Api.root_pkey sd;
    domains = List.map conv (Sdrad.Api.domains_info sd);
    gates;
    global_handler = Sdrad.Api.has_incident_handler sd;
  }
