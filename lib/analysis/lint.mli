(** Repo lint: banned patterns that would break the simulation's
    determinism and isolation story.

    Rules:
    - [obj-magic]: [Obj.magic] (unsafe casts).
    - [wall-clock]: any [Unix.*] or [Sys.time] use — virtual time only.
    - [raw-bytes]: kernel-mode simulated-memory access
      ([unsafe_load_bytes]/[unsafe_store_bytes]) outside [vmem] and
      [checkpoint].
    - [missing-mli]: a [.ml] under the scanned tree without a sibling
      [.mli].
    - [metric-naming]: a literal series name at a
      [Metrics.counter]/[gauge]/[histogram] (or [_fn]) call site without
      a known subsystem prefix, a counter not ending in [_total] (or a
      gauge/histogram that does), or a name ending in one of the
      suffixes the histogram exposition reserves ([_bucket], [_sum],
      [_count]).
    - [finding-rule-doc]: a finding constructor in [lib/analysis] (a
      [rule] record field bound to a string literal) whose rule-name
      literal is not registered in {!Rules.all} — i.e. a finding users
      can hit but [sdrad_cli analyze --help] never documents.

    Matching runs on a comment- and string-stripped view of each source,
    so banned names in docstrings or error messages do not trip rules
    ([metric-naming] and [finding-rule-doc] alone read the raw source —
    the names they judge {e are} string literals). *)

type violation = {
  v_file : string;
  v_line : int;  (** 1-based *)
  v_rule : string;
  v_text : string;  (** offending source line, trimmed; empty for
                        tree-level rules *)
}

val rule_names : string list

val scan_source : file:string -> string -> violation list
(** Pattern rules only (no [missing-mli]) over one source text. *)

val metric_prefixes : string list
(** Subsystem prefixes the [metric-naming] rule accepts. *)

val scan_metric_names : file:string -> string -> violation list
(** The [metric-naming] rule alone over one source text. *)

val scan_finding_rules : file:string -> string -> violation list
(** The [finding-rule-doc] rule alone over one source text. Only files
    with an [analysis] path component are judged. *)

val scan_tree :
  ?allow:(rule:string -> file:string -> bool) -> string -> violation list
(** Recursively scan every [.ml]/[.mli] under a directory, apply all
    rules including [missing-mli], drop violations the [allow] predicate
    accepts, and return the rest sorted by (file, line, rule). *)

val parse_allowlist : string -> rule:string -> file:string -> bool
(** Parse allowlist text — one [<rule> <path>] entry per line, [#]
    comments, [*] as a wildcard rule — into an [allow] predicate.
    @raise Failure on malformed lines or unknown rule names. *)

val load_allowlist : string -> rule:string -> file:string -> bool

val to_text : violation list -> string
(** [file:line: [rule] text] lines plus a count, or ["lint OK"]. *)
