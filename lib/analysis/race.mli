(** Rewind-aware data-race and rewind-atomicity detector.

    Dynamic detection over the deterministic simulation: FastTrack-style
    vector clocks over simkern fibers decide happens-before, Eraser-style
    per-granule locksets decorate the reports, and shadow cells attach to
    {!Vmem.Space} at checked-access granularity via the space's access
    hook (the same boundary the heap sanitizer instruments, so allocator
    metadata traffic is already filtered out).

    Finding classes (rule names registered in {!Rules}):
    - [shared-race] — two fibers touch the same shared granule with no
      happens-before edge between them, at least one a write.
    - [rewind-atomicity] — a write to shared (data-domain) memory from
      inside a nested domain with no {!Sdrad.Dlock} held. A rewind of
      that domain discards its execution but not the shared write:
      torn state is published that lock poisoning never flags.
    - [lock-discipline] — a Dlock acquired in one domain and released in
      another, or a poisoned Dlock cleared without any guarding write.

    Happens-before edges: spawn/join, mutex release→acquire, rwlock
    writer/reader edges, gate edges (every domain enter/exit ticks the
    fiber's clock) and rewind edges (an abnormal exit ticks the victim
    fiber; poison-release orders the discarded critical section before
    the next acquirer through the lock's clock).

    The detector is {e host-side only}: it allocates no simulated
    memory, performs no checked accesses and charges no virtual time, so
    a run with the detector attached is byte-for-byte identical to the
    same run without it. The one exception is {!publish}, which writes
    findings into the flight recorder and must be called deliberately. *)

type t

type finding = {
  rule : string;
  severity : Policy.severity;
  udi : int option;  (** domain context, when domain-shaped *)
  addr : int option;  (** granule base address, when address-shaped *)
  tid : int;  (** acting simulated thread; [-1] when not thread-shaped *)
  message : string;
}

val attach :
  ?granule:int -> ?track_root:bool -> ?max_findings:int -> Sdrad.Api.t -> t
(** Attach a detector to a running instance. Tracks every data domain's
    pages (current and future); [track_root] additionally tracks the
    root heap (defaults to [false] — root memory is single-domain by
    construction and tracking it mostly measures the allocator).
    [granule] is the shadow-cell width in bytes (1, 2, 4, 8 or 16;
    default 8). At most [max_findings] findings are stored (default 64);
    counters keep counting past the cap.

    Installs the space access hook, the API race observer and (shared
    with other live detectors) the scheduler trace hook, and registers
    [race_*] metrics on the instance's registry. *)

val detach : t -> unit
(** Remove the hooks. Metrics series remain registered and freeze at
    their final values. Idempotent. *)

val attached : t -> bool

val findings : t -> finding list
(** Stored findings in detection order (capped at [max_findings]). *)

val class_count :
  t -> [ `Shared_race | `Rewind_atomicity | `Lock_discipline ] -> int
(** Total findings per class, including those past the storage cap. *)

val total : t -> int

val errors : t -> int

val warnings : t -> int

val tracked_accesses : t -> int
(** Checked accesses that touched tracked shared memory. *)

val sync_edges : t -> int
(** Scheduler + monitor events fed into the happens-before model. *)

val shadow_cells : t -> int
(** Live shadow cells — tracked granules with access history. *)

val to_text : t -> string
(** Human-readable report, one finding per line plus a summary tail;
    same shape as {!Policy.to_text}. *)

val to_json : t -> string
(** Single-line JSON object: [{"findings":[...],"shared_race":n,...}]. *)

val publish : t -> unit
(** Record each stored finding as a {!Checkpoint.Flight.Race} event on
    the instance's flight recorder ([udi] = finding domain, [arg] =
    granule address). This is the only operation that touches simulated
    state — call it from inside the simulation, after the workload, so
    detection itself stays invisible to the run. *)
