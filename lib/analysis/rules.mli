(** Registry of every finding rule the analysis layer can emit.

    One list keeps three surfaces in sync: the [rule] field of
    {!Policy.finding} and {!Race.finding} values, the rule catalogue
    rendered into [sdrad_cli analyze --help], and the repo lint's
    [finding-rule-doc] rule, which rejects any finding constructor in
    [lib/analysis] whose rule-name literal is not registered here. *)

type rule = { name : string; doc : string }

val all : rule list
(** Policy rules first (PR 5), then the race detector's classes, in
    reporting order. *)

val names : string list
val find : string -> rule option
val known : string -> bool

val help_text : unit -> string
(** The catalogue as indented ["name doc"] lines — embedded verbatim in
    the CLI's [analyze] man page. *)
