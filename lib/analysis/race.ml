module Sched = Simkern.Sched
module Space = Vmem.Space
module Api = Sdrad.Api
module Types = Sdrad.Types

(* Rewind-aware data-race and rewind-atomicity detector.

   The deterministic simulation makes dynamic race detection exact for
   the schedule it observes: every checked memory access, every lock
   transfer and every domain gate passes through a hook, so the detector
   maintains FastTrack-style vector clocks over simkern fibers and
   Eraser-style per-granule locksets as pure host-side state. Nothing it
   does touches simulated memory or charges virtual time — an attached
   detector is invisible to the run it watches (the differential test in
   test_races.ml holds a 5-seed chaos run byte-for-byte identical with
   the detector on and off).

   Three finding classes (rule names in {!Rules}):
   - shared-race:      HB-unordered conflicting accesses to a shared
                       granule (vector clocks decide; the common lockset
                       decorates the report, Eraser-style).
   - rewind-atomicity: a write to shared memory from inside a nested
                       domain with no Dlock held — a rewind of that
                       domain discards its execution but not the shared
                       write, publishing torn state that lock poisoning
                       never flags.
   - lock-discipline:  a Dlock acquired in one domain and released in
                       another, or a poisoned Dlock cleared without a
                       guarding write to the state it protects.

   "Shared" memory is data-domain memory (every data domain is shared by
   construction; the detector learns their pkeys from Rv_shared events)
   plus, optionally, the root heap. *)

type finding = {
  rule : string;
  severity : Policy.severity;
  udi : int option;
  addr : int option;  (* granule base address, when address-shaped *)
  tid : int;  (* acting thread; -1 when not thread-shaped *)
  message : string;
}

(* {1 Vector clocks} *)

type vc = { mutable a : int array }

let vc_create () = { a = [||] }
let vc_get v i = if i >= 0 && i < Array.length v.a then v.a.(i) else 0

let vc_set v i x =
  if i >= Array.length v.a then begin
    let a' = Array.make (max (i + 1) ((2 * Array.length v.a) + 4)) 0 in
    Array.blit v.a 0 a' 0 (Array.length v.a);
    v.a <- a'
  end;
  v.a.(i) <- x

let vc_join dst src =
  Array.iteri (fun i x -> if x > vc_get dst i then vc_set dst i x) src.a

(* {1 Per-entity shadow state} *)

type tstate = {
  tvc : vc;
  mutable held : int list;  (* exclusive locks held, innermost first *)
  mutable rheld : int list;  (* read-side rwlocks held *)
  mutable dheld : int list;  (* held Dlocks (by scheduler lock id) *)
  mutable dstack : int list;  (* entered nested domains, innermost first *)
}

type lstate = { lvc : vc }

type dlstate = {
  mutable acq_udi : int;
  mutable guard_writes : int;  (* shared writes made while held *)
  mutable dpoisoned : bool;
}

(* Shadow cell per granule. Read state is adaptive as in FastTrack: a
   single (tid, clock) epoch until two concurrent readers force a full
   read vector ([r_tid = -2]). *)
type cell = {
  mutable w_tid : int;  (* -1 = never written *)
  mutable w_clk : int;
  mutable w_udi : int;  (* domain context of last write; -1 = root *)
  mutable r_tid : int;  (* -1 = none, -2 = vector mode *)
  mutable r_clk : int;
  mutable r_vc : int array;  (* tid -> clock, vector mode only *)
  mutable ls : int list option;  (* common lockset; None until first access *)
}

type t = {
  sd : Api.t;
  space : Space.t;
  granule_shift : int;
  max_findings : int;
  mutable tracked : int;  (* bitmask of shared pkeys *)
  pkey_udi : int array;  (* pkey -> owning data-domain udi; -1 = root *)
  cells : (int, cell) Hashtbl.t;  (* granule index -> cell *)
  tstates : (int, tstate) Hashtbl.t;  (* tid -> thread shadow state *)
  locks : (int, lstate) Hashtbl.t;  (* scheduler lock id -> lock clock *)
  dlocks : (int, dlstate) Hashtbl.t;  (* Dlocks, by scheduler lock id *)
  allocs : (int, int) Hashtbl.t;  (* monitor-mediated blocks: addr -> len *)
  seen : (string, unit) Hashtbl.t;  (* finding dedup keys *)
  mutable findings_rev : finding list;
  mutable stored : int;
  counts : int array;  (* per class: shared-race, atomicity, discipline *)
  mutable accesses : int;  (* tracked (shared-granule) accesses *)
  mutable edges : int;  (* synchronization edges processed *)
  mutable attached : bool;
}

let class_race = 0
let class_atom = 1
let class_disc = 2

(* {1 Helpers} *)

let tstate t tid =
  match Hashtbl.find_opt t.tstates tid with
  | Some ts -> ts
  | None ->
      let ts =
        { tvc = vc_create (); held = []; rheld = []; dheld = []; dstack = [] }
      in
      vc_set ts.tvc tid 1;
      Hashtbl.replace t.tstates tid ts;
      ts

let lstate t lock =
  match Hashtbl.find_opt t.locks lock with
  | Some l -> l
  | None ->
      let l = { lvc = vc_create () } in
      Hashtbl.replace t.locks lock l;
      l

let tick ts tid = vc_set ts.tvc tid (vc_get ts.tvc tid + 1)
let remove_id id l = List.filter (fun x -> x <> id) l

let inter a b = List.filter (fun x -> List.mem x b) a

let add_finding t key cls f =
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.add t.seen key ();
    t.counts.(cls) <- t.counts.(cls) + 1;
    if t.stored < t.max_findings then begin
      t.findings_rev <- f :: t.findings_rev;
      t.stored <- t.stored + 1
    end
  end

let lockset_text c =
  match c.ls with
  | Some (_ :: _ as ls) ->
      Printf.sprintf "common locks {%s}"
        (String.concat "," (List.map string_of_int (List.sort compare ls)))
  | Some [] | None -> "no common lock"

(* {1 The access path (shadow cells)} *)

let report_race t c g ~owner ~prev_kind ~prev_tid ~tid ~is_w =
  let addr = g lsl t.granule_shift in
  add_finding t
    (Printf.sprintf "r:%d" g)
    class_race
    {
      rule = "shared-race";
      severity = Policy.Error;
      udi = (if owner >= 0 then Some owner else None);
      addr = Some addr;
      tid;
      message =
        Printf.sprintf
          "0x%x: %s by t%d is unordered with earlier %s by t%d (%s)" addr
          (if is_w then "write" else "read")
          tid prev_kind prev_tid (lockset_text c);
    }

let report_atomicity t g ~udi ~tid =
  let addr = g lsl t.granule_shift in
  (* One report per (domain, page): a torn structure spans granules. *)
  add_finding t
    (Printf.sprintf "a:%d:%d" udi (addr lsr 12))
    class_atom
    {
      rule = "rewind-atomicity";
      severity = Policy.Error;
      udi = Some udi;
      addr = Some addr;
      tid;
      message =
        Printf.sprintf
          "0x%x: write to shared memory inside nested domain %d with no \
           Dlock held - a rewind of the domain publishes the torn write"
          addr udi;
    }

let cell_of t g =
  match Hashtbl.find_opt t.cells g with
  | Some c -> c
  | None ->
      let c =
        {
          w_tid = -1;
          w_clk = 0;
          w_udi = -1;
          r_tid = -1;
          r_clk = 0;
          r_vc = [||];
          ls = None;
        }
      in
      Hashtbl.replace t.cells g c;
      c

let process t ts tid g ~owner ~is_w =
  let c = cell_of t g in
  let myclk = vc_get ts.tvc tid in
  (* Eraser refinement: intersect the lockset the accessor holds into the
     cell's candidate set. Read-held rwlocks count for reads only. *)
  let lsnow = if is_w then ts.held else ts.held @ ts.rheld in
  (match c.ls with
  | None -> c.ls <- Some lsnow
  | Some prev -> c.ls <- Some (inter prev lsnow));
  if is_w then begin
    if c.w_tid >= 0 && c.w_tid <> tid && c.w_clk > vc_get ts.tvc c.w_tid then
      report_race t c g ~owner ~prev_kind:"write" ~prev_tid:c.w_tid ~tid ~is_w;
    (match c.r_tid with
    | -2 ->
        let n = Array.length c.r_vc in
        let rec scan k =
          if k < n then
            if k <> tid && c.r_vc.(k) > 0 && c.r_vc.(k) > vc_get ts.tvc k
            then report_race t c g ~owner ~prev_kind:"read" ~prev_tid:k ~tid ~is_w
            else scan (k + 1)
        in
        scan 0
    | rt when rt >= 0 && rt <> tid && c.r_clk > vc_get ts.tvc rt ->
        report_race t c g ~owner ~prev_kind:"read" ~prev_tid:rt ~tid ~is_w
    | _ -> ());
    (match ts.dstack with
    | udi :: _ when ts.dheld = [] -> report_atomicity t g ~udi ~tid
    | _ -> ());
    List.iter
      (fun lid ->
        match Hashtbl.find_opt t.dlocks lid with
        | Some d -> d.guard_writes <- d.guard_writes + 1
        | None -> ())
      ts.dheld;
    c.w_tid <- tid;
    c.w_clk <- myclk;
    c.w_udi <- (match ts.dstack with u :: _ -> u | [] -> -1);
    (* The reads just checked are ordered before this write; the write
       epoch now dominates them (FastTrack's exclusive transition). *)
    c.r_tid <- -1;
    c.r_clk <- 0;
    c.r_vc <- [||]
  end
  else begin
    if c.w_tid >= 0 && c.w_tid <> tid && c.w_clk > vc_get ts.tvc c.w_tid then
      report_race t c g ~owner ~prev_kind:"write" ~prev_tid:c.w_tid ~tid ~is_w;
    match c.r_tid with
    | -1 ->
        c.r_tid <- tid;
        c.r_clk <- myclk
    | -2 ->
        if tid >= Array.length c.r_vc then begin
          let a' = Array.make (tid + 4) 0 in
          Array.blit c.r_vc 0 a' 0 (Array.length c.r_vc);
          c.r_vc <- a'
        end;
        c.r_vc.(tid) <- myclk
    | rt when rt = tid -> c.r_clk <- myclk
    | rt ->
        if c.r_clk <= vc_get ts.tvc rt then begin
          (* The previous read epoch happens-before us: still exclusive. *)
          c.r_tid <- tid;
          c.r_clk <- myclk
        end
        else begin
          (* Two concurrent readers: promote to a read vector. *)
          let a = Array.make (max rt tid + 4) 0 in
          a.(rt) <- c.r_clk;
          a.(tid) <- myclk;
          c.r_vc <- a;
          c.r_tid <- -2;
          c.r_clk <- 0
        end
  end

let on_access t addr len access =
  match access with
  | Space.Exec -> ()
  | Space.Read | Space.Write ->
      if Sched.in_thread () then begin
        let pkey = Space.pkey_of_addr t.space addr in
        if t.tracked land (1 lsl pkey) <> 0 then begin
          t.accesses <- t.accesses + 1;
          let tid = Sched.self () in
          let ts = tstate t tid in
          let is_w = access = Space.Write in
          let owner =
            if pkey < Array.length t.pkey_udi then t.pkey_udi.(pkey) else -1
          in
          for g = addr asr t.granule_shift to (addr + len - 1) asr t.granule_shift
          do
            process t ts tid g ~owner ~is_w
          done
        end
      end

(* {1 Scheduler events (happens-before skeleton)} *)

let on_sched t ev =
  t.edges <- t.edges + 1;
  match ev with
  | Sched.Spawned { parent; child } ->
      let cs = tstate t child in
      if parent >= 0 then begin
        let ps = tstate t parent in
        vc_join cs.tvc ps.tvc;
        vc_set cs.tvc child (max 1 (vc_get cs.tvc child));
        tick ps parent
      end
  | Sched.Joined { waiter; joined } ->
      vc_join (tstate t waiter).tvc (tstate t joined).tvc
  | Sched.Locked { lock; tid } ->
      let ts = tstate t tid in
      vc_join ts.tvc (lstate t lock).lvc;
      ts.held <- lock :: ts.held
  | Sched.Unlocked { lock; tid } ->
      let ts = tstate t tid in
      vc_join (lstate t lock).lvc ts.tvc;
      tick ts tid;
      ts.held <- remove_id lock ts.held
  | Sched.Rd_locked { lock; tid } ->
      let ts = tstate t tid in
      vc_join ts.tvc (lstate t lock).lvc;
      ts.rheld <- lock :: ts.rheld
  | Sched.Rd_unlocked { lock; tid } ->
      let ts = tstate t tid in
      (* Conservative: the reader's clock joins the lock, giving the next
         writer an edge over every reader that already unlocked. *)
      vc_join (lstate t lock).lvc ts.tvc;
      tick ts tid;
      ts.rheld <- remove_id lock ts.rheld

(* {1 Monitor events (gates, rewinds, Dlocks, allocation reuse)} *)

let report_discipline t ~udi ~tid message =
  add_finding t ("d:" ^ message) class_disc
    {
      rule = "lock-discipline";
      severity = Policy.Warning;
      udi = Some udi;
      addr = None;
      tid;
      message;
    }

let on_dlock t ~lock ~tid ~udi op =
  let ts = tstate t tid in
  match (op : Types.race_lock_op) with
  | Types.Rl_acquire _ ->
      let d =
        match Hashtbl.find_opt t.dlocks lock with
        | Some d -> d
        | None ->
            let d = { acq_udi = 0; guard_writes = 0; dpoisoned = false } in
            Hashtbl.replace t.dlocks lock d;
            d
      in
      d.acq_udi <- udi;
      d.guard_writes <- 0;
      ts.dheld <- lock :: ts.dheld
  | Types.Rl_release ->
      (match Hashtbl.find_opt t.dlocks lock with
      | Some d when d.acq_udi <> udi ->
          report_discipline t ~udi ~tid
            (Printf.sprintf
               "dlock %d: acquired in domain %d but released in domain %d - \
                the critical section spans a rewind boundary"
               lock d.acq_udi udi)
      | Some _ | None -> ());
      ts.dheld <- remove_id lock ts.dheld
  | Types.Rl_poison ->
      (match Hashtbl.find_opt t.dlocks lock with
      | Some d -> d.dpoisoned <- true
      | None -> ());
      ts.dheld <- remove_id lock ts.dheld
  | Types.Rl_clear -> (
      match Hashtbl.find_opt t.dlocks lock with
      | Some d ->
          if d.dpoisoned && d.guard_writes = 0 then
            report_discipline t ~udi ~tid
              (Printf.sprintf
                 "dlock %d: poison cleared with no guarding write to the \
                  protected state since reacquisition"
                 lock);
          d.dpoisoned <- false
      | None -> ())

let track_key t ~pkey ~udi =
  if pkey >= 0 && pkey < Array.length t.pkey_udi then begin
    t.tracked <- t.tracked lor (1 lsl pkey);
    t.pkey_udi.(pkey) <- udi
  end

let clear_range t addr len =
  if len > 0 then
    for g = addr asr t.granule_shift to (addr + len - 1) asr t.granule_shift
    do
      Hashtbl.remove t.cells g
    done

let on_api t ev =
  t.edges <- t.edges + 1;
  match (ev : Types.race_event) with
  | Types.Rv_domain { tid; udi; enter } ->
      let ts = tstate t tid in
      (if enter then ts.dstack <- udi :: ts.dstack
       else
         match ts.dstack with
         | u :: rest when u = udi -> ts.dstack <- rest
         | _ -> ts.dstack <- remove_id udi ts.dstack);
      (* Gate edge: a fresh epoch per atomicity scope, so reports can tie
         accesses to the scope they happened in. *)
      tick ts tid
  | Types.Rv_rewind { tid; victims } ->
      let ts = tstate t tid in
      ts.dstack <- List.filter (fun u -> not (List.mem u victims)) ts.dstack;
      (* Rewind edge: post-rewind execution is a new epoch. *)
      tick ts tid
  | Types.Rv_shared { udi; pkey } -> track_key t ~pkey ~udi
  | Types.Rv_unshared { udi = _; pkey } ->
      if pkey >= 0 && pkey < Array.length t.pkey_udi then begin
        t.tracked <- t.tracked land lnot (1 lsl pkey);
        t.pkey_udi.(pkey) <- -1
      end
  | Types.Rv_alloc { addr; len; _ } ->
      (* Address-reuse boundary: the previous occupant's history must not
         race with the new one's. *)
      Hashtbl.replace t.allocs addr len;
      clear_range t addr len
  | Types.Rv_free { addr; _ } -> (
      match Hashtbl.find_opt t.allocs addr with
      | Some len ->
          Hashtbl.remove t.allocs addr;
          clear_range t addr len
      | None -> ())
  | Types.Rv_lock { lock; tid; udi; op } -> on_dlock t ~lock ~tid ~udi op

(* {1 Attach / detach} *)

(* All live detectors share the single scheduler trace-hook slot; each
   keeps its own clocks (tids are global across one process's runs). *)
let live : t list ref = ref []
let sched_dispatch ev = List.iter (fun d -> on_sched d ev) !live

let findings t = List.rev t.findings_rev

let class_count t cls =
  match cls with
  | `Shared_race -> t.counts.(class_race)
  | `Rewind_atomicity -> t.counts.(class_atom)
  | `Lock_discipline -> t.counts.(class_disc)

let total t = t.counts.(class_race) + t.counts.(class_atom) + t.counts.(class_disc)
let tracked_accesses t = t.accesses
let sync_edges t = t.edges
let shadow_cells t = Hashtbl.length t.cells

let register_metrics t =
  let m = Api.metrics t.sd in
  let module M = Telemetry.Metrics in
  List.iter
    (fun (cls, label) ->
      M.counter_fn m "race_findings_total"
        ~help:"Race-detector findings by class"
        ~labels:[ ("class", label) ]
        (fun () -> t.counts.(cls)))
    [
      (class_race, "shared-race");
      (class_atom, "rewind-atomicity");
      (class_disc, "lock-discipline");
    ];
  M.counter_fn m "race_tracked_accesses_total"
    ~help:"Checked accesses that touched tracked shared memory" (fun () ->
      t.accesses);
  M.counter_fn m "race_sync_edges_total"
    ~help:"Happens-before edges fed to the race detector" (fun () -> t.edges);
  M.gauge_fn m "race_shadow_cells"
    ~help:"Live shadow cells (tracked granules with access history)"
    (fun () -> float_of_int (Hashtbl.length t.cells))

let attach ?(granule = 8) ?(track_root = false) ?(max_findings = 64) sd =
  let shift =
    match granule with
    | 1 -> 0
    | 2 -> 1
    | 4 -> 2
    | 8 -> 3
    | 16 -> 4
    | _ -> invalid_arg "Race.attach: granule must be 1, 2, 4, 8 or 16"
  in
  let t =
    {
      sd;
      space = Api.space sd;
      granule_shift = shift;
      max_findings;
      tracked = 0;
      pkey_udi = Array.make 16 (-1);
      cells = Hashtbl.create 4096;
      tstates = Hashtbl.create 16;
      locks = Hashtbl.create 16;
      dlocks = Hashtbl.create 8;
      allocs = Hashtbl.create 256;
      seen = Hashtbl.create 64;
      findings_rev = [];
      stored = 0;
      counts = Array.make 3 0;
      accesses = 0;
      edges = 0;
      attached = true;
    }
  in
  (* Data domains that already exist are shared memory too. *)
  List.iter
    (fun (di : Api.domain_info) ->
      match di.di_kind with
      | `Data when di.di_pkey >= 0 -> track_key t ~pkey:di.di_pkey ~udi:di.di_udi
      | _ -> ())
    (Api.domains_info sd);
  if track_root then track_key t ~pkey:(Api.root_pkey sd) ~udi:(-1);
  Api.set_race_observer sd (Some (on_api t));
  Space.set_access_hook t.space (Some (on_access t));
  live := !live @ [ t ];
  Sched.set_trace_hook (Some sched_dispatch);
  register_metrics t;
  t

let detach t =
  if t.attached then begin
    t.attached <- false;
    Space.set_access_hook t.space None;
    Api.set_race_observer t.sd None;
    live := List.filter (fun d -> d != t) !live;
    if !live = [] then Sched.set_trace_hook None
  end

let attached t = t.attached

(* {1 Reporting} *)

let errors t =
  List.length
    (List.filter (fun f -> f.severity = Policy.Error) (findings t))

let warnings t =
  List.length
    (List.filter (fun f -> f.severity = Policy.Warning) (findings t))

let to_text t =
  let fs = findings t in
  if fs = [] then "races OK: no findings\n"
  else begin
    let b = Buffer.create 256 in
    List.iter
      (fun f ->
        Buffer.add_string b
          (Printf.sprintf "%-7s %-16s %s %s\n"
             (String.uppercase_ascii (Policy.severity_to_string f.severity))
             f.rule
             (match f.udi with
             | Some u -> Printf.sprintf "udi=%d" u
             | None -> "udi=-")
             f.message))
      fs;
    Buffer.add_string b
      (Printf.sprintf
         "%d shared-race, %d rewind-atomicity, %d lock-discipline \
          (%d access(es) checked, %d sync edge(s))\n"
         t.counts.(class_race)
         t.counts.(class_atom)
         t.counts.(class_disc)
         t.accesses t.edges);
    Buffer.contents b
  end

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"rule\":\"%s\",\"severity\":\"%s\",\"udi\":%s,\"addr\":%s,\"tid\":%d,\"message\":\"%s\"}"
           (json_escape f.rule)
           (Policy.severity_to_string f.severity)
           (match f.udi with Some u -> string_of_int u | None -> "null")
           (match f.addr with Some a -> string_of_int a | None -> "null")
           f.tid (json_escape f.message)))
    (findings t);
  Buffer.add_string b
    (Printf.sprintf
       "],\"shared_race\":%d,\"rewind_atomicity\":%d,\"lock_discipline\":%d,\"accesses\":%d,\"sync_edges\":%d}"
       t.counts.(class_race)
       t.counts.(class_atom)
       t.counts.(class_disc)
       t.accesses t.edges);
  Buffer.contents b

(* Publication is deliberately separate from detection: recording a
   flight event writes monitor memory through checked accesses and
   charges virtual time, which would perturb the run. Call this from
   inside the simulation once the workload is done. *)
let publish t =
  List.iter
    (fun f ->
      Api.flight_event t.sd ?udi:f.udi
        ?arg:(match f.addr with Some a -> Some a | None -> None)
        Checkpoint.Flight.Race)
    (findings t)
