(** The Memcached text protocol (the subset the evaluation exercises):
    [get], [set], [delete] plus response formatting. Requests are parsed
    in place from simulated memory — the connection buffer — so a
    malicious request is already inside the sandboxable data path when it
    is interpreted. *)

type cmd =
  | Get of string
  | Multi_get of string list
      (** [get k1 k2 ...] — one VALUE block per hit, then END *)
  | Set of {
      mode : [ `Set | `Add | `Replace ];
          (** [set] stores unconditionally; [add] only if the key is
              absent; [replace] only if it is present *)
      key : string;
      flags : int;
      declared_len : int;
          (** the length field from the request line, {e as sent}; the
            CVE-2011-4971 analogue passes a negative value here *)
      data_off : int;  (** offset of the payload within the buffer *)
      data_len : int;  (** bytes of payload actually present *)
      rid : string option;
          (** idempotency key from a trailing [id=<rid>] token; keys the
              server's replay journal for at-most-once retries *)
    }
  | Delete of { key : string; rid : string option }
  | Arith of { key : string; delta : int; negate : bool; rid : string option }
      (** [incr]/[decr]: 64-bit unsigned arithmetic on a decimal value,
          clamped at zero on decrement as memcached does *)
  | Stats
  | Stats_telemetry
      (** [stats telemetry] — Prometheus text exposition of the server's
          metrics registry, sent verbatim as the reply body *)
  | Quit
  | Bad of string

val parse : Vmem.Space.t -> addr:int -> len:int -> cmd
(** A trailing [trace=<16 hex>] token on the request line — the causal
    trace context, valid on any command — is stripped before dispatch;
    read it with {!parse_trace}. *)

val parse_trace : Vmem.Space.t -> addr:int -> len:int -> int64
(** Trace id of the request's trailing [trace=] token ([0L] when absent
    or malformed). Servers call this on arrival, before {!parse}, to
    install the context for the request's whole handling. *)

val trace_of_string : string -> int64
(** {!parse_trace} over raw wire bytes — for decisions taken before the
    request reaches simulated memory (load shedding). *)

val max_key_len : int

(** {1 Response formatting (server side)} *)

val stored : string
val not_stored : string
val server_error_oom : string

val server_error_busy : string
(** Sent instead of serving when the target domain is quarantined by the
    supervisor — the client should back off and retry later. *)

val deleted : string
val not_found : string
val end_ : string
val error : string
val value_header : key:string -> flags:int -> len:int -> string

(** {1 Request formatting (client side)} *)

val fmt_get : ?trace:int64 -> string -> string
(** [?trace] (here and below) appends the causal-context token
    [trace=<16 hex>] to the request line; [0L] appends nothing. *)

val fmt_multi_get : string list -> string

val fmt_storage :
  string ->
  ?rid:string ->
  ?trace:int64 ->
  key:string ->
  flags:int ->
  value:string ->
  unit ->
  string
(** General storage-command formatter ([set]/[add]/[replace]) taking
    both optional trailing tokens — what trace-propagating clients use. *)

val fmt_set : key:string -> flags:int -> value:string -> string
val fmt_add : key:string -> flags:int -> value:string -> string
val fmt_replace : key:string -> flags:int -> value:string -> string

val fmt_set_rid :
  rid:string -> key:string -> flags:int -> value:string -> string
(** [_rid] variants emit the idempotency key as a trailing [id=<rid>]
    token on the request line, keying the server's replay journal. *)

val fmt_add_rid :
  rid:string -> key:string -> flags:int -> value:string -> string

val fmt_replace_rid :
  rid:string -> key:string -> flags:int -> value:string -> string

val fmt_set_lying : key:string -> flags:int -> declared:int -> value:string -> string
(** A [set] whose length field disagrees with the payload — the attack
    vector. *)

val fmt_set_lying_traced :
  trace:int64 -> key:string -> flags:int -> declared:int -> value:string -> string
(** {!fmt_set_lying} with a trailing [trace=] token, so the fault the
    attack triggers — and the rewind audit record behind it — can be
    linked back to the offending request in forensics output. *)

val fmt_delete : ?rid:string -> ?trace:int64 -> string -> string
val fmt_incr : ?rid:string -> ?trace:int64 -> string -> int -> string
val fmt_decr : ?rid:string -> ?trace:int64 -> string -> int -> string
val fmt_stats : string
val fmt_stats_telemetry : string
val quit : string

val fmt_stats_reply : (string * string) list -> string

(** {1 Response parsing (client side)} *)

type reply =
  | Value of string
  | Values of (string * string) list  (** multi-get hits: (key, value) *)
  | Number of int  (** incr/decr result *)
  | Miss
  | Stored
  | Deleted
  | NotFound
  | StatsReply of (string * string) list
  | Failed of string

val parse_reply : string -> reply
