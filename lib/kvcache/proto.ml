module Space = Vmem.Space

type cmd =
  | Get of string
  | Multi_get of string list
  | Set of {
      mode : [ `Set | `Add | `Replace ];
      key : string;
      flags : int;
      declared_len : int;
      data_off : int;
      data_len : int;
      rid : string option;
    }
  | Delete of { key : string; rid : string option }
  | Arith of { key : string; delta : int; negate : bool; rid : string option }
  | Stats
  | Stats_telemetry
  | Quit
  | Bad of string

let max_key_len = 250

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

(* An optional trailing [id=<rid>] token on mutating commands carries the
   client's idempotency key. Reads never take one: a trailing token on
   [get] is just another key, so the rid grammar cannot change what a
   read means. *)
let strip_rid words =
  match List.rev words with
  | last :: rest
    when String.length last > 3 && String.sub last 0 3 = "id=" ->
      (List.rev rest, Some (String.sub last 3 (String.length last - 3)))
  | _ -> (words, None)

(* A trailing [trace=<16 hex>] token carries the client's causal trace
   context. Unlike [id=], it may ride on any command — reads included —
   so it is stripped before dispatch; a malformed value is left alone
   (and then parses as a key or argument, exactly as before). *)
let strip_trace words =
  match List.rev words with
  | last :: rest when String.length last > 6 && String.sub last 0 6 = "trace="
    -> (
      match
        Telemetry.Context.of_trace_hex
          (String.sub last 6 (String.length last - 6))
      with
      | Some ctx -> (List.rev rest, Telemetry.Context.trace ctx)
      | None -> (words, 0L))
  | _ -> (words, 0L)

(* The trace id of a request, without interpreting the command — servers
   call this once on arrival to install the context, then [parse]. *)
let parse_trace space ~addr ~len =
  match Space.memchr space ~addr ~len '\r' with
  | None -> 0L
  | Some cr ->
      let line = Space.read_string space addr (cr - addr) in
      snd (strip_trace (split_words line))

(* Same extraction from raw wire bytes — for decisions taken before the
   request is admitted into simulated memory (load shedding). *)
let trace_of_string msg =
  match String.index_opt msg '\r' with
  | None -> 0L
  | Some cr -> snd (strip_trace (split_words (String.sub msg 0 cr)))

let parse space ~addr ~len =
  match Space.memchr space ~addr ~len '\r' with
  | None -> Bad "no CRLF"
  | Some cr ->
      let line = Space.read_string space addr (cr - addr) in
      let data_off = cr - addr + 2 in
      let words, _trace = strip_trace (split_words line) in
      (match words with
      | [ "get"; key ] when String.length key <= max_key_len -> Get key
      | "get" :: (_ :: _ :: _ as keys)
        when List.for_all (fun k -> String.length k <= max_key_len) keys ->
          Multi_get keys
      | [ "quit" ] -> Quit
      | [ "stats" ] -> Stats
      | [ "stats"; "telemetry" ] -> Stats_telemetry
      | _ -> (
          let mwords, rid = strip_rid words in
          match mwords with
          | [ "delete"; key ] when String.length key <= max_key_len ->
              Delete { key; rid }
          | [ ("incr" | "decr") as op; key; delta ]
            when String.length key <= max_key_len -> (
              match int_of_string_opt delta with
              | Some d when d >= 0 ->
                  Arith { key; delta = d; negate = op = "decr"; rid }
              | _ -> Bad "bad incr/decr delta")
          | [ ("set" | "add" | "replace") as op; key; flags; _exptime; bytes ]
            -> (
              match (int_of_string_opt flags, int_of_string_opt bytes) with
              | Some flags, Some declared_len ->
                  if String.length key > max_key_len then Bad "key too long"
                  else if data_off > len then Bad "missing data block"
                  else
                    Set
                      {
                        mode =
                          (match op with
                          | "add" -> `Add
                          | "replace" -> `Replace
                          | _ -> `Set);
                        key;
                        flags;
                        declared_len;
                        data_off = addr + data_off;
                        data_len = max 0 (len - data_off - 2);
                        rid;
                      }
              | _ -> Bad "bad set arguments")
          | _ -> Bad "unknown command"))

let stored = "STORED\r\n"
let not_stored = "NOT_STORED\r\n"
let server_error_oom = "SERVER_ERROR out of memory storing object\r\n"
let server_error_busy = "SERVER_ERROR busy\r\n"
let deleted = "DELETED\r\n"
let not_found = "NOT_FOUND\r\n"
let end_ = "END\r\n"
let error = "ERROR\r\n"

let value_header ~key ~flags ~len =
  Printf.sprintf "VALUE %s %d %d\r\n" key flags len

let rid_suffix = function None -> "" | Some r -> " id=" ^ r

(* Trace rides last on the line ([... id=<rid> trace=<hex>]): it is the
   first token stripped on the server. Zero = no context = no token. *)
let trace_suffix = function
  | None -> ""
  | Some tr -> if tr = 0L then "" else Printf.sprintf " trace=%016Lx" tr

let fmt_get ?trace key =
  Printf.sprintf "get %s%s\r\n" key (trace_suffix trace)

let fmt_multi_get keys = Printf.sprintf "get %s\r\n" (String.concat " " keys)

let fmt_storage op ?rid ?trace ~key ~flags ~value () =
  Printf.sprintf "%s %s %d 0 %d%s%s\r\n%s\r\n" op key flags
    (String.length value) (rid_suffix rid) (trace_suffix trace) value

let fmt_set ~key ~flags ~value = fmt_storage "set" ~key ~flags ~value ()
let fmt_add ~key ~flags ~value = fmt_storage "add" ~key ~flags ~value ()
let fmt_replace ~key ~flags ~value = fmt_storage "replace" ~key ~flags ~value ()

(* [_rid] variants carry the idempotency key ([rid] is required there:
   with no positional argument in these signatures an optional label
   could never be erased). *)
let fmt_set_rid ~rid ~key ~flags ~value =
  fmt_storage "set" ~rid ~key ~flags ~value ()

let fmt_add_rid ~rid ~key ~flags ~value =
  fmt_storage "add" ~rid ~key ~flags ~value ()

let fmt_replace_rid ~rid ~key ~flags ~value =
  fmt_storage "replace" ~rid ~key ~flags ~value ()

let fmt_set_lying ~key ~flags ~declared ~value =
  Printf.sprintf "set %s %d 0 %d\r\n%s\r\n" key flags declared value

let fmt_set_lying_traced ~trace ~key ~flags ~declared ~value =
  Printf.sprintf "set %s %d 0 %d%s\r\n%s\r\n" key flags declared
    (trace_suffix (Some trace))
    value

let fmt_delete ?rid ?trace key =
  Printf.sprintf "delete %s%s%s\r\n" key (rid_suffix rid) (trace_suffix trace)

let fmt_incr ?rid ?trace key d =
  Printf.sprintf "incr %s %d%s%s\r\n" key d (rid_suffix rid)
    (trace_suffix trace)

let fmt_decr ?rid ?trace key d =
  Printf.sprintf "decr %s %d%s%s\r\n" key d (rid_suffix rid)
    (trace_suffix trace)
let fmt_stats = "stats\r\n"
let fmt_stats_telemetry = "stats telemetry\r\n"
let quit = "quit\r\n"

let fmt_stats_reply kvs =
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf "STAT %s %s\r\n" k v) kvs)
  ^ end_

type reply =
  | Value of string
  | Values of (string * string) list
  | Number of int
  | Miss
  | Stored
  | Deleted
  | NotFound
  | StatsReply of (string * string) list
  | Failed of string

let parse_stats s =
  let lines = String.split_on_char '\n' s in
  List.filter_map
    (fun line ->
      let line = String.trim line in
      match split_words line with
      | [ "STAT"; k; v ] -> Some (k, v)
      | _ -> None)
    lines

let parse_reply s =
  if s = not_stored then NotFound
  else if String.length s >= 3
     && (match int_of_string_opt (String.trim s) with Some _ -> true | None -> false)
  then Number (int_of_string (String.trim s))
  else if String.length s >= 5 && String.sub s 0 5 = "STAT " then
    StatsReply (parse_stats s)
  else if s = stored then Stored
  else if s = deleted then Deleted
  else if s = not_found then NotFound
  else if s = end_ then Miss
  else if String.length s > 6 && String.sub s 0 6 = "VALUE " then begin
    (* One or more [VALUE <key> <flags> <len>\r\n<data>\r\n] blocks, END. *)
    let rec blocks off acc =
      if off >= String.length s then Some (List.rev acc)
      else if String.length s - off >= 5 && String.sub s off 5 = "END\r\n" then
        Some (List.rev acc)
      else
        match String.index_from_opt s off '\r' with
        | None -> None
        | Some cr -> (
            match split_words (String.sub s off (cr - off)) with
            | [ "VALUE"; key; _flags; len ] -> (
                match int_of_string_opt len with
                | Some n when cr + 2 + n + 2 <= String.length s ->
                    blocks (cr + 2 + n + 2) ((key, String.sub s (cr + 2) n) :: acc)
                | _ -> None)
            | _ -> None)
    in
    match blocks 0 [] with
    | Some [ (_, v) ] -> Value v
    | Some hits -> Values hits
    | None -> Failed "malformed VALUE block"
  end
  else Failed s
