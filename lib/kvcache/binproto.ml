module Space = Vmem.Space

let header_size = 24
let magic_request = 0x80
let magic_response = 0x81
let op_get = 0x00
let op_set = 0x01
let op_delete = 0x04
let status_ok = 0x0000
let status_not_found = 0x0001
let status_einval = 0x0004
let status_oom = 0x0082
let status_busy = 0x0085

let is_binary space ~addr ~len = len >= 1 && Space.load8 space addr = magic_request

let be16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]

let sign_extend_32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

(* Read big-endian fields out of simulated memory. *)
let load_be16 space a = (Space.load8 space a lsl 8) lor Space.load8 space (a + 1)

let load_be32 space a =
  (load_be16 space a lsl 16) lor load_be16 space (a + 2)

let read_key space ~addr ~len ~extlen ~keylen =
  let off = header_size + extlen in
  if off + keylen > len then None
  else Some (Space.read_string space (addr + off) keylen)

let parse space ~addr ~len =
  if len < header_size then Proto.Bad "short binary header"
  else if Space.load8 space addr <> magic_request then Proto.Bad "bad magic"
  else begin
    let opcode = Space.load8 space (addr + 1) in
    let keylen = load_be16 space (addr + 2) in
    let extlen = Space.load8 space (addr + 4) in
    (* The CVE: the unsigned on-the-wire field is consumed as signed. *)
    let bodylen = sign_extend_32 (load_be32 space (addr + 8)) in
    if keylen = 0 || keylen > Proto.max_key_len then Proto.Bad "bad key length"
    else
      match read_key space ~addr ~len ~extlen ~keylen with
      | None -> Proto.Bad "truncated key"
      | Some key -> (
          (* The opaque field doubles as the idempotency key: non-zero
             values key the server's replay journal (zero = "no id", what
             legacy clients send). Namespaced so text [id=] keys and
             binary opaques cannot collide. *)
          let opaque = load_be32 space (addr + 12) in
          let rid =
            if opaque <> 0 then Some (Printf.sprintf "bin-%d" opaque) else None
          in
          match opcode with
          | o when o = op_get -> Proto.Get key
          | o when o = op_delete -> Proto.Delete { key; rid }
          | o when o = op_set ->
              if extlen <> 8 then Proto.Bad "set needs 8 extras bytes"
              else begin
                let flags = load_be32 space (addr + header_size) in
                (* vlen = bodylen - keylen - extlen, computed on the signed
                   quantity exactly as the vulnerable code did. *)
                let declared_len = bodylen - keylen - extlen in
                let data_off = addr + header_size + extlen + keylen in
                Proto.Set
                  {
                    mode = `Set;
                    key;
                    flags;
                    declared_len;
                    data_off;
                    data_len = max 0 (len - (header_size + extlen + keylen));
                    rid;
                  }
              end
          | _ -> Proto.Bad "unsupported opcode")
  end

(* {1 Frame building} *)

let put_be16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 1) (Char.chr (v land 0xFF))

let put_be32 b off v =
  put_be16 b off ((v lsr 16) land 0xFFFF);
  put_be16 b (off + 2) (v land 0xFFFF)

let frame ~magic ~opcode ~status ~extras ~key ~value =
  let keylen = String.length key and extlen = String.length extras in
  let body = extlen + keylen + String.length value in
  let b = Bytes.make (header_size + body) '\000' in
  Bytes.set b 0 (Char.chr magic);
  Bytes.set b 1 (Char.chr opcode);
  put_be16 b 2 keylen;
  Bytes.set b 4 (Char.chr extlen);
  put_be16 b 6 status;
  put_be32 b 8 body;
  Bytes.blit_string extras 0 b header_size extlen;
  Bytes.blit_string key 0 b (header_size + extlen) keylen;
  Bytes.blit_string value 0 b (header_size + extlen + keylen) (String.length value);
  Bytes.to_string b

let be32_string v =
  String.init 4 (fun i -> Char.chr ((v lsr (8 * (3 - i))) land 0xFF))

let res_value ~flags ~value =
  frame ~magic:magic_response ~opcode:op_get ~status:status_ok
    ~extras:(be32_string flags) ~key:"" ~value

let res_stored =
  frame ~magic:magic_response ~opcode:op_set ~status:status_ok ~extras:"" ~key:""
    ~value:""

let res_deleted =
  frame ~magic:magic_response ~opcode:op_delete ~status:status_ok ~extras:""
    ~key:"" ~value:""

let res_not_found =
  frame ~magic:magic_response ~opcode:op_get ~status:status_not_found ~extras:""
    ~key:"" ~value:""

let res_error status =
  frame ~magic:magic_response ~opcode:0xFF ~status ~extras:"" ~key:"" ~value:""

(* The causal trace context rides in the 8-byte CAS field (bytes 16-23),
   which our request subset never uses otherwise — [frame] always zeroes
   it, and zero is the "no context" encoding. The id is 62 bits, so the
   big-endian split into two 32-bit halves below is lossless. *)
let load_be64 space a =
  Int64.logor
    (Int64.shift_left (Int64.of_int (load_be32 space a)) 32)
    (Int64.of_int (load_be32 space (a + 4)))

let parse_trace space ~addr ~len =
  if len < header_size || Space.load8 space addr <> magic_request then 0L
  else load_be64 space (addr + 16)

(* Same extraction from raw wire bytes (pre-admission decisions). *)
let trace_of_string s =
  if String.length s < header_size || Char.code s.[0] <> magic_request then 0L
  else
    let be32 off =
      Int64.of_int
        ((Char.code s.[off] lsl 24)
        lor (Char.code s.[off + 1] lsl 16)
        lor (Char.code s.[off + 2] lsl 8)
        lor Char.code s.[off + 3])
    in
    Int64.logor (Int64.shift_left (be32 16) 32) (be32 20)

(* Patch the trace id into an already-built request frame. *)
let with_trace s trace =
  if trace = 0L then s
  else begin
    let b = Bytes.of_string s in
    put_be32 b 16 (Int64.to_int (Int64.shift_right_logical trace 32));
    put_be32 b 20 (Int64.to_int (Int64.logand trace 0xFFFFFFFFL));
    Bytes.to_string b
  end

(* Patch the opaque field into an already-built frame. *)
let with_opaque s opaque =
  if opaque = 0 then s
  else begin
    let b = Bytes.of_string s in
    put_be32 b 12 (opaque land 0xFFFFFFFF);
    Bytes.to_string b
  end

let req_get key =
  frame ~magic:magic_request ~opcode:op_get ~status:0 ~extras:"" ~key ~value:""

let req_set ~key ~flags ~value =
  frame ~magic:magic_request ~opcode:op_set ~status:0
    ~extras:(be32_string flags ^ "\000\000\000\000")
    ~key ~value

let req_set_opaque ~opaque ~key ~flags ~value =
  with_opaque (req_set ~key ~flags ~value) opaque

let req_set_lying ~key ~flags ~body_len ~value =
  let honest = req_set ~key ~flags ~value in
  let b = Bytes.of_string honest in
  put_be32 b 8 (body_len land 0xFFFFFFFF);
  Bytes.to_string b

let req_delete ?(opaque = 0) key =
  with_opaque
    (frame ~magic:magic_request ~opcode:op_delete ~status:0 ~extras:"" ~key
       ~value:"")
    opaque

let parse_reply s =
  if String.length s < header_size then Proto.Failed "short binary reply"
  else if Char.code s.[0] <> magic_response then Proto.Failed "bad magic"
  else begin
    let opcode = Char.code s.[1] in
    let status = be16 s 6 in
    let extlen = Char.code s.[4] in
    if status = status_not_found then
      if opcode = op_get then Proto.Miss else Proto.NotFound
    else if status <> status_ok then Proto.Failed (Printf.sprintf "status 0x%x" status)
    else if opcode = op_get then
      Proto.Value (String.sub s (header_size + extlen) (String.length s - header_size - extlen))
    else if opcode = op_set then Proto.Stored
    else if opcode = op_delete then Proto.Deleted
    else Proto.Failed "unexpected opcode"
  end
