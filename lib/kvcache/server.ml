module Sched = Simkern.Sched
module Cost = Simkern.Cost
module Space = Vmem.Space
module Prot = Vmem.Prot
module Api = Sdrad.Api
module Types = Sdrad.Types
module Supervisor = Resilience.Supervisor
module Fault_inject = Resilience.Fault_inject
module Journal = Resilience.Journal

let log_src = Logs.Src.create "sdrad.kvcache" ~doc:"key-value cache server"

module Log = (val Logs.src_log log_src : Logs.LOG)

type variant = Baseline | Tlsf_alloc | Sdrad

type config = {
  variant : variant;
  workers : int;
  port : int;
  buckets : int;
  vulnerable : bool;
  nested_udi : int;
  db_udi : int;
  lock_udi : int;
  proc_cycles : float;
  conn_buf_size : int;
  image_bytes : int;
  max_db_bytes : int;
  per_client_domains : bool;
  client_udi_base : int;
  journal_cap : int;  (* replay-journal capacity (idempotency keys) *)
  shed_queue_limit : int;  (* shed when waitset backlog exceeds this; 0 = off *)
  shed_wait_limit : float;  (* shed when queueing delay exceeds this; 0 = off *)
  nonblocking_admit : bool;  (* turn supervisor backoff waits into busy *)
  verify_policy : bool;  (* run the static policy verifier after setup *)
  race_detector : bool;  (* attach the dynamic race detector at start *)
  gate_batch_limit : int;  (* requests coalesced per batched gate; 0 = off *)
}

let default_config =
  {
    variant = Baseline;
    workers = 4;
    port = 11211;
    buckets = 16384;
    vulnerable = false;
    nested_udi = 1;
    db_udi = 11;
    lock_udi = 12;
    proc_cycles = 12_000.0;
    conn_buf_size = 16 * 1024;
    image_bytes = 4 * 1024 * 1024;
    max_db_bytes = max_int;
    per_client_domains = false;
    client_udi_base = 100;
    journal_cap = 512;
    shed_queue_limit = 0;
    shed_wait_limit = 0.0;
    nonblocking_admit = false;
    verify_policy = false;
    race_detector = false;
    gate_batch_limit = 0;
  }

type conn_state = { cbuf : int; mutable outstanding : bool }

type t = {
  sched : Sched.t;
  space : Space.t;
  cfg : config;
  sd : Api.t option;
  sup : Supervisor.t option;
  faults : Fault_inject.t option;
  client_udis : (int, int) Hashtbl.t;  (* source address -> stable udi *)
  mutable next_client_udi : int;
  slab : Slab.t;
  db : Store.t;
  listener : Netsim.listener;
  waitsets : Netsim.Waitset.ws array;
  mutable tids : Sched.tid list;
  conns : (int, conn_state) Hashtbl.t;
  mutable all_conns : Netsim.conn list;
  glock : Sched.Mutex.mutex;
  lock_word : int;
  (* allocator used for connection-lifetime and per-request buffers *)
  buf_alloc : int -> int;
  buf_free : int -> unit;
  metrics : Telemetry.Metrics.t;
  journal : Journal.t;  (* root-domain state: survives nested discards *)
  c_served : Telemetry.Metrics.counter;
  c_rewinds : Telemetry.Metrics.counter;
  c_dropped : Telemetry.Metrics.counter;
  c_busy : Telemetry.Metrics.counter;
  c_shed : Telemetry.Metrics.counter;
  h_rewind_cycles : Telemetry.Metrics.histogram;
  mutable rewind_lat : float list;
  mutable crashed : bool;
  mutable race : Analysis.Race.t option;
}

(* glibc cost model for the Baseline variant: allocations come from a
   bump arena; the (amortized) malloc/free work is charged as constants. *)
let glibc_allocator space =
  (* Bump arena with per-size free lists: freed chunks are recycled, as
     glibc's bins would, so the model neither leaks RSS nor charges real
     allocator work (that is what the constants are for). *)
  let arena = ref 0 and off = ref 0 and arena_len = 256 * 1024 in
  let bins : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let bin n =
    match Hashtbl.find_opt bins n with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace bins n l;
        l
  in
  let sizes : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let alloc n =
    Sched.charge 80.0;
    let n = (n + 15) land lnot 15 in
    let p =
      match !(bin n) with
      | p :: rest ->
          (bin n) := rest;
          p
      | [] ->
          if !arena = 0 || !off + n > arena_len then begin
            arena := Space.mmap space ~len:(max arena_len n) ~prot:Prot.rw ~pkey:0;
            off := 0
          end;
          let p = !arena + !off in
          off := !off + n;
          p
    in
    Hashtbl.replace sizes p n;
    p
  in
  let free p =
    Sched.charge 50.0;
    match Hashtbl.find_opt sizes p with
    | Some n ->
        Hashtbl.remove sizes p;
        (bin n) := p :: !(bin n)
    | None -> ()
  in
  (alloc, free)

let tlsf_allocator space ~malloc_region =
  let heap = Tlsf.create space ~name:"kvcache-bufs" in
  let grow len =
    let len = max len (1024 * 1024) in
    let region = malloc_region len in
    Tlsf.add_region heap ~addr:region ~len
  in
  let alloc n =
    match Tlsf.malloc_opt heap n with
    | Some p -> p
    | None ->
        grow (n + 64);
        Tlsf.malloc heap n
  in
  (alloc, (fun p -> Tlsf.free heap p), heap)

(* The unchecked copy of CVE-2011-4971: the length field from the request
   header is used directly as the memcpy length; a negative 32-bit value
   becomes a huge unsigned size and the copy overruns both the item
   allocation and the source buffer. *)
let vulnerable_copy t ~src ~dst ~declared =
  let huge = declared land 0xFFFFFFFF in
  let rec copy off =
    if off < huge then begin
      let n = min 1024 (huge - off) in
      Space.blit t.space ~src:(src + off) ~dst:(dst + off) ~len:n;
      copy (off + n)
    end
  in
  copy 0

(* [add] requires absence, [replace] requires presence (memcached). *)
let storage_mode_blocked t mode key =
  match mode with
  | `Set -> false
  | `Add -> Store.peek t.db key <> None
  | `Replace -> Store.peek t.db key = None

let global_lock t f =
  Sched.Mutex.lock t.glock;
  (* The lock word itself lives in (protected) memory: a real CAS. *)
  Space.store64 t.space t.lock_word 1;
  let finish () =
    Space.store64 t.space t.lock_word 0;
    Sched.Mutex.unlock t.glock
  in
  match f () with
  | v -> finish (); v
  | exception e -> finish (); raise e

(* Response formatting differs between the text and binary protocols;
   request handling is shared. *)
type wire = {
  w_stored : string;
  w_oom : string;
  w_busy : string;
  w_deleted : string;
  w_not_found : string;
  w_miss : string;
  w_error : string;
  w_value : key:string -> flags:int -> value:string -> string;
  w_values : (string * int * string) list -> string;  (* (key, flags, value) *)
}

let text_wire =
  {
    w_stored = Proto.stored;
    w_oom = Proto.server_error_oom;
    w_busy = Proto.server_error_busy;
    w_deleted = Proto.deleted;
    w_not_found = Proto.not_found;
    w_miss = Proto.end_;
    w_error = Proto.error;
    w_value =
      (fun ~key ~flags ~value ->
        Proto.value_header ~key ~flags ~len:(String.length value)
        ^ value ^ "\r\n" ^ Proto.end_);
    w_values =
      (fun hits ->
        String.concat ""
          (List.map
             (fun (key, flags, value) ->
               Proto.value_header ~key ~flags ~len:(String.length value)
               ^ value ^ "\r\n")
             hits)
        ^ Proto.end_);
  }

let binary_wire =
  {
    w_stored = Binproto.res_stored;
    w_oom = Binproto.res_error Binproto.status_oom;
    w_busy = Binproto.res_error Binproto.status_busy;
    w_deleted = Binproto.res_deleted;
    w_not_found = Binproto.res_not_found;
    w_miss = Binproto.res_not_found;
    w_error = Binproto.res_error Binproto.status_einval;
    w_value = (fun ~key:_ ~flags ~value -> Binproto.res_value ~flags ~value);
    (* The binary protocol has no multi-get frame in our subset. *)
    w_values = (fun _ -> Binproto.res_error Binproto.status_einval);
  }

(* incr/decr: parse the stored decimal value, apply the delta (clamping
   decrements at zero, as memcached does), store the new decimal back. *)
let apply_arith t ~key ~delta ~negate =
  match Store.peek t.db key with
  | None -> None
  | Some (vaddr, vlen, flags) -> (
      match int_of_string_opt (Space.read_string t.space vaddr vlen) with
      | None -> Some (Result.Error "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n")
      | Some v ->
          let v' = if negate then max 0 (v - delta) else v + delta in
          let s = string_of_int v' in
          let buf = t.buf_alloc (String.length s) in
          Space.store_string t.space buf s;
          (match Store.prepare t.db ~key ~flags ~value_src:buf
                   ~value_len:(String.length s) with
          | Some item -> Store.commit t.db ~key item
          | None -> ());
          t.buf_free buf;
          Some (Result.Ok v'))

let stats_reply t =
  Proto.fmt_stats_reply
    [
      ("curr_items", string_of_int (Store.count t.db));
      ("bytes", string_of_int (Store.value_bytes t.db));
      ("evictions", string_of_int (Store.evictions t.db));
      ("total_requests",
       string_of_int (Telemetry.Metrics.counter_value t.c_served));
      ("rewinds", string_of_int (Telemetry.Metrics.counter_value t.c_rewinds));
      ("dropped_connections",
       string_of_int (Telemetry.Metrics.counter_value t.c_dropped));
      ("busy_rejections",
       string_of_int (Telemetry.Metrics.counter_value t.c_busy));
      ("slab_pages", string_of_int (Slab.pages_allocated t.slab));
      (* Operator truth about the bounded incident log: how many rewind
         reports the monitor had to evict (0 for the Baseline variant). *)
      ("dropped_incidents",
       match t.sd with
       | Some sd -> string_of_int (Api.dropped_incidents sd)
       | None -> "0");
    ]

(* [stats telemetry]: the registry's Prometheus exposition as the reply
   body. Under SDRaD the registry is the monitor's, so core, supervisor
   and server series all appear in one scrape. *)
let telemetry_reply t = Telemetry.Metrics.expose t.metrics

let parse_any space ~addr ~len =
  if Binproto.is_binary space ~addr ~len then
    (binary_wire, Binproto.parse space ~addr ~len)
  else (text_wire, Proto.parse space ~addr ~len)

let rec start sched space ?sdrad ?supervisor ?faults net cfg =
  let sd = sdrad in
  (match (cfg.variant, sd) with
  | Sdrad, None -> invalid_arg "Server.start: Sdrad variant needs ~sdrad"
  | _ -> ());
  if cfg.image_bytes > 0 then begin
    (* The process image: text, shared libraries, static data. *)
    let img = Space.mmap space ~len:cfg.image_bytes ~prot:Prot.rw ~pkey:0 in
    Space.fill space ~addr:img ~len:cfg.image_bytes '\x90'
  end;
  (* Database memory: a plain mapping for Baseline/Tlsf, a data domain
     under SDRaD (readable by nested domains, writable from root). *)
  let db_page_alloc =
    match (cfg.variant, sd) with
    | Sdrad, Some sd ->
        Api.init_data sd ~udi:cfg.db_udi ~heap_size:(2 * 1024 * 1024) ();
        Api.dprotect sd ~udi:cfg.nested_udi ~tddi:cfg.db_udi Prot.read;
        fun len -> Api.malloc sd ~udi:cfg.db_udi len
    | _ -> fun len -> Space.mmap space ~len ~prot:Prot.rw ~pkey:0
  in
  let slab = Slab.create ~max_bytes:cfg.max_db_bytes space ~alloc_page:db_page_alloc in
  let db = Store.create space ~buckets:cfg.buckets ~slab ~alloc_table:db_page_alloc in
  (* The shared mutex lives in its own data domain under SDRaD (§V-A). *)
  let lock_word =
    match (cfg.variant, sd) with
    | Sdrad, Some sd ->
        Api.init_data sd ~udi:cfg.lock_udi ~heap_size:4096 ();
        Api.malloc sd ~udi:cfg.lock_udi 8
    | _ -> Space.mmap space ~len:4096 ~prot:Prot.rw ~pkey:0
  in
  let buf_alloc, buf_free, buf_heap =
    match cfg.variant with
    | Baseline ->
        let alloc, free = glibc_allocator space in
        (alloc, free, None)
    | Tlsf_alloc ->
        let alloc, free, heap =
          tlsf_allocator space ~malloc_region:(fun len ->
              Space.mmap space ~len ~prot:Prot.rw ~pkey:0)
        in
        (alloc, free, Some heap)
    | Sdrad ->
        let sd = Option.get sd in
        let alloc, free, heap =
          tlsf_allocator space ~malloc_region:(fun len ->
              (* Root-domain memory: grow via the SDRaD root heap so pages
                 carry the root protection key. *)
              Api.malloc sd ~udi:Types.root_udi len)
        in
        (alloc, free, Some heap)
  in
  (match (faults, buf_heap) with
  | Some fi, Some heap -> Fault_inject.arm_tlsf fi heap ~site:"kv.alloc"
  | _ -> ());
  let listener = Netsim.listen net ~port:cfg.port in
  (* Share the monitor's registry when there is one, so `stats telemetry`
     scrapes core + supervisor + server series together. *)
  let metrics =
    match sd with
    | Some sd -> Api.metrics sd
    | None -> Telemetry.Metrics.create ()
  in
  let module M = Telemetry.Metrics in
  let t =
    {
      sched;
      space;
      cfg;
      sd;
      sup = supervisor;
      faults;
      client_udis = Hashtbl.create 16;
      next_client_udi = cfg.client_udi_base;
      slab;
      db;
      listener;
      waitsets = Array.init cfg.workers (fun _ -> Netsim.Waitset.create ());
      tids = [];
      conns = Hashtbl.create 64;
      all_conns = [];
      glock = Sched.Mutex.create ();
      lock_word;
      buf_alloc;
      buf_free;
      metrics;
      journal = Journal.create ~metrics ~name:"kvcache" ~capacity:cfg.journal_cap ();
      c_served =
        M.counter metrics "kvcache_requests_total" ~help:"Requests handled";
      c_rewinds =
        M.counter metrics "kvcache_rewinds_total"
          ~help:"Events discarded by a domain rewind";
      c_dropped =
        M.counter metrics "kvcache_dropped_connections_total"
          ~help:"Connections closed after a rewind";
      c_busy =
        M.counter metrics "kvcache_busy_rejections_total"
          ~help:"Requests answered busy while quarantined";
      c_shed =
        M.counter metrics "kvcache_shed_total"
          ~help:"Requests shed by overload admission control";
      h_rewind_cycles =
        M.histogram metrics "kvcache_rewind_cycles"
          ~help:"Cycles from fault to connection closed";
      rewind_lat = [];
      crashed = false;
      race = None;
    }
  in
  M.gauge_fn metrics "kvcache_items" ~help:"Items currently stored" (fun () ->
      float_of_int (Store.count t.db));
  M.gauge_fn metrics "kvcache_value_bytes" ~help:"Bytes of stored values"
    (fun () -> float_of_int (Store.value_bytes t.db));
  M.counter_fn metrics "kvcache_evictions_total" ~help:"LRU evictions"
    (fun () -> Store.evictions t.db);
  (* Static policy check over the compartments set up above: key
     disjointness, cross-domain visibility, gate buffers, abort hooks,
     reachability. Raises [Analysis.Policy.Rejected] on any error. *)
  (match (cfg.verify_policy, sd) with
  | true, Some sd ->
      Analysis.Policy.assert_ok (Analysis.Policy.of_api sd)
  | _ -> ());
  (* Dynamic race detection over shared (data-domain) memory. Host-side
     only: attaching never perturbs the simulated run. *)
  (match (cfg.race_detector, sd) with
  | true, Some sd -> t.race <- Some (Analysis.Race.attach sd)
  | _ -> ());
  (* Rewind audit records carry the journal's cumulative replay hits, so
     an operator can line an incident up against PR 4's "no acked write
     lost" guarantee. *)
  (match sd with
  | Some sd -> Api.add_journal_probe sd (fun () -> Journal.hits t.journal)
  | None -> ());
  let dispatcher_tid = Sched.spawn sched ~name:"mc-dispatch" (fun () -> dispatcher t) in
  let worker_tids =
    List.init cfg.workers (fun i ->
        Sched.spawn sched ~name:(Printf.sprintf "mc-worker%d" i) (fun () -> worker t i))
  in
  t.tids <- dispatcher_tid :: worker_tids;
  t

(* The process died: the kernel closes its sockets and listener. *)
and crash_cleanup t =
  Log.err (fun m -> m "server process crashed; all connections lost");
  t.crashed <- true;
  Netsim.close_listener t.listener;
  Array.iter Netsim.Waitset.close t.waitsets;
  List.iter Netsim.close t.all_conns

and dispatcher t =
  let next = ref 0 in
  let rec loop () =
    match Netsim.accept t.listener with
    | None -> ()
    | Some c ->
        if t.crashed then Netsim.close c
        else begin
          let cbuf = t.buf_alloc t.cfg.conn_buf_size in
          Hashtbl.replace t.conns (Netsim.id c) { cbuf; outstanding = false };
          t.all_conns <- c :: t.all_conns;
          Netsim.Waitset.add t.waitsets.(!next mod t.cfg.workers) c;
          incr next;
          loop ()
        end
  in
  try loop () with e -> crash_cleanup t; raise e

and worker t i =
  let ws = t.waitsets.(i) in
  let batching = t.cfg.gate_batch_limit > 0 && t.cfg.variant = Sdrad in
  let serve c msg arrival =
    Sched.charge (Space.cost t.space).Cost.syscall;
    (* epoll_wait + read(2) *)
    if should_shed t ws ~arrival then shed t c msg
    else handle_event t ws c msg
  in
  (* Pull whatever else is already deliverable into the same open gate
     (a zero-deadline wait is a poll), up to the batch limit — the
     gate's privilege raise/drop then amortizes over the batch. *)
  let rec drain n =
    if n < t.cfg.gate_batch_limit then
      match Netsim.Waitset.wait_deadline ws ~deadline:(Sched.now ()) with
      | None -> ()
      | Some c -> (
          match Netsim.recv_with_arrival c with
          | None ->
              drop_conn t ws c;
              drain n
          | Some (msg, arrival) ->
              serve c msg arrival;
              drain (n + 1))
  in
  let rec loop () =
    match Netsim.Waitset.wait ws with
    | None -> ()
    | Some c ->
        (match Netsim.recv_with_arrival c with
        | None -> drop_conn t ws c
        | Some (msg, arrival) ->
            if batching then
              Api.with_gate (Option.get t.sd) (fun () ->
                  serve c msg arrival;
                  drain 1)
            else serve c msg arrival);
        loop ()
  in
  try loop () with e -> crash_cleanup t; raise e

(* Overload admission control: a request is shed — answered with the
   existing busy path — when the worker's queue depth or the request's
   time-in-queue says the server is behind, *before* any parsing or
   domain switch is spent on it. Composes with the supervisor: shedding
   protects against load, quarantine against repeat faulters. *)
and should_shed t ws ~arrival =
  (t.cfg.shed_queue_limit > 0
  && Netsim.Waitset.backlog ws > t.cfg.shed_queue_limit)
  || (t.cfg.shed_wait_limit > 0.0
     && Sched.now () -. arrival > t.cfg.shed_wait_limit)

and shed t c msg =
  Telemetry.Metrics.inc t.c_shed;
  let binary =
    String.length msg > 0 && Char.code msg.[0] = Binproto.magic_request
  in
  (* Shedding happens before the request touches simulated memory, but
     the dropped op still deserves a flight-recorder event carrying its
     trace id — that is how the client's timeout shows up in forensics. *)
  (match t.sd with
  | Some sd ->
      let trace =
        if binary then Binproto.trace_of_string msg
        else Proto.trace_of_string msg
      in
      Api.with_trace sd trace (fun () ->
          Api.flight_event sd ~udi:(udi_for_conn t c) Checkpoint.Flight.Shed)
  | None -> ());
  Netsim.send c (if binary then binary_wire.w_busy else text_wire.w_busy)

and drop_conn t ws c =
  Netsim.Waitset.remove ws c;
  Netsim.close c;
  (match Hashtbl.find_opt t.conns (Netsim.id c) with
  | Some st ->
      t.buf_free st.cbuf;
      Hashtbl.remove t.conns (Netsim.id c)
  | None -> ())

and handle_event t ws c msg =
  Sched.charge t.cfg.proc_cycles;
  match t.cfg.variant with
  | Baseline | Tlsf_alloc -> handle_plain t ws c msg
  | Sdrad -> handle_sdrad t ws c msg

and handle_plain t ws c msg =
  let space = t.space in
  let st = Hashtbl.find t.conns (Netsim.id c) in
  let len = min (String.length msg) (t.cfg.conn_buf_size - 2) in
  Space.store_string space st.cbuf (String.sub msg 0 len);
  Telemetry.Metrics.inc t.c_served;
  let w, cmd = parse_any space ~addr:st.cbuf ~len in
  match cmd with
  | Get key -> (
      match Store.get t.db key with
      | Some (vaddr, vlen, flags) ->
          (* Stage the response through a per-request buffer (exercises
             the allocator variant), then send. *)
          let out = t.buf_alloc (vlen + 64) in
          Space.blit space ~src:vaddr ~dst:out ~len:vlen;
          let value = Space.read_string space out vlen in
          t.buf_free out;
          Netsim.send c (w.w_value ~key ~flags ~value)
      | None -> Netsim.send c w.w_miss)
  | Set { mode; key; flags; declared_len; data_off; data_len; rid } ->
      if t.cfg.vulnerable && declared_len < 0 then begin
        (* item allocated from the (bogus, truncated) length... *)
        let item =
          match Slab.alloc t.slab (Store.item_size ~key ~value_len:data_len) with
          | Some p -> p
          | None -> failwith "slab exhausted"
        in
        (* ...then the unchecked copy rampages until it faults. *)
        vulnerable_copy t ~src:data_off
          ~dst:(item + Store.header_size + String.length key)
          ~declared:declared_len;
        Netsim.send c w.w_stored
      end
      else
        let reply =
          replay_or t rid (fun () ->
              if declared_len <> data_len then w.w_error
              else if storage_mode_blocked t mode key then Proto.not_stored
              else
                (* Allocate and fill outside the lock; link under it. *)
                match
                  Store.prepare t.db ~key ~flags ~value_src:data_off
                    ~value_len:data_len
                with
                | None -> w.w_oom
                | Some item ->
                    global_lock t (fun () -> Store.commit t.db ~key item);
                    w.w_stored)
        in
        Netsim.send c reply
  | Delete { key; rid } ->
      let reply =
        replay_or t rid (fun () ->
            global_lock t (fun () ->
                if Store.delete t.db key then w.w_deleted else w.w_not_found))
      in
      Netsim.send c reply
  | Multi_get keys ->
      let hits =
        List.filter_map
          (fun key ->
            match Store.get t.db key with
            | Some (vaddr, vlen, flags) ->
                let out = t.buf_alloc (vlen + 64) in
                Space.blit space ~src:vaddr ~dst:out ~len:vlen;
                let value = Space.read_string space out vlen in
                t.buf_free out;
                Some (key, flags, value)
            | None -> None)
          keys
      in
      Netsim.send c (w.w_values hits)
  | Arith { key; delta; negate; rid } ->
      let reply =
        replay_or t rid (fun () ->
            global_lock t (fun () ->
                match apply_arith t ~key ~delta ~negate with
                | None -> w.w_not_found
                | Some (Error msg) -> msg
                | Some (Ok v) -> Printf.sprintf "%d\r\n" v))
      in
      Netsim.send c reply
  | Stats -> Netsim.send c (stats_reply t)
  | Stats_telemetry -> Netsim.send c (telemetry_reply t)
  | Quit -> drop_conn t ws c
  | Bad _ -> Netsim.send c w.w_error

(* At-most-once bracket around a mutation: a request id that is already
   journaled is answered with the journaled response instead of being
   re-applied; a fresh execution's response is journaled right after the
   commit, before it can be lost on the wire. Both halves run in the
   parent (root domain), so this is exactly the window a nested-domain
   rewind cannot touch: no entry = the commit never happened and the
   retry re-executes; entry = the commit happened and the retry replays. *)
and replay_or t rid compute =
  match rid with
  | None -> compute ()
  | Some r -> (
      match Journal.find t.journal r with
      | Some reply ->
          (* A journal hit is a causal consequence of the original op's
             earlier attempt: record it under the retry's trace id. *)
          (match t.sd with
          | Some sd -> Api.flight_event sd Checkpoint.Flight.Replay
          | None -> ());
          reply
      | None ->
          let reply = compute () in
          Journal.record t.journal r reply;
          reply)

(* Deferred update computed inside the nested domain, applied in the
   parent after a normal exit (Figure 3 steps 8-9). *)
and apply_deferred t w rid d =
  let compute d =
    match d with
    | `Set (mode, key, flags, src, len) ->
        (* The presence check belongs inside the lock: the deferred commit
           must be atomic with it. *)
        global_lock t (fun () ->
            if storage_mode_blocked t mode key then Proto.not_stored
            else
              match
                Store.prepare t.db ~key ~flags ~value_src:src ~value_len:len
              with
              | None -> w.w_oom
              | Some item ->
                  Store.commit t.db ~key item;
                  w.w_stored)
    | `Delete key ->
        global_lock t (fun () ->
            if Store.delete t.db key then w.w_deleted else w.w_not_found)
    | `Arith (key, delta, negate) ->
        global_lock t (fun () ->
            match apply_arith t ~key ~delta ~negate with
            | None -> w.w_not_found
            | Some (Error msg) -> msg
            | Some (Ok v) -> Printf.sprintf "%d\r\n" v)
  in
  match d with
  | `None -> None
  | (`Set _ | `Delete _ | `Arith _) as d ->
      Some (replay_or t rid (fun () -> compute d))

(* With per-client domains, the udi is keyed by the connection's source
   address, so a client that reconnects (e.g. after its connection was
   dropped by a rewind) lands back in the same domain — its supervision
   history (budget, backoff, quarantine) follows it across connections,
   which is what defeats the reconnect-and-fault-again DoS loop. *)
and udi_for_conn t c =
  if not t.cfg.per_client_domains then t.cfg.nested_udi
  else
    let src = Netsim.remote_addr c in
    match Hashtbl.find_opt t.client_udis src with
    | Some udi -> udi
    | None ->
        let udi = t.next_client_udi in
        t.next_client_udi <- udi + 1;
        Hashtbl.replace t.client_udis src udi;
        (match t.sd with
        | Some sd -> Api.dprotect sd ~udi ~tddi:t.cfg.db_udi Prot.read
        | None -> ());
        udi

and handle_sdrad t ws c msg =
  let sd = Option.get t.sd in
  let space = t.space in
  let udi = udi_for_conn t c in
  let st = Hashtbl.find t.conns (Netsim.id c) in
  let len = min (String.length msg) (t.cfg.conn_buf_size - 2) in
  Space.store_string space st.cbuf (String.sub msg 0 len);
  Telemetry.Metrics.inc t.c_served;
  let binary = Binproto.is_binary space ~addr:st.cbuf ~len in
  let w = if binary then binary_wire else text_wire in
  (* Install the request's causal trace context before anything else: the
     admit decision, every domain switch, fault, replay and audit record
     triggered by this request carries its id. *)
  let trace =
    if binary then Binproto.parse_trace space ~addr:st.cbuf ~len
    else Proto.parse_trace space ~addr:st.cbuf ~len
  in
  Api.set_trace sd trace;
  Api.flight_event sd ~udi Checkpoint.Flight.Admit;
  let opts = { Types.default_options with heap_size = 64 * 1024 } in
  let on_rewind f =
    (* Abnormal exit: discard the event, close only this client. *)
    Log.info (fun m ->
        m "rewound event on conn %d: %a" (Netsim.id c) Types.pp_fault f);
    Telemetry.Metrics.inc t.c_rewinds;
    drop_conn t ws c;
    Telemetry.Metrics.inc t.c_dropped;
    let lat = Sched.now () -. f.Types.at in
    t.rewind_lat <- lat :: t.rewind_lat;
    Telemetry.Metrics.observe t.h_rewind_cycles lat;
    `Rewound
  in
  let body () =
    (* Deep copy of the connection buffer into the domain (step 4),
       through the cached per-(caller, callee) marshalling buffer: the
       persistent sub-heap keeps it across events, so steady state does
       no malloc/free per request. *)
    let dbuf = Api.gate_buffer sd ~udi (t.cfg.conn_buf_size + 8) in
    Space.blit space ~src:st.cbuf ~dst:dbuf ~len;
    Api.enter sd udi;
    (match t.faults with
    | Some fi ->
        ignore (Fault_inject.fire_in_domain fi ~site:"kv.domain" ~sd ~buf:dbuf ~len)
    | None -> ());
    let outcome = drive_machine_in_domain t sd ~udi ~dbuf ~len in
    Api.exit_domain sd;
    (* Apply the deferred update atomically in the parent (step 9),
       then format the response from the (accessible) domain data. *)
    let reply =
      match outcome with
      | `Value (addr, vlen, flags, key) ->
          let value = Space.read_string space addr vlen in
          Api.free sd ~udi addr;
          (* Deferred LRU bump, applied with parent privileges. *)
          global_lock t (fun () -> Store.touch t.db key);
          Some (w.w_value ~key ~flags ~value)
      | `Multi_value hits ->
          let materialized =
            List.map
              (fun (key, flags, addr, vlen) ->
                let v = Space.read_string space addr vlen in
                Api.free sd ~udi addr;
                global_lock t (fun () -> Store.touch t.db key);
                (key, flags, v))
              hits
          in
          Some (w.w_values materialized)
      | `Miss -> Some w.w_miss
      | `Bad_cmd -> Some w.w_error
      | `Stats_cmd -> Some (stats_reply t)
      | `Telemetry_cmd -> Some (telemetry_reply t)
      | `Quit_cmd -> None
      | `Deferred (rid, d, staged) ->
          let r = apply_deferred t w rid d in
          Option.iter (fun p -> Api.free sd ~udi p) staged;
          r
    in
    (* The marshalling buffer is cache-owned and reused by the next
       event; only the saved context is dropped here. *)
    Api.deinit sd udi;
    `Reply reply
  in
  let result =
    match t.sup with
    | Some sup ->
        (* Supervised: a quarantined client udi is turned away before any
           domain state is touched. With [nonblocking_admit] a backoff
           wait is also turned into a busy reply instead of parking the
           worker — overloaded servers shed rather than sleep. *)
        let run =
          if t.cfg.nonblocking_admit then Supervisor.run_nb else Supervisor.run
        in
        run sup ~udi ~opts ~on_rewind ~on_busy:(fun ~until:_ -> `Busy) body
    | None -> Api.run sd ~udi ~opts ~on_rewind body
  in
  (match result with
  | `Busy ->
      Telemetry.Metrics.inc t.c_busy;
      Netsim.send c w.w_busy
  | `Rewound -> ()
  | `Reply (Some reply) -> Netsim.send c reply
  | `Reply None -> drop_conn t ws c);
  (* The context is per-request: clear it so later work on this worker
     thread (or the next request) is not mis-attributed. *)
  Api.set_trace sd 0L

(* drive_machine (Figure 3 step 6), executing inside the nested domain:
   reads the DB read-only, allocates only in its own sub-heap, and stages
   values and mutations for the parent. *)
and drive_machine_in_domain t sd ~udi ~dbuf ~len =
  let space = t.space in
  let _, cmd = parse_any space ~addr:dbuf ~len in
  match cmd with
  | Get key -> (
      (* The domain may only read the database: the LRU recency update is
         a write, so it is deferred to the parent like every mutation. *)
      match Store.peek t.db key with
      | Some (vaddr, vlen, flags) ->
          (* Copy the value into the domain: the response is assembled by
             the parent from this staged copy. *)
          let out = Api.malloc sd ~udi (max 8 vlen) in
          Space.blit space ~src:vaddr ~dst:out ~len:vlen;
          `Value (out, vlen, flags, key)
      | None -> `Miss)
  | Set { mode; key; flags; declared_len; data_off; data_len; rid } ->
      if t.cfg.vulnerable && declared_len < 0 then begin
        (* Wrapped slabs_alloc: the copy item lives in the nested domain,
           so the rampaging copy hits the domain boundary, not the DB. *)
        let icopy = Api.malloc sd ~udi (Store.item_size ~key ~value_len:data_len) in
        vulnerable_copy t ~src:data_off
          ~dst:(icopy + Store.header_size + String.length key)
          ~declared:declared_len;
        `Deferred (None, `None, Some icopy)
      end
      else if declared_len <> data_len then `Bad_cmd
      else begin
        let vcopy = Api.malloc sd ~udi (max 8 data_len) in
        Space.blit space ~src:data_off ~dst:vcopy ~len:data_len;
        `Deferred (rid, `Set (mode, key, flags, vcopy, data_len), Some vcopy)
      end
  | Multi_get keys ->
      let hits =
        List.filter_map
          (fun key ->
            match Store.peek t.db key with
            | Some (vaddr, vlen, flags) ->
                let out = Api.malloc sd ~udi (max 8 vlen) in
                Space.blit space ~src:vaddr ~dst:out ~len:vlen;
                Some (key, flags, out, vlen)
            | None -> None)
          keys
      in
      `Multi_value hits
  | Delete { key; rid } -> `Deferred (rid, `Delete key, None)
  | Arith { key; delta; negate; rid } ->
      `Deferred (rid, `Arith (key, delta, negate), None)
  | Stats -> `Stats_cmd
  | Stats_telemetry -> `Telemetry_cmd
  | Quit -> `Quit_cmd
  | Bad _ -> `Bad_cmd

let stop t =
  Netsim.close_listener t.listener;
  Array.iter Netsim.Waitset.close t.waitsets

let join t = List.iter Sched.join t.tids
let worker_busy_cycles t =
  List.fold_left
    (fun acc tid ->
      match (Sched.thread_clock t.sched tid, Sched.thread_waited t.sched tid) with
      | Some c, Some w -> acc +. (c -. w)
      | _ -> acc)
    0.0 t.tids

let worker_utilization t =
  match t.tids with
  | [] -> []
  | _dispatcher :: workers ->
      List.filter_map (fun tid -> Sched.busy_fraction t.sched tid) workers

let store t = t.db
let crashed t = t.crashed
let requests_served t = Telemetry.Metrics.counter_value t.c_served
let rewinds t = Telemetry.Metrics.counter_value t.c_rewinds
let busy_rejections t = Telemetry.Metrics.counter_value t.c_busy
let shed_count t = Telemetry.Metrics.counter_value t.c_shed
let replay_hits t = Journal.hits t.journal
let journal t = t.journal
let client_domains t = Hashtbl.length t.client_udis
let supervisor t = t.sup
let rewind_latencies t = t.rewind_lat
let dropped_connections t = Telemetry.Metrics.counter_value t.c_dropped
let metrics t = t.metrics
let race_detector t = t.race
let db_bytes t = Slab.pages_allocated t.slab * Slab.slab_page_size
let db_check t = Store.check t.db
let evictions t = Store.evictions t.db
