(** The Memcached binary protocol (the subset relevant to the paper).

    This is the protocol CVE-2011-4971 actually lives in: the 32-bit
    {e total body length} field of the 24-byte request header is consumed
    as a signed quantity, so a negative value survives validation and the
    value length derived from it ([bodylen - keylen - extlen]) becomes a
    huge unsigned size once it reaches memmove. {!parse} reproduces the
    faulty derivation bit-for-bit and hands the (possibly negative)
    declared length to the server, which decides — per its [vulnerable]
    flag — whether to range-check it.

    Request header layout (network byte order):
    {v
    0 magic (0x80)   1 opcode        2-3 key length
    4 extras length  5 data type     6-7 vbucket
    8-11 total body length           12-15 opaque
    16-23 CAS
    v} *)

val header_size : int
val magic_request : int
val magic_response : int

(** Response status codes. *)
val status_ok : int

val status_not_found : int
val status_oom : int
val status_einval : int

val status_busy : int
(** Temporary-failure status (0x0085): the target domain is quarantined;
    retry later. *)

val is_binary : Vmem.Space.t -> addr:int -> len:int -> bool
(** Does the buffer start with the request magic? *)

val parse : Vmem.Space.t -> addr:int -> len:int -> Proto.cmd
(** Decode a binary request into the shared command type; [Set]'s
    [declared_len] carries the signed value-length derivation described
    above. Malformed frames yield [Bad]. *)

val parse_trace : Vmem.Space.t -> addr:int -> len:int -> int64
(** The causal trace id carried in the request's CAS field (bytes
    16-23, unused by our command subset); [0L] = no context. *)

val trace_of_string : string -> int64
(** {!parse_trace} over raw wire bytes (pre-admission decisions). *)

val with_trace : string -> int64 -> string
(** Patch a trace id into an already-built request frame's CAS field
    ([0L] leaves the frame untouched) — the binary-protocol analogue of
    the text protocol's trailing [trace=] token. *)

(** {1 Response building (server side)} *)

val res_value : flags:int -> value:string -> string
val res_stored : string
val res_deleted : string
val res_not_found : string
val res_error : int -> string

(** {1 Request building (client side)} *)

val req_get : string -> string
val req_set : key:string -> flags:int -> value:string -> string

val req_set_opaque :
  opaque:int -> key:string -> flags:int -> value:string -> string
(** [opaque] (non-zero) is the request's idempotency key: the server
    journals the response under [bin-<opaque>] and answers retries
    carrying the same opaque from the journal. 0 means "no id", as legacy
    clients send. *)

val req_set_lying : key:string -> flags:int -> body_len:int -> value:string -> string
(** A set whose total-body-length header field is attacker-chosen (e.g.
    [0xFFFFFFFF], which the vulnerable server reads as [-1]). *)

val req_delete : ?opaque:int -> string -> string

(** {1 Response parsing (client side)} *)

val parse_reply : string -> Proto.reply
