(** The Memcached-like server of §V-A: a dispatcher thread accepts
    connections and assigns them round-robin to worker threads, each
    running an event loop over a readiness waitset. Three build variants
    mirror the paper's Figure 4:

    - {!Baseline}: the plain server. A malicious request that corrupts
      memory crashes the whole process (every connection, the entire
      cache).
    - {!Tlsf_alloc}: identical, but connection-lifetime allocations go
      through the TLSF allocator instead of the glibc cost model —
      isolating the allocator-swap component of SDRaD's overhead.
    - {!Sdrad}: each client event is handled in a nested domain (Figure 3)
      with a deep-copied connection buffer; the database and hash table
      live in a dedicated data domain that nested domains may only read;
      updates are deferred to the normal domain exit and applied
      atomically under the shared lock. An abnormal exit discards the
      event's domain and closes only the offending connection.

    The CVE-2011-4971 analogue is armed with [vulnerable = true]: a [set]
    whose length field is negative drives an unchecked copy loop that
    overruns the item allocation. *)

type variant = Baseline | Tlsf_alloc | Sdrad

type config = {
  variant : variant;
  workers : int;
  port : int;
  buckets : int;
  vulnerable : bool;
  nested_udi : int;  (** udi for per-worker event domains *)
  db_udi : int;  (** data domain holding slabs + hash table *)
  lock_udi : int;  (** data domain holding the shared lock word *)
  proc_cycles : float;
      (** fixed per-request processing cost standing in for the event
          loop, state machine and libevent work our lean reimplementation
          does not perform; calibrated so baseline per-op cost matches
          Memcached's (~10 µs/op) *)
  conn_buf_size : int;
  image_bytes : int;
      (** resident process image (text, libraries, static data) touched at
          startup, so RSS comparisons have a realistic denominator *)
  max_db_bytes : int;
      (** Memcached's [-m]: cap on slab memory; the store evicts
          least-recently-used items when it is reached *)
  per_client_domains : bool;
      (** {!Sdrad} variant only: key the event domain by the connection's
          source address instead of sharing one [nested_udi], so a
          client's supervision history (rewind budget, quarantine)
          survives reconnects. Off by default. *)
  client_udi_base : int;
      (** first udi handed out for per-client domains (must not collide
          with [db_udi]/[lock_udi]) *)
  journal_cap : int;
      (** capacity of the replay journal (idempotency keys) backing
          at-most-once retries; lives in root-domain memory, so it
          survives nested-domain discards *)
  shed_queue_limit : int;
      (** shed (answer busy) when a worker's waitset backlog exceeds this
          many queued messages; 0 disables queue-depth shedding *)
  shed_wait_limit : float;
      (** shed when a request waited longer than this many cycles in the
          worker's queue; 0 disables deadline-based shedding *)
  nonblocking_admit : bool;
      (** use {!Resilience.Supervisor.admit_nb}: a supervisor backoff
          delay becomes a busy reply instead of parking the worker *)
  verify_policy : bool;
      (** {!Sdrad} variant only: after the data domains are set up, run
          the {!Analysis.Policy} verifier over a snapshot of the monitor
          and raise {!Analysis.Policy.Rejected} if any error-severity
          finding (overlapping keys, unintended cross-domain visibility,
          unreadable gate buffers) is present. Off by default. *)
  race_detector : bool;
      (** {!Sdrad} variant only: attach an {!Analysis.Race} detector at
          start. Detection is host-side — it never perturbs the
          simulated run — and its findings/metrics are reachable via
          {!race_detector} and the shared registry. Off by default. *)
  gate_batch_limit : int;
      (** {!Sdrad} variant only: coalesce up to this many consecutive
          ready requests into one {!Core.Api.open_gate} batched-gate
          section per worker wakeup, eliding the per-request monitor
          call-gate WRPKRU writes (supervision, flight events and fault
          isolation are unchanged). 0 disables batching (the default). *)
}

val default_config : config

type t

val start :
  Simkern.Sched.t ->
  Vmem.Space.t ->
  ?sdrad:Sdrad.Api.t ->
  ?supervisor:Resilience.Supervisor.t ->
  ?faults:Resilience.Fault_inject.t ->
  Netsim.t ->
  config ->
  t
(** Spawn the dispatcher and worker threads. [sdrad] is required for the
    {!Sdrad} variant. [supervisor] (attached to the same [sdrad]) gates
    every event domain: quarantined udis are answered with
    [SERVER_ERROR busy] (status 0x85 on the binary protocol) instead of
    being served. [faults] arms the deterministic injection sites —
    ["kv.alloc"] (buffer-allocator failure) and ["kv.domain"]
    (memory corruption inside the event domain). *)

val stop : t -> unit
(** Close the listener and worker waitsets; threads drain and exit. *)

val join : t -> unit
(** Wait until all server threads have finished (call after {!stop}, from
    inside the simulation). *)

(** {1 Introspection} *)

val store : t -> Store.t
val crashed : t -> bool
val requests_served : t -> int
val rewinds : t -> int
val rewind_latencies : t -> float list
(** Cycles from SDRaD catching the fault to the offending connection
    being closed — the paper's abnormal-exit latency (§V-A). *)

val dropped_connections : t -> int

val busy_rejections : t -> int
(** Requests answered with [SERVER_ERROR busy] because the supervisor had
    the target domain quarantined. *)

val shed_count : t -> int
(** Requests answered busy by overload admission control — before any
    parsing or domain switch was spent on them. *)

val replay_hits : t -> int
(** Retried mutations answered from the replay journal instead of being
    applied a second time. *)

val journal : t -> Resilience.Journal.t
(** The server's replay journal (root-domain state). *)

val client_domains : t -> int
(** Per-client domains allocated so far (0 unless [per_client_domains]). *)

val supervisor : t -> Resilience.Supervisor.t option
val worker_busy_cycles : t -> float
(** Total CPU (non-waiting) cycles consumed by this server's threads —
    the resource cost a replicated deployment multiplies. *)

val worker_utilization : t -> float list
(** Busy fraction of each worker thread over the simulation span — shows
    whether the server was the bottleneck (the paper could not saturate 8
    threads). Meaningful once the simulation has finished. *)

val db_bytes : t -> int
val db_check : t -> string list
val evictions : t -> int

val metrics : t -> Telemetry.Metrics.t
(** The registry behind the [stats telemetry] verb: the monitor's registry
    for the {!Sdrad} variant (core + supervisor + server series in one
    scrape), a private one otherwise. *)

val race_detector : t -> Analysis.Race.t option
(** The race detector attached at start when [config.race_detector] was
    set ([None] otherwise). *)
