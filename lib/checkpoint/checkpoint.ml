module Rewind_log = Rewind_log
module Flight = Flight
module Sched = Simkern.Sched
module Cost = Simkern.Cost
module Space = Vmem.Space

type snap = { image : Space.image; pages : int; dirty : int }

let page_size = 4096

(* Re-populating warm state from upstream (database reload over the
   network) is far slower than a local memcpy: the paper reports ~2
   minutes for 10 GiB, i.e. roughly 24 cycles per byte at 2.1 GHz. *)
let reload_cycles_per_byte = 24.0

(* Process re-exec and initialization until it accepts connections; the
   paper measures ~0.4 s to restart the Memcached container and ~1 ms to
   respawn an NGINX worker. This constant is the bare-process part; the
   caller adds container or reload overheads as appropriate. *)
let exec_cycles = 2.1e6

let dump_cost cost pages =
  cost.Cost.syscall
  +. (float_of_int pages
      *. (cost.Cost.mmap_per_page
          +. (float_of_int page_size *. cost.Cost.mem_byte)))

let restore_cost cost pages =
  cost.Cost.syscall
  +. (float_of_int pages
      *. (cost.Cost.mmap_per_page +. cost.Cost.page_touch
          +. (float_of_int page_size *. cost.Cost.mem_byte)))

let take space =
  let image = Space.checkpoint space in
  let pages = Space.image_bytes image / page_size in
  Sched.charge (dump_cost (Space.cost space) pages);
  { image; pages; dirty = pages }

let take_incremental space ~base =
  let image = Space.checkpoint space in
  let pages = Space.image_bytes image / page_size in
  let dirty = Space.image_diff_pages base.image image in
  let cost = Space.cost space in
  (* Scan everything (page-table walk), persist only the delta. *)
  Sched.charge
    (cost.Cost.syscall
    +. (float_of_int pages *. cost.Cost.mmap_per_page)
    +. (float_of_int dirty *. float_of_int page_size *. cost.Cost.mem_byte));
  { image; pages; dirty }

let restore space snap =
  Space.restore_image space snap.image;
  Sched.charge (restore_cost (Space.cost space) snap.pages)

let bytes snap = snap.dirty * page_size
let dirty_pages snap = snap.dirty
let take_cycles space snap = dump_cost (Space.cost space) snap.pages
let restore_cycles space snap = restore_cost (Space.cost space) snap.pages

let restart_cycles _space ~reload_bytes =
  exec_cycles +. (reload_cycles_per_byte *. float_of_int reload_bytes)
