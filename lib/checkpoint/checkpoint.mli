(** Checkpoint & restore baseline (§II-A, §VII of the paper).

    The classic availability mechanism SDRaD is compared against: dump the
    whole process-memory image, and on failure restore it and resume. The
    virtual-time costs follow CRIU-style behaviour — dumping and restoring
    are proportional to resident memory, which is precisely the drawback
    the paper's compartmentalization-based rewind avoids. Used by
    experiments E2 and A3. *)

module Rewind_log = Rewind_log
(** Durable two-phase rewind transaction log backing the monitor's
    atomic multi-domain rewind — see {!Rewind_log}. *)

module Flight = Flight
(** Per-domain flight recorder in monitor-protected memory — see
    {!Flight}. *)

type snap

val take : Vmem.Space.t -> snap
(** Dump all mapped pages. Charges page-walk plus per-byte copy costs to
    the calling thread. *)

val take_incremental : Vmem.Space.t -> base:snap -> snap
(** Dump relative to a previous snapshot: all resident pages are still
    scanned (dirty tracking via soft-dirty bits is kernel work we charge
    for), but only changed pages are persisted, so the payload — and the
    dominant write cost — shrinks to the working set. Restoring the
    result rebuilds the full state (the base's pages are folded in). *)

val dirty_pages : snap -> int
(** Pages this snapshot actually persisted ([= all] for a full dump). *)

val restore : Vmem.Space.t -> snap -> unit
(** Restore mappings and contents from a snapshot. Charges per-byte copy
    costs plus a page-fault cost per restored page. *)

val bytes : snap -> int
(** Size of the checkpoint payload. *)

val take_cycles : Vmem.Space.t -> snap -> float
(** Virtual cycles a [take] of this image costs (for reporting without
    re-running). *)

val restore_cycles : Vmem.Space.t -> snap -> float

val restart_cycles : Vmem.Space.t -> reload_bytes:int -> float
(** Cost model for the alternative to rewinding: kill and restart the
    process, then re-populate [reload_bytes] of warm state from upstream
    (e.g. re-loading a cache from its database). Uses an exec/initialize
    constant plus a per-byte reload cost dominated by network/database
    round trips. *)
