(* Durable two-phase rewind transaction log.

   The rewind primitive discards a whole nested-domain subtree; a second
   fault arriving *during* that discard must never leave a
   partially-rolled-back tree behind (the "must-fix F1" of the Intercore
   rollback review: a partially-rolled-back run with no recovery path).
   This module gives the reference monitor the two pieces that make the
   discard transactional and the history queryable:

   - an {e intent record}, written into monitor-root simulated memory
     {e before} the first discard: incident id, trigger, and the ordered
     domain subtree with every stack/heap extent about to be thrown away,
     plus a progress counter advanced after each domain. A fault injected
     mid-rewind resumes from the progress counter instead of corrupting
     the tree — and because the record lives in protected monitor memory,
     nothing a compartment can do reaches it.

   - a bounded append-only {e audit log} of committed incidents: the
     intent record, once the last domain is discarded, is stamped with an
     end time and linked into a FIFO ring ("rollback is not undo":
     history must survive and be queryable). Evictions beyond the
     capacity are counted durably in the log header, never silent.

   Everything is stored through checked {!Vmem.Space} accesses in a
   caller-supplied heap (the monitor's TLSF heap), so the log is real,
   protected, RSS-visible memory — the same property domain records and
   saved contexts already have.

   One incident can span several blocks: when a rewind propagates to the
   grandparent (collateral exits of intermediate frames), each additional
   subtree is chained as a {e continuation block} of the same incident,
   so the report still shows exactly one record per rewind. *)

module Space = Vmem.Space

type kind = [ `Segv | `Stack_smash | `Explicit ]

type extent = {
  x_udi : int;
  x_was : [ `Entered | `Ready | `Dormant ];
  x_stack : int * int;  (* base, len *)
  x_regions : (int * int) list;  (* sub-heap regions, (base, len) *)
}

type record = {
  r_id : int;
  r_target : int;  (* the domain the trigger fault failed in *)
  r_tid : int;
  r_kind : kind;
  r_si : string;  (* si_code rendering, "-" when not a SEGV *)
  r_fault_addr : int;
  r_msg : string;  (* access kind / explicit abort message *)
  r_subtree : extent list;  (* discard order, continuations merged *)
  r_replays : int;  (* cumulative journal replay hits at commit *)
  r_start : float;
  r_end : float;
  r_interrupts : int;  (* faults absorbed mid-rewind by the intent *)
  r_events : Flight.event list;
      (* flight-recorder excerpt captured at intent time, continuations
         merged, oldest first *)
}

(* {1 Memory layout}

   Header block (one per log):
     +0 magic  +8 next id  +16 appended  +24 dropped  +32 intent head

   Incident block (one per begin_incident; all slots are store64 words):
     +0   magic          +8   incident id   +16  committed flag
     +24  continuation   +32  target udi    +40  tid
     +48  trigger kind   +56  fault addr    +64  t_start (cycles)
     +72  t_end (cycles) +80  interrupts    +88  journal replays
     +96  n domains      +104 progress      +112 si len
     +120 msg len        +128 n events
     +136 si bytes, msg bytes (each padded to 8),
          then n * Flight.stored_size flight-recorder event slots
          (the black-box excerpt captured at intent time),
          then per domain:
            udi, prior state, stack base, stack len,
            n regions, (addr, len) per region *)

let hdr_magic = 0x5244_4C47 (* "RDLG" *)
let blk_magic = 0x5245_5749 (* "REWI" *)
let hdr_size = 40
let blk_fixed = 136
let str_cap = 96 (* si/msg truncation bound *)

type t = {
  space : Space.t;
  heap : Tlsf.t;
  cap : int;
  header : int;
  ring : int Queue.t;  (* committed incident head blocks, oldest first *)
  mutable head : int;  (* in-flight incident head block, 0 = none *)
  mutable tail : int;  (* active (last) block of the in-flight chain *)
  (* Mirrors of the durable header words, for telemetry closures that are
     sampled from contexts whose PKRU denies the monitor key. *)
  mutable m_appended : int;
  mutable m_dropped : int;
  mutable m_bytes : int;  (* bytes currently held by record blocks *)
}

let w t a = Space.store64 t.space a
let r t a = Space.load64 t.space a

let create space ~heap ~cap =
  let cap = max 1 cap in
  let header = Tlsf.malloc heap hdr_size in
  let t =
    {
      space;
      heap;
      cap;
      header;
      ring = Queue.create ();
      head = 0;
      tail = 0;
      m_appended = 0;
      m_dropped = 0;
      m_bytes = 0;
    }
  in
  w t header hdr_magic;
  w t (header + 8) 1;
  w t (header + 16) 0;
  w t (header + 24) 0;
  w t (header + 32) 0;
  t

let pending t = t.head <> 0
let appended t = t.m_appended
let dropped t = t.m_dropped
let retained t = Queue.length t.ring
let bytes t = t.m_bytes

let align8 n = (n + 7) land lnot 7

let trunc s = if String.length s > str_cap then String.sub s 0 str_cap else s

let kind_code = function `Segv -> 0 | `Stack_smash -> 1 | `Explicit -> 2
let code_kind = function 0 -> `Segv | 1 -> `Stack_smash | _ -> `Explicit
let was_code = function `Entered -> 0 | `Ready -> 1 | `Dormant -> 2
let code_was = function 0 -> `Entered | 1 -> `Ready | _ -> `Dormant

let block_size ~si ~msg ~events ~subtree =
  blk_fixed
  + align8 (String.length si)
  + align8 (String.length msg)
  + (Flight.stored_size * List.length events)
  + List.fold_left
      (fun acc x -> acc + (8 * (5 + (2 * List.length x.x_regions))))
      0 subtree

(* Free one incident (its whole continuation chain). *)
let free_chain t addr =
  let rec go a =
    if a <> 0 then begin
      let next = r t (a + 24) in
      t.m_bytes <- t.m_bytes - Tlsf.usable_size t.heap a;
      Tlsf.free t.heap a;
      go next
    end
  in
  go addr

let drop_oldest t =
  match Queue.take_opt t.ring with
  | None -> false
  | Some oldest ->
      free_chain t oldest;
      w t (t.header + 24) (r t (t.header + 24) + 1);
      t.m_dropped <- t.m_dropped + 1;
      true

(* Allocate under memory pressure: committed history is worth less than
   the in-flight intent, so evict oldest records until the block fits. *)
let alloc_block t size =
  let rec go () =
    match Tlsf.malloc_opt t.heap size with
    | Some a ->
        t.m_bytes <- t.m_bytes + Tlsf.usable_size t.heap a;
        Some a
    | None -> if drop_oldest t then go () else None
  in
  go ()

let write_block t addr ~id ~target ~tid ~kind ~si ~fault_addr ~msg ~at ~events
    ~subtree =
  w t addr blk_magic;
  w t (addr + 8) id;
  w t (addr + 16) 0;
  w t (addr + 24) 0;
  w t (addr + 32) target;
  w t (addr + 40) tid;
  w t (addr + 48) (kind_code kind);
  w t (addr + 56) fault_addr;
  w t (addr + 64) (int_of_float at);
  w t (addr + 72) 0;
  w t (addr + 80) 0;
  w t (addr + 88) 0;
  w t (addr + 96) (List.length subtree);
  w t (addr + 104) 0;
  w t (addr + 112) (String.length si);
  w t (addr + 120) (String.length msg);
  w t (addr + 128) (List.length events);
  let p = addr + blk_fixed in
  if si <> "" then Space.store_string t.space p si;
  let p = p + align8 (String.length si) in
  if msg <> "" then Space.store_string t.space p msg;
  let p = ref (p + align8 (String.length msg)) in
  List.iter
    (fun ev ->
      Flight.store t.space !p ev;
      p := !p + Flight.stored_size)
    events;
  List.iter
    (fun x ->
      let base, len = x.x_stack in
      w t !p x.x_udi;
      w t (!p + 8) (was_code x.x_was);
      w t (!p + 16) base;
      w t (!p + 24) len;
      w t (!p + 32) (List.length x.x_regions);
      p := !p + 40;
      List.iter
        (fun (a, l) ->
          w t !p a;
          w t (!p + 8) l;
          p := !p + 16)
        x.x_regions)
    subtree

(* Phase 1: durably record what is about to be discarded. [continue]
   chains the subtree onto the in-flight incident (collateral exits of a
   grandparent rewind); a fresh incident takes the next id. Returns
   [false] — the rewind proceeds unaudited — when even eviction cannot
   make room, or when a continuation has no incident to continue. *)
let begin_incident t ~continue ~target ~tid ~kind ~si ~fault_addr ~msg ~at
    ?(events = []) ~subtree () =
  let si = trunc si and msg = trunc msg in
  if continue && t.head = 0 then false
  else
    match alloc_block t (block_size ~si ~msg ~events ~subtree) with
    | None -> false
    | Some addr ->
        if continue then begin
          write_block t addr ~id:(r t (t.head + 8)) ~target ~tid ~kind ~si
            ~fault_addr ~msg ~at ~events ~subtree;
          w t (t.tail + 24) addr;
          t.tail <- addr;
          true
        end
        else begin
          let id = r t (t.header + 8) in
          w t (t.header + 8) (id + 1);
          write_block t addr ~id ~target ~tid ~kind ~si ~fault_addr ~msg ~at
            ~events ~subtree;
          w t (t.header + 32) addr;
          t.head <- addr;
          t.tail <- addr;
          true
        end

(* {2 The in-flight intent} *)

let progress t = if t.tail = 0 then 0 else r t (t.tail + 104)

(* The udi the intent expects at discard step [idx] — the resume path
   cross-checks the live tree against the durable record. *)
(* Start of a block's per-domain extent section: skip the strings and
   the flight-recorder excerpt. *)
let subtree_off t addr =
  addr + blk_fixed
  + align8 (r t (addr + 112))
  + align8 (r t (addr + 120))
  + (Flight.stored_size * r t (addr + 128))

let domain_at t idx =
  if t.tail = 0 then None
  else begin
    let n = r t (t.tail + 96) in
    if idx < 0 || idx >= n then None
    else begin
      let p = ref (subtree_off t t.tail) in
      for _ = 1 to idx do
        p := !p + 40 + (16 * r t (!p + 32))
      done;
      Some (r t !p)
    end
  end

let mark_discarded t n = if t.tail <> 0 then w t (t.tail + 104) n

let note_interrupt t =
  if t.head <> 0 then w t (t.head + 80) (r t (t.head + 80) + 1)

let interrupts t = if t.head = 0 then 0 else r t (t.head + 80)

(* Phase 3: stamp and link the incident into the ring; clears the intent
   pointer so a later fault starts a fresh transaction. No-op when
   nothing is in flight. *)
let commit t ~at ~journal_replays =
  if t.head <> 0 then begin
    w t (t.head + 16) 1;
    w t (t.head + 72) (int_of_float at);
    w t (t.head + 88) journal_replays;
    Queue.add t.head t.ring;
    w t (t.header + 16) (r t (t.header + 16) + 1);
    t.m_appended <- t.m_appended + 1;
    w t (t.header + 32) 0;
    t.head <- 0;
    t.tail <- 0;
    while Queue.length t.ring > t.cap do
      ignore (drop_oldest t)
    done
  end

(* {1 Reading the log back} *)

let read_subtree t addr =
  let n = r t (addr + 96) in
  let p = ref (subtree_off t addr) in
  List.init n (fun _ ->
      let udi = r t !p in
      let was = code_was (r t (!p + 8)) in
      let stack = (r t (!p + 16), r t (!p + 24)) in
      let nreg = r t (!p + 32) in
      p := !p + 40;
      let regions =
        List.init nreg (fun _ ->
            let reg = (r t !p, r t (!p + 8)) in
            p := !p + 16;
            reg)
      in
      { x_udi = udi; x_was = was; x_stack = stack; x_regions = regions })

let read_record t addr =
  let str off_len off =
    let len = r t (addr + off_len) in
    if len = 0 then "" else Space.read_string t.space off len
  in
  let si = str 112 (addr + blk_fixed) in
  let msg = str 120 (addr + blk_fixed + align8 (r t (addr + 112))) in
  let read_events a =
    let base =
      a + blk_fixed + align8 (r t (a + 112)) + align8 (r t (a + 120))
    in
    List.init
      (r t (a + 128))
      (fun i -> Flight.load t.space (base + (i * Flight.stored_size)))
  in
  let rec chain f a = if a = 0 then [] else f a :: chain f (r t (a + 24)) in
  {
    r_id = r t (addr + 8);
    r_target = r t (addr + 32);
    r_tid = r t (addr + 40);
    r_kind = code_kind (r t (addr + 48));
    r_si = si;
    r_fault_addr = r t (addr + 56);
    r_msg = msg;
    r_subtree = List.concat (chain (read_subtree t) addr);
    r_replays = r t (addr + 88);
    r_start = float_of_int (r t (addr + 64));
    r_end = float_of_int (r t (addr + 72));
    r_interrupts = r t (addr + 80);
    r_events = List.concat (chain read_events addr);
  }

let records t =
  Queue.fold (fun acc addr -> read_record t addr :: acc) [] t.ring |> List.rev

let kind_to_string = function
  | `Segv -> "segv"
  | `Stack_smash -> "stack-smash"
  | `Explicit -> "explicit"
