(** Durable two-phase rewind transaction log.

    Backs the reference monitor's rewind with an intent record written to
    monitor-root simulated memory {e before} any domain is discarded, and
    a bounded append-only audit log of committed incidents. A fault
    arriving mid-rewind resumes the in-flight discard from the intent's
    progress counter; every completed rewind leaves exactly one
    queryable incident record. See INTERNALS §12 for the on-"disk"
    layout. *)

type t

type kind = [ `Segv | `Stack_smash | `Explicit ]

(** One domain of a discarded subtree, as captured at intent time. *)
type extent = {
  x_udi : int;
  x_was : [ `Entered | `Ready | `Dormant ];  (** state before the rewind *)
  x_stack : int * int;  (** stack base, length *)
  x_regions : (int * int) list;  (** sub-heap regions, (base, length) *)
}

(** A committed incident, continuations merged into one record. *)
type record = {
  r_id : int;
  r_target : int;  (** udi the trigger fault failed in *)
  r_tid : int;
  r_kind : kind;
  r_si : string;  (** si_code rendering, ["-"] when not a SEGV *)
  r_fault_addr : int;
  r_msg : string;  (** access kind or explicit abort message *)
  r_subtree : extent list;  (** discard order *)
  r_replays : int;  (** cumulative journal replay hits at commit *)
  r_start : float;  (** virtual time the intent was written *)
  r_end : float;  (** virtual time of the commit *)
  r_interrupts : int;  (** faults absorbed mid-rewind *)
  r_events : Flight.event list;
      (** flight-recorder excerpt captured at intent time — the last few
          events of each victim domain, continuations merged, oldest
          first *)
}

val create : Vmem.Space.t -> heap:Tlsf.t -> cap:int -> t
(** Allocates the log header from [heap]. At most [cap] committed
    incidents are retained; older ones are evicted and counted. *)

val begin_incident :
  t ->
  continue:bool ->
  target:int ->
  tid:int ->
  kind:kind ->
  si:string ->
  fault_addr:int ->
  msg:string ->
  at:float ->
  ?events:Flight.event list ->
  subtree:extent list ->
  unit ->
  bool
(** Phase 1: durably record the subtree about to be discarded, together
    with an optional flight-recorder excerpt ([events], default none) —
    the victims' last recorded actions, frozen before their memory is
    thrown away. [~continue:true] chains onto the in-flight incident
    (collateral exits of a grandparent rewind) instead of opening a new
    one. Returns [false] if the record could not be stored even after
    evicting history — the rewind then proceeds unaudited. *)

val pending : t -> bool
(** An intent record is in flight (read from durable memory). *)

val progress : t -> int
(** Number of domains of the active intent already discarded. *)

val domain_at : t -> int -> int option
(** [domain_at t i] is the udi the active intent expects at discard step
    [i] — used to cross-check the live tree when resuming. *)

val mark_discarded : t -> int -> unit
(** Durably advance the active intent's progress counter. *)

val note_interrupt : t -> unit
(** Count a fault absorbed mid-rewind on the in-flight incident. *)

val interrupts : t -> int
(** Interrupts recorded on the in-flight incident (0 if none). *)

val commit : t -> at:float -> journal_replays:int -> unit
(** Phase 3: stamp the end time, link the incident into the audit ring
    and clear the intent pointer. No-op when nothing is in flight. *)

val records : t -> record list
(** Committed incidents, oldest first. *)

val appended : t -> int
(** Total incidents ever committed (from the durable header). *)

val dropped : t -> int
(** Total incidents evicted from the ring (from the durable header). *)

val retained : t -> int
(** Incidents currently held in the ring. *)

val bytes : t -> int
(** Monitor-heap bytes currently held by record blocks (the header is
    not counted — it lives for the monitor's whole lifetime). *)

val kind_to_string : kind -> string
