(* Per-domain flight recorder.

   The rewind primitive destroys the evidence an operator needs most: by
   the time an incident is visible, the faulting domain's stack and heap
   — the request it was serving, the locks it took, the allocations it
   poisoned — have been discarded by design. The flight recorder keeps a
   bounded ring of small structured events {e per domain}, stored through
   checked {!Vmem.Space} accesses in the {e monitor's} protected heap, so
   the record survives the rewind of the domain it describes: compartment
   code cannot reach it, and discarding the domain's own memory does not
   touch it.

   Events are deliberately tiny and fixed-size (six 64-bit words): a
   virtual timestamp, a kind, the acting thread, the causal trace id of
   the request being served, one kind-specific argument, and the owning
   domain. At rewind
   intent time the last few events of every victim domain are snapshotted
   into the durable {!Rewind_log} record, giving each audit entry its own
   black-box excerpt even after the ring has wrapped. *)

module Space = Vmem.Space

type kind =
  | Admit  (* supervisor admitted a request into the domain *)
  | Switch_in  (* domain entered (PKRU switched to its view) *)
  | Switch_out  (* domain exited normally *)
  | Alloc_poison  (* sanitizer poisoned/unpoisoned an allocation *)
  | Lock_acquire  (* domain-owned lock taken *)
  | Fault  (* the fault that triggered a rewind *)
  | Shed  (* request shed before the domain switch *)
  | Replay  (* journal replay served instead of re-executing *)
  | Route  (* cluster router forwarded a request to this shard *)
  | Failover  (* shard received re-routed traffic / a journal re-seed *)
  | Race  (* race-detector finding published into the ring *)

type event = {
  e_at : float;  (* virtual cycles *)
  e_tid : int;
  e_kind : kind;
  e_udi : int;
  e_trace : int64;  (* 0 = no causal context *)
  e_arg : int;
}

let kind_code = function
  | Admit -> 0
  | Switch_in -> 1
  | Switch_out -> 2
  | Alloc_poison -> 3
  | Lock_acquire -> 4
  | Fault -> 5
  | Shed -> 6
  | Replay -> 7
  | Route -> 8
  | Failover -> 9
  | Race -> 10

let code_kind = function
  | 0 -> Admit
  | 1 -> Switch_in
  | 2 -> Switch_out
  | 3 -> Alloc_poison
  | 4 -> Lock_acquire
  | 5 -> Fault
  | 6 -> Shed
  | 8 -> Route
  | 9 -> Failover
  | 10 -> Race
  | _ -> Replay

let kind_to_string = function
  | Admit -> "admit"
  | Switch_in -> "switch-in"
  | Switch_out -> "switch-out"
  | Alloc_poison -> "alloc-poison"
  | Lock_acquire -> "lock-acquire"
  | Fault -> "fault"
  | Shed -> "shed"
  | Replay -> "replay"
  | Route -> "route"
  | Failover -> "failover"
  | Race -> "race"

(* {1 Memory layout}

   One ring block per domain:
     +0 magic  +8 udi  +16 cap  +24 head (next slot)  +32 total
     +40 cap * 48-byte event slots:
       +0 cycles  +8 kind  +16 tid+1  +24 trace  +32 arg  +40 udi

   Trace ids are minted masked to 62 bits (see {!Telemetry.Context}), so
   they round-trip through the OCaml-int-valued store64 word losslessly. *)

let ring_magic = 0x464C_5452 (* "FLTR" *)
let ring_hdr = 40
let event_size = 48
let stored_size = event_size

type t = {
  space : Space.t;
  heap : Tlsf.t;
  cap : int;  (* events retained per domain *)
  max_domains : int;  (* rings kept before FIFO eviction *)
  rings : (int, int) Hashtbl.t;  (* udi -> ring block address *)
  order : int Queue.t;  (* udis in ring-creation order *)
  mutable m_recorded : int;
  mutable m_dropped : int;  (* eviction, wrap and alloc-failure losses *)
  mutable m_bytes : int;  (* monitor-heap bytes currently held by rings *)
}

let create space ~heap ?(cap = 32) ?(max_domains = 64) () =
  if cap <= 0 || max_domains <= 0 then invalid_arg "Flight.create";
  {
    space;
    heap;
    cap;
    max_domains;
    rings = Hashtbl.create 16;
    order = Queue.create ();
    m_recorded = 0;
    m_dropped = 0;
    m_bytes = 0;
  }

let w t a = Space.store64 t.space a
let r t a = Space.load64 t.space a

let ring_size t = ring_hdr + (t.cap * event_size)

let free_ring t udi =
  match Hashtbl.find_opt t.rings udi with
  | None -> ()
  | Some addr ->
      (* history lost with the ring is counted, never silent *)
      t.m_dropped <- t.m_dropped + min (r t (addr + 32)) t.cap;
      t.m_bytes <- t.m_bytes - Tlsf.usable_size t.heap addr;
      Tlsf.free t.heap addr;
      Hashtbl.remove t.rings udi

let evict_oldest t =
  match Queue.take_opt t.order with
  | None -> false
  | Some udi ->
      free_ring t udi;
      true

let alloc_ring t udi =
  while Hashtbl.length t.rings >= t.max_domains && evict_oldest t do
    ()
  done;
  let rec go () =
    match Tlsf.malloc_opt t.heap (ring_size t) with
    | Some addr ->
        w t addr ring_magic;
        w t (addr + 8) udi;
        w t (addr + 16) t.cap;
        w t (addr + 24) 0;
        w t (addr + 32) 0;
        Hashtbl.replace t.rings udi addr;
        Queue.add udi t.order;
        t.m_bytes <- t.m_bytes + Tlsf.usable_size t.heap addr;
        Some addr
    | None -> if evict_oldest t then go () else None
  in
  go ()

(* Event (de)serialization against a raw space address — shared with
   {!Rewind_log}, which embeds event excerpts in its audit blocks. *)
let store space addr ev =
  Space.store64 space addr (int_of_float ev.e_at);
  Space.store64 space (addr + 8) (kind_code ev.e_kind);
  Space.store64 space (addr + 16) (ev.e_tid + 1);
  Space.store64 space (addr + 24) (Int64.to_int ev.e_trace);
  Space.store64 space (addr + 32) ev.e_arg;
  Space.store64 space (addr + 40) ev.e_udi

let load space addr =
  {
    e_at = float_of_int (Space.load64 space addr);
    e_kind = code_kind (Space.load64 space (addr + 8));
    e_tid = Space.load64 space (addr + 16) - 1;
    e_trace = Int64.of_int (Space.load64 space (addr + 24));
    e_arg = Space.load64 space (addr + 32);
    e_udi = Space.load64 space (addr + 40);
  }

let store_event t = store t.space
let load_event t = load t.space

let record t ~udi ~tid ~at ?(trace = 0L) ?(arg = 0) kind =
  let ring =
    match Hashtbl.find_opt t.rings udi with
    | Some a -> Some a
    | None -> alloc_ring t udi
  in
  match ring with
  | None -> t.m_dropped <- t.m_dropped + 1
  | Some addr ->
      let head = r t (addr + 24) in
      let total = r t (addr + 32) in
      if total >= t.cap then t.m_dropped <- t.m_dropped + 1;
      store_event t
        (addr + ring_hdr + (head * event_size))
        { e_at = at; e_tid = tid; e_kind = kind; e_udi = udi;
          e_trace = trace; e_arg = arg };
      w t (addr + 24) ((head + 1) mod t.cap);
      w t (addr + 32) (total + 1);
      t.m_recorded <- t.m_recorded + 1

let events t ~udi =
  match Hashtbl.find_opt t.rings udi with
  | None -> []
  | Some addr ->
      let head = r t (addr + 24) in
      let total = r t (addr + 32) in
      let n = min total t.cap in
      let first = (head - n + t.cap) mod t.cap in
      List.init n (fun i ->
          let slot = (first + i) mod t.cap in
          load_event t (addr + ring_hdr + (slot * event_size)))

let snapshot t ~udi ~n =
  let evs = events t ~udi in
  let len = List.length evs in
  if len <= n then evs else List.filteri (fun i _ -> i >= len - n) evs

let domains t =
  List.filter (Hashtbl.mem t.rings) (List.of_seq (Queue.to_seq t.order))

let recorded t = t.m_recorded
let dropped t = t.m_dropped
let bytes t = t.m_bytes
