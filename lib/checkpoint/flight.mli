(** Per-domain flight recorder: a bounded ring of structured events kept
    in {e monitor-protected} simulated memory, so the record of what a
    domain did survives the rewind that discards the domain itself.

    Each event is six 64-bit words stored through checked {!Vmem.Space}
    accesses in the monitor's TLSF heap: virtual timestamp, kind, acting
    thread, the causal trace id of the request being served
    ({!Telemetry.Context}), one kind-specific argument, and the owning
    domain. Rings are
    per-domain (keyed by udi) and FIFO-evicted beyond [max_domains];
    every lost event — wrap, eviction, or allocation failure under
    memory pressure — is counted in {!dropped}, never silent.

    At rewind intent time {!snapshot} extracts the last few events of
    each victim domain for embedding into the durable {!Rewind_log}
    audit record ({!store}/{!load} are the serialization halves). *)

type kind =
  | Admit  (** supervisor admitted a request into the domain *)
  | Switch_in  (** domain entered (PKRU switched to its view) *)
  | Switch_out  (** domain exited normally *)
  | Alloc_poison  (** sanitizer poisoned/unpoisoned an allocation *)
  | Lock_acquire  (** domain-owned lock taken *)
  | Fault  (** the fault that triggered a rewind *)
  | Shed  (** request shed before the domain switch *)
  | Replay  (** journal replay served instead of re-executing *)
  | Route
      (** the cluster router forwarded a request into this shard — the
          cross-shard hop of a causal chain (arg = shard index) *)
  | Failover
      (** the shard absorbed a failover: re-routed traffic or a replay-
          journal re-seed from a drained peer (arg = sick shard index) *)
  | Race
      (** a race-detector finding was published into the ring
          ({!Analysis.Race.publish}; arg = the finding's address or lock
          id). Findings are detected host-side with zero virtual-time
          cost and recorded only when publication is requested, so an
          attached detector never perturbs the run it watches. *)

type event = {
  e_at : float;  (** virtual cycles *)
  e_tid : int;
  e_kind : kind;
  e_udi : int;
  e_trace : int64;  (** 0 = no causal context; ids are 62-bit, see
                        {!Telemetry.Context} *)
  e_arg : int;  (** kind-specific: fault address, replay hit count, … *)
}

type t

val create :
  Vmem.Space.t -> heap:Tlsf.t -> ?cap:int -> ?max_domains:int -> unit -> t
(** [cap] events retained per domain (default 32); at most
    [max_domains] rings (default 64) before the oldest is evicted.
    @raise Invalid_argument when either is non-positive. *)

val record :
  t -> udi:int -> tid:int -> at:float -> ?trace:int64 -> ?arg:int -> kind ->
  unit
(** Append one event to [udi]'s ring, allocating the ring on first use.
    Under allocation failure the event is dropped (and counted). *)

val events : t -> udi:int -> event list
(** Retained events for one domain, oldest first; [[]] for domains that
    never recorded. *)

val snapshot : t -> udi:int -> n:int -> event list
(** The last [n] retained events, oldest first. *)

val domains : t -> int list
(** Udis that currently hold a ring, in ring-creation order. *)

val recorded : t -> int
(** Events ever recorded across all domains. *)

val dropped : t -> int
(** Events lost to ring wrap, domain eviction, or allocation failure. *)

val bytes : t -> int
(** Monitor-heap bytes currently held by rings — like audit records, an
    allocation that intentionally outlives the domains it describes, so
    leak checks can subtract it from the monitor footprint. *)

val kind_to_string : kind -> string
(** Stable lowercase rendering ([admit], [switch-in], …) used by dumps,
    audit reports and goldens. *)

val kind_code : kind -> int
val code_kind : int -> kind

(** {1 Raw (de)serialization} — for embedding event excerpts in other
    durable structures; [stored_size] bytes per event. *)

val stored_size : int
val store : Vmem.Space.t -> int -> event -> unit
val load : Vmem.Space.t -> int -> event
