(** SDRaD — Secure Domain Rewind and Discard.

    This module realizes the paper's Table I API over the simulated MPK
    hardware ({!Vmem.Space}) with per-domain TLSF sub-heaps ({!Tlsf}) and
    per-domain stacks. An application is compartmentalized into nested
    {e execution domains}, each guarded by a protection key; when a
    run-time defense fires inside a nested domain (a protection-key
    violation, a stack-canary failure, or an explicit {!abort}), the
    domain's memory is {e discarded} and execution is {e rewound} to the
    domain's initialization point in the parent — the parent keeps running.

    {2 Mapping to the paper's C API}

    C's [sdrad_init()] "returns twice" (setjmp-style): once on successful
    initialization and again after an abnormal domain exit. OCaml cannot
    longjmp across stack frames, so the rewind point is expressed
    structurally: {!run} performs the initialization and executes [body]
    (the code between init and destroy/deinit); an abnormal exit unwinds
    to the matching {!run} and invokes [on_rewind] with the failing
    domain's index and cause — the same case split the paper performs on
    [sdrad_init()]'s return value. All other calls (malloc, free,
    dprotect, enter, exit, destroy, deinit) are direct equivalents.

    Execution-domain state is per-thread, exactly as in the paper: each
    simulated thread that initializes a domain index gets its own stack,
    sub-heap and protection key for it. Data domains are shared between
    threads. *)

open Types

type t

exception Stack_check_failure
(** Raised by {!with_stack_frame} when the canary was smashed; inside a
    nested domain it is converted into an abnormal exit with cause
    {!Types.Stack_smash}, in the root domain it terminates the thread
    (glibc's [__stack_chk_fail] behaviour). *)

exception Attack_detected of string
(** Raised by {!abort}; converted into {!Types.Explicit}. *)

val create :
  ?seed:int ->
  ?monitor_size:int ->
  ?root_heap_size:int ->
  ?default_stack_size:int ->
  ?default_heap_size:int ->
  ?stack_reuse:bool ->
  ?virtual_keys:bool ->
  ?sanitizer:bool ->
  ?verify_policy:bool ->
  ?metrics:Telemetry.Metrics.t ->
  ?tracer:Telemetry.Trace.t ->
  ?incident_log_cap:int ->
  ?audit_log_cap:int ->
  ?flight_log_cap:int ->
  ?flight_snap:int ->
  Vmem.Space.t ->
  t
(** Link SDRaD into a simulated process: allocates the monitor data domain
    and the root domain's protection key, sets up the root heap, and
    installs the fault-conversion machinery. [stack_reuse] enables the
    §IV-C optimization of recycling stack areas of destroyed domains
    (default [true]; ablation A2 turns it off). [virtual_keys] enables
    libmpk-style key virtualization (§IV-B): when the 15 hardware keys
    run out, the least recently used {e dormant} domain is parked — its
    pages made inaccessible with mprotect, the slow fallback the paper
    notes — and its key recycled; the instance is transparently unparked
    on its next initialization.

    [sanitizer] (default [false]) puts every heap this monitor creates —
    monitor, root, per-domain sub-heaps, data domains — into heap-poison
    mode (see {!Tlsf.set_sanitize}): redzones after every allocation,
    [0xFD] poison-on-free, shadow-map poison on discard, with violations
    raised as [POISON] faults the rewind machinery recovers from.
    [verify_policy] (default [false]) asserts cheap policy invariants
    (protection-key disjointness, no reserved-key reuse) at every domain
    initialization; the full static verifier is {!Analysis.Policy}.

    [metrics] and [tracer] supply a shared {!Telemetry} registry and span
    tracer; fresh (private) ones are created when omitted. The tracer
    starts disabled. [incident_log_cap] bounds the retained incident log
    (default 1024, minimum 1); older incidents are evicted and counted in
    {!dropped_incidents}. [audit_log_cap] (default 256, minimum 1)
    likewise bounds the durable rewind audit log in monitor memory (see
    {!audit_records}). [flight_log_cap] (default 32, minimum 1) bounds
    each domain's flight-recorder ring ({!flight_events});
    [flight_snap] (default 8) is how many trailing events per victim
    domain are frozen into the audit record at rewind-intent time. *)

val space : t -> Vmem.Space.t

(** {1 Domain life cycle} *)

val run :
  t ->
  udi:udi ->
  ?opts:options ->
  on_rewind:(fault -> 'a) ->
  (unit -> 'a) ->
  'a
(** [run t ~udi ~opts ~on_rewind body] initializes execution domain [udi]
    as a child of the calling thread's current domain and establishes the
    rewind point, then executes [body]. [body] typically allocates
    argument space with {!malloc}, {!enter}s the domain, calls the
    sandboxed functionality, {!exit_domain}s, and finally {!destroy}s or
    {!deinit}s the domain (Listing 1 of the paper).

    On an abnormal exit of [udi] (or of a descendant configured with
    [rewind = Grandparent] whose parent is [udi]), the corrupted domain's
    memory is discarded, the protection-key policy of the parent is
    restored, and [on_rewind] runs in the parent domain.

    If [body] returns with the domain still initialized, the domain is
    automatically deinitialized (the saved context would dangle
    otherwise); if [body] raises a non-rewind exception the domain is
    destroyed and the exception propagates. *)

val init_data : t -> udi:udi -> ?heap_size:int -> unit -> unit
(** Create a data domain: shareable pages that hold data but never execute
    code. Its memory is managed with {!malloc}/{!free} and its visibility
    to execution domains is configured with {!dprotect}. *)

val enter : t -> udi -> unit
(** Switch execution into a nested domain previously initialized by this
    thread under the current domain: switches to the domain's stack and
    updates the PKRU policy (at most two WRPKRU writes — the monitor call
    gate and the target policy; redundant installs are elided, and under
    an open {!open_gate} the call-gate write disappears entirely). *)

val exit_domain : t -> unit
(** Leave the current nested domain, returning to its parent. *)

val destroy : t -> udi -> heap:[ `Discard | `Merge ] -> unit
(** Delete a (non-entered) child domain. [`Merge] coalesces the child's
    sub-heap into the current domain's heap — live allocations survive and
    become owned by the current domain ([NO_HEAP_MERGE] in the paper is
    [`Discard]). The stack area is recycled when stack reuse is enabled.
    Also deletes data domains (with [`Discard]). *)

val deinit : t -> udi -> unit
(** Discard only the domain's saved return context, leaving its memory
    intact; the domain must be re-initialized (another {!run}) before it
    can be entered again. Supports the persistent-domain pattern across
    event-handler invocations (Figure 3). *)

(** {1 Memory management} *)

val malloc : t -> udi:udi -> int -> int
(** Allocate in the given domain's sub-heap. Permitted for the current
    domain itself, an accessible child, or a data domain the current
    domain has write access to. The sub-heap is created on first use and
    grows on demand. *)

val free : t -> udi:udi -> int -> unit
val usable_size : t -> udi:udi -> int -> int

(** {1 Batched gates}

    ERIM-style gate thinning for server loops. Opening a gate installs
    the raised monitor view and keeps it installed between API calls
    while the thread is in its home root context, so consecutive
    requests dispatched to nested domains share one privilege
    raise/drop instead of paying two WRPKRU writes per monitor section.
    Compartment {!enter}/{!exit_domain} still installs the compartment's
    own policy — isolation, fault behaviour, flight-recorder events and
    supervisor admission are identical to the unbatched path; only the
    number of WRPKRU writes (and their cycle charges) changes. Gates
    nest; a batch is typically bracketed with {!with_gate}. *)

val open_gate : t -> unit
(** Begin a batched-gate section on the calling thread. *)

val close_gate : t -> unit
(** End the innermost batched-gate section, restoring the thread's
    compartment policy. @raise Invalid_argument when no gate is open. *)

val with_gate : t -> (unit -> 'a) -> 'a
(** [with_gate t f] brackets [f] with {!open_gate}/{!close_gate}
    (exception-safe). *)

val gate_open : t -> bool
(** Whether the calling thread has a batched gate open. *)

val gate_buffer : t -> ?slot:int -> udi:udi -> int -> int
(** [gate_buffer t ~udi n] returns an argument-marshalling buffer of at
    least [n] bytes in [udi]'s heap, cached per (calling thread, caller
    domain, callee domain, [slot]) and reused across calls — the
    persistent-domain pattern applied to gate arguments. Do not {!free}
    it: the cache owns it until the callee is discarded or destroyed
    (rewinds invalidate it automatically). A request larger than the
    cached capacity reallocates. [slot] (default 0) distinguishes
    multiple concurrent buffers for the same pair. *)

val dprotect : t -> udi:udi -> tddi:udi -> Vmem.Prot.t -> unit
(** Set execution domain [udi]'s access rights on data domain [tddi]
    (none, read-only, or read-write). Takes effect at the next domain
    transition of affected threads, and immediately for the calling
    thread if it is currently executing in [udi]. *)

(** {1 Stack frames and canaries} *)

val alloca : t -> int -> int
(** Bump-allocate on the current domain's stack (16-byte aligned).
    Exhausting the stack area touches the guard page below it, raising the
    SEGV that the rewind machinery converts into an abnormal domain
    exit. *)

val with_stack_frame : t -> int -> (int -> 'a) -> 'a
(** [with_stack_frame t n f] simulates a [-fstack-protector] frame: it
    allocates an [n]-byte stack buffer, plants a canary word directly
    above it, runs [f buf], then verifies the canary — a smashed canary
    raises the stack-check failure that SDRaD converts into an abnormal
    domain exit (the paper's replaced [__stack_chk_fail]). The stack
    pointer is restored on exit. *)

val abort : t -> string -> 'a
(** Report an attack detected by an application-level defense; triggers an
    abnormal exit of the current domain. *)

(** {1 Introspection} *)

val current : t -> udi
(** Domain the calling thread is executing in ([root_udi] at top level). *)

val is_initialized : t -> udi -> bool
val rewind_count : t -> int

val incidents : t -> fault list
(** Retained abnormal domain exits, oldest first — the raw material for
    the paper's §VI suggestion of reporting rewinds to a Security
    Information and Event Management system. The log is a bounded ring
    (see [incident_log_cap] of {!create}): once full, recording a new
    incident evicts the oldest one. *)

val dropped_incidents : t -> int
(** Incidents evicted from the bounded log so far. *)

(** {1 Rewind audit log}

    Every multi-domain rewind is a two-phase transaction against a
    durable log in monitor-root memory: an {e intent record} (domain
    subtree, trigger fault, target udi, heap/stack extents) written
    before any discard, a progress counter advanced after each domain,
    and a commit that turns the intent into an append-only incident
    record. A fault arriving mid-rewind resumes the in-flight discard
    from the intent instead of leaving a half-discarded tree. See
    INTERNALS §12 and {!Checkpoint.Rewind_log}. *)

val audit_records : t -> Checkpoint.Rewind_log.record list
(** Committed incident records, oldest first. Safe to call from inside or
    outside simulated threads (monitor privileges are raised around the
    protected-memory reads). *)

val audit_appended : t -> int
(** Incidents ever committed to the audit log. *)

val audit_dropped : t -> int
(** Audit records evicted from the bounded ring ([audit_log_cap]). *)

val audit_retained : t -> int
(** Audit records currently held. *)

val audit_bytes : t -> int
(** Monitor-heap bytes currently held by audit records — the one
    monitor allocation that intentionally outlives its domains, so
    leak checks can subtract it from {!monitor_bytes}. *)

val audit_pending : t -> bool
(** An intent record is in flight — only observable from a rewind-path
    probe; by the time control returns to application code the
    transaction has committed. *)

(** {1 Causal trace context and flight recorder}

    A per-thread {!Telemetry.Context} trace id links a client operation
    to every monitor-level consequence it triggers. While a trace id is
    installed, every flight-recorder event and switch recorded for the
    thread carries it; the per-domain flight recorder itself is a
    bounded ring of structured events in monitor-protected memory, so
    it {e survives the discard} of the domain it describes — the last
    few events of each victim are frozen into the rewind audit record
    at intent time (see [r_events] of {!Checkpoint.Rewind_log}). *)

val current_trace : t -> int64
(** Trace id installed for the calling simulated thread ([0L] when
    none). *)

val set_trace : t -> int64 -> unit
(** Install (non-zero) or clear ([0L]) the calling thread's trace id —
    servers call this as soon as they decode a request's context. *)

val with_trace : t -> int64 -> (unit -> 'a) -> 'a
(** Bracket: install the id, run the body, restore the previous id even
    on exceptions. *)

val flight_event : t -> ?udi:udi -> ?arg:int -> Checkpoint.Flight.kind -> unit
(** Record an application-level event (admit, shed, replay, lock
    acquisition…) in the flight recorder, tagged with the calling
    thread, current virtual time and installed trace id. [udi] defaults
    to the domain the thread is executing in. Events the monitor
    records itself (switches, faults, poisoned allocations) need no
    call — they are emitted inside the existing monitor gates. *)

val flight_events : t -> udi:udi -> Checkpoint.Flight.event list
(** Retained flight-recorder events of one domain, oldest first. Safe
    from inside or outside simulated threads. *)

val flight_domains : t -> udi list
(** Domains that currently own a flight ring, oldest-allocated first. *)

val flight_recorded : t -> int
(** Events ever recorded across all domains. *)

val flight_dropped : t -> int
(** Events lost to ring wrap-around or ring eviction. *)

val flight_bytes : t -> int
(** Monitor-heap bytes currently held by flight rings. Rings
    intentionally outlive the domains they describe (that is their
    purpose), so — like {!audit_bytes} — leak checks subtract this from
    {!monitor_bytes}. *)

val set_rewind_fault_hook : t -> (unit -> bool) option -> unit
(** Install (or clear) the chaos probe consulted before every discard
    step of a rewind. Returning [true] simulates a second fault arriving
    mid-rewind: the step is abandoned and re-driven from the durable
    intent record, and [sdrad_rewind_interrupts_total] /
    [sdrad_incidents_resumed_total] account the recovery. Wired to
    {!Resilience.Fault_inject} via [arm_rewind]. *)

val set_race_observer : t -> (race_event -> unit) option -> unit
(** Install (or clear) the monitor-level happens-before feed consumed by
    the race detector ({!Analysis.Race.attach} owns the slot). The
    observer receives {!Types.race_event}s — domain gates, rewinds,
    data-domain lifecycle, monitor-mediated allocations and {!Dlock}
    transitions. Emission is plain data from state the monitor already
    holds: no simulated memory is touched and no virtual time is
    charged, so an installed observer cannot perturb the run. *)

val race_emit : t -> race_event -> unit
(** Feed one event to the installed race observer (no-op without one).
    For rewind-aware lock implementations ({!Dlock}) that participate in
    the happens-before model; not for application code. *)

val add_journal_probe : t -> (unit -> int) -> unit
(** Register a cumulative replay-hit counter (e.g. a server's
    {!Resilience.Journal} hits); the sum across probes is sampled at
    incident-commit time and stored in the audit record's
    [r_replays]. *)

val metrics : t -> Telemetry.Metrics.t
(** The metrics registry every SDRaD counter, gauge and histogram of this
    instance is registered in; expose with {!Telemetry.Metrics.expose}. *)

val tracer : t -> Telemetry.Trace.t
(** The span tracer instrumenting switches and rewinds; enable with
    {!Telemetry.Trace.set_enabled} (disabled by default — spans then cost
    one branch). *)

val set_incident_handler : t -> (fault -> unit) -> unit
(** Invoke a callback after every abnormal exit (once the parent's
    privileges are restored); use for alerting, rate-limiting rewinds, or
    firewalling repeat offenders. Replaces any existing handler. *)

val add_incident_handler : t -> (fault -> unit) -> unit
(** Like {!set_incident_handler} but composes: the new handler runs
    first, then the previously installed one(s). This is how a
    {e supervisor} subscribes without stealing the slot from application
    reporting. *)

(** [on_abnormal_cleanup t f] registers [f] to run if the {e current}
    (entered) domain exits abnormally — the building block for
    rewind-aware resources such as {!Dlock}. Returns a cancel function to
    call when the protected section completes normally. The callback runs
    during the abnormal exit, in the failing thread, after the domain's
    memory is discarded. @raise Error [Root_operation] when called from
    the root domain. *)
val on_abnormal_cleanup : t -> (unit -> unit) -> unit -> unit
val domain_pkey : t -> udi -> int option
val monitor_bytes : t -> int
(** Bytes of monitor control data currently allocated (contexts + domain
    records). *)

val monitor_pkey : t -> int
val root_pkey : t -> int

val has_incident_handler : t -> bool
(** Whether any incident handler is installed (a supervisor counts) — the
    policy verifier's evidence that rewinds are observed somewhere. *)

val sanitizer_enabled : t -> bool
(** Whether this monitor was created with [~sanitizer:true]. *)

(** {1 Policy snapshot}

    The monitor's declared state as pure data — the input the static
    policy verifier ({!Analysis.Policy}) checks against. Reading it
    touches no simulated memory and charges no virtual time. *)

type domain_info = {
  di_udi : udi;
  di_kind : [ `Exec | `Data ];
  di_tid : int;  (** owning thread; [-1] for data domains *)
  di_parent : udi;  (** [Types.root_udi] for top-level and data domains *)
  di_pkey : int;  (** [-1] when parked by key virtualization *)
  di_state : [ `Dormant | `Ready | `Entered ];
  di_stack : (int * int) option;  (** (base, len); [None] for data *)
  di_regions : (int * int) list;  (** sub-heap regions, (base, len) *)
  di_accessible : bool;
  di_parent_readable : bool;
  di_has_cleanup : bool;  (** an {!on_abnormal_cleanup} hook is pending *)
  di_perms : (udi * Vmem.Prot.t) list;
      (** data domains: viewer execution domain -> granted rights *)
}

val domains_info : t -> domain_info list
(** Every live execution-domain instance and data domain, sorted by
    (udi, tid). *)

(** {1 Convenience wrappers} *)

val with_domain : t -> udi -> (unit -> 'a) -> 'a
(** [with_domain t udi f] brackets [f] between {!enter} and
    {!exit_domain}; on a normal return or a non-fault exception the domain
    is exited. Memory faults propagate with the domain still entered, as
    the rewind machinery requires. *)

val protect_call :
  t ->
  udi:udi ->
  ?opts:options ->
  arg:string ->
  (int -> int -> 'a) ->
  ('a, fault) result
(** Listing 1 of the paper as a combinator: initialize a fresh domain,
    copy [arg] into its sub-heap, enter, run [f addr len], exit, destroy
    the domain, and return the result — or [Error fault] if the domain
    exited abnormally. *)

(** {1 Switch-cost anatomy (experiment E7)} *)

type switch_profile = {
  total_cycles : float;
  wrpkru_cycles : float;
  stack_cycles : float;
  bookkeeping_cycles : float;
  wrpkru_writes : int;  (** WRPKRU writes the measured pair executed *)
  wrpkru_elided : int;  (** redundant installs skipped in the window *)
}

val profile_switch : t -> switch_profile
(** Cost breakdown of one [enter]+[exit] pair under the current cost
    model, used to reproduce the paper's observation that 30–50 % of a
    domain switch is the PKRU write. The WRPKRU share is derived from
    the writes counted in the measured window (not an assumed four), so
    the anatomy stays accurate when elision or batched gates thin the
    gate path. *)
