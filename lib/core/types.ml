type udi = int

let root_udi = 0

type access = Accessible | Inaccessible
type rewind_target = Parent | Grandparent

type options = {
  access : access;
  rewind : rewind_target;
  parent_readable : bool;
  scrub_on_discard : bool;
  allow_syscalls : bool;
  stack_size : int;
  heap_size : int;
}

let default_options =
  {
    access = Accessible;
    rewind = Parent;
    parent_readable = false;
    scrub_on_discard = false;
    allow_syscalls = false;
    stack_size = 64 * 1024;
    heap_size = 256 * 1024;
  }

type cause =
  | Segv of {
      addr : int;
      code : Vmem.Space.si_code;
      access : Vmem.Space.access;
    }
  | Stack_smash
  | Explicit of string

type fault = { failed_udi : udi; cause : cause; tid : int; at : float }

let pp_cause ppf = function
  | Segv { addr; code; access } ->
      Format.fprintf ppf "SEGV at 0x%x (%a, %a)" addr Vmem.Space.pp_si_code
        code Vmem.Space.pp_access access
  | Stack_smash -> Format.pp_print_string ppf "stack smashing detected"
  | Explicit msg -> Format.fprintf ppf "attack reported: %s" msg

let pp_fault ppf { failed_udi; cause; tid; at = _ } =
  Format.fprintf ppf "domain %d failed on tid %d: %a" failed_udi tid pp_cause
    cause

type error =
  | Already_initialized
  | Not_initialized
  | Unknown_domain
  | Out_of_pkeys
  | Not_a_child
  | Domain_entered
  | Not_entered
  | Wrong_kind
  | Not_accessible
  | Root_operation

exception Error of error

let error_to_string = function
  | Already_initialized -> "domain already initialized in this thread"
  | Not_initialized -> "domain not initialized"
  | Unknown_domain -> "unknown domain index"
  | Out_of_pkeys -> "no free protection keys"
  | Not_a_child -> "domain is not a child of the current domain"
  | Domain_entered -> "operation invalid while the domain is entered"
  | Not_entered -> "no nested domain is entered"
  | Wrong_kind -> "operation does not apply to this domain kind"
  | Not_accessible -> "domain is not accessible from the current domain"
  | Root_operation -> "operation invalid on the root domain"

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Sdrad.Error: %s" (error_to_string e))
    | _ -> None)

(* Monitor-level happens-before events fed to an attached race detector
   (see Api.set_race_observer). Plain data, computed from state the
   monitor already holds: emitting one never touches simulated memory or
   charges virtual time, so an attached observer cannot perturb a run. *)
type race_lock_op =
  | Rl_acquire of { poisoned : bool }
  | Rl_release
  | Rl_poison
  | Rl_clear

type race_event =
  | Rv_domain of { tid : int; udi : udi; enter : bool }
  | Rv_rewind of { tid : int; victims : udi list }
  | Rv_shared of { udi : udi; pkey : int }
  | Rv_unshared of { udi : udi; pkey : int }
  | Rv_alloc of { udi : udi; addr : int; len : int }
  | Rv_free of { udi : udi; addr : int }
  | Rv_lock of { lock : int; tid : int; udi : udi; op : race_lock_op }
