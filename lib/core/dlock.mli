(** Rewind-aware locking (§VI "Limitations").

    The paper notes that "applications that rely on global mutexes may
    suffer from availability issues when a child domain holding a lock
    crashes and the lock is not released prior to continuation of the
    parent domain", and suggests "an SDRaD-aware locking mechanism as part
    of our library". This is that mechanism: a mutex whose acquisition
    from inside a nested domain registers an abnormal-exit cleanup, so a
    rewind releases the lock instead of deadlocking every other thread.

    A lock released by a rewind is {e poisoned}: the protected data may
    have been left half-updated by the corrupted domain, so the next
    acquirer is told (as with [std::sync::Mutex] poisoning in Rust) and
    must validate or rebuild the shared state before clearing the flag. *)

type t

val create : Api.t -> t

val acquire : t -> bool
(** Block until the lock is held. Returns [false] if the lock is
    poisoned — the previous holder was discarded by a rewind. *)

val release : t -> unit

val with_lock : t -> (poisoned:bool -> 'a) -> 'a
(** Acquire/release around [f]; [f] learns whether the lock was
    poisoned. *)

val poisoned : t -> bool

val clear_poisoned : t -> unit
(** Clear the poison flag. {b Holder-only}: the caller must currently
    hold the lock. A clear from any other thread would be unordered with
    respect to the next acquirer — the next critical section could start
    with the flag still set, or watch it vanish mid-inspection,
    depending on scheduling. Clearing while holding makes the clear
    happen-before the next acquire through the lock itself. Clear only
    after re-validating (or rebuilding) the protected state; the race
    detector's lock-discipline rule flags a poisoned lock cleared
    without a guarding write.
    @raise Invalid_argument when the caller does not hold the lock. *)

val holder : t -> int option
(** Simulated thread currently holding the lock. *)

val lock_id : t -> int
(** The underlying scheduler lock id ({!Simkern.Sched.Mutex.id}) — the
    key under which this lock's transitions appear in race-observer
    events. *)
