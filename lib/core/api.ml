module Sched = Simkern.Sched
module Cost = Simkern.Cost
module Space = Vmem.Space
module Prot = Vmem.Prot
module Pkru = Vmem.Pkru
module Rewind_log = Checkpoint.Rewind_log
module Flight = Checkpoint.Flight
open Types

exception Stack_check_failure
exception Attack_detected of string

(* Internal: carries a rewind destined for the failing domain's
   grandparent past the failing domain's own init frame (Figure 2). *)
exception Rewind_to_grandparent of fault

type state = Dormant | Ready | Entered

type exec_inst = {
  udi : udi;
  tid : int;
  mutable opts : options;
  parent : udi;
  mutable pkey : int;
  mutable state : state;
  mutable stack_base : int;
  mutable stack_len : int;
  mutable sp : int;
  mutable heap : Tlsf.t option;
  mutable heap_regions : int list;
  mutable frame : int;  (* active rewind frame id, 0 = none (Dormant) *)
  mutable ctx_addr : int;  (* saved-context block in monitor memory *)
  mutable meta_addr : int;  (* domain record in monitor memory *)
  mutable last_used : int;  (* LRU tick for key virtualization *)
  mutable cleanups : (unit -> unit) list;
      (* run (innermost first) when this domain exits abnormally *)
}

type data_inst = {
  d_udi : udi;
  d_pkey : int;
  d_heap : Tlsf.t;
  mutable d_regions : int list;
  d_perms : (udi, Prot.t) Hashtbl.t;  (* viewer execution domain -> rights *)
  d_meta_addr : int;
}

type thread_state = {
  t_tid : int;
  mutable entered : exec_inst list;  (* innermost first; [] = in root *)
  mutable root_sp : int;
  root_stack_base : int;
  root_stack_len : int;
  mutable cur_pkru : int;
  mutable monitor_depth : int;  (* nested [with_monitor] brackets *)
  mutable gate_depth : int;  (* open batched-gate sections *)
}

type t = {
  space : Space.t;
  cost : Cost.t;
  monitor_pkey : int;
  root_pkey : int;
  monitor_heap : Tlsf.t;
  root_heap : Tlsf.t;
  mutable root_heap_regions : int list;
  canary_value : int;
  mutable frame_counter : int;
  exec_insts : (int * udi, exec_inst) Hashtbl.t;  (* (tid, udi) *)
  data_insts : (udi, data_inst) Hashtbl.t;
  threads : (int, thread_state) Hashtbl.t;
  mutable stack_pool : (int * int) list;
  stack_reuse : bool;
  virtual_keys : bool;
  sanitizer : bool;
  verify_policy : bool;
  mutable key_clock : int;  (* LRU tick for key virtualization *)
  default_stack_size : int;
  default_heap_size : int;
  incident_cap : int;
  incident_q : Types.fault Queue.t;  (* bounded ring, oldest at front *)
  mutable incident_handler : (Types.fault -> unit) option;
  mutable in_monitor : bool;
  audit : Rewind_log.t;  (* durable rewind intent + incident audit log *)
  flight : Flight.t;  (* per-domain event rings in monitor memory *)
  flight_snap : int;  (* events snapshotted per victim at rewind intent *)
  trace_ctx : (int, int64) Hashtbl.t;  (* tid -> active causal trace id *)
  gate_bufs : (int * udi * udi * int, int * int) Hashtbl.t;
      (* (tid, caller, callee, slot) -> (addr, size): cached
         argument-marshalling buffers in the callee's heap, surviving
         deinit (persistent-domain pattern) until the domain is
         discarded or destroyed *)
  mutable rewind_fault_hook : (unit -> bool) option;
      (* chaos probe consulted before each discard step of a rewind;
         [true] simulates a second fault arriving mid-rewind *)
  mutable race_observer : (Types.race_event -> unit) option;
      (* host-side happens-before feed for the race detector: domain
         gates, rewinds, data-domain lifecycle, allocations, Dlocks *)
  mutable journal_probes : (unit -> int) list;
      (* cumulative replay-hit counts, sampled at incident commit *)
  mutable pending_interrupted : bool;
      (* the in-flight incident absorbed at least one mid-rewind fault *)
  metrics : Telemetry.Metrics.t;
  tracer : Telemetry.Trace.t;
  c_rewinds : Telemetry.Metrics.counter;
  c_incidents_resumed : Telemetry.Metrics.counter;
  c_rewind_interrupts : Telemetry.Metrics.counter;
  c_key_evictions : Telemetry.Metrics.counter;
  c_incidents : Telemetry.Metrics.counter;
  c_dropped_incidents : Telemetry.Metrics.counter;
  c_enters : Telemetry.Metrics.counter;
  c_exits : Telemetry.Metrics.counter;
  c_gate_batched : Telemetry.Metrics.counter;
  c_inits : Telemetry.Metrics.counter;
  c_destroys : Telemetry.Metrics.counter;
  h_switch_cycles : Telemetry.Metrics.histogram;
  h_rewind_cycles : Telemetry.Metrics.histogram;
}

let log_src = Logs.Src.create "sdrad.core" ~doc:"SDRaD reference monitor"

module Log = (val Logs.src_log log_src : Logs.LOG)

let err e = raise (Error e)

(* API calls are usable outside a simulated thread (setup code in tests);
   time is only charged when a thread clock exists. *)
let charge c = if Sched.in_thread () then Sched.charge c
let now () = if Sched.in_thread () then Sched.now () else 0.0

let set_race_observer t o = t.race_observer <- o

let race_emit t ev =
  match t.race_observer with Some f -> f ev | None -> ()

let record_incident t fault =
  Queue.push fault t.incident_q;
  if Queue.length t.incident_q > t.incident_cap then begin
    ignore (Queue.pop t.incident_q);
    Telemetry.Metrics.inc t.c_dropped_incidents
  end;
  Telemetry.Metrics.inc t.c_incidents;
  Telemetry.Trace.instant t.tracer "incident"
    ~args:[ ("udi", string_of_int fault.failed_udi) ];
  Log.info (fun m ->
      m "incident: %a" (fun ppf f -> Types.pp_fault ppf f) fault);
  match t.incident_handler with Some h -> h fault | None -> ()

(* §VI syscall oracle: a nested domain reaching the kernel interface
   directly is treated as an attack unless the domain opted in; calls made
   by the reference monitor on the domain's behalf are sanctioned. *)
let install_syscall_oracle t =
  Space.set_syscall_hook t.space
    (Some
       (fun op ->
         if not t.in_monitor then
           let tid = if Sched.in_thread () then Sched.self () else -1 in
           match Hashtbl.find_opt t.threads tid with
           | Some { entered = inst :: _; _ } when not inst.opts.allow_syscalls ->
               raise
                 (Attack_detected (Printf.sprintf "unsanctioned syscall %s" op))
           | _ -> ()))

let create ?(seed = 1) ?(monitor_size = 256 * 1024)
    ?(root_heap_size = 4 * 1024 * 1024) ?(default_stack_size = 64 * 1024)
    ?(default_heap_size = 256 * 1024) ?(stack_reuse = true)
    ?(virtual_keys = false) ?(sanitizer = false) ?(verify_policy = false)
    ?metrics ?tracer ?(incident_log_cap = 1024) ?(audit_log_cap = 256)
    ?(flight_log_cap = 32) ?(flight_snap = 8) space =
  let alloc_key () =
    match Space.pkey_alloc space with Some k -> k | None -> err Out_of_pkeys
  in
  let monitor_pkey = alloc_key () in
  let root_pkey = alloc_key () in
  let monitor_region = Space.mmap space ~len:monitor_size ~prot:Prot.rw ~pkey:monitor_pkey in
  let monitor_heap = Tlsf.create space ~name:"sdrad-monitor" in
  if sanitizer then Tlsf.set_sanitize monitor_heap true;
  Tlsf.add_region monitor_heap ~addr:monitor_region ~len:monitor_size;
  let root_region = Space.mmap space ~len:root_heap_size ~prot:Prot.rw ~pkey:root_pkey in
  let root_heap = Tlsf.create space ~name:"sdrad-root" in
  if sanitizer then Tlsf.set_sanitize root_heap true;
  Tlsf.add_region root_heap ~addr:root_region ~len:root_heap_size;
  (* The rewind transaction log lives in the monitor data domain, next to
     the domain records and saved contexts it audits. *)
  let audit = Rewind_log.create space ~heap:monitor_heap ~cap:audit_log_cap in
  (* The flight recorder shares the monitor data domain: its rings must
     survive the rewinds of the domains they describe. *)
  let flight = Flight.create space ~heap:monitor_heap ~cap:flight_log_cap () in
  let rng = Simkern.Rng.create seed in
  let metrics =
    match metrics with Some m -> m | None -> Telemetry.Metrics.create ()
  in
  let tracer =
    match tracer with Some tr -> tr | None -> Telemetry.Trace.create ()
  in
  let module M = Telemetry.Metrics in
  let t =
  {
    space;
    cost = Space.cost space;
    monitor_pkey;
    root_pkey;
    monitor_heap;
    root_heap;
    root_heap_regions = [ root_region ];
    canary_value = Int64.to_int (Simkern.Rng.int64 rng) land max_int;
    frame_counter = 0;
    exec_insts = Hashtbl.create 32;
    data_insts = Hashtbl.create 8;
    threads = Hashtbl.create 8;
    stack_pool = [];
    stack_reuse;
    virtual_keys;
    sanitizer;
    verify_policy;
    key_clock = 0;
    default_stack_size;
    default_heap_size;
    incident_cap = max 1 incident_log_cap;
    incident_q = Queue.create ();
    incident_handler = None;
    in_monitor = false;
    audit;
    flight;
    flight_snap = max 0 flight_snap;
    trace_ctx = Hashtbl.create 8;
    gate_bufs = Hashtbl.create 16;
    rewind_fault_hook = None;
    race_observer = None;
    journal_probes = [];
    pending_interrupted = false;
    metrics;
    tracer;
    c_rewinds =
      M.counter metrics "sdrad_rewinds_total"
        ~help:"Abnormal domain exits (rewind-and-discard events)";
    c_incidents_resumed =
      M.counter metrics "sdrad_incidents_resumed_total"
        ~help:
          "Rewinds that absorbed a fault mid-discard and were resumed from \
           the durable intent record";
    c_rewind_interrupts =
      M.counter metrics "sdrad_rewind_interrupts_total"
        ~help:"Faults arriving while a multi-domain rewind was in flight";
    c_key_evictions =
      M.counter metrics "sdrad_key_evictions_total"
        ~help:"Dormant domains parked to recycle a protection key";
    c_incidents =
      M.counter metrics "sdrad_incidents_total"
        ~help:"Faults reported to the incident log";
    c_dropped_incidents =
      M.counter metrics "sdrad_dropped_incidents_total"
        ~help:"Incidents evicted from the bounded incident log";
    c_enters =
      M.counter metrics "sdrad_domain_enters_total"
        ~help:"Switches into a nested domain";
    c_exits =
      M.counter metrics "sdrad_domain_exits_total"
        ~help:"Normal switches back to a parent domain";
    c_gate_batched =
      M.counter metrics "gate_batched_calls_total"
        ~help:"Domain entries coalesced into an open batched gate";
    c_inits =
      M.counter metrics "sdrad_domain_inits_total"
        ~help:"Execution-domain initializations (rewind points established)";
    c_destroys =
      M.counter metrics "sdrad_domain_destroys_total"
        ~help:"Explicit domain destroys (execution and data domains)";
    h_switch_cycles =
      M.histogram metrics "sdrad_switch_cycles"
        ~help:"Virtual cycles per domain switch (one enter or one exit)";
    h_rewind_cycles =
      M.histogram metrics "sdrad_rewind_cycles"
        ~help:"Virtual cycles per abnormal exit (context restore + discard)";
  }
  in
  (* Structural gauges and hardware counters are sampled at exposition
     time, so vmem/tlsf stay free of any telemetry dependency. *)
  M.gauge_fn metrics "sdrad_execution_domains"
    ~help:"Live execution-domain instances" (fun () ->
      float_of_int (Hashtbl.length t.exec_insts));
  M.gauge_fn metrics "sdrad_data_domains" ~help:"Live data domains" (fun () ->
      float_of_int (Hashtbl.length t.data_insts));
  M.gauge_fn metrics "sdrad_pkeys_in_use" ~help:"Allocated protection keys"
    (fun () -> float_of_int (Space.pkeys_in_use t.space));
  M.gauge_fn metrics "sdrad_pooled_stacks"
    ~help:"Stack areas held for reuse" (fun () ->
      float_of_int (List.length t.stack_pool));
  M.gauge_fn metrics "sdrad_threads" ~help:"Registered simulated threads"
    (fun () -> float_of_int (Hashtbl.length t.threads));
  M.gauge_fn metrics "sdrad_monitor_bytes"
    ~help:"Monitor control data currently allocated" (fun () ->
      float_of_int (Tlsf.used_bytes t.monitor_heap));
  M.counter_fn metrics "sdrad_audit_appended_total"
    ~help:"Incident records committed to the durable rewind audit log"
    (fun () -> Rewind_log.appended t.audit);
  M.counter_fn metrics "sdrad_audit_dropped_total"
    ~help:"Incident records evicted from the bounded audit ring"
    (fun () -> Rewind_log.dropped t.audit);
  M.gauge_fn metrics "sdrad_audit_records"
    ~help:"Incident records currently retained in the audit ring" (fun () ->
      float_of_int (Rewind_log.retained t.audit));
  M.counter_fn metrics "sdrad_flight_events_total"
    ~help:"Flight-recorder events recorded across all per-domain rings"
    (fun () -> Flight.recorded t.flight);
  M.counter_fn metrics "sdrad_flight_dropped_total"
    ~help:
      "Flight-recorder events lost to ring wrap, domain eviction or \
       allocation failure"
    (fun () -> Flight.dropped t.flight);
  M.counter_fn metrics "trace_aborted_spans_total"
    ~help:"Spans ended by an exception unwinding (faults, rewinds)"
    (fun () -> Telemetry.Trace.aborted_spans tracer);
  M.counter_fn metrics "vmem_pkru_writes_total"
    ~help:"WRPKRU instructions executed" (fun () -> Space.wrpkru_writes space);
  M.counter_fn metrics "vmem_pkru_elided_total"
    ~help:"WRPKRU installs skipped because the value was already current"
    (fun () -> Space.pkru_elided space);
  M.counter_fn metrics "vmem_faults_total" ~help:"Memory faults raised"
    (fun () -> Space.fault_count space);
  M.counter_fn metrics "vmem_tlb_hits_total"
    ~help:"Access-grant cache (software TLB) hits" (fun () ->
      Space.tlb_hits space);
  M.counter_fn metrics "vmem_tlb_misses_total"
    ~help:"Access-grant cache fills via the slow path" (fun () ->
      Space.tlb_misses space);
  M.counter_fn metrics "vmem_tlb_shootdowns_total"
    ~help:"Page-range grant-cache invalidations broadcast to all threads"
    (fun () -> Space.tlb_shootdowns space);
  M.counter_fn metrics "sanitizer_poison_faults_total"
    ~help:"Checked accesses refused because they touched poisoned bytes"
    (fun () -> Space.poison_faults space);
  M.counter_fn metrics "sanitizer_poisoned_ranges_total"
    ~help:"Ranges marked poisoned (redzones, frees, discards)" (fun () ->
      Space.poisoned_ranges space);
  M.counter_fn metrics "sanitizer_unpoisoned_ranges_total"
    ~help:"Ranges marked live again (allocations, stack reuse)" (fun () ->
      Space.unpoisoned_ranges space);
  M.gauge_fn metrics "vmem_rss_bytes" ~help:"Touched resident bytes"
    (fun () -> float_of_int (Space.rss_bytes space));
  M.gauge_fn metrics "vmem_mapped_bytes" ~help:"Mapped bytes" (fun () ->
      float_of_int (Space.mapped_bytes space));
  List.iter
    (fun (label, heap) ->
      M.counter_fn metrics "tlsf_malloc_calls_total"
        ~help:"Successful TLSF allocations"
        ~labels:[ ("heap", label) ]
        (fun () -> Tlsf.malloc_calls heap);
      M.counter_fn metrics "tlsf_free_calls_total"
        ~help:"Successful TLSF frees"
        ~labels:[ ("heap", label) ]
        (fun () -> Tlsf.free_calls heap))
    [ ("monitor", t.monitor_heap); ("root", t.root_heap) ];
  install_syscall_oracle t;
  t

let space t = t.space
let cur_tid () = if Sched.in_thread () then Sched.self () else -1

(* {1 PKRU policy computation} *)

let current_inst ts = match ts.entered with [] -> None | i :: _ -> Some i

let current_udi_of ts =
  match ts.entered with [] -> root_udi | i :: _ -> i.udi

let compute_pkru t ts =
  let cur = current_inst ts in
  let cur_udi = current_udi_of ts in
  let v = ref (Pkru.deny Pkru.all_access ~key:t.monitor_pkey) in
  (* The root domain is read-only from nested domains (global data). *)
  (match cur with
  | None -> ()
  | Some _ -> v := Pkru.allow_read !v ~key:t.root_pkey);
  Hashtbl.iter
    (fun _ inst ->
      if inst.pkey >= 0 then
      let rights =
        match cur with
        | Some c when c == inst -> `Rw
        | _ ->
            if
              inst.tid = ts.t_tid && inst.parent = cur_udi
              && inst.opts.access = Accessible
              && inst.state <> Entered
            then `Rw
            else
              (* Direct parent, when the current domain opted in. *)
              let parent_readable =
                match cur with
                | Some c ->
                    c.opts.parent_readable && c.parent = inst.udi
                    && inst.tid = ts.t_tid
                | None -> false
              in
              if parent_readable then `Ro else `No
      in
      v :=
        (match rights with
        | `Rw -> Pkru.allow !v ~key:inst.pkey
        | `Ro -> Pkru.allow_read !v ~key:inst.pkey
        | `No -> Pkru.deny !v ~key:inst.pkey))
    t.exec_insts;
  Hashtbl.iter
    (fun _ dd ->
      let p =
        match Hashtbl.find_opt dd.d_perms cur_udi with Some p -> p | None -> 0
      in
      v :=
        (if Prot.has p Prot.write then Pkru.allow !v ~key:dd.d_pkey
         else if Prot.has p Prot.read then Pkru.allow_read !v ~key:dd.d_pkey
         else Pkru.deny !v ~key:dd.d_pkey))
    t.data_insts;
  !v

(* {1 Thread registration} *)

let thread_state t =
  let tid = cur_tid () in
  match Hashtbl.find_opt t.threads tid with
  | Some ts -> ts
  | None ->
      (* Thread constructor (§IV-B): set up a per-thread root stack and the
         initial access policy. *)
      let len = t.default_stack_size in
      let base = Space.mmap t.space ~len ~prot:Prot.rw ~pkey:t.root_pkey in
      let ts =
        {
          t_tid = tid;
          entered = [];
          root_sp = base + len;
          root_stack_base = base;
          root_stack_len = len;
          cur_pkru = Pkru.all_access;
          monitor_depth = 0;
          gate_depth = 0;
        }
      in
      Hashtbl.replace t.threads tid ts;
      ts.cur_pkru <- compute_pkru t ts;
      Space.wrpkru t.space ts.cur_pkru;
      ts

(* Reference-monitor call gate: raise privileges to reach the monitor data
   domain, run [f], then install whatever policy [ts.cur_pkru] holds on
   exit — at most two WRPKRU writes per API call, as in PKU call gates,
   and none at all for elided re-entry (see below). *)
(* Mark [f]'s system calls as issued by the reference monitor (the API
   implementation), exempting them from the syscall oracle. *)
let sanctioned t f =
  let was = t.in_monitor in
  t.in_monitor <- true;
  Fun.protect ~finally:(fun () -> t.in_monitor <- was) f

let monitor_view t ts = Pkru.allow ts.cur_pkru ~key:t.monitor_pkey
let in_root ts = match ts.entered with [] -> true | _ -> false

let install_pkru t v =
  Telemetry.Trace.with_span t.tracer "switch.pkru_write" (fun () ->
      Space.wrpkru t.space v)

(* Gate elision. A per-thread depth counter makes nested [with_monitor]
   re-entry free: only the outermost bracket installs the raised view on
   the way in and the compartment policy on the way out. (The old code
   wrote on every bracket — and the inner bracket's exit silently
   dropped monitor privileges while the outer bracket was still
   active.) When a batched gate is open ([open_gate]) and the thread is
   in its home root context, the outermost exit re-installs the
   {e raised} view instead of dropping it, so every monitor section of
   the batch after the first is write-free; compartment entry/exit
   still installs the compartment's own policy, keeping isolation
   byte-for-byte identical to the unbatched path. *)
let with_monitor t ts f =
  ts.monitor_depth <- ts.monitor_depth + 1;
  if ts.monitor_depth = 1 then install_pkru t (monitor_view t ts);
  let was = t.in_monitor in
  t.in_monitor <- true;
  Fun.protect
    ~finally:(fun () ->
      t.in_monitor <- was;
      ts.monitor_depth <- ts.monitor_depth - 1;
      if ts.monitor_depth = 0 then
        if ts.gate_depth > 0 && in_root ts then
          install_pkru t (monitor_view t ts)
        else install_pkru t ts.cur_pkru)
    f

(* {1 Causal trace context}

   One 62-bit trace id per thread, set by the server when it starts
   handling a request and cleared when the reply is sent. Every flight-
   recorder event and rewind audit record written on that thread in
   between carries the id, which is what links a client op to its
   server-side consequences. Plain OCaml state: the id is metadata about
   the monitor's execution, not compartment-reachable memory. *)

let current_trace t =
  match Hashtbl.find_opt t.trace_ctx (cur_tid ()) with
  | Some id -> id
  | None -> 0L

let set_trace t id =
  let tid = cur_tid () in
  if id = 0L then Hashtbl.remove t.trace_ctx tid
  else Hashtbl.replace t.trace_ctx tid id

let with_trace t id f =
  let tid = cur_tid () in
  let prev = Hashtbl.find_opt t.trace_ctx tid in
  set_trace t id;
  Fun.protect
    ~finally:(fun () ->
      match prev with
      | Some p -> Hashtbl.replace t.trace_ctx tid p
      | None -> Hashtbl.remove t.trace_ctx tid)
    f

(* Record one flight-recorder event for [udi] (default: the thread's
   current domain), stamped with the active trace context. Raises
   privileges when called from compartment context — the ring lives in
   monitor memory. *)
let flight_event t ?udi ?(arg = 0) kind =
  let tid = cur_tid () in
  let udi =
    match udi with
    | Some u -> u
    | None -> (
        match Hashtbl.find_opt t.threads tid with
        | Some ts -> current_udi_of ts
        | None -> root_udi)
  in
  let write () =
    Flight.record t.flight ~udi ~tid ~at:(now ()) ~trace:(current_trace t)
      ~arg kind
  in
  match Hashtbl.find_opt t.threads tid with
  | Some ts -> with_monitor t ts write
  | None -> write ()

(* {1 Monitor bookkeeping blocks}

   Domain records and saved contexts live in the monitor data domain, so
   they are real (protected, RSS-visible) memory. *)

let meta_block_size = 64
let ctx_block_size = 64

let write_meta t inst =
  let a = inst.meta_addr in
  Space.store64 t.space a inst.udi;
  Space.store64 t.space (a + 8) inst.tid;
  Space.store64 t.space (a + 16) inst.pkey;
  Space.store64 t.space (a + 24) inst.stack_base;
  Space.store64 t.space (a + 32) inst.stack_len;
  Space.store64 t.space (a + 40) inst.parent

let save_context t ts inst =
  charge t.cost.context_save;
  let a = Tlsf.malloc t.monitor_heap ctx_block_size in
  inst.ctx_addr <- a;
  Space.store64 t.space a inst.frame;
  Space.store64 t.space (a + 8) inst.udi;
  Space.store64 t.space (a + 16) ts.root_sp;
  Space.store64 t.space (a + 24) ts.t_tid

let drop_context t inst =
  if inst.ctx_addr <> 0 then begin
    Tlsf.free t.monitor_heap inst.ctx_addr;
    inst.ctx_addr <- 0
  end

(* {1 Stacks} *)

let take_stack t ~len ~pkey =
  let rec pick acc = function
    | [] -> None
    | (base, l) :: rest when l >= len ->
        t.stack_pool <- List.rev_append acc rest;
        Some (base, l)
    | s :: rest -> pick (s :: acc) rest
  in
  match if t.stack_reuse then pick [] t.stack_pool else None with
  | Some (base, l) ->
      Space.pkey_mprotect t.space ~addr:base ~len:l ~prot:Prot.rw ~pkey;
      if Space.sanitizer_enabled t.space then
        Space.unpoison t.space ~addr:base ~len:l;
      (base, l)
  | None ->
      let base = Space.mmap t.space ~len ~prot:Prot.rw ~pkey in
      (base, len)

let release_stack t ~base ~len =
  if t.stack_reuse then begin
    (* Keep the area for reuse but seal it with the monitor's key so stale
       pointers into a dead domain's stack fault. *)
    Space.pkey_mprotect t.space ~addr:base ~len ~prot:Prot.rw
      ~pkey:t.monitor_pkey;
    (* A pooled stack stays mapped; poison it so even monitor-privileged
       stale pointers into the dead domain's frames are detected until
       the area is reissued ({!take_stack} unpoisons). *)
    if Space.sanitizer_enabled t.space then
      Space.poison t.space ~addr:base ~len;
    t.stack_pool <- (base, len) :: t.stack_pool
  end
  else Space.munmap t.space base

(* {1 Protection-key virtualization (libmpk-style, §IV-B)}

   With [virtual_keys] enabled, running out of the 15 hardware keys parks
   a dormant domain instead of failing: its pages are made PROT_NONE (a
   real mprotect walk — the "much slower" fallback the paper attributes
   to libmpk) and its key is recycled. The instance is unparked — given a
   key again and re-protected — when it is re-initialized. *)

let park_instance t inst =
  List.iter
    (fun r ->
      match Space.alloc_len t.space r with
      | Some len -> Space.mprotect t.space ~addr:r ~len ~prot:Prot.none
      | None -> ())
    inst.heap_regions;
  Space.mprotect t.space ~addr:inst.stack_base ~len:inst.stack_len
    ~prot:Prot.none;
  Space.pkey_free t.space inst.pkey;
  inst.pkey <- -1;
  Telemetry.Metrics.inc t.c_key_evictions

let acquire_pkey t =
  match Space.pkey_alloc t.space with
  | Some k -> k
  | None ->
      if not t.virtual_keys then err Out_of_pkeys
      else begin
        (* Evict the least recently used dormant instance. *)
        let victim =
          Hashtbl.fold
            (fun _ inst best ->
              if inst.state = Dormant && inst.pkey >= 0 then
                match best with
                | Some b when b.last_used <= inst.last_used -> best
                | _ -> Some inst
              else best)
            t.exec_insts None
        in
        match victim with
        | None -> err Out_of_pkeys
        | Some v ->
            Log.debug (fun m ->
                m "key pressure: parking dormant domain %d (tid %d)" v.udi v.tid);
            park_instance t v;
            (match Space.pkey_alloc t.space with
            | Some k -> k
            | None -> err Out_of_pkeys)
      end

let unpark_instance t inst =
  if inst.pkey < 0 then begin
    let k = acquire_pkey t in
    inst.pkey <- k;
    List.iter
      (fun r ->
        match Space.alloc_len t.space r with
        | Some len ->
            Space.pkey_mprotect t.space ~addr:r ~len ~prot:Prot.rw ~pkey:k
        | None -> ())
      inst.heap_regions;
    Space.pkey_mprotect t.space ~addr:inst.stack_base ~len:inst.stack_len
      ~prot:Prot.rw ~pkey:k
  end

let touch_key t inst =
  t.key_clock <- t.key_clock + 1;
  inst.last_used <- t.key_clock

(* {1 Sub-heaps} *)

let inst_heap t inst =
  match inst.heap with
  | Some h -> h
  | None ->
      let h = Tlsf.create t.space ~name:(Printf.sprintf "udi%d" inst.udi) in
      if t.sanitizer then Tlsf.set_sanitize h true;
      let len = max inst.opts.heap_size Tlsf.min_region_len in
      let region = Space.mmap t.space ~len ~prot:Prot.rw ~pkey:inst.pkey in
      Tlsf.add_region h ~addr:region ~len;
      inst.heap_regions <- region :: inst.heap_regions;
      inst.heap <- Some h;
      h

let heap_malloc t ~heap ~pkey ~pool_size ~grow size =
  match Tlsf.malloc_opt heap size with
  | Some p -> p
  | None ->
      let len = max pool_size (size + (2 * Tlsf.block_overhead) + 64) in
      let region = Space.mmap t.space ~len ~prot:Prot.rw ~pkey in
      grow region;
      Tlsf.add_region heap ~addr:region ~len;
      Tlsf.malloc heap size

(* {1 Instance lookup helpers} *)

let find_exec t ts udi = Hashtbl.find_opt t.exec_insts (ts.t_tid, udi)

let get_exec t ts udi =
  match find_exec t ts udi with
  | Some inst -> inst
  | None -> err (if Hashtbl.mem t.data_insts udi then Wrong_kind else Unknown_domain)

(* {1 Core life cycle} *)

let fresh_frame t =
  t.frame_counter <- t.frame_counter + 1;
  t.frame_counter

(* Cheap monitor-init-time policy assertion behind [verify_policy]: every
   live domain holds a key of its own, distinct from the monitor's and the
   root's. The full static verifier (stack/heap visibility, gate buffers,
   hooks, reachability) lives in [lib/analysis] and runs offline or at
   server setup. *)
let assert_policy t =
  if t.verify_policy then begin
    let seen = Hashtbl.create 16 in
    let claim what udi pkey =
      if pkey >= 0 then begin
        let who = Printf.sprintf "%s %d" what udi in
        if pkey = t.monitor_pkey || pkey = t.root_pkey then
          failwith
            (Printf.sprintf "sdrad: policy violation: %s holds reserved key %d"
               who pkey);
        match Hashtbl.find_opt seen pkey with
        | Some other ->
            failwith
              (Printf.sprintf "sdrad: policy violation: %s and %s share key %d"
                 other who pkey)
        | None -> Hashtbl.replace seen pkey who
      end
    in
    Hashtbl.iter (fun _ i -> claim "domain" i.udi i.pkey) t.exec_insts;
    Hashtbl.iter (fun _ d -> claim "data domain" d.d_udi d.d_pkey) t.data_insts
  end

let init_exec t ts udi opts =
  sanctioned t @@ fun () ->
  if udi = root_udi then err Root_operation;
  if Hashtbl.mem t.data_insts udi then err Wrong_kind;
  let cur = current_udi_of ts in
  match find_exec t ts udi with
  | Some inst -> (
      match inst.state with
      | Dormant ->
          if inst.parent <> cur then err Not_a_child;
          unpark_instance t inst;
          touch_key t inst;
          inst.opts <- { opts with stack_size = inst.opts.stack_size };
          inst.state <- Ready;
          inst.frame <- fresh_frame t;
          with_monitor t ts (fun () ->
              save_context t ts inst;
              ts.cur_pkru <- compute_pkru t ts);
          Telemetry.Metrics.inc t.c_inits;
          assert_policy t;
          inst
      | Ready | Entered -> err Already_initialized)
  | None ->
      let pkey = acquire_pkey t in
      let stack_base, stack_len = take_stack t ~len:opts.stack_size ~pkey in
      let inst =
        {
          udi;
          tid = ts.t_tid;
          opts;
          parent = cur;
          pkey;
          state = Ready;
          stack_base;
          stack_len;
          sp = stack_base + stack_len;
          heap = None;
          heap_regions = [];
          frame = fresh_frame t;
          ctx_addr = 0;
          meta_addr = 0;
          last_used = 0;
          cleanups = [];
        }
      in
      Hashtbl.replace t.exec_insts (ts.t_tid, udi) inst;
      with_monitor t ts (fun () ->
          inst.meta_addr <- Tlsf.malloc t.monitor_heap meta_block_size;
          write_meta t inst;
          save_context t ts inst;
          ts.cur_pkru <- compute_pkru t ts);
      Telemetry.Metrics.inc t.c_inits;
      assert_policy t;
      inst

(* Fully remove an instance's memory and identity (used by destroy with
   [`Discard] and by abnormal exits: "subheaps are never merged back after
   abnormal exits, as the data must be considered corrupted"). *)
(* Drop cached marshalling buffers referencing a domain about to lose its
   heap (callee side) or to stop calling (caller side). The allocations
   themselves go away with the callee's regions; no free needed. Exec
   instances are per-thread, so their discard passes [tid] and leaves the
   other threads' caches (whose instances — and heaps — survive) alone;
   a data-domain destroy is global and purges every thread's entries. *)
let forget_gate_buffers ?tid t udi =
  let stale =
    Hashtbl.fold
      (fun ((btid, caller, callee, _) as k) _ acc ->
        if
          (match tid with Some w -> btid = w | None -> true)
          && (caller = udi || callee = udi)
        then k :: acc
        else acc)
      t.gate_bufs []
  in
  List.iter (Hashtbl.remove t.gate_bufs) stale

let discard_instance t ts inst =
  let bypass f =
    if Space.sanitizer_enabled t.space then Space.sanitizer_bypass t.space f
    else f ()
  in
  if inst.opts.scrub_on_discard then
    (* The scrub sweeps whole regions, redzones and freed blocks included;
       it must not trip the poison scan it co-exists with. *)
    bypass (fun () ->
        List.iter
          (fun r ->
            match Space.alloc_len t.space r with
            | Some len -> Space.fill t.space ~addr:r ~len '\000'
            | None -> ())
          inst.heap_regions;
        Space.fill t.space ~addr:inst.stack_base ~len:inst.stack_len '\000');
  (* Poison-on-discard: mark everything the domain could address poisoned
     before the mappings go away, so any access racing the teardown — and
     pooled-stack ghosts until reissue — is a detected POISON fault, not a
     silent read. A later mmap over the same range clears the marks. *)
  if t.sanitizer then begin
    List.iter
      (fun r ->
        match Space.alloc_len t.space r with
        | Some len -> Space.poison t.space ~addr:r ~len
        | None -> ())
      inst.heap_regions;
    Space.poison t.space ~addr:inst.stack_base ~len:inst.stack_len
  end;
  List.iter (fun r -> Space.munmap t.space r) inst.heap_regions;
  inst.heap_regions <- [];
  inst.heap <- None;
  release_stack t ~base:inst.stack_base ~len:inst.stack_len;
  drop_context t inst;
  if inst.meta_addr <> 0 then begin
    Tlsf.free t.monitor_heap inst.meta_addr;
    inst.meta_addr <- 0
  end;
  if inst.pkey >= 0 then Space.pkey_free t.space inst.pkey;
  forget_gate_buffers ~tid:ts.t_tid t inst.udi;
  Hashtbl.remove t.exec_insts (ts.t_tid, inst.udi)

(* {1 Subtrees}

   A domain's children cannot outlive it: whether the parent is rewound,
   destroyed, or torn down by a foreign exception, every initialized
   descendant — entered or not — goes with it. Post-order (deepest
   first, children in udi order for determinism), so a subtree is always
   discarded bottom-up. *)

let run_cleanups inst =
  let fs = inst.cleanups in
  inst.cleanups <- [];
  List.iter (fun f -> f ()) fs

let descendants_post t ts udi ~except =
  let children u =
    Hashtbl.fold
      (fun (tid, _) i acc ->
        if tid = ts.t_tid && i.parent = u && not (List.memq i except) then
          i :: acc
        else acc)
      t.exec_insts []
    |> List.sort (fun a b -> compare a.udi b.udi)
  in
  let rec go u = List.concat_map (fun k -> go k.udi @ [ k ]) (children u) in
  go udi

(* The audit-log view of a domain about to be discarded, captured while
   everything is still mapped. *)
let extent_of t inst =
  {
    Rewind_log.x_udi = inst.udi;
    x_was =
      (match inst.state with
      | Entered -> `Entered
      | Ready -> `Ready
      | Dormant -> `Dormant);
    x_stack = (inst.stack_base, inst.stack_len);
    x_regions =
      List.map
        (fun r ->
          (r, match Space.alloc_len t.space r with Some l -> l | None -> 0))
        inst.heap_regions;
  }

let trigger_of_cause = function
  | Segv { addr; code; access } ->
      ( `Segv,
        Format.asprintf "%a" Space.pp_si_code code,
        addr,
        Format.asprintf "%a" Space.pp_access access )
  | Stack_smash -> (`Stack_smash, "-", 0, "")
  | Explicit msg -> (`Explicit, "-", 0, msg)

let journal_replays t =
  List.fold_left (fun acc probe -> acc + probe ()) 0 t.journal_probes

let enter t udi =
  let ts = thread_state t in
  let inst = get_exec t ts udi in
  (match inst.state with
  | Ready -> ()
  | Dormant -> err Not_initialized
  | Entered -> err Already_initialized);
  if inst.parent <> current_udi_of ts then err Not_a_child;
  if inst.frame = 0 then err Not_initialized;
  touch_key t inst;
  let t0 = now () in
  Telemetry.Trace.with_span t.tracer "switch.enter"
    ~args:[ ("udi", string_of_int udi) ]
    (fun () ->
      with_monitor t ts (fun () ->
          inst.state <- Entered;
          inst.sp <- inst.stack_base + inst.stack_len;
          ts.entered <- inst :: ts.entered;
          Telemetry.Trace.with_span t.tracer "switch.stack_swap" (fun () ->
              charge t.cost.stack_switch);
          Telemetry.Trace.with_span t.tracer "switch.bookkeeping" (fun () ->
              charge t.cost.switch_work;
              ts.cur_pkru <- compute_pkru t ts);
          Flight.record t.flight ~udi ~tid:ts.t_tid ~at:(now ())
            ~trace:(current_trace t) Flight.Switch_in);
      (* Push the return address of the call gate onto the new stack — done
         after the policy switch, with the domain's own rights. *)
      inst.sp <- inst.sp - 16;
      Space.store64 t.space inst.sp inst.frame);
  (match t.race_observer with
  | Some f -> f (Types.Rv_domain { tid = ts.t_tid; udi; enter = true })
  | None -> ());
  Telemetry.Metrics.inc t.c_enters;
  if ts.gate_depth > 0 then Telemetry.Metrics.inc t.c_gate_batched;
  Telemetry.Metrics.observe t.h_switch_cycles (now () -. t0)

let exit_domain t =
  let ts = thread_state t in
  match ts.entered with
  | [] -> err Not_entered
  | inst :: rest ->
      let t0 = now () in
      Telemetry.Trace.with_span t.tracer "switch.exit"
        ~args:[ ("udi", string_of_int inst.udi) ]
        (fun () ->
          with_monitor t ts (fun () ->
              ts.entered <- rest;
              inst.state <- Ready;
              Telemetry.Trace.with_span t.tracer "switch.stack_swap"
                (fun () -> charge t.cost.stack_switch);
              Telemetry.Trace.with_span t.tracer "switch.bookkeeping"
                (fun () ->
                  charge t.cost.switch_work;
                  ts.cur_pkru <- compute_pkru t ts);
              Flight.record t.flight ~udi:inst.udi ~tid:ts.t_tid
                ~at:(now ()) ~trace:(current_trace t) Flight.Switch_out));
      (match t.race_observer with
      | Some f ->
          f (Types.Rv_domain { tid = ts.t_tid; udi = inst.udi; enter = false })
      | None -> ());
      Telemetry.Metrics.inc t.c_exits;
      Telemetry.Metrics.observe t.h_switch_cycles (now () -. t0)

let current t =
  let ts = thread_state t in
  current_udi_of ts

let deinit t udi =
  let ts = thread_state t in
  let inst = get_exec t ts udi in
  (match inst.state with
  | Entered -> err Domain_entered
  | Dormant -> err Not_initialized
  | Ready -> ());
  with_monitor t ts (fun () ->
      drop_context t inst;
      inst.frame <- 0;
      inst.state <- Dormant)

(* The heap (and its region bookkeeping) of the current domain. *)
let current_heap t ts =
  match current_inst ts with
  | None ->
      ( t.root_heap,
        t.root_pkey,
        (fun r -> t.root_heap_regions <- r :: t.root_heap_regions),
        t.default_heap_size )
  | Some inst ->
      ( inst_heap t inst,
        inst.pkey,
        (fun r -> inst.heap_regions <- r :: inst.heap_regions),
        inst.opts.heap_size )

let destroy t udi ~heap =
  let ts = thread_state t in
  match Hashtbl.find_opt t.data_insts udi with
  | Some dd ->
      with_monitor t ts (fun () ->
          (match heap with
          | `Discard -> List.iter (fun r -> Space.munmap t.space r) dd.d_regions
          | `Merge ->
              let target, pkey, track, _ = current_heap t ts in
              List.iter
                (fun r ->
                  (match Space.alloc_len t.space r with
                  | Some len ->
                      Space.pkey_mprotect t.space ~addr:r ~len ~prot:Prot.rw ~pkey
                  | None -> ());
                  track r)
                dd.d_regions;
              Tlsf.merge target ~from:dd.d_heap);
          Tlsf.free t.monitor_heap dd.d_meta_addr;
          Space.pkey_free t.space dd.d_pkey;
          forget_gate_buffers t udi;
          Hashtbl.remove t.data_insts udi;
          ts.cur_pkru <- compute_pkru t ts);
      race_emit t (Types.Rv_unshared { udi; pkey = dd.d_pkey });
      Telemetry.Metrics.inc t.c_destroys
  | None ->
      let inst = get_exec t ts udi in
      if inst.state = Entered then err Domain_entered;
      if inst.parent <> current_udi_of ts then err Not_a_child;
      let merge_refused = ref false in
      with_monitor t ts (fun () ->
          (* The destroyed domain takes its whole subtree with it. The
             descendants' abnormal cleanups run (their teardown is
             involuntary, and rewind-aware resources such as Dlock must be
             poison-released, not leaked); [inst]'s own cleanups do not —
             an explicit destroy is a normal exit. *)
          List.iter
            (fun d ->
              run_cleanups d;
              discard_instance t ts d)
            (descendants_post t ts udi ~except:[]);
          (match heap with
          | `Discard -> ()
          | `Merge -> (
              if inst.opts.access <> Accessible then err Not_accessible;
              match inst.heap with
              | None -> inst.heap_regions <- []
              | Some child_heap ->
                  (* A normal exit is no proof of integrity: an overflow
                     that stayed inside the sub-heap would poison the
                     parent's allocator through the merge. Walk the child
                     heap first; refuse (and discard) if it is damaged. *)
                  if Tlsf.check child_heap <> [] then begin
                    Log.warn (fun m ->
                        m "refusing to merge corrupted sub-heap of domain %d" udi);
                    merge_refused := true
                  end
                  else begin
                    let target, pkey, track, _ = current_heap t ts in
                    List.iter
                      (fun r ->
                        (match Space.alloc_len t.space r with
                        | Some len ->
                            Space.pkey_mprotect t.space ~addr:r ~len
                              ~prot:Prot.rw ~pkey
                        | None -> ());
                        track r)
                      inst.heap_regions;
                    Tlsf.merge target ~from:child_heap;
                    inst.heap_regions <- [];
                    inst.heap <- None
                  end));
          discard_instance t ts inst;
          ts.cur_pkru <- compute_pkru t ts);
      Telemetry.Metrics.inc t.c_destroys;
      if !merge_refused then
        record_incident t
          {
            failed_udi = udi;
            cause = Explicit "corrupted sub-heap discarded instead of merged";
            tid = ts.t_tid;
            at = now ();
          }

(* {1 Data domains} *)

let init_data t ~udi ?heap_size () =
  sanctioned t @@ fun () ->
  if udi = root_udi then err Root_operation;
  let ts = thread_state t in
  if Hashtbl.mem t.data_insts udi then err Already_initialized;
  if find_exec t ts udi <> None then err Wrong_kind;
  let heap_size = Option.value heap_size ~default:t.default_heap_size in
  let pkey =
    match Space.pkey_alloc t.space with Some k -> k | None -> err Out_of_pkeys
  in
  let len = max heap_size Tlsf.min_region_len in
  let region = Space.mmap t.space ~len ~prot:Prot.rw ~pkey in
  let h = Tlsf.create t.space ~name:(Printf.sprintf "data%d" udi) in
  if t.sanitizer then Tlsf.set_sanitize h true;
  Tlsf.add_region h ~addr:region ~len;
  let perms = Hashtbl.create 4 in
  (* The creating domain gets read-write access by default so it can
     populate the data domain. *)
  Hashtbl.replace perms (current_udi_of ts) Prot.rw;
  with_monitor t ts (fun () ->
      let meta = Tlsf.malloc t.monitor_heap meta_block_size in
      Space.store64 t.space meta udi;
      Space.store64 t.space (meta + 8) pkey;
      Hashtbl.replace t.data_insts udi
        {
          d_udi = udi;
          d_pkey = pkey;
          d_heap = h;
          d_regions = [ region ];
          d_perms = perms;
          d_meta_addr = meta;
        };
      ts.cur_pkru <- compute_pkru t ts);
  race_emit t (Types.Rv_shared { udi; pkey });
  assert_policy t

let dprotect t ~udi ~tddi prot =
  let ts = thread_state t in
  match Hashtbl.find_opt t.data_insts tddi with
  | None ->
      err (if Hashtbl.mem t.exec_insts (ts.t_tid, tddi) then Wrong_kind
           else Unknown_domain)
  | Some dd ->
      with_monitor t ts (fun () ->
          if prot = 0 then Hashtbl.remove dd.d_perms udi
          else Hashtbl.replace dd.d_perms udi prot;
          ts.cur_pkru <- compute_pkru t ts)

(* {1 Memory management} *)

type heap_target =
  | In_current
  | In_child of exec_inst
  | In_data of data_inst

let resolve_heap t ts udi =
  let cur = current_udi_of ts in
  if udi = cur then In_current
  else
    match Hashtbl.find_opt t.data_insts udi with
    | Some dd ->
        let p =
          match Hashtbl.find_opt dd.d_perms cur with Some p -> p | None -> 0
        in
        if Prot.has p Prot.write then In_data dd else err Not_accessible
    | None -> (
        match find_exec t ts udi with
        | None -> err Unknown_domain
        | Some inst ->
            if inst.parent <> cur then err Not_a_child;
            if inst.opts.access <> Accessible then err Not_accessible;
            In_child inst)

let malloc t ~udi size =
  let ts = thread_state t in
  let target = resolve_heap t ts udi in
  let addr =
    with_monitor t ts (fun () ->
        (* Under the sanitizer every allocation (un)poisons redzones — a
           forensically interesting act, so it lands in the flight ring. *)
        if t.sanitizer then
          Flight.record t.flight ~udi ~tid:ts.t_tid ~at:(now ())
            ~trace:(current_trace t) ~arg:size Flight.Alloc_poison;
        match target with
        | In_current ->
            let heap, pkey, track, pool = current_heap t ts in
            heap_malloc t ~heap ~pkey ~pool_size:pool ~grow:track size
        | In_child inst ->
            let heap = inst_heap t inst in
            heap_malloc t ~heap ~pkey:inst.pkey ~pool_size:inst.opts.heap_size
              ~grow:(fun r -> inst.heap_regions <- r :: inst.heap_regions)
              size
        | In_data dd ->
            heap_malloc t ~heap:dd.d_heap ~pkey:dd.d_pkey
              ~pool_size:t.default_heap_size
              ~grow:(fun r -> dd.d_regions <- r :: dd.d_regions)
              size)
  in
  (* Reuse boundary for shadow-cell observers: the block's previous
     occupant's access history must not leak onto the new one. *)
  (match t.race_observer with
  | Some f -> f (Types.Rv_alloc { udi; addr; len = size })
  | None -> ());
  addr

let free t ~udi addr =
  let ts = thread_state t in
  let target = resolve_heap t ts udi in
  with_monitor t ts (fun () ->
      match target with
      | In_current ->
          let heap, _, _, _ = current_heap t ts in
          Tlsf.free heap addr
      | In_child inst -> Tlsf.free (inst_heap t inst) addr
      | In_data dd -> Tlsf.free dd.d_heap addr);
  match t.race_observer with
  | Some f -> f (Types.Rv_free { udi; addr })
  | None -> ()

let usable_size t ~udi addr =
  let ts = thread_state t in
  match resolve_heap t ts udi with
  | In_current ->
      let heap, _, _, _ = current_heap t ts in
      Tlsf.usable_size heap addr
  | In_child inst -> Tlsf.usable_size (inst_heap t inst) addr
  | In_data dd -> Tlsf.usable_size dd.d_heap addr

(* {1 Batched gates}

   A server loop that dispatches several consecutive requests to nested
   domains can open a gate once, run the whole batch, and close it: while
   the gate is open and the thread sits in its home root context, the
   monitor view stays installed between API calls, so all the per-request
   monitor bookkeeping (admit events, init, marshalling, deinit) costs
   zero WRPKRU writes. Compartment entry/exit still installs the
   compartment policy, so isolation — and everything the flight recorder
   and supervisor see — is identical to the unbatched path. *)

let open_gate t =
  let ts = thread_state t in
  ts.gate_depth <- ts.gate_depth + 1;
  if ts.gate_depth = 1 && ts.monitor_depth = 0 && in_root ts then
    install_pkru t (monitor_view t ts)

let close_gate t =
  let ts = thread_state t in
  if ts.gate_depth = 0 then invalid_arg "Api.close_gate: no gate open";
  ts.gate_depth <- ts.gate_depth - 1;
  if ts.gate_depth = 0 && ts.monitor_depth = 0 && in_root ts then
    install_pkru t ts.cur_pkru

let with_gate t f =
  open_gate t;
  Fun.protect ~finally:(fun () -> close_gate t) f

let gate_open t = (thread_state t).gate_depth > 0

(* Cached per-(caller, callee) argument-marshalling buffer in the
   callee's heap. Persistent-domain pattern (Figure 3): the callee's heap
   survives [deinit], so the buffer is reused across requests instead of
   a malloc/free pair per call; it is forgotten when the callee is
   discarded or destroyed. *)
let gate_buffer t ?(slot = 0) ~udi size =
  let ts = thread_state t in
  let key = (ts.t_tid, current_udi_of ts, udi, slot) in
  match Hashtbl.find_opt t.gate_bufs key with
  | Some (addr, cap) when cap >= size -> addr
  | prev ->
      (match prev with
      | Some (addr, _) -> free t ~udi addr
      | None -> ());
      let addr = malloc t ~udi size in
      Hashtbl.replace t.gate_bufs key (addr, size);
      addr

(* {1 Stack frames} *)

let cur_sp ts =
  match ts.entered with [] -> ts.root_sp | inst :: _ -> inst.sp

let set_cur_sp ts v =
  match ts.entered with [] -> ts.root_sp <- v | inst :: _ -> inst.sp <- v

let stack_floor ts =
  match ts.entered with
  | [] -> ts.root_stack_base
  | inst :: _ -> inst.stack_base

let alloca t n =
  if n < 0 then invalid_arg "alloca";
  let ts = thread_state t in
  let sp = (cur_sp ts - n) land lnot 15 in
  if sp < stack_floor ts then
    (* Stack exhaustion touches the guard page below the stack area, which
       is how a real overflow manifests: a SEGV the rewind machinery can
       recover from. *)
    Space.store8 t.space (stack_floor ts - 1) 0;
  set_cur_sp ts sp;
  sp

let with_stack_frame t n f =
  let ts = thread_state t in
  let sp0 = cur_sp ts in
  let buf = alloca t (n + 8) in
  Space.store64 t.space (buf + n) t.canary_value;
  match f buf with
  | v ->
      let intact = Space.load64 t.space (buf + n) = t.canary_value in
      set_cur_sp ts sp0;
      if not intact then raise Stack_check_failure;
      v
  | exception e ->
      set_cur_sp ts sp0;
      raise e

let abort _t msg = raise (Attack_detected msg)

(* {1 Rewinding} *)

(* Abnormal exit (steps 11–14 of Figure 1): restore the parent's
   privileges, discard the failing domain — and its whole nested subtree,
   entered or not — and roll the thread back to the failing domain's
   initialization point.

   The discard is a two-phase transaction against the durable log in
   monitor memory (INTERNALS §12): (1) write an intent record naming
   every domain and extent about to go, (2) discard bottom-up, advancing
   the intent's progress counter after each domain, (3) commit — stamp
   the record and clear the intent pointer. A fault arriving mid-rewind
   (modelled by [rewind_fault_hook], the [Rewind_interrupt] chaos site)
   re-drives the in-flight discard from the durable progress counter, so
   a partially-rolled-back tree is never observable. *)

exception Rewind_interrupted

(* The failing domain plus everything that must go with it, bottom-up:
   for each domain of the entered chain up to [inst] (innermost first),
   its non-entered descendants, then the domain itself. Also truncates
   [ts.entered] to the surviving suffix. *)
let rewind_victims t ts inst =
  let chain, remainder =
    if List.memq inst ts.entered then
      let rec split acc = function
        | top :: rest when top == inst -> (List.rev (top :: acc), rest)
        | top :: rest -> split (top :: acc) rest
        | [] -> assert false
      in
      split [] ts.entered
    else ([ inst ], ts.entered)
  in
  ts.entered <- remainder;
  List.concat_map
    (fun e -> descendants_post t ts e.udi ~except:chain @ [ e ])
    chain

(* Phase 2: the discard driver. Every iteration re-reads the durable
   progress counter, so after an interrupt the loop resumes exactly where
   the intent record says the last completed step was — on hardware this
   is the trap handler re-entering the monitor and finding the in-flight
   intent. *)
let drive_discards t ts ~audited victims =
  let arr = Array.of_list victims in
  let total = Array.length arr in
  let local_p = ref 0 in
  let progress () =
    if audited then Rewind_log.progress t.audit else !local_p
  in
  (* Bound the faults honored per rewind so an always-firing chaos rule
     cannot keep the monitor in the discard loop forever. *)
  let interrupt_budget = ref (total + 8) in
  let check_interrupt () =
    match t.rewind_fault_hook with
    | Some hook when !interrupt_budget > 0 && hook () ->
        decr interrupt_budget;
        Telemetry.Metrics.inc t.c_rewind_interrupts;
        raise Rewind_interrupted
    | _ -> ()
  in
  let rec drive () =
    let p = progress () in
    if p < total then begin
      (try
         check_interrupt ();
         (if audited then
            (* Resume cross-check: the live tree must agree with the
               durable intent at every step. *)
            match Rewind_log.domain_at t.audit p with
            | Some u -> assert (u = arr.(p).udi)
            | None -> ());
         run_cleanups arr.(p);
         discard_instance t ts arr.(p);
         if audited then Rewind_log.mark_discarded t.audit (p + 1)
         else incr local_p
       with Rewind_interrupted ->
         t.pending_interrupted <- true;
         if audited then Rewind_log.note_interrupt t.audit);
      drive ()
    end
  in
  drive ()

let abnormal_exit ?(record = true) t ts inst fault =
  if record then Telemetry.Metrics.inc t.c_rewinds;
  let t0 = now () in
  Telemetry.Trace.with_span t.tracer "rewind"
    ~args:[ ("udi", string_of_int inst.udi) ]
    (fun () ->
      Telemetry.Trace.with_span t.tracer "rewind.context_restore" (fun () ->
          charge t.cost.context_restore);
      with_monitor t ts (fun () ->
          let victims = rewind_victims t ts inst in
          (match t.race_observer with
          | Some f ->
              f
                (Types.Rv_rewind
                   {
                     tid = ts.t_tid;
                     victims = List.map (fun v -> v.udi) victims;
                   })
          | None -> ());
          (* Phase 1 — intent. A fresh incident first finalizes any stale
             in-flight record (a grandparent rewind whose outer frame
             never ran), so the log cannot wedge. A [~record:false] exit
             is the collateral parent level of a grandparent rewind: its
             subtree chains onto the in-flight incident instead of
             opening a second one. *)
          if record && Rewind_log.pending t.audit then
            Rewind_log.commit t.audit ~at:t0
              ~journal_replays:(journal_replays t);
          let kind, si, fault_addr, msg = trigger_of_cause fault.cause in
          (* The fault lands in the target's flight ring first, so the
             snapshot below — the black-box excerpt frozen into the
             audit record — ends on the event that triggered it. *)
          if record then
            Flight.record t.flight ~udi:fault.failed_udi ~tid:ts.t_tid
              ~at:t0 ~trace:(current_trace t) ~arg:fault_addr Flight.Fault;
          let events =
            List.concat_map
              (fun v -> Flight.snapshot t.flight ~udi:v.udi ~n:t.flight_snap)
              victims
          in
          let audited =
            Rewind_log.begin_incident t.audit ~continue:(not record)
              ~target:fault.failed_udi ~tid:ts.t_tid ~kind ~si ~fault_addr
              ~msg ~at:t0 ~events
              ~subtree:(List.map (extent_of t) victims)
              ()
          in
          Telemetry.Trace.with_span t.tracer "rewind.heap_discard" (fun () ->
              drive_discards t ts ~audited victims);
          (* Phase 3 — commit. A [Grandparent] domain's own exit leaves
             the incident in flight: the collateral exit at the parent
             level (or, failing that, the next incident) completes it. *)
          if (not record) || inst.opts.rewind = Parent then begin
            Rewind_log.commit t.audit ~at:(now ())
              ~journal_replays:(journal_replays t);
            if t.pending_interrupted then begin
              Telemetry.Metrics.inc t.c_incidents_resumed;
              t.pending_interrupted <- false
            end
          end;
          Telemetry.Trace.with_span t.tracer "rewind.policy_update" (fun () ->
              ts.cur_pkru <- compute_pkru t ts)));
  Telemetry.Metrics.observe t.h_rewind_cycles (now () -. t0);
  (* Report the incident (e.g. to a SIEM, §VI "Applicability") outside the
     monitor bracket, in the parent's context. *)
  if record then record_incident t fault

(* Clean up our instance when a foreign exception unwinds through the
   init frame: force-exit if entered, then discard everything, subtree
   included. Descendants' abnormal cleanups run (their last chance);
   [inst]'s own do not — a foreign exception is not this domain's
   abnormal exit, and its resources unwind with the OCaml stack. If a
   grandparent rewind is passing through, the discarded subtree is
   chained onto its in-flight audit record. *)
let teardown_passthrough t ts inst frame_id =
  if inst.frame = frame_id && Hashtbl.mem t.exec_insts (ts.t_tid, inst.udi)
  then
    with_monitor t ts (fun () ->
        ts.entered <- List.filter (fun i -> not (i == inst)) ts.entered;
        let victims = descendants_post t ts inst.udi ~except:[] @ [ inst ] in
        (match t.race_observer with
        | Some f ->
            f
              (Types.Rv_rewind
                 {
                   tid = ts.t_tid;
                   victims = List.map (fun v -> v.udi) victims;
                 })
        | None -> ());
        let audited =
          Rewind_log.pending t.audit
          && Rewind_log.begin_incident t.audit ~continue:true
               ~target:inst.udi ~tid:ts.t_tid ~kind:`Explicit ~si:"-"
               ~fault_addr:0 ~msg:"collateral teardown" ~at:(now ())
               ~events:
                 (List.concat_map
                    (fun v ->
                      Flight.snapshot t.flight ~udi:v.udi ~n:t.flight_snap)
                    victims)
               ~subtree:(List.map (extent_of t) victims)
               ()
        in
        List.iteri
          (fun idx d ->
            if not (d == inst) then run_cleanups d;
            discard_instance t ts d;
            if audited then Rewind_log.mark_discarded t.audit (idx + 1))
          victims;
        ts.cur_pkru <- compute_pkru t ts)

let cause_of_exn = function
  | Space.Fault { addr; code; access; _ } -> Some (Segv { addr; code; access })
  | Stack_check_failure -> Some Stack_smash
  | Attack_detected msg -> Some (Explicit msg)
  | _ -> None

let run t ~udi ?(opts = default_options) ~on_rewind body =
  let ts = thread_state t in
  let inst = init_exec t ts udi opts in
  let frame_id = inst.frame in
  (* The whole protected execution is one span: a fault unwinding
     through it leaves an [aborted:true] trace event (and bumps
     [trace_aborted_spans_total]), so rewound requests are
     distinguishable from clean returns in Chrome exports. *)
  let body () =
    Telemetry.Trace.with_span t.tracer "domain.body"
      ~args:
        (let tr = current_trace t in
         ("udi", string_of_int udi)
         ::
         (if tr = 0L then []
          else [ ("trace", Printf.sprintf "%016Lx" tr) ]))
      body
  in
  match body () with
  | v ->
      (* Convention: the domain must be destroyed or deinitialized before
         the initializing function returns; deinitialize if the user did
         not, so the saved context never dangles. *)
      if
        inst.frame = frame_id
        && Hashtbl.mem t.exec_insts (ts.t_tid, inst.udi)
        && inst.state <> Dormant
      then begin
        while inst.state = Entered do
          exit_domain t
        done;
        deinit t udi
      end;
      v
  | exception Rewind_to_grandparent fault ->
      (* A descendant configured with [Grandparent] was discarded; the
         rewind consumes this frame: this domain aborts as well. *)
      if current_udi_of ts = udi && inst.frame = frame_id then begin
        (* The fault was recorded when the failing descendant was
           discarded; this level is collateral, not a second incident. *)
        abnormal_exit ~record:false t ts inst fault;
        on_rewind fault
      end
      else begin
        teardown_passthrough t ts inst frame_id;
        raise (Rewind_to_grandparent fault)
      end
  | exception e -> (
      match cause_of_exn e with
      | Some cause when current_udi_of ts = udi && inst.frame = frame_id ->
          (* The failure happened while executing in our domain: this is
             the abnormal domain exit for this rewind point. *)
          let fault = { failed_udi = udi; cause; tid = ts.t_tid; at = now () } in
          abnormal_exit t ts inst fault;
          (match inst.opts.rewind with
          | Parent -> on_rewind fault
          | Grandparent -> raise (Rewind_to_grandparent fault))
      | _ ->
          teardown_passthrough t ts inst frame_id;
          raise e)

(* {1 Introspection} *)

let is_initialized t udi =
  let ts = thread_state t in
  match Hashtbl.find_opt t.data_insts udi with
  | Some _ -> true
  | None -> (
      match find_exec t ts udi with
      | Some inst -> inst.state <> Dormant
      | None -> false)

let rewind_count t = Telemetry.Metrics.counter_value t.c_rewinds
let incidents t = List.of_seq (Queue.to_seq t.incident_q)
let dropped_incidents t = Telemetry.Metrics.counter_value t.c_dropped_incidents

(* {2 Rewind audit log}

   Reading the log back dereferences monitor-protected memory, so raise
   privileges when called from a registered simulated thread; outside the
   scheduler the default all-access policy applies. *)
let with_audit_read t f =
  match Hashtbl.find_opt t.threads (cur_tid ()) with
  | Some ts -> with_monitor t ts f
  | None -> f ()

let audit_records t = with_audit_read t (fun () -> Rewind_log.records t.audit)

let flight_events t ~udi =
  with_audit_read t (fun () -> Flight.events t.flight ~udi)

let flight_domains t = Flight.domains t.flight
let flight_recorded t = Flight.recorded t.flight
let flight_dropped t = Flight.dropped t.flight
let flight_bytes t = Flight.bytes t.flight
let audit_appended t = Rewind_log.appended t.audit
let audit_dropped t = Rewind_log.dropped t.audit
let audit_retained t = Rewind_log.retained t.audit
let audit_bytes t = Rewind_log.bytes t.audit
let audit_pending t = Rewind_log.pending t.audit
let set_rewind_fault_hook t hook = t.rewind_fault_hook <- hook
let add_journal_probe t probe = t.journal_probes <- probe :: t.journal_probes
let metrics t = t.metrics
let tracer t = t.tracer
let set_incident_handler t h = t.incident_handler <- Some h

(* Compose instead of clobber: the new handler runs first, then whatever
   was installed before it. Lets a supervisor subscribe without stealing
   the slot from application reporting (and vice versa). *)
let add_incident_handler t h =
  let prev = t.incident_handler in
  t.incident_handler <-
    Some
      (fun f ->
        h f;
        match prev with Some p -> p f | None -> ())

let on_abnormal_cleanup t f =
  let ts = thread_state t in
  match current_inst ts with
  | None -> err Root_operation
  | Some inst ->
      let token = ref true in
      inst.cleanups <- (fun () -> if !token then f ()) :: inst.cleanups;
      fun () -> token := false

let domain_pkey t udi =
  match Hashtbl.find_opt t.data_insts udi with
  | Some dd -> Some dd.d_pkey
  | None -> (
      let ts = thread_state t in
      match find_exec t ts udi with
      | Some inst -> Some inst.pkey
      | None -> None)

let monitor_bytes t = Tlsf.used_bytes t.monitor_heap
let monitor_pkey t = t.monitor_pkey
let root_pkey t = t.root_pkey
let has_incident_handler t = t.incident_handler <> None
let sanitizer_enabled t = t.sanitizer

(* Structured snapshot of the monitor's declared state, the input to the
   static policy verifier (lib/analysis). Pure data, no simulated-memory
   access, no virtual time charged. *)
type domain_info = {
  di_udi : udi;
  di_kind : [ `Exec | `Data ];
  di_tid : int;
  di_parent : udi;
  di_pkey : int;
  di_state : [ `Dormant | `Ready | `Entered ];
  di_stack : (int * int) option;
  di_regions : (int * int) list;
  di_accessible : bool;
  di_parent_readable : bool;
  di_has_cleanup : bool;
  di_perms : (udi * Vmem.Prot.t) list;
}

let domains_info t =
  let region_len r =
    match Space.alloc_len t.space r with Some l -> l | None -> 0
  in
  let execs =
    Hashtbl.fold
      (fun _ inst acc ->
        {
          di_udi = inst.udi;
          di_kind = `Exec;
          di_tid = inst.tid;
          di_parent = inst.parent;
          di_pkey = inst.pkey;
          di_state =
            (match inst.state with
            | Dormant -> `Dormant
            | Ready -> `Ready
            | Entered -> `Entered);
          di_stack = Some (inst.stack_base, inst.stack_len);
          di_regions = List.map (fun r -> (r, region_len r)) inst.heap_regions;
          di_accessible = inst.opts.access = Accessible;
          di_parent_readable = inst.opts.parent_readable;
          di_has_cleanup = inst.cleanups <> [];
          di_perms = [];
        }
        :: acc)
      t.exec_insts []
  in
  let datas =
    Hashtbl.fold
      (fun _ dd acc ->
        {
          di_udi = dd.d_udi;
          di_kind = `Data;
          di_tid = -1;
          di_parent = root_udi;
          di_pkey = dd.d_pkey;
          di_state = `Ready;
          di_stack = None;
          di_regions = List.map (fun r -> (r, region_len r)) dd.d_regions;
          di_accessible = false;
          di_parent_readable = false;
          di_has_cleanup = false;
          di_perms =
            List.sort compare
              (Hashtbl.fold (fun u p acc -> (u, p) :: acc) dd.d_perms []);
        }
        :: acc)
      t.data_insts []
  in
  List.sort
    (fun a b -> compare (a.di_udi, a.di_tid) (b.di_udi, b.di_tid))
    (execs @ datas)

(* {1 Convenience wrappers} *)

let with_domain t udi f =
  enter t udi;
  match f () with
  | v ->
      exit_domain t;
      v
  | exception e ->
      (* A memory fault is a signal: the rewind machinery must see the
         domain still entered. Ordinary exceptions exit cleanly. *)
      (match cause_of_exn e with
      | Some _ -> ()
      | None -> exit_domain t);
      raise e

let protect_call t ~udi ?opts ~arg f =
  run t ~udi ?opts
    ~on_rewind:(fun fault -> Result.Error fault)
    (fun () ->
      let len = String.length arg in
      let adr = if len > 0 then malloc t ~udi len else 0 in
      if len > 0 then Space.store_string t.space adr arg;
      enter t udi;
      let r = f adr len in
      exit_domain t;
      if len > 0 then free t ~udi adr;
      destroy t udi ~heap:`Discard;
      Result.Ok r)

type switch_profile = {
  total_cycles : float;
  wrpkru_cycles : float;
  stack_cycles : float;
  bookkeeping_cycles : float;
  wrpkru_writes : int;
  wrpkru_elided : int;
}

let profile_switch t =
  let probe_udi = 0x7FFF_FF00 in
  run t ~udi:probe_udi
    ~on_rewind:(fun _ -> assert false)
    (fun () ->
      (* Warm-up pair: exclude first-touch page faults from the profile. *)
      enter t probe_udi;
      exit_domain t;
      (* The WRPKRU share is derived from the writes the measured window
         actually executed — not a hardcoded 4x — so the profile stays
         honest when elision or an open gate thins the gate path. *)
      let w0 = Space.wrpkru_writes t.space in
      let e0 = Space.pkru_elided t.space in
      let t0 = Sched.now () in
      enter t probe_udi;
      exit_domain t;
      let total = Sched.now () -. t0 in
      let writes = Space.wrpkru_writes t.space - w0 in
      let elided = Space.pkru_elided t.space - e0 in
      destroy t probe_udi ~heap:`Discard;
      let wrpkru = float_of_int writes *. t.cost.wrpkru in
      let stack =
        (2.0 *. t.cost.stack_switch) +. t.cost.mem_access
      in
      {
        total_cycles = total;
        wrpkru_cycles = wrpkru;
        stack_cycles = stack;
        bookkeeping_cycles = total -. wrpkru -. stack;
        wrpkru_writes = writes;
        wrpkru_elided = elided;
      })
