module Sched = Simkern.Sched

type t = {
  sd : Api.t;
  mu : Sched.Mutex.mutex;
  mutable poisoned_flag : bool;
  mutable holder_tid : int option;
  mutable cancel : (unit -> unit) option;
}

let create sd =
  { sd; mu = Sched.Mutex.create (); poisoned_flag = false; holder_tid = None; cancel = None }

let lock_id t = Sched.Mutex.id t.mu

(* Every transition is reported to the race observer under the
   underlying scheduler lock id, so the detector's lock-set view (from
   the Sched trace hook) and its Dlock view line up on one namespace. *)
let emit t op =
  Api.race_emit t.sd
    (Types.Rv_lock
       {
         lock = Sched.Mutex.id t.mu;
         tid = Sched.self ();
         udi = Api.current t.sd;
         op;
       })

let acquire t =
  Sched.Mutex.lock t.mu;
  t.holder_tid <- Some (Sched.self ());
  (* Acquired inside a nested domain: arm the abnormal-exit cleanup so a
     rewind of this domain releases (and poisons) the lock. *)
  if Api.current t.sd <> Types.root_udi then begin
    Api.flight_event t.sd Checkpoint.Flight.Lock_acquire;
    t.cancel <-
      Some
        (Api.on_abnormal_cleanup t.sd (fun () ->
             t.poisoned_flag <- true;
             t.holder_tid <- None;
             t.cancel <- None;
             emit t Types.Rl_poison;
             Sched.Mutex.unlock t.mu))
  end
  else t.cancel <- None;
  emit t (Types.Rl_acquire { poisoned = t.poisoned_flag });
  not t.poisoned_flag

let release t =
  match t.holder_tid with
  | Some tid when tid = Sched.self () ->
      (match t.cancel with
      | Some cancel ->
          cancel ();
          t.cancel <- None
      | None -> ());
      t.holder_tid <- None;
      emit t Types.Rl_release;
      Sched.Mutex.unlock t.mu
  | Some _ | None ->
      (* Already released — e.g. by the abnormal-exit cleanup. *)
      ()

let with_lock t f =
  let ok = acquire t in
  match f ~poisoned:(not ok) with
  | v ->
      release t;
      v
  | exception e ->
      (* The critical section did not complete: the protected state may be
         inconsistent (Rust-style poisoning on exceptional unwind). *)
      t.poisoned_flag <- true;
      if t.holder_tid = Some (Sched.self ()) then emit t Types.Rl_poison;
      release t;
      raise e

let poisoned t = t.poisoned_flag

let clear_poisoned t =
  (* Holder-only: clearing from a thread that does not hold the lock is
     unordered with respect to the next acquirer — the next critical
     section could begin with the flag still set (or see it vanish
     mid-inspection) depending on scheduling. Forcing the clearer to hold
     the lock makes the clear happen-before the next acquire through the
     lock itself. *)
  match t.holder_tid with
  | Some tid when tid = Sched.self () ->
      t.poisoned_flag <- false;
      emit t Types.Rl_clear
  | Some _ | None ->
      invalid_arg "Dlock.clear_poisoned: caller does not hold the lock"

let holder t = t.holder_tid
