module Sched = Simkern.Sched

type t = {
  sd : Api.t;
  mu : Sched.Mutex.mutex;
  mutable poisoned_flag : bool;
  mutable holder_tid : int option;
  mutable cancel : (unit -> unit) option;
}

let create sd =
  { sd; mu = Sched.Mutex.create (); poisoned_flag = false; holder_tid = None; cancel = None }

let acquire t =
  Sched.Mutex.lock t.mu;
  t.holder_tid <- Some (Sched.self ());
  (* Acquired inside a nested domain: arm the abnormal-exit cleanup so a
     rewind of this domain releases (and poisons) the lock. *)
  if Api.current t.sd <> Types.root_udi then begin
    Api.flight_event t.sd Checkpoint.Flight.Lock_acquire;
    t.cancel <-
      Some
        (Api.on_abnormal_cleanup t.sd (fun () ->
             t.poisoned_flag <- true;
             t.holder_tid <- None;
             t.cancel <- None;
             Sched.Mutex.unlock t.mu))
  end
  else t.cancel <- None;
  not t.poisoned_flag

let release t =
  match t.holder_tid with
  | Some tid when tid = Sched.self () ->
      (match t.cancel with
      | Some cancel ->
          cancel ();
          t.cancel <- None
      | None -> ());
      t.holder_tid <- None;
      Sched.Mutex.unlock t.mu
  | Some _ | None ->
      (* Already released — e.g. by the abnormal-exit cleanup. *)
      ()

let with_lock t f =
  let ok = acquire t in
  match f ~poisoned:(not ok) with
  | v ->
      release t;
      v
  | exception e ->
      (* The critical section did not complete: the protected state may be
         inconsistent (Rust-style poisoning on exceptional unwind). *)
      t.poisoned_flag <- true;
      release t;
      raise e

let poisoned t = t.poisoned_flag
let clear_poisoned t = t.poisoned_flag <- false
let holder t = t.holder_tid
