(** Shared types of the SDRaD library: domain indices, domain options,
    faults and API errors. *)

type udi = int
(** User domain index — the developer-chosen identifier for a domain
    (Table I of the paper). Index 0 is reserved for the root domain. *)

val root_udi : udi

(** Visibility of a nested execution domain to its parent (§IV-A): an
    accessible domain's memory can be read and written by its parent (so
    arguments can be copied in directly); an inaccessible domain's memory
    is sealed and data must flow through a shared data domain. *)
type access = Accessible | Inaccessible

(** Where an abnormal exit of the domain is handled (§IV-A): [Parent]
    returns control to this domain's own initialization point; in the
    [Grandparent] configuration the rewind continues to the parent
    domain's initialization point (Figure 2's deep-nesting pattern). *)
type rewind_target = Parent | Grandparent

type options = {
  access : access;
  rewind : rewind_target;
  parent_readable : bool;
      (** Allow the nested domain read-only access to its {e direct}
          parent's memory (read access to the root domain is always
          granted, §IV-C "Global Variables"). *)
  scrub_on_discard : bool;
      (** Zero the domain's stack and sub-heap before the memory is
          recycled (§VI: "scrub sensitive allocations from memory before
          leaving the domain"). Off by default — confidentiality of dead
          domain data is otherwise the developer's responsibility. *)
  allow_syscalls : bool;
      (** Permit direct system calls from inside the domain. Off by
          default: PKU sandboxes must filter the syscall interface (§VI,
          citing Connor et al. and Jenny), so an unexpected syscall from a
          nested domain is treated as an attack oracle and rewinds. The
          reference monitor's own calls (sub-heap growth etc.) are always
          sanctioned. *)
  stack_size : int;
  heap_size : int;  (** initial sub-heap pool size; the heap grows on demand *)
}

val default_options : options
(** Accessible, rewinds to parent, 64 KiB stack, 256 KiB initial heap. *)

(** Why a domain exited abnormally. *)
type cause =
  | Segv of {
      addr : int;
      code : Vmem.Space.si_code;
      access : Vmem.Space.access;
    }  (** A memory fault caught by the SDRaD signal handler. *)
  | Stack_smash  (** A stack-canary check failed (__stack_chk_fail). *)
  | Explicit of string
      (** The application reported an attack via {!Api.abort} — the hook
          for other run-time defenses (CFI, heap red zones, ...). *)

type fault = {
  failed_udi : udi;  (** the domain whose execution was discarded *)
  cause : cause;
  tid : int;  (** simulated thread on which the fault occurred *)
  at : float;
      (** virtual time (cycles) when the SDRaD handler caught the failure;
          rewind-latency experiments measure from here *)
}

val pp_cause : Format.formatter -> cause -> unit
val pp_fault : Format.formatter -> fault -> unit

(** Misuse of the API — these are programming errors, reported eagerly. *)
type error =
  | Already_initialized
  | Not_initialized
  | Unknown_domain
  | Out_of_pkeys  (** all 15 protection keys are in use *)
  | Not_a_child
  | Domain_entered  (** operation requires the domain not to be entered *)
  | Not_entered
  | Wrong_kind  (** execution-domain operation on a data domain or vice versa *)
  | Not_accessible
  | Root_operation  (** the root domain cannot be destroyed or exited *)

exception Error of error

val error_to_string : error -> string

(** {1 Race-observer events}

    The monitor-level half of the happens-before feed consumed by the
    race detector ({!Analysis.Race}); the scheduler-level half comes
    from {!Simkern.Sched.set_trace_hook}. Events are plain data computed
    from state the monitor already holds — emitting one never touches
    simulated memory or charges virtual time, so an attached observer
    cannot perturb the run it watches. *)

(** What happened to a rewind-aware lock ({!Dlock}). [lock] in
    {!race_event.Rv_lock} is the underlying scheduler lock id
    ({!Simkern.Sched.Mutex.id}), so lock-set and Dlock views line up. *)
type race_lock_op =
  | Rl_acquire of { poisoned : bool }
      (** Acquired; [poisoned] is the flag the acquirer observed. *)
  | Rl_release  (** Released normally by its holder. *)
  | Rl_poison
      (** Poison-released: a rewind (or exceptional unwind) of the
          critical section published the lock with the poison flag set. *)
  | Rl_clear  (** The poison flag was cleared by the holder. *)

type race_event =
  | Rv_domain of { tid : int; udi : udi; enter : bool }
      (** Thread [tid] entered ([enter = true]) or left a nested domain —
          the gate edges delimiting a rewind-atomicity scope. *)
  | Rv_rewind of { tid : int; victims : udi list }
      (** An abnormal exit on [tid] discarded [victims] (innermost
          first): writes the victims made are gone from memory but not
          from history. *)
  | Rv_shared of { udi : udi; pkey : int }
      (** A data domain — shared memory by construction — now owns
          [pkey]'s pages. *)
  | Rv_unshared of { udi : udi; pkey : int }  (** ... and was destroyed. *)
  | Rv_alloc of { udi : udi; addr : int; len : int }
      (** Monitor-mediated allocation: address reuse boundary. *)
  | Rv_free of { udi : udi; addr : int }
  | Rv_lock of { lock : int; tid : int; udi : udi; op : race_lock_op }
      (** A {!Dlock} transition, in the domain context [udi]. *)
