# Convenience entry points; everything is plain dune underneath.

.PHONY: all check test chaos bench bench-r3 telemetry-report clean

all: check

# Tier-1 gate: full build plus the default test suites.
check:
	dune build
	dune runtest

test: check

# Long fault-injection / DoS suites across five fixed seeds.
chaos:
	dune build @chaos

bench:
	dune exec bench/main.exe -- quick

# Switch-cost anatomy from span traces; fails if the PKRU-write share
# of an enter+exit pair leaves the paper's 30-50% band.
telemetry-report:
	dune exec bench/main.exe -- r2

# Access-grant cache (software TLB) host-time benchmark; emits
# BENCH_r3.json and fails if the hit rate on the kvcache workload
# drops below 90%.
bench-r3:
	dune exec bench/main.exe -- r3

clean:
	dune clean
