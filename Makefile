# Convenience entry points; everything is plain dune underneath.

.PHONY: all check test lint analyze chaos chaos-soak chaos-rewind-soak bench bench-r3 bench-r4 bench-r5 bench-gate telemetry-report forensics-report clean

all: check

# Tier-1 gate: full build plus the default test suites. The runtest
# alias depends on @lint (see the root dune file), so this is build +
# tests + lint in one command.
check:
	dune build
	dune runtest

test: check

# Repo lint only: banned patterns in lib/ (Obj.magic, wall-clock time,
# raw simulated-memory access, .ml without .mli), allowlisted in
# ./lint.allow.
lint:
	dune build @lint

# Full analysis gate: repo lint, the policy verifier over every fleet
# shard, the dynamic race/atomicity scenario, and the race-analyzer test
# suite (`dune build @races`).
analyze:
	dune build @lint
	dune exec bin/sdrad_cli.exe -- analyze --aggregate
	dune exec bin/sdrad_cli.exe -- analyze --races
	dune build @races

# Long fault-injection / DoS suites across five fixed seeds, plus the
# incident-forensics smoke run (see forensics-report below).
chaos:
	dune build @chaos

# Incident forensics smoke: replay the injected-fault scenario and
# render one request's full causal chain — client send, retry attempts,
# domain switch, fault, rewind audit record with flight snapshot,
# journal-replay outcome — as text and JSON, plus the rollback report.
forensics-report:
	dune build @forensics-report

# Recovery-correctness soak across five fixed seeds: retrying clients
# with idempotency keys under mixed network faults, injected corruption
# and overload; fails if an acknowledged write is lost or a
# non-idempotent op is applied twice.
chaos-soak:
	dune build @chaos-soak

# Fault-during-rewind campaign across the same seeds: second faults
# injected between discard steps of multi-domain rewinds; fails if any
# partial rollback state is observable (leaked lock, half-discarded
# subtree, pending intent, missing or duplicate audit record).
chaos-rewind-soak:
	dune build @chaos-rewind-soak

bench:
	dune exec bench/main.exe -- quick

# Switch-cost anatomy from span traces; fails if the PKRU-write share
# of an enter+exit pair leaves the paper's 30-50% band.
telemetry-report:
	dune exec bench/main.exe -- r2

# Access-grant cache (software TLB) host-time benchmark; emits
# BENCH_r3.json and fails if the hit rate on the kvcache workload
# drops below 90%.
bench-r3:
	dune exec bench/main.exe -- r3

# End-to-end recovery benchmark: goodput and p99 latency with retrying
# clients under a ~1% fault rate; emits BENCH_r4.json and fails if any
# operation runs out of retries or faulted goodput drops below 0.6x.
bench-r4:
	dune exec bench/main.exe -- r4

# Cluster scaling benchmark: aggregate goodput and p99 vs shard count
# with an open-loop fleet of 10^4 clients behind the consistent-hash
# router; emits BENCH_r5.json and fails if 4-shard aggregate goodput is
# below 2.8x the 1-shard figure.
bench-r5:
	dune exec bench/main.exe -- r5

# Batched-gate switch benchmark: request-loop anatomy with elision
# on/off and the kvcache YCSB overhead with batched gates; emits
# BENCH_gate.json and fails if the batched PKRU share is not below the
# 30% floor or the overhead does not improve on -3.7%/-6.6% run/load.
bench-gate:
	dune exec bench/main.exe -- gate

clean:
	dune clean
