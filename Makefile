# Convenience entry points; everything is plain dune underneath.

.PHONY: all check test chaos bench telemetry-report clean

all: check

# Tier-1 gate: full build plus the default test suites.
check:
	dune build
	dune runtest

test: check

# Long fault-injection / DoS suites across five fixed seeds.
chaos:
	dune build @chaos

bench:
	dune exec bench/main.exe -- quick

# Switch-cost anatomy from span traces; fails if the PKRU-write share
# of an enter+exit pair leaves the paper's 30-50% band.
telemetry-report:
	dune exec bench/main.exe -- r2

clean:
	dune clean
