# Convenience entry points; everything is plain dune underneath.

.PHONY: all check test chaos bench clean

all: check

# Tier-1 gate: full build plus the default test suites.
check:
	dune build
	dune runtest

test: check

# Long fault-injection / DoS suites across five fixed seeds.
chaos:
	dune build @chaos

bench:
	dune exec bench/main.exe -- quick

clean:
	dune clean
