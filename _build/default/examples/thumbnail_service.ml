(* A thumbnail/rendering service — the §VI "prime target" class (image
   and document renderers fed untrusted input). Clients upload images;
   the decoder runs in a transient domain per request. A crafted image
   exploiting the decoder's integer-overflow bug costs one request, not
   the service.

     dune exec examples/thumbnail_service.exe *)

module Space = Vmem.Space
module Sched = Simkern.Sched
module Api = Sdrad.Api
module Types = Sdrad.Types

let checksum space d =
  let acc = ref 0 in
  for y = 0 to d.Render.height - 1 do
    for x = 0 to d.Render.width - 1 do
      let r, g, b = Render.pixel space d ~x ~y in
      acc := (!acc * 31) + r + g + b land 0xFFFFFF
    done
  done;
  !acc land 0xFFFFFF

let server space sd listener =
  let rec accept_loop () =
    match Netsim.accept listener with
    | None -> ()
    | Some c ->
        let rec serve () =
          match Netsim.recv c with
          | None -> Netsim.close c
          | Some image ->
              (match Render.decode_isolated sd ~vulnerable:true image with
              | Ok d ->
                  Netsim.send c
                    (Printf.sprintf "rendered %dx%d checksum=%06x" d.Render.width
                       d.Render.height (checksum space d));
                  Api.free sd ~udi:Types.root_udi d.Render.fb
              | Error fault ->
                  Netsim.send c
                    (Format.asprintf "rejected: %a" Types.pp_cause
                       fault.Types.cause));
              serve ()
        in
        serve ();
        accept_loop ()
  in
  accept_loop ()

let () =
  let space = Space.create ~size_mib:64 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let listener = Netsim.listen net ~port:7000 in
  let _ = Sched.spawn sched ~name:"renderd" (fun () -> server space sd listener) in
  let _ =
    Sched.spawn sched ~name:"client" (fun () ->
        let c = Netsim.connect net ~port:7000 in
        let submit label image =
          Netsim.send c image;
          match Netsim.recv c with
          | Some reply -> Printf.printf "%-16s -> %s\n" label reply
          | None -> Printf.printf "%-16s -> connection dead\n" label
        in
        submit "logo.simg"
          (Render.encode ~width:32 ~height:32 (fun x y -> (x * 8, y * 8, 128)));
        submit "exploit.simg" (Render.encode_malicious ());
        submit "photo.simg"
          (Render.encode ~width:64 ~height:48 (fun x y -> ((x * y) mod 256, x, y)));
        Netsim.close c;
        Netsim.close_listener listener)
  in
  Sched.run sched;
  Printf.printf "rewinds: %d — the renderer never went down\n" (Api.rewind_count sd)
