(* The OpenSSL case study (§V-C): protect a cryptographic library from
   its caller by giving it an inaccessible persistent domain. The key
   material is sealed — even a fully compromised application cannot read
   it — and a fault inside the library is survived by re-initializing the
   cryptographic context.

     dune exec examples/isolated_crypto.exe *)

module Space = Vmem.Space
module Sched = Simkern.Sched
module Api = Sdrad.Api
module Types = Sdrad.Types

let key = String.init 32 (fun i -> Char.chr (0x40 + i))
let iv = String.make 12 '\001'

let hex s =
  String.concat ""
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.init (String.length s) (String.get s)))

let () =
  let space = Space.create ~size_mib:64 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let _ =
    Sched.spawn sched ~name:"demo" (fun () ->
        Printf.printf "setting up AES-256-GCM inside an inaccessible domain...\n";
        let iso =
          Crypto.Evp_sdrad.setup sd ~choice:Crypto.Evp_sdrad.Copy_in_out ~key ~iv ()
        in
        let msg = "wire this to the offshore account" in
        let buf = Api.malloc sd ~udi:Types.root_udi 256 in
        Space.store_string space buf msg;
        (match
           Crypto.Evp_sdrad.encrypt_update iso ~out:(buf + 128) ~in_:buf
             ~inl:(String.length msg)
         with
        | Ok n ->
            Printf.printf "ciphertext: %s...\n"
              (String.sub (hex (Space.read_string space (buf + 128) n)) 0 32)
        | Error f ->
            Printf.printf "fault: %s\n" (Format.asprintf "%a" Types.pp_fault f));
        (* 1. Confidentiality: scan every readable page for the raw key. *)
        let key_visible = ref false in
        Space.iter_mapped_pages space (fun page ->
            match Space.read_string space page 4096 with
            | contents ->
                let rec search i =
                  if i + 32 <= String.length contents then
                    if String.sub contents i 32 = key then key_visible := true
                    else search (i + 1)
                in
                search 0
            | exception Space.Fault _ -> () (* sealed page: unreadable *));
        Printf.printf "raw key readable from the application: %b\n" !key_visible;
        (* 2. Resilience: a memory-safety bug fires inside the library. *)
        Printf.printf "injecting a memory-corruption bug into the library...\n";
        Crypto.Evp_sdrad.inject_fault_next_call iso;
        (match Crypto.Evp_sdrad.encrypt_update iso ~out:(buf + 128) ~in_:buf ~inl:16 with
        | Error f ->
            Printf.printf "caught: %s\n" (Format.asprintf "%a" Types.pp_fault f)
        | Ok _ -> Printf.printf "BUG: corruption not caught\n");
        (* 3. Recovery: re-initialize the context (the paper's §III-D
           caveat — the old session keys are gone with the domain). *)
        Crypto.Evp_sdrad.recover iso ~key ~iv;
        (match Crypto.Evp_sdrad.encrypt_update iso ~out:(buf + 128) ~in_:buf ~inl:16 with
        | Ok _ -> Printf.printf "recovered: encryption works again after re-init\n"
        | Error _ -> Printf.printf "BUG: recovery failed\n");
        Crypto.Evp_sdrad.destroy iso;
        Printf.printf "rewinds: %d\n" (Api.rewind_count sd))
  in
  Sched.run sched
