(* Quickstart: compartmentalize a buggy routine into an isolated domain
   and survive the memory-safety violation it commits.

     dune exec examples/quickstart.exe *)

module Space = Vmem.Space
module Sched = Simkern.Sched
module Api = Sdrad.Api
module Types = Sdrad.Types

(* A "third-party" routine that parses untrusted input. It has a bug: a
   length field taken from the input drives an unchecked copy. *)
let risky_parse sd space ~input =
  let udi = 1 in
  let buf = Api.malloc sd ~udi (String.length input) in
  Space.store_string space buf input;
  Api.enter sd udi;
  (* ... inside the sandbox: the declared length is attacker-controlled. *)
  let declared = int_of_string (String.sub input 0 8) in
  let out = Api.malloc sd ~udi 64 in
  for i = 0 to declared - 1 do
    Space.store8 space (out + i) (Space.load8 space (buf + (i mod String.length input)))
  done;
  Api.exit_domain sd;
  let result = Space.read_string space out (min declared 64) in
  Api.destroy sd udi ~heap:`Discard;
  result

let () =
  let space = Space.create ~size_mib:32 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let _ =
    Sched.spawn sched ~name:"main" (fun () ->
        List.iter
          (fun input ->
            let verdict =
              Api.run sd ~udi:1
                ~on_rewind:(fun fault ->
                  Printf.sprintf "REWOUND (%s)"
                    (Format.asprintf "%a" Types.pp_cause fault.Types.cause))
                (fun () ->
                  let r = risky_parse sd space ~input in
                  Printf.sprintf "ok: %S" r)
            in
            Printf.printf "input %-24S -> %s\n" (String.sub input 0 (min 20 (String.length input))) verdict)
          [
            "00000008datadata";
            (* declared length lies: the copy rampages out of the domain *)
            "99999999boom";
            (* and the service still works afterwards *)
            "00000004fine";
          ];
        Printf.printf "rewinds performed: %d\n" (Api.rewind_count sd);
        Printf.printf "still in the root domain: %b\n"
          (Api.current sd = Types.root_udi))
  in
  Sched.run sched
