(* The NGINX case study (§V-B): a web server's HTTP parser is attacked
   with the CVE-2009-2629 analogue (URI "../" underflow). Unprotected,
   the worker process dies and takes every connection it was serving with
   it; with SDRaD, only the attacker's connection closes.

     dune exec examples/resilient_web.exe *)

module Space = Vmem.Space
module Sched = Simkern.Sched
module Api = Sdrad.Api
module Server = Httpd.Server
module Load = Workload.Http_load

let scenario ~variant ~label =
  Printf.printf "\n--- %s ---\n" label;
  let space = Space.create ~size_mib:128 () in
  let sd = match variant with Server.Sdrad -> Some (Api.create space) | _ -> None in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let fs = Httpd.Fs.create space in
  Httpd.Fs.add fs ~path:"/index.html" ~size:2048;
  let cfg = { Server.default_config with variant; vulnerable = true; workers = 1 } in
  let srv = ref None in
  let _ =
    Sched.spawn sched ~name:"demo" (fun () ->
        let s = Server.start sched space ?sdrad:sd net ~fs cfg in
        srv := Some s;
        (* Ten keep-alive clients are browsing. *)
        let clients = List.init 10 (fun _ -> Netsim.connect net ~port:8080) in
        List.iter
          (fun c ->
            Netsim.send c (Load.request ~path:"/index.html");
            ignore (Netsim.recv c))
          clients;
        Printf.printf "10 clients served over keep-alive connections\n";
        (* The attack. *)
        let evil = Netsim.connect net ~port:8080 in
        Netsim.send evil (Load.request ~path:"/a/../../../etc/passwd");
        (match Netsim.recv evil with
        | None -> Printf.printf "attacker: connection closed\n"
        | Some r -> Printf.printf "attacker got: %s\n" (String.sub r 0 12));
        (* How many of the browsing clients survived? *)
        Sched.sleep 5.0e6;
        let survivors =
          List.length
            (List.filter
               (fun c ->
                 Netsim.send c (Load.request ~path:"/index.html");
                 match Netsim.recv c with
                 | Some r -> Load.is_200 r
                 | None -> false)
               clients)
        in
        Printf.printf "clients whose connection survived the attack: %d/10\n"
          survivors;
        List.iter Netsim.close clients;
        Server.stop s)
  in
  Sched.run sched;
  let s = Option.get !srv in
  Printf.printf "worker restarts: %d | rewinds: %d\n" (Server.worker_restarts s)
    (Server.rewinds s)

let () =
  print_endline "Rewind & Discard demo: NGINX under CVE-2009-2629";
  scenario ~variant:Server.Baseline ~label:"unprotected build (worker crash + restart)";
  scenario ~variant:Server.Sdrad ~label:"SDRaD build (parser in a nested domain)"
