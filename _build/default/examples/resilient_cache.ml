(* The Memcached case study (§V-A) as a runnable demo: a key-value cache
   is attacked with the CVE-2011-4971 analogue while serving clients.
   Run it twice — once unprotected, once with SDRaD — and compare.

     dune exec examples/resilient_cache.exe *)

module Space = Vmem.Space
module Sched = Simkern.Sched
module Api = Sdrad.Api
module Server = Kvcache.Server
module Proto = Kvcache.Proto

let scenario ~variant ~label =
  Printf.printf "\n--- %s ---\n" label;
  let space = Space.create ~size_mib:128 () in
  let sd = match variant with Server.Sdrad -> Some (Api.create space) | _ -> None in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let cfg = { Server.default_config with variant; vulnerable = true; workers = 2 } in
  let srv = ref None in
  let _ =
    Sched.spawn sched ~name:"demo" (fun () ->
        let s = Server.start sched space ?sdrad:sd net cfg in
        srv := Some s;
        (* A well-behaved client stores some session state. *)
        let client = Netsim.connect net ~port:11211 in
        let ask req = Netsim.send client req; Netsim.recv client in
        ignore (ask (Proto.fmt_set ~key:"session:42" ~flags:0 ~value:"logged-in"));
        Printf.printf "client stored session state\n";
        (* The attacker sends a set with a negative length field. *)
        let evil = Netsim.connect net ~port:11211 in
        Netsim.send evil
          (Proto.fmt_set_lying ~key:"pwn" ~flags:0 ~declared:(-1)
             ~value:(String.make 512 'A'));
        (match Netsim.recv evil with
        | None -> Printf.printf "attacker: connection closed by server\n"
        | Some r -> Printf.printf "attacker got: %s" r);
        (* Does the well-behaved client still have its session? *)
        (match ask (Proto.fmt_get "session:42") with
        | Some r when Proto.parse_reply r = Proto.Value "logged-in" ->
            Printf.printf "client: session intact, service uninterrupted\n"
        | Some r -> Printf.printf "client got unexpected reply: %s" r
        | None ->
            Printf.printf
              "client: CONNECTION DEAD — the whole cache went down with all \
               its contents\n");
        Netsim.close client;
        if not (Server.crashed s) then Server.stop s)
  in
  Sched.run sched;
  let s = Option.get !srv in
  Printf.printf "server crashed: %b | rewinds: %d | dropped connections: %d\n"
    (Server.crashed s) (Server.rewinds s)
    (Server.dropped_connections s);
  (match Server.rewind_latencies s with
  | l :: _ ->
      Printf.printf "recovery latency: %.1f us (restarting and reloading the \
                     cache would take minutes)\n"
        (Simkern.Cost.us_of_cycles Simkern.Cost.default l)
  | [] -> ())

let () =
  print_endline "Rewind & Discard demo: Memcached under CVE-2011-4971";
  scenario ~variant:Server.Baseline ~label:"unprotected build";
  scenario ~variant:Server.Sdrad ~label:"SDRaD build (each event in a nested domain)"
