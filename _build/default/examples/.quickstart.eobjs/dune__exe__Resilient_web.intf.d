examples/resilient_web.mli:
