examples/defense_in_depth.ml: Format List Printexc Printf Sdrad Simkern String Vmem
