examples/resilient_cache.mli:
