examples/quickstart.mli:
