examples/resilient_web.ml: Httpd List Netsim Option Printf Sdrad Simkern String Vmem Workload
