examples/isolated_crypto.ml: Char Crypto Format List Printf Sdrad Simkern String Vmem
