examples/isolated_crypto.mli:
