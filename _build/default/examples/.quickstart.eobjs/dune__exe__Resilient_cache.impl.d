examples/resilient_cache.ml: Kvcache Netsim Option Printf Sdrad Simkern String Vmem
