examples/thumbnail_service.mli:
