examples/thumbnail_service.ml: Format Netsim Printf Render Sdrad Simkern Vmem
