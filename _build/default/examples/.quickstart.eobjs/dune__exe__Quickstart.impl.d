examples/quickstart.ml: Format List Printf Sdrad Simkern String Vmem
