(* Defense in depth: the §III-E / §VI machinery working together.

   A worker pipeline takes jobs under a shared lock and runs a two-level
   domain nest (Figure 2): a transient outer domain owning the recovery
   point, and an inner domain configured to rewind to the *grandparent*.
   A fault in the inner domain therefore discards both levels, releases
   the rewind-aware lock (poisoned), fires the incident handler (the
   paper's SIEM hook), and the service carries on.

     dune exec examples/defense_in_depth.exe *)

module Space = Vmem.Space
module Sched = Simkern.Sched
module Api = Sdrad.Api
module Types = Sdrad.Types
module Dlock = Sdrad.Dlock

let outer = 1
let inner = 2

let process_job sd space lock job =
  Api.run sd ~udi:outer
    ~opts:{ Types.default_options with scrub_on_discard = true }
    ~on_rewind:(fun fault ->
      Printf.sprintf "recovered at outer level (%s)"
        (Format.asprintf "%a" Types.pp_cause fault.Types.cause))
    (fun () ->
      Api.enter sd outer;
      let result =
        Api.run sd ~udi:inner
          ~opts:{ Types.default_options with rewind = Types.Grandparent }
          ~on_rewind:(fun _ -> "unreachable: inner rewinds skip this level")
          (fun () ->
            Api.enter sd inner;
            (* Take the shared lock inside the domain — the dangerous
               pattern §VI warns about, made safe by Dlock. *)
            let clean = Dlock.acquire lock in
            if not clean then Dlock.clear_poisoned lock;
            let buf = Api.malloc sd ~udi:inner 128 in
            Space.store_string space buf job;
            (* Job 2 carries the exploit. *)
            (let is_exploit =
               String.split_on_char ' ' job |> List.mem "exploit"
             in
             if is_exploit then ignore (Space.load8 space 0));
            let out = Space.read_string space buf (String.length job) in
            Dlock.release lock;
            Api.exit_domain sd;
            Printf.sprintf "processed %S" out)
      in
      (* Still inside [outer]: the inner domain is its child. *)
      Api.destroy sd inner ~heap:`Discard;
      Api.exit_domain sd;
      Api.destroy sd outer ~heap:`Discard;
      result)

let () =
  let space = Space.create ~size_mib:32 () in
  let sd = Api.create space in
  Api.set_incident_handler sd (fun f ->
      Printf.printf "  [SIEM] incident: domain %d, %s\n" f.Types.failed_udi
        (Format.asprintf "%a" Types.pp_cause f.Types.cause));
  let sched = Sched.create () in
  let lock = Dlock.create sd in
  let tid =
    Sched.spawn sched ~name:"pipeline" (fun () ->
        List.iteri
          (fun i job ->
            Printf.printf "job %d: %s\n" i (process_job sd space lock job);
            if Dlock.poisoned lock then
              Printf.printf "  (lock was poisoned by the rewind — next \
                             holder revalidates shared state)\n")
          [
            "first harmless job";
            "the second job is carrying an exploit payload";
            "third job, after recovery";
          ])
  in
  Sched.run sched;
  (match Sched.outcome sched tid with
  | Some (Sched.Failed e) ->
      Printf.printf "pipeline failed: %s\n" (Printexc.to_string e)
  | _ -> ());
  Printf.printf "incident log: %d entr%s; pipeline never went down\n"
    (List.length (Api.incidents sd))
    (if List.length (Api.incidents sd) = 1 then "y" else "ies")
