(* Tests for the NGINX analogue: the phased HTTP parser (including the
   CVE-2009-2629 URI underflow), the master/worker server with restart,
   SDRaD parser isolation, and the OpenSSL client-certificate case
   study (CVE-2022-3786) wired through the web server. *)

module Space = Vmem.Space
module Prot = Vmem.Prot
module Sched = Simkern.Sched
module Api = Sdrad.Api
module Hp = Httpd.Http_parse
module Server = Httpd.Server
module Fs = Httpd.Fs
module Load = Workload.Http_load

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let in_thread f =
  let sched = Sched.create () in
  let tid = Sched.spawn sched ~name:"test" f in
  Sched.run sched;
  match Sched.outcome sched tid with
  | Some Sched.Completed -> ()
  | Some (Sched.Failed e) -> raise e
  | None -> Alcotest.fail "thread did not finish"

(* {1 Parser} *)

let with_bufs f =
  in_thread (fun () ->
      let space = Space.create ~size_mib:16 () in
      let buf = Space.mmap space ~len:8192 ~prot:Prot.rw ~pkey:0 in
      let dst = Space.mmap space ~len:4096 ~prot:Prot.rw ~pkey:0 in
      f space buf dst)

let normalize ?(vulnerable = false) space buf dst uri =
  Space.store_string space buf uri;
  let n =
    Hp.parse_complex_uri space ~src:buf ~len:(String.length uri) ~dst
      ~dst_cap:2048 ~vulnerable
  in
  Space.read_string space dst n

let test_parse_request_line () =
  with_bufs (fun space buf _ ->
      let req = "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n" in
      Space.store_string space buf req;
      let rl, off = Hp.parse_request_line space ~addr:buf ~len:(String.length req) in
      check string "method" "GET" rl.Hp.meth;
      check string "version" "HTTP/1.1" rl.Hp.version;
      check string "uri" "/index.html"
        (Space.read_string space rl.Hp.raw_uri_off rl.Hp.raw_uri_len);
      check int "offset past CRLF" (buf + 26) off)

let test_parse_request_line_rejects () =
  with_bufs (fun space buf _ ->
      let reject req =
        Space.store_string space buf req;
        match Hp.parse_request_line space ~addr:buf ~len:(String.length req) with
        | _ -> Alcotest.failf "accepted %S" req
        | exception Hp.Bad_request _ -> ()
      in
      reject "FROB / HTTP/1.1\r\n";
      reject "GET noslash HTTP/1.1\r\n";
      reject "GET / SPDY/9\r\n";
      reject "GET / HTTP/1.1")

let test_uri_normalization () =
  with_bufs (fun space buf dst ->
      check string "plain" "/a/b.html" (normalize space buf dst "/a/b.html");
      check string "merge slashes" "/a/b" (normalize space buf dst "//a///b");
      check string "dot segment" "/a/b" (normalize space buf dst "/a/./b");
      check string "dotdot" "/b" (normalize space buf dst "/a/../b");
      check string "deep dotdot" "/a/d" (normalize space buf dst "/a/b/c/../../d");
      check string "percent decode" "/a b" (normalize space buf dst "/a%20b");
      check string "trailing dotdot" "/" (normalize space buf dst "/a/..");
      check string "dot at end" "/a/" (normalize space buf dst "/a/."))

let test_uri_escape_rejected_when_patched () =
  with_bufs (fun space buf dst ->
      match normalize space buf dst "/a/../../etc/passwd" with
      | _ -> Alcotest.fail "escape accepted"
      | exception Hp.Bad_request _ -> ())

let test_uri_underflow_when_vulnerable () =
  with_bufs (fun space buf dst ->
      (* The vulnerable scan walks below [dst]; with a fresh mapping the
         guard page stops it with a SEGV — the CVE's crash. *)
      match normalize ~vulnerable:true space buf dst "/a/../../etc" with
      | _ -> Alcotest.fail "underflow did not fault"
      | exception Space.Fault { code; access; _ } ->
          check bool "maperr" true (code = Space.MAPERR);
          check bool "read underflow" true (access = Space.Read))

let test_parse_headers () =
  with_bufs (fun space buf _ ->
      let hdrs = "Host: example.com\r\nX-Client-Cert: abc\r\nAccept: */*\r\n\r\nBODY" in
      Space.store_string space buf hdrs;
      let headers, off = Hp.parse_headers space ~addr:buf ~len:(String.length hdrs) in
      check int "three headers" 3 (List.length headers);
      check (Alcotest.option string) "host" (Some "example.com")
        (Hp.find_header headers "Host");
      check (Alcotest.option string) "cert" (Some "abc")
        (Hp.find_header headers "x-client-cert");
      check string "rest is body" "BODY"
        (Space.read_string space (buf + off) 4))

(* {1 Server} *)

let mk_fs space =
  let fs = Fs.create space in
  Fs.add fs ~path:"/index.html" ~size:1024;
  Fs.add fs ~path:"/big.bin" ~size:(64 * 1024);
  Fs.add fs ~path:"/empty" ~size:0;
  fs

let run_server_test ?(workers = 1) ?(vulnerable = false) ?(verify_certs = false)
    ~variant f =
  let space = Space.create ~size_mib:128 () in
  let sd =
    match (variant, verify_certs) with
    | Server.Sdrad, _ | _, true -> Some (Api.create space)
    | _ -> None
  in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let cfg = { Server.default_config with variant; vulnerable; verify_certs; workers } in
  let srv = ref None in
  let _ =
    Sched.spawn sched ~name:"harness" (fun () ->
        let s = Server.start sched space ?sdrad:sd net ~fs:(mk_fs space) cfg in
        srv := Some s;
        f sched net s;
        Server.stop s)
  in
  Sched.run sched;
  Option.get !srv

let get net port path =
  let c = Netsim.connect net ~port in
  Netsim.send c (Load.request ~path);
  let r = Netsim.recv c in
  Netsim.close c;
  r

let test_server_serves_files () =
  let srv =
    run_server_test ~variant:Server.Baseline (fun _ net _ ->
        (match get net 8080 "/index.html" with
        | Some r ->
            check bool "200" true (Load.is_200 r);
            check bool "body present" true
              (String.length r > 1024)
        | None -> Alcotest.fail "no reply");
        (match get net 8080 "/missing" with
        | Some r -> check bool "404" true (String.sub r 9 3 = "404")
        | None -> Alcotest.fail "no reply");
        match get net 8080 "/sub/../index.html" with
        | Some r -> check bool "normalized path hits file" true (Load.is_200 r)
        | None -> Alcotest.fail "no reply")
  in
  check int "three requests" 3 (Server.requests_served srv)

let test_server_keepalive () =
  let srv =
    run_server_test ~variant:Server.Tlsf_alloc (fun _ net _ ->
        let c = Netsim.connect net ~port:8080 in
        for _ = 1 to 5 do
          Netsim.send c (Load.request ~path:"/index.html");
          match Netsim.recv c with
          | Some r -> check bool "200" true (Load.is_200 r)
          | None -> Alcotest.fail "keep-alive dropped"
        done;
        Netsim.close c)
  in
  check int "five on one connection" 5 (Server.requests_served srv)

let attack_uri = "/a/../../etc"

let test_cve_baseline_worker_crash_and_restart () =
  let srv =
    run_server_test ~variant:Server.Baseline ~vulnerable:true ~workers:1
      (fun _sched net _ ->
        (* A bystander with an open connection to the same worker. *)
        let bystander = Netsim.connect net ~port:8080 in
        Netsim.send bystander (Load.request ~path:"/index.html");
        (match Netsim.recv bystander with
        | Some r -> check bool "bystander served" true (Load.is_200 r)
        | None -> Alcotest.fail "no reply");
        (* The attack kills the worker. *)
        let evil = Netsim.connect net ~port:8080 in
        Netsim.send evil (Load.request ~path:attack_uri);
        check bool "attacker dropped" true (Netsim.recv evil = None);
        (* The bystander's connection died with the worker... *)
        Netsim.send bystander (Load.request ~path:"/index.html");
        check bool "bystander lost too" true (Netsim.recv bystander = None);
        (* ...but the master restarts the worker and service resumes. *)
        Sched.sleep 5.0e6;
        match get net 8080 "/index.html" with
        | Some r -> check bool "served after restart" true (Load.is_200 r)
        | None -> Alcotest.fail "server did not recover")
  in
  check int "one restart" 1 (Server.worker_restarts srv);
  check bool "restart latency about 1ms" true
    (match Server.restart_latencies srv with
    | [ l ] -> l > 1.0e6 && l < 2.0e7
    | _ -> false);
  check bool "at least two conns dropped" true (Server.dropped_connections srv >= 2)

let test_cve_sdrad_rewinds_connection_scoped () =
  let srv =
    run_server_test ~variant:Server.Sdrad ~vulnerable:true ~workers:1
      (fun _ net _ ->
        let bystander = Netsim.connect net ~port:8080 in
        Netsim.send bystander (Load.request ~path:"/index.html");
        (match Netsim.recv bystander with
        | Some r -> check bool "bystander served" true (Load.is_200 r)
        | None -> Alcotest.fail "no reply");
        let evil = Netsim.connect net ~port:8080 in
        Netsim.send evil (Load.request ~path:attack_uri);
        check bool "attacker connection closed" true (Netsim.recv evil = None);
        (* The bystander is completely unaffected — same worker. *)
        Netsim.send bystander (Load.request ~path:"/index.html");
        (match Netsim.recv bystander with
        | Some r -> check bool "bystander still served" true (Load.is_200 r)
        | None -> Alcotest.fail "bystander was dropped");
        Netsim.close bystander)
  in
  check int "no worker restarts" 0 (Server.worker_restarts srv);
  check int "one rewind" 1 (Server.rewinds srv);
  check int "only the attacker dropped" 1 (Server.dropped_connections srv)

let test_sdrad_normal_parsing_unaffected () =
  let srv =
    run_server_test ~variant:Server.Sdrad (fun _ net _ ->
        List.iter
          (fun (path, expect_200) ->
            match get net 8080 path with
            | Some r -> check bool path expect_200 (Load.is_200 r)
            | None -> Alcotest.fail "no reply")
          [
            ("/index.html", true);
            ("//index.html", true);
            ("/sub/../index.html", true);
            ("/big.bin", true);
            ("/nope", false);
          ])
  in
  check int "no rewinds on benign traffic" 0 (Server.rewinds srv)


let test_rewind_limit_forces_restart () =
  (* §VI mitigation: after [limit] rewinds the worker re-execs to restore
     ASLR; the attack stream costs one worker restart instead of an
     unbounded probe sequence. *)
  let space = Space.create ~size_mib:128 ()
  and sched = Sched.create () in
  let sd = Api.create space in
  let net = Netsim.create (Space.cost space) in
  let cfg =
    { Server.default_config with variant = Server.Sdrad; vulnerable = true;
      workers = 1; rewind_limit = Some 3 }
  in
  let srv = ref None in
  let _ =
    Sched.spawn sched ~name:"harness" (fun () ->
        let s = Server.start sched space ~sdrad:sd net ~fs:(mk_fs space) cfg in
        srv := Some s;
        for _ = 1 to 3 do
          let evil = Netsim.connect net ~port:8080 in
          Netsim.send evil (Load.request ~path:attack_uri);
          check bool "attacker dropped" true (Netsim.recv evil = None)
        done;
        (* The worker hit its limit and restarted; service continues. *)
        Sched.sleep 5.0e6;
        (match get net 8080 "/index.html" with
        | Some r -> check bool "served after proactive restart" true (Load.is_200 r)
        | None -> Alcotest.fail "service down");
        Server.stop s)
  in
  Sched.run sched;
  let s = Option.get !srv in
  check int "three rewinds" 3 (Server.rewinds s);
  check int "one proactive restart" 1 (Server.proactive_restarts s);
  check int "counted as worker restart" 1 (Server.worker_restarts s)


let test_connection_close_honored () =
  let _ =
    run_server_test ~variant:Server.Baseline (fun _ net _ ->
        let c = Netsim.connect net ~port:8080 in
        Netsim.send c
          "GET /index.html HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
        (match Netsim.recv c with
        | Some r ->
            check bool "200" true (Load.is_200 r);
            let has_close =
              let lower = String.lowercase_ascii r in
              let needle = "connection: close" in
              let rec find i =
                i + String.length needle <= String.length lower
                && (String.sub lower i (String.length needle) = needle
                   || find (i + 1))
              in
              find 0
            in
            check bool "advertises close" true has_close
        | None -> Alcotest.fail "no reply");
        (* The server closes after the response. *)
        Netsim.send c (Load.request ~path:"/index.html");
        check bool "closed after response" true (Netsim.recv c = None))
  in
  ()

let test_http10_defaults_to_close () =
  let _ =
    run_server_test ~variant:Server.Sdrad (fun _ net _ ->
        let c = Netsim.connect net ~port:8080 in
        Netsim.send c "GET /index.html HTTP/1.0\r\nHost: x\r\n\r\n";
        (match Netsim.recv c with
        | Some r -> check bool "200" true (Load.is_200 r)
        | None -> Alcotest.fail "no reply");
        Netsim.send c "GET /index.html HTTP/1.0\r\nHost: x\r\n\r\n";
        check bool "1.0 closes by default" true (Netsim.recv c = None))
  in
  ()

let test_http10_keepalive_optin () =
  let _ =
    run_server_test ~variant:Server.Baseline (fun _ net _ ->
        let c = Netsim.connect net ~port:8080 in
        for _ = 1 to 3 do
          Netsim.send c
            "GET /index.html HTTP/1.0\r\nHost: x\r\nConnection: keep-alive\r\n\r\n";
          match Netsim.recv c with
          | Some r -> check bool "200" true (Load.is_200 r)
          | None -> Alcotest.fail "keep-alive 1.0 dropped"
        done;
        Netsim.close c)
  in
  ()


let test_directory_autoindex () =
  let space = Space.create ~size_mib:128 () in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let fs = Fs.create space in
  Fs.add fs ~path:"/docs/a.html" ~size:10;
  Fs.add fs ~path:"/docs/b.html" ~size:10;
  let cfg = { Server.default_config with variant = Server.Baseline; workers = 1 } in
  let _ =
    Sched.spawn sched ~name:"harness" (fun () ->
        let s = Server.start sched space net ~fs cfg in
        (match get net 8080 "/docs" with
        | Some r ->
            check bool "200" true (Load.is_200 r);
            let has sub =
              let rec find i =
                i + String.length sub <= String.length r
                && (String.sub r i (String.length sub) = sub || find (i + 1))
              in
              find 0
            in
            check bool "lists a.html" true (has "a.html");
            check bool "lists b.html" true (has "b.html")
        | None -> Alcotest.fail "no reply");
        Server.stop s)
  in
  Sched.run sched

(* {1 OpenSSL client-cert case study (CVE-2022-3786 through the server)} *)

let cert_header cert = [ ("X-Client-Cert", cert) ]

let test_cert_benign_accepted () =
  let srv =
    run_server_test ~variant:Server.Sdrad ~verify_certs:true (fun _ net _ ->
        let c = Netsim.connect net ~port:8080 in
        let cert = Crypto.X509.make_cert ~cn:"good" ~altname:Crypto.X509.benign_altname in
        Netsim.send c (Load.request_with_headers ~path:"/index.html" (cert_header cert));
        (match Netsim.recv c with
        | Some r -> check bool "accepted" true (Load.is_200 r)
        | None -> Alcotest.fail "no reply");
        Netsim.close c)
  in
  check int "no rewinds" 0 (Server.rewinds srv)

let test_cert_cve_rewinds_and_service_continues () =
  let srv =
    run_server_test ~variant:Server.Sdrad ~verify_certs:true (fun _ net _ ->
        let evil = Netsim.connect net ~port:8080 in
        let cert = Crypto.X509.make_cert ~cn:"evil" ~altname:Crypto.X509.malicious_altname in
        Netsim.send evil (Load.request_with_headers ~path:"/index.html" (cert_header cert));
        check bool "evil connection closed" true (Netsim.recv evil = None);
        (* The OpenSSL domain is re-created per request; service continues. *)
        match get net 8080 "/index.html" with
        | Some r -> check bool "still serving" true (Load.is_200 r)
        | None -> Alcotest.fail "server down after cert CVE")
  in
  check int "one rewind" 1 (Server.rewinds srv);
  check int "no restarts" 0 (Server.worker_restarts srv)

let test_cert_cve_kills_unprotected_worker () =
  let srv =
    run_server_test ~variant:Server.Baseline ~verify_certs:true (fun _sched net _ ->
        let evil = Netsim.connect net ~port:8080 in
        let cert = Crypto.X509.make_cert ~cn:"evil" ~altname:Crypto.X509.malicious_altname in
        Netsim.send evil (Load.request_with_headers ~path:"/index.html" (cert_header cert));
        check bool "worker died" true (Netsim.recv evil = None);
        Sched.sleep 5.0e6;
        match get net 8080 "/index.html" with
        | Some r -> check bool "recovered via restart" true (Load.is_200 r)
        | None -> Alcotest.fail "no recovery")
  in
  check int "one worker restart" 1 (Server.worker_restarts srv)


let post net port path body =
  let c = Netsim.connect net ~port in
  Netsim.send c
    (Printf.sprintf "POST %s HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n\r\n%s"
       path (String.length body) body);
  let r = Netsim.recv c in
  Netsim.close c;
  r

let test_post_echo () =
  List.iter
    (fun variant ->
      let _ =
        run_server_test ~variant (fun _ net _ ->
            match post net 8080 "/echo" "round and round it goes" with
            | Some r ->
                check bool "200" true (Load.is_200 r);
                check bool "body echoed" true
                  (String.length r >= 24
                  && String.sub r (String.length r - 24) 24
                     = "round and round it goes" ^ String.sub r (String.length r - 1) 1
                     || String.length r > 0)
            | None -> Alcotest.fail "no reply")
      in
      ())
    [ Server.Baseline; Server.Sdrad ]

let test_post_echo_body_exact () =
  let _ =
    run_server_test ~variant:Server.Sdrad (fun _ net _ ->
        match post net 8080 "/echo" "exact body please" with
        | Some r -> (
            match String.index_opt r '\r' with
            | Some _ ->
                let marker = "\r\n\r\n" in
                let rec find i =
                  if i + 4 > String.length r then Alcotest.fail "no body separator"
                  else if String.sub r i 4 = marker then i + 4
                  else find (i + 1)
                in
                let body_start = find 0 in
                check string "echo" "exact body please"
                  (String.sub r body_start (String.length r - body_start))
            | None -> Alcotest.fail "malformed response")
        | None -> Alcotest.fail "no reply")
  in
  ()

let test_post_elsewhere_405 () =
  let _ =
    run_server_test ~variant:Server.Baseline (fun _ net _ ->
        match post net 8080 "/index.html" "data" with
        | Some r -> check bool "405" true (String.sub r 9 3 = "405")
        | None -> Alcotest.fail "no reply")
  in
  ()

let test_post_bad_content_length_400 () =
  let _ =
    run_server_test ~variant:Server.Sdrad (fun _ net _ ->
        let c = Netsim.connect net ~port:8080 in
        Netsim.send c
          "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 999\r\n\r\nshort";
        (match Netsim.recv c with
        | Some r -> check bool "400" true (String.sub r 9 3 = "400")
        | None -> Alcotest.fail "no reply");
        Netsim.close c)
  in
  ()

let test_head_no_body () =
  let _ =
    run_server_test ~variant:Server.Baseline (fun _ net _ ->
        let c = Netsim.connect net ~port:8080 in
        Netsim.send c "HEAD /index.html HTTP/1.1\r\nHost: x\r\n\r\n";
        (match Netsim.recv c with
        | Some r ->
            check bool "200" true (Load.is_200 r);
            (* Content-Length advertised, but no payload follows. *)
            check bool "no body" true
              (String.length r < 200
              && String.sub r (String.length r - 4) 4 = "\r\n\r\n")
        | None -> Alcotest.fail "no reply");
        Netsim.close c)
  in
  ()

(* {1 Load generator} *)

let test_http_load_end_to_end () =
  let space = Space.create ~size_mib:128 () in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let cfg = { Server.default_config with variant = Server.Baseline; workers = 2 } in
  let lcfg =
    { Load.default_config with connections = 10; requests_per_conn = 20 }
  in
  let results = ref (fun () -> failwith "unset") in
  let _ =
    Sched.spawn sched ~name:"harness" (fun () ->
        let s = Server.start sched space net ~fs:(mk_fs space) cfg in
        results := Load.launch sched net lcfg ~on_done:(fun () -> Server.stop s) ())
  in
  Sched.run sched;
  let r = !results () in
  check int "all ok" 200 r.Load.ok;
  check int "no failures" 0 r.Load.failures;
  check bool "took time" true (r.Load.cycles > 0.0)

let () =
  Alcotest.run "httpd"
    [
      ( "parser",
        [
          Alcotest.test_case "request line" `Quick test_parse_request_line;
          Alcotest.test_case "request line rejects" `Quick test_parse_request_line_rejects;
          Alcotest.test_case "uri normalization" `Quick test_uri_normalization;
          Alcotest.test_case "escape rejected (patched)" `Quick test_uri_escape_rejected_when_patched;
          Alcotest.test_case "underflow (vulnerable)" `Quick test_uri_underflow_when_vulnerable;
          Alcotest.test_case "headers" `Quick test_parse_headers;
        ] );
      ( "server",
        [
          Alcotest.test_case "serves files" `Quick test_server_serves_files;
          Alcotest.test_case "keep-alive" `Quick test_server_keepalive;
          Alcotest.test_case "cve baseline: crash + restart" `Quick
            test_cve_baseline_worker_crash_and_restart;
          Alcotest.test_case "cve sdrad: connection-scoped rewind" `Quick
            test_cve_sdrad_rewinds_connection_scoped;
          Alcotest.test_case "sdrad benign parsing" `Quick test_sdrad_normal_parsing_unaffected;
          Alcotest.test_case "rewind limit restart" `Quick test_rewind_limit_forces_restart;
        ] );
      ( "client-certs",
        [
          Alcotest.test_case "benign accepted" `Quick test_cert_benign_accepted;
          Alcotest.test_case "cve rewinds, service continues" `Quick
            test_cert_cve_rewinds_and_service_continues;
          Alcotest.test_case "cve kills unprotected worker" `Quick
            test_cert_cve_kills_unprotected_worker;
        ] );
      ( "methods",
        [
          Alcotest.test_case "post echo" `Quick test_post_echo;
          Alcotest.test_case "post echo exact" `Quick test_post_echo_body_exact;
          Alcotest.test_case "post elsewhere 405" `Quick test_post_elsewhere_405;
          Alcotest.test_case "post bad content-length" `Quick test_post_bad_content_length_400;
          Alcotest.test_case "head no body" `Quick test_head_no_body;
          Alcotest.test_case "connection close" `Quick test_connection_close_honored;
          Alcotest.test_case "http/1.0 closes" `Quick test_http10_defaults_to_close;
          Alcotest.test_case "http/1.0 keep-alive" `Quick test_http10_keepalive_optin;
          Alcotest.test_case "directory autoindex" `Quick test_directory_autoindex;
        ] );
      ( "load",
        [ Alcotest.test_case "end to end" `Quick test_http_load_end_to_end ] );
    ]
