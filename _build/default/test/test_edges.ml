(* Edge-case coverage across the substrates: W^X enforcement, access
   corner cases, protection-key interactions, scheduler stress, network
   corner cases, workload generators and the SDRaD API's misuse guards. *)

module Space = Vmem.Space
module Prot = Vmem.Prot
module Pkru = Vmem.Pkru
module Sched = Simkern.Sched
module Rng = Simkern.Rng
module Api = Sdrad.Api
module Types = Sdrad.Types

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool


let in_thread f =
  let sched = Sched.create () in
  let tid = Sched.spawn sched ~name:"test" f in
  Sched.run sched;
  match Sched.outcome sched tid with
  | Some Sched.Completed -> ()
  | Some (Sched.Failed e) -> raise e
  | None -> Alcotest.fail "thread did not finish"

let expect_fault ?code f =
  match f () with
  | _ -> Alcotest.fail "expected a fault"
  | exception Space.Fault fa ->
      Option.iter (fun c -> check bool "si_code" true (fa.code = c)) code

(* {1 vmem corners} *)

let test_wxorx () =
  (* A1 of the threat model: data pages are never executable. *)
  let s = Space.create ~size_mib:4 () in
  let a = Space.mmap s ~len:4096 ~prot:Prot.rw ~pkey:0 in
  check bool "rw page not executable" false (Prot.has (Space.prot_of_addr s a) Prot.exec);
  let x = Space.mmap s ~len:4096 ~prot:Prot.rx ~pkey:0 in
  check bool "text page not writable" false (Prot.has (Space.prot_of_addr s x) Prot.write);
  expect_fault ~code:Space.ACCERR (fun () -> Space.store8 s x 0x90)

let test_access_straddles_mapping_end () =
  let s = Space.create ~size_mib:4 () in
  let a = Space.mmap s ~len:4096 ~prot:Prot.rw ~pkey:0 in
  (* A 64-bit store whose first bytes are mapped but whose tail is not
     must fault and leave the mapped part untouched. *)
  expect_fault ~code:Space.MAPERR (fun () -> Space.store64 s (a + 4092) (-1));
  check int "partial write did not happen" 0 (Space.load32 s (a + 4092))

let test_blit_cross_pkey_fault () =
  in_thread (fun () ->
      let s = Space.create ~size_mib:4 () in
      let k = Option.get (Space.pkey_alloc s) in
      let src = Space.mmap s ~len:4096 ~prot:Prot.rw ~pkey:0 in
      let dst = Space.mmap s ~len:4096 ~prot:Prot.rw ~pkey:k in
      Space.wrpkru s (Pkru.allow_read Pkru.all_access ~key:k);
      (* Reading the protected region is fine, writing into it is not. *)
      Space.blit s ~src:dst ~dst:src ~len:64;
      expect_fault ~code:Space.PKUERR (fun () ->
          Space.blit s ~src ~dst ~len:64))

let test_memcmp_and_fill () =
  let s = Space.create ~size_mib:4 () in
  let a = Space.mmap s ~len:8192 ~prot:Prot.rw ~pkey:0 in
  Space.fill s ~addr:a ~len:16 'z';
  Space.fill s ~addr:(a + 100) ~len:16 'z';
  check int "equal ranges" 0 (Space.memcmp s a (a + 100) 16);
  Space.store8 s (a + 107) (Char.code 'y');
  check bool "difference detected" true (Space.memcmp s a (a + 100) 16 <> 0)

let test_mprotect_misuse () =
  let s = Space.create ~size_mib:4 () in
  let a = Space.mmap s ~len:4096 ~prot:Prot.rw ~pkey:0 in
  Alcotest.check_raises "unaligned" (Invalid_argument "mprotect: unaligned")
    (fun () -> Space.mprotect s ~addr:(a + 8) ~len:100 ~prot:Prot.read);
  Alcotest.check_raises "unmapped" (Invalid_argument "mprotect: unmapped page")
    (fun () -> Space.mprotect s ~addr:(a + 8192) ~len:4096 ~prot:Prot.read)

let test_pkey_free_then_default_access () =
  in_thread (fun () ->
      let s = Space.create ~size_mib:4 () in
      let k = Option.get (Space.pkey_alloc s) in
      let a = Space.mmap s ~len:4096 ~prot:Prot.rw ~pkey:k in
      Space.wrpkru s (Pkru.deny Pkru.all_access ~key:k);
      expect_fault (fun () -> Space.load8 s a);
      (* Rekeying the page back to the default key lifts the restriction
         regardless of the stale PKRU bits for [k]. *)
      Space.pkey_mprotect s ~addr:a ~len:4096 ~prot:Prot.rw ~pkey:0;
      check int "readable under key 0" 0 (Space.load8 s a))

let pkru_bit_prop =
  QCheck.Test.make ~name:"pkru allow/deny round-trips per key" ~count:200
    QCheck.(pair (int_range 0 15) (int_range 0 0xFFFF))
    (fun (key, seed) ->
      let v = Pkru.deny (Pkru.allow_read (seed * 7) ~key:((key + 3) mod 16)) ~key:0 in
      let allowed = Pkru.allow v ~key in
      let denied = Pkru.deny allowed ~key in
      let ro = Pkru.allow_read denied ~key in
      Pkru.can_read allowed ~key && Pkru.can_write allowed ~key
      && (not (Pkru.can_read denied ~key))
      && Pkru.can_read ro ~key
      && not (Pkru.can_write ro ~key))

(* {1 scheduler stress} *)

let test_many_threads_complete () =
  let t = Sched.create () in
  let done_count = ref 0 in
  let rng = Rng.create 9 in
  for i = 0 to 199 do
    ignore
      (Sched.spawn t
         ~name:(Printf.sprintf "s%d" i)
         (fun () ->
           for _ = 1 to 20 do
             Sched.sleep (float_of_int (1 + Rng.int rng 50))
           done;
           incr done_count))
  done;
  Sched.run t;
  check int "all 200 finished" 200 !done_count

let test_nested_spawn_chain () =
  let t = Sched.create () in
  let depth = ref 0 in
  let rec spawn_chain n () =
    depth := max !depth n;
    if n < 50 then begin
      let child = Sched.spawn (Sched.current ()) (spawn_chain (n + 1)) in
      Sched.join child
    end
  in
  let _ = Sched.spawn t (spawn_chain 1) in
  Sched.run t;
  check int "chain of 50" 50 !depth

let test_horizon_with_blocked_wakeups () =
  let t = Sched.create () in
  let m = Sched.Mutex.create () in
  let _ =
    Sched.spawn t (fun () ->
        Sched.Mutex.lock m;
        Sched.sleep 10_000.0;
        Sched.Mutex.unlock m)
  in
  let _ =
    Sched.spawn t (fun () ->
        Sched.charge 1.0;
        Sched.Mutex.with_lock m (fun () -> Sched.charge 5.0))
  in
  Sched.run t;
  check bool "waiter finished after holder" true (Sched.horizon t >= 10_005.0)

(* {1 netsim corners} *)

let test_try_recv_semantics () =
  in_thread (fun () ->
      let net = Netsim.create Simkern.Cost.default in
      let l = Netsim.listen net ~port:1 in
      let c = Netsim.connect net ~port:1 in
      let srv = Option.get (Netsim.accept l) in
      check bool "nothing yet" true (Netsim.try_recv srv = None);
      Netsim.send c "later";
      (* The message has in-flight latency: not deliverable instantly. *)
      check bool "still in flight" true (Netsim.try_recv srv = None);
      Sched.charge 1.0e6;
      check bool "delivered after time passes" true (Netsim.try_recv srv = Some "later"))

let test_latency_scales_with_size () =
  let measure size =
    let out = ref 0.0 in
    in_thread (fun () ->
        let net = Netsim.create Simkern.Cost.default in
        let l = Netsim.listen net ~port:1 in
        let c = Netsim.connect net ~port:1 in
        let srv = Option.get (Netsim.accept l) in
        let t0 = Sched.now () in
        Netsim.send c (String.make size 'x');
        ignore (Netsim.recv srv);
        out := Sched.now () -. t0);
    !out
  in
  check bool "bigger message takes longer" true (measure 100_000 > measure 100)

let test_double_close_harmless () =
  in_thread (fun () ->
      let net = Netsim.create Simkern.Cost.default in
      let _ = Netsim.listen net ~port:1 in
      let c = Netsim.connect net ~port:1 in
      Netsim.close c;
      Netsim.close c;
      check bool "closed" false (Netsim.is_open c))

(* {1 SDRaD API misuse} *)

let with_sdrad f =
  in_thread (fun () ->
      let space = Space.create ~size_mib:32 () in
      f space (Api.create space))

let test_unknown_domain_ops () =
  with_sdrad (fun _ sd ->
      Alcotest.check_raises "malloc unknown" (Types.Error Types.Unknown_domain)
        (fun () -> ignore (Api.malloc sd ~udi:42 8));
      Alcotest.check_raises "enter unknown" (Types.Error Types.Unknown_domain)
        (fun () -> Api.enter sd 42);
      Alcotest.check_raises "destroy unknown" (Types.Error Types.Unknown_domain)
        (fun () -> Api.destroy sd 42 ~heap:`Discard))

let test_data_domain_misuse () =
  with_sdrad (fun _ sd ->
      Api.init_data sd ~udi:9 ();
      Alcotest.check_raises "enter data domain" (Types.Error Types.Wrong_kind)
        (fun () -> Api.enter sd 9);
      Alcotest.check_raises "double init" (Types.Error Types.Already_initialized)
        (fun () -> Api.init_data sd ~udi:9 ());
      Alcotest.check_raises "dprotect on exec domain"
        (Types.Error Types.Unknown_domain) (fun () ->
          Api.dprotect sd ~udi:9 ~tddi:77 Prot.read);
      Api.destroy sd 9 ~heap:`Discard;
      (* After destroy the index is reusable as an execution domain. *)
      Api.run sd ~udi:9 ~on_rewind:(fun _ -> ()) (fun () ->
          Api.destroy sd 9 ~heap:`Discard))

let test_dprotect_revocation () =
  with_sdrad (fun space sd ->
      Api.init_data sd ~udi:9 ();
      let cell = Api.malloc sd ~udi:9 16 in
      Space.store_string space cell "shared";
      Api.dprotect sd ~udi:1 ~tddi:9 Prot.read;
      Api.run sd ~udi:1
        ~on_rewind:(fun _ -> Alcotest.fail "read should work")
        (fun () ->
          Api.enter sd 1;
          ignore (Space.read_string space cell 6);
          Api.exit_domain sd;
          Api.destroy sd 1 ~heap:`Discard);
      (* Revoke and verify the read now faults. *)
      Api.dprotect sd ~udi:1 ~tddi:9 Prot.none;
      let faulted =
        Api.run sd ~udi:1
          ~on_rewind:(fun f -> f.Types.cause <> Types.Stack_smash)
          (fun () ->
            Api.enter sd 1;
            ignore (Space.read_string space cell 6);
            false)
      in
      check bool "revoked access faults" true faulted)

let test_usable_size () =
  with_sdrad (fun _ sd ->
      let p = Api.malloc sd ~udi:Types.root_udi 100 in
      check bool "usable covers request" true
        (Api.usable_size sd ~udi:Types.root_udi p >= 100);
      Api.free sd ~udi:Types.root_udi p)

let test_domain_pkey_reporting () =
  with_sdrad (fun space sd ->
      Api.run sd ~udi:1
        ~on_rewind:(fun _ -> ())
        (fun () ->
          (match Api.domain_pkey sd 1 with
          | Some k ->
              check bool "pkey in range" true (k >= 1 && k <= 15);
              let p = Api.malloc sd ~udi:1 16 in
              check int "heap carries the domain key" k (Space.pkey_of_addr space p)
          | None -> Alcotest.fail "no pkey for live domain");
          Api.destroy sd 1 ~heap:`Discard);
      check (Alcotest.option int) "gone after destroy" None (Api.domain_pkey sd 1))

(* {1 workload generators} *)

let zipf_bounds_prop =
  QCheck.Test.make ~name:"zipf samples stay in range" ~count:100
    QCheck.(pair small_int (int_range 2 5_000))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let z = Workload.Zipf.create rng ~n ~theta:0.99 in
      List.for_all
        (fun _ ->
          let v = Workload.Zipf.next z in
          v >= 0 && v < n)
        (List.init 100 Fun.id))

let test_zipf_theta_effect () =
  let head_mass theta =
    let rng = Rng.create 4 in
    let z = Workload.Zipf.create rng ~n:1000 ~theta in
    let hits = ref 0 in
    for _ = 1 to 10_000 do
      if Workload.Zipf.next z < 10 then incr hits
    done;
    !hits
  in
  check bool "higher skew concentrates more mass" true
    (head_mass 0.99 > head_mass 0.5)

let test_ycsb_presets () =
  check bool "A is half reads" true (Workload.Ycsb.workload_a.Workload.Ycsb.read_fraction = 0.5);
  check bool "B is the default" true (Workload.Ycsb.workload_b = Workload.Ycsb.default_config);
  check bool "C is read-only" true (Workload.Ycsb.workload_c.Workload.Ycsb.read_fraction = 1.0)

let test_speed_native_reasonable () =
  in_thread (fun () ->
      let space = Space.create ~size_mib:32 () in
      let row =
        Workload.Speed.measure space Workload.Speed.Native ~size:4096 ~iterations:8
      in
      (* AES at ~1.25 cpb and 2.1 GHz is in the GB/s range. *)
      check bool "throughput in a plausible band" true
        (row.Workload.Speed.mb_per_sec > 200.0
        && row.Workload.Speed.mb_per_sec < 3000.0);
      check int "iterations recorded" 8 row.Workload.Speed.iterations)

let test_speed_isolated_slower () =
  in_thread (fun () ->
      let space = Space.create ~size_mib:32 () in
      let sd = Api.create space in
      let native =
        Workload.Speed.measure space Workload.Speed.Native ~size:1024 ~iterations:10
      in
      let iso =
        Workload.Speed.measure space ~sdrad:sd
          (Workload.Speed.Isolated Crypto.Evp_sdrad.Copy_in_out)
          ~size:1024 ~iterations:10
      in
      check bool "isolation costs something" true
        (iso.Workload.Speed.mb_per_sec < native.Workload.Speed.mb_per_sec))

(* {1 X.509 parsing corners} *)

let test_x509_fields () =
  with_sdrad (fun _ sd ->
      check bool "missing altname rejected" false
        (Crypto.X509.verify sd "CERT|cn=x|sig=ab");
      check bool "non-punycode altname ok" true
        (Crypto.X509.verify sd
           (Crypto.X509.make_cert ~cn:"x" ~altname:"plain.example.org"));
      check bool "short punycode ok" true
        (Crypto.X509.verify sd (Crypto.X509.make_cert ~cn:"x" ~altname:"xn--ab")))

let () =
  Alcotest.run "edges"
    [
      ( "vmem",
        [
          Alcotest.test_case "w^x" `Quick test_wxorx;
          Alcotest.test_case "straddling access" `Quick test_access_straddles_mapping_end;
          Alcotest.test_case "blit cross pkey" `Quick test_blit_cross_pkey_fault;
          Alcotest.test_case "memcmp/fill" `Quick test_memcmp_and_fill;
          Alcotest.test_case "mprotect misuse" `Quick test_mprotect_misuse;
          Alcotest.test_case "rekey to default" `Quick test_pkey_free_then_default_access;
          QCheck_alcotest.to_alcotest pkru_bit_prop;
        ] );
      ( "sched",
        [
          Alcotest.test_case "200 threads" `Quick test_many_threads_complete;
          Alcotest.test_case "nested spawn chain" `Quick test_nested_spawn_chain;
          Alcotest.test_case "horizon with wakeups" `Quick test_horizon_with_blocked_wakeups;
        ] );
      ( "netsim",
        [
          Alcotest.test_case "try_recv" `Quick test_try_recv_semantics;
          Alcotest.test_case "latency scales" `Quick test_latency_scales_with_size;
          Alcotest.test_case "double close" `Quick test_double_close_harmless;
        ] );
      ( "api-misuse",
        [
          Alcotest.test_case "unknown domain" `Quick test_unknown_domain_ops;
          Alcotest.test_case "data domain misuse" `Quick test_data_domain_misuse;
          Alcotest.test_case "dprotect revocation" `Quick test_dprotect_revocation;
          Alcotest.test_case "usable size" `Quick test_usable_size;
          Alcotest.test_case "domain pkey" `Quick test_domain_pkey_reporting;
        ] );
      ( "workload",
        [
          QCheck_alcotest.to_alcotest zipf_bounds_prop;
          Alcotest.test_case "zipf theta" `Quick test_zipf_theta_effect;
          Alcotest.test_case "ycsb presets" `Quick test_ycsb_presets;
          Alcotest.test_case "speed native" `Quick test_speed_native_reasonable;
          Alcotest.test_case "speed isolated slower" `Quick test_speed_isolated_slower;
        ] );
      ( "x509",
        [ Alcotest.test_case "field handling" `Quick test_x509_fields ] );
    ]
