(* Tests for the simulated loopback network: connection establishment,
   message ordering, blocking recv with latency accounting, close
   semantics, and waitset-based multiplexing. *)

module Sched = Simkern.Sched
module Cost = Simkern.Cost

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let run_sim f =
  let sched = Sched.create () in
  f sched;
  Sched.run sched;
  List.iter
    (fun (_, name, oc) ->
      match oc with
      | Sched.Completed -> ()
      | Sched.Failed e ->
          Alcotest.failf "thread %s failed: %s" name (Printexc.to_string e))
    (Sched.outcomes sched)

let test_echo_roundtrip () =
  run_sim (fun sched ->
      let net = Netsim.create Cost.default in
      let l = Netsim.listen net ~port:80 in
      let _ =
        Sched.spawn sched ~name:"server" (fun () ->
            let c = Option.get (Netsim.accept l) in
            match Netsim.recv c with
            | Some msg -> Netsim.send c ("echo:" ^ msg)
            | None -> Alcotest.fail "server saw close")
      in
      let _ =
        Sched.spawn sched ~name:"client" (fun () ->
            let c = Netsim.connect net ~port:80 in
            Netsim.send c "hello";
            match Netsim.recv c with
            | Some reply -> check string "echoed" "echo:hello" reply
            | None -> Alcotest.fail "no reply")
      in
      ())

let test_message_ordering () =
  run_sim (fun sched ->
      let net = Netsim.create Cost.default in
      let l = Netsim.listen net ~port:80 in
      let got = ref [] in
      let _ =
        Sched.spawn sched ~name:"server" (fun () ->
            let c = Option.get (Netsim.accept l) in
            for _ = 1 to 5 do
              match Netsim.recv c with
              | Some m -> got := m :: !got
              | None -> ()
            done)
      in
      let _ =
        Sched.spawn sched ~name:"client" (fun () ->
            let c = Netsim.connect net ~port:80 in
            for i = 1 to 5 do
              Netsim.send c (string_of_int i)
            done)
      in
      ());
  ()

let test_ordering_preserved () =
  run_sim (fun sched ->
      let net = Netsim.create Cost.default in
      let l = Netsim.listen net ~port:80 in
      let _ =
        Sched.spawn sched ~name:"server" (fun () ->
            let c = Option.get (Netsim.accept l) in
            let msgs = List.init 5 (fun _ -> Option.get (Netsim.recv c)) in
            check
              (Alcotest.list string)
              "fifo order"
              [ "1"; "2"; "3"; "4"; "5" ]
              msgs)
      in
      let _ =
        Sched.spawn sched ~name:"client" (fun () ->
            let c = Netsim.connect net ~port:80 in
            List.iter (Netsim.send c) [ "1"; "2"; "3"; "4"; "5" ])
      in
      ())

let test_latency_advances_clock () =
  run_sim (fun sched ->
      let net = Netsim.create Cost.default in
      let l = Netsim.listen net ~port:80 in
      let _ =
        Sched.spawn sched ~name:"server" (fun () ->
            let c = Option.get (Netsim.accept l) in
            let before = Sched.now () in
            (match Netsim.recv c with Some _ -> () | None -> ());
            check bool "recv advanced past message latency" true
              (Sched.now () >= before))
      in
      let _ =
        Sched.spawn sched ~name:"client" (fun () ->
            let c = Netsim.connect net ~port:80 in
            Netsim.send c (String.make 1000 'x'))
      in
      ())

let test_close_wakes_receiver () =
  run_sim (fun sched ->
      let net = Netsim.create Cost.default in
      let l = Netsim.listen net ~port:80 in
      let _ =
        Sched.spawn sched ~name:"server" (fun () ->
            let c = Option.get (Netsim.accept l) in
            check bool "recv returns None on close" true (Netsim.recv c = None))
      in
      let _ =
        Sched.spawn sched ~name:"client" (fun () ->
            let c = Netsim.connect net ~port:80 in
            Sched.sleep 5_000.0;
            Netsim.close c)
      in
      ())

let test_pending_messages_before_close () =
  run_sim (fun sched ->
      let net = Netsim.create Cost.default in
      let l = Netsim.listen net ~port:80 in
      let _ =
        Sched.spawn sched ~name:"server" (fun () ->
            let c = Option.get (Netsim.accept l) in
            Sched.sleep 100_000.0;
            (* The client has sent then closed: the data must still be
               readable before the close is reported. *)
            check bool "message first" true (Netsim.recv c = Some "last words");
            check bool "then close" true (Netsim.recv c = None))
      in
      let _ =
        Sched.spawn sched ~name:"client" (fun () ->
            let c = Netsim.connect net ~port:80 in
            Netsim.send c "last words";
            Netsim.close c)
      in
      ())

let test_waitset_multiplexes () =
  run_sim (fun sched ->
      let net = Netsim.create Cost.default in
      let l = Netsim.listen net ~port:80 in
      let served = ref 0 in
      let _ =
        Sched.spawn sched ~name:"server" (fun () ->
            let ws = Netsim.Waitset.create () in
            for _ = 1 to 3 do
              Netsim.Waitset.add ws (Option.get (Netsim.accept l))
            done;
            let finished = ref 0 in
            while !finished < 3 do
              match Netsim.Waitset.wait ws with
              | None -> finished := 3
              | Some c -> (
                  match Netsim.recv c with
                  | Some msg ->
                      incr served;
                      Netsim.send c ("ok:" ^ msg)
                  | None ->
                      Netsim.Waitset.remove ws c;
                      incr finished)
            done)
      in
      for i = 1 to 3 do
        ignore
          (Sched.spawn sched
             ~name:(Printf.sprintf "client%d" i)
             (fun () ->
               let c = Netsim.connect net ~port:80 in
               Sched.sleep (float_of_int (i * 1000));
               Netsim.send c (string_of_int i);
               (match Netsim.recv c with
               | Some r -> check string "reply" ("ok:" ^ string_of_int i) r
               | None -> Alcotest.fail "no reply");
               Netsim.close c))
      done;
      Sched.run sched;
      check int "all three served" 3 !served)

let test_send_after_close_is_noop () =
  run_sim (fun sched ->
      let net = Netsim.create Cost.default in
      let l = Netsim.listen net ~port:80 in
      let _ =
        Sched.spawn sched ~name:"server" (fun () -> ignore (Option.get (Netsim.accept l)))
      in
      let _ =
        Sched.spawn sched ~name:"client" (fun () ->
            let c = Netsim.connect net ~port:80 in
            Netsim.close c;
            Netsim.send c "into the void";
            check bool "still closed" false (Netsim.is_open c))
      in
      ())

let () =
  Alcotest.run "netsim"
    [
      ( "conn",
        [
          Alcotest.test_case "echo roundtrip" `Quick test_echo_roundtrip;
          Alcotest.test_case "ordering" `Quick test_ordering_preserved;
          Alcotest.test_case "multi message" `Quick test_message_ordering;
          Alcotest.test_case "latency" `Quick test_latency_advances_clock;
        ] );
      ( "close",
        [
          Alcotest.test_case "close wakes receiver" `Quick test_close_wakes_receiver;
          Alcotest.test_case "pending before close" `Quick test_pending_messages_before_close;
          Alcotest.test_case "send after close" `Quick test_send_after_close_is_noop;
        ] );
      ("waitset", [ Alcotest.test_case "multiplex" `Quick test_waitset_multiplexes ]);
    ]
