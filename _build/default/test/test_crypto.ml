(* Tests for the crypto substrate: AES-256 and GCM against FIPS-197 and
   NIST SP 800-38D vectors, streaming equivalence, the vmem-resident EVP
   layer, the X.509/punycode CVE-2022-3786 analogue, and the SDRaD
   OpenSSL-isolation wrappers (all three data-passing design choices). *)

module Space = Vmem.Space
module Sched = Simkern.Sched
module Api = Sdrad.Api
module Types = Sdrad.Types
module Prot = Vmem.Prot

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let hex s =
  let n = String.length s / 2 in
  String.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let to_hex s =
  String.concat ""
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.init (String.length s) (String.get s)))

let in_thread f =
  let sched = Sched.create () in
  let tid = Sched.spawn sched ~name:"test" f in
  Sched.run sched;
  match Sched.outcome sched tid with
  | Some Sched.Completed -> ()
  | Some (Sched.Failed e) -> raise e
  | None -> Alcotest.fail "thread did not finish"

(* {1 AES} *)

let test_aes_fips197 () =
  let k = Crypto.Aes.expand (hex ("000102030405060708090a0b0c0d0e0f" ^ "101112131415161718191a1b1c1d1e1f")) in
  check string "FIPS-197 C.3" "8ea2b7ca516745bfeafc49904b496089"
    (to_hex (Crypto.Aes.encrypt_block_str k (hex "00112233445566778899aabbccddeeff")))

let test_aes_rejects_bad_key () =
  Alcotest.check_raises "short key" (Invalid_argument "Aes.expand: need a 32-byte key")
    (fun () -> ignore (Crypto.Aes.expand "short"))

(* {1 GCM NIST vectors} *)

let k_zero = String.make 32 '\000'
let iv_zero = String.make 12 '\000'

let test_gcm_tc13 () =
  let c, t = Crypto.Gcm.one_shot_encrypt ~key:k_zero ~iv:iv_zero "" in
  check string "ciphertext" "" c;
  check string "tag" "530f8afbc74536b9a963b4f1c4cb738b" (to_hex t)

let test_gcm_tc14 () =
  let c, t = Crypto.Gcm.one_shot_encrypt ~key:k_zero ~iv:iv_zero (String.make 16 '\000') in
  check string "ciphertext" "cea7403d4d606b6e074ec5d3baf39d18" (to_hex c);
  check string "tag" "d0d1c8a799996bf0265b98b5d48ab919" (to_hex t)

let k15 = hex "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308"
let iv15 = hex "cafebabefacedbaddecaf888"

let p15 =
  hex
    ("d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
   ^ "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255")

let c15 =
  "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa"
  ^ "8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662898015ad"

let test_gcm_tc15 () =
  let c, t = Crypto.Gcm.one_shot_encrypt ~key:k15 ~iv:iv15 p15 in
  check string "ciphertext" c15 (to_hex c);
  check string "tag" "b094dac5d93471bdec1a502270e3cc6c" (to_hex t)

let test_gcm_tc16_with_aad () =
  let aad = hex "feedfacedeadbeeffeedfacedeadbeefabaddad2" in
  let p = String.sub p15 0 60 in
  let c, t = Crypto.Gcm.one_shot_encrypt ~key:k15 ~iv:iv15 ~aad p in
  check string "ciphertext" (String.sub c15 0 120) (to_hex c);
  check string "tag" "76fc6ece0f4e1768cddf8853bb2d551b" (to_hex t)

let test_gcm_decrypt_roundtrip () =
  let c, t = Crypto.Gcm.one_shot_encrypt ~key:k15 ~iv:iv15 "attack at dawn!" in
  (match Crypto.Gcm.one_shot_decrypt ~key:k15 ~iv:iv15 ~tag:t c with
  | Some p -> check string "plaintext" "attack at dawn!" p
  | None -> Alcotest.fail "tag failed");
  (* A flipped ciphertext bit must fail authentication. *)
  let tampered = Bytes.of_string c in
  Bytes.set tampered 3 (Char.chr (Char.code (Bytes.get tampered 3) lxor 1));
  check bool "tamper detected" true
    (Crypto.Gcm.one_shot_decrypt ~key:k15 ~iv:iv15 ~tag:t (Bytes.to_string tampered) = None)

let streaming_equivalence =
  QCheck.Test.make ~name:"chunked streaming equals one-shot" ~count:100
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 300)) (int_range 1 37))
    (fun (p, chunk) ->
      let one_c, one_t = Crypto.Gcm.one_shot_encrypt ~key:k15 ~iv:iv15 p in
      let ctx = Crypto.Gcm.init ~key:k15 ~iv:iv15 in
      let buf = Buffer.create 64 in
      let n = String.length p in
      let rec go off =
        if off < n then begin
          let len = min chunk (n - off) in
          Buffer.add_string buf (Crypto.Gcm.encrypt ctx (String.sub p off len));
          go (off + len)
        end
      in
      go 0;
      Buffer.contents buf = one_c && Crypto.Gcm.tag ctx = one_t)

let serialize_roundtrip =
  QCheck.Test.make ~name:"ctx serialize/deserialize mid-stream" ~count:50
    QCheck.(string_of_size (QCheck.Gen.int_range 1 200))
    (fun p ->
      let n = String.length p in
      let cut = n / 2 in
      let one_c, one_t = Crypto.Gcm.one_shot_encrypt ~key:k15 ~iv:iv15 p in
      let ctx = Crypto.Gcm.init ~key:k15 ~iv:iv15 in
      let c1 = Crypto.Gcm.encrypt ctx (String.sub p 0 cut) in
      let ctx' = Crypto.Gcm.deserialize (Crypto.Gcm.serialize ctx) in
      let c2 = Crypto.Gcm.encrypt ctx' (String.sub p cut (n - cut)) in
      c1 ^ c2 = one_c && Crypto.Gcm.tag ctx' = one_t)

(* {1 EVP over simulated memory} *)

let test_evp_matches_gcm () =
  in_thread (fun () ->
      let s = Space.create ~size_mib:8 () in
      let base = Space.mmap s ~len:(64 * 1024) ~prot:Prot.rw ~pkey:0 in
      let ctx = base in
      let inp = base + 4096 and out = base + 8192 and tag = base + 12288 in
      Crypto.Evp.encrypt_init s ~ctx ~key:k15 ~iv:iv15;
      Space.store_string s inp p15;
      let n1 = String.length p15 / 2 in
      let o1 = Crypto.Evp.encrypt_update s ~ctx ~out ~in_:inp ~inl:n1 in
      let o2 =
        Crypto.Evp.encrypt_update s ~ctx ~out:(out + o1) ~in_:(inp + n1)
          ~inl:(String.length p15 - n1)
      in
      Crypto.Evp.encrypt_final s ~ctx ~tag_out:tag;
      check string "ciphertext" c15 (to_hex (Space.read_string s out (o1 + o2)));
      check string "tag" "b094dac5d93471bdec1a502270e3cc6c"
        (to_hex (Space.read_string s tag 16)))

let test_evp_decrypt_verifies () =
  in_thread (fun () ->
      let s = Space.create ~size_mib:8 () in
      let base = Space.mmap s ~len:(64 * 1024) ~prot:Prot.rw ~pkey:0 in
      let ctx = base and inp = base + 4096 and out = base + 8192 and tag = base + 12288 in
      Crypto.Evp.encrypt_init s ~ctx ~key:k15 ~iv:iv15;
      Space.store_string s inp "sixteen byte msg";
      let n = Crypto.Evp.encrypt_update s ~ctx ~out ~in_:inp ~inl:16 in
      Crypto.Evp.encrypt_final s ~ctx ~tag_out:tag;
      (* Decrypt in place. *)
      let dctx = base + 20480 and plain = base + 24576 in
      Crypto.Evp.decrypt_init s ~ctx:dctx ~key:k15 ~iv:iv15;
      let m = Crypto.Evp.decrypt_update s ~ctx:dctx ~out:plain ~in_:out ~inl:n in
      check bool "tag verifies" true (Crypto.Evp.decrypt_final s ~ctx:dctx ~tag);
      check string "plaintext" "sixteen byte msg" (Space.read_string s plain m))

let test_evp_state_machine () =
  in_thread (fun () ->
      let s = Space.create ~size_mib:8 () in
      let base = Space.mmap s ~len:8192 ~prot:Prot.rw ~pkey:0 in
      Crypto.Evp.encrypt_init s ~ctx:base ~key:k15 ~iv:iv15;
      Crypto.Evp.encrypt_final s ~ctx:base ~tag_out:(base + 4096);
      (* Using a finished context is a usage error, not a silent corruption. *)
      match Crypto.Evp.encrypt_update s ~ctx:base ~out:(base + 4096) ~in_:(base + 4096) ~inl:4 with
      | _ -> Alcotest.fail "finished ctx accepted"
      | exception Invalid_argument _ -> ())

(* {1 X.509 / CVE-2022-3786 analogue} *)

let with_sdrad f =
  in_thread (fun () ->
      let space = Space.create ~size_mib:32 () in
      let sd = Api.create space in
      f space sd)

let test_x509_benign_cert () =
  with_sdrad (fun _ sd ->
      let cert = Crypto.X509.make_cert ~cn:"example.com" ~altname:Crypto.X509.benign_altname in
      check bool "accepted" true (Crypto.X509.verify sd cert))

let test_x509_garbage_rejected () =
  with_sdrad (fun _ sd ->
      check bool "rejected" false (Crypto.X509.verify sd "not a cert"))

let test_x509_cve_smashes_canary_in_root () =
  let space = Space.create ~size_mib:32 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let tid =
    Sched.spawn sched ~name:"victim" (fun () ->
        let cert =
          Crypto.X509.make_cert ~cn:"evil" ~altname:Crypto.X509.malicious_altname
        in
        ignore (Crypto.X509.verify sd cert))
  in
  Sched.run sched;
  (* Unprotected: the canary failure terminates the "process". *)
  match Sched.outcome sched tid with
  | Some (Sched.Failed Api.Stack_check_failure) -> ()
  | _ -> Alcotest.fail "expected stack-check failure to kill the thread"

let test_x509_cve_rewinds_in_domain () =
  with_sdrad (fun _ sd ->
      let cert =
        Crypto.X509.make_cert ~cn:"evil" ~altname:Crypto.X509.malicious_altname
      in
      let outcome =
        Api.run sd ~udi:7
          ~on_rewind:(fun f -> `Rewound f.Types.cause)
          (fun () ->
            Api.enter sd 7;
            let v = Crypto.X509.verify sd cert in
            Api.exit_domain sd;
            `Verified v)
      in
      check bool "stack smash caught" true (outcome = `Rewound Types.Stack_smash);
      (* And the service continues: a benign verification still works. *)
      let ok =
        Api.run sd ~udi:7
          ~on_rewind:(fun _ -> false)
          (fun () ->
            Api.enter sd 7;
            let v =
              Crypto.X509.verify sd
                (Crypto.X509.make_cert ~cn:"good" ~altname:Crypto.X509.benign_altname)
            in
            Api.exit_domain sd;
            Api.destroy sd 7 ~heap:`Discard;
            v)
      in
      check bool "subsequent verify ok" true ok)

(* {1 Evp_sdrad: the three design choices} *)

let plain_reference p =
  Crypto.Gcm.one_shot_encrypt ~key:k15 ~iv:iv15 p

let run_choice choice =
  let result = ref ("", "") in
  with_sdrad (fun space sd ->
      let iso = Crypto.Evp_sdrad.setup sd ~choice ~key:k15 ~iv:iv15 () in
      let p = "the quick brown fox jumps over the lazy dog, twice over!" in
      let n = String.length p in
      let in_, out =
        match choice with
        | Crypto.Evp_sdrad.Shared_buffers ->
            (Crypto.Evp_sdrad.data_malloc iso n, Crypto.Evp_sdrad.data_malloc iso (n + 16))
        | _ ->
            let buf = Api.malloc sd ~udi:Types.root_udi (2 * (n + 16)) in
            (buf, buf + n + 16)
      in
      Space.store_string space in_ p;
      (match Crypto.Evp_sdrad.encrypt_update iso ~out ~in_ ~inl:n with
      | Ok outl ->
          let c = Space.read_string space out outl in
          (match Crypto.Evp_sdrad.encrypt_final iso ~tag_out:0 with
          | Ok tag -> result := (c, tag)
          | Error f -> Alcotest.failf "final fault: %s" (Format.asprintf "%a" Types.pp_fault f))
      | Error f -> Alcotest.failf "update fault: %s" (Format.asprintf "%a" Types.pp_fault f));
      Crypto.Evp_sdrad.destroy iso);
  !result

let test_evp_sdrad_choices_match_reference () =
  let p = "the quick brown fox jumps over the lazy dog, twice over!" in
  let ref_c, ref_t = plain_reference p in
  List.iter
    (fun choice ->
      let c, t = run_choice choice in
      check string "ciphertext matches reference" (to_hex ref_c) (to_hex c);
      check string "tag matches reference" (to_hex ref_t) (to_hex t))
    [ Crypto.Evp_sdrad.Copy_in_out; Crypto.Evp_sdrad.Read_parent; Crypto.Evp_sdrad.Shared_buffers ]

let test_evp_sdrad_ctx_sealed () =
  with_sdrad (fun space sd ->
      let iso =
        Crypto.Evp_sdrad.setup sd ~choice:Crypto.Evp_sdrad.Copy_in_out ~key:k15 ~iv:iv15 ()
      in
      (* The context lives in an inaccessible domain: key material cannot
         be read from the root domain. We probe via the wrapper's own
         fault-injection hook address — any address inside the domain heap
         will do; take one by sabotaging a read ourselves. *)
      let probe () =
        (* Addresses in the OpenSSL domain are not exposed; recover one by
           scanning: allocate in the data domain (accessible), then try the
           page the wrapper reported via its internals is not possible, so
           instead verify that a full update still works and that the key
           never appears in accessible memory. *)
        let needle = k15 in
        let found = ref false in
        Space.iter_mapped_pages space (fun page ->
            match Space.read_string space page 4096 with
            | contents ->
                (* Only accessible pages can be read without a fault. *)
                let rec search i =
                  if i + String.length needle <= String.length contents then
                    if String.sub contents i (String.length needle) = needle then
                      found := true
                    else search (i + 1)
                in
                search 0
            | exception Space.Fault _ -> ());
        !found
      in
      check bool "raw key not readable anywhere accessible" false (probe ());
      Crypto.Evp_sdrad.destroy iso)

let test_evp_sdrad_fault_and_recover () =
  with_sdrad (fun space sd ->
      let iso =
        Crypto.Evp_sdrad.setup sd ~choice:Crypto.Evp_sdrad.Copy_in_out ~key:k15 ~iv:iv15 ()
      in
      let buf = Api.malloc sd ~udi:Types.root_udi 128 in
      Space.store_string space buf "sixteen byte msg";
      Crypto.Evp_sdrad.inject_fault_next_call iso;
      (match Crypto.Evp_sdrad.encrypt_update iso ~out:(buf + 64) ~in_:buf ~inl:16 with
      | Error f -> check int "fault in openssl domain" 14 f.Types.failed_udi
      | Ok _ -> Alcotest.fail "sabotage not caught");
      (* The paper: re-initialize the cryptographic context and continue. *)
      Crypto.Evp_sdrad.recover iso ~key:k15 ~iv:iv15;
      (match Crypto.Evp_sdrad.encrypt_update iso ~out:(buf + 64) ~in_:buf ~inl:16 with
      | Ok 16 -> ()
      | Ok n -> Alcotest.failf "unexpected outl %d" n
      | Error _ -> Alcotest.fail "recovered domain still faulting");
      Crypto.Evp_sdrad.destroy iso)


let test_evp_aad_matches_gcm () =
  in_thread (fun () ->
      let s = Space.create ~size_mib:8 () in
      let base = Space.mmap s ~len:(64 * 1024) ~prot:Prot.rw ~pkey:0 in
      let ctx = base and aad_buf = base + 2048 and inp = base + 4096 in
      let out = base + 8192 and tag = base + 12288 in
      let aad = hex "feedfacedeadbeeffeedfacedeadbeefabaddad2" in
      let p = String.sub p15 0 60 in
      Crypto.Evp.encrypt_init s ~ctx ~key:k15 ~iv:iv15;
      Space.store_string s aad_buf aad;
      Crypto.Evp.aad_update s ~ctx ~in_:aad_buf ~inl:(String.length aad);
      Space.store_string s inp p;
      let n = Crypto.Evp.encrypt_update s ~ctx ~out ~in_:inp ~inl:(String.length p) in
      Crypto.Evp.encrypt_final s ~ctx ~tag_out:tag;
      (* Must match NIST test case 16 exactly. *)
      check string "ciphertext" (String.sub c15 0 120) (to_hex (Space.read_string s out n));
      check string "tag" "76fc6ece0f4e1768cddf8853bb2d551b" (to_hex (Space.read_string s tag 16)))

let () =
  Alcotest.run "crypto"
    [
      ( "aes",
        [
          Alcotest.test_case "fips-197 vector" `Quick test_aes_fips197;
          Alcotest.test_case "bad key" `Quick test_aes_rejects_bad_key;
        ] );
      ( "gcm",
        [
          Alcotest.test_case "nist tc13" `Quick test_gcm_tc13;
          Alcotest.test_case "nist tc14" `Quick test_gcm_tc14;
          Alcotest.test_case "nist tc15" `Quick test_gcm_tc15;
          Alcotest.test_case "nist tc16 (aad)" `Quick test_gcm_tc16_with_aad;
          Alcotest.test_case "decrypt + tamper" `Quick test_gcm_decrypt_roundtrip;
          QCheck_alcotest.to_alcotest streaming_equivalence;
          QCheck_alcotest.to_alcotest serialize_roundtrip;
        ] );
      ( "evp",
        [
          Alcotest.test_case "matches gcm" `Quick test_evp_matches_gcm;
          Alcotest.test_case "decrypt verifies" `Quick test_evp_decrypt_verifies;
          Alcotest.test_case "state machine" `Quick test_evp_state_machine;
          Alcotest.test_case "aad (nist tc16)" `Quick test_evp_aad_matches_gcm;
        ] );
      ( "x509",
        [
          Alcotest.test_case "benign cert" `Quick test_x509_benign_cert;
          Alcotest.test_case "garbage rejected" `Quick test_x509_garbage_rejected;
          Alcotest.test_case "cve kills unprotected" `Quick test_x509_cve_smashes_canary_in_root;
          Alcotest.test_case "cve rewinds in domain" `Quick test_x509_cve_rewinds_in_domain;
        ] );
      ( "evp_sdrad",
        [
          Alcotest.test_case "choices match reference" `Quick
            test_evp_sdrad_choices_match_reference;
          Alcotest.test_case "key sealed" `Quick test_evp_sdrad_ctx_sealed;
          Alcotest.test_case "fault and recover" `Quick test_evp_sdrad_fault_and_recover;
        ] );
    ]
