test/test_tlsf.mli:
