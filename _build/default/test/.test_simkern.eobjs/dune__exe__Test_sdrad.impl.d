test/test_sdrad.ml: Alcotest Array Char List Printf QCheck QCheck_alcotest Sdrad Simkern Vmem
