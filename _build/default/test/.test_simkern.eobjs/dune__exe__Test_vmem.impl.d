test/test_vmem.ml: Alcotest Bytes List Option QCheck QCheck_alcotest Simkern String Vmem
