test/test_kvcache.ml: Alcotest Array Hashtbl Kvcache List Netsim Nvx Option Printf QCheck QCheck_alcotest Sdrad Simkern String Vmem Workload
