test/test_chaos.ml: Alcotest Bytes Httpd Kvcache List Netsim Option Printf QCheck QCheck_alcotest Sdrad Simkern String Vmem Workload
