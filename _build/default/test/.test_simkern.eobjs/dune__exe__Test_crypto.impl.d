test/test_crypto.ml: Alcotest Buffer Bytes Char Crypto Format List Printf QCheck QCheck_alcotest Sdrad Simkern String Vmem
