test/test_sdrad_ext.ml: Alcotest Array Bytes List Netsim Option Printf QCheck QCheck_alcotest Sdrad Simkern String Vmem
