test/test_render.ml: Alcotest Array QCheck QCheck_alcotest Render Sdrad Simkern String Vmem
