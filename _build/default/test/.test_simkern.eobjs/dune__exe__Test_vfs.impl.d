test/test_vfs.ml: Alcotest Char Hashtbl List Option Printf QCheck QCheck_alcotest Simkern String Vfs Vmem
