test/test_httpd.ml: Alcotest Crypto Httpd List Netsim Option Printf Sdrad Simkern String Vmem Workload
