test/test_simkern.ml: Alcotest Array Buffer Fun List Printf QCheck QCheck_alcotest Queue Simkern
