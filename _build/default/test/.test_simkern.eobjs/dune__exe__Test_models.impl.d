test/test_models.ml: Alcotest Kvcache List Netsim Option Printf QCheck QCheck_alcotest Simkern String Vmem
