test/test_sdrad_ext.mli:
