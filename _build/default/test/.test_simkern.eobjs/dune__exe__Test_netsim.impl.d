test/test_netsim.ml: Alcotest List Netsim Option Printexc Printf Simkern String
