test/test_tlsf.ml: Alcotest List Printf QCheck QCheck_alcotest String Tlsf Vmem
