test/test_fuzz.ml: Alcotest Bytes Char Crypto Httpd Kvcache List QCheck QCheck_alcotest Render Sdrad Simkern String Vfs Vmem
