test/test_sdrad.mli:
