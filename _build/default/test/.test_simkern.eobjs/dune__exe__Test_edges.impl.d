test/test_edges.ml: Alcotest Char Crypto Fun List Netsim Option Printf QCheck QCheck_alcotest Sdrad Simkern String Vmem Workload
