test/test_checkpoint.ml: Alcotest Checkpoint Float List QCheck QCheck_alcotest Simkern Stats String Vmem
