test/test_kvcache.mli:
