(* Whole-system chaos tests: long mixed runs where benign clients (text
   and binary protocol) interleave with attackers firing the CVE
   payloads. The availability invariants of the paper must hold at every
   scale and interleaving: the SDRaD server never goes down, exactly the
   attacked events rewind, benign traffic never fails, and shared state
   passes its integrity walk. *)

module Space = Vmem.Space
module Sched = Simkern.Sched
module Rng = Simkern.Rng
module Api = Sdrad.Api
module Server = Kvcache.Server
module Proto = Kvcache.Proto
module Bin = Kvcache.Binproto

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

type outcome = {
  rewinds : int;
  crashed : bool;
  db_errors : int;
  benign_failures : int;
  benign_ops : int;
  attacks : int;
  final_count : int;
}

(* One full simulation: [benign] clients doing random gets/sets/deletes in
   a random protocol, [attackers] firing lying SETs at random moments. *)
let run_kv_chaos ~seed ~benign ~attackers ~ops_per_client =
  let space = Space.create ~size_mib:192 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let cfg =
    { Server.default_config with variant = Server.Sdrad; vulnerable = true;
      workers = 3 }
  in
  let benign_failures = ref 0 and benign_ops = ref 0 and attacks = ref 0 in
  let srv = ref None in
  let _ =
    Sched.spawn sched ~name:"chaos" (fun () ->
        let s = Server.start sched space ~sdrad:sd net cfg in
        srv := Some s;
        let tids = ref [] in
        for i = 0 to benign - 1 do
          tids :=
            Sched.spawn sched
              ~name:(Printf.sprintf "good%d" i)
              (fun () ->
                let rng = Rng.create (seed + (100 * i)) in
                let c = Netsim.connect net ~port:11211 in
                for _ = 1 to ops_per_client do
                  Sched.sleep (float_of_int (Rng.int rng 5_000));
                  let key = Printf.sprintf "k%d" (Rng.int rng 40) in
                  let binary = Rng.bool rng in
                  let req =
                    match Rng.int rng 3 with
                    | 0 ->
                        if binary then Bin.req_get key else Proto.fmt_get key
                    | 1 ->
                        let value = Bytes.to_string (Rng.bytes rng (1 + Rng.int rng 700)) in
                        if binary then Bin.req_set ~key ~flags:0 ~value
                        else Proto.fmt_set ~key ~flags:0 ~value
                    | _ ->
                        if binary then Bin.req_delete key else Proto.fmt_delete key
                  in
                  Netsim.send c req;
                  incr benign_ops;
                  match Netsim.recv c with
                  | None -> incr benign_failures
                  | Some r -> (
                      let reply =
                        if binary then Bin.parse_reply r else Proto.parse_reply r
                      in
                      match reply with
                      | Proto.Failed _ -> incr benign_failures
                      | _ -> ())
                done;
                Netsim.close c)
            :: !tids
        done;
        for i = 0 to attackers - 1 do
          tids :=
            Sched.spawn sched
              ~name:(Printf.sprintf "evil%d" i)
              (fun () ->
                let rng = Rng.create (seed + 7_777 + i) in
                for _ = 1 to 3 do
                  Sched.sleep (float_of_int (1_000 + Rng.int rng 200_000));
                  let evil = Netsim.connect net ~port:11211 in
                  let payload = String.make (400 + Rng.int rng 400) 'X' in
                  let attack =
                    if Rng.bool rng then
                      Proto.fmt_set_lying ~key:"pwn" ~flags:0 ~declared:(-1)
                        ~value:payload
                    else
                      Bin.req_set_lying ~key:"pwn" ~flags:0 ~body_len:0xFFFFFFFF
                        ~value:payload
                  in
                  Netsim.send evil attack;
                  incr attacks;
                  (* The server must close the connection, not answer. *)
                  (match Netsim.recv evil with
                  | None -> ()
                  | Some _ -> incr benign_failures);
                  Netsim.close evil
                done)
            :: !tids
        done;
        List.iter Sched.join !tids;
        Server.stop s)
  in
  Sched.run sched;
  let s = Option.get !srv in
  {
    rewinds = Server.rewinds s;
    crashed = Server.crashed s;
    db_errors = List.length (Server.db_check s);
    benign_failures = !benign_failures;
    benign_ops = !benign_ops;
    attacks = !attacks;
    final_count = Kvcache.Store.count (Server.store s);
  }

let test_kv_chaos_invariants () =
  let o = run_kv_chaos ~seed:11 ~benign:6 ~attackers:3 ~ops_per_client:60 in
  check bool "server alive" false o.crashed;
  check int "every attack rewound, nothing else" o.attacks o.rewinds;
  check int "benign traffic unharmed" 0 o.benign_failures;
  check int "database integrity" 0 o.db_errors;
  check int "all benign ops issued" (6 * 60) o.benign_ops;
  check bool "attacks actually ran" true (o.attacks = 9)

let test_kv_chaos_deterministic () =
  let a = run_kv_chaos ~seed:23 ~benign:4 ~attackers:2 ~ops_per_client:40 in
  let b = run_kv_chaos ~seed:23 ~benign:4 ~attackers:2 ~ops_per_client:40 in
  check bool "identical outcomes" true (a = b)

let kv_chaos_prop =
  QCheck.Test.make ~name:"chaos invariants hold across seeds" ~count:6
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let o = run_kv_chaos ~seed ~benign:4 ~attackers:2 ~ops_per_client:30 in
      (not o.crashed) && o.rewinds = o.attacks && o.benign_failures = 0
      && o.db_errors = 0)

(* The web server under the same treatment, with the rewind-limit policy
   armed: attacks cause rewinds and occasional proactive restarts, but
   every benign request eventually succeeds (clients reconnect). *)
let test_web_chaos_with_rewind_limit () =
  let space = Space.create ~size_mib:192 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let fs = Httpd.Fs.create space in
  Httpd.Fs.add fs ~path:"/index.html" ~size:2048;
  let cfg =
    { Httpd.Server.default_config with variant = Httpd.Server.Sdrad;
      vulnerable = true; workers = 2; rewind_limit = Some 3 }
  in
  let ok = ref 0 and attacks = ref 0 in
  let srv = ref None in
  let _ =
    Sched.spawn sched ~name:"chaos" (fun () ->
        let s = Httpd.Server.start sched space ~sdrad:sd net ~fs cfg in
        srv := Some s;
        let tids = ref [] in
        for i = 0 to 3 do
          tids :=
            Sched.spawn sched ~name:(Printf.sprintf "good%d" i) (fun () ->
                let rng = Rng.create (31 + i) in
                for _ = 1 to 40 do
                  Sched.sleep (float_of_int (Rng.int rng 20_000));
                  (* Reconnect per request: survives worker re-execs. *)
                  let c = Netsim.connect net ~port:8080 in
                  Netsim.send c (Workload.Http_load.request ~path:"/index.html");
                  (match Netsim.recv c with
                  | Some r when Workload.Http_load.is_200 r -> incr ok
                  | Some _ | None -> ());
                  Netsim.close c
                done)
            :: !tids
        done;
        tids :=
          Sched.spawn sched ~name:"evil" (fun () ->
              let rng = Rng.create 999 in
              for _ = 1 to 8 do
                Sched.sleep (float_of_int (50_000 + Rng.int rng 400_000));
                let evil = Netsim.connect net ~port:8080 in
                Netsim.send evil (Workload.Http_load.request ~path:"/a/../../etc");
                incr attacks;
                ignore (Netsim.recv evil);
                Netsim.close evil
              done)
          :: !tids;
        List.iter Sched.join !tids;
        Httpd.Server.stop s)
  in
  Sched.run sched;
  let s = Option.get !srv in
  check int "all attacks rewound" !attacks (Httpd.Server.rewinds s);
  check bool "rewind limit produced restarts" true
    (Httpd.Server.proactive_restarts s >= 2);
  (* A benign request can race a proactive restart (its connection dies
     with the worker); the vast majority must succeed. *)
  check bool "benign traffic overwhelmingly served" true (!ok >= 150)

let () =
  Alcotest.run "chaos"
    [
      ( "kvcache",
        [
          Alcotest.test_case "invariants" `Slow test_kv_chaos_invariants;
          Alcotest.test_case "deterministic" `Slow test_kv_chaos_deterministic;
          QCheck_alcotest.to_alcotest kv_chaos_prop;
        ] );
      ( "httpd",
        [ Alcotest.test_case "rewind-limit chaos" `Slow test_web_chaos_with_rewind_limit ] );
    ]
