(* Tests for the simulated filesystem: mkfs geometry, file and directory
   operations, indirect-block files, block recycling, error handling and
   a random-operations property checked against a model plus the
   consistency walker. *)

module Space = Vmem.Space
module Sched = Simkern.Sched

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let in_thread f =
  let sched = Sched.create () in
  let tid = Sched.spawn sched ~name:"test" f in
  Sched.run sched;
  match Sched.outcome sched tid with
  | Some Sched.Completed -> ()
  | Some (Sched.Failed e) -> raise e
  | None -> Alcotest.fail "thread did not finish"

let mkfs ?(blocks = 512) () =
  let space = Space.create ~size_mib:32 () in
  (space, Vfs.format space ~blocks ())

let assert_healthy fs =
  match Vfs.check fs with
  | [] -> ()
  | errs -> Alcotest.fail (String.concat "; " errs)

let test_format_geometry () =
  in_thread (fun () ->
      let _, fs = mkfs () in
      check int "total" 512 (Vfs.total_blocks fs);
      check bool "metadata reserved" true (Vfs.free_blocks fs < 512);
      check int "only the root inode" 1 (Vfs.inode_count fs);
      check bool "root is a dir" true (Vfs.is_dir fs "/");
      check (Alcotest.list string) "root empty" [] (Vfs.list_dir fs "/");
      assert_healthy fs)

let test_create_read_roundtrip () =
  in_thread (fun () ->
      let _, fs = mkfs () in
      Vfs.create fs ~path:"/hello.txt" ~data:"hello, filesystem";
      check bool "exists" true (Vfs.exists fs "/hello.txt");
      check (Alcotest.option int) "size" (Some 17) (Vfs.file_size fs "/hello.txt");
      check string "content" "hello, filesystem" (Vfs.read_all fs "/hello.txt");
      check string "ranged read" "filesystem" (Vfs.read fs ~path:"/hello.txt" ~off:7 ~len:100);
      assert_healthy fs)

let test_multiblock_file () =
  in_thread (fun () ->
      let _, fs = mkfs () in
      (* Spans several direct blocks with a distinctive pattern. *)
      let data = String.init 20_000 (fun i -> Char.chr (i * 7 mod 256)) in
      Vfs.create fs ~path:"/blob" ~data;
      check string "whole file" data (Vfs.read_all fs "/blob");
      check string "cross-block range" (String.sub data 4090 12)
        (Vfs.read fs ~path:"/blob" ~off:4090 ~len:12);
      assert_healthy fs)

let test_indirect_file () =
  in_thread (fun () ->
      let _, fs = mkfs ~blocks:300 () in
      (* > 10 blocks forces the single-indirect path. *)
      let data = String.init (64 * 1024) (fun i -> Char.chr (i mod 251)) in
      Vfs.create fs ~path:"/big" ~data;
      check int "size" (64 * 1024) (Option.get (Vfs.file_size fs "/big"));
      check string "content" data (Vfs.read_all fs "/big");
      assert_healthy fs;
      (* Deleting it returns every block including the indirect one. *)
      let free_before = Vfs.free_blocks fs in
      Vfs.unlink fs "/big";
      (* 16 data blocks + 1 indirect block + the root directory shrinking
         back to zero entries (its block is freed too). *)
      check int "blocks returned" (free_before + 18) (Vfs.free_blocks fs);
      assert_healthy fs)

let test_file_too_large_rejected () =
  in_thread (fun () ->
      let space = Space.create ~size_mib:32 () in
      let fs = Vfs.format space ~blocks:1024 () in
      match Vfs.create fs ~path:"/huge" ~data:(String.make (Vfs.max_file_size + 1) 'x') with
      | () -> Alcotest.fail "oversized file accepted"
      | exception Vfs.Fs_error _ -> ())

let test_directories () =
  in_thread (fun () ->
      let _, fs = mkfs () in
      Vfs.mkdir fs "/www";
      Vfs.mkdir fs "/www/static";
      Vfs.create fs ~path:"/www/static/app.js" ~data:"console.log(1)";
      Vfs.create fs ~path:"/www/index.html" ~data:"<html/>";
      check bool "nested lookup" true (Vfs.exists fs "/www/static/app.js");
      check (Alcotest.list string) "listing" [ "static"; "index.html" ]
        (Vfs.list_dir fs "/www");
      check string "nested read" "console.log(1)" (Vfs.read_all fs "/www/static/app.js");
      check bool "file is not a dir" false (Vfs.is_dir fs "/www/index.html");
      assert_healthy fs)

let test_overwrite_replaces () =
  in_thread (fun () ->
      let _, fs = mkfs () in
      Vfs.create fs ~path:"/f" ~data:(String.make 10_000 'a');
      let free_mid = Vfs.free_blocks fs in
      Vfs.create fs ~path:"/f" ~data:"tiny";
      check string "new content" "tiny" (Vfs.read_all fs "/f");
      check bool "old blocks freed" true (Vfs.free_blocks fs > free_mid);
      check int "one file inode + root" 2 (Vfs.inode_count fs);
      assert_healthy fs)

let test_unlink_and_recycle () =
  in_thread (fun () ->
      let _, fs = mkfs ~blocks:64 () in
      (* Fill-delete cycles must not leak blocks. *)
      for i = 1 to 20 do
        let path = Printf.sprintf "/cycle%d" (i mod 3) in
        Vfs.create fs ~path ~data:(String.make 9_000 'x');
        Vfs.unlink fs path
      done;
      assert_healthy fs;
      check int "only root remains" 1 (Vfs.inode_count fs))

let test_error_cases () =
  in_thread (fun () ->
      let _, fs = mkfs () in
      Vfs.mkdir fs "/d";
      Vfs.create fs ~path:"/d/f" ~data:"x";
      let expect_err f =
        match f () with
        | _ -> Alcotest.fail "expected Fs_error"
        | exception Vfs.Fs_error _ -> ()
      in
      expect_err (fun () -> Vfs.read_all fs "/missing");
      expect_err (fun () -> Vfs.read_all fs "/d");
      expect_err (fun () -> Vfs.unlink fs "/d");
      expect_err (fun () -> Vfs.mkdir fs "/d");
      expect_err (fun () -> Vfs.create fs ~path:"/nodir/f" ~data:"x");
      expect_err (fun () -> Vfs.create fs ~path:"/d" ~data:"x");
      expect_err (fun () -> Vfs.list_dir fs "/d/f");
      expect_err (fun () -> ignore (Vfs.read fs ~path:"/" ~off:0 ~len:1));
      assert_healthy fs)

let test_disk_full () =
  in_thread (fun () ->
      let _, fs = mkfs ~blocks:16 () in
      match
        for i = 0 to 63 do
          Vfs.create fs ~path:(Printf.sprintf "/f%d" i) ~data:(String.make 4096 'x')
        done
      with
      | () -> Alcotest.fail "disk never filled"
      | exception Vfs.Fs_error _ -> ())

let test_read_into_simulated_buffer () =
  in_thread (fun () ->
      let space, fs = mkfs () in
      Vfs.create fs ~path:"/payload" ~data:"sendfile me please";
      let dst = Space.mmap space ~len:4096 ~prot:Vmem.Prot.rw ~pkey:0 in
      let n = Vfs.read_into fs ~path:"/payload" ~off:9 ~len:100 ~dst in
      check int "bytes" 9 n;
      check string "copied" "me please" (Space.read_string space dst 9))


let test_rename () =
  in_thread (fun () ->
      let _, fs = mkfs () in
      Vfs.mkdir fs "/a";
      Vfs.mkdir fs "/b";
      Vfs.create fs ~path:"/a/f" ~data:"moving data";
      (* Same-directory rename. *)
      Vfs.rename fs ~old_path:"/a/f" ~new_path:"/a/g";
      check bool "old gone" false (Vfs.exists fs "/a/f");
      check string "renamed" "moving data" (Vfs.read_all fs "/a/g");
      (* Cross-directory move. *)
      Vfs.rename fs ~old_path:"/a/g" ~new_path:"/b/h";
      check bool "moved out" false (Vfs.exists fs "/a/g");
      check string "moved in" "moving data" (Vfs.read_all fs "/b/h");
      (* Replace an existing file. *)
      Vfs.create fs ~path:"/b/victim" ~data:(String.make 9000 'v');
      Vfs.rename fs ~old_path:"/b/h" ~new_path:"/b/victim";
      check string "replaced" "moving data" (Vfs.read_all fs "/b/victim");
      (* Move a whole directory. *)
      Vfs.create fs ~path:"/a/inner" ~data:"deep";
      Vfs.rename fs ~old_path:"/a" ~new_path:"/b/a2";
      check string "subtree follows" "deep" (Vfs.read_all fs "/b/a2/inner");
      assert_healthy fs)

let test_rename_errors () =
  in_thread (fun () ->
      let _, fs = mkfs () in
      Vfs.mkdir fs "/d";
      Vfs.create fs ~path:"/f" ~data:"x";
      let expect_err f =
        match f () with
        | _ -> Alcotest.fail "expected Fs_error"
        | exception Vfs.Fs_error _ -> ()
      in
      expect_err (fun () -> Vfs.rename fs ~old_path:"/missing" ~new_path:"/y");
      expect_err (fun () -> Vfs.rename fs ~old_path:"/f" ~new_path:"/d");
      expect_err (fun () -> Vfs.rename fs ~old_path:"/d" ~new_path:"/d/inside");
      assert_healthy fs)

let random_fs_prop =
  QCheck.Test.make ~name:"random create/overwrite/unlink matches model" ~count:25
    QCheck.(list (pair (int_range 0 6) (int_range 0 9000)))
    (fun ops ->
      let ok = ref true in
      in_thread (fun () ->
          let _, fs = mkfs ~blocks:2048 () in
          let model : (string, string) Hashtbl.t = Hashtbl.create 8 in
          List.iter
            (fun (slot, size) ->
              let path = Printf.sprintf "/file%d" slot in
              if size mod 3 = 0 && Hashtbl.mem model path then begin
                Vfs.unlink fs path;
                Hashtbl.remove model path
              end
              else begin
                let data = String.init size (fun i -> Char.chr ((i + size) mod 256)) in
                Vfs.create fs ~path ~data;
                Hashtbl.replace model path data
              end;
              if Vfs.check fs <> [] then ok := false)
            ops;
          Hashtbl.iter
            (fun path data -> if Vfs.read_all fs path <> data then ok := false)
            model;
          let names = List.sort compare (Vfs.list_dir fs "/") in
          let expected =
            List.sort compare (Hashtbl.fold (fun k _ acc -> String.sub k 1 (String.length k - 1) :: acc) model [])
          in
          if names <> expected then ok := false);
      !ok)

let () =
  Alcotest.run "vfs"
    [
      ( "files",
        [
          Alcotest.test_case "format geometry" `Quick test_format_geometry;
          Alcotest.test_case "create/read" `Quick test_create_read_roundtrip;
          Alcotest.test_case "multi-block" `Quick test_multiblock_file;
          Alcotest.test_case "indirect blocks" `Quick test_indirect_file;
          Alcotest.test_case "too large" `Quick test_file_too_large_rejected;
          Alcotest.test_case "overwrite" `Quick test_overwrite_replaces;
          Alcotest.test_case "read_into" `Quick test_read_into_simulated_buffer;
        ] );
      ( "tree",
        [
          Alcotest.test_case "directories" `Quick test_directories;
          Alcotest.test_case "unlink/recycle" `Quick test_unlink_and_recycle;
          Alcotest.test_case "errors" `Quick test_error_cases;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "rename errors" `Quick test_rename_errors;
          Alcotest.test_case "disk full" `Quick test_disk_full;
          QCheck_alcotest.to_alcotest random_fs_prop;
        ] );
    ]
