(* Tests for the simulated address space: mapping lifecycle, guard pages,
   load/store round trips, protection bits, protection-key enforcement
   against per-thread PKRU values, RSS accounting. *)

module Space = Vmem.Space
module Prot = Vmem.Prot
module Pkru = Vmem.Pkru
module Sched = Simkern.Sched

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let mk () = Space.create ~size_mib:8 ()

(* Run a function inside a single simulated thread and propagate failure. *)
let in_thread f =
  let t = Sched.create () in
  let tid = Sched.spawn t ~name:"test" f in
  Sched.run t;
  match Sched.outcome t tid with
  | Some Sched.Completed -> ()
  | Some (Sched.Failed e) -> raise e
  | None -> Alcotest.fail "thread did not finish"

let expect_fault ?code ?access f =
  match f () with
  | _ -> Alcotest.fail "expected a memory fault"
  | exception Space.Fault fa ->
      Option.iter (fun c -> check bool "si_code" true (fa.code = c)) code;
      Option.iter (fun a -> check bool "access" true (fa.access = a)) access

(* {1 Mapping} *)

let test_mmap_basic () =
  let s = mk () in
  let a = Space.mmap s ~len:10_000 ~prot:Prot.rw ~pkey:0 in
  check bool "page aligned" true (a land 0xFFF = 0);
  check (Alcotest.option int) "rounded to pages" (Some 12288) (Space.alloc_len s a);
  check bool "mapped" true (Space.is_mapped s a);
  Space.munmap s a;
  check bool "unmapped" false (Space.is_mapped s a)

let test_mmap_zeroes_memory () =
  let s = mk () in
  let a = Space.mmap s ~len:4096 ~prot:Prot.rw ~pkey:0 in
  Space.store64 s a 0xdeadbeef;
  Space.munmap s a;
  let b = Space.mmap s ~len:4096 ~prot:Prot.rw ~pkey:0 in
  check int "fresh mapping reads zero" 0 (Space.load64 s b)

let test_null_page_faults () =
  let s = mk () in
  expect_fault ~code:Space.MAPERR (fun () -> Space.load8 s 0);
  expect_fault ~code:Space.MAPERR (fun () -> Space.load64 s 8)

let test_guard_page_before_mapping () =
  let s = mk () in
  let a = Space.mmap s ~len:4096 ~prot:Prot.rw ~pkey:0 in
  (* The page immediately below every mapping is a guard: underflows fault. *)
  expect_fault ~code:Space.MAPERR ~access:Space.Write (fun () ->
      Space.store8 s (a - 1) 0xFF)

let test_oob_after_mapping_faults () =
  let s = mk () in
  let a = Space.mmap s ~len:4096 ~prot:Prot.rw ~pkey:0 in
  expect_fault ~access:Space.Write (fun () -> Space.store8 s (a + 4096) 1)

let test_exhaustion () =
  let s = Space.create ~size_mib:1 () in
  Alcotest.check_raises "address space exhausted"
    (Failure "Space.mmap: address space exhausted") (fun () ->
      ignore (Space.mmap s ~len:(2 * 1024 * 1024) ~prot:Prot.rw ~pkey:0))

let test_munmap_reuse () =
  let s = Space.create ~size_mib:1 () in
  (* Map and unmap repeatedly: the free list must coalesce or we run out. *)
  for _ = 1 to 100 do
    let a = Space.mmap s ~len:(256 * 1024) ~prot:Prot.rw ~pkey:0 in
    let b = Space.mmap s ~len:(256 * 1024) ~prot:Prot.rw ~pkey:0 in
    Space.munmap s a;
    Space.munmap s b
  done;
  check int "all recycled" 0 (Space.mapped_bytes s)

(* {1 Loads and stores} *)

let test_roundtrip_widths () =
  let s = mk () in
  let a = Space.mmap s ~len:4096 ~prot:Prot.rw ~pkey:0 in
  Space.store8 s a 0xAB;
  check int "u8" 0xAB (Space.load8 s a);
  Space.store16 s (a + 8) 0xBEEF;
  check int "u16" 0xBEEF (Space.load16 s (a + 8));
  Space.store32 s (a + 16) 0xCAFEBABE;
  check int "u32" 0xCAFEBABE (Space.load32 s (a + 16));
  Space.store64 s (a + 24) 0x123456789ABCDEF;
  check int "u64" 0x123456789ABCDEF (Space.load64 s (a + 24))

let test_bytes_roundtrip () =
  let s = mk () in
  let a = Space.mmap s ~len:8192 ~prot:Prot.rw ~pkey:0 in
  let payload = Bytes.of_string "hello, simulated world" in
  Space.store_bytes s (a + 100) payload;
  check Alcotest.string "bytes" "hello, simulated world"
    (Space.read_string s (a + 100) (Bytes.length payload))

let test_blit_within_space () =
  let s = mk () in
  let a = Space.mmap s ~len:8192 ~prot:Prot.rw ~pkey:0 in
  Space.store_string s a "abcdef";
  Space.blit s ~src:a ~dst:(a + 4096) ~len:6;
  check Alcotest.string "copied" "abcdef" (Space.read_string s (a + 4096) 6)

let test_page_crossing_access () =
  let s = mk () in
  let a = Space.mmap s ~len:8192 ~prot:Prot.rw ~pkey:0 in
  let addr = a + 4092 in
  Space.store64 s addr 0x1122334455667788;
  check int "crossing load" 0x1122334455667788 (Space.load64 s addr)

let test_memchr () =
  let s = mk () in
  let a = Space.mmap s ~len:4096 ~prot:Prot.rw ~pkey:0 in
  Space.store_string s a "GET /index.html\r\n";
  check (Alcotest.option int) "found" (Some (a + 15))
    (Space.memchr s ~addr:a ~len:17 '\r');
  check (Alcotest.option int) "absent" None (Space.memchr s ~addr:a ~len:10 'Z')

let roundtrip_prop =
  QCheck.Test.make ~name:"store/load roundtrip at random offsets" ~count:200
    QCheck.(pair (int_range 0 4000) (string_of_size (QCheck.Gen.int_range 1 64)))
    (fun (off, payload) ->
      let s = mk () in
      let a = Space.mmap s ~len:8192 ~prot:Prot.rw ~pkey:0 in
      Space.store_string s (a + off) payload;
      Space.read_string s (a + off) (String.length payload) = payload)

(* {1 Protection bits} *)

let test_readonly_page () =
  let s = mk () in
  let a = Space.mmap s ~len:4096 ~prot:Prot.read ~pkey:0 in
  ignore (Space.load8 s a);
  expect_fault ~code:Space.ACCERR ~access:Space.Write (fun () ->
      Space.store8 s a 1)

let test_mprotect_changes_rights () =
  let s = mk () in
  let a = Space.mmap s ~len:4096 ~prot:Prot.rw ~pkey:0 in
  Space.store8 s a 7;
  Space.mprotect s ~addr:a ~len:4096 ~prot:Prot.read;
  expect_fault ~code:Space.ACCERR (fun () -> Space.store8 s a 8);
  Space.mprotect s ~addr:a ~len:4096 ~prot:Prot.rw;
  Space.store8 s a 9;
  check int "writable again" 9 (Space.load8 s a)

(* {1 Protection keys} *)

let test_pkey_alloc_limit () =
  let s = mk () in
  let keys = List.init 15 (fun _ -> Space.pkey_alloc s) in
  check bool "15 keys available" true (List.for_all Option.is_some keys);
  check (Alcotest.option int) "16th fails" None (Space.pkey_alloc s);
  Space.pkey_free s 3;
  check (Alcotest.option int) "freed key reusable" (Some 3) (Space.pkey_alloc s)

let test_pkey_enforcement () =
  in_thread (fun () ->
      let s = mk () in
      let key = Option.get (Space.pkey_alloc s) in
      let a = Space.mmap s ~len:4096 ~prot:Prot.rw ~pkey:key in
      (* Default PKRU allows everything. *)
      Space.store8 s a 1;
      (* Deny the key entirely: both accesses fault with PKUERR. *)
      Space.wrpkru s (Pkru.deny Pkru.all_access ~key);
      expect_fault ~code:Space.PKUERR ~access:Space.Read (fun () ->
          Space.load8 s a);
      expect_fault ~code:Space.PKUERR ~access:Space.Write (fun () ->
          Space.store8 s a 2);
      (* Read-only (WD): loads pass, stores fault. *)
      Space.wrpkru s (Pkru.allow_read Pkru.all_access ~key);
      check int "read allowed" 1 (Space.load8 s a);
      expect_fault ~code:Space.PKUERR ~access:Space.Write (fun () ->
          Space.store8 s a 2);
      (* Full access restored. *)
      Space.wrpkru s (Pkru.allow Pkru.all_access ~key);
      Space.store8 s a 2;
      check int "write allowed" 2 (Space.load8 s a))

let test_pkru_is_per_thread () =
  let s = mk () in
  let sched = Sched.create () in
  let key = Option.get (Space.pkey_alloc s) in
  let a = Space.mmap s ~len:4096 ~prot:Prot.rw ~pkey:key in
  let t1_faulted = ref false and t2_ok = ref false in
  let t1 =
    Sched.spawn sched ~name:"restricted" (fun () ->
        Space.wrpkru s (Pkru.deny Pkru.all_access ~key);
        Sched.yield ();
        match Space.store8 s a 1 with
        | () -> ()
        | exception Space.Fault _ -> t1_faulted := true)
  in
  let t2 =
    Sched.spawn sched ~name:"unrestricted" (fun () ->
        Sched.charge 5.0;
        Space.store8 s a 2;
        t2_ok := true)
  in
  Sched.run sched;
  ignore (t1, t2);
  check bool "restricted thread faulted" true !t1_faulted;
  check bool "unrestricted thread wrote" true !t2_ok

let test_pkey_mprotect_rekeys () =
  in_thread (fun () ->
      let s = mk () in
      let k1 = Option.get (Space.pkey_alloc s) in
      let k2 = Option.get (Space.pkey_alloc s) in
      let a = Space.mmap s ~len:4096 ~prot:Prot.rw ~pkey:k1 in
      check int "initial key" k1 (Space.pkey_of_addr s a);
      Space.pkey_mprotect s ~addr:a ~len:4096 ~prot:Prot.rw ~pkey:k2;
      check int "rekeyed" k2 (Space.pkey_of_addr s a);
      Space.wrpkru s (Pkru.deny Pkru.all_access ~key:k2);
      expect_fault ~code:Space.PKUERR (fun () -> Space.load8 s a))

let test_fault_reports_tid () =
  let s = mk () in
  let sched = Sched.create () in
  let seen_tid = ref (-2) in
  let t1 =
    Sched.spawn sched ~name:"faulter" (fun () ->
        match Space.load8 s 0 with
        | _ -> ()
        | exception Space.Fault { tid; _ } -> seen_tid := tid)
  in
  Sched.run sched;
  check int "fault carries offending tid" t1 !seen_tid

(* {1 Accounting} *)

let test_rss_counts_touched_pages () =
  let s = mk () in
  let a = Space.mmap s ~len:(16 * 4096) ~prot:Prot.rw ~pkey:0 in
  check int "nothing resident yet" 0 (Space.rss_bytes s);
  Space.store8 s a 1;
  Space.store8 s (a + (4 * 4096)) 1;
  check int "two pages resident" (2 * 4096) (Space.rss_bytes s);
  Space.munmap s a;
  check int "rss drops at unmap" 0 (Space.rss_bytes s);
  check int "high watermark kept" (2 * 4096) (Space.max_rss_bytes s)

let test_fault_count () =
  let s = mk () in
  (try ignore (Space.load8 s 0) with Space.Fault _ -> ());
  (try ignore (Space.load8 s 0) with Space.Fault _ -> ());
  check int "two faults" 2 (Space.fault_count s)

let () =
  Alcotest.run "vmem"
    [
      ( "mapping",
        [
          Alcotest.test_case "mmap basic" `Quick test_mmap_basic;
          Alcotest.test_case "mmap zeroes" `Quick test_mmap_zeroes_memory;
          Alcotest.test_case "null page" `Quick test_null_page_faults;
          Alcotest.test_case "guard page" `Quick test_guard_page_before_mapping;
          Alcotest.test_case "oob after mapping" `Quick test_oob_after_mapping_faults;
          Alcotest.test_case "exhaustion" `Quick test_exhaustion;
          Alcotest.test_case "munmap reuse" `Quick test_munmap_reuse;
        ] );
      ( "access",
        [
          Alcotest.test_case "width roundtrips" `Quick test_roundtrip_widths;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "blit" `Quick test_blit_within_space;
          Alcotest.test_case "page crossing" `Quick test_page_crossing_access;
          Alcotest.test_case "memchr" `Quick test_memchr;
          QCheck_alcotest.to_alcotest roundtrip_prop;
        ] );
      ( "prot",
        [
          Alcotest.test_case "readonly page" `Quick test_readonly_page;
          Alcotest.test_case "mprotect" `Quick test_mprotect_changes_rights;
        ] );
      ( "pkeys",
        [
          Alcotest.test_case "alloc limit (15)" `Quick test_pkey_alloc_limit;
          Alcotest.test_case "pkru enforcement" `Quick test_pkey_enforcement;
          Alcotest.test_case "pkru per thread" `Quick test_pkru_is_per_thread;
          Alcotest.test_case "pkey_mprotect" `Quick test_pkey_mprotect_rekeys;
          Alcotest.test_case "fault tid" `Quick test_fault_reports_tid;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "rss" `Quick test_rss_counts_touched_pages;
          Alcotest.test_case "fault count" `Quick test_fault_count;
        ] );
    ]
