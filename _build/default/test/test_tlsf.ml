(* Tests for the TLSF allocator: alignment, splitting, coalescing,
   good-fit behaviour, exhaustion, sub-heap merging, and a property test
   driving random malloc/free sequences with full integrity checks. *)

module Space = Vmem.Space
module Prot = Vmem.Prot

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let mk ?(region = 256 * 1024) () =
  let s = Space.create ~size_mib:16 () in
  let t = Tlsf.create s ~name:"test" in
  let a = Space.mmap s ~len:region ~prot:Prot.rw ~pkey:0 in
  Tlsf.add_region t ~addr:a ~len:region;
  (s, t)

let assert_healthy t =
  match Tlsf.check t with
  | [] -> ()
  | errs -> Alcotest.fail (String.concat "; " errs)

let test_malloc_basic () =
  let _, t = mk () in
  let p = Tlsf.malloc t 100 in
  check bool "aligned" true (p land 7 = 0);
  check bool "usable >= requested" true (Tlsf.usable_size t p >= 100);
  check int "one live block" 1 (Tlsf.used_blocks t);
  Tlsf.free t p;
  check int "no live blocks" 0 (Tlsf.used_blocks t);
  assert_healthy t

let test_malloc_distinct_regions () =
  let _, t = mk () in
  let ps = List.init 50 (fun _ -> Tlsf.malloc t 64) in
  (* No two payloads may overlap. *)
  let sorted = List.sort compare ps in
  let rec no_overlap = function
    | a :: (b :: _ as rest) ->
        check bool "disjoint" true (a + 64 <= b);
        no_overlap rest
    | _ -> ()
  in
  no_overlap sorted;
  assert_healthy t

let test_contents_survive_other_ops () =
  let s, t = mk () in
  let p = Tlsf.malloc t 32 in
  Space.store_string s p "persistent data!";
  let others = List.init 20 (fun i -> Tlsf.malloc t (16 + (i * 8))) in
  List.iteri (fun i q -> if i mod 2 = 0 then Tlsf.free t q) others;
  check Alcotest.string "contents intact" "persistent data!"
    (Space.read_string s p 16);
  assert_healthy t

let test_free_coalesces () =
  let _, t = mk ~region:(64 * 1024) () in
  (* Fill the region with many small blocks, free them all, then a single
     allocation of almost the whole region must succeed again. *)
  let ps = List.init 100 (fun _ -> Tlsf.malloc t 128) in
  List.iter (Tlsf.free t) ps;
  assert_healthy t;
  let big = Tlsf.malloc t (60 * 1024) in
  check bool "coalesced into one big block" true (big > 0)

let test_out_of_memory () =
  let _, t = mk ~region:4096 () in
  Alcotest.check_raises "oom" Tlsf.Out_of_memory (fun () ->
      ignore (Tlsf.malloc t 8192));
  check (Alcotest.option int) "malloc_opt is None" None (Tlsf.malloc_opt t 8192)

let test_double_free_detected () =
  let _, t = mk () in
  let p = Tlsf.malloc t 64 in
  Tlsf.free t p;
  match Tlsf.free t p with
  | () -> Alcotest.fail "double free not detected"
  | exception Tlsf.Heap_corrupted _ -> ()

let test_realloc_preserves_data () =
  let s, t = mk () in
  let p = Tlsf.malloc t 16 in
  Space.store_string s p "0123456789abcdef";
  let q = Tlsf.realloc t p 4096 in
  check Alcotest.string "grown block keeps data" "0123456789abcdef"
    (Space.read_string s q 16);
  assert_healthy t

let test_multiple_regions () =
  let s = Space.create ~size_mib:16 () in
  let t = Tlsf.create s ~name:"multi" in
  let r1 = Space.mmap s ~len:8192 ~prot:Prot.rw ~pkey:0 in
  let r2 = Space.mmap s ~len:8192 ~prot:Prot.rw ~pkey:0 in
  Tlsf.add_region t ~addr:r1 ~len:8192;
  Tlsf.add_region t ~addr:r2 ~len:8192;
  (* A request larger than one region's free block must come from the other. *)
  let p1 = Tlsf.malloc t 7000 in
  let p2 = Tlsf.malloc t 7000 in
  check bool "both satisfied" true (p1 > 0 && p2 > 0);
  check int "regions tracked" 2 (List.length (Tlsf.regions t));
  assert_healthy t

let test_merge_absorbs_child () =
  let s = Space.create ~size_mib:16 () in
  let parent = Tlsf.create s ~name:"parent" in
  let child = Tlsf.create s ~name:"child" in
  let rp = Space.mmap s ~len:8192 ~prot:Prot.rw ~pkey:0 in
  let rc = Space.mmap s ~len:8192 ~prot:Prot.rw ~pkey:0 in
  Tlsf.add_region parent ~addr:rp ~len:8192;
  Tlsf.add_region child ~addr:rc ~len:8192;
  let live = Tlsf.malloc child 64 in
  Space.store_string s live "survives merge!!";
  Tlsf.merge parent ~from:child;
  check int "child emptied" 0 (Tlsf.total_bytes child);
  check int "parent owns both regions" 2 (List.length (Tlsf.regions parent));
  (* The child's live allocation is now owned (and freeable) via parent. *)
  check Alcotest.string "live data intact" "survives merge!!"
    (Space.read_string s live 16);
  Tlsf.free parent live;
  assert_healthy parent;
  (* And the child's free space is allocatable from the parent. *)
  let p = Tlsf.malloc parent 7000 in
  let q = Tlsf.malloc parent 7000 in
  check bool "both regions allocatable" true (p > 0 && q > 0)

let test_good_fit_prefers_close_class () =
  let _, t = mk () in
  (* Allocating many same-size blocks after freeing them should reuse the
     freed space rather than grow usage (good-fit behaviour). *)
  let ps = List.init 64 (fun _ -> Tlsf.malloc t 100) in
  let high = Tlsf.used_bytes t in
  List.iter (Tlsf.free t) ps;
  let ps2 = List.init 64 (fun _ -> Tlsf.malloc t 100) in
  check int "usage identical on reuse" high (Tlsf.used_bytes t);
  List.iter (Tlsf.free t) ps2;
  assert_healthy t

let test_iter_blocks_covers_region () =
  let _, t = mk ~region:8192 () in
  let p = Tlsf.malloc t 64 in
  let total = ref 0 and count = ref 0 in
  Tlsf.iter_blocks t (fun ~addr:_ ~size ~free:_ ->
      total := !total + size + Tlsf.block_overhead;
      incr count);
  check int "blocks tile the region" 8192 !total;
  check bool "at least two blocks (split)" true (!count >= 2);
  Tlsf.free t p


let test_realloc_in_place_growth () =
  let s, t = mk ~region:8192 () in
  let p = Tlsf.malloc t 64 in
  Space.store_string s p "growing block...";
  (* The rest of the region is one free block directly after [p], so the
     growth must happen in place. *)
  let q = Tlsf.realloc t p 4096 in
  check int "same address" p q;
  check bool "grown" true (Tlsf.usable_size t q >= 4096);
  check Alcotest.string "contents kept" "growing block..." (Space.read_string s q 16);
  assert_healthy t

let test_realloc_moves_when_blocked () =
  let s, t = mk () in
  let p = Tlsf.malloc t 64 in
  let blocker = Tlsf.malloc t 64 in
  Space.store_string s p "must be copied!!";
  let q = Tlsf.realloc t p 4096 in
  check bool "moved" true (q <> p);
  check Alcotest.string "contents copied" "must be copied!!" (Space.read_string s q 16);
  Tlsf.free t blocker;
  Tlsf.free t q;
  assert_healthy t

let test_realloc_shrink_returns_tail () =
  let _, t = mk ~region:8192 () in
  let p = Tlsf.malloc t 4000 in
  let blocker = Tlsf.malloc t 64 in
  check int "shrink keeps the address" p (Tlsf.realloc t p 100);
  check bool "tail returned to the heap" true (Tlsf.usable_size t p < 4000);
  (* The reclaimed tail is allocatable again. *)
  let q = Tlsf.malloc t 3000 in
  check bool "fits in the reclaimed space" true (q > p && q < blocker);
  assert_healthy t

let realloc_prop =
  QCheck.Test.make ~name:"realloc preserves prefix and heap health" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 1 12) (int_range 1 3000))
    (fun sizes ->
      let s, t = mk ~region:(256 * 1024) () in
      let p = ref (Tlsf.malloc t 16) in
      Space.store_string s !p "0123456789abcdef";
      let ok = ref true in
      List.iter
        (fun size ->
          (* Interleave a disturbance allocation to vary adjacency. *)
          let d = Tlsf.malloc t (size mod 97 + 16) in
          p := Tlsf.realloc t !p size;
          if size >= 16 && Space.read_string s !p 16 <> "0123456789abcdef" then
            ok := false;
          Tlsf.free t d;
          if Tlsf.check t <> [] then ok := false)
        (List.filter (fun n -> n >= 16) sizes);
      !ok)

(* Property: any sequence of mallocs and frees keeps the heap healthy,
   all payloads stay disjoint, and contents written to a block survive
   until it is freed. *)
let random_ops_prop =
  QCheck.Test.make ~name:"random malloc/free keeps heap consistent" ~count:60
    QCheck.(list (pair bool (int_range 1 2000)))
    (fun ops ->
      let s, t = mk ~region:(128 * 1024) () in
      let live = ref [] in
      let ok = ref true in
      let tag = ref 0 in
      List.iter
        (fun (is_alloc, size) ->
          if is_alloc || !live = [] then begin
            match Tlsf.malloc_opt t size with
            | Some p ->
                incr tag;
                let marker = Printf.sprintf "%08d" (!tag mod 100000000) in
                Space.store_string s p marker;
                live := (p, marker) :: !live
            | None -> ()
          end
          else begin
            match !live with
            | (p, marker) :: rest ->
                if Space.read_string s p 8 <> marker then ok := false;
                Tlsf.free t p;
                live := rest
            | [] -> ()
          end;
          if Tlsf.check t <> [] then ok := false)
        ops;
      (* Verify all remaining contents then drain. *)
      List.iter
        (fun (p, marker) ->
          if Space.read_string s p 8 <> marker then ok := false;
          Tlsf.free t p)
        !live;
      !ok && Tlsf.check t = [] && Tlsf.used_blocks t = 0)

let () =
  Alcotest.run "tlsf"
    [
      ( "alloc",
        [
          Alcotest.test_case "malloc basic" `Quick test_malloc_basic;
          Alcotest.test_case "distinct payloads" `Quick test_malloc_distinct_regions;
          Alcotest.test_case "contents survive" `Quick test_contents_survive_other_ops;
          Alcotest.test_case "coalescing" `Quick test_free_coalesces;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory;
          Alcotest.test_case "double free" `Quick test_double_free_detected;
          Alcotest.test_case "realloc" `Quick test_realloc_preserves_data;
          Alcotest.test_case "realloc in place" `Quick test_realloc_in_place_growth;
          Alcotest.test_case "realloc moves" `Quick test_realloc_moves_when_blocked;
          Alcotest.test_case "realloc shrink" `Quick test_realloc_shrink_returns_tail;
          QCheck_alcotest.to_alcotest realloc_prop;
          Alcotest.test_case "good fit reuse" `Quick test_good_fit_prefers_close_class;
        ] );
      ( "regions",
        [
          Alcotest.test_case "multiple regions" `Quick test_multiple_regions;
          Alcotest.test_case "merge absorbs child" `Quick test_merge_absorbs_child;
          Alcotest.test_case "iter blocks" `Quick test_iter_blocks_covers_region;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest random_ops_prop ]);
    ]
