(* Tests for the SDRaD core: domain life cycle (Figure 1), isolation
   guarantees (R3), rewind semantics (R1/R2), persistent and transient
   patterns, deep nesting (Figure 2), data domains and dprotect,
   multithreading (§III-F), and resource accounting. *)

module Space = Vmem.Space
module Prot = Vmem.Prot
module Sched = Simkern.Sched
module Api = Sdrad.Api
module Types = Sdrad.Types

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* Run [f] in one simulated thread over a fresh space + SDRaD instance. *)
let with_sdrad ?(size_mib = 32) ?stack_reuse f =
  let space = Space.create ~size_mib () in
  let sd = Api.create ?stack_reuse space in
  let sched = Sched.create () in
  let tid = Sched.spawn sched ~name:"main" (fun () -> f space sd) in
  Sched.run sched;
  match Sched.outcome sched tid with
  | Some Sched.Completed -> ()
  | Some (Sched.Failed e) -> raise e
  | None -> Alcotest.fail "main thread did not finish"

let d1 = 1
let d2 = 2


(* {1 Life cycle} *)

let test_lifecycle_normal_exit () =
  with_sdrad (fun space sd ->
      let result =
        Api.run sd ~udi:d1
          ~on_rewind:(fun _ -> Alcotest.fail "unexpected rewind")
          (fun () ->
            let p = Api.malloc sd ~udi:d1 64 in
            Space.store_string space p "argument";
            check int "still in root" Types.root_udi (Api.current sd);
            Api.enter sd d1;
            check int "inside domain" d1 (Api.current sd);
            let v = Space.read_string space p 8 in
            Api.exit_domain sd;
            check int "back in root" Types.root_udi (Api.current sd);
            Api.free sd ~udi:d1 p;
            Api.destroy sd d1 ~heap:`Discard;
            v)
      in
      check string "value out" "argument" result)

let test_run_auto_deinits () =
  with_sdrad (fun _ sd ->
      Api.run sd ~udi:d1 ~on_rewind:(fun _ -> ()) (fun () -> ());
      (* The domain was auto-deinitialized, so it is re-runnable. *)
      Api.run sd ~udi:d1 ~on_rewind:(fun _ -> ()) (fun () -> ());
      check bool "dormant counts as not initialized" false
        (Api.is_initialized sd d1))

let test_double_init_rejected () =
  with_sdrad (fun _ sd ->
      Api.run sd ~udi:d1
        ~on_rewind:(fun _ -> ())
        (fun () ->
          Alcotest.check_raises "second init of same udi"
            (Types.Error Types.Already_initialized) (fun () ->
              Api.run sd ~udi:d1 ~on_rewind:(fun _ -> ()) (fun () -> ()));
          Api.destroy sd d1 ~heap:`Discard))

let test_exit_from_root_rejected () =
  with_sdrad (fun _ sd ->
      Alcotest.check_raises "exit at root" (Types.Error Types.Not_entered)
        (fun () -> Api.exit_domain sd))

let test_enter_requires_child () =
  with_sdrad (fun _ sd ->
      Api.run sd ~udi:d1
        ~on_rewind:(fun _ -> ())
        (fun () ->
          Api.run sd ~udi:d2
            ~on_rewind:(fun _ -> ())
            (fun () ->
              (* d2 is a sibling of d1 (both children of root): entering d2
                 from inside d1 must be rejected. *)
              Api.enter sd d1;
              Alcotest.check_raises "sibling is not a child"
                (Types.Error Types.Not_a_child) (fun () -> Api.enter sd d2);
              Api.exit_domain sd;
              Api.destroy sd d2 ~heap:`Discard);
          Api.destroy sd d1 ~heap:`Discard))

let test_destroy_entered_rejected () =
  with_sdrad (fun _ sd ->
      Api.run sd ~udi:d1
        ~on_rewind:(fun _ -> ())
        (fun () ->
          Api.enter sd d1;
          Alcotest.check_raises "destroy while entered"
            (Types.Error Types.Domain_entered) (fun () ->
              Api.destroy sd d1 ~heap:`Discard);
          Api.exit_domain sd;
          Api.destroy sd d1 ~heap:`Discard))

(* {1 Isolation (R3)} *)

let test_nested_cannot_write_root () =
  with_sdrad (fun space sd ->
      let root_obj = Api.malloc sd ~udi:Types.root_udi 64 in
      Space.store_string space root_obj "root data";
      let fault =
        Api.run sd ~udi:d1
          ~on_rewind:(fun f -> Some f)
          (fun () ->
            Api.enter sd d1;
            (* Reading root memory is allowed (global data, §IV-C)... *)
            let v = Space.read_string space root_obj 9 in
            check string "read root ok" "root data" v;
            (* ...but writing it must fault with a PKU violation. *)
            Space.store8 space root_obj (Char.code 'X');
            Alcotest.fail "write to root did not fault")
      in
      (match fault with
      | Some { Types.failed_udi; cause = Types.Segv { code; _ }; _ } ->
          check int "failing domain" d1 failed_udi;
          check bool "pku violation" true (code = Space.PKUERR)
      | _ -> Alcotest.fail "expected a PKU fault");
      check string "root data intact" "root data"
        (Space.read_string space root_obj 9))

let test_parent_accesses_accessible_child () =
  with_sdrad (fun space sd ->
      Api.run sd ~udi:d1
        ~on_rewind:(fun _ -> ())
        (fun () ->
          let p = Api.malloc sd ~udi:d1 32 in
          Space.store_string space p "from parent";
          check string "parent reads child heap" "from parent"
            (Space.read_string space p 11);
          Api.destroy sd d1 ~heap:`Discard))

let test_inaccessible_child_sealed () =
  with_sdrad (fun space sd ->
      let opts = { Types.default_options with access = Types.Inaccessible } in
      Api.run sd ~udi:d1 ~opts
        ~on_rewind:(fun _ -> ())
        (fun () ->
          (* The parent cannot even allocate in an inaccessible child. *)
          Alcotest.check_raises "malloc in inaccessible child"
            (Types.Error Types.Not_accessible) (fun () ->
              ignore (Api.malloc sd ~udi:d1 32));
          (* Memory the child allocates is sealed from the parent. *)
          Api.enter sd d1;
          let secret = Api.malloc sd ~udi:d1 32 in
          Space.store_string space secret "sealed secret";
          Api.exit_domain sd;
          (match Space.load8 space secret with
          | _ -> Alcotest.fail "parent read sealed child memory"
          | exception Space.Fault { code; _ } ->
              check bool "pkuerr" true (code = Space.PKUERR));
          Api.destroy sd d1 ~heap:`Discard))

let test_sibling_isolation () =
  with_sdrad (fun space sd ->
      Api.run sd ~udi:d1
        ~on_rewind:(fun _ -> ())
        (fun () ->
          Api.run sd ~udi:d2
            ~on_rewind:(fun _ -> ())
            (fun () ->
              let in_d2 = Api.malloc sd ~udi:d2 32 in
              Space.store_string space in_d2 "d2 data";
              Api.enter sd d1;
              (* From inside d1, d2's memory (a sibling) is unreachable. *)
              (match Space.load8 space in_d2 with
              | _ -> Alcotest.fail "sibling memory readable"
              | exception Space.Fault { code; _ } ->
                  check bool "pkuerr" true (code = Space.PKUERR));
              Api.exit_domain sd;
              Api.destroy sd d2 ~heap:`Discard);
          Api.destroy sd d1 ~heap:`Discard))

let test_parent_readable_option () =
  with_sdrad (fun space sd ->
      Api.run sd ~udi:d1
        ~on_rewind:(fun _ -> ())
        (fun () ->
          let parent_obj = Api.malloc sd ~udi:d1 32 in
          Space.store_string space parent_obj "parent heap";
          Api.enter sd d1;
          let opts =
            { Types.default_options with parent_readable = true }
          in
          Api.run sd ~udi:d2 ~opts
            ~on_rewind:(fun _ -> ())
            (fun () ->
              Api.enter sd d2;
              (* Child may read (not write) the direct parent's memory. *)
              check string "reads parent" "parent heap"
                (Space.read_string space parent_obj 11);
              (match Space.store8 space parent_obj 0 with
              | () -> Alcotest.fail "child wrote parent memory"
              | exception Space.Fault { code; _ } ->
                  check bool "pkuerr" true (code = Space.PKUERR));
              Api.exit_domain sd;
              Api.destroy sd d2 ~heap:`Discard);
          Api.exit_domain sd;
          Api.destroy sd d1 ~heap:`Discard))

(* {1 Rewind and discard (R1/R2)} *)

let test_fault_triggers_rewind () =
  with_sdrad (fun space sd ->
      let outcome =
        Api.run sd ~udi:d1
          ~on_rewind:(fun f -> `Rewound f)
          (fun () ->
            Api.enter sd d1;
            let p = Api.malloc sd ~udi:d1 16 in
            (* Overflow way past the sub-heap: crosses into foreign pages. *)
            for i = 0 to 1_000_000 do
              Space.store8 space (p + i) 0xAA
            done;
            `Completed)
      in
      (match outcome with
      | `Rewound { Types.failed_udi; _ } -> check int "udi" d1 failed_udi
      | `Completed -> Alcotest.fail "overflow not caught");
      (* After the rewind the domain is gone and the thread is in root. *)
      check int "back in root" Types.root_udi (Api.current sd);
      check bool "domain discarded" false (Api.is_initialized sd d1);
      check int "one rewind recorded" 1 (Api.rewind_count sd))

let test_service_continues_after_rewind () =
  with_sdrad (fun space sd ->
      (* An event loop that hits a fault on event 3 keeps serving events —
         requirement R1. *)
      let served = ref 0 in
      for i = 1 to 10 do
        Api.run sd ~udi:d1
          ~on_rewind:(fun _ -> ())
          (fun () ->
            Api.enter sd d1;
            let p = Api.malloc sd ~udi:d1 64 in
            Space.store_string space p (Printf.sprintf "event %d" i);
            if i = 3 then ignore (Space.load8 space 0);
            incr served;
            Api.exit_domain sd;
            Api.destroy sd d1 ~heap:`Discard)
      done;
      check int "nine events served" 9 !served;
      check int "one rewind" 1 (Api.rewind_count sd))

let test_abort_rewinds () =
  with_sdrad (fun _ sd ->
      let outcome =
        Api.run sd ~udi:d1
          ~on_rewind:(fun f -> Some f.Types.cause)
          (fun () ->
            Api.enter sd d1;
            Api.abort sd "CFI violation")
      in
      match outcome with
      | Some (Types.Explicit msg) -> check string "cause" "CFI violation" msg
      | _ -> Alcotest.fail "expected explicit cause")

let test_canary_detects_smash () =
  with_sdrad (fun space sd ->
      let outcome =
        Api.run sd ~udi:d1
          ~on_rewind:(fun f -> Some f.Types.cause)
          (fun () ->
            Api.enter sd d1;
            Api.with_stack_frame sd 32 (fun buf ->
                (* Write one byte past the buffer: smashes the canary but
                   stays inside the domain stack, so only the canary can
                   catch it. *)
                for i = 0 to 32 do
                  Space.store8 space (buf + i) 0x41
                done);
            None)
      in
      match outcome with
      | Some Types.Stack_smash -> ()
      | _ -> Alcotest.fail "canary did not fire")

let test_stack_frame_normal_use () =
  with_sdrad (fun space sd ->
      Api.run sd ~udi:d1
        ~on_rewind:(fun _ -> Alcotest.fail "no rewind expected")
        (fun () ->
          Api.enter sd d1;
          let v =
            Api.with_stack_frame sd 32 (fun buf ->
                Space.store_string space buf "in-frame";
                Space.read_string space buf 8)
          in
          check string "frame works" "in-frame" v;
          Api.exit_domain sd;
          Api.destroy sd d1 ~heap:`Discard))

let test_stack_exhaustion_rewinds () =
  with_sdrad (fun _ sd ->
      let outcome =
        Api.run sd ~udi:d1
          ~opts:{ Types.default_options with stack_size = 8192 }
          ~on_rewind:(fun f -> Some f.Types.cause)
          (fun () ->
            Api.enter sd d1;
            let rec recurse () =
              ignore (Api.alloca sd 1024);
              recurse ()
            in
            recurse ())
      in
      match outcome with
      | Some (Types.Segv { code; _ }) ->
          check bool "hit the guard page" true (code = Space.MAPERR)
      | _ -> Alcotest.fail "stack exhaustion not converted to rewind")

let test_fault_in_root_kills_thread () =
  let space = Space.create ~size_mib:16 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let tid =
    Sched.spawn sched ~name:"victim" (fun () ->
        ignore (Api.current sd);
        (* Fault outside any nested domain: unrecoverable. *)
        ignore (Space.load8 space 0))
  in
  Sched.run sched;
  match Sched.outcome sched tid with
  | Some (Sched.Failed (Space.Fault _)) -> ()
  | _ -> Alcotest.fail "root fault should terminate the thread"

let test_grandparent_rewind () =
  with_sdrad (fun space sd ->
      (* Figure 2: a transient outer domain with a nested inner domain that
         rewinds to the outer's recovery point (the root). *)
      let trace = ref [] in
      let outcome =
        Api.run sd ~udi:d1
          ~on_rewind:(fun f -> `Outer_rewind f.Types.failed_udi)
          (fun () ->
            Api.enter sd d1;
            let inner_opts =
              { Types.default_options with rewind = Types.Grandparent }
            in
            let r =
              Api.run sd ~udi:d2 ~opts:inner_opts
                ~on_rewind:(fun _ ->
                  trace := "inner handler" :: !trace;
                  `Inner_rewind)
                (fun () ->
                  Api.enter sd d2;
                  ignore (Space.load8 space 0);
                  `Inner_ok)
            in
            ignore r;
            trace := "after inner" :: !trace;
            Api.exit_domain sd;
            `Outer_ok)
      in
      (* The rewind must skip both the inner handler and the rest of the
         outer body, landing at the outer (grandparent) recovery point. *)
      check bool "outer handler ran with inner's udi" true
        (outcome = `Outer_rewind d2);
      check (Alcotest.list string) "no intermediate code ran" [] !trace;
      check bool "outer domain discarded" false (Api.is_initialized sd d1);
      check bool "inner domain discarded" false (Api.is_initialized sd d2))

let test_rewind_frees_pkeys () =
  with_sdrad (fun space sd ->
      (* Protection keys of discarded domains must be reusable: run more
         rewinds than there are keys. *)
      for _ = 1 to 40 do
        Api.run sd ~udi:d1
          ~on_rewind:(fun _ -> ())
          (fun () ->
            Api.enter sd d1;
            ignore (Space.load8 space 0))
      done;
      check int "forty rewinds" 40 (Api.rewind_count sd))

let test_out_of_pkeys () =
  with_sdrad (fun _ sd ->
      (* Monitor + root consume two keys; 13 remain for domains. *)
      let rec nest i =
        if i < 100 then
          Api.run sd ~udi:(100 + i) ~on_rewind:(fun _ -> ()) (fun () -> nest (i + 1))
      in
      Alcotest.check_raises "keys exhausted" (Types.Error Types.Out_of_pkeys)
        (fun () -> nest 0))

(* {1 Persistent and transient patterns} *)

let test_persistent_domain_keeps_state () =
  with_sdrad (fun space sd ->
      (* Event 1 stores state in the domain heap and deinits (persistent
         pattern); event 2 re-initializes and finds the state intact. *)
      let ctx = ref 0 in
      Api.run sd ~udi:d1
        ~on_rewind:(fun _ -> ())
        (fun () ->
          ctx := Api.malloc sd ~udi:d1 32;
          Space.store_string space !ctx "session state";
          Api.enter sd d1;
          Api.exit_domain sd;
          Api.deinit sd d1);
      Api.run sd ~udi:d1
        ~on_rewind:(fun _ -> ())
        (fun () ->
          Api.enter sd d1;
          check string "state survived deinit/reinit" "session state"
            (Space.read_string space !ctx 13);
          Api.exit_domain sd;
          Api.destroy sd d1 ~heap:`Discard))

let test_destroy_merge_preserves_allocations () =
  with_sdrad (fun space sd ->
      let p = ref 0 in
      Api.run sd ~udi:d1
        ~on_rewind:(fun _ -> ())
        (fun () ->
          p := Api.malloc sd ~udi:d1 64;
          Space.store_string space !p "merged into parent";
          Api.destroy sd d1 ~heap:`Merge);
      (* The allocation now belongs to the root domain's heap. *)
      check string "data lives on" "merged into parent"
        (Space.read_string space !p 18);
      Api.free sd ~udi:Types.root_udi !p)

let test_heap_grows_on_demand () =
  with_sdrad ~size_mib:64 (fun _ sd ->
      Api.run sd ~udi:d1
        ~opts:{ Types.default_options with heap_size = 64 * 1024 }
        ~on_rewind:(fun _ -> ())
        (fun () ->
          (* Allocate far beyond the initial pool. *)
          let ps = List.init 40 (fun _ -> Api.malloc sd ~udi:d1 (64 * 1024)) in
          check bool "all allocations distinct" true
            (List.length (List.sort_uniq compare ps) = 40);
          Api.destroy sd d1 ~heap:`Discard))

let test_stack_reuse_toggle () =
  (* With reuse on, repeated init/destroy recycles the stack area (mapped
     bytes stay flat); with reuse off, each destroy unmaps. *)
  let mapped_after reuse =
    let space = Space.create ~size_mib:32 () in
    let sd = Api.create ~stack_reuse:reuse space in
    let sched = Sched.create () in
    let result = ref 0 in
    let _ =
      Sched.spawn sched (fun () ->
          for _ = 1 to 5 do
            Api.run sd ~udi:d1
              ~on_rewind:(fun _ -> ())
              (fun () -> Api.destroy sd d1 ~heap:`Discard)
          done;
          result := Space.mapped_bytes space)
    in
    Sched.run sched;
    !result
  in
  let with_reuse = mapped_after true and without = mapped_after false in
  check bool "reuse keeps one stack mapped" true (with_reuse > without)

(* {1 Data domains} *)

let test_data_domain_rw_matrix () =
  with_sdrad (fun space sd ->
      let dd = 9 in
      Api.init_data sd ~udi:dd ();
      let shared = Api.malloc sd ~udi:dd 64 in
      Space.store_string space shared "shared payload";
      (* d1 gets read-only access; d2 gets none. *)
      Api.dprotect sd ~udi:d1 ~tddi:dd Prot.read;
      Api.run sd ~udi:d1
        ~on_rewind:(fun _ -> Alcotest.fail "d1 should only read")
        (fun () ->
          Api.enter sd d1;
          check string "d1 reads shared" "shared payload"
            (Space.read_string space shared 14);
          Api.exit_domain sd;
          Api.destroy sd d1 ~heap:`Discard);
      let write_attempt =
        Api.run sd ~udi:d2
          ~on_rewind:(fun f -> `Faulted f.Types.cause)
          (fun () ->
            Api.enter sd d2;
            Space.store8 space shared 0;
            `Wrote)
      in
      (match write_attempt with
      | `Faulted (Types.Segv { code; _ }) ->
          check bool "write denied by pkey" true (code = Space.PKUERR)
      | _ -> Alcotest.fail "d2 write should fault");
      check string "shared intact" "shared payload"
        (Space.read_string space shared 14);
      Api.destroy sd dd ~heap:`Discard)

let test_data_domain_write_permission () =
  with_sdrad (fun space sd ->
      let dd = 9 in
      Api.init_data sd ~udi:dd ();
      let cell = Api.malloc sd ~udi:dd 16 in
      Api.dprotect sd ~udi:d1 ~tddi:dd Prot.rw;
      Api.run sd ~udi:d1
        ~on_rewind:(fun _ -> Alcotest.fail "rw domain should not fault")
        (fun () ->
          Api.enter sd d1;
          Space.store_string space cell "written by d1";
          Api.exit_domain sd;
          Api.destroy sd d1 ~heap:`Discard);
      check string "visible in root" "written by d1"
        (Space.read_string space cell 13);
      Api.destroy sd dd ~heap:`Discard)

let test_data_domain_survives_rewind () =
  with_sdrad (fun space sd ->
      let dd = 9 in
      Api.init_data sd ~udi:dd ();
      let cell = Api.malloc sd ~udi:dd 16 in
      Space.store_string space cell "durable";
      Api.dprotect sd ~udi:d1 ~tddi:dd Prot.read;
      Api.run sd ~udi:d1
        ~on_rewind:(fun _ -> ())
        (fun () ->
          Api.enter sd d1;
          ignore (Space.load8 space 0));
      check string "data domain untouched by rewind" "durable"
        (Space.read_string space cell 7);
      check bool "data domain still initialized" true (Api.is_initialized sd dd))

(* {1 protect_call (Listing 1)} *)

let test_protect_call_normal () =
  with_sdrad (fun space sd ->
      let r =
        Api.protect_call sd ~udi:d1 ~arg:"hello world" (fun adr len ->
            (* Count the 'l' characters of the copied argument. *)
            let count = ref 0 in
            for i = 0 to len - 1 do
              if Space.load8 space (adr + i) = Char.code 'l' then incr count
            done;
            !count)
      in
      check bool "result" true (r = Ok 3);
      check bool "domain cleaned up" false (Api.is_initialized sd d1))

let test_protect_call_fault () =
  with_sdrad (fun space sd ->
      let r =
        Api.protect_call sd ~udi:d1 ~arg:"boom" (fun adr _len ->
            (* Overflow the argument copy until the domain boundary. *)
            for i = 0 to 10_000_000 do
              Space.store8 space (adr + i) 0xFF
            done)
      in
      match r with
      | Error { Types.failed_udi; _ } -> check int "udi" d1 failed_udi
      | Ok _ -> Alcotest.fail "expected fault")

(* {1 Multithreading (§III-F)} *)

let test_threads_have_independent_domains () =
  let space = Space.create ~size_mib:32 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let results = Array.make 2 "" in
  for i = 0 to 1 do
    ignore
      (Sched.spawn sched
         ~name:(Printf.sprintf "worker%d" i)
         (fun () ->
           (* Both threads use the same udi: instances are per-thread. *)
           Api.run sd ~udi:d1
             ~on_rewind:(fun _ -> ())
             (fun () ->
               let p = Api.malloc sd ~udi:d1 32 in
               Space.store_string space p (Printf.sprintf "thread %d" i);
               Sched.yield ();
               Api.enter sd d1;
               results.(i) <- Space.read_string space p 8;
               Api.exit_domain sd;
               Api.destroy sd d1 ~heap:`Discard)))
  done;
  Sched.run sched;
  check string "thread 0 data" "thread 0" results.(0);
  check string "thread 1 data" "thread 1" results.(1)

let test_thread_cannot_touch_other_threads_domain () =
  let space = Space.create ~size_mib:32 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let secret_addr = ref 0 in
  let stolen = ref None in
  let t1 =
    Sched.spawn sched ~name:"owner" (fun () ->
        Api.run sd ~udi:d1
          ~on_rewind:(fun _ -> ())
          (fun () ->
            let p = Api.malloc sd ~udi:d1 32 in
            Space.store_string space p "private";
            secret_addr := p;
            Sched.sleep 1000.0;
            Api.destroy sd d1 ~heap:`Discard))
  in
  let _ =
    Sched.spawn sched ~name:"snoop" (fun () ->
        ignore (Api.current sd);
        Sched.sleep 100.0;
        match Space.load8 space !secret_addr with
        | v -> stolen := Some (`Read v)
        | exception Space.Fault { code; _ } -> stolen := Some (`Fault code))
  in
  Sched.run sched;
  ignore t1;
  check bool "snoop blocked by pkey" true (!stolen = Some (`Fault Space.PKUERR))

let test_rewind_on_one_thread_only () =
  let space = Space.create ~size_mib:32 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let good = ref 0 in
  let _ =
    Sched.spawn sched ~name:"faulty" (fun () ->
        for _ = 1 to 5 do
          Api.run sd ~udi:d1
            ~on_rewind:(fun _ -> ())
            (fun () ->
              Api.enter sd d1;
              Sched.yield ();
              ignore (Space.load8 space 0))
        done)
  in
  let _ =
    Sched.spawn sched ~name:"healthy" (fun () ->
        for _ = 1 to 5 do
          Api.run sd ~udi:d1
            ~on_rewind:(fun _ -> Alcotest.fail "healthy thread rewound")
            (fun () ->
              Api.enter sd d1;
              Sched.yield ();
              incr good;
              Api.exit_domain sd;
              Api.destroy sd d1 ~heap:`Discard)
        done)
  in
  Sched.run sched;
  check int "healthy thread unaffected" 5 !good;
  check int "faulty thread rewound each time" 5 (Api.rewind_count sd)

(* {1 Accounting} *)

let test_monitor_bytes_track_domains () =
  with_sdrad (fun _ sd ->
      let base = Api.monitor_bytes sd in
      Api.run sd ~udi:d1
        ~on_rewind:(fun _ -> ())
        (fun () ->
          check bool "monitor grew" true (Api.monitor_bytes sd > base);
          Api.destroy sd d1 ~heap:`Discard);
      check int "monitor back to baseline" base (Api.monitor_bytes sd))

let test_switch_profile_shape () =
  with_sdrad (fun _ sd ->
      let p = Api.profile_switch sd in
      check bool "total positive" true (p.Api.total_cycles > 0.0);
      let frac = p.Api.wrpkru_cycles /. p.Api.total_cycles in
      (* The paper attributes 30-50% of switch cost to the PKRU write. *)
      check bool "wrpkru fraction in [0.25, 0.65]" true
        (frac > 0.25 && frac < 0.65))

(* Property: a random mix of successful and faulting events never breaks
   the service; after each batch the domain table is clean. *)
let random_events_prop =
  QCheck.Test.make ~name:"random faulting events always recover" ~count:30
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) bool)
    (fun events ->
      let ok = ref true in
      with_sdrad (fun space sd ->
          List.iter
            (fun should_fault ->
              Api.run sd ~udi:d1
                ~on_rewind:(fun _ -> ())
                (fun () ->
                  Api.enter sd d1;
                  let p = Api.malloc sd ~udi:d1 128 in
                  Space.store_string space p "payload";
                  if should_fault then ignore (Space.load8 space 0);
                  Api.exit_domain sd;
                  Api.destroy sd d1 ~heap:`Discard);
              if Api.current sd <> Types.root_udi then ok := false;
              if Api.is_initialized sd d1 then ok := false)
            events);
      !ok)

let () =
  Alcotest.run "sdrad"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "normal exit" `Quick test_lifecycle_normal_exit;
          Alcotest.test_case "auto deinit" `Quick test_run_auto_deinits;
          Alcotest.test_case "double init" `Quick test_double_init_rejected;
          Alcotest.test_case "exit from root" `Quick test_exit_from_root_rejected;
          Alcotest.test_case "enter requires child" `Quick test_enter_requires_child;
          Alcotest.test_case "destroy entered" `Quick test_destroy_entered_rejected;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "nested cannot write root" `Quick test_nested_cannot_write_root;
          Alcotest.test_case "parent accesses accessible child" `Quick
            test_parent_accesses_accessible_child;
          Alcotest.test_case "inaccessible child sealed" `Quick test_inaccessible_child_sealed;
          Alcotest.test_case "sibling isolation" `Quick test_sibling_isolation;
          Alcotest.test_case "parent readable option" `Quick test_parent_readable_option;
        ] );
      ( "rewind",
        [
          Alcotest.test_case "fault triggers rewind" `Quick test_fault_triggers_rewind;
          Alcotest.test_case "service continues" `Quick test_service_continues_after_rewind;
          Alcotest.test_case "abort" `Quick test_abort_rewinds;
          Alcotest.test_case "canary" `Quick test_canary_detects_smash;
          Alcotest.test_case "stack frame normal" `Quick test_stack_frame_normal_use;
          Alcotest.test_case "stack exhaustion" `Quick test_stack_exhaustion_rewinds;
          Alcotest.test_case "root fault kills thread" `Quick test_fault_in_root_kills_thread;
          Alcotest.test_case "grandparent rewind (fig 2)" `Quick test_grandparent_rewind;
          Alcotest.test_case "rewind frees pkeys" `Quick test_rewind_frees_pkeys;
          Alcotest.test_case "out of pkeys" `Quick test_out_of_pkeys;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "persistent domain" `Quick test_persistent_domain_keeps_state;
          Alcotest.test_case "destroy merge" `Quick test_destroy_merge_preserves_allocations;
          Alcotest.test_case "heap growth" `Quick test_heap_grows_on_demand;
          Alcotest.test_case "stack reuse toggle" `Quick test_stack_reuse_toggle;
        ] );
      ( "data domains",
        [
          Alcotest.test_case "rw matrix" `Quick test_data_domain_rw_matrix;
          Alcotest.test_case "write permission" `Quick test_data_domain_write_permission;
          Alcotest.test_case "survives rewind" `Quick test_data_domain_survives_rewind;
        ] );
      ( "protect_call",
        [
          Alcotest.test_case "normal" `Quick test_protect_call_normal;
          Alcotest.test_case "fault" `Quick test_protect_call_fault;
        ] );
      ( "threads",
        [
          Alcotest.test_case "independent domains" `Quick test_threads_have_independent_domains;
          Alcotest.test_case "cross-thread isolation" `Quick
            test_thread_cannot_touch_other_threads_domain;
          Alcotest.test_case "rewind per thread" `Quick test_rewind_on_one_thread_only;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "monitor bytes" `Quick test_monitor_bytes_track_domains;
          Alcotest.test_case "switch profile" `Quick test_switch_profile_shape;
          QCheck_alcotest.to_alcotest random_events_prop;
        ] );
    ]
