(* Model-based property tests: each stateful component is driven with a
   random operation sequence and compared against a trivially correct
   OCaml model after every step. *)

module Space = Vmem.Space
module Prot = Vmem.Prot
module Sched = Simkern.Sched
module Rng = Simkern.Rng
module Store = Kvcache.Store
module Slab = Kvcache.Slab

let in_thread f =
  let sched = Sched.create () in
  let tid = Sched.spawn sched ~name:"model" f in
  Sched.run sched;
  match Sched.outcome sched tid with
  | Some Sched.Completed -> ()
  | Some (Sched.Failed e) -> raise e
  | None -> Alcotest.fail "thread did not finish"

(* {1 Store + LRU vs. a list model} *)

(* The model: an association list in recency order (head = MRU). *)
module Lru_model = struct
  type t = (string * string) list ref

  let create () : t = ref []

  let touch m k =
    match List.assoc_opt k !m with
    | Some v ->
        m := (k, v) :: List.remove_assoc k !m;
        Some v
    | None -> None

  let set m k v = m := (k, v) :: List.remove_assoc k !m
  let delete m k =
    let existed = List.mem_assoc k !m in
    m := List.remove_assoc k !m;
    existed

  let evict_tail m =
    match List.rev !m with
    | (k, _) :: _ ->
        m := List.remove_assoc k !m;
        Some k
    | [] -> None

  let keys m = List.map fst !m
end

let store_lru_model =
  QCheck.Test.make ~name:"store tracks the LRU model exactly" ~count:40
    QCheck.(list (pair (int_range 0 11) (int_range 0 3)))
    (fun ops ->
      let ok = ref true in
      in_thread (fun () ->
          let space = Space.create ~size_mib:32 () in
          let slab =
            Slab.create space ~alloc_page:(fun len ->
                Space.mmap space ~len ~prot:Prot.rw ~pkey:0)
          in
          let db =
            Store.create space ~buckets:16 ~slab ~alloc_table:(fun len ->
                Space.mmap space ~len ~prot:Prot.rw ~pkey:0)
          in
          let buf = Space.mmap space ~len:4096 ~prot:Prot.rw ~pkey:0 in
          let model = Lru_model.create () in
          let value_of k op = Printf.sprintf "v-%s-%d" k op in
          List.iter
            (fun (k, op) ->
              let key = Printf.sprintf "key%d" k in
              (match op with
              | 0 | 3 ->
                  let v = value_of key op in
                  Space.store_string space buf v;
                  ignore
                    (Store.set db ~key ~flags:0 ~value_src:buf
                       ~value_len:(String.length v));
                  Lru_model.set model key v
              | 1 ->
                  let real =
                    Option.map
                      (fun (a, l, _) -> Space.read_string space a l)
                      (Store.get db key)
                  in
                  let expected = Lru_model.touch model key in
                  if real <> expected then ok := false
              | _ ->
                  if Store.delete db key <> Lru_model.delete model key then
                    ok := false);
              if Store.lru_keys db <> Lru_model.keys model then ok := false;
              if Store.count db <> List.length (Lru_model.keys model) then
                ok := false;
              if Store.check db <> [] then ok := false)
            ops);
      !ok)

(* Eviction order must equal the model's tail order under pressure. *)
let eviction_order_model =
  QCheck.Test.make ~name:"eviction follows exact LRU order" ~count:25
    QCheck.(list_of_size (QCheck.Gen.int_range 5 30) (int_range 0 9))
    (fun touches ->
      let ok = ref true in
      in_thread (fun () ->
          let space = Space.create ~size_mib:32 () in
          let slab =
            Slab.create space ~alloc_page:(fun len ->
                Space.mmap space ~len ~prot:Prot.rw ~pkey:0)
          in
          let db =
            Store.create space ~buckets:16 ~slab ~alloc_table:(fun len ->
                Space.mmap space ~len ~prot:Prot.rw ~pkey:0)
          in
          let buf = Space.mmap space ~len:4096 ~prot:Prot.rw ~pkey:0 in
          let model = Lru_model.create () in
          for k = 0 to 9 do
            let key = Printf.sprintf "k%d" k in
            Space.store_string space buf key;
            ignore (Store.set db ~key ~flags:0 ~value_src:buf ~value_len:2);
            Lru_model.set model key key
          done;
          List.iter
            (fun k ->
              let key = Printf.sprintf "k%d" k in
              ignore (Store.get db key);
              ignore (Lru_model.touch model key))
            touches;
          (* Evict everything one by one; orders must agree. *)
          let rec drain () =
            match Lru_model.evict_tail model with
            | None -> ()
            | Some expected ->
                let tail = List.rev (Store.lru_keys db) in
                (match tail with
                | actual :: _ ->
                    if actual <> expected then ok := false
                    else ignore (Store.delete db actual)
                | [] -> ok := false);
                drain ()
          in
          drain ());
      !ok)

(* {1 Netsim vs. a queue model} *)

let netsim_fifo_model =
  QCheck.Test.make ~name:"connection behaves as a FIFO of messages" ~count:50
    QCheck.(list (string_of_size (QCheck.Gen.int_range 0 50)))
    (fun msgs ->
      let ok = ref true in
      in_thread (fun () ->
          let net = Netsim.create Simkern.Cost.default in
          let l = Netsim.listen net ~port:9 in
          let a = Netsim.connect net ~port:9 in
          let b = Option.get (Netsim.accept l) in
          List.iter (Netsim.send a) msgs;
          Netsim.close a;
          let rec drain acc =
            match Netsim.recv b with
            | Some m -> drain (m :: acc)
            | None -> List.rev acc
          in
          if drain [] <> msgs then ok := false);
      !ok)

(* {1 Scheduler: per-thread clocks are monotone and causally consistent} *)

let sched_clock_monotone =
  QCheck.Test.make ~name:"observed virtual times are monotone per thread" ~count:40
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 1 20) (int_range 0 100)))
    (fun (seed, charges) ->
      let ok = ref true in
      let sched = Sched.create () in
      let rng = Rng.create seed in
      for i = 0 to 3 do
        ignore
          (Sched.spawn sched
             ~name:(Printf.sprintf "m%d" i)
             (fun () ->
               let last = ref (-1.0) in
               List.iter
                 (fun c ->
                   Sched.charge (float_of_int c);
                   if Rng.bool rng then Sched.yield ();
                   let now = Sched.now () in
                   if now < !last then ok := false;
                   last := now)
                 charges))
      done;
      Sched.run sched;
      !ok)

(* {1 Vmem region allocator vs. an interval model} *)

let mmap_disjointness_model =
  QCheck.Test.make ~name:"live mappings are always pairwise disjoint" ~count:40
    QCheck.(list (pair (int_range 1 20) bool))
    (fun ops ->
      let ok = ref true in
      let s = Space.create ~size_mib:8 () in
      let live = ref [] in
      List.iter
        (fun (pages, do_free) ->
          if do_free && !live <> [] then begin
            match !live with
            | (a, _) :: rest ->
                Space.munmap s a;
                live := rest
            | [] -> ()
          end
          else begin
            match Space.mmap s ~len:(pages * 4096) ~prot:Prot.rw ~pkey:0 with
            | a -> live := (a, pages * 4096) :: !live
            | exception Failure _ -> ()
          end;
          (* Pairwise disjointness, including the guard page below each. *)
          let rec pairs = function
            | [] -> ()
            | (a, la) :: rest ->
                List.iter
                  (fun (b, lb) ->
                    let a0 = a - 4096 and a1 = a + la in
                    let b0 = b - 4096 and b1 = b + lb in
                    if a0 < b1 && b0 < a1 then ok := false)
                  rest;
                pairs rest
          in
          pairs !live)
        ops;
      !ok)

let () =
  Alcotest.run "models"
    [
      ( "store",
        [
          QCheck_alcotest.to_alcotest store_lru_model;
          QCheck_alcotest.to_alcotest eviction_order_model;
        ] );
      ("netsim", [ QCheck_alcotest.to_alcotest netsim_fifo_model ]);
      ("sched", [ QCheck_alcotest.to_alcotest sched_clock_monotone ]);
      ("vmem", [ QCheck_alcotest.to_alcotest mmap_disjointness_model ]);
    ]
