(* Tests for the simkern substrate: RNG determinism, virtual-time
   scheduling order, mutex handoff and contention accounting, condition
   variables, joins and failure reporting. *)

module Rng = Simkern.Rng
module Sched = Simkern.Sched
module Cost = Simkern.Cost

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* {1 Rng} *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check int "same stream" (Rng.int a 1_000_000) (Rng.int b 1_000_000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let va = List.init 10 (fun _ -> Rng.int a 1_000_000) in
  let vb = List.init 10 (fun _ -> Rng.int b 1_000_000) in
  check bool "different streams" true (va <> vb)

let test_rng_split_independent () =
  let root = Rng.create 7 in
  let child = Rng.split root in
  let vr = List.init 10 (fun _ -> Rng.int root 1000) in
  let vc = List.init 10 (fun _ -> Rng.int child 1000) in
  check bool "independent" true (vr <> vc)

let test_rng_float_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    check bool "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 5 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check bool "still a permutation" true (sorted = Array.init 50 Fun.id);
  check bool "actually moved" true (a <> Array.init 50 Fun.id)

let rng_int_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

(* {1 Sched} *)

let test_sched_runs_in_clock_order () =
  let t = Sched.create () in
  let order = ref [] in
  let mark label = order := label :: !order in
  let _ =
    Sched.spawn t ~name:"slow" (fun () ->
        Sched.charge 100.0;
        Sched.yield ();
        mark "slow")
  in
  let _ =
    Sched.spawn t ~name:"fast" (fun () ->
        Sched.charge 10.0;
        Sched.yield ();
        mark "fast")
  in
  Sched.run t;
  check (Alcotest.list Alcotest.string) "fast first" [ "fast"; "slow" ]
    (List.rev !order)

let test_sched_charge_advances_clock () =
  let t = Sched.create () in
  let final = ref 0.0 in
  let _ =
    Sched.spawn t (fun () ->
        Sched.charge 123.0;
        Sched.charge 77.0;
        final := Sched.now ())
  in
  Sched.run t;
  check (Alcotest.float 0.001) "clock" 200.0 !final

let test_sched_horizon_is_makespan () =
  let t = Sched.create () in
  let _ = Sched.spawn t (fun () -> Sched.charge 50.0) in
  let _ = Sched.spawn t (fun () -> Sched.charge 400.0) in
  let _ = Sched.spawn t (fun () -> Sched.charge 10.0) in
  Sched.run t;
  check (Alcotest.float 0.001) "horizon" 400.0 (Sched.horizon t)

let test_sched_join_waits () =
  let t = Sched.create () in
  let seen = ref false in
  let worker =
    Sched.spawn t ~name:"worker" (fun () ->
        Sched.charge 1000.0;
        seen := true)
  in
  let _ =
    Sched.spawn t ~name:"joiner" (fun () ->
        Sched.join worker;
        check bool "worker finished before join returned" true !seen;
        check bool "joiner clock caught up" true (Sched.now () >= 1000.0))
  in
  Sched.run t

let test_sched_failure_reported () =
  let t = Sched.create () in
  let tid = Sched.spawn t ~name:"crasher" (fun () -> failwith "boom") in
  Sched.run t;
  match Sched.outcome t tid with
  | Some (Sched.Failed (Failure m)) -> check Alcotest.string "msg" "boom" m
  | _ -> Alcotest.fail "expected Failed outcome"

let test_sched_deadlock_detected () =
  let t = Sched.create () in
  let m = Sched.Mutex.create () in
  let _ =
    Sched.spawn t (fun () ->
        Sched.Mutex.lock m;
        (* never unlocks; second thread blocks forever *)
        Sched.charge 1.0)
  in
  let _ = Sched.spawn t (fun () -> Sched.Mutex.lock m) in
  Alcotest.check_raises "deadlock"
    (Sched.Deadlock "t1")
    (fun () -> Sched.run t)

let test_mutex_mutual_exclusion () =
  let t = Sched.create () in
  let m = Sched.Mutex.create () in
  let inside = ref 0 and max_inside = ref 0 in
  for i = 0 to 9 do
    ignore
      (Sched.spawn t
         ~name:(Printf.sprintf "w%d" i)
         (fun () ->
           for _ = 1 to 5 do
             Sched.Mutex.with_lock m (fun () ->
                 incr inside;
                 if !inside > !max_inside then max_inside := !inside;
                 Sched.charge 10.0;
                 Sched.yield ();
                 decr inside)
           done))
  done;
  Sched.run t;
  check int "never two holders" 1 !max_inside

let test_mutex_contention_accounting () =
  let t = Sched.create () in
  let m = Sched.Mutex.create () in
  let _ =
    Sched.spawn t (fun () ->
        Sched.Mutex.lock m;
        Sched.sleep 500.0;
        Sched.Mutex.unlock m)
  in
  let _ =
    Sched.spawn t (fun () ->
        Sched.charge 1.0;
        Sched.Mutex.lock m;
        Sched.Mutex.unlock m)
  in
  Sched.run t;
  check int "one contention" 1 (Sched.Mutex.contentions m);
  check bool "waited about 499 cycles" true (Sched.Mutex.wait_cycles m >= 400.0)

let test_cond_signal_wakes () =
  let t = Sched.create () in
  let m = Sched.Mutex.create () in
  let c = Sched.Cond.create () in
  let got = ref None in
  let q = Queue.create () in
  let _ =
    Sched.spawn t ~name:"consumer" (fun () ->
        Sched.Mutex.lock m;
        while Queue.is_empty q do
          Sched.Cond.wait c m
        done;
        got := Some (Queue.pop q);
        Sched.Mutex.unlock m)
  in
  let _ =
    Sched.spawn t ~name:"producer" (fun () ->
        Sched.charge 100.0;
        Sched.Mutex.lock m;
        Queue.push 42 q;
        Sched.Cond.signal c;
        Sched.Mutex.unlock m)
  in
  Sched.run t;
  check (Alcotest.option int) "received" (Some 42) !got

let test_cond_broadcast_wakes_all () =
  let t = Sched.create () in
  let m = Sched.Mutex.create () in
  let c = Sched.Cond.create () in
  let go = ref false in
  let woken = ref 0 in
  for _ = 1 to 5 do
    ignore
      (Sched.spawn t (fun () ->
           Sched.Mutex.lock m;
           while not !go do
             Sched.Cond.wait c m
           done;
           incr woken;
           Sched.Mutex.unlock m))
  done;
  let _ =
    Sched.spawn t (fun () ->
        Sched.charge 10.0;
        Sched.Mutex.lock m;
        go := true;
        Sched.Cond.broadcast c;
        Sched.Mutex.unlock m)
  in
  Sched.run t;
  check int "all woken" 5 !woken

let test_sched_spawn_inherits_clock () =
  let t = Sched.create () in
  let child_start = ref 0.0 in
  let _ =
    Sched.spawn t (fun () ->
        Sched.charge 777.0;
        let child = Sched.spawn (Sched.current ()) (fun () -> child_start := Sched.now ()) in
        Sched.join child)
  in
  Sched.run t;
  check bool "child starts at parent's time" true (!child_start >= 777.0)

let test_sched_determinism () =
  let run_once () =
    let t = Sched.create () in
    let trace = Buffer.create 64 in
    let r = Rng.create 11 in
    for i = 0 to 4 do
      ignore
        (Sched.spawn t (fun () ->
             for _ = 1 to 3 do
               Sched.charge (float_of_int (Rng.int r 100));
               Buffer.add_string trace (string_of_int i);
               Sched.yield ()
             done))
    done;
    Sched.run t;
    Buffer.contents trace
  in
  check Alcotest.string "identical traces" (run_once ()) (run_once ())


let test_rwlock_readers_share () =
  let t = Sched.create () in
  let rw = Sched.Rwlock.create () in
  let max_concurrent = ref 0 in
  for _ = 1 to 4 do
    ignore
      (Sched.spawn t (fun () ->
           Sched.Rwlock.with_rd rw (fun () ->
               if Sched.Rwlock.readers rw > !max_concurrent then
                 max_concurrent := Sched.Rwlock.readers rw;
               Sched.sleep 100.0)))
  done;
  Sched.run t;
  check bool "readers overlapped" true (!max_concurrent > 1)

let test_rwlock_writer_exclusive () =
  let t = Sched.create () in
  let rw = Sched.Rwlock.create () in
  let in_write = ref false and violations = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Sched.spawn t (fun () ->
           for _ = 1 to 4 do
             Sched.Rwlock.with_wr rw (fun () ->
                 if !in_write then incr violations;
                 in_write := true;
                 Sched.sleep 10.0;
                 in_write := false)
           done));
    ignore
      (Sched.spawn t (fun () ->
           for _ = 1 to 4 do
             Sched.Rwlock.with_rd rw (fun () ->
                 if !in_write then incr violations;
                 Sched.sleep 5.0)
           done))
  done;
  Sched.run t;
  check int "no read/write overlap" 0 !violations

let test_rwlock_writer_waits_for_readers () =
  let t = Sched.create () in
  let rw = Sched.Rwlock.create () in
  let order = ref [] in
  let _ =
    Sched.spawn t ~name:"reader" (fun () ->
        Sched.Rwlock.rd_lock rw;
        Sched.sleep 1000.0;
        order := `Reader_done :: !order;
        Sched.Rwlock.rd_unlock rw)
  in
  let _ =
    Sched.spawn t ~name:"writer" (fun () ->
        Sched.charge 10.0;
        Sched.Rwlock.wr_lock rw;
        order := `Writer_in :: !order;
        Sched.Rwlock.wr_unlock rw)
  in
  Sched.run t;
  check bool "writer entered after reader finished" true
    (List.rev !order = [ `Reader_done; `Writer_in ])

let test_rwlock_misuse_detected () =
  let t = Sched.create () in
  let rw = Sched.Rwlock.create () in
  let tid =
    Sched.spawn t (fun () -> Sched.Rwlock.rd_unlock rw)
  in
  Sched.run t;
  match Sched.outcome t tid with
  | Some (Sched.Failed (Invalid_argument _)) -> ()
  | _ -> Alcotest.fail "unbalanced rd_unlock not caught"

(* {1 Cost} *)

let test_cost_conversions () =
  let c = Cost.default in
  check (Alcotest.float 1e-9) "1us at 2.1GHz" 2100.0 (Cost.cycles_of_us c 1.0);
  check (Alcotest.float 1e-9) "roundtrip" 1.0
    (Cost.us_of_cycles c (Cost.cycles_of_us c 1.0))

let () =
  Alcotest.run "simkern"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          QCheck_alcotest.to_alcotest rng_int_bounds;
        ] );
      ( "sched",
        [
          Alcotest.test_case "clock order" `Quick test_sched_runs_in_clock_order;
          Alcotest.test_case "charge advances clock" `Quick test_sched_charge_advances_clock;
          Alcotest.test_case "horizon" `Quick test_sched_horizon_is_makespan;
          Alcotest.test_case "join waits" `Quick test_sched_join_waits;
          Alcotest.test_case "failure reported" `Quick test_sched_failure_reported;
          Alcotest.test_case "deadlock detected" `Quick test_sched_deadlock_detected;
          Alcotest.test_case "spawn inherits clock" `Quick test_sched_spawn_inherits_clock;
          Alcotest.test_case "determinism" `Quick test_sched_determinism;
        ] );
      ( "sync",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_mutex_mutual_exclusion;
          Alcotest.test_case "contention accounting" `Quick test_mutex_contention_accounting;
          Alcotest.test_case "cond signal" `Quick test_cond_signal_wakes;
          Alcotest.test_case "cond broadcast" `Quick test_cond_broadcast_wakes_all;
          Alcotest.test_case "rwlock readers share" `Quick test_rwlock_readers_share;
          Alcotest.test_case "rwlock writer exclusive" `Quick test_rwlock_writer_exclusive;
          Alcotest.test_case "rwlock writer waits" `Quick test_rwlock_writer_waits_for_readers;
          Alcotest.test_case "rwlock misuse" `Quick test_rwlock_misuse_detected;
        ] );
      ("cost", [ Alcotest.test_case "conversions" `Quick test_cost_conversions ]);
    ]
