(* Tests for the image renderer: encode/decode round trips, malformed
   input rejection, and the integer-overflow CVE analogue contained by a
   transient SDRaD domain. *)

module Space = Vmem.Space
module Prot = Vmem.Prot
module Sched = Simkern.Sched
module Api = Sdrad.Api
module Types = Sdrad.Types

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let in_thread f =
  let sched = Sched.create () in
  let tid = Sched.spawn sched ~name:"test" f in
  Sched.run sched;
  match Sched.outcome sched tid with
  | Some Sched.Completed -> ()
  | Some (Sched.Failed e) -> raise e
  | None -> Alcotest.fail "thread did not finish"

let gradient x y = (x * 37 mod 256, y * 11 mod 256, (x + y) mod 256)

let plain_decode space image ~vulnerable =
  let src = Space.mmap space ~len:(max 4096 (String.length image)) ~prot:Prot.rw ~pkey:0 in
  Space.store_string space src image;
  Render.decode space
    ~alloc:(fun n -> Space.mmap space ~len:(max 16 n) ~prot:Prot.rw ~pkey:0)
    ~src ~len:(String.length image) ~vulnerable

let test_roundtrip () =
  in_thread (fun () ->
      let space = Space.create ~size_mib:16 () in
      let image = Render.encode ~width:17 ~height:9 gradient in
      let d = plain_decode space image ~vulnerable:false in
      check int "width" 17 d.Render.width;
      check int "height" 9 d.Render.height;
      let ok = ref true in
      for y = 0 to 8 do
        for x = 0 to 16 do
          if Render.pixel space d ~x ~y <> gradient x y then ok := false
        done
      done;
      check bool "every pixel survives" true !ok)

let test_rle_compresses_flat_images () =
  let flat = Render.encode ~width:100 ~height:100 (fun _ _ -> (9, 9, 9)) in
  (* 10000 identical pixels need only ceil(10000/255) runs. *)
  check bool "flat image compresses well" true (String.length flat < 200)

let test_malformed_rejected () =
  in_thread (fun () ->
      let space = Space.create ~size_mib:16 () in
      let reject image =
        match plain_decode space image ~vulnerable:false with
        | _ -> Alcotest.failf "accepted %S" image
        | exception Render.Bad_image _ -> ()
      in
      reject "NOPE";
      reject "SIMG";
      (* zero dimensions *)
      reject ("SIMG" ^ String.make 8 '\000');
      (* claims pixels but has no run data *)
      reject ("SIMG" ^ "\002\000\000\000\002\000\000\000");
      (* zero-length run *)
      reject ("SIMG" ^ "\001\000\000\000\001\000\000\000" ^ "\000abc"))

let test_patched_rejects_overflow_dimensions () =
  in_thread (fun () ->
      let space = Space.create ~size_mib:16 () in
      match plain_decode space (Render.encode_malicious ()) ~vulnerable:false with
      | _ -> Alcotest.fail "overflow dimensions accepted"
      | exception Render.Bad_image _ -> ())

let test_cve_unprotected_faults () =
  let space = Space.create ~size_mib:16 () in
  let sched = Sched.create () in
  let tid =
    Sched.spawn sched ~name:"victim" (fun () ->
        ignore (plain_decode space (Render.encode_malicious ()) ~vulnerable:true))
  in
  Sched.run sched;
  match Sched.outcome sched tid with
  | Some (Sched.Failed (Space.Fault _)) -> ()
  | _ -> Alcotest.fail "heap rampage should crash the unprotected process"

let test_cve_isolated_rewinds () =
  in_thread (fun () ->
      let space = Space.create ~size_mib:32 () in
      let sd = Api.create space in
      (match Render.decode_isolated sd ~vulnerable:true (Render.encode_malicious ()) with
      | Error fault -> check int "renderer domain failed" 8 fault.Types.failed_udi
      | Ok _ -> Alcotest.fail "overflow not caught");
      (* Service continues: a benign decode works right after. *)
      let image = Render.encode ~width:8 ~height:8 gradient in
      match Render.decode_isolated sd ~vulnerable:true image with
      | Ok d ->
          check int "width" 8 d.Render.width;
          (* The framebuffer was merged into the caller's heap and is
             readable from the root domain. *)
          check bool "pixels visible after merge" true
            (Render.pixel space d ~x:3 ~y:4 = gradient 3 4)
      | Error _ -> Alcotest.fail "benign decode rewound")

let test_isolated_framebuffer_freeable () =
  in_thread (fun () ->
      let space = Space.create ~size_mib:32 () in
      let sd = Api.create space in
      match Render.decode_isolated sd ~vulnerable:false (Render.encode ~width:4 ~height:4 gradient) with
      | Ok d ->
          (* Merged into the root heap: the root can free it. *)
          Api.free sd ~udi:Types.root_udi d.Render.fb
      | Error _ -> Alcotest.fail "decode failed")

let roundtrip_prop =
  QCheck.Test.make ~name:"random images round-trip through the decoder" ~count:40
    QCheck.(triple (int_range 1 40) (int_range 1 40) (int_range 0 1000))
    (fun (w, h, seed) ->
      let rng = Simkern.Rng.create seed in
      let pixels =
        Array.init h (fun _ ->
            Array.init w (fun _ ->
                ( Simkern.Rng.int rng 256,
                  Simkern.Rng.int rng 256,
                  Simkern.Rng.int rng 256 )))
      in
      let image = Render.encode ~width:w ~height:h (fun x y -> pixels.(y).(x)) in
      let result = ref true in
      in_thread (fun () ->
          let space = Space.create ~size_mib:16 () in
          let d = plain_decode space image ~vulnerable:false in
          for y = 0 to h - 1 do
            for x = 0 to w - 1 do
              if Render.pixel space d ~x ~y <> pixels.(y).(x) then result := false
            done
          done);
      !result)

let () =
  Alcotest.run "render"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "rle compression" `Quick test_rle_compresses_flat_images;
          Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
          Alcotest.test_case "patched rejects overflow" `Quick
            test_patched_rejects_overflow_dimensions;
          QCheck_alcotest.to_alcotest roundtrip_prop;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "cve unprotected" `Quick test_cve_unprotected_faults;
          Alcotest.test_case "cve isolated rewind" `Quick test_cve_isolated_rewinds;
          Alcotest.test_case "framebuffer merge" `Quick test_isolated_framebuffer_freeable;
        ] );
    ]
