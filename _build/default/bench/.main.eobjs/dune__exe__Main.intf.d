bench/main.mli:
