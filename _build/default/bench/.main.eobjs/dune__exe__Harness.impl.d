bench/harness.ml: Httpd Kvcache List Netsim Option Printf Sdrad Simkern Stats Vmem Workload
