bench/micro.ml: Analyze Bechamel Benchmark Crypto Harness Hashtbl Instance Kvcache Lazy List Measure Printf Staged String Test Time Tlsf Toolkit Vfs Vmem
