bench/experiments.ml: Checkpoint Crypto Harness Httpd Kvcache List Netsim Nvx Option Printf Sdrad Simkern Stats String Vmem Workload
