(* Bechamel wall-clock micro-benchmarks of the simulator's hot paths —
   these measure the OCaml implementation itself (how fast the simulated
   hardware runs on the host), complementing the virtual-time experiment
   tables. *)

open Bechamel
open Toolkit
module Space = Vmem.Space
module Prot = Vmem.Prot

let space = lazy (Space.create ~size_mib:32 ())

let region =
  lazy
    (let s = Lazy.force space in
     Space.mmap s ~len:(1024 * 1024) ~prot:Prot.rw ~pkey:0)

let heap =
  lazy
    (let s = Lazy.force space in
     let h = Tlsf.create s ~name:"bench" in
     let r = Space.mmap s ~len:(4 * 1024 * 1024) ~prot:Prot.rw ~pkey:0 in
     Tlsf.add_region h ~addr:r ~len:(4 * 1024 * 1024);
     h)

let gcm_key = String.make 32 'k'
let gcm_iv = String.make 12 'i'

let filesystem =
  lazy
    (let s = Lazy.force space in
     let fs = Vfs.format s ~blocks:256 () in
     Vfs.create fs ~path:"/bench.bin" ~data:(String.make 8192 'f');
     fs)

let kv =
  lazy
    (let s = Lazy.force space in
     let slab =
       Kvcache.Slab.create s ~alloc_page:(fun len ->
           Space.mmap s ~len ~prot:Prot.rw ~pkey:0)
     in
     let db =
       Kvcache.Store.create s ~buckets:1024 ~slab ~alloc_table:(fun len ->
           Space.mmap s ~len ~prot:Prot.rw ~pkey:0)
     in
     let buf = Space.mmap s ~len:4096 ~prot:Prot.rw ~pkey:0 in
     Space.store_string s buf (String.make 1024 'v');
     for i = 0 to 99 do
       ignore
         (Kvcache.Store.set db ~key:(Printf.sprintf "bench%02d" i) ~flags:0
            ~value_src:buf ~value_len:1024)
     done;
     db)

let tests =
  Test.make_grouped ~name:"simulator" ~fmt:"%s %s"
    [
      Test.make ~name:"space.load64"
        (Staged.stage (fun () ->
             let s = Lazy.force space and r = Lazy.force region in
             Space.load64 s r));
      Test.make ~name:"space.store64"
        (Staged.stage (fun () ->
             let s = Lazy.force space and r = Lazy.force region in
             Space.store64 s r 42));
      Test.make ~name:"space.blit-1KiB"
        (Staged.stage (fun () ->
             let s = Lazy.force space and r = Lazy.force region in
             Space.blit s ~src:r ~dst:(r + 8192) ~len:1024));
      Test.make ~name:"tlsf.malloc+free-256B"
        (Staged.stage (fun () ->
             let h = Lazy.force heap in
             let p = Tlsf.malloc h 256 in
             Tlsf.free h p));
      Test.make ~name:"aes256gcm.16B-block"
        (Staged.stage
           (let ctx = Crypto.Gcm.init ~key:gcm_key ~iv:gcm_iv in
            fun () -> ignore (Crypto.Gcm.encrypt ctx "0123456789abcdef")));
      Test.make ~name:"vfs.read-8KiB-file"
        (Staged.stage (fun () ->
             ignore (Vfs.read_all (Lazy.force filesystem) "/bench.bin")));
      Test.make ~name:"store.get-1KiB-item"
        (Staged.stage (fun () ->
             ignore (Kvcache.Store.get (Lazy.force kv) "bench42")));
    ]

let run () =
  Harness.section "Bechamel micro-benchmarks (host wall-clock, ns/op)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ t ] -> rows := [ name; Printf.sprintf "%.1f ns" t ] :: !rows
      | _ -> ())
    results;
  Harness.table ~header:[ "operation"; "time/op" ]
    (List.sort compare !rows)
