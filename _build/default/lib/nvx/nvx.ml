module Sched = Simkern.Sched
module Space = Vmem.Space

type config = {
  replicas : int;
  port : int;
  base_port : int;
  workers_per_replica : int;
  vulnerable : bool;
}

let default_config =
  { replicas = 2; port = 11300; base_port = 11301; workers_per_replica = 2; vulnerable = false }

type t = {
  cfg : config;
  sched : Sched.t;
  servers : Kvcache.Server.t list;
  listener : Netsim.listener;
  mutable tids : Sched.tid list;
  mutable requests : int;
  mutable divergences : int;
  mutable halted : bool;
}

(* Serve one front-end client: duplicate each request to every replica,
   cross-check the replies, forward the agreed answer. *)
let rec client_session t replica_conns client =
  match Netsim.recv client with
  | None ->
      List.iter Netsim.close replica_conns;
      Netsim.close client
  | Some req ->
      t.requests <- t.requests + 1;
      List.iter (fun rc -> Netsim.send rc req) replica_conns;
      let replies = List.map Netsim.recv replica_conns in
      let agreed =
        match replies with
        | Some first :: rest when List.for_all (( = ) (Some first)) rest ->
            Some first
        | _ -> None
      in
      (match agreed with
      | Some reply ->
          Netsim.send client reply;
          client_session t replica_conns client
      | None ->
          (* Divergence (or a dead replica): the NVX monitor cannot tell
             which variant is healthy — fail stop. *)
          t.divergences <- t.divergences + 1;
          t.halted <- true;
          Netsim.close_listener t.listener;
          List.iter Netsim.close replica_conns;
          Netsim.close client)

let front_end t net =
  let rec accept_loop () =
    match Netsim.accept t.listener with
    | None -> ()
    | Some client ->
        if t.halted then Netsim.close client
        else begin
          (* One connection per replica, mirroring the client's. *)
          let replica_conns =
            List.init t.cfg.replicas (fun i ->
                Netsim.connect net ~port:(t.cfg.base_port + i))
          in
          let tid =
            Sched.spawn (Sched.current ())
              ~name:(Printf.sprintf "nvx-sess%d" (Netsim.id client))
              (fun () -> client_session t replica_conns client)
          in
          t.tids <- tid :: t.tids;
          accept_loop ()
        end
  in
  accept_loop ()

let start sched space net cfg =
  let servers =
    List.init cfg.replicas (fun i ->
        (* Each variant is its own process image; under artificial
           diversification they would differ in layout — here they differ
           in nothing but identity, which is enough for the cost story. *)
        Kvcache.Server.start sched space net
          {
            Kvcache.Server.default_config with
            variant = Kvcache.Server.Baseline;
            workers = cfg.workers_per_replica;
            port = cfg.base_port + i;
            vulnerable = cfg.vulnerable;
            image_bytes = 0;
          })
  in
  let listener = Netsim.listen net ~port:cfg.port in
  let t =
    {
      cfg;
      sched;
      servers;
      listener;
      tids = [];
      requests = 0;
      divergences = 0;
      halted = false;
    }
  in
  let fe = Sched.spawn sched ~name:"nvx-frontend" (fun () -> front_end t net) in
  t.tids <- fe :: t.tids;
  t

let stop t =
  Netsim.close_listener t.listener;
  List.iter Kvcache.Server.stop t.servers

let join t =
  List.iter Sched.join t.tids;
  List.iter Kvcache.Server.join t.servers

let busy_cycles t =
  let sessions =
    List.fold_left
      (fun acc tid ->
        match (Sched.thread_clock t.sched tid, Sched.thread_waited t.sched tid) with
        | Some c, Some w -> acc +. (c -. w)
        | _ -> acc)
      0.0 t.tids
  in
  sessions
  +. List.fold_left
       (fun acc s -> acc +. Kvcache.Server.worker_busy_cycles s)
       0.0 t.servers

let requests t = t.requests
let divergences t = t.divergences
let down t = t.halted
