(** N-variant execution baseline (§VII of the paper).

    NVX systems run multiple diversified variants of an application in
    lockstep and terminate on divergence — resilience through redundancy
    rather than compartmentalization. The paper's point is cost: "the
    high cost of replicating computations and I/O across each instance is
    impractical" for the workloads it targets. This module quantifies
    that claim: a front-end proxy duplicates every request to [n]
    independent replicas of the key-value cache, compares the replies,
    and flags divergence (which, for a memory-corrupting input, manifests
    as one replica crashing or answering differently).

    Unlike SDRaD, a detected attack still costs the whole deployment: the
    monitor's only safe response to divergence is to stop (and restart)
    the replica set. *)

type config = {
  replicas : int;
  port : int;  (** front-end port clients connect to *)
  base_port : int;  (** replicas listen on base_port .. base_port+n-1 *)
  workers_per_replica : int;
  vulnerable : bool;
}

val default_config : config

type t

val start : Simkern.Sched.t -> Vmem.Space.t -> Netsim.t -> config -> t
(** Spawn the replica servers and the front-end proxy. *)

val stop : t -> unit
val join : t -> unit

val requests : t -> int
val divergences : t -> int
(** Requests on which the replicas disagreed (or some replica was dead). *)

val down : t -> bool
(** The monitor halted the replica set after a divergence. *)

val busy_cycles : t -> float
(** CPU consumed by all replicas plus the front end. *)
