(** Phased HTTP/1.1 request parser working on simulated memory, modelled
    on NGINX's [ngx_http_parse_*] family. Parsing proceeds in phases that
    the SDRaD variant brackets with separate domain transitions, exactly
    as the paper instruments NGINX (§V-B).

    [parse_complex_uri] contains the CVE-2009-2629 analogue: when
    normalizing ["../"] segments, the vulnerable variant scans backwards
    for the previous ['/'] without a lower bound, so a URI with more
    ["../"] than path depth walks below the destination buffer — a buffer
    underflow that reads/writes foreign memory until the mapping (or the
    protection key) stops it. *)

type request_line = { meth : string; raw_uri_off : int; raw_uri_len : int; version : string }

exception Bad_request of string

val parse_request_line : Vmem.Space.t -> addr:int -> len:int -> request_line * int
(** Parse ["METHOD uri HTTP/x.y\r\n"] at [addr]; returns the request line
    and the offset just past it. @raise Bad_request on malformed input. *)

val parse_complex_uri :
  Vmem.Space.t ->
  src:int ->
  len:int ->
  dst:int ->
  dst_cap:int ->
  vulnerable:bool ->
  int
(** Normalize the URI at [src] into [dst] (percent-decoding, slash
    merging, ["."]/[".."] resolution); returns the normalized length.
    With [vulnerable:false], over-popping raises {!Bad_request}; with
    [vulnerable:true] it underflows below [dst]. *)

val parse_headers :
  Vmem.Space.t -> addr:int -> len:int -> (string * string) list * int
(** Parse header lines up to the blank line; returns headers (names
    lowercased) and the offset past the terminating CRLF CRLF. *)

val find_header : (string * string) list -> string -> string option

val validate_body : (string * string) list -> avail:int -> int
(** Body length implied by Content-Length (0 when absent), checked against
    the bytes actually present. @raise Bad_request on mismatch or on a
    malformed Content-Length. *)
