(** Static-content store for the web server, backed by the simulated
    filesystem ({!Vfs}): document bodies live in simulated "disk" blocks,
    so serving a file performs real (charged, RSS-visible) reads — the
    page-cache behaviour a real NGINX relies on. *)

type t

val create : ?fs_blocks:int -> Vmem.Space.t -> t
(** Format a fresh filesystem (default 2048 blocks = 8 MiB). *)

val add : t -> path:string -> size:int -> unit
(** Publish a document of the given size with deterministic contents.
    Parent directories are created as needed. *)

val lookup : t -> string -> int option
(** Size of the document, if it exists. *)

val read_body : t -> string -> string
(** Read a whole document out of the filesystem (charged access). *)

val vfs : t -> Vfs.t
