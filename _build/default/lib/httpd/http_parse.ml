module Space = Vmem.Space

type request_line = {
  meth : string;
  raw_uri_off : int;
  raw_uri_len : int;
  version : string;
}

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_request s)) fmt

let find_crlf space ~addr ~len =
  match Space.memchr space ~addr ~len '\r' with
  | Some cr when cr + 1 < addr + len && Space.load8 space (cr + 1) = 10 -> Some cr
  | Some _ | None -> None

let parse_request_line space ~addr ~len =
  match find_crlf space ~addr ~len with
  | None -> bad "request line: no CRLF"
  | Some cr ->
      let line = Space.read_string space addr (cr - addr) in
      (match String.split_on_char ' ' line with
      | [ meth; uri; version ] ->
          if uri = "" || uri.[0] <> '/' then bad "uri must be absolute";
          if meth <> "GET" && meth <> "HEAD" && meth <> "POST" then
            bad "unsupported method %s" meth;
          if version <> "HTTP/1.0" && version <> "HTTP/1.1" then
            bad "unsupported version %s" version;
          let uri_off = addr + String.length meth + 1 in
          ({ meth; raw_uri_off = uri_off; raw_uri_len = String.length uri; version },
           cr + 2)
      | _ -> bad "malformed request line")

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> bad "bad percent escape"

(* NGINX's ngx_http_parse_complex_uri, reduced to the behaviour that
   matters: percent-decoding, duplicate-slash merging, "." and ".."
   segment resolution with an in-place destination write pointer [u].
   Popping a segment scans backwards for the previous '/'; the vulnerable
   build omits the lower-bound check (CVE-2009-2629's underflow). *)
let parse_complex_uri space ~src ~len ~dst ~dst_cap ~vulnerable =
  let u = ref dst in
  let put c =
    if !u >= dst + dst_cap then bad "uri too long";
    Space.store8 space !u (Char.code c);
    incr u
  and get i = Char.chr (Space.load8 space (src + i)) in
  let pop_segment () =
    (* Drop the trailing "/segment/": back up over the slash, then scan
       for the previous one. *)
    u := !u - 1;
    if vulnerable then begin
      (* No lower bound: reads below [dst] until a '/' appears in foreign
         memory or the hardware objects. *)
      while Space.load8 space (!u - 1) <> Char.code '/' do
        u := !u - 1
      done;
      u := !u - 1
    end
    else begin
      if !u <= dst then bad "uri escapes root";
      while !u > dst && Space.load8 space (!u - 1) <> Char.code '/' do
        u := !u - 1
      done;
      if !u = dst then bad "uri escapes root" else u := !u - 1
    end
  in
  let n = len in
  let i = ref 0 in
  put '/';
  if n = 0 || get 0 <> '/' then bad "uri must start with /";
  incr i;
  while !i < n do
    (match get !i with
    | '/' ->
        (* merge duplicate slashes *)
        if Space.load8 space (!u - 1) <> Char.code '/' then put '/'
    | '.' when Space.load8 space (!u - 1) = Char.code '/' ->
        let next k = if !i + k < n then Some (get (!i + k)) else None in
        (match (next 1, next 2) with
        | Some '.', (Some '/' | None) ->
            (* "/../": pop the previous segment *)
            pop_segment ();
            put '/';
            i := !i + (match next 2 with Some '/' -> 2 | _ -> 1)
        | (Some '/' | None), _ ->
            (* "/./": skip *)
            i := !i + (match next 1 with Some '/' -> 1 | _ -> 0)
        | _ -> put '.')
    | '%' ->
        if !i + 2 >= n then bad "truncated escape";
        let v = (16 * hex_digit (get (!i + 1))) + hex_digit (get (!i + 2)) in
        put (Char.chr v);
        i := !i + 2
    | c -> put c);
    incr i
  done;
  !u - dst

let parse_headers space ~addr ~len =
  let rec go off acc =
    if off >= len then bad "headers: missing terminator";
    match find_crlf space ~addr:(addr + off) ~len:(len - off) with
    | None -> bad "headers: no CRLF"
    | Some cr ->
        let line_len = cr - (addr + off) in
        if line_len = 0 then (List.rev acc, off + 2)
        else begin
          let line = Space.read_string space (addr + off) line_len in
          match String.index_opt line ':' with
          | None -> bad "header without colon"
          | Some colon ->
              let name = String.lowercase_ascii (String.sub line 0 colon) in
              let value = String.trim (String.sub line (colon + 1) (String.length line - colon - 1)) in
              go (off + line_len + 2) ((name, value) :: acc)
        end
  in
  go 0 []

let find_header headers name =
  List.assoc_opt (String.lowercase_ascii name) headers

let validate_body headers ~avail =
  match find_header headers "content-length" with
  | None -> 0
  | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 0 ->
          if n <> avail then bad "content-length %d != body bytes %d" n avail
          else n
      | Some _ | None -> bad "bad content-length %S" v)
