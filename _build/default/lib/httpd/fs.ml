type t = { fs : Vfs.t }

let create ?(fs_blocks = 2048) space =
  { fs = Vfs.format space ~blocks:fs_blocks () }

let gen_body size =
  String.init size (fun i -> Char.chr (Char.code 'a' + (i mod 23)))

let rec ensure_dirs t path =
  match String.rindex_opt path '/' with
  | Some i when i > 0 ->
      let dir = String.sub path 0 i in
      if not (Vfs.exists t.fs dir) then begin
        ensure_dirs t dir;
        Vfs.mkdir t.fs dir
      end
  | Some _ | None -> ()

let add t ~path ~size =
  ensure_dirs t path;
  Vfs.create t.fs ~path ~data:(gen_body size)

let lookup t path = Vfs.file_size t.fs path
let read_body t path = Vfs.read_all t.fs path
let vfs t = t.fs
