lib/httpd/fs.ml: Char String Vfs
