lib/httpd/fs.mli: Vfs Vmem
