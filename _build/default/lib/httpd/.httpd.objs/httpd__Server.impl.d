lib/httpd/server.ml: Array Crypto Fs Hashtbl Http_parse List Logs Netsim Printf Queue Sdrad Simkern String Tlsf Vfs Vmem
