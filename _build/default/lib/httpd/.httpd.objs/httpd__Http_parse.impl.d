lib/httpd/http_parse.ml: Char List Printf String Vmem
