lib/httpd/server.mli: Fs Netsim Sdrad Simkern Vmem
