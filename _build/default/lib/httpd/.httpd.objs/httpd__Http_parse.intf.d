lib/httpd/http_parse.mli: Vmem
