(** Virtual-time cost model.

    Every simulated activity charges a number of CPU cycles to the executing
    simulated thread. The constants below were chosen to match published
    microarchitectural measurements for the paper's evaluation platform
    (Intel Xeon Silver 4116 @ 2.10 GHz): a WRPKRU write flushes the pipeline
    (ERIM and libmpk report 20–260 cycles; the paper attributes 30–50 % of a
    domain switch to it), memcpy streams at ~8–16 bytes/cycle, and an mmap
    or mprotect system call costs a few microseconds. Absolute numbers are
    not claimed — only the relative shapes — but keeping the constants in a
    realistic regime is what makes the shapes come out right. *)

type t = {
  clock_ghz : float;  (** cycles per nanosecond *)
  wrpkru : float;
      (** PKRU register write (pipeline flush); libmpk and ERIM measure
          WRPKRU in the tens of cycles on Xeon-class parts *)
  rdpkru : float;
  mem_access : float;  (** one checked load/store *)
  mem_byte : float;  (** per byte of a bulk copy/fill *)
  page_touch : float;  (** first touch of a page (soft fault) *)
  syscall : float;  (** kernel round trip (mmap/mprotect/...) *)
  mmap_per_page : float;  (** incremental cost per mapped page *)
  signal_delivery : float;  (** SEGV delivery kernel -> user handler *)
  context_save : float;  (** setjmp-like register/sigmask save *)
  context_restore : float;  (** longjmp-like restore *)
  stack_switch : float;  (** swap stack pointers on a domain transition *)
  switch_work : float;
      (** reference-monitor work per domain transition besides the PKRU
          writes: argument validation, control-data updates, spilling and
          reloading callee-saved registers. Sized so the PKRU writes make
          up 30-50 % of a switch, matching the paper's profile. *)
  thread_spawn : float;
  net_msg : float;  (** fixed loopback message cost *)
  net_byte : float;  (** per byte on the loopback *)
}

val default : t
(** 2.10 GHz Xeon-like constants. *)

val cycles_of_ns : t -> float -> float
val cycles_of_us : t -> float -> float
val cycles_of_ms : t -> float -> float
val ns_of_cycles : t -> float -> float
val us_of_cycles : t -> float -> float
val sec_of_cycles : t -> float -> float
