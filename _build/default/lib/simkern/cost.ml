type t = {
  clock_ghz : float;
  wrpkru : float;
  rdpkru : float;
  mem_access : float;
  mem_byte : float;
  page_touch : float;
  syscall : float;
  mmap_per_page : float;
  signal_delivery : float;
  context_save : float;
  context_restore : float;
  stack_switch : float;
  switch_work : float;
  thread_spawn : float;
  net_msg : float;
  net_byte : float;
}

let default =
  {
    clock_ghz = 2.10;
    wrpkru = 28.0;
    rdpkru = 20.0;
    mem_access = 1.0;
    mem_byte = 0.125;
    page_touch = 500.0;
    syscall = 3_000.0;
    mmap_per_page = 50.0;
    signal_delivery = 2_500.0;
    context_save = 60.0;
    context_restore = 60.0;
    stack_switch = 12.0;
    switch_work = 80.0;
    thread_spawn = 50_000.0;
    net_msg = 1_200.0;
    net_byte = 0.3;
  }

let cycles_of_ns t ns = ns *. t.clock_ghz
let cycles_of_us t us = cycles_of_ns t (us *. 1e3)
let cycles_of_ms t ms = cycles_of_ns t (ms *. 1e6)
let ns_of_cycles t c = c /. t.clock_ghz
let us_of_cycles t c = ns_of_cycles t c /. 1e3
let sec_of_cycles t c = ns_of_cycles t c /. 1e9
