lib/simkern/rng.ml: Array Bytes Char Int64
