lib/simkern/cost.mli:
