lib/simkern/cost.ml:
