lib/simkern/sched.mli:
