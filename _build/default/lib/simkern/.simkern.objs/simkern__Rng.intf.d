lib/simkern/rng.mli:
