lib/simkern/sched.ml: Array Effect Float Hashtbl List Option Printf Queue String
