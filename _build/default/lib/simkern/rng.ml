type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* splitmix64 output function: mix the incremented state. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Drop two bits so the result fits OCaml's 62-bit positive int range;
     the residual modulo bias for realistic bounds is < 2^-40. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  v *. 0x1.0p-53

let bool t = Int64.logand (int64 t) 1L = 1L

let char t = Char.chr (Char.code 'a' + int t 26)

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (char t)
  done;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
