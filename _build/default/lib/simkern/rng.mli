(** Deterministic, splittable pseudo-random number generator.

    A single root seed drives every source of randomness in the simulator
    (scheduler tie-breaking, workload key choice, value contents), so that a
    whole experiment is reproducible bit-for-bit. The generator is
    splitmix64, which is fast, passes BigCrush, and splits cleanly into
    independent streams. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. Used to
    hand each simulated thread or workload its own stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val char : t -> char
(** Uniform printable ASCII character (for generating payloads). *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] uniform printable characters. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
