module Space = Vmem.Space
module Api = Sdrad.Api
module Types = Sdrad.Types

exception Bad_image of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_image s)) fmt
let header_size = 12
let magic = "SIMG"

let put_u32le b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xFF))

let encode ~width ~height f =
  let buf = Buffer.create (header_size + (width * height)) in
  Buffer.add_string buf magic;
  let hdr = Bytes.create 8 in
  put_u32le hdr 0 width;
  put_u32le hdr 4 height;
  Buffer.add_bytes buf hdr;
  (* Row-major RLE: merge equal consecutive pixels, max run 255. *)
  let emit count (r, g, b) =
    Buffer.add_char buf (Char.chr count);
    Buffer.add_char buf (Char.chr r);
    Buffer.add_char buf (Char.chr g);
    Buffer.add_char buf (Char.chr b)
  in
  let pending = ref None in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let px = f x y in
      match !pending with
      | Some (count, p) when p = px && count < 255 -> pending := Some (count + 1, p)
      | Some (count, p) ->
          emit count p;
          pending := Some (1, px)
      | None -> pending := Some (1, px)
    done
  done;
  (match !pending with Some (count, p) -> emit count p | None -> ());
  Buffer.contents buf

let encode_malicious () =
  (* 0x10000 * 0x10000 pixels: w*h*3 computed in 32 bits is 0, which the
     vulnerable decoder rounds up to a minimal allocation; the run data
     then writes far beyond it. *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  let hdr = Bytes.create 8 in
  put_u32le hdr 0 0x10000;
  put_u32le hdr 4 0x10000;
  Buffer.add_bytes buf hdr;
  for _ = 1 to 800 do
    Buffer.add_char buf '\255';
    Buffer.add_string buf "\xde\xad\xbe"
  done;
  Buffer.contents buf

type decoded = { width : int; height : int; fb : int; fb_len : int }

let decode space ~alloc ~src ~len ~vulnerable =
  if len < header_size then bad "truncated header";
  if Space.read_string space src 4 <> magic then bad "bad magic";
  let width = Space.load32 space (src + 4) in
  let height = Space.load32 space (src + 8) in
  if width <= 0 || height <= 0 then bad "bad dimensions";
  let pixels = width * height in
  let fb_len =
    if vulnerable then (
      (* The bug: the size computation is done in a 32-bit temporary. *)
      let truncated = pixels * 3 land 0xFFFFFFFF in
      max 16 truncated)
    else begin
      if pixels > 1 lsl 24 then bad "image too large";
      pixels * 3
    end
  in
  let fb = alloc fb_len in
  let off = ref (src + header_size) in
  let written = ref 0 in
  while !written < pixels && !off + 4 <= src + len do
    let count = Space.load8 space !off in
    let r = Space.load8 space (!off + 1) in
    let g = Space.load8 space (!off + 2) in
    let b = Space.load8 space (!off + 3) in
    if count = 0 then bad "zero-length run";
    for _ = 1 to count do
      (* The vulnerable build trusts [pixels] and writes past [fb_len]. *)
      let base = fb + (!written * 3) in
      Space.store8 space base r;
      Space.store8 space (base + 1) g;
      Space.store8 space (base + 2) b;
      incr written
    done;
    off := !off + 4
  done;
  if !written < pixels then bad "run data short of %d pixels" (pixels - !written);
  { width; height; fb; fb_len }

let pixel space d ~x ~y =
  if x < 0 || x >= d.width || y < 0 || y >= d.height then bad "pixel out of range";
  let base = d.fb + (((y * d.width) + x) * 3) in
  (Space.load8 space base, Space.load8 space (base + 1), Space.load8 space (base + 2))

let decode_isolated sd ?(udi = 8) ~vulnerable image =
  let space = Api.space sd in
  Api.run sd ~udi
    ~opts:{ Types.default_options with heap_size = 256 * 1024 }
    ~on_rewind:(fun fault -> Result.Error fault)
    (fun () ->
      let src = Api.malloc sd ~udi (String.length image) in
      Space.store_string space src image;
      Api.enter sd udi;
      (* malloc failure behaves as in C: a NULL return that the decoder
         dereferences — a null-page SEGV the domain rewinds from. *)
      let alloc n =
        match Api.malloc sd ~udi n with
        | p -> p
        | exception (Tlsf.Out_of_memory | Failure _) -> 0
      in
      let d = decode space ~alloc ~src ~len:(String.length image) ~vulnerable in
      Api.exit_domain sd;
      (* Transient-domain pattern: merge the sub-heap into the caller so
         the framebuffer lives on; the domain itself is gone. If the
         sub-heap fails its pre-merge integrity walk (the decoder
         corrupted it without faulting), the memory is discarded and the
         incident surfaces as an error. *)
      let incidents_before = List.length (Api.incidents sd) in
      Api.destroy sd udi ~heap:`Merge;
      match List.nth_opt (List.rev (Api.incidents sd)) 0 with
      | Some fault when List.length (Api.incidents sd) > incidents_before ->
          Result.Error fault
      | _ -> Result.Ok d)
