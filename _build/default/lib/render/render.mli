(** An image decoder for untrusted input — the class of component §VI of
    the paper singles out as a prime isolation target ("video, image, and
    document renderers, due to a heightened degree of exposure").

    The format ("SIMG") is a minimal RLE-compressed 24-bit raster:
    {v
    "SIMG"  width:u32le  height:u32le  runs...
    run = count:u8 (>=1)  r:u8 g:u8 b:u8
    v}
    The runs must cover exactly [width*height] pixels.

    The vulnerable decoder commits the classic renderer bug (e.g.
    CVE-2004-0599-style): the framebuffer allocation computes
    [width * height * 3] in a 32-bit temporary, so attacker-chosen
    dimensions overflow to a tiny allocation while the decode loop writes
    the full (huge) pixel count — a heap overflow that SDRaD contains to
    the rendering domain.

    {!decode} works on simulated memory; {!decode_isolated} runs it inside
    a transient SDRaD domain and returns the pixels copied back out. *)

exception Bad_image of string

val header_size : int

val encode : width:int -> height:int -> (int -> int -> int * int * int) -> string
(** Build an image; the function gives the (r,g,b) of each (x,y). *)

val encode_malicious : unit -> string
(** Dimensions chosen so [w*h*3] overflows 32 bits to a small positive
    value, with enough run data to rampage past the real allocation. *)

type decoded = {
  width : int;
  height : int;
  fb : int;  (** framebuffer address (3 bytes per pixel, row-major) *)
  fb_len : int;
}

val decode :
  Vmem.Space.t ->
  alloc:(int -> int) ->
  src:int ->
  len:int ->
  vulnerable:bool ->
  decoded
(** Decode an image already resident at [src]; the framebuffer comes from
    [alloc]. @raise Bad_image on malformed input (the patched decoder
    rejects dimension overflows here). *)

val pixel : Vmem.Space.t -> decoded -> x:int -> y:int -> int * int * int

val decode_isolated :
  Sdrad.Api.t ->
  ?udi:int ->
  vulnerable:bool ->
  string ->
  (decoded, Sdrad.Types.fault) result
(** Run the decoder in a transient nested domain (default udi 8): the
    image bytes are copied in, the framebuffer is decoded in the domain's
    sub-heap, and on success the domain's heap is merged into the caller's
    so the framebuffer survives ([`Merge] — the transient-domain pattern
    of §III-D). A decoder fault costs only the request. *)
