(** Toy X.509 certificate verification containing an analogue of
    CVE-2022-3786 (§V-C of the paper).

    The real CVE: when OpenSSL 3.0.x processes a certificate whose
    otherName/SmtpUTF8Mailbox field contains a punycode label,
    [ossl_a2ulabel] appends a ['.'] separator to a fixed-size stack buffer
    without checking for space, allowing an attacker-controlled number of
    overflow bytes — detectable by a stack canary, which makes it a
    denial-of-service through process termination that SDRaD converts into
    a connection-scoped rewind.

    Our analogue: {!verify} decodes the certificate's punycode altname
    into a 32-byte stack buffer allocated with {!Sdrad.Api.with_stack_frame};
    the decoder bounds its own output correctly but appends the label
    separator unchecked, exactly one byte past the buffer when the decoded
    label fills it. *)

val buffer_size : int
(** The vulnerable on-stack buffer size (32). *)

val make_cert : cn:string -> altname:string -> string
(** Serialize a toy certificate. *)

val malicious_altname : string
(** A punycode altname whose decoded form fills the stack buffer exactly,
    so the unchecked separator lands on the canary. *)

val benign_altname : string

val verify : Sdrad.Api.t -> string -> bool
(** Parse and "verify" a certificate in the calling thread's current
    domain. Returns [true] for a well-formed certificate. A malicious
    altname smashes the stack canary, triggering an abnormal domain exit
    (or thread termination when run unprotected in the root domain). *)
