(** OpenSSL isolated in a persistent SDRaD domain (§IV-A, Listing 2).

    The EVP context lives in an {e inaccessible} persistent nested domain,
    so the application's cryptographic keys survive (and stay confidential
    under) faults in the rest of the program. Arguments and results cross
    the boundary according to one of the paper's three design choices:

    - {!Copy_in_out} (choice 2): both input and output are copied through
      the shared data domain — needed when the parent is inaccessible to
      the OpenSSL domain.
    - {!Read_parent} (choice 1): the OpenSSL domain reads the caller's
      input directly (the root domain is readable), only the output is
      copied back through the data domain.
    - {!Shared_buffers} (choice 3): the caller places input and output
      buffers in the shared data domain itself ({!data_malloc}), so no
      copying happens at all — the fastest option in the paper's
      evaluation.

    Every call is guarded: a fault inside the OpenSSL domain (or a stack
    canary failure) returns [Error fault]; the domain and its key material
    must then be re-created with {!recover} — this is the paper's "the
    application may only be able to recover by re-initializing the
    affected cryptographic context". *)

type choice = Copy_in_out | Read_parent | Shared_buffers

type t

val setup :
  Sdrad.Api.t ->
  ?udi:int ->
  ?data_udi:int ->
  choice:choice ->
  key:string ->
  iv:string ->
  unit ->
  t
(** Create the persistent OpenSSL domain (default udi 14), the shared data
    domain (default udi 15), and an encryption context inside the former.
    Must be called from the root domain. *)

val choice : t -> choice

val encrypt_update :
  t -> out:int -> in_:int -> inl:int -> (int, Sdrad.Types.fault) result
(** The [__wrap_EVP_EncryptUpdate] of Listing 2. [in_]/[out] are caller
    buffers — in root memory for {!Copy_in_out}/{!Read_parent}, in the
    shared data domain for {!Shared_buffers}. *)

val encrypt_final : t -> tag_out:int -> (string, Sdrad.Types.fault) result
(** Finalize; returns the tag (also written at [tag_out] when nonzero). *)

val inject_fault_next_call : t -> unit
(** Testing hook: make the next wrapped call corrupt memory inside the
    OpenSSL domain, as a stand-in for a memory-safety bug in the library. *)

val recover : t -> key:string -> iv:string -> unit
(** Re-create the domain and a fresh context after a fault. *)

val data_malloc : t -> int -> int
(** Allocate a caller-visible buffer in the shared data domain (for
    {!Shared_buffers}). *)

val data_free : t -> int -> unit
val destroy : t -> unit
