module Space = Vmem.Space
module Prot = Vmem.Prot
module Api = Sdrad.Api
module Types = Sdrad.Types

type choice = Copy_in_out | Read_parent | Shared_buffers

type t = {
  sd : Api.t;
  space : Space.t;
  udi : int;
  data_udi : int;
  ch : choice;
  mutable ctx : int;  (* context address inside the OpenSSL domain *)
  mutable healthy : bool;
  mutable fault_next : bool;
}

let domain_opts =
  {
    Types.default_options with
    access = Types.Inaccessible;
    heap_size = 64 * 1024;
  }

(* Build the domain and allocate + initialize the EVP context inside it.
   The context pointer is returned to the caller but the object itself is
   inaccessible to the parent (§IV-A "OpenSSL"). *)
let create_domain sd ~udi ~key ~iv =
  Api.run sd ~udi ~opts:domain_opts
    ~on_rewind:(fun f ->
      failwith
        (Format.asprintf "Evp_sdrad: fault during setup: %a" Types.pp_fault f))
    (fun () ->
      Api.enter sd udi;
      let ctx = Api.malloc sd ~udi Evp.ctx_size in
      Evp.encrypt_init (Api.space sd) ~ctx ~key ~iv;
      Api.exit_domain sd;
      Api.deinit sd udi;
      ctx)

let setup sd ?(udi = 14) ?(data_udi = 15) ~choice ~key ~iv () =
  Api.init_data sd ~udi:data_udi ~heap_size:(256 * 1024) ();
  Api.dprotect sd ~udi ~tddi:data_udi Prot.rw;
  let ctx = create_domain sd ~udi ~key ~iv in
  {
    sd;
    space = Api.space sd;
    udi;
    data_udi;
    ch = choice;
    ctx;
    healthy = true;
    fault_next = false;
  }

let choice t = t.ch

let recover t ~key ~iv =
  t.ctx <- create_domain t.sd ~udi:t.udi ~key ~iv;
  t.healthy <- true

let data_malloc t n = Api.malloc t.sd ~udi:t.data_udi n
let data_free t p = Api.free t.sd ~udi:t.data_udi p
let inject_fault_next_call t = t.fault_next <- true

let check_healthy t =
  if not t.healthy then
    invalid_arg "Evp_sdrad: domain faulted; call recover first"

(* Corrupt memory inside the OpenSSL domain: write past the end of the
   context allocation until the protection key stops us. *)
let sabotage t =
  t.fault_next <- false;
  let rec smash i =
    Space.store8 t.space (t.ctx + i) 0xFF;
    smash (i + 64)
  in
  smash Evp.ctx_size

let encrypt_update t ~out ~in_ ~inl =
  check_healthy t;
  Api.run t.sd ~udi:t.udi ~opts:domain_opts
    ~on_rewind:(fun fault ->
      t.healthy <- false;
      Result.Error fault)
    (fun () ->
      (* Stage the argument block in the shared data domain (Listing 2). *)
      let args_in, owned_in =
        match t.ch with
        | Copy_in_out ->
            let p = Api.malloc t.sd ~udi:t.data_udi inl in
            Space.blit t.space ~src:in_ ~dst:p ~len:inl;
            (p, true)
        | Read_parent | Shared_buffers -> (in_, false)
      in
      let args_out, owned_out =
        match t.ch with
        | Copy_in_out | Read_parent ->
            (Api.malloc t.sd ~udi:t.data_udi (inl + Evp.cipher_block_size), true)
        | Shared_buffers -> (out, false)
      in
      Api.enter t.sd t.udi;
      if t.fault_next then sabotage t;
      let outl =
        Evp.encrypt_update t.space ~ctx:t.ctx ~out:args_out ~in_:args_in ~inl
      in
      Api.exit_domain t.sd;
      if owned_out then begin
        Space.blit t.space ~src:args_out ~dst:out ~len:outl;
        Api.free t.sd ~udi:t.data_udi args_out
      end;
      if owned_in then Api.free t.sd ~udi:t.data_udi args_in;
      Api.deinit t.sd t.udi;
      Result.Ok outl)

let encrypt_final t ~tag_out =
  check_healthy t;
  Api.run t.sd ~udi:t.udi ~opts:domain_opts
    ~on_rewind:(fun fault ->
      t.healthy <- false;
      Result.Error fault)
    (fun () ->
      let staged = Api.malloc t.sd ~udi:t.data_udi 16 in
      Api.enter t.sd t.udi;
      if t.fault_next then sabotage t;
      Evp.encrypt_final t.space ~ctx:t.ctx ~tag_out:staged;
      Api.exit_domain t.sd;
      let tag = Space.read_string t.space staged 16 in
      if tag_out <> 0 then Space.blit t.space ~src:staged ~dst:tag_out ~len:16;
      Api.free t.sd ~udi:t.data_udi staged;
      Api.deinit t.sd t.udi;
      Result.Ok tag)

let destroy t =
  if t.healthy then begin
    (* The domain is dormant between calls; re-arm it so destroy sees an
       initialized instance, then drop everything. *)
    Api.run t.sd ~udi:t.udi ~opts:domain_opts
      ~on_rewind:(fun _ -> ())
      (fun () -> Api.destroy t.sd t.udi ~heap:`Discard)
  end;
  Api.destroy t.sd t.data_udi ~heap:`Discard;
  t.healthy <- false
