(** OpenSSL-EVP-style streaming cipher interface over simulated memory.

    The cipher context is a fixed-size blob living at a caller-chosen
    address in the simulated address space — typically inside an SDRaD
    domain's sub-heap, so that protection keys genuinely guard the key
    material. Each call loads the context, performs AES-256-GCM, and
    stores the updated context back; compute cost is charged to the
    calling thread at a realistic cycles-per-byte rate. *)

val ctx_size : int
val cipher_block_size : int

val aes_cycles_per_byte : float
(** Virtual cost of AES-GCM per payload byte (AES-NI-class hardware). *)

val update_fixed_cycles : float
(** Fixed virtual cost per EVP_*Update call (dispatch, parameter checks,
    context load/store). *)

val encrypt_init : Vmem.Space.t -> ctx:int -> key:string -> iv:string -> unit
(** Initialize an encryption context at [ctx] (at least {!ctx_size}
    bytes). *)

val aad_update : Vmem.Space.t -> ctx:int -> in_:int -> inl:int -> unit
(** Absorb associated (authenticated, not encrypted) data; must precede
    the payload, as in [EVP_EncryptUpdate] with a NULL output buffer. *)

val encrypt_update : Vmem.Space.t -> ctx:int -> out:int -> in_:int -> inl:int -> int
(** GCM is a stream mode: returns [inl] (bytes written at [out]). *)

val encrypt_final : Vmem.Space.t -> ctx:int -> tag_out:int -> unit
(** Write the 16-byte tag at [tag_out] and invalidate the context. *)

val decrypt_init : Vmem.Space.t -> ctx:int -> key:string -> iv:string -> unit
val decrypt_update : Vmem.Space.t -> ctx:int -> out:int -> in_:int -> inl:int -> int

val decrypt_final : Vmem.Space.t -> ctx:int -> tag:int -> bool
(** Verify the 16-byte tag at [tag]; [false] means authentication failed. *)
