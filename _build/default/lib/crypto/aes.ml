(* AES-256, encryption direction. State is a flat 16-byte array in
   column-major order: state.(4*c + r) = s[r][c] of FIPS-197. *)

let xtime b =
  let b2 = b lsl 1 in
  if b land 0x80 <> 0 then (b2 lxor 0x1b) land 0xff else b2

(* The S-box computed from first principles: multiplicative inverse in
   GF(2^8) (via log/antilog tables over the generator 3) followed by the
   affine transformation of FIPS-197 §5.1.1. *)
let sbox =
  let exp = Array.make 512 0 and log = Array.make 256 0 in
  let x = ref 1 in
  for i = 0 to 254 do
    exp.(i) <- !x;
    log.(!x) <- i;
    x := !x lxor xtime !x (* multiply by the generator 0x03 *)
  done;
  for i = 255 to 511 do
    exp.(i) <- exp.(i - 255)
  done;
  let inverse b = if b = 0 then 0 else exp.(255 - log.(b)) in
  Array.init 256 (fun b ->
      let s = inverse b in
      let r = ref 0 in
      for i = 0 to 7 do
        let bit =
          ((s lsr i) land 1)
          lxor ((s lsr ((i + 4) mod 8)) land 1)
          lxor ((s lsr ((i + 5) mod 8)) land 1)
          lxor ((s lsr ((i + 6) mod 8)) land 1)
          lxor ((s lsr ((i + 7) mod 8)) land 1)
          lxor ((0x63 lsr i) land 1)
        in
        r := !r lor (bit lsl i)
      done;
      !r)

let nr = 14 (* rounds for AES-256 *)
let nk = 8 (* key words *)

type key = int array (* 4*(nr+1) = 60 words, big-endian packed *)

let sub_word w =
  (sbox.((w lsr 24) land 0xff) lsl 24)
  lor (sbox.((w lsr 16) land 0xff) lsl 16)
  lor (sbox.((w lsr 8) land 0xff) lsl 8)
  lor sbox.(w land 0xff)

let rot_word w = ((w lsl 8) lor (w lsr 24)) land 0xFFFFFFFF

let expand key =
  if String.length key <> 32 then invalid_arg "Aes.expand: need a 32-byte key";
  let w = Array.make (4 * (nr + 1)) 0 in
  for i = 0 to nk - 1 do
    w.(i) <-
      (Char.code key.[4 * i] lsl 24)
      lor (Char.code key.[(4 * i) + 1] lsl 16)
      lor (Char.code key.[(4 * i) + 2] lsl 8)
      lor Char.code key.[(4 * i) + 3]
  done;
  let rcon = ref 1 in
  for i = nk to (4 * (nr + 1)) - 1 do
    let temp = w.(i - 1) in
    let temp =
      if i mod nk = 0 then begin
        let t = sub_word (rot_word temp) lxor (!rcon lsl 24) in
        rcon := xtime !rcon;
        t
      end
      else if i mod nk = 4 then sub_word temp
      else temp
    in
    w.(i) <- w.(i - nk) lxor temp
  done;
  w

let add_round_key st w round =
  for c = 0 to 3 do
    let word = w.((4 * round) + c) in
    st.(4 * c) <- st.(4 * c) lxor ((word lsr 24) land 0xff);
    st.((4 * c) + 1) <- st.((4 * c) + 1) lxor ((word lsr 16) land 0xff);
    st.((4 * c) + 2) <- st.((4 * c) + 2) lxor ((word lsr 8) land 0xff);
    st.((4 * c) + 3) <- st.((4 * c) + 3) lxor (word land 0xff)
  done

let sub_bytes st =
  for i = 0 to 15 do
    st.(i) <- sbox.(st.(i))
  done

let shift_rows st =
  let tmp = Array.copy st in
  for r = 1 to 3 do
    for c = 0 to 3 do
      st.((4 * c) + r) <- tmp.((4 * ((c + r) mod 4)) + r)
    done
  done

let mix_columns st =
  for c = 0 to 3 do
    let i = 4 * c in
    let a0 = st.(i) and a1 = st.(i + 1) and a2 = st.(i + 2) and a3 = st.(i + 3) in
    let m2 x = xtime x and m3 x = xtime x lxor x in
    st.(i) <- m2 a0 lxor m3 a1 lxor a2 lxor a3;
    st.(i + 1) <- a0 lxor m2 a1 lxor m3 a2 lxor a3;
    st.(i + 2) <- a0 lxor a1 lxor m2 a2 lxor m3 a3;
    st.(i + 3) <- m3 a0 lxor a1 lxor a2 lxor m2 a3
  done

let encrypt_block w buf ~src ~dst =
  let st = Array.init 16 (fun i -> Char.code (Bytes.get buf (src + i))) in
  add_round_key st w 0;
  for round = 1 to nr - 1 do
    sub_bytes st;
    shift_rows st;
    mix_columns st;
    add_round_key st w round
  done;
  sub_bytes st;
  shift_rows st;
  add_round_key st w nr;
  for i = 0 to 15 do
    Bytes.set buf (dst + i) (Char.chr st.(i))
  done

let encrypt_block_str w s =
  if String.length s <> 16 then invalid_arg "Aes.encrypt_block_str";
  let b = Bytes.of_string s in
  encrypt_block w b ~src:0 ~dst:0;
  Bytes.to_string b
