module Space = Vmem.Space
module Sched = Simkern.Sched

let ctx_size = Gcm.serialized_size + 16 (* blob + state word *)
let cipher_block_size = 16
let aes_cycles_per_byte = 1.25
let update_fixed_cycles = 180.0

let charge c = if Sched.in_thread () then Sched.charge c

let state_off = Gcm.serialized_size
let st_encrypt = 1
let st_decrypt = 2
let st_finished = 3

let load_ctx space ctx = Gcm.deserialize (Space.load_bytes space ctx Gcm.serialized_size)
let store_ctx space ctx g = Space.store_bytes space ctx (Gcm.serialize g)

let init_common space ~ctx ~key ~iv state =
  let g = Gcm.init ~key ~iv in
  store_ctx space ctx g;
  Space.store64 space (ctx + state_off) state;
  charge (update_fixed_cycles +. (40.0 *. aes_cycles_per_byte))

let encrypt_init space ~ctx ~key ~iv = init_common space ~ctx ~key ~iv st_encrypt
let decrypt_init space ~ctx ~key ~iv = init_common space ~ctx ~key ~iv st_decrypt

let check_state space ctx expected =
  let st = Space.load64 space (ctx + state_off) in
  if st <> expected then
    invalid_arg
      (Printf.sprintf "Evp: context in state %d, expected %d" st expected)

let aad_update space ~ctx ~in_ ~inl =
  let st = Space.load64 space (ctx + state_off) in
  if st <> st_encrypt && st <> st_decrypt then
    invalid_arg "Evp.aad_update: context not initialized";
  let g = load_ctx space ctx in
  Gcm.aad g (Space.read_string space in_ inl);
  store_ctx space ctx g;
  charge (update_fixed_cycles +. (aes_cycles_per_byte *. float_of_int inl))

let update space ~ctx ~out ~in_ ~inl ~encrypting =
  check_state space ctx (if encrypting then st_encrypt else st_decrypt);
  let g = load_ctx space ctx in
  let data = Space.read_string space in_ inl in
  let result = if encrypting then Gcm.encrypt g data else Gcm.decrypt g data in
  Space.store_string space out result;
  store_ctx space ctx g;
  charge (update_fixed_cycles +. (aes_cycles_per_byte *. float_of_int inl));
  inl

let encrypt_update space ~ctx ~out ~in_ ~inl =
  update space ~ctx ~out ~in_ ~inl ~encrypting:true

let decrypt_update space ~ctx ~out ~in_ ~inl =
  update space ~ctx ~out ~in_ ~inl ~encrypting:false

let encrypt_final space ~ctx ~tag_out =
  check_state space ctx st_encrypt;
  let g = load_ctx space ctx in
  Space.store_string space tag_out (Gcm.tag g);
  Space.store64 space (ctx + state_off) st_finished;
  charge (update_fixed_cycles +. (32.0 *. aes_cycles_per_byte))

let decrypt_final space ~ctx ~tag =
  check_state space ctx st_decrypt;
  let g = load_ctx space ctx in
  let computed = Gcm.tag g in
  let given = Space.read_string space tag 16 in
  Space.store64 space (ctx + state_off) st_finished;
  charge (update_fixed_cycles +. (32.0 *. aes_cycles_per_byte));
  String.equal computed given
