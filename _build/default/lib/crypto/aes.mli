(** AES-256 block cipher (FIPS-197), encryption direction only — GCM needs
    nothing else. The S-box is derived algebraically (GF(2^8) inversion
    plus the affine map) rather than transcribed, and the implementation
    is validated against the FIPS-197 and NIST GCM test vectors in the
    test suite. *)

type key
(** Expanded key schedule (60 words for the 14-round AES-256). *)

val expand : string -> key
(** @raise Invalid_argument unless the key is exactly 32 bytes. *)

val encrypt_block : key -> bytes -> src:int -> dst:int -> unit
(** Encrypt 16 bytes at [src] into 16 bytes at [dst] (may alias). *)

val encrypt_block_str : key -> string -> string
(** Convenience: one 16-byte block in, one out. *)
