(** AES-256-GCM (NIST SP 800-38D) with streaming updates.

    Supports 96-bit IVs (the only kind OpenSSL's speed benchmark uses),
    arbitrary-length associated data supplied before the payload, and
    byte-granular streaming — partial counter and GHASH blocks are carried
    in the context. Contexts serialize to a fixed-size blob so {!Evp} can
    keep them in simulated (protection-key-guarded) memory. *)

type ctx

val init : key:string -> iv:string -> ctx
(** [key] is 32 bytes, [iv] 12 bytes. *)

val aad : ctx -> string -> unit
(** Absorb associated data; must precede any payload. *)

val encrypt : ctx -> string -> string
val decrypt : ctx -> string -> string

val tag : ctx -> string
(** Finalize and return the 16-byte authentication tag. The context must
    not be used afterwards. *)

val one_shot_encrypt :
  key:string -> iv:string -> ?aad:string -> string -> string * string
(** [one_shot_encrypt ~key ~iv ~aad p] is [(ciphertext, tag)]. *)

val one_shot_decrypt :
  key:string -> iv:string -> ?aad:string -> tag:string -> string -> string option
(** [None] when the tag does not verify. *)

val serialized_size : int
val serialize : ctx -> bytes
val deserialize : bytes -> ctx
