lib/crypto/gcm.mli:
