lib/crypto/gcm.ml: Aes Bytes Char Int32 Int64 String
