lib/crypto/aes.mli:
