lib/crypto/evp_sdrad.mli: Sdrad
