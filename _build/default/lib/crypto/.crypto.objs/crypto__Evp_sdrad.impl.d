lib/crypto/evp_sdrad.ml: Evp Format Result Sdrad Vmem
