lib/crypto/evp.mli: Vmem
