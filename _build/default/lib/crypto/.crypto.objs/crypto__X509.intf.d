lib/crypto/x509.mli: Sdrad
