lib/crypto/evp.ml: Gcm Printf Simkern String Vmem
