lib/crypto/x509.ml: Char List Printf Sdrad String Vmem
