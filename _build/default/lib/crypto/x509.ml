module Space = Vmem.Space
module Api = Sdrad.Api

let buffer_size = 32

let make_cert ~cn ~altname =
  Printf.sprintf "CERT|cn=%s|altname=%s|sig=ab54a98ceb1f0ad2" cn altname

(* Decoded length equals the number of payload characters after "xn--";
   exactly [buffer_size] of them puts the unchecked '.' on the canary. *)
let malicious_altname = "xn--" ^ String.make buffer_size 'q'
let benign_altname = "xn--mnchen-3ya"

let field cert name =
  let prefix = name ^ "=" in
  let parts = String.split_on_char '|' cert in
  List.find_map
    (fun part ->
      if String.length part > String.length prefix
         && String.sub part 0 (String.length prefix) = prefix
      then Some (String.sub part (String.length prefix)
                   (String.length part - String.length prefix))
      else None)
    parts

(* The vulnerable a2ulabel analogue: decode a punycode label into [buf].
   The decode loop itself is correctly bounded to [buffer_size] bytes, but
   the label separator is appended without a bounds check — the CVE. *)
let a2ulabel sd space ~label ~buf =
  let payload = String.sub label 4 (String.length label - 4) in
  let n = String.length payload in
  let written = ref 0 in
  String.iter
    (fun c ->
      if !written < buffer_size then begin
        (* "Decode" one code point (identity transform stands in for the
           real base-36 delta decoding; length behaviour is what matters). *)
        Space.store8 space (buf + !written) (Char.code c land 0x7f);
        incr written
      end)
    payload;
  ignore n;
  (* CVE-2022-3786: unchecked separator append. *)
  Space.store8 space (buf + !written) (Char.code '.');
  ignore sd;
  !written + 1

let verify sd cert =
  let space = Api.space sd in
  match (field cert "cn", field cert "altname") with
  | Some _, Some altname ->
      let ok_sig = field cert "sig" <> None in
      if String.length altname >= 4 && String.sub altname 0 4 = "xn--" then
        Api.with_stack_frame sd buffer_size (fun buf ->
            let len = a2ulabel sd space ~label:altname ~buf in
            ignore (Space.read_string space buf (min len buffer_size));
            ok_sig)
      else ok_sig
  | _ -> false
