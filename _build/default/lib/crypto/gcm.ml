(* GHASH works on 128-bit quantities represented as (hi, lo) int64 pairs,
   big-endian: hi holds bytes 0-7. Multiplication uses the right-shift
   method of SP 800-38D §6.3 with R = 0xE1 << 120. *)

let r_poly = 0xE100000000000000L

let gmul (xh, xl) (hh, hl) =
  let zh = ref 0L and zl = ref 0L in
  let vh = ref hh and vl = ref hl in
  for i = 0 to 127 do
    let bit =
      if i < 64 then Int64.logand (Int64.shift_right_logical xh (63 - i)) 1L
      else Int64.logand (Int64.shift_right_logical xl (127 - i)) 1L
    in
    if bit = 1L then begin
      zh := Int64.logxor !zh !vh;
      zl := Int64.logxor !zl !vl
    end;
    let lsb = Int64.logand !vl 1L in
    vl :=
      Int64.logor
        (Int64.shift_right_logical !vl 1)
        (Int64.shift_left !vh 63);
    vh := Int64.shift_right_logical !vh 1;
    if lsb = 1L then vh := Int64.logxor !vh r_poly
  done;
  (!zh, !zl)

let block_of_bytes b off =
  (Bytes.get_int64_be b off, Bytes.get_int64_be b (off + 8))

let bytes_of_block (hi, lo) =
  let b = Bytes.create 16 in
  Bytes.set_int64_be b 0 hi;
  Bytes.set_int64_be b 8 lo;
  b

type ctx = {
  key : Aes.key;
  h : int64 * int64;
  tag_mask : bytes;  (* E(K, J0) *)
  counter : bytes;  (* current 16-byte counter block *)
  keystream : bytes;
  mutable ks_used : int;  (* bytes of [keystream] already consumed *)
  mutable ghash : int64 * int64;
  ct_buf : bytes;  (* partial ciphertext block awaiting GHASH *)
  mutable ct_buf_len : int;
  mutable aad_len : int;  (* bytes *)
  mutable ct_len : int;
  mutable raw_key : string;  (* kept for serialization *)
}

let inc32 counter =
  let v = Int32.to_int (Bytes.get_int32_be counter 12) land 0xFFFFFFFF in
  Bytes.set_int32_be counter 12 (Int32.of_int ((v + 1) land 0xFFFFFFFF))

let ghash_absorb ctx block =
  let x = ctx.ghash in
  let hi, lo = block in
  ctx.ghash <- gmul (Int64.logxor (fst x) hi, Int64.logxor (snd x) lo) ctx.h

let ghash_absorb_padded ctx (b : bytes) len =
  let blk = Bytes.make 16 '\000' in
  Bytes.blit b 0 blk 0 len;
  ghash_absorb ctx (block_of_bytes blk 0)

let init ~key ~iv =
  if String.length key <> 32 then invalid_arg "Gcm.init: need 32-byte key";
  if String.length iv <> 12 then invalid_arg "Gcm.init: need 12-byte IV";
  let k = Aes.expand key in
  let h = block_of_bytes (Bytes.of_string (Aes.encrypt_block_str k (String.make 16 '\000'))) 0 in
  let j0 = Bytes.make 16 '\000' in
  Bytes.blit_string iv 0 j0 0 12;
  Bytes.set j0 15 '\001';
  let tag_mask = Bytes.of_string (Aes.encrypt_block_str k (Bytes.to_string j0)) in
  let counter = Bytes.copy j0 in
  {
    key = k;
    h;
    tag_mask;
    counter;
    keystream = Bytes.make 16 '\000';
    ks_used = 16;
    ghash = (0L, 0L);
    ct_buf = Bytes.make 16 '\000';
    ct_buf_len = 0;
    aad_len = 0;
    ct_len = 0;
    raw_key = key;
  }

let absorb_aad ctx a =
  if ctx.ct_len > 0 || ctx.ct_buf_len > 0 then
    invalid_arg "Gcm.aad: associated data must precede the payload";
  let n = String.length a in
  let full = n / 16 in
  let b = Bytes.of_string a in
  for i = 0 to full - 1 do
    ghash_absorb ctx (block_of_bytes b (16 * i))
  done;
  let rem = n - (16 * full) in
  if rem > 0 then begin
    let blk = Bytes.make 16 '\000' in
    Bytes.blit b (16 * full) blk 0 rem;
    ghash_absorb ctx (block_of_bytes blk 0)
  end;
  ctx.aad_len <- ctx.aad_len + n

let aad = absorb_aad

let next_keystream ctx =
  inc32 ctx.counter;
  Bytes.blit ctx.counter 0 ctx.keystream 0 16;
  Aes.encrypt_block ctx.key ctx.keystream ~src:0 ~dst:0;
  ctx.ks_used <- 0

let absorb_ct_byte ctx c =
  Bytes.set ctx.ct_buf ctx.ct_buf_len c;
  ctx.ct_buf_len <- ctx.ct_buf_len + 1;
  if ctx.ct_buf_len = 16 then begin
    ghash_absorb ctx (block_of_bytes ctx.ct_buf 0);
    ctx.ct_buf_len <- 0
  end

let crypt ~encrypting ctx data =
  let n = String.length data in
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    if ctx.ks_used = 16 then next_keystream ctx;
    let ks = Char.code (Bytes.get ctx.keystream ctx.ks_used) in
    ctx.ks_used <- ctx.ks_used + 1;
    let p = Char.code data.[i] in
    let c = p lxor ks in
    Bytes.set out i (Char.chr c);
    absorb_ct_byte ctx (Char.chr (if encrypting then c else p))
  done;
  ctx.ct_len <- ctx.ct_len + n;
  Bytes.to_string out

let encrypt ctx data = crypt ~encrypting:true ctx data
let decrypt ctx data = crypt ~encrypting:false ctx data

let tag ctx =
  if ctx.ct_buf_len > 0 then begin
    ghash_absorb_padded ctx ctx.ct_buf ctx.ct_buf_len;
    ctx.ct_buf_len <- 0
  end;
  let lens = Bytes.create 16 in
  Bytes.set_int64_be lens 0 (Int64.of_int (8 * ctx.aad_len));
  Bytes.set_int64_be lens 8 (Int64.of_int (8 * ctx.ct_len));
  ghash_absorb ctx (block_of_bytes lens 0);
  let g = bytes_of_block ctx.ghash in
  String.init 16 (fun i ->
      Char.chr (Char.code (Bytes.get g i) lxor Char.code (Bytes.get ctx.tag_mask i)))

let one_shot_encrypt ~key ~iv ?(aad = "") p =
  let ctx = init ~key ~iv in
  if String.length aad > 0 then absorb_aad ctx aad;
  let c = encrypt ctx p in
  (c, tag ctx)

let one_shot_decrypt ~key ~iv ?(aad = "") ~tag:expected c =
  let ctx = init ~key ~iv in
  if String.length aad > 0 then absorb_aad ctx aad;
  let p = decrypt ctx c in
  if String.equal (tag ctx) expected then Some p else None

(* {1 Serialization}

   Fixed-size blob so EVP contexts can live in simulated memory. Layout:
   raw key (32) | counter (16) | keystream (16) | tag_mask (16) |
   ghash (16) | ct_buf (16) | ks_used, ct_buf_len, aad_len, ct_len (8 each). *)

let serialized_size = 32 + 16 + 16 + 16 + 16 + 16 + (4 * 8)

let serialize ctx =
  let b = Bytes.make serialized_size '\000' in
  Bytes.blit_string ctx.raw_key 0 b 0 32;
  Bytes.blit ctx.counter 0 b 32 16;
  Bytes.blit ctx.keystream 0 b 48 16;
  Bytes.blit ctx.tag_mask 0 b 64 16;
  Bytes.blit (bytes_of_block ctx.ghash) 0 b 80 16;
  Bytes.blit ctx.ct_buf 0 b 96 16;
  Bytes.set_int64_le b 112 (Int64.of_int ctx.ks_used);
  Bytes.set_int64_le b 120 (Int64.of_int ctx.ct_buf_len);
  Bytes.set_int64_le b 128 (Int64.of_int ctx.aad_len);
  Bytes.set_int64_le b 136 (Int64.of_int ctx.ct_len);
  b

let deserialize b =
  if Bytes.length b < serialized_size then invalid_arg "Gcm.deserialize";
  let raw_key = Bytes.sub_string b 0 32 in
  let key = Aes.expand raw_key in
  let h =
    block_of_bytes
      (Bytes.of_string (Aes.encrypt_block_str key (String.make 16 '\000')))
      0
  in
  {
    key;
    h;
    tag_mask = Bytes.sub b 64 16;
    counter = Bytes.sub b 32 16;
    keystream = Bytes.sub b 48 16;
    ks_used = Int64.to_int (Bytes.get_int64_le b 112);
    ghash = block_of_bytes (Bytes.sub b 80 16) 0;
    ct_buf = Bytes.sub b 96 16;
    ct_buf_len = Int64.to_int (Bytes.get_int64_le b 120);
    aad_len = Int64.to_int (Bytes.get_int64_le b 128);
    ct_len = Int64.to_int (Bytes.get_int64_le b 136);
    raw_key;
  }
