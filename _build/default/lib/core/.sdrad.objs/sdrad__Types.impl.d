lib/core/types.ml: Format Printexc Printf Vmem
