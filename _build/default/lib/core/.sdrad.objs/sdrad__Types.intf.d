lib/core/types.mli: Format Vmem
