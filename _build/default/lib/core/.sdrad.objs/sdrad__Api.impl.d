lib/core/api.ml: Fun Hashtbl Int64 List Logs Option Printf Result Simkern String Tlsf Types Vmem
