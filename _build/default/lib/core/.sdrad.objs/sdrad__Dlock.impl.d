lib/core/dlock.ml: Api Simkern Types
