lib/core/dlock.mli: Api
