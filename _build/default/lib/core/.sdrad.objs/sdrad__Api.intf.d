lib/core/api.mli: Types Vmem
