(** Rewind-aware locking (§VI "Limitations").

    The paper notes that "applications that rely on global mutexes may
    suffer from availability issues when a child domain holding a lock
    crashes and the lock is not released prior to continuation of the
    parent domain", and suggests "an SDRaD-aware locking mechanism as part
    of our library". This is that mechanism: a mutex whose acquisition
    from inside a nested domain registers an abnormal-exit cleanup, so a
    rewind releases the lock instead of deadlocking every other thread.

    A lock released by a rewind is {e poisoned}: the protected data may
    have been left half-updated by the corrupted domain, so the next
    acquirer is told (as with [std::sync::Mutex] poisoning in Rust) and
    must validate or rebuild the shared state before clearing the flag. *)

type t

val create : Api.t -> t

val acquire : t -> bool
(** Block until the lock is held. Returns [false] if the lock is
    poisoned — the previous holder was discarded by a rewind. *)

val release : t -> unit

val with_lock : t -> (poisoned:bool -> 'a) -> 'a
(** Acquire/release around [f]; [f] learns whether the lock was
    poisoned. *)

val poisoned : t -> bool
val clear_poisoned : t -> unit
val holder : t -> int option
(** Simulated thread currently holding the lock. *)
