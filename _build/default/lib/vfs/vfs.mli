(** A small Unix-like filesystem in simulated memory — the substrate the
    web server serves static content from (NGINX reads documents through
    the page cache; here the "disk" pages are simulated memory, so file
    reads carry real access costs and contribute to RSS).

    On-disk layout (4 KiB blocks):
    {v
    block 0            superblock (magic, geometry, free counts)
    blocks 1..B        block allocation bitmap
    blocks B+1..I      inode table (64-byte inodes)
    blocks I+1..N      data
    v}

    An inode holds a type tag, the size, and ten direct block pointers
    plus one single-indirect block — files up to [10*4096 + 512*4096]
    bytes (~2 MiB). Directories are files of fixed 64-byte entries
    ([inode:u32 kind:u8 name_len:u8 name:58]). Paths are absolute,
    ['/']-separated. *)

type t

exception Fs_error of string

val block_size : int
val max_file_size : int
val max_name_len : int

val format : Vmem.Space.t -> ?pkey:int -> blocks:int -> unit -> t
(** mkfs: map a fresh region of [blocks] 4-KiB blocks and initialize the
    superblock, bitmap, inode table and root directory. *)

val mkdir : t -> string -> unit
val create : t -> path:string -> data:string -> unit
(** Write a whole regular file (replacing any previous content). Parent
    directories must exist. *)

val unlink : t -> string -> unit
(** Remove a file (or an empty directory) and free its blocks. *)

val rename : t -> old_path:string -> new_path:string -> unit
(** Move an entry; replaces an existing regular file at the destination
    (POSIX semantics). Directories can be moved but not replaced. *)

val exists : t -> string -> bool
val is_dir : t -> string -> bool
val file_size : t -> string -> int option

val read : t -> path:string -> off:int -> len:int -> string
(** Read a byte range (clamped to the file size). *)

val read_all : t -> string -> string

val read_into : t -> path:string -> off:int -> len:int -> dst:int -> int
(** Read into a simulated-memory buffer (sendfile-style); returns bytes
    copied. *)

val list_dir : t -> string -> string list

(** {1 Geometry / accounting} *)

val total_blocks : t -> int
val free_blocks : t -> int
val inode_count : t -> int

val check : t -> string list
(** Consistency walk: bitmap vs reachable blocks, directory structure,
    sizes. Empty when healthy. *)
