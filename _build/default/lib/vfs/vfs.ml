module Space = Vmem.Space
module Prot = Vmem.Prot

exception Fs_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Fs_error s)) fmt
let block_size = 4096
let max_name_len = 56
let inode_size = 64
let inodes_per_block = block_size / inode_size
let dirent_size = 64
let direct_ptrs = 10
let indirect_ptrs = 512
let max_file_size = (direct_ptrs + indirect_ptrs) * block_size

(* inode kinds *)
let k_free = 0
let k_file = 1
let k_dir = 2

type t = {
  space : Space.t;
  base : int;
  blocks : int;
  bitmap_start : int;  (* block index *)
  bitmap_blocks : int;
  inode_start : int;
  ninodes : int;
  data_start : int;
  mutable alloc_hint : int;
}

let block_addr t b = t.base + (b * block_size)
let inode_addr t i = block_addr t t.inode_start + (i * inode_size)

(* {1 Superblock} *)

let sb_free_blocks t = Space.load32 t.space (t.base + 24)
let sb_set_free_blocks t v = Space.store32 t.space (t.base + 24) v

(* {1 Bitmap} *)

let bit_byte t b = block_addr t t.bitmap_start + (b / 8)

let block_used t b = Space.load8 t.space (bit_byte t b) land (1 lsl (b mod 8)) <> 0

let set_block t b used =
  let a = bit_byte t b in
  let old = Space.load8 t.space a in
  let v =
    if used then old lor (1 lsl (b mod 8)) else old land lnot (1 lsl (b mod 8))
  in
  Space.store8 t.space a v

let alloc_block t =
  let rec scan b wrapped =
    if b >= t.blocks then if wrapped then err "filesystem full" else scan t.data_start true
    else if not (block_used t b) then begin
      set_block t b true;
      sb_set_free_blocks t (sb_free_blocks t - 1);
      t.alloc_hint <- b + 1;
      (* Fresh blocks read as zero. *)
      Space.fill t.space ~addr:(block_addr t b) ~len:block_size '\000';
      b
    end
    else scan (b + 1) wrapped
  in
  scan (max t.data_start t.alloc_hint) false

let free_block t b =
  if not (block_used t b) then err "double block free (%d)" b;
  set_block t b false;
  sb_set_free_blocks t (sb_free_blocks t + 1);
  if b < t.alloc_hint then t.alloc_hint <- b

(* {1 Inodes} *)

let inode_kind t i = Space.load8 t.space (inode_addr t i)
let set_inode_kind t i k = Space.store8 t.space (inode_addr t i) k
let inode_file_size t i = Space.load64 t.space (inode_addr t i + 8)
let set_inode_size t i v = Space.store64 t.space (inode_addr t i + 8) v
let direct_slot t i j = inode_addr t i + 16 + (4 * j)
let indirect_slot t i = inode_addr t i + 16 + (4 * direct_ptrs)

let alloc_inode t kind =
  let rec scan i =
    if i >= t.ninodes then err "out of inodes"
    else if inode_kind t i = k_free then begin
      let a = inode_addr t i in
      Space.fill t.space ~addr:a ~len:inode_size '\000';
      set_inode_kind t i kind;
      i
    end
    else scan (i + 1)
  in
  scan 0

(* Ordered data-block list of an inode. *)
let inode_blocks t i =
  let size = inode_file_size t i in
  let n = (size + block_size - 1) / block_size in
  List.init n (fun j ->
      if j < direct_ptrs then Space.load32 t.space (direct_slot t i j)
      else
        let ind = Space.load32 t.space (indirect_slot t i) in
        Space.load32 t.space (block_addr t ind + (4 * (j - direct_ptrs))))

let free_inode_data t i =
  List.iter (free_block t) (inode_blocks t i);
  let size = inode_file_size t i in
  if size > direct_ptrs * block_size then
    free_block t (Space.load32 t.space (indirect_slot t i));
  set_inode_size t i 0

(* Replace an inode's contents wholesale. *)
let write_inode_data t i data =
  let size = String.length data in
  if size > max_file_size then err "file too large (%d bytes)" size;
  free_inode_data t i;
  let nblocks = (size + block_size - 1) / block_size in
  let indirect =
    if nblocks > direct_ptrs then begin
      let ind = alloc_block t in
      Space.store32 t.space (indirect_slot t i) ind;
      Some ind
    end
    else None
  in
  for j = 0 to nblocks - 1 do
    let b = alloc_block t in
    (if j < direct_ptrs then Space.store32 t.space (direct_slot t i j) b
     else
       match indirect with
       | Some ind -> Space.store32 t.space (block_addr t ind + (4 * (j - direct_ptrs))) b
       | None -> assert false);
    let off = j * block_size in
    let chunk = min block_size (size - off) in
    Space.store_string t.space (block_addr t b) (String.sub data off chunk)
  done;
  set_inode_size t i size

let read_inode_range t i ~off ~len =
  let size = inode_file_size t i in
  let off = max 0 off in
  let len = max 0 (min len (size - off)) in
  if len = 0 then ""
  else begin
    let buf = Buffer.create len in
    let blocks = Array.of_list (inode_blocks t i) in
    let pos = ref off in
    while !pos < off + len do
      let j = !pos / block_size in
      let in_block = !pos mod block_size in
      let chunk = min (block_size - in_block) (off + len - !pos) in
      Buffer.add_string buf
        (Space.read_string t.space (block_addr t blocks.(j) + in_block) chunk);
      pos := !pos + chunk
    done;
    Buffer.contents buf
  end

(* {1 Directories} *)

type dirent = { d_ino : int; d_kind : int; d_name : string }

let read_dirents t i =
  let raw = read_inode_range t i ~off:0 ~len:(inode_file_size t i) in
  let n = String.length raw / dirent_size in
  List.init n (fun j ->
      let at = j * dirent_size in
      let d_ino =
        Char.code raw.[at]
        lor (Char.code raw.[at + 1] lsl 8)
        lor (Char.code raw.[at + 2] lsl 16)
        lor (Char.code raw.[at + 3] lsl 24)
      in
      let d_kind = Char.code raw.[at + 4] in
      let name_len = Char.code raw.[at + 5] in
      { d_ino; d_kind; d_name = String.sub raw (at + 8) name_len })

let write_dirents t i entries =
  let buf = Buffer.create (List.length entries * dirent_size) in
  List.iter
    (fun e ->
      let b = Bytes.make dirent_size '\000' in
      Bytes.set b 0 (Char.chr (e.d_ino land 0xFF));
      Bytes.set b 1 (Char.chr ((e.d_ino lsr 8) land 0xFF));
      Bytes.set b 2 (Char.chr ((e.d_ino lsr 16) land 0xFF));
      Bytes.set b 3 (Char.chr ((e.d_ino lsr 24) land 0xFF));
      Bytes.set b 4 (Char.chr e.d_kind);
      Bytes.set b 5 (Char.chr (String.length e.d_name));
      Bytes.blit_string e.d_name 0 b 8 (String.length e.d_name);
      Buffer.add_bytes buf b)
    entries;
  write_inode_data t i (Buffer.contents buf)

let split_path path =
  if path = "" || path.[0] <> '/' then err "path must be absolute: %S" path;
  String.split_on_char '/' path |> List.filter (fun c -> c <> "")

let validate_name name =
  if name = "" || String.length name > max_name_len then err "bad name %S" name;
  if String.contains name '/' then err "name contains '/'"

(* Resolve a path to an inode; the root directory is inode 0. *)
let lookup t path =
  let rec walk ino = function
    | [] -> Some ino
    | comp :: rest ->
        if inode_kind t ino <> k_dir then None
        else
          let entries = read_dirents t ino in
          (match List.find_opt (fun e -> e.d_name = comp) entries with
          | Some e -> walk e.d_ino rest
          | None -> None)
  in
  walk 0 (split_path path)

let lookup_parent t path =
  match List.rev (split_path path) with
  | [] -> err "cannot operate on /"
  | name :: rev_dir -> (
      validate_name name;
      let dir_path = "/" ^ String.concat "/" (List.rev rev_dir) in
      match lookup t dir_path with
      | Some ino when inode_kind t ino = k_dir -> (ino, name)
      | Some _ -> err "%s: not a directory" dir_path
      | None -> err "%s: no such directory" dir_path)

(* {1 Public operations} *)

let format space ?(pkey = 0) ~blocks () =
  if blocks < 8 then invalid_arg "Vfs.format: need at least 8 blocks";
  let base = Space.mmap space ~len:(blocks * block_size) ~prot:Prot.rw ~pkey in
  let bitmap_blocks = (blocks + (block_size * 8) - 1) / (block_size * 8) in
  let inode_blocks_count = max 1 (blocks / 64) in
  let ninodes = inode_blocks_count * inodes_per_block in
  let data_start = 1 + bitmap_blocks + inode_blocks_count in
  let t =
    {
      space;
      base;
      blocks;
      bitmap_start = 1;
      bitmap_blocks;
      inode_start = 1 + bitmap_blocks;
      ninodes;
      data_start;
      alloc_hint = data_start;
    }
  in
  (* Superblock. *)
  Space.store_string space base "SFS1";
  Space.store32 space (base + 4) blocks;
  Space.store32 space (base + 8) t.bitmap_start;
  Space.store32 space (base + 12) bitmap_blocks;
  Space.store32 space (base + 16) t.inode_start;
  Space.store32 space (base + 20) ninodes;
  sb_set_free_blocks t blocks;
  (* Reserve the metadata blocks in the bitmap. *)
  for b = 0 to data_start - 1 do
    set_block t b true;
    sb_set_free_blocks t (sb_free_blocks t - 1)
  done;
  (* Root directory: inode 0, empty. *)
  let root = alloc_inode t k_dir in
  assert (root = 0);
  t

let mkdir t path =
  let parent, name = lookup_parent t path in
  let entries = read_dirents t parent in
  if List.exists (fun e -> e.d_name = name) entries then err "%s: exists" path;
  let ino = alloc_inode t k_dir in
  write_dirents t parent (entries @ [ { d_ino = ino; d_kind = k_dir; d_name = name } ])

let create t ~path ~data =
  let parent, name = lookup_parent t path in
  let entries = read_dirents t parent in
  match List.find_opt (fun e -> e.d_name = name) entries with
  | Some e when e.d_kind = k_dir -> err "%s: is a directory" path
  | Some e -> write_inode_data t e.d_ino data
  | None ->
      let ino = alloc_inode t k_file in
      write_inode_data t ino data;
      write_dirents t parent
        (entries @ [ { d_ino = ino; d_kind = k_file; d_name = name } ])

let unlink t path =
  let parent, name = lookup_parent t path in
  let entries = read_dirents t parent in
  match List.find_opt (fun e -> e.d_name = name) entries with
  | None -> err "%s: no such entry" path
  | Some e ->
      if e.d_kind = k_dir && read_dirents t e.d_ino <> [] then
        err "%s: directory not empty" path;
      free_inode_data t e.d_ino;
      set_inode_kind t e.d_ino k_free;
      write_dirents t parent (List.filter (fun x -> x.d_name <> name) entries)

let rename t ~old_path ~new_path =
  let old_parent, old_name = lookup_parent t old_path in
  let entries = read_dirents t old_parent in
  match List.find_opt (fun e -> e.d_name = old_name) entries with
  | None -> err "%s: no such entry" old_path
  | Some moving ->
      if
        moving.d_kind = k_dir
        && String.length new_path > String.length old_path
        && String.sub new_path 0 (String.length old_path + 1) = old_path ^ "/"
      then err "%s: cannot move a directory into itself" old_path;
      let new_parent, new_name = lookup_parent t new_path in
      let dest_entries =
        if new_parent = old_parent then
          List.filter (fun e -> e.d_name <> old_name) entries
        else read_dirents t new_parent
      in
      (match List.find_opt (fun e -> e.d_name = new_name) dest_entries with
      | Some existing ->
          if existing.d_kind = k_dir || moving.d_kind = k_dir then
            err "%s: cannot replace" new_path
          else begin
            free_inode_data t existing.d_ino;
            set_inode_kind t existing.d_ino k_free
          end
      | None -> ());
      let dest_entries =
        List.filter (fun e -> e.d_name <> new_name) dest_entries
      in
      write_dirents t new_parent
        (dest_entries @ [ { moving with d_name = new_name } ]);
      if new_parent <> old_parent then
        write_dirents t old_parent
          (List.filter (fun e -> e.d_name <> old_name) entries)

let exists t path = match lookup t path with Some _ -> true | None -> false

let is_dir t path =
  match lookup t path with
  | Some ino -> inode_kind t ino = k_dir
  | None -> false

let file_size t path =
  match lookup t path with
  | Some ino when inode_kind t ino = k_file -> Some (inode_file_size t ino)
  | Some _ | None -> None

let read t ~path ~off ~len =
  match lookup t path with
  | Some ino when inode_kind t ino = k_file -> read_inode_range t ino ~off ~len
  | Some _ -> err "%s: not a regular file" path
  | None -> err "%s: no such file" path

let read_all t path = read t ~path ~off:0 ~len:max_file_size

let read_into t ~path ~off ~len ~dst =
  let s = read t ~path ~off ~len in
  Space.store_string t.space dst s;
  String.length s

let list_dir t path =
  match lookup t path with
  | Some ino when inode_kind t ino = k_dir ->
      List.map (fun e -> e.d_name) (read_dirents t ino)
  | Some _ -> err "%s: not a directory" path
  | None -> err "%s: no such directory" path

let total_blocks t = t.blocks
let free_blocks t = sb_free_blocks t

let inode_count t =
  let rec count i acc =
    if i >= t.ninodes then acc
    else count (i + 1) (if inode_kind t i <> k_free then acc + 1 else acc)
  in
  count 0 0

let check t =
  let errors = ref [] in
  let errf fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let referenced = Hashtbl.create 64 in
  let reference b who =
    if b < t.data_start || b >= t.blocks then errf "%s: block %d out of range" who b
    else if Hashtbl.mem referenced b then errf "block %d doubly referenced" b
    else Hashtbl.replace referenced b who
  in
  (* Walk the directory tree from the root. *)
  let seen_inodes = Hashtbl.create 64 in
  let rec walk ino who =
    if Hashtbl.mem seen_inodes ino then errf "%s: inode %d reached twice" who ino
    else begin
      Hashtbl.replace seen_inodes ino ();
      List.iter (fun b -> reference b who) (inode_blocks t ino);
      if inode_file_size t ino > direct_ptrs * block_size then
        reference (Space.load32 t.space (indirect_slot t ino)) (who ^ "(ind)");
      if inode_kind t ino = k_dir then
        List.iter
          (fun e ->
            if e.d_ino >= t.ninodes then errf "%s/%s: bad inode" who e.d_name
            else if inode_kind t e.d_ino = k_free then
              errf "%s/%s: dangling entry" who e.d_name
            else walk e.d_ino (who ^ "/" ^ e.d_name))
          (read_dirents t ino)
    end
  in
  walk 0 "";
  (* Bitmap agreement. *)
  let free = ref 0 in
  for b = 0 to t.blocks - 1 do
    let used = block_used t b in
    if not used then incr free;
    if b >= t.data_start then begin
      if used && not (Hashtbl.mem referenced b) then errf "block %d leaked" b;
      if (not used) && Hashtbl.mem referenced b then errf "block %d used but free" b
    end
  done;
  if !free <> sb_free_blocks t then
    errf "free count mismatch: bitmap %d, superblock %d" !free (sb_free_blocks t);
  List.rev !errors
