lib/workload/ycsb.mli: Netsim Simkern
