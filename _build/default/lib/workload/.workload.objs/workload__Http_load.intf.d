lib/workload/http_load.mli: Netsim Simkern
