lib/workload/http_load.ml: List Netsim Printf Simkern String
