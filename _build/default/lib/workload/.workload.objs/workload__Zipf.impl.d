lib/workload/zipf.ml: Simkern
