lib/workload/ycsb.ml: Array Bytes Kvcache List Netsim Printf Simkern String Zipf
