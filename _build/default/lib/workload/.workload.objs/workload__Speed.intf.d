lib/workload/speed.mli: Crypto Sdrad Vmem
