lib/workload/zipf.mli: Simkern
