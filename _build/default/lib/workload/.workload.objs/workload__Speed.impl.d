lib/workload/speed.ml: Char Crypto Format Sdrad Simkern String Vmem
