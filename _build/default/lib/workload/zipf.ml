type t = {
  rng : Simkern.Rng.t;
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
}

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. (float_of_int i ** theta))
  done;
  !acc

let create rng ~n ~theta =
  if n < 2 then invalid_arg "Zipf.create: need n >= 2";
  if theta <= 0.0 || theta >= 1.0 then invalid_arg "Zipf.create: theta in (0,1)";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { rng; n; theta; alpha; zetan; eta }

let next t =
  let u = Simkern.Rng.float t.rng in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. (0.5 ** t.theta) then 1
  else
    let v =
      float_of_int t.n *. (((t.eta *. u) -. t.eta +. 1.0) ** t.alpha)
    in
    min (t.n - 1) (int_of_float v)
