module Sched = Simkern.Sched

type config = {
  connections : int;
  requests_per_conn : int;
  path : string;
  port : int;
  client_cycles : float;
}

let default_config =
  {
    connections = 75;
    requests_per_conn = 40;
    path = "/index.html";
    port = 8080;
    client_cycles = 1_500.0;
  }

type results = { ok : int; failures : int; cycles : float }

let request ~path =
  Printf.sprintf "GET %s HTTP/1.1\r\nHost: bench.local\r\nUser-Agent: simbench/1.0\r\n\r\n" path

let request_with_headers ~path headers =
  let hdrs =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  Printf.sprintf "GET %s HTTP/1.1\r\nHost: bench.local\r\n%s\r\n" path hdrs

let is_200 reply =
  String.length reply >= 12 && String.sub reply 9 3 = "200"

let launch sched net cfg ~on_done () =
  let results = ref None in
  let ok = ref 0 and failures = ref 0 in
  let lock = Sched.Mutex.create () in
  let client _i () =
    let conn = ref (Netsim.connect net ~port:cfg.port) in
    let req = request ~path:cfg.path in
    for _ = 1 to cfg.requests_per_conn do
      Sched.charge cfg.client_cycles;
      Netsim.send !conn req;
      match Netsim.recv !conn with
      | Some reply when is_200 reply ->
          Sched.Mutex.with_lock lock (fun () -> incr ok)
      | Some _ -> Sched.Mutex.with_lock lock (fun () -> incr failures)
      | None ->
          (* Dropped (e.g. worker crash): reconnect, count the failure. *)
          Sched.Mutex.with_lock lock (fun () -> incr failures);
          conn := Netsim.connect net ~port:cfg.port
    done;
    Netsim.close !conn
  in
  let orchestrator () =
    let tids =
      List.init cfg.connections (fun i ->
          Sched.spawn sched ~name:(Printf.sprintf "ab%d" i) (client i))
    in
    List.iter Sched.join tids;
    let cycles = Sched.now () in
    on_done ();
    results := Some { ok = !ok; failures = !failures; cycles }
  in
  let _ = Sched.spawn sched ~name:"ab-orchestrator" orchestrator in
  fun () ->
    match !results with
    | Some r -> r
    | None -> failwith "Http_load: simulation did not complete"
