(** Zipfian request distribution (Gray et al.'s rejection-free method, the
    one YCSB uses). Item 0 is the most popular. *)

type t

val create : Simkern.Rng.t -> n:int -> theta:float -> t
(** [theta] in (0,1); YCSB's default skew is 0.99. *)

val next : t -> int
(** A sample in [\[0, n)]. *)
