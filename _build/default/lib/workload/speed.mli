(** [openssl speed]-style harness for aes-256-gcm via EVP_EncryptUpdate
    (§V-C): measures encryptions across input sizes for the native library
    and for each SDRaD isolation design choice. Durations are virtual
    time, so the relative overheads are deterministic. *)

type mode =
  | Native
  | Isolated of Crypto.Evp_sdrad.choice

val mode_name : mode -> string

type row = {
  mode : mode;
  size : int;
  iterations : int;
  cycles : float;
  ops_per_sec : float;
  mb_per_sec : float;
}

val measure :
  Vmem.Space.t ->
  ?sdrad:Sdrad.Api.t ->
  mode ->
  size:int ->
  iterations:int ->
  row
(** Run [iterations] EVP_EncryptUpdate calls of [size] bytes. Must be
    called from inside a simulated thread. [sdrad] is required for
    {!Isolated} modes. *)
