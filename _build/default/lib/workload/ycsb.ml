module Sched = Simkern.Sched
module Rng = Simkern.Rng

type distribution = Zipfian | Uniform | Latest

type config = {
  records : int;
  value_size : int;
  read_fraction : float;
  operations : int;
  clients : int;
  distribution : distribution;
  insert_new : bool;
  zipf_theta : float;
  port : int;
  seed : int;
  client_cycles : float;
}

let default_config =
  {
    records = 2_000;
    value_size = 1024;
    read_fraction = 0.95;
    operations = 10_000;
    clients = 16;
    distribution = Zipfian;
    insert_new = false;
    zipf_theta = 0.99;
    port = 11211;
    seed = 42;
    client_cycles = 2_000.0;
  }

let workload_a = { default_config with read_fraction = 0.5 }
let workload_b = default_config
let workload_c = { default_config with read_fraction = 1.0 }

let workload_d =
  { default_config with distribution = Latest; insert_new = true }

type results = {
  load_ops : int;
  load_cycles : float;
  run_ops : int;
  run_cycles : float;
  failures : int;
  run_latencies : float list;
}

let key_of i = Printf.sprintf "user%08d" i

(* One deterministic value body per config; per-key uniqueness comes from
   a stamped prefix, so we avoid generating megabytes of random data. *)
let value_for ~base ~value_size i =
  let stamp = Printf.sprintf "<%08d>" i in
  if value_size <= String.length stamp then String.sub stamp 0 value_size
  else stamp ^ String.sub base 0 (value_size - String.length stamp)

let request c req =
  Netsim.send c req;
  Netsim.recv c

let launch sched net cfg ~on_done () =
  let results = ref None in
  let failures = ref 0 in
  let fail_lock = Sched.Mutex.create () in
  let bump_failures () =
    Sched.Mutex.with_lock fail_lock (fun () -> incr failures)
  in
  let base_rng = Rng.create cfg.seed in
  let base_value = Bytes.to_string (Rng.bytes base_rng (max 16 cfg.value_size)) in
  let load_client i () =
    let per = cfg.records / cfg.clients in
    let lo = i * per in
    let hi = if i = cfg.clients - 1 then cfg.records else lo + per in
    let c = Netsim.connect net ~port:cfg.port in
    let rec go k =
      if k < hi then begin
        Sched.charge cfg.client_cycles;
        let value = value_for ~base:base_value ~value_size:cfg.value_size k in
        match request c (Kvcache.Proto.fmt_set ~key:(key_of k) ~flags:0 ~value) with
        | Some r when Kvcache.Proto.parse_reply r = Kvcache.Proto.Stored ->
            go (k + 1)
        | Some _ | None -> bump_failures ()
      end
    in
    go lo;
    Netsim.close c
  in
  let latencies : float list ref array = Array.init cfg.clients (fun _ -> ref []) in
  (* Highest key inserted so far, shared between clients (workload D). *)
  let key_count = ref cfg.records in
  let key_lock = Sched.Mutex.create () in
  let run_client i () =
    let rng = Rng.create (cfg.seed + (1000 * i) + 7) in
    let zipf = Zipf.create rng ~n:cfg.records ~theta:cfg.zipf_theta in
    let pick () =
      match cfg.distribution with
      | Zipfian -> Zipf.next zipf
      | Uniform -> Rng.int rng cfg.records
      | Latest ->
          (* The most popular record is the most recent one. *)
          let n = !key_count in
          max 0 (n - 1 - Zipf.next zipf)
    in
    let fresh_key () =
      Sched.Mutex.with_lock key_lock (fun () ->
          let k = !key_count in
          key_count := k + 1;
          k)
    in
    let per = cfg.operations / cfg.clients in
    let c = Netsim.connect net ~port:cfg.port in
    let samples = latencies.(i) in
    let rec go k =
      if k < per then begin
        Sched.charge cfg.client_cycles;
        let t0 = Sched.now () in
        let reply =
          if Rng.float rng < cfg.read_fraction then
            request c (Kvcache.Proto.fmt_get (key_of (pick ())))
          else
            let target = if cfg.insert_new then fresh_key () else pick () in
            let value =
              value_for ~base:base_value ~value_size:cfg.value_size target
            in
            request c (Kvcache.Proto.fmt_set ~key:(key_of target) ~flags:0 ~value)
        in
        samples := (Sched.now () -. t0) :: !samples;
        match reply with
        | Some r -> (
            match Kvcache.Proto.parse_reply r with
            | Kvcache.Proto.Failed _ ->
                bump_failures ();
                go (k + 1)
            | _ -> go (k + 1))
        | None -> bump_failures ()
      end
    in
    go 0;
    Netsim.close c
  in
  let orchestrator () =
    let t_start = Sched.now () in
    let spawn_phase mk =
      let tids =
        List.init cfg.clients (fun i ->
            Sched.spawn sched ~name:(Printf.sprintf "ycsb%d" i) (mk i))
      in
      List.iter Sched.join tids
    in
    spawn_phase load_client;
    let t_load = Sched.now () in
    spawn_phase run_client;
    let t_all = Sched.now () in
    on_done ();
    results :=
      Some
        {
          load_ops = cfg.records;
          load_cycles = t_load -. t_start;
          run_ops = cfg.operations;
          run_cycles = t_all -. t_load;
          failures = !failures;
          run_latencies =
            Array.fold_left (fun acc r -> List.rev_append !r acc) [] latencies;
        }
  in
  let _ = Sched.spawn sched ~name:"ycsb-orchestrator" orchestrator in
  fun () ->
    match !results with
    | Some r -> r
    | None -> failwith "Ycsb: simulation did not complete"
