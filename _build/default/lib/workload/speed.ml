module Sched = Simkern.Sched
module Space = Vmem.Space
module Prot = Vmem.Prot
module Api = Sdrad.Api
module Types = Sdrad.Types

type mode = Native | Isolated of Crypto.Evp_sdrad.choice

let mode_name = function
  | Native -> "native"
  | Isolated Crypto.Evp_sdrad.Copy_in_out -> "sdrad/copy-in-out"
  | Isolated Crypto.Evp_sdrad.Read_parent -> "sdrad/read-parent"
  | Isolated Crypto.Evp_sdrad.Shared_buffers -> "sdrad/shared"

type row = {
  mode : mode;
  size : int;
  iterations : int;
  cycles : float;
  ops_per_sec : float;
  mb_per_sec : float;
}

let key = String.init 32 (fun i -> Char.chr (i * 7 mod 256))
let iv = String.init 12 (fun i -> Char.chr (i * 13 mod 256))

let mk_row ~mode ~size ~iterations ~cycles space =
  let cost = Space.cost space in
  let secs = Simkern.Cost.sec_of_cycles cost cycles in
  {
    mode;
    size;
    iterations;
    cycles;
    ops_per_sec = float_of_int iterations /. secs;
    mb_per_sec = float_of_int (iterations * size) /. secs /. 1048576.0;
  }

let measure_native space ~size ~iterations =
  let region = Space.mmap space ~len:(Crypto.Evp.ctx_size + (2 * (size + 64)) + 4096)
      ~prot:Prot.rw ~pkey:0 in
  let ctx = region in
  let inp = region + Crypto.Evp.ctx_size + 64 in
  let out = inp + size + 64 in
  Space.fill space ~addr:inp ~len:(max 1 size) 'p';
  Crypto.Evp.encrypt_init space ~ctx ~key ~iv;
  (* Warm-up to exclude first-touch page faults, as openssl speed's timing
     loop effectively does. *)
  ignore (Crypto.Evp.encrypt_update space ~ctx ~out ~in_:inp ~inl:size);
  let t0 = Sched.now () in
  for _ = 1 to iterations do
    ignore (Crypto.Evp.encrypt_update space ~ctx ~out ~in_:inp ~inl:size)
  done;
  let cycles = Sched.now () -. t0 in
  Space.munmap space region;
  cycles

let measure_isolated space sd choice ~size ~iterations =
  let iso = Crypto.Evp_sdrad.setup sd ~choice ~key ~iv () in
  let in_, out =
    match choice with
    | Crypto.Evp_sdrad.Shared_buffers ->
        ( Crypto.Evp_sdrad.data_malloc iso (size + 8),
          Crypto.Evp_sdrad.data_malloc iso (size + Crypto.Evp.cipher_block_size) )
    | _ ->
        let buf = Api.malloc sd ~udi:Types.root_udi ((2 * (size + 64)) + 16) in
        (buf, buf + size + 64)
  in
  Space.fill space ~addr:in_ ~len:(max 1 size) 'p';
  (match Crypto.Evp_sdrad.encrypt_update iso ~out ~in_ ~inl:size with
  | Ok _ -> ()
  | Error f -> failwith (Format.asprintf "speed: %a" Types.pp_fault f));
  let t0 = Sched.now () in
  for _ = 1 to iterations do
    match Crypto.Evp_sdrad.encrypt_update iso ~out ~in_ ~inl:size with
    | Ok _ -> ()
    | Error f -> failwith (Format.asprintf "speed: %a" Types.pp_fault f)
  done;
  let cycles = Sched.now () -. t0 in
  (match choice with
  | Crypto.Evp_sdrad.Shared_buffers ->
      Crypto.Evp_sdrad.data_free iso in_;
      Crypto.Evp_sdrad.data_free iso out
  | _ -> Api.free sd ~udi:Types.root_udi in_);
  Crypto.Evp_sdrad.destroy iso;
  cycles

let measure space ?sdrad mode ~size ~iterations =
  let cycles =
    match mode with
    | Native -> measure_native space ~size ~iterations
    | Isolated choice -> (
        match sdrad with
        | Some sd -> measure_isolated space sd choice ~size ~iterations
        | None -> invalid_arg "Speed.measure: Isolated mode needs ~sdrad")
  in
  mk_row ~mode ~size ~iterations ~cycles space
