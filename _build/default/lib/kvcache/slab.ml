module Space = Vmem.Space

let slab_page_size = 64 * 1024

(* Size classes: 96 bytes growing by 1.25, 8-byte aligned, up to 16 KiB. *)
let class_sizes =
  let rec build acc size =
    if size > 16 * 1024 then List.rev acc
    else build (size :: acc) ((size * 5 / 4 + 7) land lnot 7)
  in
  Array.of_list (build [] 96)

let max_chunk_size = class_sizes.(Array.length class_sizes - 1)

type t = {
  space : Space.t;
  alloc_page : int -> int;
  max_bytes : int;  (* max_int = unlimited *)
  free_heads : int array;  (* per class, 0 = empty *)
  mutable pages : int;
  mutable in_use : int;
}

let create ?(max_bytes = max_int) space ~alloc_page =
  {
    space;
    alloc_page;
    max_bytes;
    free_heads = Array.make (Array.length class_sizes) 0;
    pages = 0;
    in_use = 0;
  }

let class_of size =
  let rec find i =
    if i >= Array.length class_sizes then None
    else if class_sizes.(i) >= size then Some i
    else find (i + 1)
  in
  find 0

let chunk_size _t size = Option.map (fun i -> class_sizes.(i)) (class_of size)

let can_grow t = ((t.pages + 1) * slab_page_size) <= t.max_bytes

let at_capacity t size =
  match class_of size with
  | None -> true
  | Some idx -> t.free_heads.(idx) = 0 && not (can_grow t)

let grow t idx =
  let page = t.alloc_page slab_page_size in
  t.pages <- t.pages + 1;
  let csize = class_sizes.(idx) in
  let nchunks = slab_page_size / csize in
  (* Thread every chunk onto the class free list (next pointer in the
     chunk's first word). *)
  for i = nchunks - 1 downto 0 do
    let chunk = page + (i * csize) in
    Space.store64 t.space chunk t.free_heads.(idx);
    t.free_heads.(idx) <- chunk
  done

let alloc t size =
  match class_of size with
  | None -> None
  | Some idx ->
      if t.free_heads.(idx) = 0 && can_grow t then grow t idx;
      let chunk = t.free_heads.(idx) in
      if chunk = 0 then None
      else begin
        t.free_heads.(idx) <- Space.load64 t.space chunk;
        t.in_use <- t.in_use + 1;
        Some chunk
      end

let free t ~addr ~size =
  match class_of size with
  | None -> invalid_arg "Slab.free: size out of range"
  | Some idx ->
      Space.store64 t.space addr t.free_heads.(idx);
      t.free_heads.(idx) <- addr;
      t.in_use <- t.in_use - 1

let pages_allocated t = t.pages
let chunks_in_use t = t.in_use
