(** The in-memory database: a chained hash table over slab-allocated
    items, all resident in simulated memory.

    Items carry the hash-chain link, the LRU links (Memcached evicts the
    least-recently-used item under memory pressure) and their metadata in
    a 40-byte header, all in simulated memory:
    {v
    +0   h_next    next item in the bucket chain (8)
    +8   lru_next  (8)        +16  lru_prev (8)
    +24  key_len   (4)        +28  val_len  (4)
    +32  flags     (4)        +36  reserved (4)
    +40  key bytes             +40+key_len  value bytes
    v} *)

type t

val header_size : int

val create :
  Vmem.Space.t -> buckets:int -> slab:Slab.t -> alloc_table:(int -> int) -> t
(** [buckets] is rounded up to a power of two; the bucket array comes from
    [alloc_table]. *)

val hash : string -> int
(** FNV-1a, also used by the server for sharding decisions. *)

val set : t -> key:string -> flags:int -> value_src:int -> value_len:int -> bool
(** Insert or replace ({!prepare} + {!commit}). The value is copied out of
    simulated memory at [value_src]. [false] when the item exceeds the
    largest slab class. *)

val prepare : t -> key:string -> flags:int -> value_src:int -> value_len:int -> int option
(** Allocate and fill an item without linking it — the part of a SET that
    Memcached performs outside the cache lock. *)

val commit : t -> key:string -> int -> unit
(** Unlink any existing item for [key] and link the prepared one — the
    short critical section. *)

val get : t -> string -> (int * int * int) option
(** [(value_addr, value_len, flags)] — the address points into the live
    item; callers copy promptly. Refreshes the item's LRU position. *)

val peek : t -> string -> (int * int * int) option
(** Like {!get} but without the LRU update — the read-only lookup a nested
    domain can perform against a read-protected database; the recency
    bump is deferred to the parent via {!touch}. *)

val touch : t -> string -> unit
(** Refresh a key's LRU position (no-op on a miss). *)

val delete : t -> string -> bool
val mem : t -> string -> bool
val count : t -> int
val value_bytes : t -> int

val evictions : t -> int
(** Items discarded by LRU eviction since creation. *)

val lru_keys : t -> string list
(** Keys in recency order, most recently used first (test hook). *)

val item_size : key:string -> value_len:int -> int
(** Total item footprint for a key/value pair (used by the vulnerable
    code path in the server to size its undersized allocation). *)

val write_item :
  t -> item:int -> key:string -> flags:int -> value_src:int -> value_len:int -> unit
(** Fill a raw chunk with an item image (no linking) — the building block
    the server's vulnerable SET handler replicates with a wrong length. *)

val check : t -> string list
(** Walk every bucket chain and verify item headers are sane (lengths
    within slab bounds, chains acyclic). Returns discrepancies — used to
    demonstrate silent corruption after an unprotected overflow. *)
