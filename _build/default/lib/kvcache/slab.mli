(** Slab allocator for the key-value store, modelled on Memcached's:
    size classes grow by a 1.25 factor; each class carves fixed-size
    chunks out of 64 KiB slab pages; freed chunks go on a per-class free
    list threaded through the chunks themselves (in simulated memory, so
    heap overflows really do clobber allocator state). *)

type t

val slab_page_size : int
val max_chunk_size : int

val create : ?max_bytes:int -> Vmem.Space.t -> alloc_page:(int -> int) -> t
(** [alloc_page len] must return a fresh [len]-byte region — from
    {!Vmem.Space.mmap} for a plain process or from a data-domain sub-heap
    under SDRaD. [max_bytes] caps total slab memory (Memcached's [-m]);
    when reached, {!alloc} returns [None] and the store evicts. *)

val at_capacity : t -> int -> bool
(** Would serving this request require growing past the budget? *)

val chunk_size : t -> int -> int option
(** Size class that serves a request, [None] if above {!max_chunk_size}. *)

val alloc : t -> int -> int option
(** Allocate a chunk for at least the given size. [None] if the request
    exceeds {!max_chunk_size} or the page allocator fails. *)

val free : t -> addr:int -> size:int -> unit
(** Return a chunk; [size] identifies its class (as Memcached's
    [item_free] derives the class from the item). *)

val pages_allocated : t -> int
val chunks_in_use : t -> int
