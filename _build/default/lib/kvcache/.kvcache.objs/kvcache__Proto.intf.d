lib/kvcache/proto.mli: Vmem
