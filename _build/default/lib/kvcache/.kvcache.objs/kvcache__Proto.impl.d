lib/kvcache/proto.ml: List Printf String Vmem
