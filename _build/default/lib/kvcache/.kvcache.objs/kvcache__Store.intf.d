lib/kvcache/store.mli: Slab Vmem
