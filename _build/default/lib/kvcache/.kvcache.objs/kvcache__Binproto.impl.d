lib/kvcache/binproto.ml: Bytes Char Printf Proto String Vmem
