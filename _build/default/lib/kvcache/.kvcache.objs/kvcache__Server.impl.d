lib/kvcache/server.ml: Array Binproto Hashtbl List Logs Netsim Option Printf Proto Result Sdrad Simkern Slab Store String Tlsf Vmem
