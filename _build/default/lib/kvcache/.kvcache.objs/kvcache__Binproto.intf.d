lib/kvcache/binproto.mli: Proto Vmem
