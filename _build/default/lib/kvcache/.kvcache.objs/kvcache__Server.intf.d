lib/kvcache/server.mli: Netsim Sdrad Simkern Store Vmem
