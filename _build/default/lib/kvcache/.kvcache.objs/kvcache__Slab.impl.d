lib/kvcache/slab.ml: Array List Option Vmem
