lib/kvcache/slab.mli: Vmem
