lib/kvcache/store.ml: Char Hashtbl List Printf Simkern Slab String Vmem
