module Space = Vmem.Space
module Sched = Simkern.Sched

let header_size = 40

type t = {
  space : Space.t;
  slab : Slab.t;
  table : int;  (* bucket array base: nbuckets 8-byte slots *)
  mask : int;
  mutable count : int;
  mutable value_bytes : int;
  mutable lru_head : int;  (* most recently used, 0 = empty *)
  mutable lru_tail : int;  (* least recently used *)
  mutable evictions : int;
}

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create space ~buckets ~slab ~alloc_table =
  let n = round_pow2 (max 16 buckets) in
  let table = alloc_table (n * 8) in
  {
    space;
    slab;
    table;
    mask = n - 1;
    count = 0;
    value_bytes = 0;
    lru_head = 0;
    lru_tail = 0;
    evictions = 0;
  }

let hash key =
  (* FNV-1a 64, truncated to OCaml's 63-bit int. *)
  let h = ref 0xbf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3 land max_int)
    key;
  !h

let charge_hash key =
  if Sched.in_thread () then Sched.charge (float_of_int (String.length key))

let bucket_slot t key = t.table + ((hash key land t.mask) * 8)

let item_size ~key ~value_len = header_size + String.length key + value_len

(* Item field accessors (offsets per the layout in the interface). *)
let lru_next t i = Space.load64 t.space (i + 8)
let set_lru_next t i v = Space.store64 t.space (i + 8) v
let lru_prev t i = Space.load64 t.space (i + 16)
let set_lru_prev t i v = Space.store64 t.space (i + 16) v
let key_len t i = Space.load32 t.space (i + 24)
let val_len t i = Space.load32 t.space (i + 28)
let item_flags t i = Space.load32 t.space (i + 32)
let item_key t i = Space.read_string t.space (i + header_size) (key_len t i)

(* {1 LRU list (links live in simulated memory)} *)

let lru_push_head t item =
  set_lru_prev t item 0;
  set_lru_next t item t.lru_head;
  if t.lru_head <> 0 then set_lru_prev t t.lru_head item;
  t.lru_head <- item;
  if t.lru_tail = 0 then t.lru_tail <- item

let lru_unlink t item =
  let p = lru_prev t item and n = lru_next t item in
  if p <> 0 then set_lru_next t p n else t.lru_head <- n;
  if n <> 0 then set_lru_prev t n p else t.lru_tail <- p

let lru_bump t item =
  if t.lru_head <> item then begin
    lru_unlink t item;
    lru_push_head t item
  end

(* {1 Hash chains} *)

(* Find an item and its predecessor link slot (for unlinking). *)
let find_prev t key =
  let slot = bucket_slot t key in
  let rec walk link =
    let item = Space.load64 t.space link in
    if item = 0 then None
    else if String.equal (item_key t item) key then Some (link, item)
    else walk item (* h_next is at offset 0 *)
  in
  walk slot

let write_item t ~item ~key ~flags ~value_src ~value_len =
  Space.store64 t.space item 0;
  set_lru_next t item 0;
  set_lru_prev t item 0;
  Space.store32 t.space (item + 24) (String.length key);
  Space.store32 t.space (item + 28) value_len;
  Space.store32 t.space (item + 32) flags;
  Space.store32 t.space (item + 36) 0;
  Space.store_string t.space (item + header_size) key;
  Space.blit t.space ~src:value_src
    ~dst:(item + header_size + String.length key)
    ~len:value_len

let unlink t link item =
  let next = Space.load64 t.space item in
  Space.store64 t.space link next;
  lru_unlink t item;
  let klen = key_len t item and vlen = val_len t item in
  Slab.free t.slab ~addr:item ~size:(header_size + klen + vlen);
  t.count <- t.count - 1;
  t.value_bytes <- t.value_bytes - vlen

(* Evict the least recently used item (Memcached's reaction to memory
   pressure). Returns [false] when there is nothing left to evict. *)
let evict_one t =
  let victim = t.lru_tail in
  if victim = 0 then false
  else begin
    let key = item_key t victim in
    (match find_prev t key with
    | Some (link, item) when item = victim -> unlink t link item
    | Some _ | None ->
        (* The tail is not reachable through its bucket: corruption. *)
        failwith "Store.evict_one: LRU/hash inconsistency");
    t.evictions <- t.evictions + 1;
    true
  end

let prepare t ~key ~flags ~value_src ~value_len =
  let size = item_size ~key ~value_len in
  let rec attempt () =
    match Slab.alloc t.slab size with
    | Some item ->
        write_item t ~item ~key ~flags ~value_src ~value_len;
        Some item
    | None -> if evict_one t then attempt () else None
  in
  attempt ()

let commit t ~key item =
  charge_hash key;
  (match find_prev t key with
  | Some (link, old) -> unlink t link old
  | None -> ());
  let slot = bucket_slot t key in
  Space.store64 t.space item (Space.load64 t.space slot);
  Space.store64 t.space slot item;
  lru_push_head t item;
  t.count <- t.count + 1;
  t.value_bytes <- t.value_bytes + val_len t item

let set t ~key ~flags ~value_src ~value_len =
  match prepare t ~key ~flags ~value_src ~value_len with
  | None -> false
  | Some item ->
      commit t ~key item;
      true

let peek t key =
  charge_hash key;
  match find_prev t key with
  | None -> None
  | Some (_, item) ->
      Some (item + header_size + key_len t item, val_len t item, item_flags t item)

let get t key =
  charge_hash key;
  match find_prev t key with
  | None -> None
  | Some (_, item) ->
      lru_bump t item;
      Some (item + header_size + key_len t item, val_len t item, item_flags t item)

let touch t key =
  match find_prev t key with
  | None -> ()
  | Some (_, item) -> lru_bump t item

let delete t key =
  charge_hash key;
  match find_prev t key with
  | None -> false
  | Some (link, item) ->
      unlink t link item;
      true

let mem t key = get t key <> None
let count t = t.count
let value_bytes t = t.value_bytes
let evictions t = t.evictions

let lru_keys t =
  let rec walk item acc =
    if item = 0 then List.rev acc
    else walk (lru_next t item) (item_key t item :: acc)
  in
  walk t.lru_head []

let check t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let seen = Hashtbl.create 64 in
  for b = 0 to t.mask do
    let slot = t.table + (b * 8) in
    let rec walk item depth =
      if item <> 0 then
        if depth > 1_000_000 then err "bucket %d: chain too long (cycle?)" b
        else if Hashtbl.mem seen item then err "item 0x%x linked twice" item
        else begin
          Hashtbl.replace seen item ();
          let klen = key_len t item in
          let vlen = val_len t item in
          if klen <= 0 || klen > 250 then
            err "item 0x%x: bad key length %d" item klen
          else if vlen < 0 || header_size + klen + vlen > Slab.max_chunk_size
          then err "item 0x%x: bad value length %d" item vlen
          else begin
            let key = item_key t item in
            if hash key land t.mask <> b then
              err "item 0x%x (%s) in wrong bucket" item key
          end;
          walk (Space.load64 t.space item) (depth + 1)
        end
    in
    walk (Space.load64 t.space slot) 0
  done;
  if Hashtbl.length seen <> t.count then
    err "item count mismatch: table has %d, accounting says %d"
      (Hashtbl.length seen) t.count;
  (* The LRU list must thread exactly the linked items. *)
  let lru_count = ref 0 in
  let rec walk_lru item prev =
    if item <> 0 then begin
      if !lru_count > t.count + 1 then err "LRU list longer than item count"
      else begin
        incr lru_count;
        if not (Hashtbl.mem seen item) then
          err "LRU entry 0x%x is not a linked item" item;
        if lru_prev t item <> prev then err "LRU back-link broken at 0x%x" item;
        walk_lru (lru_next t item) item
      end
    end
    else if t.lru_tail <> prev then err "LRU tail does not match list end"
  in
  walk_lru t.lru_head 0;
  if !lru_count <> t.count then
    err "LRU count %d != item count %d" !lru_count t.count;
  List.rev !errors
