(** Page protection bits (the [PROT_*] flags of [mmap]/[mprotect]). *)

type t = int

val none : t
val read : t
val write : t
val exec : t
val rw : t
val rx : t

val has : t -> t -> bool
(** [has prot flag] tests whether [flag] is included in [prot]. *)

val pp : Format.formatter -> t -> unit
