type t = int

let ad key = 1 lsl (2 * key)
let wd key = 1 lsl ((2 * key) + 1)
let all_access = 0

let deny_all =
  let v = ref 0 in
  for key = 1 to 15 do
    v := !v lor ad key
  done;
  !v

let allow t ~key = t land lnot (ad key lor wd key)
let allow_read t ~key = t land lnot (ad key) lor wd key
let deny t ~key = t lor ad key
let can_read t ~key = t land ad key = 0
let can_write t ~key = t land (ad key lor wd key) = 0

let pp ppf t =
  for key = 0 to 15 do
    let c =
      if not (can_read t ~key) then '-'
      else if can_write t ~key then 'w'
      else 'r'
    in
    Format.fprintf ppf "%c" c
  done
