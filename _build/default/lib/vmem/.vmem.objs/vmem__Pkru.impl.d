lib/vmem/pkru.ml: Format
