lib/vmem/prot.mli: Format
