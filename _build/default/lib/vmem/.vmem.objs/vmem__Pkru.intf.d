lib/vmem/pkru.mli: Format
