lib/vmem/space.ml: Bytes Char Format Hashtbl Int32 Int64 List Pkru Prot Simkern String
