lib/vmem/space.mli: Format Prot Simkern
