(** PKRU register values.

    On x86-64 the PKRU is a 32-bit per-thread register holding two policy
    bits for each of the 16 protection keys: bit [2k] is AD (access
    disable — no data access at all) and bit [2k+1] is WD (write
    disable — read-only). These helpers build and query register values. *)

type t = int

val all_access : t
(** 0 — every key readable and writable (the value a plain process runs
    with when no isolation is configured). *)

val deny_all : t
(** AD set for keys 1–15; key 0 stays accessible, matching the Linux
    default of [0x55555554] shifted to our convention. *)

val allow : t -> key:int -> t
(** Grant read and write for [key]. *)

val allow_read : t -> key:int -> t
(** Grant read-only access for [key] (AD clear, WD set). *)

val deny : t -> key:int -> t
(** Revoke all access for [key]. *)

val can_read : t -> key:int -> bool
val can_write : t -> key:int -> bool
val pp : Format.formatter -> t -> unit
