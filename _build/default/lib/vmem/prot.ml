type t = int

let none = 0
let read = 1
let write = 2
let exec = 4
let rw = 3
let rx = 5
let has prot flag = prot land flag = flag

let pp ppf t =
  Format.fprintf ppf "%c%c%c"
    (if has t read then 'r' else '-')
    (if has t write then 'w' else '-')
    (if has t exec then 'x' else '-')
