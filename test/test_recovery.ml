(* End-to-end recovery correctness: deadline-aware receives, client
   retry/timeout/backoff with a retry budget, the rewind-safe replay
   journal (at-most-once retried mutations), non-blocking supervisor
   admission, and overload shedding in both servers. *)

module Space = Vmem.Space
module Sched = Simkern.Sched
module Rng = Simkern.Rng
module Cost = Simkern.Cost
module Api = Sdrad.Api
module Supervisor = Resilience.Supervisor
module Fault_inject = Resilience.Fault_inject
module Retry = Resilience.Retry
module Journal = Resilience.Journal
module KServer = Kvcache.Server
module Proto = Kvcache.Proto
module HServer = Httpd.Server
module Fs = Httpd.Fs

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let run_sim f =
  let sched = Sched.create () in
  f sched;
  Sched.run sched;
  List.iter
    (fun (_, name, oc) ->
      match oc with
      | Sched.Completed -> ()
      | Sched.Failed e ->
          Alcotest.failf "thread %s failed: %s" name (Printexc.to_string e))
    (Sched.outcomes sched)

let in_thread f = run_sim (fun sched -> ignore (Sched.spawn sched ~name:"main" f))

(* {1 Deadline-aware receives} *)

let test_recv_deadline () =
  run_sim (fun sched ->
      let net = Netsim.create Cost.default in
      let l = Netsim.listen net ~port:80 in
      let _ =
        Sched.spawn sched ~name:"server" (fun () ->
            let c = Option.get (Netsim.accept l) in
            (* Reply only to the second request the client sends. *)
            ignore (Netsim.recv c);
            ignore (Netsim.recv c);
            Netsim.send c "late-reply";
            ignore (Netsim.recv c))
      in
      let _ =
        Sched.spawn sched ~name:"client" (fun () ->
            let c = Netsim.connect net ~port:80 in
            Netsim.send c "one";
            let t0 = Sched.now () in
            (* Nothing will arrive: must give up exactly at the deadline. *)
            (match Netsim.recv_deadline c ~deadline:(t0 +. 5_000.0) with
            | None -> ()
            | Some m -> Alcotest.failf "unexpected message %S" m);
            check bool "clock advanced to the deadline" true
              (Sched.now () >= t0 +. 5_000.0);
            check bool "timeout is not peer close" false (Netsim.peer_closed c);
            (* A message arriving before the deadline is delivered. *)
            Netsim.send c "two";
            (match Netsim.recv_deadline c ~deadline:(Sched.now () +. 1.0e6) with
            | Some m -> check string "delivered before deadline" "late-reply" m
            | None -> Alcotest.fail "reply lost");
            Netsim.close c)
      in
      ())

let test_waitset_deadline () =
  run_sim (fun sched ->
      let net = Netsim.create Cost.default in
      let l = Netsim.listen net ~port:80 in
      let ws = Netsim.Waitset.create () in
      let _ =
        Sched.spawn sched ~name:"server" (fun () ->
            let c = Option.get (Netsim.accept l) in
            Netsim.Waitset.add ws c;
            let t0 = Sched.now () in
            (match Netsim.Waitset.wait_deadline ws ~deadline:(t0 +. 3_000.0) with
            | None -> ()
            | Some _ -> Alcotest.fail "nothing should be ready yet");
            check bool "waitset timeout advanced the clock" true
              (Sched.now () >= t0 +. 3_000.0);
            (match
               Netsim.Waitset.wait_deadline ws ~deadline:(Sched.now () +. 1.0e6)
             with
            | Some c' ->
                check int "ready conn is the watched one" (Netsim.id c)
                  (Netsim.id c');
                check string "payload intact" "ping" (Option.get (Netsim.recv c'))
            | None -> Alcotest.fail "message never became ready");
            Netsim.close c)
      in
      let _ =
        Sched.spawn sched ~name:"client" (fun () ->
            let c = Netsim.connect net ~port:80 in
            (* Send only after the server's first wait has timed out. *)
            Sched.sleep 10_000.0;
            Netsim.send c "ping";
            ignore (Netsim.recv c);
            Netsim.close c)
      in
      ())

(* {1 Retry engine} *)

let quick_policy =
  {
    Retry.max_attempts = 4;
    attempt_timeout = 1_000.0;
    overall_timeout = 1.0e6;
    backoff_base = 100.0;
    backoff_cap = 1_000.0;
  }

let test_retry_success_after_backoff () =
  in_thread (fun () ->
      let eng = Retry.create quick_policy ~rng:(Rng.create 1) in
      let attempts = ref 0 in
      let rids = ref [] in
      let t0 = Sched.now () in
      let r =
        Retry.execute eng (fun ~rid ~attempt ~deadline ->
            incr attempts;
            rids := rid :: !rids;
            check int "attempt numbers count up" (!attempts - 1) attempt;
            check bool "deadline respects attempt timeout" true
              (deadline <= Sched.now () +. 1_000.0);
            if !attempts < 3 then Error (`Retry "flaky") else Ok "done")
      in
      (match r with
      | Ok v -> check string "eventual success" "done" v
      | Error e -> Alcotest.failf "unexpected error: %s" (Retry.error_to_string e));
      check int "three attempts" 3 !attempts;
      check int "two retries counted" 2 (Retry.retries eng);
      check int "one logical call" 1 (Retry.calls eng);
      (match !rids with
      | [ a; b; c ] ->
          check bool "rid stable across retries" true (a = b && b = c)
      | _ -> Alcotest.fail "expected three recorded rids");
      check bool "backoff slept between attempts" true
        (Sched.now () -. t0 >= 2.0 *. 100.0))

let test_retry_budget_exhaustion () =
  in_thread (fun () ->
      let bgt = Retry.budget ~cap:10.0 ~deposit:0.0 ~withdraw:10.0 () in
      let eng =
        Retry.create { quick_policy with max_attempts = 10 } ~budget:bgt
          ~rng:(Rng.create 2)
      in
      let r =
        Retry.execute eng (fun ~rid:_ ~attempt:_ ~deadline:_ ->
            Error (`Retry "down"))
      in
      (match r with
      | Error Retry.Budget_exhausted -> ()
      | Error e ->
          Alcotest.failf "wanted Budget_exhausted, got %s"
            (Retry.error_to_string e)
      | Ok _ -> Alcotest.fail "must not succeed");
      (* 10 tokens buy exactly one 10-token retry; the second is refused. *)
      check int "one retry went through" 1 (Retry.retries eng);
      check int "exhaustion counted once" 1 (Retry.budget_exhaustions eng);
      check bool "bucket drained" true (Retry.budget_tokens bgt < 10.0))

let test_retry_attempts_and_deadline () =
  in_thread (fun () ->
      (* Attempts exhausted: every attempt fails fast. *)
      let eng = Retry.create quick_policy ~rng:(Rng.create 3) in
      (match
         Retry.execute eng (fun ~rid:_ ~attempt:_ ~deadline:_ ->
             Error (`Retry "nope"))
       with
      | Error (Retry.Attempts_exhausted reason) ->
          check string "last reason surfaced" "nope" reason
      | Error e ->
          Alcotest.failf "wanted Attempts_exhausted, got %s"
            (Retry.error_to_string e)
      | Ok _ -> Alcotest.fail "must not succeed");
      check int "max_attempts honoured" 4 (Retry.calls eng + 3);
      (* Overall deadline: attempts are slow, the call deadline wins. *)
      let eng2 =
        Retry.create
          {
            quick_policy with
            max_attempts = 100;
            attempt_timeout = 1_000.0;
            overall_timeout = 2_500.0;
          }
          ~rng:(Rng.create 4)
      in
      let t0 = Sched.now () in
      (match
         Retry.execute eng2 (fun ~rid:_ ~attempt:_ ~deadline ->
             Sched.wait_until deadline;
             Error (`Retry "slow"))
       with
      | Error Retry.Deadline_exceeded -> ()
      | Error e ->
          Alcotest.failf "wanted Deadline_exceeded, got %s"
            (Retry.error_to_string e)
      | Ok _ -> Alcotest.fail "must not succeed");
      check bool "gave up near the overall deadline" true
        (Sched.now () -. t0 >= 2_500.0 && Sched.now () -. t0 < 10_000.0))

(* {1 Replay journal unit semantics} *)

let test_journal_semantics () =
  let j = Journal.create ~capacity:2 () in
  check bool "empty journal misses" true (Journal.find j "a" = None);
  Journal.record j "a" "ra";
  Journal.record j "a" "overwrite-attempt";
  check bool "first write wins" true (Journal.find j "a" = Some "ra");
  check int "replay hit counted" 1 (Journal.hits j);
  check bool "mem does not count a hit" true (Journal.mem j "a");
  check int "mem left hit count alone" 1 (Journal.hits j);
  Journal.record j "b" "rb";
  Journal.record j "c" "rc";
  check int "capacity bound held" 2 (Journal.size j);
  check int "oldest entry evicted" 1 (Journal.evictions j);
  check bool "evicted id forgotten" true (Journal.find j "a" = None);
  check bool "younger ids survive" true
    (Journal.find j "b" = Some "rb" && Journal.find j "c" = Some "rc")

(* {1 The acceptance scenario: a retried mutation surviving a rewind} *)

(* Start an SDRaD kvcache server, commit an incr whose response is dropped
   by a counting fault hook, force a rewind (lying set discards the event
   domain), then retry the same request id: the journaled response must
   come back and the counter must not move twice. *)
let test_journal_replay_after_rewind () =
  let space = Space.create ~size_mib:64 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let cfg =
    {
      KServer.default_config with
      variant = KServer.Sdrad;
      workers = 1;
      vulnerable = true;
    }
  in
  let srv = ref None in
  let _ =
    Sched.spawn sched ~name:"main" (fun () ->
        let s = KServer.start sched space ~sdrad:sd net cfg in
        srv := Some s;
        let c = Netsim.connect net ~port:11211 in
        Netsim.send c (Proto.fmt_set ~key:"ctr" ~flags:0 ~value:"5");
        check bool "seed value stored" true
          (Proto.parse_reply (Option.get (Netsim.recv c)) = Proto.Stored);
        check int "plain set is not journaled" 0 (Journal.size (KServer.journal s));
        (* Drop exactly the server's response to the incr: send #1 after
           arming is the client's request, send #2 the reply. *)
        let sends = ref 0 in
        Netsim.set_fault_hook net
          (Some
             (fun ~len:_ ->
               incr sends;
               if !sends = 2 then Netsim.Drop else Netsim.Deliver));
        Netsim.send c (Proto.fmt_incr ~rid:"cl-1" "ctr" 1);
        (match Netsim.recv_deadline c ~deadline:(Sched.now () +. 200_000.0) with
        | None -> ()
        | Some m -> Alcotest.failf "response should have been dropped: %S" m);
        Netsim.set_fault_hook net None;
        check int "commit was journaled" 1 (Journal.size (KServer.journal s));
        (* Force a rewind on the same worker: the event domain is
           discarded and the offending connection closed. *)
        Netsim.send c
          (Proto.fmt_set_lying ~key:"pwn" ~flags:0 ~declared:(-1)
             ~value:(String.make 300 'X'));
        check bool "attack connection closed" true (Netsim.recv c = None);
        Netsim.close c;
        check int "one rewind happened" 1 (KServer.rewinds s);
        (* Retry the lost mutation with the same idempotency key. *)
        let c2 = Netsim.connect net ~port:11211 in
        Netsim.send c2 (Proto.fmt_incr ~rid:"cl-1" "ctr" 1);
        (match Proto.parse_reply (Option.get (Netsim.recv c2)) with
        | Proto.Number n -> check int "journaled result replayed" 6 n
        | r ->
            Alcotest.failf "unexpected reply %s"
              (match r with Proto.Failed e -> e | _ -> "non-number"));
        check int "replay hit counted" 1 (KServer.replay_hits s);
        (* The counter moved exactly once: reads see 6, not 7. *)
        Netsim.send c2 (Proto.fmt_get "ctr");
        (match Proto.parse_reply (Option.get (Netsim.recv c2)) with
        | Proto.Value v -> check string "applied exactly once" "6" v
        | _ -> Alcotest.fail "counter unreadable");
        (* Reads are never journaled. *)
        check int "journal still holds one entry" 1
          (Journal.size (KServer.journal s));
        (* A mutation without an id is not journaled (legacy client). *)
        Netsim.send c2 (Proto.fmt_incr "ctr" 1);
        (match Proto.parse_reply (Option.get (Netsim.recv c2)) with
        | Proto.Number n -> check int "anonymous incr applies" 7 n
        | _ -> Alcotest.fail "anonymous incr failed");
        check int "anonymous mutation not journaled" 1
          (Journal.size (KServer.journal s));
        Netsim.close c2;
        KServer.stop s)
  in
  Sched.run sched;
  List.iter
    (fun (_, name, oc) ->
      match oc with
      | Sched.Completed -> ()
      | Sched.Failed e ->
          Alcotest.failf "thread %s failed: %s" name (Printexc.to_string e))
    (Sched.outcomes sched);
  check bool "server never crashed" false (KServer.crashed (Option.get !srv))

let test_journal_eviction_in_server () =
  let space = Space.create ~size_mib:64 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let cfg =
    {
      KServer.default_config with
      variant = KServer.Sdrad;
      workers = 1;
      journal_cap = 2;
    }
  in
  let srv = ref None in
  let _ =
    Sched.spawn sched ~name:"main" (fun () ->
        let s = KServer.start sched space ~sdrad:sd net cfg in
        srv := Some s;
        let c = Netsim.connect net ~port:11211 in
        for i = 1 to 3 do
          Netsim.send c
            (Proto.fmt_set_rid
               ~rid:(Printf.sprintf "r%d" i)
               ~key:(Printf.sprintf "k%d" i)
               ~flags:0 ~value:"v");
          ignore (Netsim.recv c)
        done;
        let j = KServer.journal s in
        check int "journal wrapped at capacity" 2 (Journal.size j);
        check int "one eviction" 1 (Journal.evictions j);
        check bool "oldest id fell out of the window" false (Journal.mem j "r1");
        check bool "newest ids retained" true
          (Journal.mem j "r2" && Journal.mem j "r3");
        Netsim.close c;
        KServer.stop s)
  in
  Sched.run sched;
  List.iter
    (fun (_, name, oc) ->
      match oc with
      | Sched.Completed -> ()
      | Sched.Failed e ->
          Alcotest.failf "thread %s failed: %s" name (Printexc.to_string e))
    (Sched.outcomes sched)

(* {1 Non-blocking supervisor admission} *)

let test_admit_nb_does_not_park () =
  let space = Space.create ~size_mib:32 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let policy =
    {
      Supervisor.default_policy with
      budget_max = 3;
      budget_window = 1.0e9;
      backoff_base = 50_000.0;
      backoff_max = 500_000.0;
    }
  in
  let sup = Supervisor.attach ~policy sd in
  let udi = 5 in
  let _ =
    Sched.spawn sched ~name:"main" (fun () ->
        (* One crash inside the domain trips the breaker into Backoff. *)
        (match
           Supervisor.run sup ~udi
             ~on_rewind:(fun _ -> `Rewound)
             ~on_busy:(fun ~until:_ -> `Busy)
             (fun () ->
               Api.enter sd udi;
               Fault_inject.wild_write space;
               Api.exit_domain sd;
               `Ok)
         with
        | `Rewound -> ()
        | _ -> Alcotest.fail "fault must rewind");
        let t0 = Sched.now () in
        (match Supervisor.admit_nb sup ~udi with
        | Supervisor.Busy { until } ->
            check bool "busy names a future retry point" true (until > t0)
        | _ -> Alcotest.fail "admit_nb must refuse during backoff");
        check bool "admit_nb did not advance the clock" true (Sched.now () = t0);
        (* The blocking variant parks the caller until the retry point. *)
        (match Supervisor.admit sup ~udi with
        | Supervisor.Admitted | Supervisor.Probe -> ()
        | Supervisor.Busy _ -> Alcotest.fail "blocking admit must wait, not refuse");
        check bool "blocking admit slept through the backoff" true
          (Sched.now () > t0);
        (* Once past the retry point, admit_nb admits again. *)
        check bool "admit_nb admits after the backoff" true
          (Supervisor.admit_nb sup ~udi = Supervisor.Admitted))
  in
  Sched.run sched;
  List.iter
    (fun (_, name, oc) ->
      match oc with
      | Sched.Completed -> ()
      | Sched.Failed e ->
          Alcotest.failf "thread %s failed: %s" name (Printexc.to_string e))
    (Sched.outcomes sched)

(* {1 Overload shedding} *)

let test_kvcache_sheds_under_burst () =
  let space = Space.create ~size_mib:64 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let cfg =
    {
      KServer.default_config with
      variant = KServer.Sdrad;
      workers = 1;
      shed_queue_limit = 2;
    }
  in
  let srv = ref None in
  let _ =
    Sched.spawn sched ~name:"main" (fun () ->
        let s = KServer.start sched space ~sdrad:sd net cfg in
        srv := Some s;
        let c = Netsim.connect net ~port:11211 in
        let n = 20 in
        (* Pipeline a burst: the worker's backlog exceeds the limit and
           most of the burst is turned away before parsing. *)
        for i = 1 to n do
          Netsim.send c
            (Proto.fmt_set ~key:(Printf.sprintf "b%d" i) ~flags:0 ~value:"v")
        done;
        let busy = ref 0 and stored = ref 0 in
        for _ = 1 to n do
          match Netsim.recv c with
          | Some r when r = Proto.server_error_busy -> incr busy
          | Some r when Proto.parse_reply r = Proto.Stored -> incr stored
          | Some r -> Alcotest.failf "unexpected reply %S" r
          | None -> Alcotest.fail "connection dropped under burst"
        done;
        check int "every request got exactly one reply" n (!busy + !stored);
        check bool "burst tripped the shed path" true (!busy > 0);
        check bool "head of the burst was served" true (!stored > 0);
        check int "shed counter matches busy replies" !busy (KServer.shed_count s);
        (* After the burst drains, normal service resumes. *)
        Netsim.send c (Proto.fmt_set ~key:"after" ~flags:0 ~value:"ok");
        check bool "service resumed after burst" true
          (Proto.parse_reply (Option.get (Netsim.recv c)) = Proto.Stored);
        Netsim.close c;
        KServer.stop s)
  in
  Sched.run sched;
  List.iter
    (fun (_, name, oc) ->
      match oc with
      | Sched.Completed -> ()
      | Sched.Failed e ->
          Alcotest.failf "thread %s failed: %s" name (Printexc.to_string e))
    (Sched.outcomes sched);
  check bool "server survived the burst" false (KServer.crashed (Option.get !srv))

let mk_fs space =
  let fs = Fs.create space in
  Fs.add fs ~path:"/index.html" ~size:256;
  fs

let test_httpd_sheds_and_replays () =
  let space = Space.create ~size_mib:64 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let cfg =
    {
      HServer.default_config with
      variant = HServer.Sdrad;
      workers = 1;
      shed_queue_limit = 2;
    }
  in
  let post ?rid c =
    let id_hdr =
      match rid with
      | Some r -> Printf.sprintf "X-Request-Id: %s\r\n" r
      | None -> ""
    in
    Netsim.send c
      (Printf.sprintf
         "POST /count HTTP/1.1\r\nHost: x\r\n%sContent-Length: 0\r\n\r\n" id_hdr);
    Option.get (Netsim.recv c)
  in
  let body reply =
    (* Everything after the header/body separator. *)
    let rec find i =
      if i + 4 > String.length reply then String.length reply
      else if String.sub reply i 4 = "\r\n\r\n" then i + 4
      else find (i + 1)
    in
    let off = find 0 in
    String.sub reply off (String.length reply - off)
  in
  let srv = ref None in
  let _ =
    Sched.spawn sched ~name:"main" (fun () ->
        let s = HServer.start sched space ~sdrad:sd net ~fs:(mk_fs space) cfg in
        srv := Some s;
        (* Replay journal: same X-Request-Id twice = one application. *)
        let c = Netsim.connect net ~port:8080 in
        let r1 = post ~rid:"req-1" c in
        let r2 = post ~rid:"req-1" c in
        check bool "both replies are 200" true
          (Workload.Http_load.is_200 r1 && Workload.Http_load.is_200 r2);
        check string "retry answered from the journal" (body r1) (body r2);
        check int "POST applied exactly once" 1 (HServer.post_count s);
        check int "one replay hit" 1 (HServer.replay_hits s);
        (* Without an id, each POST applies. *)
        ignore (post c);
        ignore (post c);
        check int "anonymous POSTs apply each time" 3 (HServer.post_count s);
        (* Shedding: a pipelined burst gets 503s past the backlog limit. *)
        let n = 16 in
        for _ = 1 to n do
          Netsim.send c (Workload.Http_load.request ~path:"/index.html")
        done;
        let ok = ref 0 and shed = ref 0 in
        for _ = 1 to n do
          match Netsim.recv c with
          | Some r when Workload.Http_load.is_200 r -> incr ok
          | Some r when String.length r >= 12 && String.sub r 9 3 = "503" ->
              incr shed
          | Some r -> Alcotest.failf "unexpected reply %S" r
          | None -> Alcotest.fail "connection dropped under burst"
        done;
        check int "one reply per request" n (!ok + !shed);
        check bool "burst tripped the shed path" true (!shed > 0);
        check bool "head of the burst was served" true (!ok > 0);
        check int "shed counter matches 503s" !shed (HServer.shed_count s);
        Netsim.close c;
        HServer.stop s)
  in
  Sched.run sched;
  List.iter
    (fun (_, name, oc) ->
      match oc with
      | Sched.Completed -> ()
      | Sched.Failed e ->
          Alcotest.failf "thread %s failed: %s" name (Printexc.to_string e))
    (Sched.outcomes sched)

(* {1 Truncated frames are protocol errors, not crashes} *)

let test_truncated_frames_rejected () =
  let space = Space.create ~size_mib:64 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let cfg =
    { KServer.default_config with variant = KServer.Sdrad; workers = 1 }
  in
  let srv = ref None in
  let _ =
    Sched.spawn sched ~name:"main" (fun () ->
        let s = KServer.start sched space ~sdrad:sd net cfg in
        srv := Some s;
        let text = Proto.fmt_set ~key:"k" ~flags:0 ~value:"hello" in
        let bin = Kvcache.Binproto.req_set ~key:"k" ~flags:0 ~value:"hello" in
        let probe frame =
          (* Reconnect per probe: an error reply may close the conn. *)
          let c = Netsim.connect net ~port:11211 in
          Netsim.send c frame;
          (match Netsim.recv_deadline c ~deadline:(Sched.now () +. 1.0e6) with
          | Some _ | None -> ());
          Netsim.close c;
          check bool "server survived truncated frame" false (KServer.crashed s)
        in
        for len = 1 to String.length text - 1 do
          probe (String.sub text 0 len)
        done;
        for len = 1 to String.length bin - 1 do
          probe (String.sub bin 0 len)
        done;
        (* And the server still works afterwards. *)
        let c = Netsim.connect net ~port:11211 in
        Netsim.send c (Proto.fmt_set ~key:"k" ~flags:0 ~value:"hello");
        check bool "valid traffic still served" true
          (Proto.parse_reply (Option.get (Netsim.recv c)) = Proto.Stored);
        Netsim.close c;
        KServer.stop s)
  in
  Sched.run sched;
  List.iter
    (fun (_, name, oc) ->
      match oc with
      | Sched.Completed -> ()
      | Sched.Failed e ->
          Alcotest.failf "thread %s failed: %s" name (Printexc.to_string e))
    (Sched.outcomes sched)

let test_httpd_truncated_request_400 () =
  let space = Space.create ~size_mib:64 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let cfg =
    { HServer.default_config with variant = HServer.Sdrad; workers = 1 }
  in
  let _ =
    Sched.spawn sched ~name:"main" (fun () ->
        let s = HServer.start sched space ~sdrad:sd net ~fs:(mk_fs space) cfg in
        let full = Workload.Http_load.request ~path:"/index.html" in
        for len = 1 to String.length full - 1 do
          let c = Netsim.connect net ~port:8080 in
          Netsim.send c (String.sub full 0 len);
          (match Netsim.recv_deadline c ~deadline:(Sched.now () +. 1.0e6) with
          | Some r ->
              check bool "truncated request answered with an error status"
                false
                (Workload.Http_load.is_200 r)
          | None -> ());
          Netsim.close c
        done;
        let c = Netsim.connect net ~port:8080 in
        Netsim.send c full;
        check bool "valid request still served" true
          (Workload.Http_load.is_200 (Option.get (Netsim.recv c)));
        Netsim.close c;
        check int "no worker restarts from truncation" 0
          (HServer.worker_restarts s);
        HServer.stop s)
  in
  Sched.run sched;
  List.iter
    (fun (_, name, oc) ->
      match oc with
      | Sched.Completed -> ()
      | Sched.Failed e ->
          Alcotest.failf "thread %s failed: %s" name (Printexc.to_string e))
    (Sched.outcomes sched)

(* {1 Retry-aware load generators} *)

let test_ycsb_retries_through_faults () =
  let space = Space.create ~size_mib:128 () in
  let sd = Api.create space in
  let sched = Sched.create () in
  let net = Netsim.create (Space.cost space) in
  let cfg =
    { KServer.default_config with variant = KServer.Sdrad; workers = 2 }
  in
  let wl =
    {
      Workload.Ycsb.default_config with
      records = 60;
      operations = 200;
      clients = 4;
      value_size = 64;
      read_fraction = 0.5;
      retry =
        Some
          {
            Retry.default_policy with
            attempt_timeout = 150_000.0;
            overall_timeout = 4.0e6;
          };
    }
  in
  let srv = ref None in
  let results = ref (fun () -> Alcotest.fail "not launched") in
  let _ =
    Sched.spawn sched ~name:"main" (fun () ->
        let s = KServer.start sched space ~sdrad:sd net cfg in
        srv := Some s;
        (* Drop ~4% of messages once the run phase is underway. *)
        let rng = Rng.create 99 in
        let armed = ref false in
        Netsim.set_fault_hook net
          (Some
             (fun ~len:_ ->
               if !armed && Rng.float rng < 0.04 then Netsim.Drop
               else Netsim.Deliver));
        armed := true;
        let get =
          Workload.Ycsb.launch sched net wl
            ~on_done:(fun () ->
              Netsim.set_fault_hook net None;
              KServer.stop s)
            ()
        in
        results := get)
  in
  Sched.run sched;
  let r = !results () in
  let s = Option.get !srv in
  check bool "server survived" false (KServer.crashed s);
  check bool "faults actually forced retries" true
    (r.Workload.Ycsb.retries > 0);
  (* Closed-loop clients with retries absorb a 4% drop rate without
     surfacing failures to the application. *)
  check int "no operation failed outright" 0 r.Workload.Ycsb.failures

let () =
  Alcotest.run "recovery"
    [
      ( "deadline",
        [
          Alcotest.test_case "recv_deadline" `Quick test_recv_deadline;
          Alcotest.test_case "waitset deadline" `Quick test_waitset_deadline;
        ] );
      ( "retry",
        [
          Alcotest.test_case "success after backoff" `Quick
            test_retry_success_after_backoff;
          Alcotest.test_case "budget exhaustion" `Quick
            test_retry_budget_exhaustion;
          Alcotest.test_case "attempts and deadline" `Quick
            test_retry_attempts_and_deadline;
        ] );
      ( "journal",
        [
          Alcotest.test_case "unit semantics" `Quick test_journal_semantics;
          Alcotest.test_case "replay after rewind" `Quick
            test_journal_replay_after_rewind;
          Alcotest.test_case "eviction in server" `Quick
            test_journal_eviction_in_server;
        ] );
      ( "admission",
        [
          Alcotest.test_case "admit_nb does not park" `Quick
            test_admit_nb_does_not_park;
        ] );
      ( "shedding",
        [
          Alcotest.test_case "kvcache burst" `Quick
            test_kvcache_sheds_under_burst;
          Alcotest.test_case "httpd shed and replay" `Quick
            test_httpd_sheds_and_replays;
        ] );
      ( "truncation",
        [
          Alcotest.test_case "kvcache frames" `Quick
            test_truncated_frames_rejected;
          Alcotest.test_case "httpd request" `Quick
            test_httpd_truncated_request_400;
        ] );
      ( "load",
        [
          Alcotest.test_case "ycsb retries through faults" `Quick
            test_ycsb_retries_through_faults;
        ] );
    ]
